(* vstat: tail-latency and timeline statistics for the simulated
   workloads.

   Where vprof answers "how much work ran", vstat answers "how long
   did each operation take, and how did the system's state evolve
   while it ran".  It drives a workload with an enabled
   {!Vmachine.Telemetry} sink and a {!Vmachine.Timeline} attached,
   then reports every latency distribution (the *_ns stopwatch dists:
   server install/replace/evict, per-packet classification, per-call
   simulator runs, block compiles, region promotions) as a histogram
   sparkline with interpolated p50/p90/p99/p999 — plus, on the router
   workload, the top-K hottest tenants by total classification time.

   Examples:
     vstat -w router --iters 20000 --top 10
     vstat -w asm:josephus -m regions --runs 200
     vstat -w router --json stat.json --perfetto stat.perfetto.json

   [--json FILE] writes the same data machine-readably (schema below,
   validated by bench/json_check.exe); [--perfetto FILE] writes the
   merged Chrome trace_event export — one counter track per timeline
   gauge plus the telemetry event ring as instants — loadable in
   Perfetto / chrome://tracing (see {!Chrome_trace.write_timeline}).
   EXPERIMENTS.md ("Router tail latency with vstat") is the worked
   walkthrough. *)

module Tel = Vmachine.Telemetry
module Timeline = Vmachine.Timeline
module W = Workloads

(* schema version of the --json document; bump when keys change.
   1: initial — latency objects (count/sum/min/max + p50/p90/p99/p999
   per *_ns distribution), the per-tenant top-K array, and the
   timeline accounting object. *)
let json_schema_version = 1

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* compact log2-bucket sparkline: the nonzero bucket span rendered in
   eight block heights, labelled with its value range *)
let spark (st : Tel.dist_stats) =
  let b = st.Tel.buckets in
  let lo = ref (-1) and hi = ref (-1) and peak = ref 0 in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        if !lo < 0 then lo := i;
        hi := i;
        if n > !peak then peak := n
      end)
    b;
  if !lo < 0 then ""
  else begin
    let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                    "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    let buf = Buffer.create 64 in
    Buffer.add_string buf (Printf.sprintf "[2^%d..2^%d] " !lo (!hi + 1));
    for i = !lo to !hi do
      if b.(i) = 0 then Buffer.add_char buf ' '
      else Buffer.add_string buf glyphs.(((b.(i) * 7) + !peak - 1) / !peak)
    done;
    Buffer.contents buf
  end

let is_latency_dist name =
  let suffix = "_ns" in
  let nl = String.length name and sl = String.length suffix in
  nl > sl && String.sub name (nl - sl) sl = suffix

type outcome = {
  o_insns : int;
  o_cycles : int;
  o_dists : (string * Tel.dist_stats) list; (* nonzero only *)
  o_tenants : (int * int * int * int) list; (* key, packets, total_ns, max_ns *)
  o_tl : Timeline.t;
  o_tel : Tel.t;
  o_runs : int;
}

let measure (module P : W.PORT) ~workload ~mode ~iters ~runs ~every ~top =
  let predecode, blocks, regions = W.mode_exn ~tool:"vstat" mode in
  let tel = Tel.create () in
  let tl = Timeline.create ~every ~rows:4096 () in
  let m = P.create ~telemetry:tel ~predecode ~blocks ~regions () in
  let tenants =
    if workload = "router" then begin
      (* driven directly (not via [prepare]) so the timeline and the
         per-tenant table are reachable *)
      let r = P.router ~tel ~timeline:tl m in
      let nf = max 16 (min 4096 (iters / 4)) in
      Timeline.sample_now tl; (* baseline row before any install *)
      r.W.rt_install ~n:nf ~batched:true;
      Timeline.sample_now tl;
      r.W.rt_packets ~n:iters ~churn_every:32;
      r.W.rt_sync ();
      Timeline.sample_now tl;
      r.W.rt_top ~k:top
    end
    else begin
      (* non-router workloads: the engine-tier gauges still evolve
         (compiles, promotions); one tick per run call *)
      Timeline.gauge tl "engine.blocks.resident" (fun () -> fst (P.resident m));
      Timeline.gauge tl "engine.regions.resident" (fun () -> snd (P.resident m));
      Timeline.gauge tl "tel.events_seen" (fun () -> Tel.events_seen tel);
      let prep = P.prepare ~tel m ~workload ~iters in
      Timeline.sample_now tl;
      for _ = 1 to runs do
        prep.W.run ();
        Timeline.tick tl
      done;
      Timeline.sample_now tl;
      []
    end
  in
  let dists = ref [] in
  Tel.iter_dists tel (fun name st -> if st.Tel.count > 0 then dists := (name, st) :: !dists);
  {
    o_insns = P.insns m;
    o_cycles = P.cycles m;
    o_dists = List.rev !dists;
    o_tenants = tenants;
    o_tl = tl;
    o_tel = tel;
    o_runs = runs;
  }

let percentiles st =
  ( Tel.quantile_of_stats st 0.5,
    Tel.quantile_of_stats st 0.9,
    Tel.quantile_of_stats st 0.99,
    Tel.quantile_of_stats st 0.999 )

let report ~port ~workload ~mode ~iters ~top (o : outcome) =
  Printf.printf "vstat: %s on %s, %s mode (%d iterations" workload port mode iters;
  if workload <> "router" then Printf.printf ", %d runs" o.o_runs;
  Printf.printf ")\n";
  Printf.printf "  %d simulated instructions retired in %d cycles\n" o.o_insns o.o_cycles;
  let lat = List.filter (fun (n, _) -> is_latency_dist n) o.o_dists in
  Printf.printf "\nlatency (host ns, interpolated from log2 buckets):\n";
  if lat = [] then Printf.printf "  none recorded\n"
  else begin
    Printf.printf "  %-24s %9s %8s %9s %9s %8s %8s %9s %9s\n" "op" "count" "min" "max" "avg"
      "p50" "p90" "p99" "p999";
    List.iter
      (fun (name, (st : Tel.dist_stats)) ->
        let p50, p90, p99, p999 = percentiles st in
        Printf.printf "  %-24s %9d %8d %9d %9.0f %8d %8d %9d %9d\n" name st.Tel.count
          st.Tel.min st.Tel.max
          (float_of_int st.Tel.sum /. float_of_int st.Tel.count)
          p50 p90 p99 p999;
        Printf.printf "  %-24s %s\n" "" (spark st))
      lat
  end;
  (match List.filter (fun (n, _) -> not (is_latency_dist n)) o.o_dists with
  | [] -> ()
  | other ->
    Printf.printf "\nother distributions:\n";
    List.iter
      (fun (name, (st : Tel.dist_stats)) ->
        Printf.printf "  %-24s count %-9d min %-6d max %-6d avg %.1f\n" name st.Tel.count
          st.Tel.min st.Tel.max
          (float_of_int st.Tel.sum /. float_of_int st.Tel.count))
      other);
  if workload = "router" then begin
    Printf.printf "\nhottest tenants (top %d of keys seen, by total classification time):\n" top;
    if o.o_tenants = [] then Printf.printf "  none (no packets classified)\n"
    else begin
      Printf.printf "  %-10s %9s %12s %9s %9s\n" "key" "packets" "total_ns" "avg_ns" "max_ns";
      List.iter
        (fun (key, pkts, total, mx) ->
          Printf.printf "  %-10d %9d %12d %9d %9d\n" key pkts total (total / max 1 pkts) mx)
        o.o_tenants
    end
  end;
  Printf.printf
    "\ntimeline: %d samples (%d retained, %d dropped), every %d ticks, %d ticks total\n"
    (Timeline.samples_seen o.o_tl) (Timeline.retained o.o_tl) (Timeline.dropped o.o_tl)
    (Timeline.every o.o_tl) (Timeline.ticks o.o_tl);
  (match Timeline.gauge_names o.o_tl with
  | [] -> ()
  | names -> Printf.printf "  gauges: %s\n" (String.concat ", " names));
  Printf.printf "events recorded: %d\n" (Tel.events_seen o.o_tel)

let write_json path ~port ~workload ~mode ~iters (o : outcome) =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": %d,\n  \"tool\": \"vstat\",\n" json_schema_version;
  Printf.fprintf oc "  \"port\": \"%s\",\n  \"mode\": \"%s\",\n  \"workload\": \"%s\",\n"
    (json_escape port) (json_escape mode) (json_escape workload);
  Printf.fprintf oc "  \"iters\": %d,\n  \"runs\": %d,\n  \"insns\": %d,\n  \"cycles\": %d,\n"
    iters o.o_runs o.o_insns o.o_cycles;
  let lat = List.filter (fun (n, _) -> is_latency_dist n) o.o_dists in
  output_string oc "  \"latency\": {";
  List.iteri
    (fun i (name, (st : Tel.dist_stats)) ->
      let p50, p90, p99, p999 = percentiles st in
      Printf.fprintf oc
        "%s\n    \"%s\": { \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"p50\": %d, \
         \"p90\": %d, \"p99\": %d, \"p999\": %d }"
        (if i > 0 then "," else "")
        (json_escape name) st.Tel.count st.Tel.sum st.Tel.min st.Tel.max p50 p90 p99 p999)
    lat;
  output_string oc (if lat = [] then "},\n" else "\n  },\n");
  output_string oc "  \"tenants\": [";
  List.iteri
    (fun i (key, pkts, total, mx) ->
      Printf.fprintf oc
        "%s\n    { \"key\": %d, \"packets\": %d, \"total_ns\": %d, \"max_ns\": %d }"
        (if i > 0 then "," else "") key pkts total mx)
    o.o_tenants;
  output_string oc (if o.o_tenants = [] then "],\n" else "\n  ],\n");
  Printf.fprintf oc
    "  \"timeline\": { \"every\": %d, \"ticks\": %d, \"samples\": %d, \"retained\": %d, \
     \"dropped\": %d, \"gauges\": [%s] },\n"
    (Timeline.every o.o_tl) (Timeline.ticks o.o_tl) (Timeline.samples_seen o.o_tl)
    (Timeline.retained o.o_tl) (Timeline.dropped o.o_tl)
    (String.concat ", "
       (List.map (fun n -> "\"" ^ json_escape n ^ "\"") (Timeline.gauge_names o.o_tl)));
  Printf.fprintf oc "  \"events_seen\": %d\n}\n" (Tel.events_seen o.o_tel);
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let write_perfetto path ~port ~workload ~mode (o : outcome) =
  let b = Buffer.create 65536 in
  Chrome_trace.write_timeline b ~port ~mode ~workload o.o_tl o.o_tel;
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "wrote %s (%d counter samples over %d gauges)\n" path
    (Timeline.retained o.o_tl * List.length (Timeline.gauge_names o.o_tl))
    (List.length (Timeline.gauge_names o.o_tl))

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

open Cmdliner

let port_arg =
  Arg.(value & opt string "mips" & info [ "p"; "port" ] ~docv:"PORT" ~doc:"mips|sparc|alpha|ppc")

let workload_arg =
  Arg.(
    value
    & opt string "router"
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:"router|dpf-classify|table4-ash|alu-loop|region-loop|asm:NAME")

let mode_arg =
  Arg.(
    value
    & opt string "blocks"
    & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"off|predecode|blocks|regions")

let iters_arg =
  Arg.(
    value & opt int 8000
    & info [ "iters" ] ~docv:"N" ~doc:"workload iterations (router: packets)")

let runs_arg =
  Arg.(
    value & opt int 50
    & info [ "runs" ] ~docv:"N" ~doc:"repeated run calls for non-router workloads")

let every_arg =
  Arg.(value & opt int 64 & info [ "every" ] ~docv:"N" ~doc:"timeline sampling period in ticks")

let top_arg =
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"hottest tenants to report (router)")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"also write the report as JSON (schema 1)")

let perfetto_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "perfetto" ] ~docv:"FILE"
        ~doc:"write the merged counter/instant timeline as Chrome trace_event JSON")

let main port workload mode iters runs every top json perfetto =
  let p = W.port_exn ~tool:"vstat" port in
  let workload = W.workload_exn ~tool:"vstat" workload in
  ignore (W.mode_exn ~tool:"vstat" mode);
  let o = measure p ~workload ~mode ~iters ~runs:(max 1 runs) ~every:(max 1 every) ~top in
  report ~port ~workload ~mode ~iters ~top o;
  (match json with None -> () | Some path -> write_json path ~port ~workload ~mode ~iters o);
  match perfetto with
  | None -> ()
  | Some path -> write_perfetto path ~port ~workload ~mode o

let () =
  let info =
    Cmd.info "vstat" ~doc:"tail-latency and timeline statistics for the simulated workloads"
  in
  let term =
    Term.(
      const main $ port_arg $ workload_arg $ mode_arg $ iters_arg $ runs_arg $ every_arg
      $ top_arg $ json_arg $ perfetto_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
