(* vprof: telemetry profiler for the simulated evaluation workloads.

   Runs a Table 3 / Table 4 workload on one of the four simulated ports
   with an enabled {!Vmachine.Telemetry} sink and prints a sorted
   report: the hottest compiled superblocks (per-entry execution counts
   from {!Vmachine.Block_cache}), every registered counter, the
   distribution summaries, and the tail of the structured event ring.

   Examples:
     vprof                                    # dpf-classify, mips, blocks
     vprof -w table4-ash -p sparc -m predecode
     vprof -w alu-loop -p alpha --top 5

   EXPERIMENTS.md ("Reading a vprof report") walks through the default
   report line by line. *)

open Vcodebase
module Tel = Vmachine.Telemetry

let pkt_addr = 0x80000
let src_addr = 0x300000
let dst_addr = 0x312000

(* one simulated port, glued behind the shape the report needs *)
module type PORT = sig
  type m

  val name : string

  val run :
    Tel.t -> workload:string -> predecode:bool -> blocks:bool -> iters:int -> m

  val mem : m -> Vmachine.Mem.t
  val insns : m -> int
  val cycles : m -> int
  val hot_blocks : limit:int -> m -> (int * int) list
  val disasm : word:int -> addr:int -> string
end

module Make_port
    (T : Target.S)
    (S : sig
      type t

      val create : Tel.t -> predecode:bool -> blocks:bool -> t
      val mem : t -> Vmachine.Mem.t
      val call_ints : t -> entry:int -> int list -> int
      val insns : t -> int
      val cycles : t -> int
      val hot_blocks : limit:int -> t -> (int * int) list
    end) : PORT = struct
  module V = Vcode.Make (T)
  module DP = Dpf.Make (T)
  module ASH = Ash.Make (T)

  type m = S.t

  let name = T.desc.Machdesc.name
  let mem = S.mem
  let insns = S.insns
  let cycles = S.cycles
  let hot_blocks = S.hot_blocks
  let disasm = T.disasm

  (* the mixed-ALU loop the throughput benchmarks time *)
  let gen_loop () =
    let g, args = V.lambda ~base:0x10000 ~leaf:true "%i" in
    let open V.Names in
    let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
    let i = V.getreg_exn g ~cls:`Temp Vtype.I in
    seti g acc 0;
    seti g i 0;
    let top = V.genlabel g and out = V.genlabel g in
    V.label g top;
    bgei g i args.(0) out;
    addi g acc acc i;
    orii g acc acc 3;
    addii g i i 1;
    jv g top;
    V.label g out;
    reti g acc;
    V.end_gen g

  let run tel ~workload ~predecode ~blocks ~iters =
    let m = S.create tel ~predecode ~blocks in
    (match workload with
    | "dpf-classify" ->
      (* the Table 3 fixture: ten TCP/IP session filters, packets
         destined uniformly to each *)
      let c =
        DP.compile ~base:0x1000 ~table_base:0x200000 (Dpf.Filter.tcpip_filters 10)
      in
      Tel.note_gen tel ~prefix:"dpf" c.Dpf.code.Vcode.gen;
      Vmachine.Mem.install_code (S.mem m) ~addr:c.Dpf.code.Vcode.base
        c.Dpf.code.Vcode.gen.Gen.buf;
      DP.install_tables (S.mem m) c;
      for k = 0 to iters - 1 do
        let port = 1000 + (k mod 10) in
        Dpf.Packet.install (S.mem m) ~addr:pkt_addr (Dpf.Packet.tcp ~dst_port:port ());
        if S.call_ints m ~entry:c.Dpf.entry [ pkt_addr; 40 ] <> port - 1000 then
          failwith "dpf-classify: misclassified packet"
      done
    | "table4-ash" ->
      (* the Table 4 fixture: the dynamically composed copy+checksum
         pipeline over 8KB; [iters] scales the number of passes *)
      let code = ASH.gen_ash ~base:0x8000 [ Ash.Copy; Ash.Checksum ] in
      Tel.note_gen tel ~prefix:"ash" code.Vcode.gen;
      Vmachine.Mem.install_code (S.mem m) ~addr:code.Vcode.base code.Vcode.gen.Gen.buf;
      let nwords = 2048 in
      let data = Bytes.init (4 * nwords) (fun i -> Char.chr ((i * 131) land 0xff)) in
      Vmachine.Mem.blit_bytes (S.mem m) ~addr:src_addr data;
      for _ = 1 to max 1 (iters / 250) do
        ignore (S.call_ints m ~entry:code.Vcode.entry_addr [ dst_addr; src_addr; nwords ])
      done
    | "alu-loop" ->
      let code = gen_loop () in
      Tel.note_gen tel ~prefix:"loop" code.Vcode.gen;
      Vmachine.Mem.install_code (S.mem m) ~addr:code.Vcode.base code.Vcode.gen.Gen.buf;
      ignore (S.call_ints m ~entry:code.Vcode.entry_addr [ iters ])
    | w -> Printf.ksprintf failwith "unknown workload %S" w);
    m
end

module Mips_port =
  Make_port
    (Vmips.Mips_backend)
    (struct
      module S = Vmips.Mips_sim

      type t = S.t

      let create telemetry ~predecode ~blocks =
        S.create ~predecode ~blocks ~telemetry Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
    end)

module Sparc_port =
  Make_port
    (Vsparc.Sparc_backend)
    (struct
      module S = Vsparc.Sparc_sim

      type t = S.t

      let create telemetry ~predecode ~blocks =
        S.create ~predecode ~blocks ~telemetry Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
    end)

module Alpha_port =
  Make_port
    (Valpha.Alpha_backend)
    (struct
      module S = Valpha.Alpha_sim

      type t = S.t

      let create telemetry ~predecode ~blocks =
        S.create ~predecode ~blocks ~telemetry Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
    end)

module Ppc_port =
  Make_port
    (Vppc.Ppc_backend)
    (struct
      module S = Vppc.Ppc_sim

      type t = S.t

      let create telemetry ~predecode ~blocks =
        S.create ~predecode ~blocks ~telemetry Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
    end)

let ports : (string * (module PORT)) list =
  [
    ("mips", (module Mips_port));
    ("sparc", (module Sparc_port));
    ("alpha", (module Alpha_port));
    ("ppc", (module Ppc_port));
  ]

let modes =
  [ ("off", (false, false)); ("predecode", (true, false)); ("blocks", (true, true)) ]

let workloads = [ "dpf-classify"; "table4-ash"; "alu-loop" ]

let report (module P : PORT) ~workload ~mode ~iters ~top =
  let predecode, blocks = List.assoc mode modes in
  let tel = Tel.create () in
  let m = P.run tel ~workload ~predecode ~blocks ~iters in
  Printf.printf "vprof: %s on %s, %s mode (%d iterations)\n" workload P.name mode iters;
  Printf.printf "  %d simulated instructions retired in %d cycles\n\n" (P.insns m)
    (P.cycles m);
  (* hottest compiled superblocks *)
  (match P.hot_blocks ~limit:max_int m with
  | [] ->
    Printf.printf "hot blocks: none (superblock mode off or nothing compiled)\n"
  | all ->
    let total = List.fold_left (fun a (_, n) -> a + n) 0 all in
    let shown = List.filteri (fun i _ -> i < top) all in
    Printf.printf "hot blocks (top %d of %d entries, %d executions):\n"
      (List.length shown) (List.length all) total;
    Printf.printf "  %-10s %12s %7s  %s\n" "entry" "execs" "share" "first instruction";
    List.iter
      (fun (addr, n) ->
        let word = Vmachine.Mem.read_u32 (P.mem m) addr in
        Printf.printf "  0x%08x %12d %6.1f%%  %s\n" addr n
          (100.0 *. float_of_int n /. float_of_int total)
          (P.disasm ~word ~addr))
      shown);
  (* counters, largest first *)
  let cs = ref [] in
  Tel.iter_counters tel (fun k v -> if v > 0 then cs := (k, v) :: !cs);
  let cs = List.sort (fun (_, a) (_, b) -> compare b a) !cs in
  Printf.printf "\ncounters (nonzero, largest first):\n";
  List.iter (fun (k, v) -> Printf.printf "  %-36s %12d\n" k v) cs;
  (* distribution summaries *)
  Printf.printf "\ndistributions:\n";
  Tel.iter_dists tel (fun k (st : Tel.dist_stats) ->
      if st.Tel.count > 0 then
        Printf.printf "  %-28s count %-9d min %-6d max %-6d avg %.1f\n" k st.Tel.count
          st.Tel.min st.Tel.max
          (float_of_int st.Tel.sum /. float_of_int st.Tel.count));
  (* the tail of the event ring *)
  let evs = Tel.events tel in
  let nev = List.length evs in
  let shown = List.filteri (fun i _ -> i >= nev - 8) evs in
  Printf.printf "\nevents (last %d of %d recorded):\n" (List.length shown)
    (Tel.events_seen tel);
  List.iter
    (fun (kind, a, b) ->
      Printf.printf "  %-18s a=0x%x b=%d\n" (Tel.kind_name kind) a b)
    shown

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

open Cmdliner

let port_arg =
  Arg.(value & opt string "mips" & info [ "p"; "port" ] ~docv:"PORT" ~doc:"mips|sparc|alpha|ppc")

let workload_arg =
  Arg.(
    value
    & opt string "dpf-classify"
    & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"dpf-classify|table4-ash|alu-loop")

let mode_arg =
  Arg.(value & opt string "blocks" & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"off|predecode|blocks")

let top_arg = Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"hot-block rows to print")

let iters_arg =
  Arg.(value & opt int 1000 & info [ "iters" ] ~docv:"N" ~doc:"workload iterations")

let main port workload mode top iters =
  match (List.assoc_opt port ports, List.mem_assoc mode modes, List.mem workload workloads) with
  | None, _, _ ->
    Printf.eprintf "vprof: unknown port %S (mips|sparc|alpha|ppc)\n" port;
    exit 1
  | _, false, _ ->
    Printf.eprintf "vprof: unknown mode %S (off|predecode|blocks)\n" mode;
    exit 1
  | _, _, false ->
    Printf.eprintf "vprof: unknown workload %S (%s)\n" workload (String.concat "|" workloads);
    exit 1
  | Some p, true, true -> report p ~workload ~mode ~iters ~top

let () =
  let info = Cmd.info "vprof" ~doc:"telemetry profiler for the simulated workloads" in
  let term = Term.(const main $ port_arg $ workload_arg $ mode_arg $ top_arg $ iters_arg) in
  exit (Cmd.eval (Cmd.v info term))
