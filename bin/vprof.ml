(* vprof: telemetry profiler for the simulated evaluation workloads.

   Runs a Table 3 / Table 4 workload on one of the four simulated ports
   with an enabled {!Vmachine.Telemetry} sink and prints a sorted
   report: the hottest compiled superblocks (per-entry execution counts
   from {!Vmachine.Block_cache}), every registered counter, the
   distribution summaries, and the tail of the structured event ring.
   [--json FILE] writes the same data machine-readably (schema below);
   bench/json_check.exe validates it in the test suite.

   Examples:
     vprof                                    # dpf-classify, mips, blocks
     vprof -w table4-ash -p sparc -m predecode
     vprof -w alu-loop -p alpha --top 5 --json prof.json

   The port/workload/mode vocabulary and the workload fixtures live in
   {!Workloads} (lib/harness), shared with bench/main.exe and
   bin/vtrace.exe.  EXPERIMENTS.md ("Reading a vprof report") walks
   through the default report line by line. *)

module Tel = Vmachine.Telemetry
module W = Workloads

(* schema version of the --json document; bump when keys change.
   2: added the per-tier "tiers" object (block/region dispatch counts,
   promotions, side exits and the side-exit rate) and the "regions"
   mode.
   3: added the "registry" object (code-region registry and slab-arena
   gauges from the server.* counters) and the "router" workload.
   4: dist objects grew interpolated "p50"/"p90"/"p99"/"p999" keys
   (from {!Vmachine.Telemetry.quantile_of_stats} over the log2
   buckets), matching the latency timers that now feed *_ns dists. *)
let json_schema_version = 4

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* compact log2-bucket sparkline: the nonzero bucket span rendered in
   eight block heights, labelled with its value range *)
let spark (st : Tel.dist_stats) =
  let b = st.Tel.buckets in
  let lo = ref (-1) and hi = ref (-1) and peak = ref 0 in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        if !lo < 0 then lo := i;
        hi := i;
        if n > !peak then peak := n
      end)
    b;
  if !lo < 0 then ""
  else begin
    let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                    "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    let buf = Buffer.create 64 in
    Buffer.add_string buf (Printf.sprintf "[2^%d..2^%d] " !lo (!hi + 1));
    for i = !lo to !hi do
      if b.(i) = 0 then Buffer.add_char buf ' '
      else Buffer.add_string buf glyphs.(((b.(i) * 7) + !peak - 1) / !peak)
    done;
    Buffer.contents buf
  end

type outcome = {
  o_insns : int;
  o_cycles : int;
  o_hot : (int * int) list; (* all entries, hottest first *)
  o_disasm : int -> string; (* first instruction at an entry address *)
  o_counters : (string * int) list; (* registration order *)
  o_dists : (string * Tel.dist_stats) list;
  o_events_seen : int;
}

(* the four-tier dispatch profile, extracted from the port's counters *)
type tiers = {
  t_block_execs : int;     (* tier-2 superblock dispatches *)
  t_block_chains : int;
  t_region_execs : int;    (* tier-3 region dispatches *)
  t_side_exits : int;      (* specialized branches that went the other way *)
  t_promotions : int;      (* superblocks recompiled as regions *)
  t_invalidations : int;   (* region drops from stores into region code *)
}

let tiers_of (o : outcome) ~port =
  let c name = Option.value ~default:0 (List.assoc_opt (port ^ "." ^ name) o.o_counters) in
  {
    t_block_execs = c "block_execs";
    t_block_chains = c "block_chains";
    t_region_execs = c "region_execs";
    t_side_exits = c "region_side_exits";
    t_promotions = c "rc.promotions";
    t_invalidations = c "rc.invalidations";
  }

let side_exit_rate (t : tiers) =
  if t.t_region_execs = 0 then 0.0
  else 100.0 *. float_of_int t.t_side_exits /. float_of_int t.t_region_execs

(* the code-region registry profile (router workload), extracted from
   the server.* counters the {!Vserver.Server} instance registers;
   all zero for workloads that don't run a registry *)
type registry = {
  r_installs : int;
  r_replaces : int;
  r_evictions : int;       (* explicit evicts *)
  r_cap_evictions : int;   (* forced by a full arena or max_live *)
  r_live : int;            (* gauge: resident regions *)
  r_slabs_live : int;      (* gauge: arena slabs in use *)
  r_slabs_free : int;      (* gauge: slabs parked on free lists *)
  r_bump_words : int;      (* gauge: words ever claimed from the frontier *)
  r_hits : int;
  r_misses : int;
}

let registry_of (o : outcome) =
  let c name = Option.value ~default:0 (List.assoc_opt ("server." ^ name) o.o_counters) in
  {
    r_installs = c "install";
    r_replaces = c "replace";
    r_evictions = c "evict";
    r_cap_evictions = c "evict_capacity";
    r_live = c "live_regions";
    r_slabs_live = c "arena.live_slabs";
    r_slabs_free = c "arena.free_slabs";
    r_bump_words = c "arena.bump_words";
    r_hits = c "lookup.hit";
    r_misses = c "lookup.miss";
  }

let registry_active (r : registry) = r.r_installs > 0 || r.r_live > 0

let measure (module P : W.PORT) ~workload ~mode ~iters =
  let predecode, blocks, regions = W.mode_exn ~tool:"vprof" mode in
  let tel = Tel.create () in
  let m = P.create ~telemetry:tel ~predecode ~blocks ~regions () in
  let prep = P.prepare ~tel m ~workload ~iters in
  prep.W.run ();
  let collect iter =
    let acc = ref [] in
    iter tel (fun name v -> acc := (name, v) :: !acc);
    List.rev !acc
  in
  {
    o_insns = P.insns m;
    o_cycles = P.cycles m;
    o_hot = P.hot_blocks ~limit:max_int m;
    o_disasm = (fun addr -> P.disasm ~word:(Vmachine.Mem.read_u32 (P.mem m) addr) ~addr);
    o_counters = collect Tel.iter_counters;
    o_dists = collect Tel.iter_dists;
    o_events_seen = Tel.events_seen tel;
  }

let report ~port ~workload ~mode ~iters ~top (o : outcome) =
  Printf.printf "vprof: %s on %s, %s mode (%d iterations)\n" workload port mode iters;
  Printf.printf "  %d simulated instructions retired in %d cycles\n\n" o.o_insns o.o_cycles;
  (* hottest compiled superblocks *)
  (match o.o_hot with
  | [] ->
    Printf.printf "hot blocks: none (superblock mode off or nothing compiled)\n"
  | all ->
    let total = List.fold_left (fun a (_, n) -> a + n) 0 all in
    let shown = List.filteri (fun i _ -> i < top) all in
    Printf.printf "hot blocks (top %d of %d entries, %d executions):\n"
      (List.length shown) (List.length all) total;
    Printf.printf "  %-10s %12s %7s  %s\n" "entry" "execs" "share" "first instruction";
    List.iter
      (fun (addr, n) ->
        Printf.printf "  0x%08x %12d %6.1f%%  %s\n" addr n
          (100.0 *. float_of_int n /. float_of_int total)
          (o.o_disasm addr))
      shown);
  (* the four-tier dispatch profile *)
  let t = tiers_of o ~port in
  Printf.printf "\ntiers:\n";
  Printf.printf "  %-28s %12d\n" "block execs (tier 2)" t.t_block_execs;
  Printf.printf "  %-28s %12d\n" "block chains" t.t_block_chains;
  Printf.printf "  %-28s %12d\n" "region execs (tier 3)" t.t_region_execs;
  Printf.printf "  %-28s %12d\n" "region promotions" t.t_promotions;
  Printf.printf "  %-28s %12d\n" "region invalidations" t.t_invalidations;
  Printf.printf "  %-28s %12d (%.1f%% of region execs)\n" "region side exits"
    t.t_side_exits (side_exit_rate t);
  (* the code-region registry (router workload only) *)
  let r = registry_of o in
  if registry_active r then begin
    Printf.printf "\nregistry:\n";
    Printf.printf "  %-28s %12d\n" "installs" r.r_installs;
    Printf.printf "  %-28s %12d\n" "replaces" r.r_replaces;
    Printf.printf "  %-28s %12d\n" "evictions" r.r_evictions;
    Printf.printf "  %-28s %12d\n" "capacity evictions" r.r_cap_evictions;
    Printf.printf "  %-28s %12d\n" "live regions" r.r_live;
    Printf.printf "  %-28s %12d live / %d free\n" "arena slabs" r.r_slabs_live
      r.r_slabs_free;
    Printf.printf "  %-28s %12d\n" "arena bump words" r.r_bump_words;
    Printf.printf "  %-28s %12d hit / %d miss\n" "lookups" r.r_hits r.r_misses
  end;
  (* counters, largest first *)
  let cs = List.filter (fun (_, v) -> v > 0) o.o_counters in
  let cs = List.sort (fun (_, a) (_, b) -> compare b a) cs in
  Printf.printf "\ncounters (nonzero, largest first):\n";
  List.iter (fun (k, v) -> Printf.printf "  %-36s %12d\n" k v) cs;
  (* distribution summaries, with interpolated tail percentiles and a
     log2-bucket sparkline *)
  Printf.printf "\ndistributions:\n";
  List.iter
    (fun (k, (st : Tel.dist_stats)) ->
      if st.Tel.count > 0 then begin
        Printf.printf
          "  %-28s count %-9d min %-6d max %-6d avg %-9.1f p50 %-6d p99 %-6d p999 %d\n" k
          st.Tel.count st.Tel.min st.Tel.max
          (float_of_int st.Tel.sum /. float_of_int st.Tel.count)
          (Tel.quantile_of_stats st 0.5) (Tel.quantile_of_stats st 0.99)
          (Tel.quantile_of_stats st 0.999);
        Printf.printf "  %-28s %s\n" "" (spark st)
      end)
    o.o_dists;
  Printf.printf "\nevents recorded: %d\n" o.o_events_seen

let write_json path ~port ~workload ~mode ~iters ~top (o : outcome) =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": %d,\n  \"tool\": \"vprof\",\n" json_schema_version;
  Printf.fprintf oc "  \"port\": \"%s\",\n  \"mode\": \"%s\",\n  \"workload\": \"%s\",\n"
    (json_escape port) (json_escape mode) (json_escape workload);
  Printf.fprintf oc "  \"iters\": %d,\n  \"insns\": %d,\n  \"cycles\": %d,\n" iters
    o.o_insns o.o_cycles;
  let hot = List.filteri (fun i _ -> i < top) o.o_hot in
  output_string oc "  \"hot_blocks\": [";
  List.iteri
    (fun i (addr, n) ->
      Printf.fprintf oc "%s\n    { \"entry\": %d, \"execs\": %d, \"disasm\": \"%s\" }"
        (if i > 0 then "," else "") addr n
        (json_escape (o.o_disasm addr)))
    hot;
  output_string oc (if hot = [] then "],\n" else "\n  ],\n");
  let emit_obj key kvs payload =
    Printf.fprintf oc "  \"%s\": {" key;
    List.iteri
      (fun i (k, v) ->
        Printf.fprintf oc "%s\n    \"%s\": %s" (if i > 0 then "," else "")
          (json_escape k) (payload v))
      kvs;
    output_string oc (if kvs = [] then "},\n" else "\n  },\n")
  in
  let t = tiers_of o ~port in
  Printf.fprintf oc
    "  \"tiers\": { \"block_execs\": %d, \"block_chains\": %d, \"region_execs\": %d, \
     \"region_promotions\": %d, \"region_invalidations\": %d, \"region_side_exits\": %d, \
     \"side_exit_rate\": %.4f },\n"
    t.t_block_execs t.t_block_chains t.t_region_execs t.t_promotions t.t_invalidations
    t.t_side_exits (side_exit_rate t);
  let r = registry_of o in
  Printf.fprintf oc
    "  \"registry\": { \"installs\": %d, \"replaces\": %d, \"evictions\": %d, \
     \"capacity_evictions\": %d, \"live_regions\": %d, \"slabs_live\": %d, \
     \"slabs_free\": %d, \"bump_words\": %d, \"lookup_hits\": %d, \"lookup_misses\": %d },\n"
    r.r_installs r.r_replaces r.r_evictions r.r_cap_evictions r.r_live r.r_slabs_live
    r.r_slabs_free r.r_bump_words r.r_hits r.r_misses;
  emit_obj "counters" o.o_counters string_of_int;
  emit_obj "dists" o.o_dists (fun (st : Tel.dist_stats) ->
      Printf.sprintf
        "{ \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"p50\": %d, \"p90\": %d, \
         \"p99\": %d, \"p999\": %d }"
        st.Tel.count st.Tel.sum st.Tel.min st.Tel.max
        (Tel.quantile_of_stats st 0.5) (Tel.quantile_of_stats st 0.9)
        (Tel.quantile_of_stats st 0.99) (Tel.quantile_of_stats st 0.999));
  Printf.fprintf oc "  \"events_seen\": %d\n}\n" o.o_events_seen;
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

open Cmdliner

let port_arg =
  Arg.(value & opt string "mips" & info [ "p"; "port" ] ~docv:"PORT" ~doc:"mips|sparc|alpha|ppc")

let workload_arg =
  Arg.(
    value
    & opt string "dpf-classify"
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:"dpf-classify|table4-ash|alu-loop|region-loop|router")

let mode_arg =
  Arg.(
    value
    & opt string "blocks"
    & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"off|predecode|blocks|regions")

let top_arg = Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"hot-block rows to print")

let iters_arg =
  Arg.(value & opt int 1000 & info [ "iters" ] ~docv:"N" ~doc:"workload iterations")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"also write the report as JSON (schema 4)")

let main port workload mode top iters json =
  let p = W.port_exn ~tool:"vprof" port in
  let workload = W.workload_exn ~tool:"vprof" workload in
  ignore (W.mode_exn ~tool:"vprof" mode);
  let o = measure p ~workload ~mode ~iters in
  report ~port ~workload ~mode ~iters ~top o;
  match json with
  | None -> ()
  | Some path -> write_json path ~port ~workload ~mode ~iters ~top o

let () =
  let info = Cmd.info "vprof" ~doc:"telemetry profiler for the simulated workloads" in
  let term =
    Term.(const main $ port_arg $ workload_arg $ mode_arg $ top_arg $ iters_arg $ json_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
