(* vtrace: execution-trace capture, export and cross-mode diffing.

   Built on {!Vmachine.Trace} (the per-simulator retired-instruction
   ring) and the emit-site provenance tables of {!Vcodebase.Gen}: every
   traced address symbolizes back to the client emitter call that
   produced it ("dpf:ldii#12@L3+1" = word 1 past the 12th ldii, inside
   label 3's span of the DPF classifier).

   Two subcommands:

     vtrace capture -p mips -w alu-loop -m blocks --iters 2000 \
            --bin t.vtrc --json t.trace.json
       runs the workload once with tracing on and exports the ring: a
       compact binary dump (Trace.write_binary) and/or a Chrome
       trace_event JSON file loadable in Perfetto / chrome://tracing.

     vtrace diff -p mips -w alu-loop --mode-a off --mode-b blocks
       runs the same port x workload under two engine modes, aligns
       the two retired-instruction streams and reports the first
       divergence with symbolized context — the bisection tool for
       translation-cache bugs.  --inject-hot deliberately corrupts
       mode B's block cache (Block_cache.alias: the hottest entry is
       aliased to the second-hottest block, a stale translation) so a
       divergence exists to find; the exit status is 0 when the
       streams match, 1 when they diverge.

   EXPERIMENTS.md ("Tracing a divergence to its emit site") is a
   worked session.  The port/workload/mode vocabulary is shared with
   vprof and bench through {!Workloads}. *)

module Tel = Vmachine.Telemetry
module Trace = Vmachine.Trace
module W = Workloads

(* Run [workload] traced under [mode]: one untraced-in-spirit priming
   pass (recorded, then discarded with [Trace.reset]) so block
   compilation happens up front, then the measured pass.  Both diff
   sides use the same two-pass discipline, so their streams are
   directly comparable, and [inject] runs between the passes — after
   the block cache is populated, before the measured run.  A fault or
   out-of-fuel exception in the measured pass is reported, not fatal:
   the trace up to that point is exactly what the differ needs. *)
let traced_run (module P : W.PORT) ~workload ~mode ~iters ~cap ~fuel ?(inject_hot = false) () =
  let predecode, blocks, regions = W.mode_exn ~tool:"vtrace" mode in
  let tel = Tel.create () in
  let tr = Trace.create ~capacity_pow2:cap () in
  let m = P.create ~telemetry:tel ~trace:tr ~predecode ~blocks ~regions () in
  let prep = P.prepare ~tel ~provenance:true ~fuel m ~workload ~iters in
  let abort = ref None in
  let pass () = try prep.W.run () with e -> abort := Some (Printexc.to_string e) in
  pass ();
  (match !abort with
  | Some e -> Printf.ksprintf failwith "vtrace: %s/%s priming pass failed: %s" workload mode e
  | None -> ());
  (* --inject-hot: corrupt the now-populated block cache — alias the
     hottest compiled entry to the second-hottest block, i.e. a stale
     translation exactly where it does the most damage *)
  if inject_hot then begin
    match P.hot_blocks ~limit:2 m with
    | (h1, _) :: (h2, _) :: _ ->
      if not (P.alias_block m ~at:h1 ~from:h2) then
        failwith "vtrace: --inject-hot: alias rejected";
      Printf.printf "  injected: entry 0x%08x now runs the block compiled for 0x%08x\n" h1 h2
    | _ -> failwith "vtrace: --inject-hot needs >=2 compiled blocks (is mode-b \"blocks\"?)"
  end;
  Trace.reset tr;
  P.reset_stats m;
  pass ();
  (tr, prep.W.regions, !abort)

let symbolize regions pc =
  match W.symbol_of regions pc with
  | Some s -> Printf.sprintf "0x%08x  %s" pc s
  | None -> Printf.sprintf "0x%08x" pc

(* ------------------------------------------------------------------ *)
(* capture                                                             *)

let capture port workload mode iters cap fuel bin json =
  let p = W.port_exn ~tool:"vtrace" port in
  let workload = W.workload_exn ~tool:"vtrace" workload in
  let tr, regions, abort = traced_run p ~workload ~mode ~iters ~cap ~fuel () in
  Printf.printf "vtrace: %s on %s, %s mode (%d iterations)\n" workload port mode iters;
  Printf.printf "  %d records seen, %d retained, %d dropped (ring 2^%d)\n" (Trace.seen tr)
    (Trace.retained tr) (Trace.dropped tr) cap;
  (match abort with
  | Some e -> Printf.printf "  measured pass aborted: %s\n" e
  | None -> ());
  (match bin with
  | None -> ()
  | Some path ->
    let oc = open_out_bin path in
    Trace.write_binary oc ~port ~mode ~workload tr;
    close_out oc;
    Printf.printf "  wrote binary trace to %s\n" path);
  (match json with
  | None -> ()
  | Some path ->
    let b = Buffer.create 65536 in
    Chrome_trace.write_trace b ~symbol:(W.symbol_of regions) ~port ~mode ~workload tr;
    let oc = open_out path in
    Buffer.output_buffer oc b;
    close_out oc;
    Printf.printf "  wrote Chrome trace_event JSON to %s (load in Perfetto)\n" path);
  if bin = None && json = None then begin
    (* no export requested: print the tail as a smoke report *)
    let recs = Trace.records tr in
    let n = Array.length recs in
    let first = max 0 (n - 16) in
    Printf.printf "  last %d records:\n" (n - first);
    for i = first to n - 1 do
      let kind, payload = recs.(i) in
      Printf.printf "    %-12s %s\n" (Trace.kind_name kind) (symbolize regions payload)
    done
  end

(* ------------------------------------------------------------------ *)
(* diff                                                                *)

let stream_context label regions (pcs : int array) ~ordinal ~context =
  let n = Array.length pcs in
  let first = max 0 (ordinal - context) in
  let last = min (n - 1) (ordinal + context) in
  Printf.printf "  %s stream (%d retired):\n" label n;
  if first > 0 then Printf.printf "    ... %d earlier\n" first;
  for i = first to last do
    Printf.printf "  %s %6d  %s\n" (if i = ordinal then ">" else " ") i
      (symbolize regions pcs.(i))
  done;
  if n = 0 then Printf.printf "    (empty)\n"
  else if ordinal >= n then Printf.printf "  > %6d  (stream ended)\n" ordinal

let diff port workload mode_a mode_b iters cap fuel inject context =
  let p = W.port_exn ~tool:"vtrace" port in
  let workload = W.workload_exn ~tool:"vtrace" workload in
  (* A corrupted run can spin until fuel runs out; if that overflows
     the trace ring, the head of the stream — where the true first
     divergence lives — is lost.  Clamp the per-call budget well under
     the ring capacity (retires plus block-dispatch marks both land in
     it) so the measured stream is always fully retained; raise --cap
     to afford more fuel. *)
  let fuel = min fuel ((1 lsl cap) / 4) in
  Printf.printf "vtrace diff: %s on %s, %s vs %s (%d iterations)\n" workload port mode_a
    mode_b iters;
  let tr_a, regions_a, abort_a = traced_run p ~workload ~mode:mode_a ~iters ~cap ~fuel () in
  let tr_b, regions_b, abort_b =
    traced_run p ~workload ~mode:mode_b ~iters ~cap ~fuel ~inject_hot:inject ()
  in
  (match abort_a with
  | Some e -> Printf.printf "  %s pass aborted: %s\n" mode_a e
  | None -> ());
  (match abort_b with
  | Some e -> Printf.printf "  %s pass aborted: %s\n" mode_b e
  | None -> ());
  let a = Trace.retired_pcs tr_a and b = Trace.retired_pcs tr_b in
  if Trace.dropped tr_a > 0 || Trace.dropped tr_b > 0 then
    Printf.printf
      "  warning: ring overflow (a dropped %d, b dropped %d) — only the tails align;\n\
      \  rerun with a larger --cap for a full-stream diff\n"
      (Trace.dropped tr_a) (Trace.dropped tr_b);
  match Trace.first_divergence a b with
  | None ->
    Printf.printf "  identical: %d retired instructions in both modes\n" (Array.length a);
    exit 0
  | Some d ->
    Printf.printf "\n  FIRST DIVERGENCE at retired instruction %d:\n" d.Trace.ordinal;
    Printf.printf "    %-10s %s\n" mode_a
      (if d.Trace.a_pc < 0 then "(stream ended)" else symbolize regions_a d.Trace.a_pc);
    Printf.printf "    %-10s %s\n\n" mode_b
      (if d.Trace.b_pc < 0 then "(stream ended)" else symbolize regions_b d.Trace.b_pc);
    stream_context mode_a regions_a a ~ordinal:d.Trace.ordinal ~context;
    stream_context mode_b regions_b b ~ordinal:d.Trace.ordinal ~context;
    exit 1

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

open Cmdliner

let port_arg =
  Arg.(value & opt string "mips" & info [ "p"; "port" ] ~docv:"PORT" ~doc:"mips|sparc|alpha|ppc")

let workload_arg =
  Arg.(
    value
    & opt string "alu-loop"
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:"dpf-classify|table4-ash|alu-loop|region-loop")

let iters_arg =
  Arg.(value & opt int 200 & info [ "iters" ] ~docv:"N" ~doc:"workload iterations")

let cap_arg =
  Arg.(
    value & opt int 20
    & info [ "cap" ] ~docv:"POW2" ~doc:"trace ring capacity, log2 records (8..24)")

let fuel_arg =
  Arg.(
    value & opt int 50_000_000
    & info [ "fuel" ] ~docv:"N" ~doc:"per-call instruction budget (bounds corrupted runs)")

let capture_cmd =
  let mode_arg =
    Arg.(
      value & opt string "blocks"
      & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"off|predecode|blocks|regions")
  in
  let bin_arg =
    Arg.(
      value & opt (some string) None & info [ "bin" ] ~docv:"FILE" ~doc:"binary trace output")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Chrome trace_event JSON output (Perfetto)")
  in
  Cmd.v
    (Cmd.info "capture" ~doc:"run one traced workload and export the ring")
    Term.(
      const capture $ port_arg $ workload_arg $ mode_arg $ iters_arg $ cap_arg $ fuel_arg
      $ bin_arg $ json_arg)

let diff_cmd =
  let mode_a_arg =
    Arg.(value & opt string "off" & info [ "mode-a" ] ~docv:"MODE" ~doc:"reference mode")
  in
  let mode_b_arg =
    Arg.(value & opt string "blocks" & info [ "mode-b" ] ~docv:"MODE" ~doc:"candidate mode")
  in
  let inject_arg =
    Arg.(
      value & flag
      & info [ "inject-hot" ]
          ~doc:"corrupt mode-b's block cache (alias hottest entry) before the measured pass")
  in
  let context_arg =
    Arg.(value & opt int 5 & info [ "context" ] ~docv:"N" ~doc:"stream rows around the divergence")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"run two engine modes and report the first retired-instruction divergence")
    Term.(
      const diff $ port_arg $ workload_arg $ mode_a_arg $ mode_b_arg $ iters_arg $ cap_arg
      $ fuel_arg $ inject_arg $ context_arg)

let () =
  let info =
    Cmd.info "vtrace" ~doc:"execution-trace capture, export and cross-mode diffing"
  in
  exit (Cmd.eval (Cmd.group info [ capture_cmd; diff_cmd ]))
