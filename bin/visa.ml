(* visa: the VCODE instruction-set-architecture tool.

   Prints the paper's specification tables from the implementation (so
   they cannot drift), reports per-port mapping statistics (the
   section 3.3 retargeting-size claim), and disassembles hex words for
   any port — the working half of the symbolic debugger the paper lists
   as future work (section 6.2).

   Subcommands:
     visa types        print Table 1 (the VCODE types)
     visa core         print Table 2 (the core instruction set)
     visa ports        per-port mapping statistics
     visa disasm       disassemble hex instruction words
     visa asm          assemble a MIPS .asm file (listing or bare hex)
     visa demo         generate plus1 on every port and disassemble it *)

open Vcodebase

let print_types () =
  Printf.printf "Table 1: VCODE types\n\n";
  Printf.printf "  %-4s %s\n" "" "C equivalent";
  List.iter
    (fun t -> Printf.printf "  %-4s %s\n" (Vtype.to_string t) (Vtype.c_equivalent t))
    Vtype.all

let tys_str tys = String.concat "" (List.map Vtype.to_string tys)

let print_core () =
  Printf.printf "Table 2: core VCODE instructions\n\n";
  Printf.printf "Standard binary operations (rd, rs1, rs2):\n";
  List.iter
    (fun op ->
      Printf.printf "  %-5s %-12s\n" (Op.binop_to_string op) (tys_str (Op.binop_types op)))
    Op.all_binops;
  Printf.printf "\nStandard unary operations (rd, rs):\n";
  List.iter
    (fun op ->
      Printf.printf "  %-5s %-12s\n" (Op.unop_to_string op) (tys_str (Op.unop_types op)))
    Op.all_unops;
  Printf.printf "  %-5s %-12s  (load constant)\n" "set" (tys_str Op.set_types);
  Printf.printf "\nConversions (cv<from>2<to>):\n ";
  List.iter
    (fun (a, b) -> Printf.printf " cv%s2%s" (Vtype.to_string a) (Vtype.to_string b))
    Op.conversions;
  Printf.printf "\n\nMemory operations (rd, rs, offset):\n";
  Printf.printf "  %-5s %-16s\n" "ld" (tys_str Op.mem_types);
  Printf.printf "  %-5s %-16s\n" "st" (tys_str Op.mem_types);
  Printf.printf "\nReturn to caller (rs):\n";
  Printf.printf "  %-5s %-16s\n" "ret" (tys_str Op.ret_types);
  Printf.printf "\nJumps (addr): j, jal  (to immediate, register, or label)\n";
  Printf.printf "\nBranch instructions (rs1, rs2, label):\n";
  List.iter
    (fun c -> Printf.printf "  %-5s %-12s\n" (Op.cond_to_string c) (tys_str (Op.cond_types c)))
    Op.all_conds;
  Printf.printf "\nNullary operation: nop\n"

let ports : (string * (module Target.S)) list =
  [
    ("mips", (module Vmips.Mips_backend));
    ("sparc", (module Vsparc.Sparc_backend));
    ("alpha", (module Valpha.Alpha_backend));
    ("ppc", (module Vppc.Ppc_backend));
  ]

let print_ports () =
  Printf.printf "VCODE ports (section 3.3: a RISC retarget is 1-4 days; the\n";
  Printf.printf "machine mapping itself is 40-100 spec lines)\n\n";
  Printf.printf "  %-7s %5s %6s %6s %6s %6s %6s %11s %6s\n" "port" "bits" "endian"
    "dslots" "temps" "vars" "ftemps" "extra-insns" "fvars";
  List.iter
    (fun (name, (module T : Target.S)) ->
      let d = T.desc in
      Printf.printf "  %-7s %5d %6s %6d %6d %6d %6d %11d %6d\n" name
        d.Machdesc.word_bits
        (if d.Machdesc.big_endian then "big" else "little")
        d.Machdesc.branch_delay_slots
        (Array.length d.Machdesc.temps)
        (Array.length d.Machdesc.vars)
        (Array.length d.Machdesc.ftemps)
        (List.length T.extra_insns)
        (Array.length d.Machdesc.fvars))
    ports

let disasm port words =
  match List.assoc_opt port ports with
  | None ->
    Printf.eprintf "unknown port %s (mips|sparc|alpha|ppc)\n" port;
    exit 1
  | Some (module T : Target.S) ->
    List.iteri
      (fun i w ->
        let addr = 4 * i in
        Printf.printf "  %08x  %s\n" w (T.disasm ~word:w ~addr))
      words

let demo () =
  let plus1 (type a) (name : string) (module T : Target.S) =
    let module V = Vcode.Make (T) in
    let g, args = V.lambda ~base:0x1000 ~leaf:true "%i" in
    V.arith_imm g Op.Add Vtype.I args.(0) args.(0) 1;
    V.ret g Vtype.I (Some args.(0));
    let code = V.end_gen g in
    Printf.printf "-- %s: int plus1(int x) { return x + 1; } --\n" name;
    (* skip the nop-filled reserved prologue area in the listing *)
    let entry_idx = (code.Vcode.entry_addr - code.Vcode.base) / 4 in
    List.iteri
      (fun i line -> if i >= entry_idx then Printf.printf "%s\n" line)
      (V.dump code.Vcode.gen);
    Printf.printf "\n";
    ignore (None : a option)
  in
  List.iter (fun (name, t) -> plus1 name t) ports

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

open Cmdliner

let types_cmd = Cmd.v (Cmd.info "types" ~doc:"print Table 1") Term.(const print_types $ const ())
let core_cmd = Cmd.v (Cmd.info "core" ~doc:"print Table 2") Term.(const print_core $ const ())
let ports_cmd = Cmd.v (Cmd.info "ports" ~doc:"port statistics") Term.(const print_ports $ const ())
let demo_cmd = Cmd.v (Cmd.info "demo" ~doc:"plus1 on every port") Term.(const demo $ const ())

let disasm_cmd =
  let port =
    Arg.(value & opt string "mips" & info [ "p"; "port" ] ~docv:"PORT" ~doc:"mips|sparc|alpha")
  in
  let words =
    Arg.(value & pos_all string [] & info [] ~docv:"WORD" ~doc:"hex instruction words")
  in
  (* a bad token is a diagnostic and a non-zero exit, not a silent skip
     or an uncaught Failure *)
  let parse_word w =
    let hex = if String.length w > 2 && (w.[0] = '0' && (w.[1] = 'x' || w.[1] = 'X')) then w else "0x" ^ w in
    match int_of_string_opt hex with
    | Some v when v >= 0 && v <= 0xFFFFFFFF -> v
    | Some v ->
      Printf.eprintf "visa disasm: word %S out of 32-bit range (%d)\n" w v;
      exit 1
    | None ->
      Printf.eprintf "visa disasm: invalid hex instruction word %S\n" w;
      exit 1
  in
  let run port words = disasm port (List.map parse_word words) in
  Cmd.v (Cmd.info "disasm" ~doc:"disassemble instruction words") Term.(const run $ port $ words)

let asm_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"MIPS assembly source") in
  let base =
    Arg.(value & opt string "0x10000" & info [ "base" ] ~docv:"ADDR" ~doc:"load address (decimal or 0x hex)")
  in
  let hex =
    Arg.(value & flag & info [ "hex" ] ~doc:"print bare hex words (pipeable into visa disasm) instead of a listing")
  in
  let run file base hex =
    let base =
      match int_of_string_opt base with
      | Some b when b >= 0 -> b
      | _ ->
        Printf.eprintf "visa asm: invalid base address %S\n" base;
        exit 1
    in
    match Vasm.assemble_file ~base file with
    | Error d ->
      Printf.eprintf "%s:%s\n" file (Vasm.diag_to_string d);
      exit 1
    | Ok img ->
      if hex then
        Array.iter (fun w -> Printf.printf "%08x\n" w) img.Vasm.words
      else begin
        Printf.printf "%s: %d words at 0x%x, entry 0x%x\n" file (Array.length img.Vasm.words)
          img.Vasm.base img.Vasm.entry;
        List.iter (fun (s, a) -> Printf.printf "  %08x  %s:\n" a s) img.Vasm.symbols;
        Printf.printf "\n";
        Array.iteri
          (fun i w ->
            let addr = img.Vasm.base + (4 * i) in
            Printf.printf "  %08x  %08x  %s\n" addr w
              (Vmips.Mips_backend.disasm ~word:w ~addr))
          img.Vasm.words
      end
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"assemble a MIPS .asm file and list or dump the words")
    Term.(const run $ file $ base $ hex)

let () =
  let info = Cmd.info "visa" ~doc:"VCODE ISA inspection tool" in
  exit (Cmd.eval (Cmd.group info [ types_cmd; core_cmd; ports_cmd; disasm_cmd; asm_cmd; demo_cmd ]))
