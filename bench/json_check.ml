(* Strict validator for the benchmark harness's `--json FILE` output.

   The harness writes its results by hand (bench/main.ml, [write_json])
   rather than through a JSON library, so nothing structurally guards
   the format; this tool re-parses the file with a small
   strict-by-construction RFC 8259 parser and exits non-zero on any
   deviation — in particular a bare `nan`/`inf` token from a non-finite
   measurement, the regression that [json_float]'s null fallback
   exists to prevent.

   [--require-schema N] additionally demands that every file carry a
   top-level "schema" key equal to N — the version pin for the
   bench/vprof/vtrace JSON layouts (each documents its own number).

   usage: json_check.exe [--require-schema N] FILE...                   *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type state = { s : string; mutable i : int }

let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let next st =
  match peek st with
  | Some c ->
    st.i <- st.i + 1;
    c
  | None -> fail "unexpected end of input at offset %d" st.i

let expect st c =
  let got = next st in
  if got <> c then fail "expected %C at offset %d, got %C" c (st.i - 1) got

let skip_ws st =
  while match peek st with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false do
    st.i <- st.i + 1
  done

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match next st with
    | '"' -> Buffer.contents b
    | '\\' -> (
      (match next st with
      | ('"' | '\\' | '/') as c -> Buffer.add_char b c
      | 'b' -> Buffer.add_char b '\b'
      | 'f' -> Buffer.add_char b '\012'
      | 'n' -> Buffer.add_char b '\n'
      | 'r' -> Buffer.add_char b '\r'
      | 't' -> Buffer.add_char b '\t'
      | 'u' ->
        for _ = 1 to 4 do
          match next st with
          | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
          | c -> fail "bad \\u escape digit %C at offset %d" c (st.i - 1)
        done;
        Buffer.add_char b '?'
      | c -> fail "bad escape \\%C at offset %d" c (st.i - 1));
      go ())
    | c when Char.code c < 0x20 -> fail "raw control byte in string at offset %d" (st.i - 1)
    | c ->
      Buffer.add_char b c;
      go ()
  in
  go ()

(* strict RFC 8259 number grammar; in particular rejects `nan`, `inf`,
   `-`, leading `+`, leading zeros, and a bare `.` *)
let parse_number st =
  let start = st.i in
  if peek st = Some '-' then ignore (next st);
  (match next st with
  | '0' -> ()
  | '1' .. '9' ->
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      ignore (next st)
    done
  | c -> fail "bad number start %C at offset %d" c (st.i - 1));
  (match peek st with
  | Some '.' ->
    ignore (next st);
    (match next st with
    | '0' .. '9' -> ()
    | c -> fail "digit required after '.' at offset %d, got %C" (st.i - 1) c);
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      ignore (next st)
    done
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    ignore (next st);
    (match peek st with Some ('+' | '-') -> ignore (next st) | _ -> ());
    (match next st with
    | '0' .. '9' -> ()
    | c -> fail "digit required in exponent at offset %d, got %C" (st.i - 1) c);
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      ignore (next st)
    done
  | _ -> ());
  let lit = String.sub st.s start (st.i - start) in
  match float_of_string_opt lit with
  | Some v when Float.is_finite v -> ()
  | _ -> fail "number %S at offset %d does not round-trip to a finite float" lit start

let parse_literal st lit =
  String.iter (fun c -> expect st c) lit

(* raw text of the top-level "schema" member of the last parsed file,
   for --require-schema *)
let schema_literal : string option ref = ref None

let rec parse_value ?(top = false) st =
  skip_ws st;
  match peek st with
  | Some '"' -> ignore (parse_string st)
  | Some '{' -> parse_object ~top st
  | Some '[' -> parse_array st
  | Some 't' -> parse_literal st "true"
  | Some 'f' -> parse_literal st "false"
  | Some 'n' -> parse_literal st "null"
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail "unexpected %C at offset %d" c st.i
  | None -> fail "unexpected end of input at offset %d" st.i

and parse_object ~top st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then ignore (next st)
  else
    let seen = Hashtbl.create 64 in
    let rec member () =
      skip_ws st;
      let key = parse_string st in
      if Hashtbl.mem seen key then fail "duplicate key %S" key;
      Hashtbl.add seen key ();
      skip_ws st;
      expect st ':';
      skip_ws st;
      let vstart = st.i in
      parse_value st;
      if top && key = "schema" then
        schema_literal := Some (String.sub st.s vstart (st.i - vstart));
      skip_ws st;
      match next st with
      | ',' -> member ()
      | '}' -> ()
      | c -> fail "expected ',' or '}' at offset %d, got %C" (st.i - 1) c
    in
    member ()

and parse_array st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then ignore (next st)
  else
    let rec element () =
      parse_value st;
      skip_ws st;
      match next st with
      | ',' -> element ()
      | ']' -> ()
      | c -> fail "expected ',' or ']' at offset %d, got %C" (st.i - 1) c
    in
    element ()

let check_file ?require_schema path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let st = { s; i = 0 } in
  schema_literal := None;
  skip_ws st;
  if peek st <> Some '{' then fail "top level must be an object";
  parse_value ~top:true st;
  skip_ws st;
  if st.i <> String.length s then fail "trailing garbage at offset %d" st.i;
  match require_schema with
  | None -> ()
  | Some want -> (
    match !schema_literal with
    | None -> fail "missing top-level \"schema\" key (expected %d)" want
    | Some lit ->
      if int_of_string_opt lit <> Some want then
        fail "schema %s, expected %d" lit want)

let usage () =
  prerr_endline "usage: json_check.exe [--require-schema N] FILE...";
  exit 2

let () =
  let rec parse files require = function
    | [] -> (List.rev files, require)
    | "--require-schema" :: n :: rest -> (
      match int_of_string_opt n with
      | Some v -> parse files (Some v) rest
      | None ->
        prerr_endline "--require-schema needs an integer";
        usage ())
    | [ "--require-schema" ] ->
      prerr_endline "--require-schema needs an integer";
      usage ()
    | f :: rest -> parse (f :: files) require rest
  in
  let files, require_schema = parse [] None (List.tl (Array.to_list Sys.argv)) in
  if files = [] then usage ();
  let bad = ref false in
  List.iter
    (fun path ->
      match check_file ?require_schema path with
      | () -> Printf.printf "%s: ok\n" path
      | exception Bad msg ->
        Printf.eprintf "%s: invalid JSON: %s\n" path msg;
        bad := true
      | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        bad := true)
    files;
  if !bad then exit 1
