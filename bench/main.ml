(* The benchmark harness: regenerates every evaluation artifact of the
   paper.

   - "codegen-cost"  : the headline claim (section 1/5.1, Figure 2):
     dynamic code generation cost per generated instruction, VCODE
     vs. the DCG-style IR baseline (the paper reports ~35x), plus the
     hard-coded-register variant of section 5.3 and heap allocation per
     instruction (the in-place space claim).  Wall-clock, via Bechamel.
   - "table3-dpf"    : Table 3 -- average time to classify TCP/IP headers
     destined for one of ten filters: DPF (compiled) vs PATHFINDER-style
     trie interpreter vs MPF-style per-filter interpreter, all executing
     on the simulated DECstation 5000/200; cycles converted to
     microseconds at its clock rate.
   - "table4-ash"    : Table 4 -- integrated vs non-integrated message
     operations (copy+cksum, copy+cksum+swap) on simulated DEC3100 and
     DEC5000, warm and after a cache flush.
   - "space"         : generation-time memory: VCODE bookkeeping is
     O(labels), DCG state is O(instructions).

   Table 1 and Table 2 are specification tables; `bin/visa.exe` prints
   them from the implementation.  Absolute numbers differ from the
   paper's 1996 hardware; EXPERIMENTS.md records the shape comparison. *)

open Vcodebase
module V = Vcode.Make (Vmips.Mips_backend)
module VU = Vcode.Make_unchecked (Vmips.Mips_backend)
module VP = Vcode.Make_unchecked (Vcode.Make_peephole (Vmips.Mips_backend))
module D = Dcg.Make (Vmips.Mips_backend)
module Sim = Vmips.Mips_sim

let insns_per_body = 200

(* enough buffer for the 200-insn body plus prologue/epilogue, so the
   steady state of every codegen fixture is allocation-free *)
let body_capacity = 320

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every section records its headline numbers
   under a dotted key; --json FILE dumps them as one flat JSON object. *)

let json_results : (string * float) list ref = ref []
let record key v = json_results := (key, v) :: !json_results

(* --telemetry: one enabled sink threaded into the Table 3 / Table 4
   workload simulators and generators; --json then appends its contents
   as a nested "telemetry" object (counters, distribution summaries,
   event total).  Off by default, so plain runs keep the disabled sink
   and its zero-overhead path. *)
let tel_sink : Vmachine.Telemetry.t option ref = ref None
let tel () = match !tel_sink with Some t -> t | None -> Vmachine.Telemetry.disabled

let json_float v =
  match Float.classify_float v with
  | FP_nan | FP_infinite -> "null"
  | _ -> Printf.sprintf "%.6g" v

(* version of the --json document layout; bump when keys change.
   bench/json_check.exe --require-schema pins it in the test suite.
     1: pre-schema-field dumps
     2: added this field
     3: sim-throughput regions tier + region-loop workload rows
     4: router section (registry install/demux rates under churn)
     5: peephole section (peephole-on table3/table4 rows, the codegen
        vcode-peephole ladder row, rewrite counters)
     6: corpus section (four-mode rates for the external .asm
        workloads)
     7: tail-latency percentiles — router.install_ns.* and
        router.classify_ns.* (p50/p99/p999 interpolated from the
        telemetry log2 buckets by Telemetry.quantile_of_stats) and
        corpus.mips.<w>.run_ns.* per-run percentiles *)
let json_schema_version = 7

let write_json path =
  let items = List.rev !json_results in
  let n = List.length items in
  let tel_on = match !tel_sink with Some _ -> true | None -> false in
  let oc = open_out path in
  output_string oc "{\n";
  Printf.fprintf oc "  \"schema\": %d%s\n" json_schema_version
    (if n > 0 || tel_on then "," else "");
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  %S: %s%s\n" k (json_float v)
        (if i < n - 1 || tel_on then "," else ""))
    items;
  (match !tel_sink with
  | None -> ()
  | Some t ->
    let module T = Vmachine.Telemetry in
    let collect iter = (* registration-ordered (name, payload) list *)
      let acc = ref [] in
      iter t (fun name v -> acc := (name, v) :: !acc);
      List.rev !acc
    in
    let emit_obj indent kvs payload =
      let n = List.length kvs in
      List.iteri
        (fun i (k, v) ->
          Printf.fprintf oc "%s%S: %s%s\n" indent k (payload v)
            (if i < n - 1 then "," else ""))
        kvs
    in
    output_string oc "  \"telemetry\": {\n    \"counters\": {\n";
    emit_obj "      " (collect T.iter_counters) string_of_int;
    output_string oc "    },\n    \"dists\": {\n";
    emit_obj "      " (collect T.iter_dists) (fun (st : T.dist_stats) ->
        Printf.sprintf "{ \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d }"
          st.T.count st.T.sum st.T.min st.T.max);
    Printf.fprintf oc "    },\n    \"events_seen\": %d\n  }\n" (T.events_seen t);
    ());
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote %d results to %s\n" n path

(* dotted-key path component: lowercase, alphanumeric runs joined by _ *)
let slug s =
  String.map (fun c ->
      match Char.lowercase_ascii c with 'a' .. 'z' | '0' .. '9' -> Char.lowercase_ascii c | _ -> '_')
    s

(* ------------------------------------------------------------------ *)
(* Codegen-cost fixtures: the same 200-instruction function, specified
   through each system.                                                *)

(* A realistic instruction mix: ALU, immediates, loads/stores.  The
   fixtures call the core checked emitters ([arith], [load_imm], ...)
   directly — the paper's v_addii &c. are macros that expand to exactly
   this, and the [Names] aliases are one extra OCaml call the C macros
   don't have. *)
let vcode_body g (r0 : Reg.t) (r1 : Reg.t) (p : Reg.t) =
  for _ = 1 to insns_per_body / 8 do
    V.arith_imm g Op.Add Vtype.I r0 r0 1;
    V.arith g Op.Add Vtype.I r1 r1 r0;
    V.arith_imm g Op.Lsh Vtype.I r0 r0 2;
    V.arith g Op.Xor Vtype.I r0 r0 r1;
    V.load_imm g Vtype.I r1 p 0;
    V.store_imm g Vtype.I r0 p 4;
    V.arith g Op.Sub Vtype.I r0 r0 r1;
    V.arith_imm g Op.Or Vtype.I r1 r1 255
  done

let gen_vcode_checked () =
  let g, args = V.lambda ~base:0x1000 ~leaf:true ~capacity:body_capacity "%i%i%p" in
  vcode_body g args.(0) args.(1) args.(2);
  V.Names.reti g args.(0);
  V.end_gen g

(* the same mix through the unchecked instantiation (checks compiled out) *)
let vcode_body_u g (r0 : Reg.t) (r1 : Reg.t) (p : Reg.t) =
  for _ = 1 to insns_per_body / 8 do
    VU.arith_imm g Op.Add Vtype.I r0 r0 1;
    VU.arith g Op.Add Vtype.I r1 r1 r0;
    VU.arith_imm g Op.Lsh Vtype.I r0 r0 2;
    VU.arith g Op.Xor Vtype.I r0 r0 r1;
    VU.load_imm g Vtype.I r1 p 0;
    VU.store_imm g Vtype.I r0 p 4;
    VU.arith g Op.Sub Vtype.I r0 r0 r1;
    VU.arith_imm g Op.Or Vtype.I r1 r1 255
  done

let gen_vcode_unchecked () =
  let g, args = VU.lambda ~base:0x1000 ~leaf:true ~capacity:body_capacity "%i%i%p" in
  vcode_body_u g args.(0) args.(1) args.(2);
  VU.Names.reti g args.(0);
  VU.end_gen g

(* the same mix through the peephole-wrapped unchecked port: measures
   the sliding-window overhead against the unchecked floor *)
let vcode_body_p g (r0 : Reg.t) (r1 : Reg.t) (p : Reg.t) =
  for _ = 1 to insns_per_body / 8 do
    VP.arith_imm g Op.Add Vtype.I r0 r0 1;
    VP.arith g Op.Add Vtype.I r1 r1 r0;
    VP.arith_imm g Op.Lsh Vtype.I r0 r0 2;
    VP.arith g Op.Xor Vtype.I r0 r0 r1;
    VP.load_imm g Vtype.I r1 p 0;
    VP.store_imm g Vtype.I r0 p 4;
    VP.arith g Op.Sub Vtype.I r0 r0 r1;
    VP.arith_imm g Op.Or Vtype.I r1 r1 255
  done

let gen_vcode_peephole () =
  let g, args = VP.lambda ~base:0x1000 ~leaf:true ~capacity:body_capacity "%i%i%p" in
  vcode_body_p g args.(0) args.(1) args.(2);
  VP.Names.reti g args.(0);
  VP.end_gen g

(* hard-coded register names (section 5.3): no allocator interaction *)
let gen_vcode_hard_regs () =
  let g, args = V.lambda ~base:0x1000 ~leaf:true ~capacity:body_capacity "%p" in
  let r0 = V.treg 0 and r1 = V.treg 1 in
  vcode_body g r0 r1 args.(0);
  V.Names.reti g r0;
  V.end_gen g

(* raw backend emitters, bypassing the checked layer *)
let gen_vcode_raw () =
  let module T = Vmips.Mips_backend in
  let g, args = V.lambda ~base:0x1000 ~leaf:true ~capacity:body_capacity "%i%i%p" in
  let r0 = args.(0) and r1 = args.(1) and p = args.(2) in
  for _ = 1 to insns_per_body / 8 do
    T.arith_imm g Op.Add Vtype.I r0 r0 1;
    T.arith g Op.Add Vtype.I r1 r1 r0;
    T.arith_imm g Op.Lsh Vtype.I r0 r0 2;
    T.arith g Op.Xor Vtype.I r0 r0 r1;
    T.load_imm g Vtype.I r1 p 0;
    T.store_imm g Vtype.I r0 p 4;
    T.arith g Op.Sub Vtype.I r0 r0 r1;
    T.arith_imm g Op.Or Vtype.I r1 r1 255
  done;
  T.ret g Vtype.I (Some r0);
  V.end_gen g

(* the same mix as IR trees, built and consumed at runtime (DCG) *)
let gen_dcg () =
  let c, args = D.lambda ~base:0x1000 ~leaf:true "%i%i%p" in
  let r0 = args.(0) and r1 = args.(1) and p = args.(2) in
  let e0 = Dcg.Regv (Vtype.I, r0) and e1 = Dcg.Regv (Vtype.I, r1) in
  let ep = Dcg.Regv (Vtype.P, p) in
  for _ = 1 to insns_per_body / 8 do
    D.stmt c (Dcg.Sassign (r0, Dcg.Bin (Op.Add, Vtype.I, e0, Dcg.Cnst (Vtype.I, 1L))));
    D.stmt c (Dcg.Sassign (r1, Dcg.Bin (Op.Add, Vtype.I, e1, e0)));
    D.stmt c (Dcg.Sassign (r0, Dcg.Bin (Op.Lsh, Vtype.I, e0, Dcg.Cnst (Vtype.I, 2L))));
    D.stmt c (Dcg.Sassign (r0, Dcg.Bin (Op.Xor, Vtype.I, e0, e1)));
    D.stmt c (Dcg.Sassign (r1, Dcg.Ld (Vtype.I, ep, 0)));
    D.stmt c (Dcg.Sstore (Vtype.I, ep, 4, e0));
    D.stmt c (Dcg.Sassign (r0, Dcg.Bin (Op.Sub, Vtype.I, e0, e1)));
    D.stmt c (Dcg.Sassign (r1, Dcg.Bin (Op.Or, Vtype.I, e1, Dcg.Cnst (Vtype.I, 255L))))
  done;
  D.stmt c (Dcg.Sret (Vtype.I, Some e0));
  D.finish c

(* allocation accounting *)
let minor_words_of f =
  let a = Gc.minor_words () in
  let r = f () in
  ignore (Sys.opaque_identity r);
  Gc.minor_words () -. a

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                   *)

open Bechamel
open Toolkit

let run_benchmarks (tests : Test.t list) =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second 1.0) ~kde:None () in
  let tbl = Hashtbl.create 17 in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with Some [ x ] -> x | _ -> nan
          in
          Hashtbl.replace tbl (Test.Elt.name elt) ns)
        (Test.elements test))
    tests;
  tbl

(* ------------------------------------------------------------------ *)
(* Section: codegen cost                                               *)

let bench_codegen () =
  Printf.printf "== codegen-cost (Figure 2 / the 6-10 insns-per-insn headline) ==\n";
  Printf.printf "   %d-instruction function, generated repeatedly; wall time per\n"
    insns_per_body;
  Printf.printf "   VCODE instruction, plus heap words allocated per instruction.\n\n";
  let tests =
    [
      Test.make ~name:"vcode" (Staged.stage (fun () -> Sys.opaque_identity (gen_vcode_checked ())));
      Test.make ~name:"vcode-unchecked" (Staged.stage (fun () -> Sys.opaque_identity (gen_vcode_unchecked ())));
      Test.make ~name:"vcode-peephole" (Staged.stage (fun () -> Sys.opaque_identity (gen_vcode_peephole ())));
      Test.make ~name:"vcode-hard-regs" (Staged.stage (fun () -> Sys.opaque_identity (gen_vcode_hard_regs ())));
      Test.make ~name:"vcode-raw-emitters" (Staged.stage (fun () -> Sys.opaque_identity (gen_vcode_raw ())));
      Test.make ~name:"dcg-ir" (Staged.stage (fun () -> Sys.opaque_identity (gen_dcg ())));
    ]
  in
  let tbl = run_benchmarks tests in
  let get n = try Hashtbl.find tbl n with Not_found -> nan in
  let per n = get n /. float_of_int insns_per_body in
  let rows =
    [
      ("vcode (checked API)", per "vcode");
      ("vcode (unchecked API)", per "vcode-unchecked");
      ("vcode (unchecked + peephole)", per "vcode-peephole");
      ("vcode (hard-coded registers)", per "vcode-hard-regs");
      ("vcode (raw backend emitters)", per "vcode-raw-emitters");
      ("dcg (IR build + consume)", per "dcg-ir");
    ]
  in
  List.iter (fun n -> record ("codegen." ^ slug n ^ ".ns_per_insn") (per n))
    [ "vcode"; "vcode-unchecked"; "vcode-peephole"; "vcode-hard-regs";
      "vcode-raw-emitters"; "dcg-ir" ];
  Printf.printf "   %-34s %14s %10s\n" "system" "ns/generated" "vs vcode";
  let base = per "vcode" in
  List.iter
    (fun (name, ns) -> Printf.printf "   %-34s %14.1f %9.2fx\n" name ns (ns /. base))
    rows;
  let per_insn_words f = minor_words_of f /. float_of_int insns_per_body in
  let aw_v = per_insn_words gen_vcode_checked in
  let aw_u = per_insn_words gen_vcode_unchecked in
  let aw_r = per_insn_words gen_vcode_raw in
  let aw_d = per_insn_words gen_dcg in
  Printf.printf
    "\n   heap words allocated per instruction: vcode %.2f, unchecked %.2f, raw %.2f, dcg %.1f (%.1fx)\n"
    aw_v aw_u aw_r aw_d (aw_d /. aw_v);
  Printf.printf "   paper: vcode ~6-10 host insns/insn; DCG ~35x slower than vcode.\n";
  Printf.printf "   (the raw-emitter row is the closest analogue of the paper's C\n";
  Printf.printf "   macros; the unchecked row is its NDEBUG build of v_* macros.)\n\n";
  record "codegen.dcg_vs_vcode" (per "dcg-ir" /. base);
  record "codegen.dcg_vs_raw" (per "dcg-ir" /. per "vcode-raw-emitters");
  record "codegen.unchecked_vs_raw" (per "vcode-unchecked" /. per "vcode-raw-emitters");
  record "codegen.checked_vs_unchecked" (base /. per "vcode-unchecked");
  record "codegen.peephole_vs_unchecked" (per "vcode-peephole" /. per "vcode-unchecked");
  record "codegen.alloc_words_vcode" aw_v;
  record "codegen.alloc_words_vcode_unchecked" aw_u;
  record "codegen.alloc_words_vcode_raw" aw_r;
  record "codegen.alloc_words_dcg" aw_d;
  (per "dcg-ir" /. base, per "dcg-ir" /. per "vcode-raw-emitters", aw_d /. aw_v)

(* ------------------------------------------------------------------ *)
(* Section: Table 3                                                    *)

module DP = Dpf.Make (Vmips.Mips_backend)
module TC = Tcc.Tcc_compile.Make (Vmips.Mips_backend)

let pkt_addr = 0x80000
let prog_addr = 0x100000

let avg_cycles_per_classify ~classify =
  let ports = Array.init 1000 (fun i -> 1000 + (i mod 10)) in
  (* warm instruction cache with one classification *)
  ignore (classify 1000);
  let total = ref 0 in
  Array.iter (fun port -> total := !total + classify port) ports;
  float_of_int !total /. float_of_int (Array.length ports)

let bench_table3 () =
  Printf.printf "== table3-dpf (Table 3: classify TCP/IP headers, 10 filters) ==\n";
  Printf.printf "   1000 packets destined uniformly to the ten filters; average\n";
  Printf.printf "   cycles per classification on the simulated DEC5000/200, in us.\n\n";
  let cfg = Vmachine.Mconfig.dec5000 in
  let filters = Dpf.Filter.tcpip_filters 10 in
  (* DPF *)
  let dpf_us, dpf_code_words =
    let c = DP.compile ~base:0x1000 ~table_base:0x200000 filters in
    Vmachine.Telemetry.note_gen (tel ()) ~prefix:"table3.dpf" c.Dpf.code.Vcode.gen;
    let m = Sim.create ~telemetry:(tel ()) cfg in
    Vmachine.Mem.install_code m.Sim.mem ~addr:c.Dpf.code.Vcode.base
      c.Dpf.code.Vcode.gen.Gen.buf;
    DP.install_tables m.Sim.mem c;
    let classify port =
      Dpf.Packet.install m.Sim.mem ~addr:pkt_addr (Dpf.Packet.tcp ~dst_port:port ());
      Sim.reset_stats m;
      Sim.call m ~entry:c.Dpf.entry [ Sim.Int pkt_addr; Sim.Int 40 ];
      assert (Sim.ret_int m = port - 1000);
      m.Sim.cycles
    in
    let avg = avg_cycles_per_classify ~classify in
    (Vmachine.Mconfig.cycles_to_us cfg (int_of_float avg), c.Dpf.code.Vcode.code_bytes / 4)
  in
  (* interpreter harness *)
  let interp source fname write_image =
    let prog = TC.compile ~base:0x8000 source in
    let m = Sim.create ~telemetry:(tel ()) cfg in
    List.iter
      (fun (_, code) ->
        Vmachine.Mem.install_code m.Sim.mem ~addr:code.Vcode.base code.Vcode.gen.Gen.buf)
      prog.TC.funcs;
    write_image m;
    (m, TC.entry prog fname)
  in
  let write_words m words =
    Array.iteri (fun i w -> Vmachine.Mem.write_u32 m.Sim.mem (prog_addr + (4 * i)) w) words
  in
  let mpf_us =
    let program = Dpf.Filter.mpf_program ~big_endian:false filters in
    let m, entry = interp Dpf.Mpf.source Dpf.Mpf.function_name (fun m -> write_words m program) in
    let classify port =
      Dpf.Packet.install m.Sim.mem ~addr:pkt_addr (Dpf.Packet.tcp ~dst_port:port ());
      Sim.reset_stats m;
      Sim.call m ~entry [ Sim.Int pkt_addr; Sim.Int 40; Sim.Int prog_addr; Sim.Int 1 ];
      assert (Sim.ret_int m = port - 1000);
      m.Sim.cycles
    in
    Vmachine.Mconfig.cycles_to_us cfg (int_of_float (avg_cycles_per_classify ~classify))
  in
  let pf_us =
    let words, root = Dpf.Pathfinder.encode ~big_endian:false filters in
    let m, entry =
      interp Dpf.Pathfinder.source Dpf.Pathfinder.function_name (fun m -> write_words m words)
    in
    let classify port =
      Dpf.Packet.install m.Sim.mem ~addr:pkt_addr (Dpf.Packet.tcp ~dst_port:port ());
      Sim.reset_stats m;
      Sim.call m ~entry
        [ Sim.Int pkt_addr; Sim.Int 40; Sim.Int prog_addr; Sim.Int root; Sim.Int 1 ];
      assert (Sim.ret_int m = port - 1000);
      m.Sim.cycles
    in
    Vmachine.Mconfig.cycles_to_us cfg (int_of_float (avg_cycles_per_classify ~classify))
  in
  Printf.printf "   %-22s %12s %12s %10s\n" "engine" "measured us" "paper us" "vs DPF";
  Printf.printf "   %-22s %12.2f %12s %10s\n" "DPF (compiled)" dpf_us "1.5" "1.0x";
  Printf.printf "   %-22s %12.2f %12s %9.1fx\n" "PATHFINDER (interp)" pf_us "19.0"
    (pf_us /. dpf_us);
  Printf.printf "   %-22s %12.2f %12s %9.1fx\n" "MPF (interp)" mpf_us "35.0" (mpf_us /. dpf_us);
  Printf.printf "\n   paper shape: DPF ~10x faster than PATHFINDER, ~20x faster than MPF.\n";
  Printf.printf "   (DPF classifier: %d words of generated code.)\n\n" dpf_code_words;
  record "table3.dpf_us" dpf_us;
  record "table3.pathfinder_us" pf_us;
  record "table3.mpf_us" mpf_us;
  record "table3.dpf_code_words" (float_of_int dpf_code_words);
  (dpf_us, pf_us, mpf_us)

(* ------------------------------------------------------------------ *)
(* Section: Table 4                                                    *)

module ASH = Ash.Make (Vmips.Mips_backend)

let src_addr = 0x300000
let dst_addr = 0x312000 (* distinct cache sets from src *)

let table4_row cfg ops =
  let nwords = 2048 in
  let m = Sim.create ~telemetry:(tel ()) cfg in
  let passes = ASH.gen_separate ~base:0x1000 ops in
  List.iter
    (fun (_, c) ->
      Vmachine.Mem.install_code m.Sim.mem ~addr:c.Vcode.base c.Vcode.gen.Gen.buf)
    passes;
  let integ = ASH.gen_integrated ~base:0x8000 ops in
  Vmachine.Mem.install_code m.Sim.mem ~addr:integ.Vcode.base integ.Vcode.gen.Gen.buf;
  let ash = ASH.gen_ash ~base:0xA000 ops in
  Vmachine.Telemetry.note_gen (tel ()) ~prefix:"table4.ash" ash.Vcode.gen;
  Vmachine.Mem.install_code m.Sim.mem ~addr:ash.Vcode.base ash.Vcode.gen.Gen.buf;
  let data = Bytes.init (4 * nwords) (fun i -> Char.chr ((i * 131) land 0xff)) in
  Vmachine.Mem.blit_bytes m.Sim.mem ~addr:src_addr data;
  let call code a b =
    Sim.call m ~entry:code.Vcode.entry_addr [ Sim.Int a; Sim.Int b; Sim.Int nwords ];
    Sim.ret_int m
  in
  let run_separate () =
    List.iter
      (fun (op, c) ->
        match op with
        | Ash.Copy -> ignore (call c dst_addr src_addr)
        | Ash.Checksum | Ash.Byteswap | Ash.Xorkey _ -> ignore (call c dst_addr dst_addr))
      passes
  in
  let measure ~uncached f =
    ignore (f ());
    if uncached then Vmachine.Cache.flush m.Sim.dcache;
    Sim.reset_stats m;
    ignore (f ());
    Vmachine.Mconfig.cycles_to_us cfg m.Sim.cycles
  in
  let sep_u = measure ~uncached:true run_separate in
  let sep = measure ~uncached:false run_separate in
  let integ_c = measure ~uncached:false (fun () -> ignore (call integ dst_addr src_addr)) in
  let ash_c = measure ~uncached:false (fun () -> ignore (call ash dst_addr src_addr)) in
  let ash_u = measure ~uncached:true (fun () -> ignore (call ash dst_addr src_addr)) in
  (sep_u, sep, integ_c, ash_c, ash_u)

let bench_table4 () =
  Printf.printf "== table4-ash (Table 4: integrated message operations, 8KB) ==\n";
  Printf.printf "   times in microseconds at each machine's clock.\n\n";
  let paper =
    [
      (("DEC3100", [ Ash.Copy; Ash.Checksum ]), (1630., 1290., 1120., 1060.));
      (("DEC3100", [ Ash.Copy; Ash.Checksum; Ash.Byteswap ]), (3190., 2230., 1750., 1600.));
      (("DEC5000", [ Ash.Copy; Ash.Checksum ]), (812., 656., 597., 455.));
      (("DEC5000", [ Ash.Copy; Ash.Checksum; Ash.Byteswap ]), (1640., 1280., 976., 836.));
    ]
  in
  Printf.printf "   %-8s %-16s %-18s %10s %10s\n" "machine" "pipeline" "method" "measured"
    "paper";
  List.iter
    (fun ((mname, ops), (p_su, p_s, p_i, p_a)) ->
      let cfg =
        if mname = "DEC3100" then Vmachine.Mconfig.dec3100 else Vmachine.Mconfig.dec5000
      in
      let sep_u, sep, integ, ash, ash_u = table4_row cfg ops in
      let key m_ = Printf.sprintf "table4.%s.%s.%s_us" (slug mname) (slug (Ash.pipeline_name ops)) m_ in
      record (key "separate_uncached") sep_u;
      record (key "separate") sep;
      record (key "c_integrated") integ;
      record (key "ash") ash;
      record (key "ash_uncached") ash_u;
      let pr method_ v p =
        Printf.printf "   %-8s %-16s %-18s %10.0f %10.0f\n" mname (Ash.pipeline_name ops)
          method_ v p
      in
      pr "separate uncached" sep_u p_su;
      pr "separate" sep p_s;
      pr "C integrated" integ p_i;
      pr "ASH" ash p_a;
      Printf.printf "   %-8s %-16s %-18s %10.0f %10s\n" mname (Ash.pipeline_name ops)
        "ASH uncached" ash_u "-")
    paper;
  Printf.printf "\n   paper shape: integration wins 20-50%% warm and ~2x after a flush;\n";
  Printf.printf "   ASH (specialized) beats hand-integrated C.\n\n"

(* ------------------------------------------------------------------ *)
(* Section: peephole (PR 8)                                            *)

(* The Table 3 / Table 4 workloads regenerated through
   [Vcode.Make_peephole]-wrapped ports: same client code, the stage
   interposed at functor application.  Records the peephole-on rows
   next to the unchecked baselines, the code-size delta, and the
   rewrite counters. *)
module DPP = Dpf.Make (Vcode.Make_peephole (Vmips.Mips_backend))
module ASHP = Ash.Make (Vcode.Make_peephole (Vmips.Mips_backend))

let bench_peephole () =
  Printf.printf "== peephole (Make_peephole-wrapped ports on table3/table4) ==\n\n";
  let cfg = Vmachine.Mconfig.dec5000 in
  (* table 3: DPF classifier, raw vs wrapped MIPS port *)
  let run_dpf (compile : Dpf.Filter.t list -> Dpf.compiled)
      ~(install : Vmachine.Mem.t -> Dpf.compiled -> unit) =
    let filters = Dpf.Filter.tcpip_filters 10 in
    let c = compile filters in
    let m = Sim.create ~telemetry:(tel ()) cfg in
    Vmachine.Mem.install_code m.Sim.mem ~addr:c.Dpf.code.Vcode.base
      c.Dpf.code.Vcode.gen.Gen.buf;
    install m.Sim.mem c;
    let classify port =
      Dpf.Packet.install m.Sim.mem ~addr:pkt_addr (Dpf.Packet.tcp ~dst_port:port ());
      Sim.reset_stats m;
      Sim.call m ~entry:c.Dpf.entry [ Sim.Int pkt_addr; Sim.Int 40 ];
      assert (Sim.ret_int m = port - 1000);
      m.Sim.cycles
    in
    let avg = avg_cycles_per_classify ~classify in
    (Vmachine.Mconfig.cycles_to_us cfg (int_of_float avg), c.Dpf.code)
  in
  let dpf_us, dpf_code =
    run_dpf
      (fun fs -> DP.compile ~base:0x1000 ~table_base:0x200000 fs)
      ~install:(fun mem c -> DP.install_tables mem c)
  in
  let dpf_p_us, dpf_p_code =
    run_dpf
      (fun fs -> DPP.compile ~base:0x1000 ~table_base:0x200000 fs)
      ~install:(fun mem c -> DPP.install_tables mem c)
  in
  Vmachine.Telemetry.note_gen (tel ()) ~prefix:"peephole.dpf" dpf_p_code.Vcode.gen;
  let words c = c.Vcode.code_bytes / 4 in
  let p = dpf_p_code.Vcode.gen.Gen.peep in
  Printf.printf "   %-28s %12s %12s\n" "workload" "raw port" "peephole";
  Printf.printf "   %-28s %12.2f %12.2f   (us/classify)\n" "table3 dpf" dpf_us dpf_p_us;
  Printf.printf "   %-28s %12d %12d   (code words)\n" "table3 dpf"
    (words dpf_code) (words dpf_p_code);
  Printf.printf
    "   rewrites: %d moves killed, %d fusions, %d slot fills, %d strength\n"
    p.Peepwin.moves_killed p.Peepwin.fusions p.Peepwin.slot_fills p.Peepwin.strength;
  record "table3.peephole.dpf_us" dpf_p_us;
  record "table3.peephole.dpf_code_words" (float_of_int (words dpf_p_code));
  record "table3.peephole.dpf_code_words_saved"
    (float_of_int (words dpf_code - words dpf_p_code));
  record "peephole.dpf.moves_killed" (float_of_int p.Peepwin.moves_killed);
  record "peephole.dpf.fusions" (float_of_int p.Peepwin.fusions);
  record "peephole.dpf.slot_fills" (float_of_int p.Peepwin.slot_fills);
  record "peephole.dpf.strength" (float_of_int p.Peepwin.strength);
  (* table 4: the ASH pipeline, raw vs wrapped *)
  let ops = [ Ash.Copy; Ash.Checksum; Ash.Byteswap ] in
  let nwords = 2048 in
  let run_ash (ash : Vcode.code) =
    let m = Sim.create ~telemetry:(tel ()) cfg in
    Vmachine.Mem.install_code m.Sim.mem ~addr:ash.Vcode.base ash.Vcode.gen.Gen.buf;
    let data = Bytes.init (4 * nwords) (fun i -> Char.chr ((i * 131) land 0xff)) in
    Vmachine.Mem.blit_bytes m.Sim.mem ~addr:src_addr data;
    let run () =
      Sim.call m ~entry:ash.Vcode.entry_addr
        [ Sim.Int dst_addr; Sim.Int src_addr; Sim.Int nwords ];
      Sim.ret_int m
    in
    ignore (run ());
    Sim.reset_stats m;
    ignore (run ());
    Vmachine.Mconfig.cycles_to_us cfg m.Sim.cycles
  in
  let ash = ASH.gen_ash ~base:0xA000 ops in
  let ash_p = ASHP.gen_ash ~base:0xA000 ops in
  let ash_us = run_ash ash and ash_p_us = run_ash ash_p in
  Vmachine.Telemetry.note_gen (tel ()) ~prefix:"peephole.ash" ash_p.Vcode.gen;
  let pa = ash_p.Vcode.gen.Gen.peep in
  Printf.printf "   %-28s %12.0f %12.0f   (us, DEC5000 cached)\n"
    "table4 ash copy+cksum+bswap" ash_us ash_p_us;
  Printf.printf "   %-28s %12d %12d   (code words)\n" "table4 ash"
    (words ash) (words ash_p);
  Printf.printf
    "   rewrites: %d moves killed, %d fusions, %d slot fills, %d strength\n\n"
    pa.Peepwin.moves_killed pa.Peepwin.fusions pa.Peepwin.slot_fills pa.Peepwin.strength;
  record "table4.peephole.ash_us" ash_p_us;
  record "table4.peephole.ash_baseline_us" ash_us;
  record "table4.peephole.ash_code_words_saved" (float_of_int (words ash - words ash_p));
  record "peephole.ash.slot_fills" (float_of_int pa.Peepwin.slot_fills);
  (dpf_us, dpf_p_us, words dpf_code - words dpf_p_code)

(* ------------------------------------------------------------------ *)
(* Section: generation-space                                           *)

let bench_space () =
  Printf.printf "== space (section 5: in-place generation memory behaviour) ==\n\n";
  let vcode_overhead n =
    let g, args = V.lambda ~base:0x1000 ~leaf:true "%i" in
    for _ = 1 to n do
      V.arith_imm g Op.Add Vtype.I args.(0) args.(0) 1
    done;
    Gen.live_words g - Codebuf.heap_words g.Gen.buf
  in
  let dcg_words n =
    let c, args = D.lambda ~base:0x1000 ~leaf:true "%i" in
    for _ = 1 to n do
      D.stmt c
        (Dcg.Sassign
           ( args.(0),
             Dcg.Bin (Op.Add, Vtype.I, Dcg.Regv (Vtype.I, args.(0)), Dcg.Cnst (Vtype.I, 1L)) ))
    done;
    D.live_words c
  in
  Printf.printf "   %-10s %22s %22s\n" "insns" "vcode non-code words" "dcg live words";
  List.iter
    (fun n ->
      let vw = vcode_overhead n and dw = dcg_words n in
      record (Printf.sprintf "space.vcode_words.%d" n) (float_of_int vw);
      record (Printf.sprintf "space.dcg_words.%d" n) (float_of_int dw);
      Printf.printf "   %-10d %22d %22d\n" n vw dw)
    [ 100; 1000; 10000 ];
  Printf.printf "\n   paper: vcode needs only labels + unresolved jumps; IR systems\n";
  Printf.printf "   need space proportional to the number of instructions.\n\n"

(* ------------------------------------------------------------------ *)
(* Section: ablations for the design choices DESIGN.md calls out       *)

(* DPF dispatch-strategy ablation: the same 10-filter workload compiled
   with each strategy forced (the paper argues for choosing among them
   from the installed values). *)
let bench_ablation_dpf () =
  Printf.printf "== ablation-dpf-dispatch (switch strategy) ==\n\n";
  let cfg = Vmachine.Mconfig.dec5000 in
  let run_set label nf port_of =
    let filters =
      List.init nf (fun i ->
          Dpf.Filter.tcpip_session ~fid:i ~dst_ip:0x0A000001 ~dst_port:(port_of i))
    in
    let measure ?(merge = true) dispatch =
      let c = DP.compile ~base:0x1000 ~table_base:0x200000 ~dispatch ~merge filters in
      let m = Sim.create cfg in
      Vmachine.Mem.install_code m.Sim.mem ~addr:c.Dpf.code.Vcode.base
        c.Dpf.code.Vcode.gen.Gen.buf;
      DP.install_tables m.Sim.mem c;
      let classify i =
        Dpf.Packet.install m.Sim.mem ~addr:pkt_addr
          (Dpf.Packet.tcp ~dst_port:(port_of i) ());
        Sim.reset_stats m;
        Sim.call m ~entry:c.Dpf.entry [ Sim.Int pkt_addr; Sim.Int 40 ];
        assert (Sim.ret_int m = i);
        m.Sim.cycles
      in
      ignore (classify 0);
      let total = ref 0 in
      for k = 0 to 999 do
        total := !total + classify (k mod nf)
      done;
      (float_of_int !total /. 1000., c.Dpf.code.Vcode.code_bytes / 4)
    in
    Printf.printf "   -- %s --\n" label;
    Printf.printf "   %-22s %14s %12s\n" "strategy" "cycles/packet" "code words";
    List.iter
      (fun (name, d) ->
        let cyc, words = measure d in
        record (Printf.sprintf "ablation_dpf.%s.%s.cycles" (slug label) (slug name)) cyc;
        ignore words;
        Printf.printf "   %-22s %14.1f %12d\n" name cyc words)
      [
        ("auto", Dpf.Auto);
        ("forced linear chain", Dpf.Force_linear);
        ("forced binary search", Dpf.Force_bsearch);
        ("forced hash", Dpf.Force_hash);
      ];
    let cyc, words = measure ~merge:false Dpf.Auto in
    Printf.printf "   %-22s %14.1f %12d\n" "no trie merging" cyc words;
    Printf.printf "\n"
  in
  run_set "10 filters, contiguous ports" 10 (fun i -> 1000 + i);
  run_set "32 filters, sparse ports" 32 (fun i -> 1000 + (371 * i));
  Printf.printf "   the paper's point: with the installed values known at codegen\n";
  Printf.printf "   time, DPF picks the dispatch that wins for this filter set.\n\n"

(* virtual-register layer ablation (section 6.2: "roughly a factor of
   two" on generation cost) *)
let bench_ablation_vregs () =
  Printf.printf "== ablation-vregs (section 6.2 virtual-register layer) ==\n\n";
  let gen_virt () =
    let g, args = V.lambda ~base:0x1000 ~leaf:true "%i%i%p" in
    let vs = V.Virt.start g in
    let r0 = V.Virt.vreg vs Vtype.I and r1 = V.Virt.vreg vs Vtype.I in
    V.Virt.mov_in vs Vtype.I r0 args.(0);
    V.Virt.mov_in vs Vtype.I r1 args.(1);
    for _ = 1 to insns_per_body / 8 do
      V.Virt.arith_imm vs Op.Add Vtype.I r0 r0 1;
      V.Virt.arith vs Op.Add Vtype.I r1 r1 r0;
      V.Virt.arith_imm vs Op.Lsh Vtype.I r0 r0 2;
      V.Virt.arith vs Op.Xor Vtype.I r0 r0 r1;
      V.Virt.arith_imm vs Op.Or Vtype.I r1 r1 255;
      V.Virt.arith vs Op.Sub Vtype.I r0 r0 r1;
      V.Virt.arith_imm vs Op.And Vtype.I r1 r1 4095;
      V.Virt.arith vs Op.Add Vtype.I r0 r0 r1
    done;
    V.Virt.ret vs Vtype.I r0;
    V.end_gen g
  in
  let tbl =
    run_benchmarks
      [
        Test.make ~name:"direct" (Staged.stage (fun () -> Sys.opaque_identity (gen_vcode_checked ())));
        Test.make ~name:"virt" (Staged.stage (fun () -> Sys.opaque_identity (gen_virt ())));
      ]
  in
  let get n = try Hashtbl.find tbl n with Not_found -> nan in
  Printf.printf "   physical registers: %8.1f ns/insn\n"
    (get "direct" /. float_of_int insns_per_body);
  Printf.printf "   virtual registers:  %8.1f ns/insn (%.2fx)\n"
    (get "virt" /. float_of_int insns_per_body)
    (get "virt" /. get "direct");
  record "ablation_vregs.ratio" (get "virt" /. get "direct");
  Printf.printf "   paper: the optional layer costs roughly a factor of two.\n\n"

(* strength-reduction ablation (section 5.4): generated-code quality of
   multiply-by-constant through the reducer vs the multiply unit *)
let bench_ablation_strength () =
  Printf.printf "== ablation-strength (section 5.4 strength reducer) ==\n\n";
  let cfg = Vmachine.Mconfig.dec5000 in
  let measure c reduce =
    (* f(x) = x * c executed 1000 times in a generated loop *)
    let g, args = V.lambda ~base:0x1000 ~leaf:true "%i" in
    let open V.Names in
    let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
    let i = V.getreg_exn g ~cls:`Temp Vtype.I in
    let t = V.getreg_exn g ~cls:`Temp Vtype.I in
    seti g acc 0;
    seti g i 0;
    let top = V.genlabel g and out = V.genlabel g in
    V.label g top;
    bgeii g i 1000 out;
    (if reduce then V.Strength.mul g Vtype.I t args.(0) c
     else V.arith_imm g Op.Mul Vtype.I t args.(0) c);
    addi g acc acc t;
    addii g i i 1;
    jv g top;
    V.label g out;
    reti g acc;
    let code = V.end_gen g in
    let m = Sim.create cfg in
    Vmachine.Mem.install_code m.Sim.mem ~addr:code.Vcode.base code.Vcode.gen.Gen.buf;
    Sim.call m ~entry:code.Vcode.entry_addr [ Sim.Int 37 ];
    ignore (Sim.ret_int m);
    Sim.reset_stats m;
    Sim.call m ~entry:code.Vcode.entry_addr [ Sim.Int 37 ];
    m.Sim.cycles
  in
  Printf.printf "   %-14s %14s %14s %8s\n" "constant" "mult unit" "reduced" "speedup";
  List.iter
    (fun c ->
      let plain = measure c false and red = measure c true in
      record (Printf.sprintf "ablation_strength.mul_%d.speedup" c)
        (float_of_int plain /. float_of_int red);
      Printf.printf "   x * %-10d %14d %14d %7.2fx\n" c plain red
        (float_of_int plain /. float_of_int red))
    [ 2; 10; 1024; 100; 7 ];
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock sanity: one Test.make per table, timing the
   whole simulated operation on the host.  The table values above come
   from deterministic simulated cycles; these wall-clock numbers simply
   confirm the harness itself is not the bottleneck.                   *)

let bench_wallclock () =
  Printf.printf "== wall-clock sanity (Bechamel, host ns per operation) ==\n\n";
  (* table 3 fixture: DPF classify one packet *)
  let t3 =
    let filters = Dpf.Filter.tcpip_filters 10 in
    let c = DP.compile ~base:0x1000 ~table_base:0x200000 filters in
    let m = Sim.create Vmachine.Mconfig.dec5000 in
    Vmachine.Mem.install_code m.Sim.mem ~addr:c.Dpf.code.Vcode.base
      c.Dpf.code.Vcode.gen.Gen.buf;
    DP.install_tables m.Sim.mem c;
    Dpf.Packet.install m.Sim.mem ~addr:pkt_addr (Dpf.Packet.tcp ~dst_port:1004 ());
    Test.make ~name:"table3-dpf-classify"
      (Staged.stage (fun () ->
           Sim.call m ~entry:c.Dpf.entry [ Sim.Int pkt_addr; Sim.Int 40 ];
           Sys.opaque_identity (Sim.ret_int m)))
  in
  (* table 4 fixture: one ASH pipeline pass over 8KB *)
  let t4 =
    let m = Sim.create Vmachine.Mconfig.dec5000 in
    let ash = ASH.gen_ash ~base:0x1000 [ Ash.Copy; Ash.Checksum ] in
    Vmachine.Mem.install_code m.Sim.mem ~addr:ash.Vcode.base ash.Vcode.gen.Gen.buf;
    Test.make ~name:"table4-ash-run"
      (Staged.stage (fun () ->
           Sim.call m ~entry:ash.Vcode.entry_addr
             [ Sim.Int dst_addr; Sim.Int src_addr; Sim.Int 2048 ];
           Sys.opaque_identity (Sim.ret_int m)))
  in
  let tbl = run_benchmarks [ t3; t4 ] in
  Hashtbl.iter
    (fun name ns ->
      record ("wallclock." ^ slug name ^ ".ns_per_op") ns;
      Printf.printf "   %-24s %12.0f ns/op\n" name ns)
    tbl;
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Section: sim-throughput -- host-side simulator speed (simulated
   instructions retired per host second) in four engine modes:
   plain interpretation ("off"), the shared predecode layer
   (Vmachine.Decode_cache, "predecode"), superblock translation on
   top of predecode (Vmachine.Block_cache, "blocks"), and hot-trace
   region recompilation on top of blocks (Vmachine.Region_cache,
   "regions").  This measures the harness itself, not the paper: the
   simulated cycle counts are bit-identical in all four modes
   (test/test_decode_cache.ml, test/test_block_cache.ml and
   test/test_smc_fuzz.ml pin that). *)

(* (interpreter, predecode, +blocks, +regions) insns/sec *)
type tput_rates = { r_off : float; r_pre : float; r_blk : float; r_reg : float }

(* The port adapters and workload fixtures live in {!Workloads}
   (lib/harness), shared with bin/vprof.exe and bin/vtrace.exe; this
   section only keeps the timing discipline.

   One ~0.15s measurement window returns insns/sec.  The modes are
   measured in interleaved rounds (off, predecode, blocks, off, ...)
   and each reports its best window: that way CPU-frequency drift or
   scheduler noise hits every mode alike instead of skewing whichever
   happened to run last, and a bad window can only deflate a single
   round. *)
let tput_rates (module P : Workloads.PORT) ~cfg ~workload ~iters =
  let setup ~predecode ~blocks ~regions =
    let m = P.create ~cfg ~predecode ~blocks ~regions () in
    let prep = P.prepare m ~workload ~iters in
    prep.Workloads.run ();
    (* warm *)
    (m, prep.Workloads.run)
  in
  let measure_window (m, run) =
    P.reset_stats m;
    let t0 = Sys.time () in
    let elapsed = ref 0.0 in
    while !elapsed < 0.15 do
      run ();
      elapsed := Sys.time () -. t0
    done;
    float_of_int (P.insns m) /. !elapsed
  in
  let m_off = setup ~predecode:false ~blocks:false ~regions:false in
  let m_pre = setup ~predecode:true ~blocks:false ~regions:false in
  let m_blk = setup ~predecode:true ~blocks:true ~regions:false in
  let m_reg = setup ~predecode:true ~blocks:true ~regions:true in
  let best_off = ref 0.0 and best_pre = ref 0.0 in
  let best_blk = ref 0.0 and best_reg = ref 0.0 in
  for _ = 1 to 3 do
    let r = measure_window m_off in
    if r > !best_off then best_off := r;
    let r = measure_window m_pre in
    if r > !best_pre then best_pre := r;
    let r = measure_window m_blk in
    if r > !best_blk then best_blk := r;
    let r = measure_window m_reg in
    if r > !best_reg then best_reg := r
  done;
  { r_off = !best_off; r_pre = !best_pre; r_blk = !best_blk; r_reg = !best_reg }

(* rates executing a tight generated ALU loop *)
let loop_rates p = tput_rates p ~cfg:Vmachine.Mconfig.test_config ~workload:"alu-loop" ~iters:10_000

(* the MIPS DPF classify workload (the Table 3 fixture) end-to-end;
   classifications are short (~50 insns), so the workload batches 1000
   per window to keep the clock reads off the measured path *)
let dpf_classify_rates () =
  tput_rates
    (module Workloads.Mips_port)
    ~cfg:Vmachine.Mconfig.dec5000 ~workload:"dpf-classify" ~iters:1000

(* rates executing the nested region-friendly loop (hot superblock
   chains with heavily-biased interior branches — the tier-3 showcase) *)
let region_loop_rates p =
  tput_rates p ~cfg:Vmachine.Mconfig.test_config ~workload:"region-loop" ~iters:20_000

let bench_sim_throughput () =
  Printf.printf "== sim-throughput (simulated insns per host second) ==\n";
  Printf.printf "   predecode memoizes instruction decode by code address; blocks\n";
  Printf.printf "   compiles decoded runs into chained closures; regions recompile\n";
  Printf.printf "   hot superblock chains into fused traces.  Simulated cycle\n";
  Printf.printf "   counts are identical in all four modes.\n\n";
  Printf.printf "   %-8s %-14s %10s %10s %10s %10s %8s %8s\n" "target" "workload" "off (M/s)"
    "pre (M/s)" "blk (M/s)" "reg (M/s)" "blk/pre" "reg/blk";
  let row target workload (r : tput_rates) =
    let key m_ = Printf.sprintf "sim_throughput.%s.%s.%s" (slug target) (slug workload) m_ in
    record (key "off_insns_per_sec") r.r_off;
    record (key "predecode_insns_per_sec") r.r_pre;
    record (key "blocks_insns_per_sec") r.r_blk;
    record (key "regions_insns_per_sec") r.r_reg;
    record (key "predecode_speedup") (r.r_pre /. r.r_off);
    record (key "blocks_speedup") (r.r_blk /. r.r_pre);
    record (key "blocks_total_speedup") (r.r_blk /. r.r_off);
    record (key "regions_speedup") (r.r_reg /. r.r_blk);
    record (key "regions_total_speedup") (r.r_reg /. r.r_off);
    Printf.printf "   %-8s %-14s %10.2f %10.2f %10.2f %10.2f %7.2fx %7.2fx\n" target workload
      (r.r_off /. 1e6) (r.r_pre /. 1e6) (r.r_blk /. 1e6) (r.r_reg /. 1e6)
      (r.r_blk /. r.r_pre) (r.r_reg /. r.r_blk)
  in
  List.iter
    (fun (name, p) -> row name "alu-loop" (loop_rates p))
    Workloads.ports;
  List.iter
    (fun (name, p) -> row name "region-loop" (region_loop_rates p))
    Workloads.ports;
  row "mips" "dpf-classify" (dpf_classify_rates ());
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Section: corpus — the external .asm workloads (workloads/*.asm,
   assembled by the lib/asm front-end) through the same interleaved
   best-window timing discipline as sim-throughput.  These are real
   guest programs (recursion, in-place sorts, indirect-jump state
   machines) rather than generated fixtures, so the four engine tiers
   are measured against control flow the generators never emit.  The
   corpus lives outside the binary; a checkout without workloads/ (or
   a bare install) skips the section rather than failing. *)

let corpus_rows = [ ("josephus", 64); ("sort", 96); ("statemach", 512) ]

let bench_corpus () =
  Printf.printf "== corpus (external .asm workloads on simulated mips) ==\n";
  Printf.printf "   assembled from workloads/*.asm by lib/asm; same modes and\n";
  Printf.printf "   timing windows as sim-throughput.\n\n";
  match Workloads.corpus_dir () with
  | None -> Printf.printf "   workloads/ directory not found; section skipped\n\n"
  | Some _ ->
    Printf.printf "   %-8s %-14s %10s %10s %10s %10s %8s %8s\n" "target" "workload"
      "off (M/s)" "pre (M/s)" "blk (M/s)" "reg (M/s)" "blk/pre" "reg/blk";
    List.iter
      (fun (workload, iters) ->
        let r =
          tput_rates
            (module Workloads.Mips_port)
            ~cfg:Vmachine.Mconfig.dec5000 ~workload:("asm:" ^ workload) ~iters
        in
        let key m_ = Printf.sprintf "corpus.mips.%s.%s" (slug workload) m_ in
        record (key "off_insns_per_sec") r.r_off;
        record (key "predecode_insns_per_sec") r.r_pre;
        record (key "blocks_insns_per_sec") r.r_blk;
        record (key "regions_insns_per_sec") r.r_reg;
        record (key "regions_total_speedup") (r.r_reg /. r.r_off);
        Printf.printf "   %-8s %-14s %10.2f %10.2f %10.2f %10.2f %7.2fx %7.2fx\n" "mips"
          workload (r.r_off /. 1e6) (r.r_pre /. 1e6) (r.r_blk /. 1e6) (r.r_reg /. 1e6)
          (r.r_blk /. r.r_pre) (r.r_reg /. r.r_blk))
      corpus_rows;
    (* per-run tail latency: an enabled sink over 200 blocks-tier
       timed run calls feeds the mips.run_ns stopwatch dist (the
       throughput rows above keep the disabled sink's zero-cost path) *)
    let module T = Vmachine.Telemetry in
    Printf.printf "\n   per-run latency (host ns, blocks tier, 200 runs):\n";
    Printf.printf "   %-14s %10s %10s %10s\n" "workload" "p50" "p99" "p999";
    List.iter
      (fun (workload, iters) ->
        let module P = Workloads.Mips_port in
        let tel_l = T.create () in
        let m =
          P.create ~cfg:Vmachine.Mconfig.dec5000 ~telemetry:tel_l ~predecode:true
            ~blocks:true ~regions:false ()
        in
        let prep = P.prepare ~tel:tel_l m ~workload:("asm:" ^ workload) ~iters in
        for _ = 1 to 200 do
          prep.Workloads.run ()
        done;
        let st = T.dist_stats tel_l (T.dist tel_l "mips.run_ns") in
        let q x = T.quantile_of_stats st x in
        let key m_ = Printf.sprintf "corpus.mips.%s.run_ns.%s" (slug workload) m_ in
        record (key "p50") (float_of_int (q 0.5));
        record (key "p99") (float_of_int (q 0.99));
        record (key "p999") (float_of_int (q 0.999));
        Printf.printf "   %-14s %10d %10d %10d\n" workload (q 0.5) (q 0.99) (q 0.999))
      corpus_rows;
    Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Section: router — the multi-tenant registry (lib/server) as a
   synthetic packet router: 10k compiled DPF filters installed into
   slab arenas, then a packet stream demultiplexed against them under
   continuous churn (evict-oldest + install-fresh every 32 packets).
   Two headline rates: filter installs per host second (single-buffer
   vs the batched scratch-buffer compile queue) and packets per host
   second per engine tier.  Every classification is checked against
   the installed fid, so these numbers only exist if eviction never
   leaks a stale translation. *)

let router_nfilters = 10_000

let bench_router () =
  Printf.printf "== router (registry service: %d DPF filters under churn) ==\n"
    router_nfilters;
  Printf.printf "   install = compile filter + place in slab arena + publish;\n";
  Printf.printf "   batched reuses one scratch code buffer across the queue and\n";
  Printf.printf "   clears capacity evictions one scan per chunk, not per install.\n\n";
  let module P = Workloads.Mips_port in
  let cfg = Vmachine.Mconfig.router in
  let fresh ?arena_slabs ~predecode ~blocks ~regions () =
    let m = P.create ~cfg ~telemetry:(tel ()) ~predecode ~blocks ~regions () in
    P.router ~tel:(tel ()) ?arena_slabs m
  in
  (* Install throughput, measured where a service actually lives: at
     capacity.  Both registries' code windows hold exactly the fleet
     (10k single-filter slabs), both are filled, and then further
     installs of fresh endpoints are timed — every one forces a
     capacity eviction.  One-at-a-time installs pay a full O(live)
     coldest scan per install; the batched queue clears its chunk's
     worth of coldest regions in one scan (identical eviction order)
     and reuses one scratch code buffer across the compiles.  The two
     paths are interleaved at chunk granularity over the same
     allocator/GC state, and each side reports its median per-chunk
     rate, so a descheduled chunk inflates one sample, not the
     estimate.  Interpreter-tier machines: the engine tier only
     changes how invalidation traffic is consumed, not the install
     path itself. *)
  let median a =
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let chunk = 256 in
  let mk_full () =
    let r =
      fresh ~arena_slabs:router_nfilters ~predecode:false ~blocks:false ~regions:false ()
    in
    r.Workloads.rt_install ~n:router_nfilters ~batched:true;
    r
  in
  let measure_churn_installs () =
    let rs = mk_full () and rb = mk_full () in
    let nchunks = 12 in
    let ts = Array.make nchunks 0.0 and tb = Array.make nchunks 0.0 in
    for i = 0 to nchunks - 1 do
      let t0 = Unix.gettimeofday () in
      rs.Workloads.rt_install ~n:chunk ~batched:false;
      let t1 = Unix.gettimeofday () in
      rb.Workloads.rt_install ~n:chunk ~batched:true;
      let t2 = Unix.gettimeofday () in
      ts.(i) <- t1 -. t0;
      tb.(i) <- t2 -. t1
    done;
    (float_of_int chunk /. median ts, float_of_int chunk /. median tb)
  in
  (* fleet build rate: empty registry to 10k resident, batched queue *)
  let build_rate =
    let r = fresh ~predecode:false ~blocks:false ~regions:false () in
    let t0 = Unix.gettimeofday () in
    r.Workloads.rt_install ~n:router_nfilters ~batched:true;
    float_of_int router_nfilters /. (Unix.gettimeofday () -. t0)
  in
  ignore (measure_churn_installs () : float * float) (* warm caches/allocator *);
  let inst_single, inst_batched = measure_churn_installs () in
  let batch_speedup = inst_batched /. inst_single in
  record "router.nfilters" (float_of_int router_nfilters);
  record "router.installs_per_sec_build" build_rate;
  record "router.installs_per_sec_single" inst_single;
  record "router.installs_per_sec_batched" inst_batched;
  record "router.installs_per_sec" inst_batched;
  record "router.batch_speedup" batch_speedup;
  Printf.printf "   fleet build (batched, empty arena): %.0f installs/sec\n" build_rate;
  Printf.printf
    "   at capacity (every install evicts): single %.0f   batched %.0f   (batch speedup %.2fx)\n\n"
    inst_single inst_batched batch_speedup;
  (* demux throughput per engine tier, same interleaving-free best-of-3
     window discipline as sim-throughput *)
  Printf.printf "   %-10s %14s %10s\n" "mode" "packets/s" "drops";
  let demux name (predecode, blocks, regions) =
    let r = fresh ~predecode ~blocks ~regions () in
    r.Workloads.rt_install ~n:router_nfilters ~batched:true;
    r.Workloads.rt_packets ~n:2000 ~churn_every:32 (* warm *);
    let best = ref 0.0 in
    for _ = 1 to 3 do
      let t0 = Sys.time () in
      let total = ref 0 and elapsed = ref 0.0 in
      while !elapsed < 0.15 do
        r.Workloads.rt_packets ~n:1000 ~churn_every:32;
        total := !total + 1000;
        elapsed := Sys.time () -. t0
      done;
      let rate = float_of_int !total /. !elapsed in
      if rate > !best then best := rate
    done;
    r.Workloads.rt_sync ();
    record (Printf.sprintf "router.packets_per_sec.%s" (slug name)) !best;
    Printf.printf "   %-10s %14.0f %10d\n" name !best (r.Workloads.rt_drops ());
    !best
  in
  let rates = List.map (fun (name, flags) -> demux name flags) Workloads.modes in
  (* headline: the blocks tier, the default engine recommendation *)
  (match rates with
  | [ _; _; blk; _ ] -> record "router.packets_per_sec" blk
  | _ -> ());
  (* tail latency: a dedicated enabled sink (independent of
     --telemetry, so the throughput sections above keep their
     zero-overhead disabled path) feeds the install/classify stopwatch
     dists; percentiles interpolated from the log2 buckets.  bin/vstat
     is the interactive view of the same distributions. *)
  let module T = Vmachine.Telemetry in
  let tel_l = T.create () in
  let m = P.create ~cfg ~telemetry:tel_l ~predecode:true ~blocks:true ~regions:false () in
  let r = P.router ~tel:tel_l m in
  r.Workloads.rt_install ~n:2000 ~batched:true;
  r.Workloads.rt_packets ~n:8000 ~churn_every:32;
  r.Workloads.rt_sync ();
  Printf.printf "   tail latency (host ns, blocks tier, 8000 packets, churn/32):\n";
  Printf.printf "   %-22s %10s %10s %10s\n" "op" "p50" "p99" "p999";
  List.iter
    (fun (dist_name, key) ->
      let st = T.dist_stats tel_l (T.dist tel_l dist_name) in
      let q x = T.quantile_of_stats st x in
      let p50 = q 0.5 and p99 = q 0.99 and p999 = q 0.999 in
      record (Printf.sprintf "router.%s.p50" key) (float_of_int p50);
      record (Printf.sprintf "router.%s.p99" key) (float_of_int p99);
      record (Printf.sprintf "router.%s.p999" key) (float_of_int p999);
      Printf.printf "   %-22s %10d %10d %10d\n" dist_name p50 p99 p999)
    [ ("server.install_ns", "install_ns"); ("router.classify_ns", "classify_ns") ];
  Printf.printf "\n";
  (inst_single, inst_batched, batch_speedup)

(* ------------------------------------------------------------------ *)
(* Section: json-selftest -- deliberately record non-finite values so a
   `--json FILE` run exercises the null fallback in [json_float]; the
   json_check tool then verifies the file is strictly parseable. *)

let bench_json_selftest () =
  Printf.printf "== json-selftest (non-finite values must serialize as null) ==\n\n";
  record "json_selftest.nan" Float.nan;
  record "json_selftest.pos_inf" Float.infinity;
  record "json_selftest.neg_inf" Float.neg_infinity;
  record "json_selftest.finite" 1.5;
  record "json_selftest.tiny" 1e-300;
  record "json_selftest.huge" 1e300;
  Printf.printf "   recorded nan/inf/-inf/finite probes under json_selftest.*\n\n"

(* ------------------------------------------------------------------ *)

let run_all () =
  let dcg_ratio, dcg_raw_ratio, alloc_ratio = bench_codegen () in
  let dpf_us, pf_us, mpf_us = bench_table3 () in
  bench_table4 ();
  let _, dpf_peep_us, dpf_words_saved = bench_peephole () in
  bench_space ();
  bench_ablation_dpf ();
  bench_ablation_vregs ();
  bench_ablation_strength ();
  bench_wallclock ();
  bench_sim_throughput ();
  bench_corpus ();
  let _, _, batch = bench_router () in
  Printf.printf "== summary ==\n";
  Printf.printf "   router: batched installs %.2fx single-buffer installs\n" batch;
  Printf.printf
    "   codegen: dcg/vcode %.1fx (vs raw emitters %.1fx; paper ~35x), alloc ratio %.1fx\n"
    dcg_ratio dcg_raw_ratio alloc_ratio;
  Printf.printf "   table 3: DPF %.2fus, PATHFINDER %.2fus (%.1fx), MPF %.2fus (%.1fx)\n"
    dpf_us pf_us (pf_us /. dpf_us) mpf_us (mpf_us /. dpf_us);
  Printf.printf "   peephole: dpf %.2fus, %d code words saved\n" dpf_peep_us
    dpf_words_saved

let usage () =
  prerr_endline
    "usage: main.exe [--json FILE] [--telemetry] [MODE...]\n\
     modes: all (default) codegen table3 table4 peephole space ablations wallclock\n\
     \       sim-throughput corpus router json-selftest";
  exit 2

let run_mode = function
  | "all" -> run_all ()
  | "codegen" -> ignore (bench_codegen ())
  | "table3" -> ignore (bench_table3 ())
  | "table4" -> bench_table4 ()
  | "peephole" -> ignore (bench_peephole () : float * float * int)
  | "space" -> bench_space ()
  | "ablations" ->
      bench_ablation_dpf ();
      bench_ablation_vregs ();
      bench_ablation_strength ()
  | "wallclock" -> bench_wallclock ()
  | "sim-throughput" -> bench_sim_throughput ()
  | "corpus" -> bench_corpus ()
  | "router" -> ignore (bench_router () : float * float * float)
  | "json-selftest" -> bench_json_selftest ()
  | m ->
      Printf.eprintf "unknown mode %S\n" m;
      usage ()

let () =
  let rec parse modes json = function
    | [] -> (List.rev modes, json)
    | "--json" :: path :: rest -> parse modes (Some path) rest
    | "--telemetry" :: rest ->
        if !tel_sink = None then tel_sink := Some (Vmachine.Telemetry.create ());
        parse modes json rest
    | [ "--json" ] ->
        prerr_endline "--json requires a file path";
        usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | m :: rest -> parse (m :: modes) json rest
  in
  let modes, json = parse [] None (List.tl (Array.to_list Sys.argv)) in
  let modes = if modes = [] then [ "all" ] else modes in
  Printf.printf "VCODE reproduction benchmarks\n";
  Printf.printf "=============================\n\n";
  List.iter run_mode modes;
  match json with None -> () | Some path -> write_json path
