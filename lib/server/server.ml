(* The code-region registry: install/replace/evict/lookup over
   slab-allocated compiled filters.

   Correctness story, in one place: a slab's previous tenant is always
   scrubbed with Mem.fill before the address can be handed out again,
   and the fill (like install_code itself) runs through the memory
   write-watcher protocol.  Whatever engine tiers the owning simulator
   stacked on that memory — predecode cache, superblock cache, region
   cache — their watchers see the store and retire any translation
   derived from the window.  The registry never talks to an engine
   directly, so adding a tier never changes this module. *)

open Vcodebase
module Mem = Vmachine.Mem
module Tel = Vmachine.Telemetry

module Make (T : Target.S) = struct
  module DP = Dpf.Make (T)

  type region = {
    rg_key : int;
    rg_fid : int;
    rg_base : int;
    rg_slab : int; (* slab words *)
    rg_words : int; (* emitted code words *)
    rg_entry : int;
    mutable rg_hits : int;
    rg_epoch : int;
  }

  type t = {
    mem : Mem.t;
    arena : Arena.t;
    tel : Tel.t;
    shards : (int, region) Hashtbl.t array;
    shard_mask : int;
    scratch : Codebuf.t; (* the batched queue's recycled buffer *)
    table_base : int; (* above the window; single filters emit no tables *)
    max_live : int option;
    mutable next_epoch : int;
    (* stats mirror: plain ints for cheap reads by tests/bench *)
    mutable s_live : int;
    mutable s_installs : int;
    mutable s_replaces : int;
    mutable s_evictions : int;
    mutable s_cap_evictions : int;
    mutable s_recompiles : int;
    mutable s_hits : int;
    mutable s_misses : int;
    c_install : Tel.counter;
    c_replace : Tel.counter;
    c_evict : Tel.counter;
    c_evict_cap : Tel.counter;
    c_recompile : Tel.counter;
    c_hit : Tel.counter;
    c_miss : Tel.counter;
    (* latency distributions (host ns), fed by Tel timers *)
    d_install_ns : Tel.dist;
    d_replace_ns : Tel.dist;
    d_evict_ns : Tel.dist;
    (* gauges, written by sync_gauges *)
    g_live : Tel.counter;
    g_slabs_live : Tel.counter;
    g_slabs_free : Tel.counter;
    g_bump_words : Tel.counter;
  }

  type info = {
    base : int;
    slab_words : int;
    code_words : int;
    entry : int;
    fid : int;
    hits : int;
    epoch : int;
  }

  type stats = {
    live : int;
    installs : int;
    replaces : int;
    evictions : int;
    capacity_evictions : int;
    recompiles : int;
    lookup_hits : int;
    lookup_misses : int;
  }

  let round_pow2 n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 1

  let create ?(tel = Tel.disabled) ?(shards = 16) ?max_live ?(arena_base = 0x100000)
      ?arena_limit mem =
    (* default window: everything above the harness data buffers up to
       64KB below the top of memory (stacks live at the top) *)
    let arena_limit =
      match arena_limit with Some l -> l | None -> Mem.size mem - 0x10000
    in
    if arena_limit > Mem.size mem then invalid_arg "Server.create: window exceeds memory";
    let nshards = round_pow2 (max 1 shards) in
    {
      mem;
      arena = Arena.create ~tel ~base:arena_base ~limit:arena_limit ();
      tel;
      shards = Array.init nshards (fun _ -> Hashtbl.create 64);
      shard_mask = nshards - 1;
      scratch = Codebuf.create ~capacity:256 ();
      table_base = arena_limit;
      max_live;
      next_epoch = 0;
      s_live = 0;
      s_installs = 0;
      s_replaces = 0;
      s_evictions = 0;
      s_cap_evictions = 0;
      s_recompiles = 0;
      s_hits = 0;
      s_misses = 0;
      c_install = Tel.counter tel "server.install";
      c_replace = Tel.counter tel "server.replace";
      c_evict = Tel.counter tel "server.evict";
      c_evict_cap = Tel.counter tel "server.evict_capacity";
      c_recompile = Tel.counter tel "server.recompile";
      c_hit = Tel.counter tel "server.lookup.hit";
      c_miss = Tel.counter tel "server.lookup.miss";
      d_install_ns = Tel.dist tel "server.install_ns";
      d_replace_ns = Tel.dist tel "server.replace_ns";
      d_evict_ns = Tel.dist tel "server.evict_ns";
      g_live = Tel.counter tel "server.live_regions";
      g_slabs_live = Tel.counter tel "server.arena.live_slabs";
      g_slabs_free = Tel.counter tel "server.arena.free_slabs";
      g_bump_words = Tel.counter tel "server.arena.bump_words";
    }

  let shard t key = t.shards.(key land t.shard_mask)
  let live t = t.s_live

  (* Remove [r] and scrub its slab.  The zero-fill is the invalidation
     edge: it rides the write-watcher protocol, so every engine tier
     retires translations over [rg_base, rg_base + 4*rg_slab) before
     the arena can reissue the address. *)
  let drop_region t r =
    Hashtbl.remove (shard t r.rg_key) r.rg_key;
    Mem.fill t.mem ~addr:r.rg_base ~len:(4 * r.rg_slab) '\000';
    Arena.free t.arena r.rg_base;
    t.s_live <- t.s_live - 1

  let evict t key =
    match Hashtbl.find_opt (shard t key) key with
    | None -> false
    | Some r ->
      let t0 = Tel.timer_start t.tel in
      drop_region t r;
      t.s_evictions <- t.s_evictions + 1;
      Tel.bump t.tel t.c_evict;
      Tel.timer_stop t.tel t.d_evict_ns t0;
      true

  (* Coldest = fewest hits, then oldest epoch, then lowest base — a
     total order, so eviction is deterministic across Hashtbl layouts. *)
  let coldest t =
    let best = ref None in
    Array.iter
      (fun tbl ->
        Hashtbl.iter
          (fun _ r ->
            match !best with
            | None -> best := Some r
            | Some b ->
              if
                (r.rg_hits, r.rg_epoch, r.rg_base) < (b.rg_hits, b.rg_epoch, b.rg_base)
              then best := Some r)
          tbl)
      t.shards;
    !best

  let evict_coldest t =
    match coldest t with
    | None -> false
    | Some r ->
      drop_region t r;
      t.s_cap_evictions <- t.s_cap_evictions + 1;
      Tel.bump t.tel t.c_evict_cap;
      true

  (* Evict the [k] coldest regions in ONE scan: collect, sort by the
     same (hits, epoch, base) total order the one-at-a-time path uses,
     drop the head.  k successive [evict_coldest] calls with no
     intervening lookups select exactly this set, so the policy is
     unchanged — only the k * O(live) rescan cost is. *)
  let evict_coldest_k t k =
    let all = ref [] in
    Array.iter (fun tbl -> Hashtbl.iter (fun _ r -> all := r :: !all) tbl) t.shards;
    let arr = Array.of_list !all in
    Array.sort
      (fun a b ->
        let c = Int.compare a.rg_hits b.rg_hits in
        if c <> 0 then c
        else
          let c = Int.compare a.rg_epoch b.rg_epoch in
          if c <> 0 then c else Int.compare a.rg_base b.rg_base)
      arr;
    let k = min k (Array.length arr) in
    for i = 0 to k - 1 do
      drop_region t arr.(i)
    done;
    t.s_cap_evictions <- t.s_cap_evictions + k;
    Tel.add t.tel t.c_evict_cap k

  (* Allocate [words], evicting coldest regions until it fits.
     [pending] is the number of installs still queued behind this one
     (1 outside a batch): when arena pressure hits mid-batch, the whole
     queue's worth of coldest regions is cleared in one scan instead of
     paying a full scan per install — the service-level amortization
     the router benchmark measures at capacity. *)
  let alloc_evicting ?(pending = 1) t ~words =
    let rec go () =
      match Arena.alloc t.arena ~words with
      | Some a -> a
      | None ->
        if pending > 1 && t.s_live > 0 then begin
          evict_coldest_k t (min pending t.s_live);
          match Arena.alloc t.arena ~words with
          | Some a -> a
          | None -> single ()
        end
        else single ()
    and single () =
      if not (evict_coldest t) then
        failwith
          (Printf.sprintf "Server: cannot place %d-word region in empty arena" words)
      else go ()
    in
    go ()

  (* Pre-compile size estimate, in code words.  Measured on the MIPS
     port: a single-filter compile has a ~63-word floor (reserved
     prologue area, bounds-check entry, fail/done tails) plus ~4 words
     per Cmp atom — a tcpip_session filter (4 atoms) emits 85 words.
     The floor is padded so common filters land in the 128-word class
     on the first try; the recompile path below corrects any
     underestimate at the cost of one extra compile. *)
  let estimate_words (f : Dpf.Filter.t) = 64 + (6 * List.length f.Dpf.Filter.atoms)

  let compile_at t ?buf ~base f =
    DP.compile ~base ~table_base:t.table_base ?buf [ f ]

  (* One stopwatch covers the whole install path — replace scrub,
     capacity evictions, slab allocation, compile (and the recompile on
     underestimate), code+table stores — so the install_ns tail
     reflects what a caller actually waits.  Replacements additionally
     land in replace_ns, keeping the replace tail separable. *)
  let install_common t ?buf ?(pending = 1) ~key (f : Dpf.Filter.t) =
    let t0 = Tel.timer_start t.tel in
    let replaced =
      match Hashtbl.find_opt (shard t key) key with
      | Some r ->
        drop_region t r;
        t.s_replaces <- t.s_replaces + 1;
        Tel.bump t.tel t.c_replace;
        true
      | None -> false
    in
    (match t.max_live with
    | Some cap ->
      while t.s_live >= cap && evict_coldest t do
        ()
      done
    | None -> ());
    let addr, slab = alloc_evicting ~pending t ~words:(estimate_words f) in
    let c = compile_at t ?buf ~base:addr f in
    let words = Codebuf.length c.Dpf.code.Vcode.gen.Gen.buf in
    (* on underestimate: return the slab and recompile into one that
       fits (code size is base-independent, so the second compile is
       exact) *)
    let addr, slab, c, words =
      if words <= slab then (addr, slab, c, words)
      else begin
        Arena.free t.arena addr;
        let addr', slab' = alloc_evicting ~pending t ~words in
        let c' = compile_at t ?buf ~base:addr' f in
        let words' = Codebuf.length c'.Dpf.code.Vcode.gen.Gen.buf in
        assert (words' <= slab');
        t.s_recompiles <- t.s_recompiles + 1;
        Tel.bump t.tel t.c_recompile;
        (addr', slab', c', words')
      end
    in
    Mem.install_code t.mem ~addr c.Dpf.code.Vcode.gen.Gen.buf;
    DP.install_tables t.mem c;
    let r =
      {
        rg_key = key;
        rg_fid = f.Dpf.Filter.fid;
        rg_base = addr;
        rg_slab = slab;
        rg_words = words;
        rg_entry = c.Dpf.entry;
        rg_hits = 0;
        rg_epoch = t.next_epoch;
      }
    in
    t.next_epoch <- t.next_epoch + 1;
    Hashtbl.replace (shard t key) key r;
    t.s_live <- t.s_live + 1;
    t.s_installs <- t.s_installs + 1;
    Tel.bump t.tel t.c_install;
    Tel.timer_stop t.tel t.d_install_ns t0;
    if replaced then Tel.timer_stop t.tel t.d_replace_ns t0;
    r.rg_entry

  let install t ~key f = install_common t ~key f

  let install_batch t kfs =
    let n = List.length kfs in
    List.iteri
      (fun i (key, f) ->
        ignore (install_common t ~buf:t.scratch ~pending:(n - i) ~key f : int))
      kfs

  let lookup t key =
    match Hashtbl.find_opt (shard t key) key with
    | Some r ->
      r.rg_hits <- r.rg_hits + 1;
      t.s_hits <- t.s_hits + 1;
      Tel.bump t.tel t.c_hit;
      Some r.rg_entry
    | None ->
      t.s_misses <- t.s_misses + 1;
      Tel.bump t.tel t.c_miss;
      None

  let find t key =
    Hashtbl.find_opt (shard t key) key
    |> Option.map (fun r ->
           {
             base = r.rg_base;
             slab_words = r.rg_slab;
             code_words = r.rg_words;
             entry = r.rg_entry;
             fid = r.rg_fid;
             hits = r.rg_hits;
             epoch = r.rg_epoch;
           })

  let stats t =
    {
      live = t.s_live;
      installs = t.s_installs;
      replaces = t.s_replaces;
      evictions = t.s_evictions;
      capacity_evictions = t.s_cap_evictions;
      recompiles = t.s_recompiles;
      lookup_hits = t.s_hits;
      lookup_misses = t.s_misses;
    }

  let arena_stats t = Arena.stats t.arena

  (* Named gauge closures for a {!Vmachine.Timeline}: registry
     occupancy, arena free-list depths (total and per size class) and
     the bump frontier.  All allocation-free reads, cheap enough to
     sample every few packets. *)
  let gauge_sources t =
    let a = t.arena in
    [
      ("server.live_regions", fun () -> t.s_live);
      ("server.arena.free_slabs", fun () -> Arena.free_slabs_total a);
      ("server.arena.live_slabs", fun () -> Arena.live_slabs a);
      ("server.arena.bump_words", fun () -> Arena.bump_words a);
    ]
    @ List.mapi
        (fun i size ->
          (Printf.sprintf "server.arena.free.c%d" size, fun () -> Arena.free_slabs a ~cls:i))
        (Array.to_list Arena.class_sizes)

  (* counters are monotonic stores; a gauge is written as the delta to
     the target value so generic consumers (vprof's counter dump) see
     the current level under the usual read API *)
  let set_gauge t c v = Tel.add t.tel c (v - Tel.value t.tel c)

  let sync_gauges t =
    let a = Arena.stats t.arena in
    let free = Array.fold_left (fun acc c -> acc + c.Arena.free) 0 a.Arena.classes in
    set_gauge t t.g_live t.s_live;
    set_gauge t t.g_slabs_live a.Arena.live_slabs;
    set_gauge t t.g_slabs_free free;
    set_gauge t t.g_bump_words a.Arena.bump_words
end
