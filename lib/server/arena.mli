(** Slab allocator for generated-code regions in simulated memory.

    The registry ({!Server}) installs thousands of small compiled
    filters and churns them continuously; a general-purpose allocator
    over the code window would fragment and drift.  Instead the arena
    carves the window into fixed-size slab classes (powers of two from
    {!class_sizes}): an allocation rounds the requested word count up
    to the smallest class, serving it from that class's free list when
    possible and from the bump frontier otherwise.  Frees push onto the
    class free list in LIFO order — the next same-class allocation
    reuses the hottest address, which is exactly the address-reuse
    hazard the engine-invalidation tests want to provoke.

    All addresses handed out are 8-aligned (a [Vcode.lambda]
    requirement) provided [base] is.  The arena only tracks ownership;
    it never touches memory — the registry is responsible for the
    zero-fill that rides the {!Vmachine.Mem} write-watcher protocol
    when a slab's previous tenant is evicted. *)

type t

(** slab classes in code words, ascending; every class is a multiple of
    two words so slab starts stay 8-byte aligned *)
val class_sizes : int array

(** [create ?tel ~base ~limit ()] manages the byte window
    [\[base, limit)].  [base] must be 8-aligned.  Counters and the
    allocation-size distribution are registered under ["server.arena"]
    on [tel] (default: the disabled sink). *)
val create : ?tel:Vmachine.Telemetry.t -> base:int -> limit:int -> unit -> t

(** [alloc t ~words] returns [(addr, slab_words)] for the smallest
    class holding [words], or [None] when [words] exceeds the largest
    class or the window is exhausted (no free slab of the class and no
    bump room).  The caller may then evict and retry. *)
val alloc : t -> words:int -> (int * int) option

(** [free t addr] returns the slab at [addr] to its class free list.
    @raise Invalid_argument when [addr] is not a live allocation *)
val free : t -> int -> unit

(** slab words backing the live allocation at [addr] *)
val slab_words : t -> int -> int option

(** {2 Gauge accessors}

    Cheap reads for {!Vmachine.Timeline} gauges — unlike {!stats},
    these build no records (the per-class free count is one list walk
    bounded by the slab count). *)

val live_slabs : t -> int
val bump_words : t -> int

(** free-list depth of class index [cls] (index into {!class_sizes}) *)
val free_slabs : t -> cls:int -> int

val free_slabs_total : t -> int

(** per-class occupancy, index-aligned with {!class_sizes} *)
type class_stats = { size : int; live : int; free : int }

type stats = {
  classes : class_stats array;
  bump_words : int;  (** words ever claimed from the frontier *)
  window_words : int;  (** total words in [\[base, limit)] *)
  live_slabs : int;
}

val stats : t -> stats
