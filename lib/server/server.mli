(** Multi-tenant registry of generated-code regions.

    The paper's systems clients (packet demultiplexing above all)
    don't compile one function and run it forever: an OS-level
    dispatcher installs thousands of small compiled filters, replaces
    and removes them as endpoints come and go, and must never execute
    a stale instruction at a reused address.  This module is that
    service layer over the existing pieces: filters compile through
    {!Dpf}, land in an {!Arena} slab, and are published to simulated
    memory with {!Vmachine.Mem.install_code} — whose write-watcher
    traffic is exactly what keeps every engine tier's translation
    caches (predecode, superblocks, regions) coherent.

    Eviction composes with the same protocol: dropping a region
    zero-fills its slab through {!Vmachine.Mem.fill}, so the watchers
    retire any translations derived from that address window {e
    before} the slab can be reallocated.  Safety therefore does not
    depend on the registry knowing which engine tiers exist.

    Keys are client-chosen integers (think: endpoint ids).  Lookup is
    a sharded hash table; hotness for eviction comes from per-region
    lookup counts, the same signal the telemetry layer reports. *)

module Make (T : Vcodebase.Target.S) : sig
  module DP : module type of Dpf.Make (T)

  type t

  (** live-region facts, for tests and reporting *)
  type info = {
    base : int;  (** slab base address *)
    slab_words : int;
    code_words : int;  (** words actually emitted *)
    entry : int;  (** call this *)
    fid : int;  (** the compiled filter's id *)
    hits : int;  (** lookups served *)
    epoch : int;  (** installation order, monotonic across the registry *)
  }

  type stats = {
    live : int;
    installs : int;
    replaces : int;  (** installs that displaced the same key *)
    evictions : int;  (** explicit {!evict} calls that removed a region *)
    capacity_evictions : int;  (** coldest-region evictions forced by a full arena *)
    recompiles : int;  (** second compiles after a slab-class upgrade *)
    lookup_hits : int;
    lookup_misses : int;
  }

  (** [create mem] builds a registry whose code window is
      [\[arena_base, arena_limit)] (defaults: [0x100000] — clear of
      the harness packet buffer — up to 64KB below the top of memory,
      clear of the stacks).  [shards] (default 16, rounded up to a
      power of two) sizes the key-sharded table.  [max_live] caps
      resident regions: an install beyond it first evicts the coldest
      region, modelling a fixed code-cache budget. *)
  val create :
    ?tel:Vmachine.Telemetry.t ->
    ?shards:int ->
    ?max_live:int ->
    ?arena_base:int ->
    ?arena_limit:int ->
    Vmachine.Mem.t ->
    t

  (** [install t ~key f] compiles [f], places it in the arena and
      publishes it; returns the entry address.  An existing region
      under [key] is evicted first (its slab is scrubbed through the
      watcher protocol before reuse).  Each call pays a fresh
      code-buffer allocation — the unbatched baseline.
      @raise Failure when the filter cannot fit even after evicting
      every other region *)
  val install : t -> key:int -> Dpf.Filter.t -> int

  (** [install_batch t kfs] installs every (key, filter) pair reusing
      one scratch code buffer across the whole queue
      ({!Vcodebase.Codebuf.reset} between compiles), and amortizes
      capacity eviction: when the arena fills mid-batch, the remaining
      queue's worth of coldest regions is cleared in a single scan —
      the same (hits, epoch) eviction order as one-at-a-time installs,
      without paying an O(live regions) rescan per install.  This is
      the amortized path the router benchmark compares against
      {!install}. *)
  val install_batch : t -> (int * Dpf.Filter.t) list -> unit

  (** entry address under [key]; counts toward the region's hotness *)
  val lookup : t -> int -> int option

  (** [evict t key] removes the region and scrubs its slab; [false]
      when the key is not resident *)
  val evict : t -> int -> bool

  (** evict the coldest region (fewest hits, oldest epoch as
      tiebreak); [false] when the registry is empty *)
  val evict_coldest : t -> bool

  val find : t -> int -> info option
  val live : t -> int
  val stats : t -> stats
  val arena_stats : t -> Arena.stats

  (** push the registry gauges (live regions, slab occupancy, bump
      frontier) into the telemetry sink as [server.*] counters, so
      generic reporters (vprof) see them without a Server dependency *)
  val sync_gauges : t -> unit

  (** named allocation-free gauge closures (registry occupancy, arena
      free-list depths — total and per size class as
      [server.arena.free.c<size>] — and the bump frontier) for
      registration on a {!Vmachine.Timeline}; the harness wires them
      up so a timeline can watch the registry evolve under churn.

      Latency is recorded separately: {!install}/{!install_batch} feed
      the [server.install_ns] distribution (replacements additionally
      [server.replace_ns]) and {!evict} feeds [server.evict_ns],
      whole-path stopwatches over {!Vmachine.Telemetry.timer_start}. *)
  val gauge_sources : t -> (string * (unit -> int)) list
end
