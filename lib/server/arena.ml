(* Slab allocator for the code-region registry.

   Fixed-size classes with per-class LIFO free lists over a bump
   frontier.  Everything here is bookkeeping over addresses — the
   registry owns the actual stores into simulated memory (and with
   them the write-watcher invalidation traffic). *)

module Tel = Vmachine.Telemetry

let class_sizes = [| 32; 64; 128; 256; 512; 1024 |]

type class_state = {
  size : int;
  mutable free : int list; (* LIFO: reuse the hottest address first *)
  mutable live : int;
}

type t = {
  base : int;
  limit : int;
  mutable bump : int; (* next unclaimed byte address *)
  classes : class_state array;
  owner : (int, int) Hashtbl.t; (* live slab addr -> class index *)
  tel : Tel.t;
  c_fresh : Tel.counter;  (* slabs claimed from the frontier *)
  c_reuse : Tel.counter;  (* slabs served from a free list *)
  c_free : Tel.counter;
  c_full : Tel.counter;   (* allocation failures (caller evicts) *)
  d_words : Tel.dist;     (* requested allocation sizes *)
}

let create ?(tel = Tel.disabled) ~base ~limit () =
  if base land 7 <> 0 then invalid_arg "Arena.create: base must be 8-aligned";
  if limit <= base then invalid_arg "Arena.create: empty window";
  {
    base;
    limit;
    bump = base;
    classes = Array.map (fun size -> { size; free = []; live = 0 }) class_sizes;
    owner = Hashtbl.create 1024;
    tel;
    c_fresh = Tel.counter tel "server.arena.fresh";
    c_reuse = Tel.counter tel "server.arena.reuse";
    c_free = Tel.counter tel "server.arena.free";
    c_full = Tel.counter tel "server.arena.full";
    d_words = Tel.dist tel "server.arena.alloc_words";
  }

(* smallest class index holding [words], or None beyond the largest *)
let class_for words =
  let n = Array.length class_sizes in
  let rec go i = if i >= n then None else if class_sizes.(i) >= words then Some i else go (i + 1) in
  go 0

let alloc t ~words =
  Tel.observe t.tel t.d_words words;
  match class_for words with
  | None ->
    Tel.bump t.tel t.c_full;
    None
  | Some ci ->
    let cls = t.classes.(ci) in
    (match cls.free with
    | addr :: rest ->
      cls.free <- rest;
      cls.live <- cls.live + 1;
      Hashtbl.replace t.owner addr ci;
      Tel.bump t.tel t.c_reuse;
      Some (addr, cls.size)
    | [] ->
      let bytes = 4 * cls.size in
      if t.bump + bytes > t.limit then begin
        Tel.bump t.tel t.c_full;
        None
      end
      else begin
        let addr = t.bump in
        t.bump <- t.bump + bytes;
        cls.live <- cls.live + 1;
        Hashtbl.replace t.owner addr ci;
        Tel.bump t.tel t.c_fresh;
        Some (addr, cls.size)
      end)

let free t addr =
  match Hashtbl.find_opt t.owner addr with
  | None -> invalid_arg (Printf.sprintf "Arena.free: 0x%x is not a live slab" addr)
  | Some ci ->
    Hashtbl.remove t.owner addr;
    let cls = t.classes.(ci) in
    cls.free <- addr :: cls.free;
    cls.live <- cls.live - 1;
    Tel.bump t.tel t.c_free

let slab_words t addr =
  match Hashtbl.find_opt t.owner addr with
  | None -> None
  | Some ci -> Some t.classes.(ci).size

(* Allocation-free accessors for {!Vmachine.Timeline} gauges: [stats]
   builds records and walks every free list, which is too heavy to
   call once per snapshot.  Free lists are bounded by the slab count,
   so the single-class List.length walks stay cheap. *)
let live_slabs t = Hashtbl.length t.owner
let bump_words t = (t.bump - t.base) / 4
let free_slabs t ~cls = List.length t.classes.(cls).free

let free_slabs_total t =
  let n = ref 0 in
  Array.iter (fun (c : class_state) -> n := !n + List.length c.free) t.classes;
  !n

type class_stats = { size : int; live : int; free : int }

type stats = {
  classes : class_stats array;
  bump_words : int;
  window_words : int;
  live_slabs : int;
}

let stats (t : t) =
  {
    classes =
      Array.map
        (fun (c : class_state) ->
          { size = c.size; live = c.live; free = List.length c.free })
        t.classes;
    bump_words = (t.bump - t.base) / 4;
    window_words = (t.limit - t.base) / 4;
    live_slabs = Hashtbl.length t.owner;
  }
