(** A two-pass MIPS-subset assembler over the backend's own ISA tables.

    [Vasm] turns textual MIPS assembly into the exact code words
    {!Vmips.Mips_asm.encode} produces — every instruction is parsed to
    a {!Vmips.Mips_asm.t} and encoded through the backend, so the
    assembler cannot drift from the emitters or the simulator.  The
    accepted grammar is the disassembler's own output plus labels,
    data directives and a handful of standard pseudo-instructions;
    `visa disasm` output therefore re-assembles to the identical words
    (the round-trip pinned by test/test_asm.ml).

    Errors never escape as bare exceptions from the [result]-returning
    entry points: every failure is a located {!diag}. *)

(** a located diagnostic; [line] and [col] are 1-based *)
type diag = { line : int; col : int; msg : string }

exception Error of diag

(** ["LINE:COL: msg"] — prepend a filename to taste *)
val diag_to_string : diag -> string

(** an assembled program: a contiguous little-endian word image
    starting at [base] (gaps from [.org]/[.space] are zero-filled) *)
type image = {
  base : int;
  words : int array;
  entry : int;  (** the [main] label if defined, else [base] *)
  symbols : (string * int) list;  (** label -> absolute address *)
}

(** assemble source text; [base] defaults to 0x10000, matching the
    generated-code base the harness workloads use *)
val assemble : ?base:int -> string -> (image, diag) result

(** like {!assemble} but raises {!Error} *)
val assemble_exn : ?base:int -> string -> image

(** read and assemble a file; unreadable files become a [diag] with
    [line = 0] *)
val assemble_file : ?base:int -> string -> (image, diag) result
