(* Two-pass MIPS-subset assembler.

   Pass 1 lexes and parses every line, assigns addresses (sizing
   pseudo-instruction expansions and data directives) and collects the
   label table; pass 2 resolves symbols, range-checks every field and
   encodes through Vmips.Mips_asm.encode — the same tables the VCODE
   MIPS backend emits through, so an assembled word can never differ
   from the backend's encoding of the same instruction.

   Grammar (one statement per line):

     line   := (label ':')* (insn | directive)? comment?
     insn   := mnemonic operand (',' operand)*
     opnd   := $reg | $fN | imm | label | imm? '(' $reg ')'
     direct := .org imm | .align imm | .space imm
             | .word item,*  | .half item,*  | .byte item,*
             | .asciiz "str"
     comment:= ('#' | ';') .*

   Branch and jump targets are labels or absolute addresses (the
   disassembler prints absolute hex targets, which is what makes
   disasm output re-assemblable).  Delay slots are architectural: the
   word after a branch/jump always executes, and the assembler rejects
   a control transfer (or a multi-word pseudo) in a delay slot rather
   than silently producing code whose second half never runs. *)

module A = Vmips.Mips_asm

type diag = { line : int; col : int; msg : string }

exception Error of diag

let diag_to_string d = Printf.sprintf "%d:%d: %s" d.line d.col d.msg
let error ~line ~col fmt = Printf.ksprintf (fun msg -> raise (Error { line; col; msg })) fmt

type image = {
  base : int;
  words : int array;
  entry : int;
  symbols : (string * int) list;
}

(* ------------------------------------------------------------------ *)
(* Lexing                                                              *)

type tok =
  | Tid of string (* mnemonic / label / directive / symbol reference *)
  | Treg of int
  | Tfreg of int
  | Tint of int
  | Tstr of string
  | Tcomma
  | Tcolon
  | Tlparen
  | Trparen

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let reg_index =
  let tbl = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace tbl n i) A.reg_names;
  Hashtbl.replace tbl "fp" 30;
  fun name -> Hashtbl.find_opt tbl name

(* one source line -> [(token, 1-based col)] *)
let lex_line ~line s =
  let n = String.length s in
  let toks = ref [] in
  let push t col = toks := (t, col + 1) :: !toks in
  let i = ref 0 in
  let err col fmt = error ~line ~col:(col + 1) fmt in
  (try
     while !i < n do
       let c = s.[!i] in
       if c = ' ' || c = '\t' || c = '\r' then incr i
       else if c = '#' || c = ';' then raise Exit
       else if c = ',' then (push Tcomma !i; incr i)
       else if c = ':' then (push Tcolon !i; incr i)
       else if c = '(' then (push Tlparen !i; incr i)
       else if c = ')' then (push Trparen !i; incr i)
       else if c = '$' then begin
         let start = !i in
         incr i;
         let b = Buffer.create 4 in
         while !i < n && is_id_char s.[!i] do
           Buffer.add_char b s.[!i];
           incr i
         done;
         let name = Buffer.contents b in
         if name = "" then err start "bare '$' is not a register";
         let all_digits lo =
           let ok = ref (String.length name > lo) in
           String.iteri (fun k c -> if k >= lo && not (is_digit c) then ok := false) name;
           !ok
         in
         if all_digits 0 then begin
           let v = int_of_string name in
           if v > 31 then err start "register number %d out of range (0..31)" v;
           push (Treg v) start
         end
         else if name.[0] = 'f' && all_digits 1 then begin
           let v = int_of_string (String.sub name 1 (String.length name - 1)) in
           if v > 31 then err start "float register $f%d out of range ($f0..$f31)" v;
           push (Tfreg v) start
         end
         else
           match reg_index name with
           | Some v -> push (Treg v) start
           | None -> err start "unknown register $%s" name
       end
       else if is_digit c || (c = '-' && !i + 1 < n && is_digit s.[!i + 1]) then begin
         let start = !i in
         if c = '-' then incr i;
         let hex = !i + 1 < n && s.[!i] = '0' && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X') in
         if hex then i := !i + 2;
         let digits_start = !i in
         while
           !i < n
           && (is_digit s.[!i]
              || (hex && ((s.[!i] >= 'a' && s.[!i] <= 'f') || (s.[!i] >= 'A' && s.[!i] <= 'F'))))
         do
           incr i
         done;
         if hex && !i = digits_start then err start "malformed hex literal";
         let text = String.sub s start (!i - start) in
         (match int_of_string_opt text with
         | Some v -> push (Tint v) start
         | None -> err start "malformed number %S" text)
       end
       else if c = '"' then begin
         let start = !i in
         incr i;
         let b = Buffer.create 16 in
         let closed = ref false in
         while (not !closed) && !i < n do
           (match s.[!i] with
           | '"' -> closed := true
           | '\\' ->
             incr i;
             if !i >= n then err start "unterminated escape in string";
             Buffer.add_char b
               (match s.[!i] with
               | 'n' -> '\n'
               | 't' -> '\t'
               | '0' -> '\000'
               | '\\' -> '\\'
               | '"' -> '"'
               | c -> err (!i) "unknown string escape '\\%c'" c)
           | c -> Buffer.add_char b c);
           incr i
         done;
         if not !closed then err start "unterminated string literal";
         push (Tstr (Buffer.contents b)) start
       end
       else if is_id_start c then begin
         let start = !i in
         let b = Buffer.create 8 in
         while !i < n && is_id_char s.[!i] do
           Buffer.add_char b s.[!i];
           incr i
         done;
         push (Tid (Buffer.contents b)) start
       end
       else err !i "unexpected character '%c'" c
     done
   with Exit -> ());
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type operand =
  | Oreg of int
  | Ofreg of int
  | Oimm of int
  | Osym of string
  | Omem of int * int (* offset, base register *)

type located_op = { v : operand; ocol : int }

type stmt =
  | Insn of { mn : string; mcol : int; ops : located_op list; line : int; loc : int }
  | Dir of {
      d : string;
      ops : located_op list;
      str : (string * int) option;
      line : int;
      loc : int;
    }

(* parse the operand list after a mnemonic/directive *)
let parse_operands ~line toks =
  let err col fmt = error ~line ~col fmt in
  let rec operand = function
    | (Treg r, c) :: rest -> ({ v = Oreg r; ocol = c }, rest)
    | (Tfreg r, c) :: rest -> ({ v = Ofreg r; ocol = c }, rest)
    | (Tid s, c) :: rest -> ({ v = Osym s; ocol = c }, rest)
    | (Tstr _, c) :: _ -> err c "string literal only valid after .asciiz"
    | (Tint v, c) :: (Tlparen, _) :: rest -> mem v c rest
    | (Tlparen, c) :: rest -> mem 0 c rest
    | (Tint v, c) :: rest -> ({ v = Oimm v; ocol = c }, rest)
    | (t, c) :: _ ->
      err c "expected operand, got %s"
        (match t with
        | Tcomma -> "','"
        | Tcolon -> "':'"
        | Trparen -> "')'"
        | _ -> "token")
    | [] -> err 1 "expected operand at end of line"
  and mem off c = function
    | (Treg b, _) :: (Trparen, _) :: rest -> ({ v = Omem (off, b); ocol = c }, rest)
    | (Treg _, _) :: (t, c') :: _ ->
      ignore t;
      err c' "expected ')' after base register"
    | _ -> err c "expected '(base-register)' in memory operand"
  in
  let rec go acc toks =
    let op, rest = operand toks in
    match rest with
    | [] -> List.rev (op :: acc)
    | (Tcomma, _) :: rest' -> go (op :: acc) rest'
    | (_, c) :: _ -> err c "junk after operand (expected ',' or end of line)"
  in
  match toks with [] -> [] | _ -> go [] toks

(* ------------------------------------------------------------------ *)
(* Instruction selection                                               *)

let ctl_transfer = function
  | A.J _ | A.Jal _ | A.Jr _ | A.Jalr _ | A.Beq _ | A.Bne _ | A.Blez _ | A.Bgtz _
  | A.Bltz _ | A.Bgez _ | A.Bc1t _ | A.Bc1f _ ->
    true
  | _ -> false

let known_pseudos =
  [ "li"; "la"; "move"; "not"; "neg"; "b"; "beqz"; "bnez"; "blt"; "bge"; "bgt"; "ble" ]

(* expansion size in words; must agree with [expand] below (the fuzz
   suite would catch a drift as a wrong-address branch).  Only [li]
   sizes on an operand, and that operand is required to be a literal,
   so sizes never depend on label values. *)
let insn_words ~line ~mcol mn ops =
  match mn with
  | "li" -> (
    match ops with
    | [ _; { v = Oimm n; _ } ] -> if n >= -32768 && n <= 65535 then 1 else 2
    | [ _; { v = Osym _; ocol } ] ->
      error ~line ~col:ocol "li takes a numeric immediate (use la for addresses)"
    | _ -> error ~line ~col:mcol "li expects: li $rt, imm")
  | "la" | "blt" | "bge" | "bgt" | "ble" -> 2
  | _ -> 1

let fmt_of_name ~line ~col = function
  | "s" -> A.FS
  | "d" -> A.FD
  | "w" -> A.FW
  | f -> error ~line ~col "unknown float format .%s (s|d|w)" f

(* [resolve sym col] yields the absolute address of a label; [pc] is
   the address of the word being emitted *)
let expand ~line ~mcol ~resolve ~pc mn (ops : located_op list) : A.t list =
  let err col fmt = error ~line ~col fmt in
  let value = function
    | { v = Oimm n; _ } -> n
    | { v = Osym s; ocol } -> resolve s ocol
    | { ocol; _ } -> err ocol "expected immediate or label"
  in
  let reg = function
    | { v = Oreg r; _ } -> r
    | { ocol; _ } -> err ocol "expected integer register"
  in
  let freg = function
    | { v = Ofreg r; _ } -> r
    | { ocol; _ } -> err ocol "expected float register ($f0..$f31)"
  in
  let simm16 o =
    let n = value o in
    if n < -32768 || n > 32767 then
      err o.ocol "immediate %d out of signed 16-bit range (-32768..32767)" n;
    n
  in
  let zimm16 o =
    let n = value o in
    if n < 0 || n > 0xFFFF then err o.ocol "immediate %d out of 16-bit range (0..65535)" n;
    n
  in
  let shamt o =
    let n = value o in
    if n < 0 || n > 31 then err o.ocol "shift amount %d out of range (0..31)" n;
    n
  in
  let mem = function
    | { v = Omem (off, b); ocol } ->
      if off < -32768 || off > 32767 then
        err ocol "memory offset %d out of signed 16-bit range" off;
      (b, off)
    | { v = Osym _; ocol } | { v = Oimm _; ocol } ->
      err ocol "expected 'offset(base)' memory operand (load the address first)"
    | { ocol; _ } -> err ocol "expected 'offset(base)' memory operand"
  in
  (* branch target -> signed 16-bit word offset relative to pc + 4 *)
  let btarget ~pc o =
    let t = value o in
    if t land 3 <> 0 then err o.ocol "branch target 0x%x is not word-aligned" t;
    let off = (t - (pc + 4)) asr 2 in
    if off < -32768 || off > 32767 then
      err o.ocol "branch target 0x%x out of range (%d words from pc)" t off;
    off
  in
  let jtarget ~pc o =
    let t = value o in
    if t land 3 <> 0 then err o.ocol "jump target 0x%x is not word-aligned" t;
    if t < 0 || (pc + 4) land 0xF0000000 <> t land 0xF0000000 then
      err o.ocol "jump target 0x%x outside the current 256MB region" t;
    (t land 0x0FFFFFFF) lsr 2
  in
  let nops k = err mcol "%s expects %d operand%s" mn k (if k = 1 then "" else "s") in
  match (mn, ops) with
  (* --- integer instruction set, accepting the disassembler's syntax --- *)
  | "nop", [] -> [ A.Nop ]
  | "nop", _ -> nops 0
  | ("sll" | "srl" | "sra"), [ a; b; c ] ->
    let rd = reg a and rt = reg b and sh = shamt c in
    [ (match mn with "sll" -> A.Sll (rd, rt, sh) | "srl" -> A.Srl (rd, rt, sh) | _ -> A.Sra (rd, rt, sh)) ]
  | ("sll" | "srl" | "sra"), _ -> nops 3
  | ("sllv" | "srlv" | "srav"), [ a; b; c ] ->
    let rd = reg a and rt = reg b and rs = reg c in
    [ (match mn with "sllv" -> A.Sllv (rd, rt, rs) | "srlv" -> A.Srlv (rd, rt, rs) | _ -> A.Srav (rd, rt, rs)) ]
  | ("sllv" | "srlv" | "srav"), _ -> nops 3
  | "jr", [ a ] -> [ A.Jr (reg a) ]
  | "jr", _ -> nops 1
  | "jalr", [ a ] -> [ A.Jalr (A.ra, reg a) ]
  | "jalr", [ a; b ] -> [ A.Jalr (reg a, reg b) ]
  | "jalr", _ -> nops 2
  | "mfhi", [ a ] -> [ A.Mfhi (reg a) ]
  | "mflo", [ a ] -> [ A.Mflo (reg a) ]
  | ("mfhi" | "mflo"), _ -> nops 1
  | ("mult" | "multu" | "div" | "divu"), [ a; b ] ->
    let rs = reg a and rt = reg b in
    [
      (match mn with
      | "mult" -> A.Mult (rs, rt)
      | "multu" -> A.Multu (rs, rt)
      | "div" -> A.Div (rs, rt)
      | _ -> A.Divu (rs, rt));
    ]
  | ("mult" | "multu" | "div" | "divu"), _ -> nops 2
  | ("addu" | "subu" | "and" | "or" | "xor" | "nor" | "slt" | "sltu"), [ a; b; c ] ->
    let rd = reg a and rs = reg b and rt = reg c in
    [
      (match mn with
      | "addu" -> A.Addu (rd, rs, rt)
      | "subu" -> A.Subu (rd, rs, rt)
      | "and" -> A.And (rd, rs, rt)
      | "or" -> A.Or (rd, rs, rt)
      | "xor" -> A.Xor (rd, rs, rt)
      | "nor" -> A.Nor (rd, rs, rt)
      | "slt" -> A.Slt (rd, rs, rt)
      | _ -> A.Sltu (rd, rs, rt));
    ]
  | ("addu" | "subu" | "and" | "or" | "xor" | "nor" | "slt" | "sltu"), _ -> nops 3
  | ("addiu" | "slti" | "sltiu"), [ a; b; c ] ->
    let rt = reg a and rs = reg b and i = simm16 c in
    [
      (match mn with
      | "addiu" -> A.Addiu (rt, rs, i)
      | "slti" -> A.Slti (rt, rs, i)
      | _ -> A.Sltiu (rt, rs, i));
    ]
  | ("addiu" | "slti" | "sltiu"), _ -> nops 3
  | ("andi" | "ori" | "xori"), [ a; b; c ] ->
    let rt = reg a and rs = reg b and i = zimm16 c in
    [
      (match mn with
      | "andi" -> A.Andi (rt, rs, i)
      | "ori" -> A.Ori (rt, rs, i)
      | _ -> A.Xori (rt, rs, i));
    ]
  | ("andi" | "ori" | "xori"), _ -> nops 3
  | "lui", [ a; b ] -> [ A.Lui (reg a, zimm16 b) ]
  | "lui", _ -> nops 2
  | "j", [ t ] -> [ A.J (jtarget ~pc t) ]
  | "jal", [ t ] -> [ A.Jal (jtarget ~pc t) ]
  | ("j" | "jal"), _ -> nops 1
  | ("beq" | "bne"), [ a; b; t ] ->
    let rs = reg a and rt = reg b in
    let off = btarget ~pc t in
    [ (if mn = "beq" then A.Beq (rs, rt, off) else A.Bne (rs, rt, off)) ]
  | ("beq" | "bne"), _ -> nops 3
  | ("blez" | "bgtz" | "bltz" | "bgez"), [ a; t ] ->
    let rs = reg a in
    let off = btarget ~pc t in
    [
      (match mn with
      | "blez" -> A.Blez (rs, off)
      | "bgtz" -> A.Bgtz (rs, off)
      | "bltz" -> A.Bltz (rs, off)
      | _ -> A.Bgez (rs, off));
    ]
  | ("blez" | "bgtz" | "bltz" | "bgez"), _ -> nops 2
  | ("lb" | "lbu" | "lh" | "lhu" | "lw" | "sb" | "sh" | "sw"), [ a; m ] ->
    let rt = reg a in
    let b, off = mem m in
    [
      (match mn with
      | "lb" -> A.Lb (rt, b, off)
      | "lbu" -> A.Lbu (rt, b, off)
      | "lh" -> A.Lh (rt, b, off)
      | "lhu" -> A.Lhu (rt, b, off)
      | "lw" -> A.Lw (rt, b, off)
      | "sb" -> A.Sb (rt, b, off)
      | "sh" -> A.Sh (rt, b, off)
      | _ -> A.Sw (rt, b, off));
    ]
  | ("lb" | "lbu" | "lh" | "lhu" | "lw" | "sb" | "sh" | "sw"), _ -> nops 2
  | ("lwc1" | "swc1" | "ldc1" | "sdc1"), [ a; m ] ->
    let ft = freg a in
    let b, off = mem m in
    [
      (match mn with
      | "lwc1" -> A.Lwc1 (ft, b, off)
      | "swc1" -> A.Swc1 (ft, b, off)
      | "ldc1" -> A.Ldc1 (ft, b, off)
      | _ -> A.Sdc1 (ft, b, off));
    ]
  | ("lwc1" | "swc1" | "ldc1" | "sdc1"), _ -> nops 2
  | "mtc1", [ a; b ] -> [ A.Mtc1 (reg a, freg b) ]
  | "mfc1", [ a; b ] -> [ A.Mfc1 (reg a, freg b) ]
  | ("mtc1" | "mfc1"), _ -> nops 2
  | "bc1t", [ t ] -> [ A.Bc1t (btarget ~pc t) ]
  | "bc1f", [ t ] -> [ A.Bc1f (btarget ~pc t) ]
  | ("bc1t" | "bc1f"), _ -> nops 1
  | "break", [ c ] ->
    let n = value c in
    if n < 0 || n > 0xFFFFF then err c.ocol "break code %d out of range (0..1048575)" n;
    [ A.Break n ]
  | "break", _ -> nops 1
  (* --- pseudo-instructions --- *)
  | "li", [ a; i ] -> (
    let rt = reg a in
    let n = value i in
    if n < -0x80000000 || n > 0xFFFFFFFF then
      err i.ocol "immediate %d does not fit in 32 bits" n;
    match n with
    | n when n >= -32768 && n <= 32767 -> [ A.Addiu (rt, A.zero, n) ]
    | n when n >= 0 && n <= 0xFFFF -> [ A.Ori (rt, A.zero, n) ]
    | n ->
      let u = n land 0xFFFFFFFF in
      [ A.Lui (rt, u lsr 16); A.Ori (rt, rt, u land 0xFFFF) ])
  | "li", _ -> nops 2
  | "la", [ a; t ] ->
    let rt = reg a in
    let u = value t land 0xFFFFFFFF in
    [ A.Lui (rt, u lsr 16); A.Ori (rt, rt, u land 0xFFFF) ]
  | "la", _ -> nops 2
  | "move", [ a; b ] -> [ A.Addu (reg a, reg b, A.zero) ]
  | "move", _ -> nops 2
  | "not", [ a; b ] -> [ A.Nor (reg a, reg b, A.zero) ]
  | "not", _ -> nops 2
  | "neg", [ a; b ] -> [ A.Subu (reg a, A.zero, reg b) ]
  | "neg", _ -> nops 2
  | "b", [ t ] -> [ A.Beq (A.zero, A.zero, btarget ~pc t) ]
  | "b", _ -> nops 1
  | "beqz", [ a; t ] -> [ A.Beq (reg a, A.zero, btarget ~pc t) ]
  | "bnez", [ a; t ] -> [ A.Bne (reg a, A.zero, btarget ~pc t) ]
  | ("beqz" | "bnez"), _ -> nops 2
  | ("blt" | "bge" | "bgt" | "ble"), [ a; b; t ] ->
    (* two words: slt into $at, then branch from pc + 4 *)
    let rs = reg a and rt = reg b in
    let off = btarget ~pc:(pc + 4) t in
    [
      (match mn with
      | "blt" -> A.Slt (A.at, rs, rt)
      | "bge" -> A.Slt (A.at, rs, rt)
      | "bgt" -> A.Slt (A.at, rt, rs)
      | _ -> A.Slt (A.at, rt, rs));
      (match mn with
      | "blt" | "bgt" -> A.Bne (A.at, A.zero, off)
      | _ -> A.Beq (A.at, A.zero, off));
    ]
  | ("blt" | "bge" | "bgt" | "ble"), _ -> nops 3
  (* --- float arithmetic (dotted mnemonics) --- *)
  | _, _ when String.contains mn '.' -> (
    let fmt = fmt_of_name ~line ~col:mcol in
    match (String.split_on_char '.' mn, ops) with
    | [ ("add" | "sub" | "mul" | "div") as op; f ], [ a; b; c ] ->
      let m = fmt f and fd = freg a and fs = freg b and ft = freg c in
      [
        (match op with
        | "add" -> A.Fadd (m, fd, fs, ft)
        | "sub" -> A.Fsub (m, fd, fs, ft)
        | "mul" -> A.Fmul (m, fd, fs, ft)
        | _ -> A.Fdiv (m, fd, fs, ft));
      ]
    | [ ("mov" | "neg" | "abs" | "sqrt") as op; f ], [ a; b ] ->
      let m = fmt f and fd = freg a and fs = freg b in
      [
        (match op with
        | "mov" -> A.Fmov (m, fd, fs)
        | "neg" -> A.Fneg (m, fd, fs)
        | "abs" -> A.Fabs (m, fd, fs)
        | _ -> A.Fsqrt (m, fd, fs));
      ]
    | [ "trunc"; "w"; f ], [ a; b ] -> [ A.Truncw (fmt f, freg a, freg b) ]
    | [ "cvt"; to_; from ], [ a; b ] -> [ A.Cvt (fmt to_, fmt from, freg a, freg b) ]
    | [ "c"; cmp; f ], [ a; b ] ->
      let c =
        match cmp with
        | "eq" -> A.CEq
        | "lt" -> A.CLt
        | "le" -> A.CLe
        | _ -> err mcol "unknown float compare c.%s (eq|lt|le)" cmp
      in
      [ A.Fcmp (c, fmt f, freg a, freg b) ]
    | [ ("add" | "sub" | "mul" | "div" | "mov" | "neg" | "abs" | "sqrt"); _ ], _ ->
      err mcol "wrong operand count for %s" mn
    | ([ "trunc"; "w"; _ ] | [ "cvt"; _; _ ] | [ "c"; _; _ ]), _ ->
      err mcol "wrong operand count for %s" mn
    | _ -> err mcol "unknown mnemonic %S" mn)
  | _ -> err mcol "unknown mnemonic %S" mn

(* mnemonic existence check for pass 1: run the expander with dummy
   operands suppressed — cheapest is to keep an explicit list of the
   undotted mnemonics and validate dotted ones structurally *)
let known_mnemonic mn =
  let undotted =
    [
      "nop"; "sll"; "srl"; "sra"; "sllv"; "srlv"; "srav"; "jr"; "jalr"; "mfhi"; "mflo";
      "mult"; "multu"; "div"; "divu"; "addu"; "subu"; "and"; "or"; "xor"; "nor"; "slt";
      "sltu"; "addiu"; "slti"; "sltiu"; "andi"; "ori"; "xori"; "lui"; "j"; "jal"; "beq";
      "bne"; "blez"; "bgtz"; "bltz"; "bgez"; "lb"; "lbu"; "lh"; "lhu"; "lw"; "sb"; "sh";
      "sw"; "lwc1"; "swc1"; "ldc1"; "sdc1"; "mtc1"; "mfc1"; "bc1t"; "bc1f"; "break";
    ]
  in
  List.mem mn undotted || List.mem mn known_pseudos
  ||
  match String.split_on_char '.' mn with
  | [ ("add" | "sub" | "mul" | "div" | "mov" | "neg" | "abs" | "sqrt"); ("s" | "d" | "w") ]
  | [ "trunc"; "w"; ("s" | "d" | "w") ]
  | [ "cvt"; ("s" | "d" | "w"); ("s" | "d" | "w") ]
  | [ "c"; ("eq" | "lt" | "le"); ("s" | "d" | "w") ] ->
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)

let assemble_exn ?(base = 0x10000) src =
  if base land 3 <> 0 then error ~line:0 ~col:0 "base address 0x%x is not word-aligned" base;
  let symbols : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let sym_order = ref [] in
  let stmts = ref [] in
  let loc = ref base in
  let limit = ref base in
  let bump n =
    loc := !loc + n;
    if !loc > !limit then limit := !loc
  in
  (* ---- pass 1: lex, parse, size, collect labels ---- *)
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun idx text ->
      let line = idx + 1 in
      let err col fmt = error ~line ~col fmt in
      let toks = lex_line ~line text in
      (* leading labels *)
      let rec strip_labels = function
        | (Tid name, c) :: (Tcolon, _) :: rest ->
          if name.[0] = '.' then err c "label %S may not begin with '.'" name;
          if Hashtbl.mem symbols name then err c "duplicate label %S" name;
          Hashtbl.replace symbols name !loc;
          sym_order := (name, !loc) :: !sym_order;
          strip_labels rest
        | toks -> toks
      in
      let toks = strip_labels toks in
      match toks with
      | [] -> ()
      | (Tid mn, mcol) :: rest when mn.[0] = '.' -> (
        (* directive *)
        let str, rest =
          match rest with (Tstr s, c) :: rest' -> (Some (s, c), rest') | _ -> (None, rest)
        in
        let ops = parse_operands ~line rest in
        let nints () =
          List.map
            (fun o ->
              match o.v with
              | Oimm n -> n
              | _ -> err o.ocol "%s takes numeric operands" mn)
            ops
        in
        let record () = stmts := Dir { d = mn; ops; str; line; loc = !loc } :: !stmts in
        match mn with
        | ".org" -> (
          match nints () with
          | [ n ] ->
            if n land 3 <> 0 then err mcol ".org address 0x%x is not word-aligned" n;
            if n < !loc then err mcol ".org 0x%x moves the location counter backward (at 0x%x)" n !loc;
            loc := n;
            if n > !limit then limit := n
          | _ -> err mcol ".org expects one address")
        | ".align" -> (
          match nints () with
          | [ k ] when k >= 0 && k <= 12 ->
            let a = 1 lsl k in
            let n = (!loc + a - 1) land lnot (a - 1) in
            bump (n - !loc)
          | _ -> err mcol ".align expects a power-of-two exponent (0..12)")
        | ".space" -> (
          match nints () with
          | [ n ] when n >= 0 -> bump n
          | _ -> err mcol ".space expects a non-negative byte count")
        | ".word" ->
          if ops = [] then err mcol ".word expects at least one value";
          if !loc land 3 <> 0 then err mcol ".word at unaligned address 0x%x (use .align 2)" !loc;
          record ();
          bump (4 * List.length ops)
        | ".half" ->
          if ops = [] then err mcol ".half expects at least one value";
          if !loc land 1 <> 0 then err mcol ".half at unaligned address 0x%x (use .align 1)" !loc;
          record ();
          bump (2 * List.length ops)
        | ".byte" ->
          if ops = [] then err mcol ".byte expects at least one value";
          record ();
          bump (List.length ops)
        | ".asciiz" -> (
          match (str, ops) with
          | Some (s, _), [] ->
            record ();
            bump (String.length s + 1)
          | _ -> err mcol ".asciiz expects one string literal")
        | _ -> err mcol "unknown directive %s" mn)
      | (Tid mn, mcol) :: rest ->
        if not (known_mnemonic mn) then err mcol "unknown mnemonic %S" mn;
        if !loc land 3 <> 0 then
          err mcol "instruction at unaligned address 0x%x (use .align 2)" !loc;
        let ops = parse_operands ~line rest in
        let words = insn_words ~line ~mcol mn ops in
        stmts := Insn { mn; mcol; ops; line; loc = !loc } :: !stmts;
        bump (4 * words)
      | (_, c) :: _ -> err c "expected label, mnemonic or directive")
    lines;
  let stmts = List.rev !stmts in
  (* ---- pass 2: resolve, range-check, encode ---- *)
  let nwords = (!limit - base + 3) / 4 in
  let words = Array.make nwords 0 in
  let put8 addr v =
    let off = addr - base in
    let i = off lsr 2 and sh = 8 * (off land 3) in
    words.(i) <- words.(i) land lnot (0xFF lsl sh) lor ((v land 0xFF) lsl sh)
  in
  let put16 addr v =
    put8 addr v;
    put8 (addr + 1) (v lsr 8)
  in
  let put32 addr v =
    put16 addr v;
    put16 (addr + 2) (v lsr 16)
  in
  (* [delay]: mnemonic of a branch/jump whose delay slot the next
     instruction occupies; directives clear it (data after a branch is
     the author's business, a *control transfer* in a delay slot never
     is) *)
  let delay = ref None in
  List.iter
    (fun stmt ->
      match stmt with
      | Insn { mn; mcol; ops; line; loc } ->
        let resolve s col =
          match Hashtbl.find_opt symbols s with
          | Some v -> v
          | None -> error ~line ~col "undefined label %S" s
        in
        let insns = expand ~line ~mcol ~resolve ~pc:loc mn ops in
        (match !delay with
        | Some b when ctl_transfer (List.hd insns) ->
          error ~line ~col:mcol "control transfer %s in the delay slot of %s" mn b
        | Some b when List.length insns > 1 ->
          error ~line ~col:mcol
            "multi-word pseudo-instruction %s in the delay slot of %s (its second word would \
             not execute)"
            mn b
        | _ -> ());
        delay := (if ctl_transfer (List.nth insns (List.length insns - 1)) then Some mn else None);
        List.iteri (fun i insn -> put32 (loc + (4 * i)) (A.encode insn)) insns
      | Dir { d; ops; str; line; loc; _ } ->
        delay := None;
        let resolve s col =
          match Hashtbl.find_opt symbols s with
          | Some v -> v
          | None -> error ~line ~col "undefined label %S" s
        in
        let item ~lo ~hi o =
          let n =
            match o.v with
            | Oimm n -> n
            | Osym s -> resolve s o.ocol
            | _ -> error ~line ~col:o.ocol "%s takes numeric or label values" d
          in
          if n < lo || n > hi then
            error ~line ~col:o.ocol "value %d out of range for %s" n d;
          n
        in
        (match d with
        | ".word" ->
          List.iteri
            (fun i o -> put32 (loc + (4 * i)) (item ~lo:(-0x80000000) ~hi:0xFFFFFFFF o))
            ops
        | ".half" ->
          List.iteri (fun i o -> put16 (loc + (2 * i)) (item ~lo:(-32768) ~hi:0xFFFF o)) ops
        | ".byte" -> List.iteri (fun i o -> put8 (loc + i) (item ~lo:(-128) ~hi:0xFF o)) ops
        | ".asciiz" -> (
          match str with
          | Some (s, _) ->
            String.iteri (fun i c -> put8 (loc + i) (Char.code c)) s;
            put8 (loc + String.length s) 0
          | None -> assert false)
        | _ -> ()))
    stmts;
  let entry = match Hashtbl.find_opt symbols "main" with Some a -> a | None -> base in
  { base; words; entry; symbols = List.rev !sym_order }

let assemble ?base src = try Ok (assemble_exn ?base src) with Error d -> Error d

let assemble_file ?base path =
  let read () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match read () with
  | src -> assemble ?base src
  | exception Sys_error m -> Result.Error { line = 0; col = 0; msg = m }
