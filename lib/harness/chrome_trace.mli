(** Shared Chrome trace_event "JSON object format" writer (Perfetto /
    chrome://tracing loadable): vtrace's retired-instruction export
    and vstat's gauge-timeline export emit through this one code path.

    The low-level surface ({!start} .. {!finish}) appends a top-level
    object with schema/tool/metadata keys and a [traceEvents] array;
    the event emitters append "X" (complete), "i" (instant) and "C"
    (counter) events — each counter name becomes its own Perfetto
    track plotting [args.value] over [ts]. *)

type w

(** open the export: ["schema"], ["tool"], then [meta] string pairs
    and [meta_ints] int pairs in caller order, then the open
    [traceEvents] array *)
val start :
  Buffer.t ->
  tool:string ->
  schema:int ->
  meta:(string * string) list ->
  meta_ints:(string * int) list ->
  w

(** [args] is pre-rendered JSON (an object such as [{"value": 3}]) *)
val complete : w -> name:string -> ts:int -> ?dur:int -> tid:int -> args:string -> unit -> unit

val instant : w -> name:string -> ts:int -> tid:int -> args:string -> unit
val counter : w -> name:string -> ts:int -> value:int -> unit

(** close the [traceEvents] array and the top-level object *)
val finish : w -> unit

(** append the vtrace export of a {!Vmachine.Trace} ring (schema
    {!Vmachine.Trace.json_schema_version}): retired instructions as
    duration-1 "X" events on tid 1 (one [ts] tick per record ordinal),
    block dispatches on tid 2, faults/aborts/invalidations as
    instants.  [symbol] maps a simulated address to an emit-site name;
    addresses it declines render as hex. *)
val write_trace :
  Buffer.t ->
  ?symbol:(int -> string option) ->
  port:string ->
  mode:string ->
  workload:string ->
  Vmachine.Trace.t ->
  unit

(** schema version stamped into {!write_timeline} exports *)
val timeline_schema_version : int

(** append the merged timeline export: every retained
    {!Vmachine.Timeline} row becomes one "C" event per gauge at
    [ts =] the row's tick ordinal (counter tracks plotted against
    units of work — packets, runs), and the {!Vmachine.Telemetry}
    event ring becomes "i" events at [ts =] each event's global
    ordinal, so ring events land amid the counter samples they
    perturbed.  [tool] defaults to ["vstat"]. *)
val write_timeline :
  Buffer.t ->
  ?tool:string ->
  port:string ->
  mode:string ->
  workload:string ->
  Vmachine.Timeline.t ->
  Vmachine.Telemetry.t ->
  unit
