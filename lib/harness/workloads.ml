(* The shared port/workload/mode harness behind bin/vprof.exe,
   bin/vtrace.exe and bench/main.exe.

   Each tool used to carry its own copy of the same glue: four
   per-port adapter structs (create-with-config, install code, call,
   read counters) and the name tables mapping "mips"/"blocks"/
   "dpf-classify" strings to implementations.  This module is the one
   copy.  A port is a first-class module of type {!PORT}; the three
   evaluation workloads (the Table 3 DPF classifier, the Table 4 ASH
   pipeline, and the mixed-ALU loop the throughput benchmarks time)
   are set up by {!PORT.prepare}, which installs the generated code
   and returns a re-runnable closure plus the code regions for
   emit-site symbolization (see {!symbol_of}). *)

open Vcodebase
module Tel = Vmachine.Telemetry
module Trace = Vmachine.Trace
module Timeline = Vmachine.Timeline

let pkt_addr = 0x80000
let src_addr = 0x300000
let dst_addr = 0x312000

(* one generated-code span: [base, limit) bytes of simulated memory,
   plus the generator that emitted it (for {!Gen.prov_symbol}) *)
type code_region = {
  r_name : string;
  r_base : int;
  r_limit : int;
  r_gen : Gen.t;
}

type prepared = {
  run : unit -> unit; (* one full workload pass; re-runnable *)
  regions : code_region list;
}

(* The synthetic router: a {!Vserver.Server} registry of compiled DPF
   filters driven under churn.  Closures rather than a functor result
   so the CLI tools can hold one regardless of port. *)
type router = {
  rt_install : n:int -> batched:bool -> unit;
      (* install the next [n] keys; [batched] uses the scratch-buffer
         compile queue, otherwise one fresh buffer per filter *)
  rt_packets : n:int -> churn_every:int -> unit;
      (* demultiplex [n] packets against live filters (hot-skewed key
         choice, each classification checked against the installed
         fid); every [churn_every] packets the oldest filter is
         evicted and a fresh one installed in its place *)
  rt_live : unit -> int;
  rt_installs : unit -> int; (* filters ever installed *)
  rt_drops : unit -> int; (* lookups that missed (evicted keys) *)
  rt_sync : unit -> unit; (* push registry gauges into telemetry *)
  rt_top : k:int -> (int * int * int * int) list;
      (* hottest tenants by total classification time, descending:
         (key, packets, total_ns, max_ns).  Empty unless the router's
         sink is enabled. *)
}

(* ---- the external .asm corpus (workloads/*.asm, assembled by Vasm) ---- *)

let corpus_dirname = "workloads"

(* Search upward from the cwd: finds the repo-root [workloads/] when a
   tool runs via `dune exec`, and the copy the test stanza's glob deps
   materialize at _build/default/workloads when running under the
   runtest sandbox (cwd _build/default/test). *)
let corpus_dir () =
  let rec up dir n =
    let cand = Filename.concat dir corpus_dirname in
    if Sys.file_exists cand && Sys.is_directory cand then Some cand
    else
      let parent = Filename.dirname dir in
      if n > 8 || parent = dir then None else up parent (n + 1)
  in
  up (Sys.getcwd ()) 0

(* [(name, path)] for every corpus program, sorted by name *)
let corpus_programs () =
  match corpus_dir () with
  | None -> []
  | Some dir ->
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".asm")
    |> List.sort compare
    |> List.map (fun f -> (Filename.chop_suffix f ".asm", Filename.concat dir f))

(* a corpus program by name, or a direct path to a .asm file *)
let corpus_path name =
  if Filename.check_suffix name ".asm" && Sys.file_exists name then Some name
  else List.assoc_opt name (corpus_programs ())

let is_asm_workload name = String.length name > 4 && String.sub name 0 4 = "asm:"

let load_asm_image mem (img : Vasm.image) =
  Array.iteri (fun i w -> Vmachine.Mem.write_u32 mem (img.Vasm.base + (4 * i)) w) img.Vasm.words

let region name (c : Vcode.code) =
  { r_name = name; r_base = c.Vcode.base; r_limit = c.Vcode.base + c.Vcode.code_bytes;
    r_gen = c.Vcode.gen }

(* emit-site symbol for simulated address [pc]: find the covering
   generated region and ask its provenance table.  [None] when no
   region covers [pc] or its generator ran without provenance. *)
let symbol_of regions pc =
  let rec go = function
    | [] -> None
    | r :: rest ->
      if pc >= r.r_base && pc < r.r_limit then
        match Gen.prov_symbol r.r_gen ((pc - r.r_base) / 4) with
        | Some s -> Some (r.r_name ^ ":" ^ s)
        | None -> None
      else go rest
  in
  go regions

module type PORT = sig
  type m

  val name : string

  val create :
    ?cfg:Vmachine.Mconfig.t ->
    ?telemetry:Tel.t ->
    ?trace:Trace.t ->
    predecode:bool ->
    blocks:bool ->
    regions:bool ->
    unit ->
    m

  val mem : m -> Vmachine.Mem.t
  val insns : m -> int
  val cycles : m -> int
  val reset_stats : m -> unit
  val hot_blocks : limit:int -> m -> (int * int) list
  val disasm : word:int -> addr:int -> string
  val call_ints : ?fuel:int -> m -> entry:int -> int list -> int

  (** stale-translation injection (see {!Vmachine.Block_cache.alias}) *)
  val alias_block : m -> at:int -> from:int -> bool

  (** resident translations per tier: [(blocks, regions)] — cheap
      reads, safe as {!Timeline} gauges *)
  val resident : m -> int * int

  (** a fresh router over [m]'s memory; [max_live] caps resident
      filters (capacity evictions past it); [arena_slabs] sizes the
      code window to that many 128-word slabs (the single-filter slab
      class), the lever for driving the registry at capacity.
      [timeline] receives the registry/arena/engine gauges and one
      tick per packet; [tel] additionally gets the per-packet
      [router.classify_ns] distribution and the per-tenant table
      behind [rt_top]. *)
  val router :
    ?tel:Tel.t ->
    ?timeline:Timeline.t ->
    ?fuel:int ->
    ?max_live:int ->
    ?arena_slabs:int ->
    m ->
    router

  (** generate + install the named workload's code into [m]; [iters]
      is baked into the returned closure.  [tel] receives the
      generation-cost note ({!Tel.note_gen}); [provenance] runs the
      generators with emit-site provenance tables on. *)
  val prepare :
    ?tel:Tel.t -> ?provenance:bool -> ?fuel:int -> m -> workload:string -> iters:int -> prepared
end

(* the per-simulator surface [Make_port] needs; four tiny instances below *)
module type SIM = sig
  type t

  val create :
    ?cfg:Vmachine.Mconfig.t -> ?telemetry:Tel.t -> ?trace:Trace.t ->
    predecode:bool -> blocks:bool -> regions:bool -> unit -> t

  val mem : t -> Vmachine.Mem.t
  val insns : t -> int
  val cycles : t -> int
  val reset_stats : t -> unit
  val hot_blocks : limit:int -> t -> (int * int) list
  val alias_block : t -> at:int -> from:int -> bool
  val resident : t -> int * int
  val call_ints : ?fuel:int -> t -> entry:int -> int list -> int
end

module Make_port (T : Target.S) (S : SIM) : PORT = struct
  module V = Vcode.Make (T)
  module DP = Dpf.Make (T)
  module ASH = Ash.Make (T)
  module SV = Vserver.Server.Make (T)

  type m = S.t

  let name = T.desc.Machdesc.name
  let create = S.create
  let mem = S.mem
  let insns = S.insns
  let cycles = S.cycles
  let reset_stats = S.reset_stats
  let hot_blocks = S.hot_blocks
  let disasm = T.disasm
  let call_ints = S.call_ints
  let alias_block = S.alias_block
  let resident = S.resident

  (* the mixed-ALU loop the throughput benchmarks time *)
  let gen_loop () =
    let g, args = V.lambda ~base:0x10000 ~leaf:true "%i" in
    let open V.Names in
    let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
    let i = V.getreg_exn g ~cls:`Temp Vtype.I in
    seti g acc 0;
    seti g i 0;
    let top = V.genlabel g and out = V.genlabel g in
    V.label g top;
    bgei g i args.(0) out;
    addi g acc acc i;
    orii g acc acc 3;
    addii g i i 1;
    jv g top;
    V.label g out;
    reti g acc;
    V.end_gen g

  (* The region-friendly nested loop: the 64-iteration inner loop's
     body is a chain of one-operation stages linked by direct jumps —
     the dispatch-dominated shape tier 3 targets, since in tier 2
     every jump edge costs a full block dispatch while a region fuses
     the chain and (the jumps' targets being static) crosses each edge
     for free — plus one biased conditional stage whose rare arm,
     taken once per inner loop (j = 43), exercises branch-direction
     specialization and side exits; [args.(0)] is the outer count. *)
  let gen_region_loop () =
    let g, args = V.lambda ~base:0x10000 ~leaf:true "%i" in
    let open V.Names in
    let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
    let i = V.getreg_exn g ~cls:`Temp Vtype.I in
    let j = V.getreg_exn g ~cls:`Temp Vtype.I in
    let t = V.getreg_exn g ~cls:`Temp Vtype.I in
    seti g acc 0;
    seti g i 0;
    let outer = V.genlabel g and inner = V.genlabel g and out = V.genlabel g in
    V.label g outer;
    bgei g i args.(0) out;
    seti g j 0;
    V.label g inner;
    let stage op =
      let next = V.genlabel g in
      op ();
      jv g next;
      V.label g next
    in
    stage (fun () -> addi g acc acc j);
    stage (fun () -> xorii g acc acc 33);
    stage (fun () -> addii g acc acc 7);
    (* biased conditional: (j + 21) land 63 = 0 only at j = 43 *)
    let skip = V.genlabel g in
    addii g t j 21;
    andii g t t 63;
    bneii g t 0 skip;
    addii g acc acc 77;
    V.label g skip;
    stage (fun () -> orii g acc acc 9);
    stage (fun () -> xorii g acc acc 57);
    addii g j j 1;
    bltii g j 64 inner;
    addii g i i 1;
    jv g outer;
    V.label g out;
    reti g acc;
    V.end_gen g

  let install m (c : Vcode.code) =
    Vmachine.Mem.install_code (S.mem m) ~addr:c.Vcode.base c.Vcode.gen.Gen.buf

  (* The router workload.  Keys are monotonic endpoint ids; the live
     set is the sliding window [oldest, next_key).  Each packet picks a
     key (skewed 3:1 toward the newest quarter — new connections are
     hot), pokes that key's destination port into the resident packet
     header, looks the filter up and runs it; the classification must
     return the installed fid, which is what makes every packet an
     oracle against stale translations at reused slab addresses. *)
  let router ?(tel = Tel.disabled) ?(timeline = Timeline.disabled) ?fuel ?max_live
      ?arena_slabs m =
    let mem = S.mem m in
    let arena_base = 0x100000 in
    let arena_limit =
      Option.map (fun n -> arena_base + (4 * 128 * n)) arena_slabs
    in
    let sv = SV.create ~tel ?max_live ~arena_base ?arena_limit mem in
    (* timeline gauges: registry occupancy + arena free lists from the
       server, per-tier resident translations and the event-ring total
       from the engine.  One tick per packet (below), so counter
       tracks plot against the packet ordinal. *)
    if Timeline.is_enabled timeline then begin
      List.iter (fun (n, f) -> Timeline.gauge timeline n f) (SV.gauge_sources sv);
      Timeline.gauge timeline "engine.blocks.resident" (fun () -> fst (S.resident m));
      Timeline.gauge timeline "engine.regions.resident" (fun () -> snd (S.resident m));
      Timeline.gauge timeline "tel.events_seen" (fun () -> Tel.events_seen tel)
    end;
    Dpf.Packet.install mem ~addr:pkt_addr (Dpf.Packet.tcp ());
    let next_key = ref 0 and oldest = ref 0 and drops = ref 0 in
    let tel_on = Tel.is_enabled tel in
    let d_classify = Tel.dist tel "router.classify_ns" in
    (* per-tenant attribution: key -> [| packets; total_ns; max_ns |].
       Only maintained when the sink is enabled, so the disabled
       packet loop stays allocation-free. *)
    let tstats : (int, int array) Hashtbl.t = Hashtbl.create (if tel_on then 256 else 1) in
    let note_tenant k dt =
      match Hashtbl.find_opt tstats k with
      | Some c ->
        c.(0) <- c.(0) + 1;
        c.(1) <- c.(1) + dt;
        if dt > c.(2) then c.(2) <- dt
      | None -> Hashtbl.add tstats k [| 1; dt; dt |]
    in
    (* dst_port is a 16-bit field: fold keys into [1000, 61000) *)
    let port_of_key k = 1000 + (k mod 60000) in
    let filter_of_key k =
      Dpf.Filter.tcpip_session ~fid:k ~dst_ip:0x0A000001 ~dst_port:(port_of_key k)
    in
    (* deterministic LCG so runs are reproducible across hosts *)
    let rng = ref 0x2545F491 in
    let rand bound =
      rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
      !rng mod bound
    in
    let rt_install ~n ~batched =
      let k0 = !next_key in
      next_key := k0 + n;
      if batched then begin
        (* drain the queue in bounded chunks: one monolithic 10k-pair
           list would stay live across every minor collection the
           compiles trigger, and re-scanning it costs more than the
           scratch buffer saves *)
        let chunk = 256 in
        let k = ref k0 in
        while !k < k0 + n do
          let c = min chunk (k0 + n - !k) in
          let b = !k in
          SV.install_batch sv (List.init c (fun i -> (b + i, filter_of_key (b + i))));
          k := b + c
        done
      end
      else
        for k = k0 to k0 + n - 1 do
          ignore (SV.install sv ~key:k (filter_of_key k) : int)
        done
    in
    let rt_packets ~n ~churn_every =
      for i = 1 to n do
        let span = !next_key - !oldest in
        if span <= 0 then invalid_arg "router: no filters installed";
        let k =
          if !oldest > 0 && rand 16 = 0 then rand !oldest (* an evicted endpoint *)
          else if rand 4 < 3 then !next_key - 1 - rand (max 1 (span / 4))
          else !oldest + rand span
        in
        let port = port_of_key k in
        Vmachine.Mem.write_u8 mem (pkt_addr + 22) ((port lsr 8) land 0xff);
        Vmachine.Mem.write_u8 mem (pkt_addr + 23) (port land 0xff);
        (* the classification match is duplicated rather than bound to
           a closure: a per-packet closure would allocate even with
           telemetry off *)
        (if tel_on then begin
           let t0 = Tel.now_ns () in
           (match SV.lookup sv k with
           | None -> incr drops
           | Some entry ->
             let got = S.call_ints ?fuel m ~entry [ pkt_addr; 40 ] in
             if got <> k then
               Printf.ksprintf failwith "router: packet for key %d classified as %d" k got);
           let dt = Tel.now_ns () - t0 in
           let dt = if dt < 0 then 0 else dt in
           Tel.observe tel d_classify dt;
           note_tenant k dt
         end
         else
           match SV.lookup sv k with
           | None -> incr drops
           | Some entry ->
             let got = S.call_ints ?fuel m ~entry [ pkt_addr; 40 ] in
             if got <> k then
               Printf.ksprintf failwith "router: packet for key %d classified as %d" k got);
        Timeline.tick timeline;
        if churn_every > 0 && i mod churn_every = 0 then begin
          ignore (SV.evict sv !oldest : bool);
          incr oldest;
          let k' = !next_key in
          incr next_key;
          SV.install_batch sv [ (k', filter_of_key k') ]
        end
      done
    in
    {
      rt_install;
      rt_packets;
      rt_live = (fun () -> SV.live sv);
      rt_installs = (fun () -> (SV.stats sv).SV.installs);
      rt_drops = (fun () -> !drops);
      rt_sync = (fun () -> SV.sync_gauges sv);
      rt_top =
        (fun ~k ->
          Hashtbl.fold (fun key c acc -> (key, c.(0), c.(1), c.(2)) :: acc) tstats []
          |> List.sort (fun (ka, _, ta, _) (kb, _, tb, _) ->
                 if ta <> tb then compare tb ta else compare ka kb)
          |> List.filteri (fun i _ -> i < k));
    }

  let prepare ?(tel = Tel.disabled) ?(provenance = false) ?fuel m ~workload ~iters =
    (* the generators create their own [Gen.t]s behind [lambda], so
       provenance is requested through the process-wide default; it is
       restored before any simulated code runs *)
    let generate f =
      if not provenance then f ()
      else begin
        Gen.set_provenance_default true;
        Fun.protect ~finally:(fun () -> Gen.set_provenance_default false) f
      end
    in
    match workload with
    | "dpf-classify" ->
      (* the Table 3 fixture: ten TCP/IP session filters, packets
         destined uniformly to each *)
      let c =
        generate (fun () ->
            DP.compile ~base:0x1000 ~table_base:0x200000 (Dpf.Filter.tcpip_filters 10))
      in
      Tel.note_gen tel ~prefix:"dpf" c.Dpf.code.Vcode.gen;
      install m c.Dpf.code;
      DP.install_tables (S.mem m) c;
      let run () =
        for k = 0 to iters - 1 do
          let port = 1000 + (k mod 10) in
          Dpf.Packet.install (S.mem m) ~addr:pkt_addr (Dpf.Packet.tcp ~dst_port:port ());
          if S.call_ints ?fuel m ~entry:c.Dpf.entry [ pkt_addr; 40 ] <> port - 1000 then
            failwith "dpf-classify: misclassified packet"
        done
      in
      { run; regions = [ region "dpf" c.Dpf.code ] }
    | "table4-ash" ->
      (* the Table 4 fixture: the dynamically composed copy+checksum
         pipeline over 8KB; [iters] scales the number of passes *)
      let code = generate (fun () -> ASH.gen_ash ~base:0x8000 [ Ash.Copy; Ash.Checksum ]) in
      Tel.note_gen tel ~prefix:"ash" code.Vcode.gen;
      install m code;
      let nwords = 2048 in
      let data = Bytes.init (4 * nwords) (fun i -> Char.chr ((i * 131) land 0xff)) in
      Vmachine.Mem.blit_bytes (S.mem m) ~addr:src_addr data;
      let run () =
        for _ = 1 to max 1 (iters / 250) do
          ignore (S.call_ints ?fuel m ~entry:code.Vcode.entry_addr [ dst_addr; src_addr; nwords ])
        done
      in
      { run; regions = [ region "ash" code ] }
    | "alu-loop" ->
      let code = generate gen_loop in
      Tel.note_gen tel ~prefix:"loop" code.Vcode.gen;
      install m code;
      let run () = ignore (S.call_ints ?fuel m ~entry:code.Vcode.entry_addr [ iters ]) in
      { run; regions = [ region "loop" code ] }
    | "region-loop" ->
      (* [iters] counts inner-loop iterations like alu-loop, so the
         bench's insns/sec rates are comparable across workloads *)
      let code = generate gen_region_loop in
      Tel.note_gen tel ~prefix:"rloop" code.Vcode.gen;
      install m code;
      let outer = max 1 (iters / 64) in
      let run () = ignore (S.call_ints ?fuel m ~entry:code.Vcode.entry_addr [ outer ]) in
      { run; regions = [ region "rloop" code ] }
    | "router" ->
      (* registry churn fixture: [iters] packets over a filter table
         sized to the packet count (16..4096 filters), one churn
         (evict oldest + install fresh) every 32 packets *)
      let r = router ~tel ?fuel m in
      let nf = max 16 (min 4096 (iters / 4)) in
      r.rt_install ~n:nf ~batched:true;
      let run () =
        r.rt_packets ~n:iters ~churn_every:32;
        r.rt_sync ()
      in
      { run; regions = [] }
    | w when is_asm_workload w ->
      (* an external corpus program: assemble with Vasm, load the word
         image, and call [main] with [iters] as the single argument —
         the program's own convention is to return a checksum in the
         result register (bit-identity across modes is pinned by
         test/test_corpus.ml) *)
      let prog = String.sub w 4 (String.length w - 4) in
      if name <> "mips" then
        Printf.ksprintf failwith
          "asm workload %S: corpus programs are MIPS assembly (port %s cannot run them)" prog
          name;
      let path =
        match corpus_path prog with
        | Some p -> p
        | None -> Printf.ksprintf failwith "asm workload %S: no such corpus program" prog
      in
      let img =
        match Vasm.assemble_file path with
        | Ok img -> img
        | Error d -> Printf.ksprintf failwith "%s:%s" path (Vasm.diag_to_string d)
      in
      load_asm_image (S.mem m) img;
      let run () = ignore (S.call_ints ?fuel m ~entry:img.Vasm.entry [ iters ] : int) in
      { run; regions = [] }
    | w -> Printf.ksprintf failwith "unknown workload %S" w
end

module Mips_port =
  Make_port
    (Vmips.Mips_backend)
    (struct
      module S = Vmips.Mips_sim

      type t = S.t

      let create ?(cfg = Vmachine.Mconfig.dec5000) ?telemetry ?trace ~predecode ~blocks
          ~regions () =
        S.create ?telemetry ?trace ~predecode ~blocks ~regions cfg

      let mem (m : t) = m.S.mem
      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let reset_stats = S.reset_stats
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
      let alias_block (m : t) ~at ~from = Vmachine.Block_cache.alias m.S.bc ~at ~from

      let resident (m : t) =
        (Vmachine.Block_cache.resident_count m.S.bc, Vmachine.Region_cache.resident_count m.S.rc)

      let call_ints ?fuel m ~entry vals =
        S.call ?fuel m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m
    end)

module Sparc_port =
  Make_port
    (Vsparc.Sparc_backend)
    (struct
      module S = Vsparc.Sparc_sim

      type t = S.t

      let create ?(cfg = Vmachine.Mconfig.dec5000) ?telemetry ?trace ~predecode ~blocks
          ~regions () =
        S.create ?telemetry ?trace ~predecode ~blocks ~regions cfg

      let mem (m : t) = m.S.mem
      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let reset_stats = S.reset_stats
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
      let alias_block (m : t) ~at ~from = Vmachine.Block_cache.alias m.S.bc ~at ~from

      let resident (m : t) =
        (Vmachine.Block_cache.resident_count m.S.bc, Vmachine.Region_cache.resident_count m.S.rc)

      let call_ints ?fuel m ~entry vals =
        S.call ?fuel m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m
    end)

module Alpha_port =
  Make_port
    (Valpha.Alpha_backend)
    (struct
      module S = Valpha.Alpha_sim

      type t = S.t

      let create ?(cfg = Vmachine.Mconfig.dec5000) ?telemetry ?trace ~predecode ~blocks
          ~regions () =
        S.create ?telemetry ?trace ~predecode ~blocks ~regions cfg

      let mem (m : t) = m.S.mem
      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let reset_stats = S.reset_stats
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
      let alias_block (m : t) ~at ~from = Vmachine.Block_cache.alias m.S.bc ~at ~from

      let resident (m : t) =
        (Vmachine.Block_cache.resident_count m.S.bc, Vmachine.Region_cache.resident_count m.S.rc)

      let call_ints ?fuel m ~entry vals =
        S.call ?fuel m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m
    end)

module Ppc_port =
  Make_port
    (Vppc.Ppc_backend)
    (struct
      module S = Vppc.Ppc_sim

      type t = S.t

      let create ?(cfg = Vmachine.Mconfig.dec5000) ?telemetry ?trace ~predecode ~blocks
          ~regions () =
        S.create ?telemetry ?trace ~predecode ~blocks ~regions cfg

      let mem (m : t) = m.S.mem
      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let reset_stats = S.reset_stats
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
      let alias_block (m : t) ~at ~from = Vmachine.Block_cache.alias m.S.bc ~at ~from

      let resident (m : t) =
        (Vmachine.Block_cache.resident_count m.S.bc, Vmachine.Region_cache.resident_count m.S.rc)

      let call_ints ?fuel m ~entry vals =
        S.call ?fuel m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m
    end)

(* ------------------------------------------------------------------ *)
(* Name tables — the single copy of the CLI vocabulary                 *)

let ports : (string * (module PORT)) list =
  [
    ("mips", (module Mips_port));
    ("sparc", (module Sparc_port));
    ("alpha", (module Alpha_port));
    ("ppc", (module Ppc_port));
  ]

(* mode name -> (predecode, blocks, regions): the four-tier ladder *)
let modes =
  [
    ("off", (false, false, false));
    ("predecode", (true, false, false));
    ("blocks", (true, true, false));
    ("regions", (true, true, true));
  ]

let workload_names = [ "dpf-classify"; "table4-ash"; "alu-loop"; "region-loop"; "router" ]
let port_names = List.map fst ports
let mode_names = List.map fst modes
let find_port name = List.assoc_opt name ports
let mode_flags name = List.assoc_opt name modes

(* resolve-or-die helpers for the command-line tools; [tool] prefixes
   the error message *)
let port_exn ~tool name =
  match find_port name with
  | Some p -> p
  | None ->
    Printf.eprintf "%s: unknown port %S (%s)\n" tool name (String.concat "|" port_names);
    exit 1

let mode_exn ~tool name =
  match mode_flags name with
  | Some f -> f
  | None ->
    Printf.eprintf "%s: unknown mode %S (%s)\n" tool name (String.concat "|" mode_names);
    exit 1

let workload_exn ~tool name =
  if List.mem name workload_names then name
  else if is_asm_workload name then begin
    (* validate the corpus program now for a located CLI error rather
       than a failwith out of [prepare] *)
    let prog = String.sub name 4 (String.length name - 4) in
    match corpus_path prog with
    | Some _ -> name
    | None ->
      Printf.eprintf "%s: unknown corpus program %S (available: %s)\n" tool prog
        (match corpus_programs () with
        | [] -> "none — no workloads/ directory found"
        | ps -> String.concat "|" (List.map fst ps));
      exit 1
  end
  else begin
    Printf.eprintf "%s: unknown workload %S (%s|asm:NAME)\n" tool name
      (String.concat "|" workload_names);
    exit 1
  end
