(* The shared port/workload/mode harness behind bin/vprof.exe,
   bin/vtrace.exe and bench/main.exe.

   Each tool used to carry its own copy of the same glue: four
   per-port adapter structs (create-with-config, install code, call,
   read counters) and the name tables mapping "mips"/"blocks"/
   "dpf-classify" strings to implementations.  This module is the one
   copy.  A port is a first-class module of type {!PORT}; the three
   evaluation workloads (the Table 3 DPF classifier, the Table 4 ASH
   pipeline, and the mixed-ALU loop the throughput benchmarks time)
   are set up by {!PORT.prepare}, which installs the generated code
   and returns a re-runnable closure plus the code regions for
   emit-site symbolization (see {!symbol_of}). *)

open Vcodebase
module Tel = Vmachine.Telemetry
module Trace = Vmachine.Trace

let pkt_addr = 0x80000
let src_addr = 0x300000
let dst_addr = 0x312000

(* one generated-code span: [base, limit) bytes of simulated memory,
   plus the generator that emitted it (for {!Gen.prov_symbol}) *)
type code_region = {
  r_name : string;
  r_base : int;
  r_limit : int;
  r_gen : Gen.t;
}

type prepared = {
  run : unit -> unit; (* one full workload pass; re-runnable *)
  regions : code_region list;
}

let region name (c : Vcode.code) =
  { r_name = name; r_base = c.Vcode.base; r_limit = c.Vcode.base + c.Vcode.code_bytes;
    r_gen = c.Vcode.gen }

(* emit-site symbol for simulated address [pc]: find the covering
   generated region and ask its provenance table.  [None] when no
   region covers [pc] or its generator ran without provenance. *)
let symbol_of regions pc =
  let rec go = function
    | [] -> None
    | r :: rest ->
      if pc >= r.r_base && pc < r.r_limit then
        match Gen.prov_symbol r.r_gen ((pc - r.r_base) / 4) with
        | Some s -> Some (r.r_name ^ ":" ^ s)
        | None -> None
      else go rest
  in
  go regions

module type PORT = sig
  type m

  val name : string

  val create :
    ?cfg:Vmachine.Mconfig.t ->
    ?telemetry:Tel.t ->
    ?trace:Trace.t ->
    predecode:bool ->
    blocks:bool ->
    regions:bool ->
    unit ->
    m

  val mem : m -> Vmachine.Mem.t
  val insns : m -> int
  val cycles : m -> int
  val reset_stats : m -> unit
  val hot_blocks : limit:int -> m -> (int * int) list
  val disasm : word:int -> addr:int -> string
  val call_ints : ?fuel:int -> m -> entry:int -> int list -> int

  (** stale-translation injection (see {!Vmachine.Block_cache.alias}) *)
  val alias_block : m -> at:int -> from:int -> bool

  (** generate + install the named workload's code into [m]; [iters]
      is baked into the returned closure.  [tel] receives the
      generation-cost note ({!Tel.note_gen}); [provenance] runs the
      generators with emit-site provenance tables on. *)
  val prepare :
    ?tel:Tel.t -> ?provenance:bool -> ?fuel:int -> m -> workload:string -> iters:int -> prepared
end

(* the per-simulator surface [Make_port] needs; four tiny instances below *)
module type SIM = sig
  type t

  val create :
    ?cfg:Vmachine.Mconfig.t -> ?telemetry:Tel.t -> ?trace:Trace.t ->
    predecode:bool -> blocks:bool -> regions:bool -> unit -> t

  val mem : t -> Vmachine.Mem.t
  val insns : t -> int
  val cycles : t -> int
  val reset_stats : t -> unit
  val hot_blocks : limit:int -> t -> (int * int) list
  val alias_block : t -> at:int -> from:int -> bool
  val call_ints : ?fuel:int -> t -> entry:int -> int list -> int
end

module Make_port (T : Target.S) (S : SIM) : PORT = struct
  module V = Vcode.Make (T)
  module DP = Dpf.Make (T)
  module ASH = Ash.Make (T)

  type m = S.t

  let name = T.desc.Machdesc.name
  let create = S.create
  let mem = S.mem
  let insns = S.insns
  let cycles = S.cycles
  let reset_stats = S.reset_stats
  let hot_blocks = S.hot_blocks
  let disasm = T.disasm
  let call_ints = S.call_ints
  let alias_block = S.alias_block

  (* the mixed-ALU loop the throughput benchmarks time *)
  let gen_loop () =
    let g, args = V.lambda ~base:0x10000 ~leaf:true "%i" in
    let open V.Names in
    let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
    let i = V.getreg_exn g ~cls:`Temp Vtype.I in
    seti g acc 0;
    seti g i 0;
    let top = V.genlabel g and out = V.genlabel g in
    V.label g top;
    bgei g i args.(0) out;
    addi g acc acc i;
    orii g acc acc 3;
    addii g i i 1;
    jv g top;
    V.label g out;
    reti g acc;
    V.end_gen g

  (* The region-friendly nested loop: the 64-iteration inner loop's
     body is a chain of one-operation stages linked by direct jumps —
     the dispatch-dominated shape tier 3 targets, since in tier 2
     every jump edge costs a full block dispatch while a region fuses
     the chain and (the jumps' targets being static) crosses each edge
     for free — plus one biased conditional stage whose rare arm,
     taken once per inner loop (j = 43), exercises branch-direction
     specialization and side exits; [args.(0)] is the outer count. *)
  let gen_region_loop () =
    let g, args = V.lambda ~base:0x10000 ~leaf:true "%i" in
    let open V.Names in
    let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
    let i = V.getreg_exn g ~cls:`Temp Vtype.I in
    let j = V.getreg_exn g ~cls:`Temp Vtype.I in
    let t = V.getreg_exn g ~cls:`Temp Vtype.I in
    seti g acc 0;
    seti g i 0;
    let outer = V.genlabel g and inner = V.genlabel g and out = V.genlabel g in
    V.label g outer;
    bgei g i args.(0) out;
    seti g j 0;
    V.label g inner;
    let stage op =
      let next = V.genlabel g in
      op ();
      jv g next;
      V.label g next
    in
    stage (fun () -> addi g acc acc j);
    stage (fun () -> xorii g acc acc 33);
    stage (fun () -> addii g acc acc 7);
    (* biased conditional: (j + 21) land 63 = 0 only at j = 43 *)
    let skip = V.genlabel g in
    addii g t j 21;
    andii g t t 63;
    bneii g t 0 skip;
    addii g acc acc 77;
    V.label g skip;
    stage (fun () -> orii g acc acc 9);
    stage (fun () -> xorii g acc acc 57);
    addii g j j 1;
    bltii g j 64 inner;
    addii g i i 1;
    jv g outer;
    V.label g out;
    reti g acc;
    V.end_gen g

  let install m (c : Vcode.code) =
    Vmachine.Mem.install_code (S.mem m) ~addr:c.Vcode.base c.Vcode.gen.Gen.buf

  let prepare ?(tel = Tel.disabled) ?(provenance = false) ?fuel m ~workload ~iters =
    (* the generators create their own [Gen.t]s behind [lambda], so
       provenance is requested through the process-wide default; it is
       restored before any simulated code runs *)
    let generate f =
      if not provenance then f ()
      else begin
        Gen.set_provenance_default true;
        Fun.protect ~finally:(fun () -> Gen.set_provenance_default false) f
      end
    in
    match workload with
    | "dpf-classify" ->
      (* the Table 3 fixture: ten TCP/IP session filters, packets
         destined uniformly to each *)
      let c =
        generate (fun () ->
            DP.compile ~base:0x1000 ~table_base:0x200000 (Dpf.Filter.tcpip_filters 10))
      in
      Tel.note_gen tel ~prefix:"dpf" c.Dpf.code.Vcode.gen;
      install m c.Dpf.code;
      DP.install_tables (S.mem m) c;
      let run () =
        for k = 0 to iters - 1 do
          let port = 1000 + (k mod 10) in
          Dpf.Packet.install (S.mem m) ~addr:pkt_addr (Dpf.Packet.tcp ~dst_port:port ());
          if S.call_ints ?fuel m ~entry:c.Dpf.entry [ pkt_addr; 40 ] <> port - 1000 then
            failwith "dpf-classify: misclassified packet"
        done
      in
      { run; regions = [ region "dpf" c.Dpf.code ] }
    | "table4-ash" ->
      (* the Table 4 fixture: the dynamically composed copy+checksum
         pipeline over 8KB; [iters] scales the number of passes *)
      let code = generate (fun () -> ASH.gen_ash ~base:0x8000 [ Ash.Copy; Ash.Checksum ]) in
      Tel.note_gen tel ~prefix:"ash" code.Vcode.gen;
      install m code;
      let nwords = 2048 in
      let data = Bytes.init (4 * nwords) (fun i -> Char.chr ((i * 131) land 0xff)) in
      Vmachine.Mem.blit_bytes (S.mem m) ~addr:src_addr data;
      let run () =
        for _ = 1 to max 1 (iters / 250) do
          ignore (S.call_ints ?fuel m ~entry:code.Vcode.entry_addr [ dst_addr; src_addr; nwords ])
        done
      in
      { run; regions = [ region "ash" code ] }
    | "alu-loop" ->
      let code = generate gen_loop in
      Tel.note_gen tel ~prefix:"loop" code.Vcode.gen;
      install m code;
      let run () = ignore (S.call_ints ?fuel m ~entry:code.Vcode.entry_addr [ iters ]) in
      { run; regions = [ region "loop" code ] }
    | "region-loop" ->
      (* [iters] counts inner-loop iterations like alu-loop, so the
         bench's insns/sec rates are comparable across workloads *)
      let code = generate gen_region_loop in
      Tel.note_gen tel ~prefix:"rloop" code.Vcode.gen;
      install m code;
      let outer = max 1 (iters / 64) in
      let run () = ignore (S.call_ints ?fuel m ~entry:code.Vcode.entry_addr [ outer ]) in
      { run; regions = [ region "rloop" code ] }
    | w -> Printf.ksprintf failwith "unknown workload %S" w
end

module Mips_port =
  Make_port
    (Vmips.Mips_backend)
    (struct
      module S = Vmips.Mips_sim

      type t = S.t

      let create ?(cfg = Vmachine.Mconfig.dec5000) ?telemetry ?trace ~predecode ~blocks
          ~regions () =
        S.create ?telemetry ?trace ~predecode ~blocks ~regions cfg

      let mem (m : t) = m.S.mem
      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let reset_stats = S.reset_stats
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
      let alias_block (m : t) ~at ~from = Vmachine.Block_cache.alias m.S.bc ~at ~from

      let call_ints ?fuel m ~entry vals =
        S.call ?fuel m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m
    end)

module Sparc_port =
  Make_port
    (Vsparc.Sparc_backend)
    (struct
      module S = Vsparc.Sparc_sim

      type t = S.t

      let create ?(cfg = Vmachine.Mconfig.dec5000) ?telemetry ?trace ~predecode ~blocks
          ~regions () =
        S.create ?telemetry ?trace ~predecode ~blocks ~regions cfg

      let mem (m : t) = m.S.mem
      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let reset_stats = S.reset_stats
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
      let alias_block (m : t) ~at ~from = Vmachine.Block_cache.alias m.S.bc ~at ~from

      let call_ints ?fuel m ~entry vals =
        S.call ?fuel m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m
    end)

module Alpha_port =
  Make_port
    (Valpha.Alpha_backend)
    (struct
      module S = Valpha.Alpha_sim

      type t = S.t

      let create ?(cfg = Vmachine.Mconfig.dec5000) ?telemetry ?trace ~predecode ~blocks
          ~regions () =
        S.create ?telemetry ?trace ~predecode ~blocks ~regions cfg

      let mem (m : t) = m.S.mem
      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let reset_stats = S.reset_stats
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
      let alias_block (m : t) ~at ~from = Vmachine.Block_cache.alias m.S.bc ~at ~from

      let call_ints ?fuel m ~entry vals =
        S.call ?fuel m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m
    end)

module Ppc_port =
  Make_port
    (Vppc.Ppc_backend)
    (struct
      module S = Vppc.Ppc_sim

      type t = S.t

      let create ?(cfg = Vmachine.Mconfig.dec5000) ?telemetry ?trace ~predecode ~blocks
          ~regions () =
        S.create ?telemetry ?trace ~predecode ~blocks ~regions cfg

      let mem (m : t) = m.S.mem
      let insns (m : t) = m.S.insns
      let cycles (m : t) = m.S.cycles
      let reset_stats = S.reset_stats
      let hot_blocks ~limit (m : t) = Vmachine.Block_cache.hot_blocks ~limit m.S.bc
      let alias_block (m : t) ~at ~from = Vmachine.Block_cache.alias m.S.bc ~at ~from

      let call_ints ?fuel m ~entry vals =
        S.call ?fuel m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m
    end)

(* ------------------------------------------------------------------ *)
(* Name tables — the single copy of the CLI vocabulary                 *)

let ports : (string * (module PORT)) list =
  [
    ("mips", (module Mips_port));
    ("sparc", (module Sparc_port));
    ("alpha", (module Alpha_port));
    ("ppc", (module Ppc_port));
  ]

(* mode name -> (predecode, blocks, regions): the four-tier ladder *)
let modes =
  [
    ("off", (false, false, false));
    ("predecode", (true, false, false));
    ("blocks", (true, true, false));
    ("regions", (true, true, true));
  ]

let workload_names = [ "dpf-classify"; "table4-ash"; "alu-loop"; "region-loop" ]
let port_names = List.map fst ports
let mode_names = List.map fst modes
let find_port name = List.assoc_opt name ports
let mode_flags name = List.assoc_opt name modes

(* resolve-or-die helpers for the command-line tools; [tool] prefixes
   the error message *)
let port_exn ~tool name =
  match find_port name with
  | Some p -> p
  | None ->
    Printf.eprintf "%s: unknown port %S (%s)\n" tool name (String.concat "|" port_names);
    exit 1

let mode_exn ~tool name =
  match mode_flags name with
  | Some f -> f
  | None ->
    Printf.eprintf "%s: unknown mode %S (%s)\n" tool name (String.concat "|" mode_names);
    exit 1

let workload_exn ~tool name =
  if List.mem name workload_names then name
  else begin
    Printf.eprintf "%s: unknown workload %S (%s)\n" tool name
      (String.concat "|" workload_names);
    exit 1
  end
