(* Shared Chrome trace_event "JSON object format" writer (Perfetto /
   chrome://tracing loadable), factored out of Trace so vtrace's
   retired-instruction export and vstat's timeline export emit through
   one code path.

   The format: a top-level object whose [traceEvents] array Perfetto
   renders and whose extra keys it keeps as metadata.  Three event
   shapes are used here: "X" (complete) events with a duration, "i"
   (instant) events, and "C" (counter) events — each counter name
   becomes its own track plotting args.value over ts. *)

module Tel = Vmachine.Telemetry
module Trace = Vmachine.Trace
module Timeline = Vmachine.Timeline

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

type w = { b : Buffer.t; mutable emitted : int }

(* Open the top-level object: schema and tool first, then string and
   int metadata in caller order, then the traceEvents array.  [finish]
   closes both. *)
let start b ~tool ~schema ~meta ~meta_ints =
  Buffer.add_string b "{";
  Buffer.add_string b (Printf.sprintf "\"schema\": %d, " schema);
  Buffer.add_string b "\"tool\": \"";
  json_escape b tool;
  Buffer.add_string b "\", ";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b "\"";
      json_escape b k;
      Buffer.add_string b "\": \"";
      json_escape b v;
      Buffer.add_string b "\", ")
    meta;
  List.iter
    (fun (k, v) ->
      Buffer.add_string b "\"";
      json_escape b k;
      Buffer.add_string b (Printf.sprintf "\": %d, " v))
    meta_ints;
  Buffer.add_string b "\"displayTimeUnit\": \"ns\", ";
  Buffer.add_string b "\"traceEvents\": [";
  { b; emitted = 0 }

(* [args] is pre-rendered JSON (an object, e.g. {"value": 3}): the
   writers below own their whole arg payload, and keeping it raw keeps
   the vtrace export byte-compatible with the pre-factoring format. *)
let event w ~name ~ph ~ts ~tid ~extra ~args =
  if w.emitted > 0 then Buffer.add_string w.b ",";
  w.emitted <- w.emitted + 1;
  Buffer.add_string w.b "\n  {\"name\": \"";
  json_escape w.b name;
  Buffer.add_string w.b
    (Printf.sprintf "\", \"ph\": \"%s\", \"ts\": %d, %s\"pid\": 1, \"tid\": %d, \"args\": %s}" ph
       ts extra tid args)

let complete w ~name ~ts ?(dur = 1) ~tid ~args () =
  event w ~name ~ph:"X" ~ts ~tid ~extra:(Printf.sprintf "\"dur\": %d, " dur) ~args

let instant w ~name ~ts ~tid ~args = event w ~name ~ph:"i" ~ts ~tid ~extra:"\"s\": \"t\", " ~args

let counter w ~name ~ts ~value =
  event w ~name ~ph:"C" ~ts ~tid:0 ~extra:"" ~args:(Printf.sprintf "{\"value\": %d}" value)

let finish w = Buffer.add_string w.b "\n]}\n"

(* ------------------------------------------------------------------ *)
(* vtrace: the retired-instruction stream                              *)

(* Retired instructions become "X" events of duration 1 on tid 1, one
   tick per record ordinal, so the instruction stream reads
   left-to-right on the timeline; block dispatches land on tid 2;
   faults/aborts/invalidations are instants.  [symbol] maps a
   simulated address to an emit-site name (from {!Vcodebase.Gen}
   provenance); addresses it declines render as hex.  Schema:
   {!Trace.json_schema_version}. *)
let write_trace b ?(symbol = fun _ -> None) ~port ~mode ~workload t =
  let name_of addr =
    match symbol addr with Some s -> s | None -> Printf.sprintf "0x%x" addr
  in
  let w =
    start b ~tool:"vtrace" ~schema:Trace.json_schema_version
      ~meta:[ ("port", port); ("mode", mode); ("workload", workload) ]
      ~meta_ints:[ ("seen", Trace.seen t); ("dropped", Trace.dropped t) ]
  in
  Array.iteri
    (fun ts (k, payload) ->
      let args = Printf.sprintf "{\"addr\": \"0x%x\", \"kind\": \"%s\"}" payload (Trace.kind_name k) in
      match k with
      | Trace.Retire -> complete w ~name:(name_of payload) ~ts ~tid:1 ~args ()
      | Trace.Block_enter -> complete w ~name:(name_of payload) ~ts ~tid:2 ~args ()
      | Trace.Fault | Trace.Smc_abort | Trace.Inval | Trace.Mark ->
        instant w ~name:(Trace.kind_name k) ~ts ~tid:1 ~args)
    (Trace.records t);
  finish w

(* ------------------------------------------------------------------ *)
(* vstat: the merged gauge-timeline + telemetry-event export           *)

let timeline_schema_version = 1

(* Each retained timeline row becomes one "C" event per gauge at
   ts = the row's tick ordinal (so counter tracks are plotted against
   units of work — packets, runs); the Telemetry event ring becomes
   "i" events at ts = the event's global ordinal.  The two share the
   work-ordinal axis: for the router one packet is one tick, so ring
   events land amid the counter samples they perturbed. *)
let write_timeline b ?(tool = "vstat") ~port ~mode ~workload tl tel =
  let w =
    start b ~tool ~schema:timeline_schema_version
      ~meta:[ ("port", port); ("mode", mode); ("workload", workload) ]
      ~meta_ints:
        [
          ("timeline.ticks", Timeline.ticks tl);
          ("timeline.samples", Timeline.samples_seen tl);
          ("timeline.dropped", Timeline.dropped tl);
          ("timeline.every", Timeline.every tl);
          ("events.seen", Tel.events_seen tel);
        ]
  in
  let names = Array.of_list (Timeline.gauge_names tl) in
  Timeline.iter tl (fun ~tick ~values ->
      Array.iteri (fun g v -> counter w ~name:names.(g) ~ts:tick ~value:v) values);
  let first = Tel.events_seen tel - List.length (Tel.events tel) in
  List.iteri
    (fun j (k, a, bb) ->
      instant w ~name:(Tel.kind_name k) ~ts:(first + j) ~tid:1
        ~args:(Printf.sprintf "{\"a\": \"0x%x\", \"b\": %d, \"kind\": \"%s\"}" a bb (Tel.kind_name k)))
    (Tel.events tel);
  finish w
