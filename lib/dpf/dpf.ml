(* DPF: dynamic packet filters (paper section 4.2).

   Compiles a set of filters to machine code through VCODE.  Runtime
   knowledge is exploited exactly as the paper describes:

   - filters are merged into a trie so shared prefixes are checked once;
   - every comparison constant is encoded directly in the instruction
     stream (no interpretation, no operand fetch);
   - at switch points the dispatch strategy is chosen from the *actual*
     values installed: a short linear chain of compares for few values,
     binary search over immediates for sparse sets, and — when all
     outcomes are accepting states — a hash lookup whose hash function
     is selected at code-generation time to be collision-free, which
     lets DPF omit collision chains entirely ("since DPF knows at
     code-generation time whether keys have collided, it can eliminate
     collision checks");
   - bounds checks are emitted per extent, not per load.

   The generated function has C type [int classify(uchar *pkt, int len)]
   returning the filter id or -1. *)

open Vcodebase

(* re-exports: this module is the library root *)
module Filter = Filter
module Trie = Trie
module Packet = Packet
module Mpf = Mpf
module Pathfinder = Pathfinder

(* dispatch-strategy selection: [Auto] is DPF's runtime-informed choice;
   the forced modes exist for the ablation bench *)
type dispatch = Auto | Force_linear | Force_bsearch | Force_hash

type compiled = {
  code : Vcode.code;
  tables : (int * int array) list; (* address, 32-bit words *)
  entry : int;
  max_linear : int; (* dispatch-strategy stats, for tests/benches *)
  used_hash : bool;
  used_bsearch : bool;
}

(* hash-parameter search: h = ((v * mult) >>> shift) & (size-1) must be
   collision-free over [values] *)
let find_perfect_hash (values : int list) : (int * int * int) option =
  let n = List.length values in
  let sizes = List.filter (fun s -> s >= n) [ 16; 32; 64; 128; 256 ] in
  let mults = [ 0x9E3779B1; 0x85EBCA6B; 0xC2B2AE35; 0x27220A95 ] in
  let u32 v = v land 0xFFFFFFFF in
  let try_one size mult shift =
    let seen = Hashtbl.create 32 in
    List.for_all
      (fun v ->
        let h = (u32 (u32 v * mult) lsr shift) land (size - 1) in
        if Hashtbl.mem seen h then false
        else begin
          Hashtbl.add seen h ();
          true
        end)
      values
  in
  let found = ref None in
  List.iter
    (fun size ->
      List.iter
        (fun mult ->
          for shift = 0 to 24 do
            if !found = None && try_one size mult shift then
              found := Some (size, mult, shift)
          done)
        mults)
    sizes;
  !found

let hash_slot ~size ~mult ~shift v =
  ((v land 0xFFFFFFFF) * mult land 0xFFFFFFFF) lsr shift land (size - 1)

module Make (T : Target.S) = struct
  module V = Vcode.Make (T)
  open V.Names

  let sext32 v =
    let v = v land 0xFFFFFFFF in
    if v land 0x80000000 <> 0 then v - 0x100000000 else v

  let u32 v = v land 0xFFFFFFFF

  (* [buf] recycles a slab code buffer across compiles (the server's
     batched install queue passes one scratch buffer for thousands of
     small per-filter compiles); see {!Gen.create}. *)
  let compile ?(base = 0x1000) ?(table_base = 0x200000) ?(dispatch = Auto)
      ?(merge = true) ?buf (filters : Filter.t list) : compiled =
    let big_endian = T.desc.Machdesc.big_endian in
    let native = List.map (Filter.to_native ~big_endian) filters in
    (* [merge = false] is the ablation: each filter compiled as its own
       conjunction chain, no prefix sharing *)
    let trie =
      if merge then Trie.of_filters native
      else
        List.fold_right
          (fun (f : Filter.t) acc -> Trie.Alt (Trie.of_filters [ f ], acc))
          native Trie.Fail
    in
    (* demultiplexors are small: ~100 words covers typical merged tries *)
    let g, args = V.lambda ~base ~leaf:true ~capacity:128 ?buf "%p%i" in
    let pkt = args.(0) and len = args.(1) in
    let rbase = V.getreg_exn g ~cls:`Temp Vtype.P in
    let rv = V.getreg_exn g ~cls:`Temp Vtype.U in
    let rret = V.getreg_exn g ~cls:`Temp Vtype.I in
    movp g rbase pkt;
    let ldone = V.genlabel g and lfail = V.genlabel g in
    let tables = ref [] in
    let next_table = ref table_base in
    let used_hash = ref false and used_bsearch = ref false and max_linear = ref 0 in
    (* bounds-check state: [checked] is the statically validated extent;
       after a Shift the base is dynamic and checks become dynamic *)
    let checked = ref 0 in
    let shifted = ref false in
    let check_bounds ~off ~size ~fail =
      let extent = off + size in
      if not !shifted then begin
        if extent > !checked then begin
          bltii g len extent fail;
          checked := extent
        end
      end
      else begin
        (* dynamic: (base - pkt) + extent <= len *)
        let t = V.getreg_exn g ~cls:`Temp Vtype.I in
        V.arith g Op.Sub Vtype.P t rbase pkt;
        addii g t t extent;
        bgti g t len fail;
        V.putreg g t
      end
    in
    let vt_of_size = function 1 -> Vtype.UC | 2 -> Vtype.US | _ -> Vtype.U in
    let full_mask = function 1 -> 0xFF | 2 -> 0xFFFF | _ -> 0xFFFFFFFF in
    let load_field ~off ~size ~mask ~fail =
      check_bounds ~off ~size ~fail;
      V.load_imm g (vt_of_size size) rv rbase off;
      if mask land full_mask size <> full_mask size then andui g rv rv mask
    in
    (* wire-order load of a Shift field on a little-endian host needs a
       byte swap (the field is arithmetic, not a raw comparison) *)
    let swap_for_shift ~size =
      if (not big_endian) && size = 2 then begin
        let t = V.getreg_exn g ~cls:`Temp Vtype.U in
        rshui g t rv 8;
        lshui g rv rv 8;
        andui g rv rv 0xFF00;
        oru g rv rv t;
        V.putreg g t
      end
      else if (not big_endian) && size = 4 then
        Verror.fail (Verror.Unsupported "4-byte shift fields on little-endian hosts")
    in
    let alloc_table (words : int array) : int =
      let addr = !next_table in
      tables := (addr, words) :: !tables;
      next_table := addr + (4 * Array.length words) + 8;
      addr
    in
    let is_leaf = function Trie.Leaf _ -> true | _ -> false in
    let leaf_fid = function Trie.Leaf f -> f | _ -> assert false in
    let rec emit_node (t : Trie.t) ~fail =
      match t with
      | Trie.Fail -> jv g fail
      | Trie.Leaf fid ->
        seti g rret fid;
        jv g ldone
      | Trie.Alt (l, r) ->
        let lr = V.genlabel g in
        let c0 = !checked and s0 = !shifted in
        emit_node l ~fail:lr;
        V.label g lr;
        checked := c0;
        shifted := s0;
        emit_node r ~fail
      | Trie.Seq (Filter.Cmp a, child) ->
        load_field ~off:a.offset ~size:a.size ~mask:a.mask ~fail;
        (* the runtime constant, burned into the instruction stream *)
        bneui g rv (sext32 a.value) fail;
        emit_node child ~fail
      | Trie.Seq (Filter.Shift a, child) ->
        load_field ~off:a.offset ~size:a.size ~mask:a.mask ~fail;
        swap_for_shift ~size:a.size;
        if a.shift <> 0 then lshui g rv rv a.shift;
        (* advance the header base by the (pointer-width) field value *)
        V.arith g Op.Add Vtype.P rbase rbase rv;
        shifted := true;
        emit_node child ~fail
      | Trie.Switch (f, edges) ->
        load_field ~off:f.Trie.f_offset ~size:f.Trie.f_size ~mask:f.Trie.f_mask ~fail;
        let c0 = !checked and s0 = !shifted in
        let emit_child c ~fail =
          checked := c0;
          shifted := s0;
          emit_node c ~fail
        in
        emit_dispatch edges ~emit_child ~fail
    and emit_dispatch edges ~emit_child ~fail =
      let n = List.length edges in
      let all_leaves = List.for_all (fun (_, c) -> is_leaf c) edges in
      let want_hash =
        match dispatch with
        | Auto -> all_leaves && n > 8
        | Force_hash -> all_leaves
        | Force_linear | Force_bsearch -> false
      in
      let hash = if want_hash then find_perfect_hash (List.map fst edges) else None in
      match hash with
      | Some (size, mult, shift) ->
        used_hash := true;
        (* (key, fid) table; empty slots hold fid -1 so a stray hit on
           them classifies as "no match" *)
        let words = Array.make (2 * size) 0 in
        for i = 0 to size - 1 do
          words.((2 * i) + 1) <- 0xFFFFFFFF
        done;
        List.iter
          (fun (v, child) ->
            let h = hash_slot ~size ~mult ~shift v in
            words.(2 * h) <- u32 v;
            words.((2 * h) + 1) <- u32 (leaf_fid child))
          edges;
        let taddr = alloc_table words in
        let h = V.getreg_exn g ~cls:`Temp Vtype.U in
        let addr = V.getreg_exn g ~cls:`Temp Vtype.P in
        (* h = ((v * mult) >>> shift) & (size-1); entries are 8 bytes *)
        mului g h rv mult;
        if shift <> 0 then rshui g h h shift;
        andui g h h (size - 1);
        lshui g h h 3;
        setp g addr taddr;
        V.arith g Op.Add Vtype.P addr addr h;
        (* key check (the hash is collision-free over installed keys, so
           a mismatch means "not installed", never "probe further") *)
        ldui g h addr 0;
        bneu g h rv fail;
        ldii g rret addr 4;
        V.putreg g h;
        V.putreg g addr;
        jv g ldone
      | None ->
        let use_linear =
          match dispatch with
          | Force_linear -> true
          | Force_bsearch -> false
          | Auto | Force_hash -> n <= 4
        in
        if use_linear then begin
          max_linear := max !max_linear n;
          let labs = List.map (fun (v, c) -> (V.genlabel g, v, c)) edges in
          List.iter
            (fun (l, v, _) -> V.branch_imm g Op.Eq Vtype.U rv (sext32 v) l)
            labs;
          jv g fail;
          List.iter
            (fun (l, _, c) ->
              V.label g l;
              emit_child c ~fail)
            labs
        end
        else begin
          used_bsearch := true;
          let arr =
            Array.of_list (List.sort (fun (a, _) (b, _) -> compare (u32 a) (u32 b)) edges)
          in
          let rec bs lo hi =
            if hi - lo + 1 <= 3 then begin
              let labs = ref [] in
              for i = lo to hi do
                let v, c = arr.(i) in
                let l = V.genlabel g in
                labs := (l, c) :: !labs;
                V.branch_imm g Op.Eq Vtype.U rv (sext32 v) l;
                ignore v
              done;
              jv g fail;
              List.iter
                (fun (l, c) ->
                  V.label g l;
                  emit_child c ~fail)
                (List.rev !labs)
            end
            else begin
              let mid = (lo + hi) / 2 in
              let vm, cm = arr.(mid) in
              let llo = V.genlabel g and lmid = V.genlabel g in
              V.branch_imm g Op.Eq Vtype.U rv (sext32 vm) lmid;
              V.branch_imm g Op.Lt Vtype.U rv (sext32 vm) llo;
              bs (mid + 1) hi;
              V.label g llo;
              bs lo (mid - 1);
              V.label g lmid;
              emit_child cm ~fail
            end
          in
          bs 0 (Array.length arr - 1)
        end
    in
    emit_node trie ~fail:lfail;
    V.label g lfail;
    seti g rret (-1);
    V.label g ldone;
    reti g rret;
    let code = V.end_gen g in
    {
      code;
      tables = List.rev !tables;
      entry = code.Vcode.entry_addr;
      max_linear = !max_linear;
      used_hash = !used_hash;
      used_bsearch = !used_bsearch;
    }

  (* Install the dispatch tables into simulated memory. *)
  let install_tables mem (c : compiled) =
    List.iter
      (fun (addr, words) ->
        Array.iteri (fun i w -> Vmachine.Mem.write_u32 mem (addr + (4 * i)) w) words)
      c.tables
end
