(** DCG-style baseline code generator.

    The comparison system for the paper's headline claim: VCODE is
    ~35x faster at generating code than DCG (Engler & Proebsting,
    ASPLOS-VI).  DCG clients build intermediate-representation trees
    at runtime; code generation then makes passes over those trees — a
    labeling pass (Sethi-Ullman register counting, constant folding
    and BURS cost matching) and an emission pass.  Every instruction
    costs heap allocation plus two traversals, whereas VCODE's
    in-place interface costs a few stores.

    To keep the comparison honest the emission pass bottoms out in the
    {e same} target encoders as VCODE ([Make] is a functor over the
    same {!Vcodebase.Target.S}), so binary emission cost is identical;
    only the IR-vs-in-place difference is measured. *)

(** expression trees (lcc-flavoured) *)
type exp =
  | Cnst of Vcodebase.Vtype.t * int64
  | Regv of Vcodebase.Vtype.t * Vcodebase.Reg.t
  | Bin of Vcodebase.Op.binop * Vcodebase.Vtype.t * exp * exp
  | Un of Vcodebase.Op.unop * Vcodebase.Vtype.t * exp
  | Ld of Vcodebase.Vtype.t * exp * int  (** load ty [addr + off] *)

type stmt =
  | Sassign of Vcodebase.Reg.t * exp
  | Sstore of Vcodebase.Vtype.t * exp * int * exp
      (** store ty [addr + off] <- value *)
  | Sret of Vcodebase.Vtype.t * exp option
  | Slabel of int
  | Sjump of int
  | Scjump of Vcodebase.Op.cond * Vcodebase.Vtype.t * exp * exp * int

module Make (T : Vcodebase.Target.S) : sig
  (** one function under construction: a generator plus the
      accumulated (unconsumed) IR statements *)
  type t

  (** same contract as [Vcode.Make(T).lambda]; also returns the
      argument registers *)
  val lambda :
    ?base:int -> ?leaf:bool -> ?capacity:int -> string -> t * Vcodebase.Reg.t array

  (** append one IR statement — what a DCG client does per dynamic
      instruction.  Nothing is emitted until {!finish}. *)
  val stmt : t -> stmt -> unit

  val genlabel : t -> int

  val getreg :
    t -> cls:[ `Temp | `Var ] -> Vcodebase.Vtype.t -> Vcodebase.Reg.t option

  val getreg_exn : t -> cls:[ `Temp | `Var ] -> Vcodebase.Vtype.t -> Vcodebase.Reg.t
  val putreg : t -> Vcodebase.Reg.t -> unit

  (** consume the accumulated IR — label each tree, then emit it
      bottom-up in Sethi-Ullman order — and finalize the function.
      This is "code generation" in DCG. *)
  val finish : t -> Vcode.code

  (** rough live-heap accounting for the space comparison: DCG state
      grows with the number of IR nodes *)
  val live_words : t -> int
end
