(* DCG-style baseline code generator.

   The comparison system for the paper's headline claim: VCODE is ~35x
   faster at generating code than DCG (Engler & Proebsting, ASPLOS-VI),
   the fastest general-purpose dynamic code generator before it.  The
   essential difference is architectural and reproduced faithfully here:
   DCG clients build *intermediate representation trees* at runtime;
   code generation then makes passes over those trees — a
   labeling/needs pass (Sethi-Ullman register counting plus constant
   folding, standing in for lcc/iburg tree pattern matching) and an
   emission pass.  Every instruction costs heap allocation plus two
   traversals, whereas VCODE's in-place interface costs a few stores.

   To keep the comparison honest the emission pass bottoms out in the
   *same* target encoders as VCODE ([Make] is a functor over the same
   {!Vcodebase.Target.S}), so the generated code and binary emission
   cost are identical; only the IR-vs-in-place difference is measured.
   The generated functions use the same conventions, so they run on the
   same simulators and can be differentially tested against VCODE. *)

open Vcodebase

(* Expression trees (lcc-flavoured). *)
type exp =
  | Cnst of Vtype.t * int64
  | Regv of Vtype.t * Reg.t
  | Bin of Op.binop * Vtype.t * exp * exp
  | Un of Op.unop * Vtype.t * exp
  | Ld of Vtype.t * exp * int  (* load ty [addr + off] *)

type stmt =
  | Sassign of Reg.t * exp
  | Sstore of Vtype.t * exp * int * exp  (* store ty [addr + off] <- value *)
  | Sret of Vtype.t * exp option
  | Slabel of int
  | Sjump of int
  | Scjump of Op.cond * Vtype.t * exp * exp * int

(* annotated tree produced by the labeling pass *)
type aexp = {
  e : exp;
  need : int;          (* Sethi-Ullman register need *)
  const : int64 option; (* folded constant value *)
  costs : int array;   (* BURS cost vector, indexed by nonterminal *)
  l : aexp option;
  r : aexp option;
}

(* BURS nonterminals (DCG used a BURG-generated matcher over lcc trees;
   this reproduces its per-node dynamic-programming cost structure) *)
let nt_reg = 0
let nt_con = 1
let nt_imm16 = 2 (* constant that fits an immediate field *)
let nt_addr = 3  (* reg, or reg+imm16 addressing *)
let n_nts = 4

let inf_cost = max_int / 4

let ty_of = function
  | Cnst (t, _) -> t
  | Regv (t, _) -> t
  | Bin (_, t, _, _) -> t
  | Un (_, t, _) -> t
  | Ld (t, _, _) -> t

module Make (T : Target.S) = struct
  module V = Vcode.Make (T)

  type t = {
    gen : Gen.t;
    args : Reg.t array;
    mutable stmts : stmt list; (* reversed *)
    mutable nstmts : int;
  }

  (* ---------------------------------------------------------------- *)
  (* IR construction (what DCG clients do per dynamic instruction)     *)

  let lambda ?base ?leaf ?capacity sig_ : t * Reg.t array =
    let gen, args = V.lambda ?base ?leaf ?capacity sig_ in
    ({ gen; args; stmts = []; nstmts = 0 }, args)

  let stmt c s =
    c.stmts <- s :: c.stmts;
    c.nstmts <- c.nstmts + 1

  let genlabel c = Gen.genlabel c.gen
  let getreg c ~cls ty = V.getreg c.gen ~cls ty
  let getreg_exn c ~cls ty = V.getreg_exn c.gen ~cls ty
  let putreg c r = V.putreg c.gen r

  (* ---------------------------------------------------------------- *)
  (* Pass 1: labeling — Sethi-Ullman needs and constant folding.       *)

  let fold_bin (op : Op.binop) (t : Vtype.t) (a : int64) (b : int64) : int64 option =
    if Vtype.is_float t then None
    else
      let wrap v =
        if t = Vtype.I || t = Vtype.U then Int64.shift_right (Int64.shift_left v 32) 32
        else v
      in
      match op with
      | Op.Add -> Some (wrap (Int64.add a b))
      | Op.Sub -> Some (wrap (Int64.sub a b))
      | Op.Mul -> Some (wrap (Int64.mul a b))
      | Op.Div | Op.Mod -> None (* sign/zero subtleties: leave to runtime *)
      | Op.And -> Some (Int64.logand a b)
      | Op.Or -> Some (Int64.logor a b)
      | Op.Xor -> Some (Int64.logxor a b)
      | Op.Lsh | Op.Rsh -> None

  (* BURS matching: compute the cheapest derivation cost of each
     nonterminal at this node, given the children's cost vectors.  The
     rule set is lcc/iburg-flavoured; chain rules (con -> reg,
     reg -> addr, ...) close the vector. *)
  let fits16_64 v = Int64.compare v (-32768L) >= 0 && Int64.compare v 32767L <= 0

  let close_chains (c : int array) (const : int64 option) =
    (* con -> imm16 when it fits *)
    (match const with
    | Some v when fits16_64 v -> c.(nt_imm16) <- min c.(nt_imm16) c.(nt_con)
    | _ -> ());
    (* con -> reg: load constant (1-2 insns) *)
    c.(nt_reg) <- min c.(nt_reg) (c.(nt_con) + 2);
    (* reg -> addr: register addressing *)
    c.(nt_addr) <- min c.(nt_addr) c.(nt_reg)

  let burs_costs (e : exp) (const : int64 option) (l : aexp option) (r : aexp option) :
      int array =
    let c = Array.make n_nts inf_cost in
    (match (e, l, r) with
    | Cnst _, _, _ -> c.(nt_con) <- 0
    | Regv _, _, _ -> c.(nt_reg) <- 0
    | Un (_, _, _), Some ax, _ -> c.(nt_reg) <- ax.costs.(nt_reg) + 1
    | Ld (_, _, _), Some aa, _ ->
      (* ld reg <- [addr] *)
      c.(nt_reg) <- aa.costs.(nt_addr) + 1
    | Bin (op, t, _, _), Some ax, Some ay ->
      (* reg op reg *)
      let rr = ax.costs.(nt_reg) + ay.costs.(nt_reg) + 1 in
      c.(nt_reg) <- min c.(nt_reg) rr;
      (* reg op imm16 when the target has an immediate form *)
      if Op.binop_imm_ok op t && ay.costs.(nt_imm16) < inf_cost then
        c.(nt_reg) <- min c.(nt_reg) (ax.costs.(nt_reg) + ay.costs.(nt_imm16) + 1);
      (* add reg, imm16 -> addr (address mode, costs nothing extra) *)
      if op = Op.Add && ay.costs.(nt_imm16) < inf_cost then
        c.(nt_addr) <- min c.(nt_addr) ax.costs.(nt_reg)
    | _ -> ());
    (match const with Some _ -> c.(nt_con) <- min c.(nt_con) 0 | None -> ());
    close_chains c const;
    c

  let rec label (e : exp) : aexp =
    match e with
    | Cnst (_, v) ->
      let const = Some v in
      { e; need = 0; const; costs = burs_costs e const None None; l = None; r = None }
    | Regv _ -> { e; need = 0; const = None; costs = burs_costs e None None None; l = None; r = None }
    | Un (_, _, x) ->
      let ax = label x in
      { e; need = max 1 ax.need; const = None;
        costs = burs_costs e None (Some ax) None; l = Some ax; r = None }
    | Ld (_, a, _) ->
      let aa = label a in
      { e; need = max 1 aa.need; const = None;
        costs = burs_costs e None (Some aa) None; l = Some aa; r = None }
    | Bin (op, t, x, y) ->
      let ax = label x and ay = label y in
      let const =
        match (ax.const, ay.const) with
        | Some a, Some b -> fold_bin op t a b
        | _ -> None
      in
      let need =
        if ax.need = ay.need then ax.need + 1 else max 1 (max ax.need ay.need)
      in
      { e; need; const; costs = burs_costs e const (Some ax) (Some ay);
        l = Some ax; r = Some ay }

  (* ---------------------------------------------------------------- *)
  (* Pass 2: emission — consume the trees, allocating temporaries in
     Sethi-Ullman order, bottoming out in the shared target encoders.  *)

  let rec emit_exp c (a : aexp) : Reg.t =
    let g = c.gen in
    match a.const with
    | Some v ->
      let t = ty_of a.e in
      let r = getreg_or_spill c t in
      T.set g t r v;
      r
    | None -> (
      match (a.e, a.l, a.r) with
      | Regv (_, r), _, _ -> r
      | Cnst _, _, _ -> assert false (* covered by a.const *)
      | Un (op, t, _), Some ax, _ ->
        let rs = emit_exp c ax in
        let rd = result_reg c t rs ax in
        T.unary g op t rd rs;
        rd
      | Ld (t, _, off), Some aa, _ ->
        let ra = emit_exp c aa in
        let rd = getreg_or_spill c t in
        T.load_imm g t rd ra off;
        release c ra aa;
        rd
      | Bin (op, t, _, _), Some ax, Some ay -> (
        (* the BURS matcher derived an immediate form for the right side *)
        match ay.const with
        | Some v
          when Op.binop_imm_ok op t
               && ay.costs.(nt_imm16) < inf_cost
               && Int64.compare v (Int64.of_int min_int) > 0
               && Int64.compare v (Int64.of_int max_int) < 0 ->
          let rs = emit_exp c ax in
          let rd = result_reg c t rs ax in
          T.arith_imm g op t rd rs (Int64.to_int v);
          rd
        | _ ->
          let first, second, swapped =
            if ax.need >= ay.need then (ax, ay, false) else (ay, ax, true)
          in
          let r1 = emit_exp c first in
          let r2 = emit_exp c second in
          (* operand order for the instruction, with register ownership *)
          let rs1, rs2, own1, own2 =
            if swapped then (r2, r1, second, first) else (r1, r2, first, second)
          in
          let rd = result_reg c t rs1 own1 in
          T.arith g op t rd rs1 rs2;
          release c rs2 own2;
          rd)
      | _ -> assert false)

  and getreg_or_spill c t =
    match getreg c ~cls:`Temp t with
    | Some r -> r
    | None -> Verror.fail (Verror.Registers_exhausted "dcg expression temporaries")

  (* reuse the operand's register as the destination when it was a
     temporary; otherwise allocate *)
  and result_reg c t rs (operand : aexp) =
    match operand.e with
    | Regv _ -> getreg_or_spill c t (* client register: not ours to clobber *)
    | _ -> rs

  and release c r (operand : aexp) =
    match operand.e with Regv _ -> () | _ -> putreg c r

  let emit_stmt c (s : stmt) =
    let g = c.gen in
    match s with
    | Slabel l -> Gen.bind_label g l
    | Sjump l -> T.jump g (Gen.Jlabel l)
    | Sassign (rd, e) ->
      let a = label e in
      let rs = emit_exp c a in
      if not (Reg.equal rs rd) then T.unary g Op.Mov (ty_of e) rd rs;
      release c rs a
    | Sstore (t, addr, off, v) ->
      let aa = label addr and av = label v in
      let ra = emit_exp c aa in
      let rv = emit_exp c av in
      T.store_imm g t rv ra off;
      release c ra aa;
      release c rv av
    | Sret (t, None) -> T.ret g t None
    | Sret (t, Some e) ->
      let a = label e in
      let r = emit_exp c a in
      T.ret g t (Some r);
      release c r a
    | Scjump (cond, t, x, y, l) -> (
      let ax = label x and ay = label y in
      match ay.const with
      | Some v
        when Int64.compare v (Int64.of_int min_int) > 0
             && Int64.compare v (Int64.of_int max_int) < 0 ->
        let rx = emit_exp c ax in
        T.branch_imm g cond t rx (Int64.to_int v) l;
        release c rx ax
      | Some _ | None ->
        let rx = emit_exp c ax in
        let ry = emit_exp c ay in
        T.branch g cond t rx ry l;
        release c rx ax;
        release c ry ay)

  (* Consume the accumulated IR: this is "code generation" in DCG. *)
  let finish (c : t) : Vcode.code =
    List.iter (emit_stmt c) (List.rev c.stmts);
    c.stmts <- [];
    V.end_gen c.gen

  (* Rough live-heap accounting for the space comparison: DCG state
     grows with the number of IR nodes. *)
  let rec exp_words = function
    | Cnst _ -> 4
    | Regv _ -> 4
    | Un (_, _, x) -> 5 + exp_words x
    | Ld (_, a, _) -> 5 + exp_words a
    | Bin (_, _, x, y) -> 6 + exp_words x + exp_words y

  let stmt_words = function
    | Slabel _ | Sjump _ -> 2
    | Sassign (_, e) -> 3 + exp_words e
    | Sstore (_, a, _, v) -> 5 + exp_words a + exp_words v
    | Sret (_, None) -> 2
    | Sret (_, Some e) -> 3 + exp_words e
    | Scjump (_, _, x, y, _) -> 6 + exp_words x + exp_words y

  let live_words (c : t) =
    Gen.live_words c.gen + List.fold_left (fun acc s -> acc + 3 + stmt_words s) 0 c.stmts
end
