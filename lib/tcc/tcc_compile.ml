(* tcc code generation: C subset -> VCODE.

   One pass over the AST per function, emitting VCODE directly (the
   compiler front-end is "a small compiler front-end" in the paper's
   phrase; VCODE is the whole back-end).  Machine independence falls out
   of the VCODE interface: this module is a functor over {!Target.S} and
   compiles identically for MIPS, SPARC and Alpha — the property the
   paper reports for the real tcc ("the same VCODE generation backend on
   the two architectures it supports").

   Conventions:
   - chars/shorts are promoted to int in registers; memory accesses use
     their true width;
   - locals live in registers (VAR class) while the allocator has them,
     then fall back to stack slots — exactly the paper's division of
     labour between VCODE's allocator and its clients;
   - multiplications/divisions by constants go through the VCODE
     strength-reduction layer (section 5.4);
   - leafness is inferred from the AST so leaf functions keep arguments
     in their incoming registers. *)

open Vcodebase
open Ast

exception Compile_error of string

let cfail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* a callable symbol: address + signature *)
type sym = { sym_addr : int; sym_ret : ty; sym_params : ty list }

module Make (T : Target.S) = struct
  module V = Vcode.Make (T)

  let word_bytes = Machdesc.word_bytes T.desc

  (* value type: how an expression result lives in a register *)
  let value_vt : ty -> Vtype.t = function
    | Tint | Tchar -> Vtype.I
    | Tuint | Tuchar | Tushort -> Vtype.U
    | Tptr _ -> Vtype.P
    | Tvoid -> Vtype.V

  (* memory type: the width used by loads/stores of this type *)
  let mem_vt : ty -> Vtype.t = function
    | Tint -> Vtype.I
    | Tuint -> Vtype.U
    | Tchar -> Vtype.C
    | Tuchar -> Vtype.UC
    | Tushort -> Vtype.US
    | Tptr _ -> Vtype.P
    | Tvoid -> cfail "void has no size"

  (* register class (int vs float file); this subset is integer-only *)
  let is_word_reg r = not (Reg.is_float r)
  let _ = is_word_reg

  type var = Vreg of Reg.t * ty | Vstk of V.local * ty

  (* a global variable: absolute address; arrays evaluate to their
     address, scalars to their loaded value *)
  type gvar = { g_addr : int; g_ty : ty; g_array : bool }

  type fctx = {
    g : V.gen;
    syms : (string, sym) Hashtbl.t;
    globals : (string, gvar) Hashtbl.t;
    mutable vars : (string * var) list; (* innermost first *)
    addressed : string list; (* names that must live on the stack *)
    ret_ty : ty;
    mutable break_labs : int list;
    mutable cont_labs : int list;
  }

  let lookup_var ctx name =
    match List.assoc_opt name ctx.vars with
    | Some v -> Some v
    | None -> None

  let lookup_global ctx name = Hashtbl.find_opt ctx.globals name

  let var_ty = function Vreg (_, t) -> t | Vstk (_, t) -> t

  (* usual-arithmetic-conversion result type, simplified *)
  let arith_ty a b =
    match (a, b) with
    | Tptr _, _ -> a
    | _, Tptr _ -> b
    | (Tuint | Tuchar | Tushort), _ | _, (Tuint | Tuchar | Tushort) -> Tuint
    | _ -> Tint

  let temp ctx (t : ty) =
    match V.getreg ctx.g ~cls:`Temp (value_vt t) with
    | Some r -> r
    | None -> cfail "out of temporary registers (expression too deep)"

  let free ctx r ~owned = if owned then V.putreg ctx.g r

  (* Temporaries are caller-saved: a value that must survive the
     evaluation of an expression containing a call is parked in a
     callee-saved register (or a stack slot when none is free) and
     reloaded afterwards.  This is exactly the register discipline the
     paper assigns to VCODE clients. *)
  type parked = Preg of Reg.t | Pstk of V.local

  let park ctx (r, (t : ty), owned) : parked =
    match V.getreg ctx.g ~cls:`Var (value_vt t) with
    | Some s ->
      V.unary ctx.g Op.Mov (value_vt t) s r;
      free ctx r ~owned;
      Preg s
    | None ->
      let l = V.local ctx.g (value_vt t) in
      V.st_local ctx.g l r;
      free ctx r ~owned;
      Pstk l

  let unpark ctx (t : ty) = function
    | Preg s -> (s, true)
    | Pstk l ->
      let r = temp ctx t in
      V.ld_local ctx.g l r;
      (r, true)

  (* evaluate [b] while keeping [a]'s result alive across any calls
     inside [b]; returns the (possibly reloaded) register for [a] *)
  let eval_protected ctx (ra, ta, oa) (b : expr) (evalb : unit -> 'r) :
      (Reg.t * bool) * 'r =
    if expr_has_call b then begin
      let p = park ctx (ra, ta, oa) in
      let rb = evalb () in
      let ra, oa = unpark ctx ta p in
      ((ra, oa), rb)
    end
    else
      let rb = evalb () in
      ((ra, oa), rb)

  (* materialize an rvalue; returns (register, type, owned) *)
  let rec gen_expr ctx (e : expr) : Reg.t * ty * bool =
    match e with
    | Eint v ->
      let r = temp ctx Tint in
      V.set ctx.g Vtype.I r (Int64.of_int v);
      (r, Tint, true)
    | Evar name -> (
      match lookup_var ctx name with
      | Some (Vreg (r, t)) -> (r, t, false)
      | Some (Vstk (l, t)) ->
        let r = temp ctx t in
        V.ld_local ctx.g l r;
        (r, t, true)
      | None -> (
        match lookup_global ctx name with
        | Some gv when gv.g_array ->
          (* a global array evaluates to its address *)
          let r = temp ctx (Tptr gv.g_ty) in
          V.set ctx.g Vtype.P r (Int64.of_int gv.g_addr);
          (r, Tptr gv.g_ty, true)
        | Some gv ->
          let a = temp ctx (Tptr gv.g_ty) in
          V.set ctx.g Vtype.P a (Int64.of_int gv.g_addr);
          let r = temp ctx gv.g_ty in
          V.load_imm ctx.g (mem_vt gv.g_ty) r a 0;
          free ctx a ~owned:true;
          (r, gv.g_ty, true)
        | None -> cfail "undefined variable %s" name))
    | Eaddr name -> (
      match lookup_var ctx name with
      | Some (Vstk (l, t)) ->
        let r = temp ctx (Tptr t) in
        V.local_addr ctx.g l r;
        (r, Tptr t, true)
      | Some (Vreg _) -> cfail "&%s: variable unexpectedly in a register" name
      | None -> (
        match lookup_global ctx name with
        | Some gv ->
          let r = temp ctx (Tptr gv.g_ty) in
          V.set ctx.g Vtype.P r (Int64.of_int gv.g_addr);
          (r, Tptr gv.g_ty, true)
        | None -> cfail "undefined variable %s" name))
    | Ecast (t, e) ->
      let r, _, owned = gen_expr ctx e in
      let vt = value_vt t in
      (* the source subset is integer/pointer-only so casts only narrow *)
      let rd = if owned then r else temp ctx t in
      (match t with
      | Tuchar -> V.arith_imm ctx.g Op.And (value_vt Tuint) rd r 0xFF
      | Tushort -> V.arith_imm ctx.g Op.And (value_vt Tuint) rd r 0xFFFF
      | Tchar ->
        let w = T.desc.Machdesc.word_bits in
        V.arith_imm ctx.g Op.Lsh Vtype.I rd r (w - 8);
        V.arith_imm ctx.g Op.Rsh Vtype.I rd rd (w - 8)
      | _ ->
        ignore vt;
        if not (Reg.equal rd r) then V.unary ctx.g Op.Mov (value_vt t) rd r);
      (rd, t, true)
    | Eun (Uneg, e) ->
      let r, t, owned = gen_expr ctx e in
      let rd = if owned then r else temp ctx t in
      V.unary ctx.g Op.Neg (value_vt (arith_ty t Tint)) rd r;
      (rd, arith_ty t Tint, true)
    | Eun (Ucom, e) ->
      let r, t, owned = gen_expr ctx e in
      let rd = if owned then r else temp ctx t in
      V.unary ctx.g Op.Com (value_vt (arith_ty t Tint)) rd r;
      (rd, arith_ty t Tint, true)
    | Eun (Unot, e) ->
      let r, t, owned = gen_expr ctx e in
      let rd = if owned then r else temp ctx Tint in
      V.unary ctx.g Op.Not (value_vt (arith_ty t Tint)) rd r;
      (rd, Tint, true)
    | Eun (Uderef, e) ->
      let r, t, owned = gen_expr ctx e in
      let pointee = match t with Tptr p -> p | _ -> cfail "dereference of non-pointer" in
      let rd = if owned then r else temp ctx pointee in
      V.load_imm ctx.g (mem_vt pointee) rd r 0;
      (rd, pointee, true)
    | Eindex (base, idx) ->
      let addr, pointee, owned = gen_addr_index ctx base idx in
      let rd = if owned then addr else temp ctx pointee in
      V.load_imm ctx.g (mem_vt pointee) rd addr 0;
      (rd, pointee, true)
    | Ebin ((Blt | Ble | Bgt | Bge | Beq | Bne | Bland | Blor), _, _) ->
      (* boolean in value position: materialize 0/1 *)
      let rd = temp ctx Tint in
      let ltrue = V.genlabel ctx.g in
      V.set ctx.g Vtype.I rd 1L;
      gen_cond ctx e ~target:ltrue ~jump_if:true;
      V.set ctx.g Vtype.I rd 0L;
      V.label ctx.g ltrue;
      (rd, Tint, true)
    | Ebin (op, a, b) -> gen_arith ctx op a b
    | Eassign (lhs, rhs) -> gen_assign ctx lhs rhs
    | Ecall (name, args) -> (
      match gen_call ctx name args with
      | Some (r, t) -> (r, t, true)
      | None -> cfail "void value of %s used" name)

  (* address of base[idx], with C element scaling *)
  and gen_addr_index ctx base idx : Reg.t * ty * bool =
    let rb, tb, ob = gen_expr ctx base in
    let pointee = match tb with Tptr p -> p | _ -> cfail "indexing non-pointer" in
    let size = ty_size ~word_bytes pointee in
    let addr =
      match idx with
      | Eint k ->
        let rd = if ob then rb else temp ctx tb in
        V.arith_imm ctx.g Op.Add Vtype.P rd rb (k * size);
        rd
      | _ ->
        let ri, _, oi = gen_expr ctx idx in
        let scaled = if oi then ri else temp ctx Tint in
        V.Strength.mul ctx.g Vtype.I scaled ri size;
        let rd = if ob then rb else temp ctx tb in
        (* reinterpret the scaled index as a pointer-width offset *)
        V.arith ctx.g Op.Add Vtype.P rd rb
          (match scaled with Reg.R n -> Reg.R n | Reg.F n -> Reg.F n);
        if not (Reg.equal scaled rd) then free ctx scaled ~owned:true;
        rd
    in
    (addr, pointee, true)

  and gen_arith ctx op a b : Reg.t * ty * bool =
    let vop =
      match op with
      | Badd -> Op.Add | Bsub -> Op.Sub | Bmul -> Op.Mul | Bdiv -> Op.Div
      | Bmod -> Op.Mod | Band -> Op.And | Bor -> Op.Or | Bxor -> Op.Xor
      | Bshl -> Op.Lsh | Bshr -> Op.Rsh
      | Blt | Ble | Bgt | Bge | Beq | Bne | Bland | Blor -> assert false
    in
    let ra, ta, oa = gen_expr ctx a in
    (* pointer +- integer: scale the integer side *)
    match (op, ta) with
    | (Badd | Bsub), Tptr pointee -> (
      let size = ty_size ~word_bytes pointee in
      match b with
      | Eint k ->
        let rd = if oa then ra else temp ctx ta in
        V.arith_imm ctx.g vop Vtype.P rd ra (k * size);
        (rd, ta, true)
      | _ ->
        let (ra, oa), (rb, tb, ob) =
          eval_protected ctx (ra, ta, oa) b (fun () -> gen_expr ctx b)
        in
        (match tb with
        | Tptr _ when op = Bsub ->
          (* pointer difference: (a - b) / size *)
          let rd = if oa then ra else temp ctx Tint in
          V.arith ctx.g Op.Sub Vtype.P rd ra rb;
          free ctx rb ~owned:ob;
          V.Strength.div ctx.g Vtype.I rd rd size;
          (rd, Tint, true)
        | _ ->
          let scaled = if ob then rb else temp ctx Tint in
          V.Strength.mul ctx.g Vtype.I scaled rb size;
          let rd = if oa then ra else temp ctx ta in
          V.arith ctx.g vop Vtype.P rd ra scaled;
          if not (Reg.equal scaled rd) then free ctx scaled ~owned:true;
          (rd, ta, true)))
    | _ -> (
      let rt = arith_ty ta (Tint) in
      match b with
      | Eint k when op = Bmul ->
        let rd = if oa then ra else temp ctx rt in
        V.Strength.mul ctx.g (value_vt rt) rd ra k;
        (rd, rt, true)
      | Eint k when (op = Bdiv || op = Bmod) && k <> 0 ->
        let rd = if oa then ra else temp ctx rt in
        let t' = arith_ty ta Tint in
        if op = Bdiv then V.Strength.div ctx.g (value_vt t') rd ra k
        else V.Strength.rem ctx.g (value_vt t') rd ra k;
        (rd, t', true)
      | Eint k ->
        let rd = if oa then ra else temp ctx rt in
        V.arith_imm ctx.g vop (value_vt rt) rd ra k;
        (rd, rt, true)
      | _ ->
        let (ra, oa), (rb, tb, ob) =
          eval_protected ctx (ra, ta, oa) b (fun () -> gen_expr ctx b)
        in
        let rt = arith_ty ta tb in
        let rd = if oa then ra else temp ctx rt in
        V.arith ctx.g vop (value_vt rt) rd ra rb;
        free ctx rb ~owned:ob;
        (rd, rt, true))

  and gen_assign ctx lhs rhs : Reg.t * ty * bool =
    match lhs with
    | Evar name -> (
      match lookup_var ctx name with
      | Some (Vreg (r, t)) ->
        let rv, _, ov = gen_expr ctx rhs in
        if not (Reg.equal rv r) then V.unary ctx.g Op.Mov (value_vt t) r rv;
        free ctx rv ~owned:ov;
        (r, t, false)
      | Some (Vstk (l, t)) ->
        let rv, _, ov = gen_expr ctx rhs in
        V.st_local ctx.g l rv;
        (rv, t, ov)
      | None -> (
        match lookup_global ctx name with
        | Some gv when not gv.g_array ->
          let rv, _, ov = gen_expr ctx rhs in
          let a = temp ctx (Tptr gv.g_ty) in
          V.set ctx.g Vtype.P a (Int64.of_int gv.g_addr);
          V.store_imm ctx.g (mem_vt gv.g_ty) rv a 0;
          free ctx a ~owned:true;
          (rv, gv.g_ty, ov)
        | Some _ -> cfail "cannot assign to array %s" name
        | None -> cfail "undefined variable %s" name))
    | Eun (Uderef, p) ->
      let rp, tp, op_ = gen_expr ctx p in
      let pointee = match tp with Tptr t -> t | _ -> cfail "store through non-pointer" in
      let (rp, op_), (rv, _, ov) =
        eval_protected ctx (rp, tp, op_) rhs (fun () -> gen_expr ctx rhs)
      in
      V.store_imm ctx.g (mem_vt pointee) rv rp 0;
      free ctx rp ~owned:op_;
      (rv, pointee, ov)
    | Eindex (base, idx) ->
      let addr, pointee, oa = gen_addr_index ctx base idx in
      let (addr, oa), (rv, _, ov) =
        eval_protected ctx (addr, Tptr pointee, oa) rhs (fun () -> gen_expr ctx rhs)
      in
      V.store_imm ctx.g (mem_vt pointee) rv addr 0;
      free ctx addr ~owned:oa;
      (rv, pointee, ov)
    | _ -> cfail "invalid assignment target"

  and gen_call ctx name args : (Reg.t * ty) option =
    let sym =
      match Hashtbl.find_opt ctx.syms name with
      | Some s -> s
      | None -> cfail "undefined function %s" name
    in
    if List.length args <> List.length sym.sym_params then
      cfail "%s: expected %d arguments, got %d" name (List.length sym.sym_params)
        (List.length args);
    (* evaluate arguments left to right, parking any temporary that
       must survive a call inside a later argument *)
    let rec eval_args = function
      | [] -> []
      | (e, pt) :: rest ->
        let r, _, owned = gen_expr ctx e in
        let later_call = List.exists (fun (e2, _) -> expr_has_call e2) rest in
        if later_call && owned then begin
          let p = park ctx (r, pt, owned) in
          let rest' = eval_args rest in
          let r, owned = unpark ctx pt p in
          (value_vt pt, r, owned) :: rest'
        end
        else (value_vt pt, r, owned) :: eval_args rest
    in
    let evaluated = eval_args (List.combine args sym.sym_params) in
    let vargs = List.map (fun (vt, r, _) -> (vt, r)) evaluated in
    let ret =
      if sym.sym_ret = Tvoid then None
      else
        let rr = temp ctx sym.sym_ret in
        Some (value_vt sym.sym_ret, rr)
    in
    V.ccall ctx.g (Gen.Jaddr sym.sym_addr) ~args:vargs ~ret;
    List.iter (fun (_, r, owned) -> free ctx r ~owned) evaluated;
    match ret with Some (_, rr) -> Some (rr, sym.sym_ret) | None -> None

  (* compile a boolean expression as control flow: branch to [target]
     when the expression's truth equals [jump_if] *)
  and gen_cond ctx (e : expr) ~target ~jump_if =
    match e with
    | Eun (Unot, e) -> gen_cond ctx e ~target ~jump_if:(not jump_if)
    | Ebin (Bland, a, b) ->
      if not jump_if then begin
        gen_cond ctx a ~target ~jump_if:false;
        gen_cond ctx b ~target ~jump_if:false
      end
      else begin
        let skip = V.genlabel ctx.g in
        gen_cond ctx a ~target:skip ~jump_if:false;
        gen_cond ctx b ~target ~jump_if:true;
        V.label ctx.g skip
      end
    | Ebin (Blor, a, b) ->
      if jump_if then begin
        gen_cond ctx a ~target ~jump_if:true;
        gen_cond ctx b ~target ~jump_if:true
      end
      else begin
        let skip = V.genlabel ctx.g in
        gen_cond ctx a ~target:skip ~jump_if:true;
        gen_cond ctx b ~target ~jump_if:false;
        V.label ctx.g skip
      end
    | Ebin ((Blt | Ble | Bgt | Bge | Beq | Bne) as op, a, b) -> (
      let cond =
        match op with
        | Blt -> Op.Lt | Ble -> Op.Le | Bgt -> Op.Gt | Bge -> Op.Ge
        | Beq -> Op.Eq | Bne -> Op.Ne
        | _ -> assert false
      in
      let cond = if jump_if then cond else
        match cond with
        | Op.Lt -> Op.Ge | Op.Le -> Op.Gt | Op.Gt -> Op.Le | Op.Ge -> Op.Lt
        | Op.Eq -> Op.Ne | Op.Ne -> Op.Eq
      in
      let ra, ta, oa = gen_expr ctx a in
      match b with
      | Eint k ->
        let t = arith_ty ta Tint in
        V.branch_imm ctx.g cond (value_vt t) ra k target;
        free ctx ra ~owned:oa
      | _ ->
        let (ra, oa), (rb, tb, ob) =
          eval_protected ctx (ra, ta, oa) b (fun () -> gen_expr ctx b)
        in
        let t = arith_ty ta tb in
        V.branch ctx.g cond (value_vt t) ra rb target;
        free ctx ra ~owned:oa;
        free ctx rb ~owned:ob)
    | _ ->
      let r, t, owned = gen_expr ctx e in
      let c = if jump_if then Op.Ne else Op.Eq in
      V.branch_imm ctx.g c (value_vt (arith_ty t Tint)) r 0 target;
      free ctx r ~owned

  (* ---------------------------------------------------------------- *)
  (* Statements                                                        *)

  let rec gen_stmt ctx (s : stmt) =
    match s with
    | Sblock ss ->
      let saved = ctx.vars in
      List.iter (gen_stmt ctx) ss;
      (* free registers of block-scoped variables *)
      let rec release l =
        if l != saved then
          match l with
          | (_, Vreg (r, _)) :: rest ->
            V.putreg ctx.g r;
            release rest
          | _ :: rest -> release rest
          | [] -> ()
      in
      release ctx.vars;
      ctx.vars <- saved
    | Sdecl (t, name, init) ->
      let v =
        if List.mem name ctx.addressed then Vstk (V.local ctx.g (value_vt t), t)
        else
          match V.getreg ctx.g ~cls:`Var (value_vt t) with
          | Some r -> Vreg (r, t)
          | None -> Vstk (V.local ctx.g (value_vt t), t)
      in
      ctx.vars <- (name, v) :: ctx.vars;
      (match init with
      | None -> ()
      | Some e -> ignore (gen_assign ctx (Evar name) e))
    | Sdecl_arr (t, name, n) ->
      let size = ty_size ~word_bytes t in
      let blk = V.local_block ctx.g ~bytes:(n * size) ~align:word_bytes in
      let pty = Tptr t in
      let v =
        match V.getreg ctx.g ~cls:`Var (value_vt pty) with
        | Some r ->
          V.local_addr ctx.g blk r;
          Vreg (r, pty)
        | None ->
          let slot = V.local ctx.g Vtype.P in
          let tmp = temp ctx pty in
          V.local_addr ctx.g blk tmp;
          V.st_local ctx.g slot tmp;
          free ctx tmp ~owned:true;
          Vstk (slot, pty)
      in
      ctx.vars <- (name, v) :: ctx.vars
    | Sexpr (Ecall (name, args)) -> (
      (* a call in statement position may return void *)
      match gen_call ctx name args with
      | Some (r, _) -> free ctx r ~owned:true
      | None -> ())
    | Sexpr e ->
      let r, _, owned = gen_expr ctx e in
      free ctx r ~owned
    | Sif (c, then_, else_) -> (
      match else_ with
      | None ->
        let lend = V.genlabel ctx.g in
        gen_cond ctx c ~target:lend ~jump_if:false;
        gen_stmt ctx then_;
        V.label ctx.g lend
      | Some else_ ->
        let lelse = V.genlabel ctx.g and lend = V.genlabel ctx.g in
        gen_cond ctx c ~target:lelse ~jump_if:false;
        gen_stmt ctx then_;
        V.jump ctx.g (Gen.Jlabel lend);
        V.label ctx.g lelse;
        gen_stmt ctx else_;
        V.label ctx.g lend)
    | Swhile (c, body) ->
      let ltop = V.genlabel ctx.g and lend = V.genlabel ctx.g in
      V.label ctx.g ltop;
      gen_cond ctx c ~target:lend ~jump_if:false;
      ctx.break_labs <- lend :: ctx.break_labs;
      ctx.cont_labs <- ltop :: ctx.cont_labs;
      gen_stmt ctx body;
      ctx.break_labs <- List.tl ctx.break_labs;
      ctx.cont_labs <- List.tl ctx.cont_labs;
      V.jump ctx.g (Gen.Jlabel ltop);
      V.label ctx.g lend
    | Sdo (body, c) ->
      let ltop = V.genlabel ctx.g and lend = V.genlabel ctx.g in
      let lcont = V.genlabel ctx.g in
      V.label ctx.g ltop;
      ctx.break_labs <- lend :: ctx.break_labs;
      ctx.cont_labs <- lcont :: ctx.cont_labs;
      gen_stmt ctx body;
      ctx.break_labs <- List.tl ctx.break_labs;
      ctx.cont_labs <- List.tl ctx.cont_labs;
      V.label ctx.g lcont;
      gen_cond ctx c ~target:ltop ~jump_if:true;
      V.label ctx.g lend
    | Sfor (init, cond, update, body) ->
      (match init with
      | None -> ()
      | Some e ->
        let r, _, owned = gen_expr ctx e in
        free ctx r ~owned);
      let ltop = V.genlabel ctx.g and lend = V.genlabel ctx.g in
      let lcont = V.genlabel ctx.g in
      V.label ctx.g ltop;
      (match cond with
      | None -> ()
      | Some c -> gen_cond ctx c ~target:lend ~jump_if:false);
      ctx.break_labs <- lend :: ctx.break_labs;
      ctx.cont_labs <- lcont :: ctx.cont_labs;
      gen_stmt ctx body;
      ctx.break_labs <- List.tl ctx.break_labs;
      ctx.cont_labs <- List.tl ctx.cont_labs;
      V.label ctx.g lcont;
      (match update with
      | None -> ()
      | Some e ->
        let r, _, owned = gen_expr ctx e in
        free ctx r ~owned);
      V.jump ctx.g (Gen.Jlabel ltop);
      V.label ctx.g lend
    | Sswitch (e, arms) ->
      (* dispatch like DPF: a compare chain for few cases, binary search
         for many (the paper's C-switch analogy, section 4.2) *)
      let lend = V.genlabel ctx.g in
      let arm_labs = List.map (fun _ -> V.genlabel ctx.g) arms in
      let cases =
        List.concat
          (List.map2
             (fun (labels, _) al ->
               List.filter_map
                 (function Cint v -> Some (v, al) | Cdefault -> None)
                 labels)
             arms arm_labs)
      in
      let default_lab =
        let rec find arms labs =
          match (arms, labs) with
          | ((labels, _) :: ra, al :: rl) ->
            if List.mem Cdefault labels then al else find ra rl
          | _ -> lend
        in
        find arms arm_labs
      in
      let rv, _, ov = gen_expr ctx e in
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) cases in
      let arr = Array.of_list sorted in
      let rec dispatch lo hi =
        if hi - lo + 1 <= 4 then begin
          for i = lo to hi do
            let v, al = arr.(i) in
            V.branch_imm ctx.g Op.Eq Vtype.I rv v al
          done;
          V.jump ctx.g (Vcodebase.Gen.Jlabel default_lab)
        end
        else begin
          let mid = (lo + hi) / 2 in
          let vm, alm = arr.(mid) in
          V.branch_imm ctx.g Op.Eq Vtype.I rv vm alm;
          let llo = V.genlabel ctx.g in
          V.branch_imm ctx.g Op.Lt Vtype.I rv vm llo;
          dispatch (mid + 1) hi;
          V.label ctx.g llo;
          dispatch lo (mid - 1)
        end
      in
      if Array.length arr = 0 then V.jump ctx.g (Vcodebase.Gen.Jlabel default_lab)
      else dispatch 0 (Array.length arr - 1);
      free ctx rv ~owned:ov;
      (* bodies in order; fallthrough is sequential; break exits *)
      ctx.break_labs <- lend :: ctx.break_labs;
      List.iter2
        (fun (_, body) al ->
          V.label ctx.g al;
          let saved = ctx.vars in
          List.iter (gen_stmt ctx) body;
          ctx.vars <- saved)
        arms arm_labs;
      ctx.break_labs <- List.tl ctx.break_labs;
      V.label ctx.g lend
    | Sreturn None -> V.ret ctx.g Vtype.V None
    | Sreturn (Some e) ->
      let r, _, owned = gen_expr ctx e in
      V.ret ctx.g (value_vt ctx.ret_ty) (Some r);
      free ctx r ~owned
    | Sbreak -> (
      match ctx.break_labs with
      | l :: _ -> V.jump ctx.g (Gen.Jlabel l)
      | [] -> cfail "break outside loop")
    | Scontinue -> (
      match ctx.cont_labs with
      | l :: _ -> V.jump ctx.g (Gen.Jlabel l)
      | [] -> cfail "continue outside loop")

  (* ---------------------------------------------------------------- *)
  (* Functions and translation units                                   *)

  let compile_func ~base ~(syms : (string, sym) Hashtbl.t)
      ~(globals : (string, gvar) Hashtbl.t) (f : func) : Vcode.code =
    let leaf = func_is_leaf f in
    let addressed = func_addressed f in
    let sig_ =
      String.concat "" (List.map (fun (t, _) -> "%" ^ Vtype.to_string (value_vt t)) f.fparams)
    in
    (* size hint: compiled C functions run a few words per statement *)
    let g, arg_regs = V.lambda ~base ~leaf ~capacity:256 sig_ in
    let ctx =
      {
        g; syms; globals; vars = []; addressed; ret_ty = f.fret;
        break_labs = []; cont_labs = [];
      }
    in
    (* bind parameters: leaves keep them in place; otherwise copy into
       call-preserved registers *)
    List.iteri
      (fun i (t, name) ->
        let incoming = arg_regs.(i) in
        let v =
          if List.mem name addressed then begin
            (* &param: spill the incoming value to a stack home *)
            let l = V.local g (value_vt t) in
            V.st_local g l incoming;
            Vstk (l, t)
          end
          else if leaf then Vreg (incoming, t)
          else
            match V.getreg g ~cls:`Var (value_vt t) with
            | Some r ->
              V.unary g Op.Mov (value_vt t) r incoming;
              Vreg (r, t)
            | None ->
              let l = V.local g (value_vt t) in
              V.st_local g l incoming;
              Vstk (l, t)
        in
        ctx.vars <- (name, v) :: ctx.vars)
      f.fparams;
    List.iter (gen_stmt ctx) f.fbody;
    (* implicit return for control falling off the end *)
    V.ret g Vtype.V None;
    V.end_gen g

  type program = {
    funcs : (string * Vcode.code) list;
    symbols : (string, sym) Hashtbl.t;
    global_vars : (string * int * int) list; (* name, address, bytes *)
    first_base : int;
    next_base : int;  (* first free address after the compiled image *)
  }

  (* Compile a translation unit, placing functions consecutively from
     [base].  [externs] declares host-provided functions (name, entry
     address, return type, parameter types); C functions must be defined
     before use, as in pre-prototype C. *)
  (* Compile a translation unit.  [data_base] is where global variables
     live (the simulated memory is zero-initialized, matching C's .bss
     semantics). *)
  let compile ?(base = 0x1000) ?(data_base = 0x60000) ?(externs = []) (src : string) :
      program =
    let syms = Hashtbl.create 17 in
    List.iter
      (fun (name, addr, ret, params) ->
        Hashtbl.replace syms name { sym_addr = addr; sym_ret = ret; sym_params = params })
      externs;
    let items = Parser.parse_unit src in
    let globals = Hashtbl.create 17 in
    let gcur = ref ((data_base + 7) land lnot 7) in
    let gout = ref [] in
    List.iter
      (function
        | Iglobal (t, name, arr) ->
          let elem = ty_size ~word_bytes t in
          let bytes = match arr with Some n -> n * elem | None -> elem in
          let addr = (!gcur + 7) land lnot 7 in
          Hashtbl.replace globals name { g_addr = addr; g_ty = t; g_array = arr <> None };
          gout := (name, addr, bytes) :: !gout;
          gcur := addr + bytes
        | Ifunc _ -> ())
      items;
    let cur = ref ((base + 7) land lnot 7) in
    let out = ref [] in
    List.iter
      (function
        | Iglobal _ -> ()
        | Ifunc (f : func) ->
          (* provisional symbol for self-recursion: entering at the base
             runs through the nop-filled reserved area and falls into the
             backpatched prologue, so the address is valid before the
             final entry point is known *)
          Hashtbl.replace syms f.fname
            { sym_addr = !cur; sym_ret = f.fret; sym_params = List.map fst f.fparams };
          let code = compile_func ~base:!cur ~syms ~globals f in
          Hashtbl.replace syms f.fname
            {
              sym_addr = code.Vcode.entry_addr;
              sym_ret = f.fret;
              sym_params = List.map fst f.fparams;
            };
          out := (f.fname, code) :: !out;
          cur := (!cur + code.Vcode.code_bytes + 7) land lnot 7)
      items;
    {
      funcs = List.rev !out;
      symbols = syms;
      global_vars = List.rev !gout;
      first_base = base;
      next_base = !cur;
    }

  let entry (p : program) name =
    match Hashtbl.find_opt p.symbols name with
    | Some s -> s.sym_addr
    | None -> cfail "no such function %s" name
end
