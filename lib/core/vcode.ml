(* VCODE: the client-facing dynamic code generation interface.

   [Make] instantiates the machine-independent API over one target port
   (MIPS, SPARC, Alpha).  The API mirrors the paper's macro interface:

   - [lambda] / [end_gen] bracket the generation of one function
     (v_lambda / v_end, section 3.2);
   - [getreg]/[putreg], [genlabel]/[label], [local] manage VCODE objects;
   - the generic emitters ([arith], [load], ...) plus the flat
     paper-style instruction names in [Names] (v_addii becomes
     [Names.addii]) specify code;
   - [Sched] is the portable delay-slot interface of section 5.3
     (v_schedule_delay / v_raw_load);
   - [Strength] is the multiplication/division strength reducer built on
     top of VCODE described in section 5.4;
   - [Ext] is the extensible-instruction registry driven by the
     specification language of section 5.4 (see {!Spec_lang}).

   Emission is in place: each call encodes machine words directly into
   the function's code buffer.  The only bookkeeping is labels and
   unresolved jumps (see {!Vcodebase.Gen}). *)

open Vcodebase

(* Re-export: the extension specification language (section 5.4). *)
module Spec_lang = Spec_lang

(* The result of [end_gen]: everything needed to install and run the
   dynamically generated function. *)
type code = {
  gen : Gen.t;
  base : int;        (* address the code was generated for *)
  entry_addr : int;  (* address of the first instruction to execute *)
  code_bytes : int;
}

module type TARGET = Target.S

(* Operand-validation switch, the paper's NDEBUG discipline: the C
   VCODE compiles its assertion macros out for production use.  [Make]
   instantiates the API with checks on (the default); [Make_unchecked]
   with checks off.  Both run the same emission code and produce
   bit-for-bit identical machine words — only the misuse diagnostics
   (type/class/lifecycle validation) are elided. *)
module type CHECKS = sig
  val enabled : bool
end

module Checked : CHECKS = struct let enabled = true end
module Unchecked : CHECKS = struct let enabled = false end

(* ------------------------------------------------------------------ *)
(* Operand validation, shared by every [Make_gen] instantiation.

   These live outside the functor and are deliberately [@inline never]:
   in a checked instantiation an emitter pays one direct call here; in
   an unchecked one the guard compiles down to a load-test-branch with
   the call in the never-taken arm, so the emitter's inlined body stays
   a few instructions instead of dragging a dead copy of the validation
   (and its diagnostic-string construction) into every call site. *)

let[@inline never] bad name t =
  Verror.fail
    (Verror.Bad_type (Printf.sprintf "%s.%s" name (Vtype.to_string t)))

(* Cold path: the diagnostic string is built only on failure — the hot
   path tests [Reg.matches_type] inline and never touches the
   instruction name. *)
let[@inline never] bad_reg name t r =
  Verror.fail
    (Verror.Bad_operand
       (Printf.sprintf "%s.%s: register %s has the wrong class" name
          (Vtype.to_string t) (Reg.to_string r)))

let[@inline] chk_reg name t r = if not (Reg.matches_type t r) then bad_reg name t r

let word_ty = function
  | Vtype.I | Vtype.U | Vtype.L | Vtype.UL | Vtype.P -> true
  | _ -> false

let[@inline never] validate_arith g (op : Op.binop) (t : Vtype.t) rd rs1 rs2 =
  Gen.check_open g;
  let ok =
    match op with
    | Op.Add | Op.Sub | Op.Mul | Op.Div -> word_ty t || Vtype.is_float t
    | Op.Mod -> word_ty t
    | Op.And | Op.Or | Op.Xor | Op.Lsh | Op.Rsh -> (
      match t with Vtype.P -> false | _ -> word_ty t)
  in
  if not ok then bad (Op.binop_to_string op) t;
  if not (Reg.matches_type t rd) then bad_reg (Op.binop_to_string op) t rd;
  if not (Reg.matches_type t rs1) then bad_reg (Op.binop_to_string op) t rs1;
  if not (Reg.matches_type t rs2) then bad_reg (Op.binop_to_string op) t rs2

let[@inline never] validate_arith_imm g (op : Op.binop) (t : Vtype.t) rd rs1 =
  Gen.check_open g;
  if Vtype.is_float t then bad (Op.binop_to_string op ^ "i") t;
  if not (word_ty t) then bad (Op.binop_to_string op ^ "i") t;
  if not (Reg.matches_type t rd) then bad_reg (Op.binop_to_string op) t rd;
  if not (Reg.matches_type t rs1) then bad_reg (Op.binop_to_string op) t rs1

let[@inline never] validate_unary g (op : Op.unop) (t : Vtype.t) rd rs =
  Gen.check_open g;
  let ok =
    match op with
    | Op.Com | Op.Not -> (match t with Vtype.P -> false | _ -> word_ty t)
    | Op.Mov -> word_ty t || Vtype.is_float t
    | Op.Neg -> (
      match t with Vtype.P -> false | _ -> word_ty t || Vtype.is_float t)
  in
  if not ok then bad (Op.unop_to_string op) t;
  if not (Reg.matches_type t rd) then bad_reg (Op.unop_to_string op) t rd;
  if not (Reg.matches_type t rs) then bad_reg (Op.unop_to_string op) t rs

let[@inline never] validate_set g (t : Vtype.t) rd =
  Gen.check_open g;
  if not (word_ty t) then bad "set" t;
  chk_reg "set" t rd

let[@inline never] validate_setf g (t : Vtype.t) rd =
  Gen.check_open g;
  if not (Vtype.is_float t) then bad "setf" t;
  chk_reg "setf" t rd

let[@inline never] validate_cvt g ~from ~to_ rd rs =
  Gen.check_open g;
  if not (Op.conversion_ok ~from ~to_) then
    bad (Printf.sprintf "cv%s2" (Vtype.to_string from)) to_;
  chk_reg "cvt" to_ rd;
  chk_reg "cvt" from rs

let[@inline never] validate_mem g name (t : Vtype.t) r base =
  Gen.check_open g;
  (match t with Vtype.V -> bad name t | _ -> ());
  chk_reg name t r;
  chk_reg name Vtype.P base

let[@inline never] validate_mem_reg g name (t : Vtype.t) r base idx =
  Gen.check_open g;
  (match t with Vtype.V -> bad name t | _ -> ());
  chk_reg name t r;
  chk_reg name Vtype.P base;
  chk_reg name Vtype.P idx

module Make_gen (C : CHECKS) (T : Target.S) = struct
  let desc = T.desc
  let checks_enabled = C.enabled

  type gen = Gen.t
  type nonrec code = code

  (* ---------------------------------------------------------------- *)
  (* Lifecycle                                                         *)

  (* Begin generating a function.  [sig_] is the paper's parameter type
     string, e.g. "%i%p"; [base] is the address the code will be
     installed at; [leaf] asserts the function makes no calls
     (V_LEAF); [capacity] is an expected-code-size hint in words,
     forwarded to the code buffer; [buf] recycles a slab buffer instead
     (see {!Gen.create}).  Returns the generation state and the
     registers holding the incoming parameters. *)
  let lambda ?(base = 0) ?(leaf = false) ?capacity ?buf (sig_ : string) : gen * Reg.t array =
    if C.enabled && base land 7 <> 0 then
      Verror.fail (Verror.Bad_operand "base must be 8-aligned");
    let g = Gen.create ~base ?capacity ?buf T.desc in
    g.Gen.leaf <- leaf;
    g.Gen.in_function <- true;
    let tys = Array.of_list (Vtype.parse_signature sig_) in
    let args = T.lambda g tys in
    (g, args)

  (* Finish generation: backpatch prologue/epilogue, place constants,
     resolve jumps (v_end). *)
  let end_gen (g : gen) : code =
    if C.enabled then Gen.check_open g;
    (* close the emit-site provenance table before the target finalizer
       appends the epilogue and FP pool, so those words symbolize as
       "epilogue" rather than extending the last client span *)
    Gen.close_provenance g;
    T.finish g;
    g.Gen.finished <- true;
    {
      gen = g;
      base = g.Gen.base;
      entry_addr = Gen.code_addr g g.Gen.entry_index;
      code_bytes = 4 * Codebuf.length g.Gen.buf;
    }

  (* ---------------------------------------------------------------- *)
  (* Registers, labels, locals                                         *)

  let getreg g ~(cls : [ `Temp | `Var ]) (t : Vtype.t) : Reg.t option =
    Gen.getreg g ~cls ~float:(Vtype.is_float t)

  let getreg_exn g ~cls t =
    match getreg g ~cls t with
    | Some r -> r
    | None ->
      Verror.fail
        (Verror.Registers_exhausted (match cls with `Temp -> "temp" | `Var -> "var"))

  let putreg g r = Gen.putreg g r

  (* Hard-coded register names (section 5.3): T0,T1,... and S0,S1,...
     Constant-foldable and checked against the target's register count. *)
  let treg n = Machdesc.hard_reg T.desc `Temp n
  let sreg n = Machdesc.hard_reg T.desc `Var n

  (* Reclassify a physical register for this function (section 5.3). *)
  let set_reg_class g r (c : [ `Callee | `Caller | `Unavail | `Default ]) =
    Gen.set_reg_class g r
      (match c with
      | `Callee -> Gen.Ocallee
      | `Caller -> Gen.Ocaller
      | `Unavail -> Gen.Ounavail
      | `Default -> Gen.Odefault)

  (* Section 5.3's interrupt-handler scenario in one call: "in an
     interrupt handler all registers are live.  Therefore, for
     correctness, VCODE must treat all registers as callee-saved."
     Every normally caller-saved register is reclassified so the
     backpatched prologue/epilogue saves whatever the handler uses. *)
  let interrupt_mode g =
    Array.iter (fun r -> Gen.set_reg_class g r Gen.Ocallee) T.desc.Machdesc.temps;
    Array.iter (fun r -> Gen.set_reg_class g r Gen.Ocallee) T.desc.Machdesc.ftemps

  let genlabel g = Gen.genlabel g

  (* Route label binds through the target so an interposed peephole
     stage (Make_peephole) can flush its window before the position is
     captured; raw ports delegate straight to [Gen.bind_label]. *)
  let label g l = T.bind_label g l

  (* A local variable on the stack (v_local). *)
  type local = { loc_off : int; loc_ty : Vtype.t }

  let local g (t : Vtype.t) : local =
    let wb = Machdesc.word_bytes T.desc in
    let bytes = Vtype.size ~word_bytes:wb t in
    let off = Gen.alloc_local g ~bytes ~align:(Vtype.align ~word_bytes:wb t) in
    { loc_off = off; loc_ty = t }

  (* A raw block of stack memory (local arrays, buffers). *)
  let local_block g ~bytes ~align : local =
    let off = Gen.alloc_local g ~bytes ~align in
    { loc_off = off; loc_ty = Vtype.P }

  let[@inline] count g k = Gen.count_insn g k

  (* ---------------------------------------------------------------- *)
  (* Generic emitters.  Validation is one guarded call to the shared
     top-level validators.  Destination-register bookkeeping
     ([Gen.note_write]) and instruction counting ([Gen.count_insn])
     live in the backends so every emission path — checked, unchecked,
     or raw [T.*] calls — keeps the prologue save/restore masks and
     statistics correct.  Control-flow emitters below still [count]
     here because ports treat them as multi-word sequences.            *)

  (* Each hot emitter is selected once, at functor-application time:
     the unchecked instantiation binds the port's emitter itself (zero
     interposed frames — [VU.arith] IS [T.arith]), while the checked
     one prepends its validator.  [C.enabled] never appears on the
     per-instruction path. *)

  let arith =
    if not C.enabled then T.arith
    else
      fun g (op : Op.binop) (t : Vtype.t) rd rs1 rs2 ->
        validate_arith g op t rd rs1 rs2;
        T.arith g op t rd rs1 rs2

  let arith_imm =
    if not C.enabled then T.arith_imm
    else
      fun g (op : Op.binop) (t : Vtype.t) rd rs1 imm ->
        validate_arith_imm g op t rd rs1;
        T.arith_imm g op t rd rs1 imm

  (* materialize the address of a local variable/block into [rd] *)
  let local_addr g (l : local) rd =
    arith_imm g Op.Add Vtype.P rd T.desc.Machdesc.sp
      (T.desc.Machdesc.locals_base + l.loc_off)

  let unary =
    if not C.enabled then T.unary
    else
      fun g (op : Op.unop) (t : Vtype.t) rd rs ->
        validate_unary g op t rd rs;
        T.unary g op t rd rs

  let set =
    if not C.enabled then T.set
    else
      fun g (t : Vtype.t) rd imm ->
        validate_set g t rd;
        T.set g t rd imm

  let setf =
    if not C.enabled then T.setf
    else
      fun g (t : Vtype.t) rd v ->
        validate_setf g t rd;
        T.setf g t rd v

  let cvt =
    if not C.enabled then T.cvt
    else
      fun g ~from ~to_ rd rs ->
        validate_cvt g ~from ~to_ rd rs;
        T.cvt g ~from ~to_ rd rs

  (* Memory accesses come in immediate- and register-offset forms.  The
     immediate form is the hot one — it passes the displacement as an
     unboxed int, so steady-state emission allocates nothing.  The
     [Gen.offset]-taking [load]/[store] below are compatibility
     wrappers that dispatch on the variant. *)
  let load_imm =
    if not C.enabled then T.load_imm
    else
      fun g (t : Vtype.t) rd base (off : int) ->
        validate_mem g "ld" t rd base;
        T.load_imm g t rd base off

  let load_reg =
    if not C.enabled then T.load_reg
    else
      fun g (t : Vtype.t) rd base (idx : Reg.t) ->
        validate_mem_reg g "ld" t rd base idx;
        T.load_reg g t rd base idx

  let store_imm =
    if not C.enabled then T.store_imm
    else
      fun g (t : Vtype.t) rv base (off : int) ->
        validate_mem g "st" t rv base;
        T.store_imm g t rv base off

  let store_reg =
    if not C.enabled then T.store_reg
    else
      fun g (t : Vtype.t) rv base (idx : Reg.t) ->
        validate_mem_reg g "st" t rv base idx;
        T.store_reg g t rv base idx

  let load g (t : Vtype.t) rd base (off : Gen.offset) =
    match off with
    | Gen.Oimm i -> load_imm g t rd base i
    | Gen.Oreg r -> load_reg g t rd base r

  let store g (t : Vtype.t) rv base (off : Gen.offset) =
    match off with
    | Gen.Oimm i -> store_imm g t rv base i
    | Gen.Oreg r -> store_reg g t rv base r

  let jump g (t : Gen.jtarget) =
    if C.enabled then Gen.check_open g;
    count g Opk.jmp;
    T.jump g t

  let jal g (t : Gen.jtarget) =
    if C.enabled then begin
      Gen.check_open g;
      if g.Gen.leaf then Verror.fail Verror.Leaf_call
    end;
    g.Gen.made_call <- true;
    count g Opk.jal;
    T.jal g t

  let branch g (c : Op.cond) (t : Vtype.t) rs1 rs2 lab =
    if C.enabled then begin
      Gen.check_open g;
      (match t with
      | Vtype.V -> bad (Op.cond_to_string c) t
      | _ -> if (not (word_ty t)) && not (Vtype.is_float t) then bad (Op.cond_to_string c) t);
      chk_reg "branch" t rs1;
      chk_reg "branch" t rs2
    end;
    count g (Opk.branch c);
    T.branch g c t rs1 rs2 lab

  let branch_imm g (c : Op.cond) (t : Vtype.t) rs1 imm lab =
    if C.enabled then begin
      Gen.check_open g;
      if not (word_ty t) then bad (Op.cond_to_string c ^ "i") t;
      chk_reg "branch" t rs1
    end;
    count g (Opk.branch_imm c);
    T.branch_imm g c t rs1 imm lab

  let ret g (t : Vtype.t) (r : Reg.t option) =
    if C.enabled then begin
      Gen.check_open g;
      match (t, r) with
      | Vtype.V, _ -> ()
      | _, Some r -> chk_reg "ret" t r
      | _, None -> Verror.fail (Verror.Bad_operand "ret: missing value register")
    end;
    count g Opk.ret;
    T.ret g t r

  let nop g =
    if C.enabled then Gen.check_open g;
    count g Opk.nop;
    T.nop g

  (* ---------------------------------------------------------------- *)
  (* Calls with dynamically constructed argument lists                 *)

  let push_arg g (t : Vtype.t) (r : Reg.t) =
    if C.enabled then begin
      Gen.check_open g;
      chk_reg "arg" t r
    end;
    T.push_arg g t r

  let do_call g (target : Gen.jtarget) =
    if C.enabled then begin
      Gen.check_open g;
      if g.Gen.leaf then Verror.fail Verror.Leaf_call
    end;
    g.Gen.made_call <- true;
    count g Opk.call;
    T.do_call g target

  let retval g (t : Vtype.t) (r : Reg.t) =
    if C.enabled then begin
      Gen.check_open g;
      chk_reg "retval" t r
    end;
    count g Opk.retval;
    T.retval g t r

  (* Convenience: a complete call in one step. *)
  let ccall g target ~(args : (Vtype.t * Reg.t) list) ~(ret : (Vtype.t * Reg.t) option) =
    List.iter (fun (t, r) -> push_arg g t r) args;
    do_call g target;
    match ret with None -> () | Some (t, r) -> retval g t r

  (* ---------------------------------------------------------------- *)
  (* Locals access                                                     *)

  let ld_local g (l : local) rd =
    load_imm g l.loc_ty rd T.desc.Machdesc.sp (T.desc.Machdesc.locals_base + l.loc_off)

  let st_local g (l : local) rv =
    store_imm g l.loc_ty rv T.desc.Machdesc.sp (T.desc.Machdesc.locals_base + l.loc_off)

  (* ---------------------------------------------------------------- *)
  (* Portable instruction scheduling (section 5.3)                     *)

  module Sched = struct
    (* v_schedule_delay: emit [branch] with [slot] placed in its delay
       slot when the target has one and [slot] is a single instruction
       with no relocations; otherwise [slot] simply precedes the
       branch. *)
    let schedule_delay g ~(branch : unit -> unit) ~(slot : unit -> unit) =
      (* barrier: the truncate-and-patch surgery below reads buffer
         positions behind the target's back, so an interposed peephole
         window must be flushed first *)
      T.sync g;
      let p0 = Codebuf.length g.Gen.buf in
      let r0 = Gen.reloc_count g and f0 = Gen.fimm_count g in
      slot ();
      let n = Codebuf.length g.Gen.buf - p0 in
      let clean = Gen.reloc_count g = r0 && Gen.fimm_count g = f0 in
      if T.desc.Machdesc.branch_delay_slots = 1 && n = 1 && clean then begin
        let w = Codebuf.get g.Gen.buf p0 in
        Codebuf.truncate g.Gen.buf p0;
        branch ();
        (* the target's branch emitters end with a delay-slot nop *)
        Codebuf.set g.Gen.buf (Codebuf.length g.Gen.buf - 1) w
      end
      else branch ()

    (* v_raw_load: emit [load]; if its result is used within [uses_in]
       VCODE instructions, pad with nops to cover the load delay. *)
    let raw_load g ~(load : unit -> unit) ~uses_in =
      load ();
      let pad = T.desc.Machdesc.load_delay - uses_in in
      for _ = 1 to pad do T.nop g done
  end

  (* ---------------------------------------------------------------- *)
  (* Strength reduction (section 5.4)                                  *)

  module Strength = struct
    let is_pow2 c = c > 0 && c land (c - 1) = 0

    let log2 c =
      let rec go c k = if c = 1 then k else go (c lsr 1) (k + 1) in
      go c 0

    let popcount c =
      let rec go c acc = if c = 0 then acc else go (c lsr 1) (acc + (c land 1)) in
      go c 0

    (* rd <- rs * c using shifts and adds when profitable, otherwise the
       plain multiply.  Never clobbers [rs]. *)
    let mul g (t : Vtype.t) rd rs c =
      let fallback () = arith_imm g Op.Mul t rd rs c in
      if c = 0 then set g t rd 0L
      else if c = 1 then unary g Op.Mov t rd rs
      else if c = -1 then unary g Op.Neg t rd rs
      else
        let neg = c < 0 in
        let c' = abs c in
        let finish () = if neg then unary g Op.Neg t rd rd in
        if c = min_int then fallback ()
        else if is_pow2 c' then begin
          arith_imm g Op.Lsh t rd rs (log2 c');
          finish ()
        end
        else if popcount c' <= 4 then begin
          match getreg g ~cls:`Temp t with
          | None -> fallback ()
          | Some tmp ->
            (* accumulate shifted copies: tmp walks up the set bits *)
            let b0 =
              let rec low c k = if c land 1 = 1 then k else low (c lsr 1) (k + 1) in
              low c' 0
            in
            if b0 = 0 then unary g Op.Mov t tmp rs
            else arith_imm g Op.Lsh t tmp rs b0;
            unary g Op.Mov t rd tmp;
            let prev = ref b0 in
            for b = b0 + 1 to 62 do
              if c' land (1 lsl b) <> 0 then begin
                arith_imm g Op.Lsh t tmp tmp (b - !prev);
                arith g Op.Add t rd rd tmp;
                prev := b
              end
            done;
            putreg g tmp;
            finish ()
        end
        else if is_pow2 (c' + 1) then begin
          (* c = 2^k - 1: rd = (rs << k) - rs *)
          match getreg g ~cls:`Temp t with
          | None -> fallback ()
          | Some tmp ->
            arith_imm g Op.Lsh t tmp rs (log2 (c' + 1));
            arith g Op.Sub t rd tmp rs;
            putreg g tmp;
            finish ()
        end
        else fallback ()

    (* rd <- rs / c with C (truncating) semantics.  Powers of two get the
       shift-with-correction sequence; everything else falls back to the
       divide instruction. *)
    let div g (t : Vtype.t) rd rs c =
      let fallback () = arith_imm g Op.Div t rd rs c in
      let signed = Vtype.is_signed t in
      if c = 1 then unary g Op.Mov t rd rs
      else if c > 1 && is_pow2 c then
        let k = log2 c in
        if not signed then arith_imm g Op.Rsh t rd rs k
        else begin
          match getreg g ~cls:`Temp t with
          | None -> fallback ()
          | Some tmp ->
            let w = T.desc.Machdesc.word_bits in
            (* tmp = rs < 0 ? c-1 : 0, added before the arithmetic shift *)
            arith_imm g Op.Rsh t tmp rs (w - 1);
            arith_imm g Op.Rsh
              (match t with Vtype.I -> Vtype.U | Vtype.L -> Vtype.UL | t -> t)
              tmp tmp (w - k);
            arith g Op.Add t tmp rs tmp;
            arith_imm g Op.Rsh t rd tmp k;
            putreg g tmp
        end
      else fallback ()

    (* rd <- rs mod c (C semantics: sign follows the dividend). *)
    let rem g (t : Vtype.t) rd rs c =
      let signed = Vtype.is_signed t in
      if c > 1 && is_pow2 c && not signed then
        arith_imm g Op.And t rd rs (c - 1)
      else if c > 1 && is_pow2 c then begin
        match getreg g ~cls:`Temp t with
        | None -> arith_imm g Op.Mod t rd rs c
        | Some tmp ->
          div g t tmp rs c;
          arith_imm g Op.Lsh t tmp tmp (log2 c);
          arith g Op.Sub t rd rs tmp;
          putreg g tmp
      end
      else arith_imm g Op.Mod t rd rs c
  end

  (* ---------------------------------------------------------------- *)
  (* Unlimited virtual registers (section 6.2)                         *)

  (* The paper describes this as an optional extension layer under
     construction: "preliminary results indicate that the addition of
     this (optional) support would increase code generation cost by
     roughly a factor of two".  The layer hands out as many registers
     as the client asks for; the first ones map to physical registers,
     the rest live in stack slots and are shuttled through a small set
     of reserved physical registers around each operation.  The factor-
     of-two claim is measured by the "ablation-vregs" bench. *)
  module Virt = struct
    (* outer (physical) emitters, before shadowing *)
    let g_arith = arith
    let g_arith_imm = arith_imm
    let g_unary = unary
    let g_set = set
    let g_branch = branch
    let g_branch_imm = branch_imm
    let g_load_imm = load_imm
    let g_store_imm = store_imm
    let g_ret = ret

    type place = Phys of Reg.t | Slot of local

    type vreg = { vid : int; vty : Vtype.t }

    type t = {
      vg : gen;
      mutable places : place array; (* indexed by vid *)
      mutable nv : int;
      (* reserved shuttle registers for spilled operands *)
      sh0 : Reg.t;
      sh1 : Reg.t;
      sh2 : Reg.t;
    }

    (* Begin using virtual registers on [g].  Reserves three physical
       temporaries as shuttles; everything else left in the allocator is
       handed to virtual registers on demand. *)
    let start (g : gen) : t =
      let grab () = getreg_exn g ~cls:`Temp Vtype.I in
      let sh0 = grab () and sh1 = grab () and sh2 = grab () in
      { vg = g; places = Array.make 16 (Phys sh0); nv = 0; sh0; sh1; sh2 }

    let vreg (s : t) (ty : Vtype.t) : vreg =
      if Vtype.is_float ty then
        Verror.fail (Verror.Unsupported "virtual registers are integer-class");
      let place =
        match getreg s.vg ~cls:`Temp ty with
        | Some r -> Phys r
        | None -> (
          match getreg s.vg ~cls:`Var ty with
          | Some r ->
            Gen.note_write s.vg r;
            Phys r
          | None -> Slot (local s.vg ty))
      in
      if s.nv = Array.length s.places then begin
        let a = Array.make (2 * s.nv) place in
        Array.blit s.places 0 a 0 s.nv;
        s.places <- a
      end;
      s.places.(s.nv) <- place;
      s.nv <- s.nv + 1;
      { vid = s.nv - 1; vty = ty }

    (* bring a virtual register's value into a physical register *)
    let read (s : t) (v : vreg) (shuttle : Reg.t) : Reg.t =
      match s.places.(v.vid) with
      | Phys r -> r
      | Slot l ->
        g_load_imm s.vg l.loc_ty shuttle T.desc.Machdesc.sp
          (T.desc.Machdesc.locals_base + l.loc_off);
        shuttle

    (* the physical register a result should be computed into *)
    let write_reg (s : t) (v : vreg) : Reg.t =
      match s.places.(v.vid) with Phys r -> r | Slot _ -> s.sh0

    (* commit a result computed into [write_reg] *)
    let commit (s : t) (v : vreg) =
      match s.places.(v.vid) with
      | Phys _ -> ()
      | Slot l ->
        g_store_imm s.vg l.loc_ty s.sh0 T.desc.Machdesc.sp
          (T.desc.Machdesc.locals_base + l.loc_off)

    let arith (s : t) op ty (d : vreg) (a : vreg) (b : vreg) =
      let ra = read s a s.sh1 in
      let rb = read s b s.sh2 in
      g_arith s.vg op ty (write_reg s d) ra rb;
      commit s d

    let arith_imm (s : t) op ty (d : vreg) (a : vreg) imm =
      let ra = read s a s.sh1 in
      g_arith_imm s.vg op ty (write_reg s d) ra imm;
      commit s d

    let unary (s : t) op ty (d : vreg) (a : vreg) =
      let ra = read s a s.sh1 in
      g_unary s.vg op ty (write_reg s d) ra;
      commit s d

    let set (s : t) ty (d : vreg) imm =
      g_set s.vg ty (write_reg s d) imm;
      commit s d

    let branch (s : t) c ty (a : vreg) (b : vreg) lab =
      let ra = read s a s.sh1 in
      let rb = read s b s.sh2 in
      g_branch s.vg c ty ra rb lab

    let branch_imm (s : t) c ty (a : vreg) imm lab =
      let ra = read s a s.sh1 in
      g_branch_imm s.vg c ty ra imm lab

    (* move between the virtual and physical worlds *)
    let mov_in (s : t) ty (d : vreg) (src : Reg.t) =
      g_unary s.vg Op.Mov ty (write_reg s d) src;
      commit s d

    let mov_out (s : t) ty (dst : Reg.t) (a : vreg) =
      let ra = read s a s.sh1 in
      g_unary s.vg Op.Mov ty dst ra

    let ret (s : t) ty (a : vreg) =
      let ra = read s a s.sh1 in
      g_ret s.vg ty (Some ra)

    (* how many virtual registers ended up spilled (for tests) *)
    let spilled (s : t) =
      Array.fold_left
        (fun acc p -> match p with Slot _ -> acc + 1 | Phys _ -> acc)
        0
        (Array.sub s.places 0 s.nv)
  end

  (* ---------------------------------------------------------------- *)
  (* Extensible instructions (section 5.4)                             *)

  module Ext = struct
    type emitter = Gen.t -> Reg.t array -> unit
    type emitter_imm = Gen.t -> Reg.t array -> int -> unit

    let machine_table : (string, emitter) Hashtbl.t =
      let h = Hashtbl.create 31 in
      List.iter (fun (n, f) -> Hashtbl.replace h n f) T.extra_insns;
      h

    let machine_imm_table : (string, emitter_imm) Hashtbl.t =
      let h = Hashtbl.create 31 in
      List.iter (fun (n, f) -> Hashtbl.replace h n f) T.extra_imm_insns;
      h

    let table : (string * Vtype.t, emitter) Hashtbl.t = Hashtbl.create 31
    let imm_table : (string * Vtype.t, emitter_imm) Hashtbl.t = Hashtbl.create 31

    (* Register an extension instruction directly. *)
    let define ~name ~(ty : Vtype.t) (f : emitter) =
      Hashtbl.replace table (name, ty) f

    (* Register the immediate form (the paper's trailing "i"). *)
    let define_imm ~name ~(ty : Vtype.t) (f : emitter_imm) =
      Hashtbl.replace imm_table (name, ty) f

    let defined ~name ~ty = Hashtbl.mem table (name, ty)
    let defined_imm ~name ~ty = Hashtbl.mem imm_table (name, ty)

    (* Emit a previously registered extension instruction. *)
    let emit g ~name ~(ty : Vtype.t) (args : Reg.t array) =
      match Hashtbl.find_opt table (name, ty) with
      | Some f ->
        count g Opk.ext;
        f g args
      | None ->
        Verror.fail
          (Verror.Spec (Printf.sprintf "extension v_%s%s not defined" name (Vtype.to_string ty)))

    (* Emit the immediate form: v_<name><ty>i. *)
    let emit_imm g ~name ~(ty : Vtype.t) (args : Reg.t array) imm =
      match Hashtbl.find_opt imm_table (name, ty) with
      | Some f ->
        count g Opk.ext;
        f g args imm
      | None ->
        Verror.fail
          (Verror.Spec
             (Printf.sprintf "extension v_%s%si not defined" name (Vtype.to_string ty)))

    (* Compile a [seq] implementation to an emitter.  Parameters are
       positional into the call-time register array; [scratch] operands
       allocate a temp register for the duration. *)
    let compile_seq (params : string list) (ty : Vtype.t) (body : Spec_lang.vinsn list) :
        emitter =
      let index p =
        let rec go i = function
          | [] -> Verror.fail (Verror.Spec (Printf.sprintf "unknown parameter %s" p))
          | q :: _ when q = p -> i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 params
      in
      (* pre-resolve operand lookups *)
      let resolve (o : Spec_lang.operand) : [ `Arg of int | `Imm of int | `Scratch ] =
        match o with
        | Spec_lang.Param p -> `Arg (index p)
        | Spec_lang.Imm i -> `Imm i
        | Spec_lang.Scratch -> `Scratch
      in
      let body =
        List.map (fun (v : Spec_lang.vinsn) -> (v.Spec_lang.vop, List.map resolve v.operands)) body
      in
      fun g (args : Reg.t array) ->
        let scratch = ref None in
        let reg = function
          | `Arg i -> args.(i)
          | `Scratch -> (
            match !scratch with
            | Some r -> r
            | None ->
              let r = getreg_exn g ~cls:`Temp ty in
              scratch := Some r;
              r)
          | `Imm _ -> Verror.fail (Verror.Spec "immediate used where register expected")
        in
        let binop op = function
          | [ d; a; `Imm i ] -> arith_imm g op ty (reg d) (reg a) i
          | [ d; a; b ] -> arith g op ty (reg d) (reg a) (reg b)
          | _ -> Verror.fail (Verror.Spec "binary op needs 3 operands")
        in
        let unop op = function
          | [ d; s ] -> unary g op ty (reg d) (reg s)
          | _ -> Verror.fail (Verror.Spec "unary op needs 2 operands")
        in
        List.iter
          (fun (vop, operands) ->
            match vop with
            | "add" -> binop Op.Add operands
            | "sub" -> binop Op.Sub operands
            | "mul" -> binop Op.Mul operands
            | "div" -> binop Op.Div operands
            | "mod" -> binop Op.Mod operands
            | "and" -> binop Op.And operands
            | "or" -> binop Op.Or operands
            | "xor" -> binop Op.Xor operands
            | "lsh" -> binop Op.Lsh operands
            | "rsh" -> binop Op.Rsh operands
            | "mov" -> unop Op.Mov operands
            | "neg" -> unop Op.Neg operands
            | "com" -> unop Op.Com operands
            | "not" -> unop Op.Not operands
            | "set" -> (
              match operands with
              | [ d; `Imm i ] -> set g ty (reg d) (Int64.of_int i)
              | _ -> Verror.fail (Verror.Spec "set needs (reg, imm)"))
            | "nop" -> nop g
            | other -> Verror.fail (Verror.Spec (Printf.sprintf "unknown seq op %S" other)))
          body;
        match !scratch with Some r -> putreg g r | None -> ()

    (* Load a textual specification (the paper's one-line-per-family
       mechanism).  Machine implementations resolve against the target's
       [extra_insns]; [seq] implementations work on every target. *)
    let load_spec (s : string) =
      let specs = Spec_lang.parse s in
      List.iter
        (fun (sp : Spec_lang.t) ->
          List.iter
            (fun (e : Spec_lang.entry) ->
              List.iter
                (fun ty ->
                  let em =
                    match e.Spec_lang.impl with
                    | Spec_lang.Machine m -> (
                      match Hashtbl.find_opt machine_table m with
                      | Some f -> f
                      | None ->
                        Verror.fail
                          (Verror.Spec
                             (Printf.sprintf "machine instruction %S not provided by target %s"
                                m T.desc.Machdesc.name)))
                    | Spec_lang.Seq body -> compile_seq sp.Spec_lang.params ty body
                  in
                  define ~name:sp.Spec_lang.name ~ty em;
                  (* the optional immediate implementation *)
                  match e.Spec_lang.imm_impl with
                  | None -> ()
                  | Some (Spec_lang.Machine m) -> (
                    match Hashtbl.find_opt machine_imm_table m with
                    | Some f -> define_imm ~name:sp.Spec_lang.name ~ty f
                    | None ->
                      Verror.fail
                        (Verror.Spec
                           (Printf.sprintf
                              "immediate machine instruction %S not provided by target %s" m
                              T.desc.Machdesc.name)))
                  | Some (Spec_lang.Seq _) ->
                    Verror.fail
                      (Verror.Spec "immediate implementations must be machine instructions"))
                e.Spec_lang.tys)
            sp.Spec_lang.entries)
        specs
  end

  (* ---------------------------------------------------------------- *)
  (* Debugging support                                                 *)

  (* Disassemble the generated buffer (the paper laments the lack of a
     symbolic debugger for dynamic code; a disassembler over the emitted
     words is the first half of one). *)
  let dump (g : gen) : string list =
    let words = Codebuf.to_array g.Gen.buf in
    Array.to_list
      (Array.mapi
         (fun i w ->
           let addr = g.Gen.base + (4 * i) in
           Printf.sprintf "0x%06x:  %08x  %s" addr w (T.disasm ~word:w ~addr))
         words)

  let pp_dump fmt g = List.iter (fun l -> Fmt.pf fmt "%s@." l) (dump g)

  (* ---------------------------------------------------------------- *)
  (* Paper-style flat instruction names                                *)

  (* One function per VCODE instruction, named as in the paper: base op,
     type letter, trailing [i] for immediate forms (v_addii is [addii]).
     Immediates are OCaml ints for convenience. *)
  module Names = struct

    (* arithmetic *)
    let addi g d a b = arith g Op.Add Vtype.I d a b
    let addu g d a b = arith g Op.Add Vtype.U d a b
    let addl g d a b = arith g Op.Add Vtype.L d a b
    let addul g d a b = arith g Op.Add Vtype.UL d a b
    let addp g d a b = arith g Op.Add Vtype.P d a b
    let addf g d a b = arith g Op.Add Vtype.F d a b
    let addd g d a b = arith g Op.Add Vtype.D d a b
    let addii g d a i = arith_imm g Op.Add Vtype.I d a i
    let addui g d a i = arith_imm g Op.Add Vtype.U d a i
    let addli g d a i = arith_imm g Op.Add Vtype.L d a i
    let adduli g d a i = arith_imm g Op.Add Vtype.UL d a i
    let addpi g d a i = arith_imm g Op.Add Vtype.P d a i

    let subi g d a b = arith g Op.Sub Vtype.I d a b
    let subu g d a b = arith g Op.Sub Vtype.U d a b
    let subl g d a b = arith g Op.Sub Vtype.L d a b
    let subul g d a b = arith g Op.Sub Vtype.UL d a b
    let subp g d a b = arith g Op.Sub Vtype.P d a b
    let subf g d a b = arith g Op.Sub Vtype.F d a b
    let subd g d a b = arith g Op.Sub Vtype.D d a b
    let subii g d a i = arith_imm g Op.Sub Vtype.I d a i
    let subui g d a i = arith_imm g Op.Sub Vtype.U d a i
    let subli g d a i = arith_imm g Op.Sub Vtype.L d a i
    let subuli g d a i = arith_imm g Op.Sub Vtype.UL d a i
    let subpi g d a i = arith_imm g Op.Sub Vtype.P d a i

    let muli g d a b = arith g Op.Mul Vtype.I d a b
    let mulu g d a b = arith g Op.Mul Vtype.U d a b
    let mull g d a b = arith g Op.Mul Vtype.L d a b
    let mulul g d a b = arith g Op.Mul Vtype.UL d a b
    let mulf g d a b = arith g Op.Mul Vtype.F d a b
    let muld g d a b = arith g Op.Mul Vtype.D d a b
    let mulii g d a i = arith_imm g Op.Mul Vtype.I d a i
    let mului g d a i = arith_imm g Op.Mul Vtype.U d a i
    let mulli g d a i = arith_imm g Op.Mul Vtype.L d a i
    let mululi g d a i = arith_imm g Op.Mul Vtype.UL d a i

    let divi g d a b = arith g Op.Div Vtype.I d a b
    let divu g d a b = arith g Op.Div Vtype.U d a b
    let divl g d a b = arith g Op.Div Vtype.L d a b
    let divul g d a b = arith g Op.Div Vtype.UL d a b
    let divf g d a b = arith g Op.Div Vtype.F d a b
    let divd g d a b = arith g Op.Div Vtype.D d a b
    let divii g d a i = arith_imm g Op.Div Vtype.I d a i
    let divui g d a i = arith_imm g Op.Div Vtype.U d a i
    let divli g d a i = arith_imm g Op.Div Vtype.L d a i
    let divuli g d a i = arith_imm g Op.Div Vtype.UL d a i

    let modi g d a b = arith g Op.Mod Vtype.I d a b
    let modu g d a b = arith g Op.Mod Vtype.U d a b
    let modl g d a b = arith g Op.Mod Vtype.L d a b
    let modul g d a b = arith g Op.Mod Vtype.UL d a b
    let modii g d a i = arith_imm g Op.Mod Vtype.I d a i
    let modui g d a i = arith_imm g Op.Mod Vtype.U d a i
    let modli g d a i = arith_imm g Op.Mod Vtype.L d a i
    let moduli g d a i = arith_imm g Op.Mod Vtype.UL d a i

    let andi g d a b = arith g Op.And Vtype.I d a b
    let andu g d a b = arith g Op.And Vtype.U d a b
    let andl g d a b = arith g Op.And Vtype.L d a b
    let andul g d a b = arith g Op.And Vtype.UL d a b
    let andii g d a i = arith_imm g Op.And Vtype.I d a i
    let andui g d a i = arith_imm g Op.And Vtype.U d a i
    let andli g d a i = arith_imm g Op.And Vtype.L d a i
    let anduli g d a i = arith_imm g Op.And Vtype.UL d a i

    let ori g d a b = arith g Op.Or Vtype.I d a b
    let oru g d a b = arith g Op.Or Vtype.U d a b
    let orl g d a b = arith g Op.Or Vtype.L d a b
    let orul g d a b = arith g Op.Or Vtype.UL d a b
    let orii g d a i = arith_imm g Op.Or Vtype.I d a i
    let orui g d a i = arith_imm g Op.Or Vtype.U d a i
    let orli g d a i = arith_imm g Op.Or Vtype.L d a i
    let oruli g d a i = arith_imm g Op.Or Vtype.UL d a i

    let xori g d a b = arith g Op.Xor Vtype.I d a b
    let xoru g d a b = arith g Op.Xor Vtype.U d a b
    let xorl g d a b = arith g Op.Xor Vtype.L d a b
    let xorul g d a b = arith g Op.Xor Vtype.UL d a b
    let xorii g d a i = arith_imm g Op.Xor Vtype.I d a i
    let xorui g d a i = arith_imm g Op.Xor Vtype.U d a i
    let xorli g d a i = arith_imm g Op.Xor Vtype.L d a i
    let xoruli g d a i = arith_imm g Op.Xor Vtype.UL d a i

    let lshi g d a b = arith g Op.Lsh Vtype.I d a b
    let lshu g d a b = arith g Op.Lsh Vtype.U d a b
    let lshl g d a b = arith g Op.Lsh Vtype.L d a b
    let lshul g d a b = arith g Op.Lsh Vtype.UL d a b
    let lshii g d a i = arith_imm g Op.Lsh Vtype.I d a i
    let lshui g d a i = arith_imm g Op.Lsh Vtype.U d a i
    let lshli g d a i = arith_imm g Op.Lsh Vtype.L d a i
    let lshuli g d a i = arith_imm g Op.Lsh Vtype.UL d a i

    let rshi g d a b = arith g Op.Rsh Vtype.I d a b
    let rshu g d a b = arith g Op.Rsh Vtype.U d a b
    let rshl g d a b = arith g Op.Rsh Vtype.L d a b
    let rshul g d a b = arith g Op.Rsh Vtype.UL d a b
    let rshii g d a i = arith_imm g Op.Rsh Vtype.I d a i
    let rshui g d a i = arith_imm g Op.Rsh Vtype.U d a i
    let rshli g d a i = arith_imm g Op.Rsh Vtype.L d a i
    let rshuli g d a i = arith_imm g Op.Rsh Vtype.UL d a i

    (* unary *)
    let comi g d s = unary g Op.Com Vtype.I d s
    let comu g d s = unary g Op.Com Vtype.U d s
    let coml g d s = unary g Op.Com Vtype.L d s
    let comul g d s = unary g Op.Com Vtype.UL d s
    let noti g d s = unary g Op.Not Vtype.I d s
    let notu g d s = unary g Op.Not Vtype.U d s
    let notl g d s = unary g Op.Not Vtype.L d s
    let notul g d s = unary g Op.Not Vtype.UL d s
    let movi g d s = unary g Op.Mov Vtype.I d s
    let movu g d s = unary g Op.Mov Vtype.U d s
    let movl g d s = unary g Op.Mov Vtype.L d s
    let movul g d s = unary g Op.Mov Vtype.UL d s
    let movp g d s = unary g Op.Mov Vtype.P d s
    let movf g d s = unary g Op.Mov Vtype.F d s
    let movd g d s = unary g Op.Mov Vtype.D d s
    let negi g d s = unary g Op.Neg Vtype.I d s
    let negu g d s = unary g Op.Neg Vtype.U d s
    let negl g d s = unary g Op.Neg Vtype.L d s
    let negul g d s = unary g Op.Neg Vtype.UL d s
    let negf g d s = unary g Op.Neg Vtype.F d s
    let negd g d s = unary g Op.Neg Vtype.D d s

    (* constants *)
    let seti g d i = set g Vtype.I d (Int64.of_int i)
    let setu g d i = set g Vtype.U d (Int64.of_int i)
    let setl g d i = set g Vtype.L d (Int64.of_int i)
    let setul g d i = set g Vtype.UL d (Int64.of_int i)
    let setp g d i = set g Vtype.P d (Int64.of_int i)
    let setf_ g d v = setf g Vtype.F d v
    let setd g d v = setf g Vtype.D d v

    (* conversions, named cv<from>2<to> *)
    let cvi2u g d s = cvt g ~from:Vtype.I ~to_:Vtype.U d s
    let cvi2l g d s = cvt g ~from:Vtype.I ~to_:Vtype.L d s
    let cvi2ul g d s = cvt g ~from:Vtype.I ~to_:Vtype.UL d s
    let cvi2f g d s = cvt g ~from:Vtype.I ~to_:Vtype.F d s
    let cvi2d g d s = cvt g ~from:Vtype.I ~to_:Vtype.D d s
    let cvu2i g d s = cvt g ~from:Vtype.U ~to_:Vtype.I d s
    let cvu2l g d s = cvt g ~from:Vtype.U ~to_:Vtype.L d s
    let cvu2ul g d s = cvt g ~from:Vtype.U ~to_:Vtype.UL d s
    let cvu2d g d s = cvt g ~from:Vtype.U ~to_:Vtype.D d s
    let cvl2i g d s = cvt g ~from:Vtype.L ~to_:Vtype.I d s
    let cvl2u g d s = cvt g ~from:Vtype.L ~to_:Vtype.U d s
    let cvl2ul g d s = cvt g ~from:Vtype.L ~to_:Vtype.UL d s
    let cvl2f g d s = cvt g ~from:Vtype.L ~to_:Vtype.F d s
    let cvl2d g d s = cvt g ~from:Vtype.L ~to_:Vtype.D d s
    let cvul2i g d s = cvt g ~from:Vtype.UL ~to_:Vtype.I d s
    let cvul2u g d s = cvt g ~from:Vtype.UL ~to_:Vtype.U d s
    let cvul2l g d s = cvt g ~from:Vtype.UL ~to_:Vtype.L d s
    let cvul2p g d s = cvt g ~from:Vtype.UL ~to_:Vtype.P d s
    let cvp2ul g d s = cvt g ~from:Vtype.P ~to_:Vtype.UL d s
    let cvp2l g d s = cvt g ~from:Vtype.P ~to_:Vtype.L d s
    let cvf2i g d s = cvt g ~from:Vtype.F ~to_:Vtype.I d s
    let cvf2l g d s = cvt g ~from:Vtype.F ~to_:Vtype.L d s
    let cvf2d g d s = cvt g ~from:Vtype.F ~to_:Vtype.D d s
    let cvd2i g d s = cvt g ~from:Vtype.D ~to_:Vtype.I d s
    let cvd2l g d s = cvt g ~from:Vtype.D ~to_:Vtype.L d s
    let cvd2f g d s = cvt g ~from:Vtype.D ~to_:Vtype.F d s

    (* memory: register-indexed and immediate-offset forms.  These go
       straight to the specialized emitters so the offset never has to
       be boxed into a [Gen.offset] variant. *)
    let ldc g d b o = load_reg g Vtype.C d b o
    let lduc g d b o = load_reg g Vtype.UC d b o
    let lds g d b o = load_reg g Vtype.S d b o
    let ldus g d b o = load_reg g Vtype.US d b o
    let ldi g d b o = load_reg g Vtype.I d b o
    let ldu g d b o = load_reg g Vtype.U d b o
    let ldl g d b o = load_reg g Vtype.L d b o
    let ldul g d b o = load_reg g Vtype.UL d b o
    let ldp g d b o = load_reg g Vtype.P d b o
    let ldf g d b o = load_reg g Vtype.F d b o
    let ldd g d b o = load_reg g Vtype.D d b o
    let ldci g d b o = load_imm g Vtype.C d b o
    let lduci g d b o = load_imm g Vtype.UC d b o
    let ldsi g d b o = load_imm g Vtype.S d b o
    let ldusi g d b o = load_imm g Vtype.US d b o
    let ldii g d b o = load_imm g Vtype.I d b o
    let ldui g d b o = load_imm g Vtype.U d b o
    let ldli g d b o = load_imm g Vtype.L d b o
    let lduli g d b o = load_imm g Vtype.UL d b o
    let ldpi g d b o = load_imm g Vtype.P d b o
    let ldfi g d b o = load_imm g Vtype.F d b o
    let lddi g d b o = load_imm g Vtype.D d b o

    let stc g v b o = store_reg g Vtype.C v b o
    let stuc g v b o = store_reg g Vtype.UC v b o
    let sts g v b o = store_reg g Vtype.S v b o
    let stus g v b o = store_reg g Vtype.US v b o
    let sti g v b o = store_reg g Vtype.I v b o
    let stu g v b o = store_reg g Vtype.U v b o
    let stl g v b o = store_reg g Vtype.L v b o
    let stul g v b o = store_reg g Vtype.UL v b o
    let stp g v b o = store_reg g Vtype.P v b o
    let stf g v b o = store_reg g Vtype.F v b o
    let std g v b o = store_reg g Vtype.D v b o
    let stci g v b o = store_imm g Vtype.C v b o
    let stuci g v b o = store_imm g Vtype.UC v b o
    let stsi g v b o = store_imm g Vtype.S v b o
    let stusi g v b o = store_imm g Vtype.US v b o
    let stii g v b o = store_imm g Vtype.I v b o
    let stui g v b o = store_imm g Vtype.U v b o
    let stli g v b o = store_imm g Vtype.L v b o
    let stuli g v b o = store_imm g Vtype.UL v b o
    let stpi g v b o = store_imm g Vtype.P v b o
    let stfi g v b o = store_imm g Vtype.F v b o
    let stdi g v b o = store_imm g Vtype.D v b o

    (* branches *)
    let blti g a b l = branch g Op.Lt Vtype.I a b l
    let bltu g a b l = branch g Op.Lt Vtype.U a b l
    let bltl g a b l = branch g Op.Lt Vtype.L a b l
    let bltul g a b l = branch g Op.Lt Vtype.UL a b l
    let bltp g a b l = branch g Op.Lt Vtype.P a b l
    let bltf g a b l = branch g Op.Lt Vtype.F a b l
    let bltd g a b l = branch g Op.Lt Vtype.D a b l
    let blei g a b l = branch g Op.Le Vtype.I a b l
    let bleu g a b l = branch g Op.Le Vtype.U a b l
    let blel g a b l = branch g Op.Le Vtype.L a b l
    let bleul g a b l = branch g Op.Le Vtype.UL a b l
    let blep g a b l = branch g Op.Le Vtype.P a b l
    let blef g a b l = branch g Op.Le Vtype.F a b l
    let bled g a b l = branch g Op.Le Vtype.D a b l
    let bgti g a b l = branch g Op.Gt Vtype.I a b l
    let bgtu g a b l = branch g Op.Gt Vtype.U a b l
    let bgtl g a b l = branch g Op.Gt Vtype.L a b l
    let bgtul g a b l = branch g Op.Gt Vtype.UL a b l
    let bgtp g a b l = branch g Op.Gt Vtype.P a b l
    let bgtf g a b l = branch g Op.Gt Vtype.F a b l
    let bgtd g a b l = branch g Op.Gt Vtype.D a b l
    let bgei g a b l = branch g Op.Ge Vtype.I a b l
    let bgeu g a b l = branch g Op.Ge Vtype.U a b l
    let bgel g a b l = branch g Op.Ge Vtype.L a b l
    let bgeul g a b l = branch g Op.Ge Vtype.UL a b l
    let bgep g a b l = branch g Op.Ge Vtype.P a b l
    let bgef g a b l = branch g Op.Ge Vtype.F a b l
    let bged g a b l = branch g Op.Ge Vtype.D a b l
    let beqi g a b l = branch g Op.Eq Vtype.I a b l
    let bequ g a b l = branch g Op.Eq Vtype.U a b l
    let beql g a b l = branch g Op.Eq Vtype.L a b l
    let bequl g a b l = branch g Op.Eq Vtype.UL a b l
    let beqp g a b l = branch g Op.Eq Vtype.P a b l
    let beqf g a b l = branch g Op.Eq Vtype.F a b l
    let beqd g a b l = branch g Op.Eq Vtype.D a b l
    let bnei g a b l = branch g Op.Ne Vtype.I a b l
    let bneu g a b l = branch g Op.Ne Vtype.U a b l
    let bnel g a b l = branch g Op.Ne Vtype.L a b l
    let bneul g a b l = branch g Op.Ne Vtype.UL a b l
    let bnep g a b l = branch g Op.Ne Vtype.P a b l
    let bnef g a b l = branch g Op.Ne Vtype.F a b l
    let bned g a b l = branch g Op.Ne Vtype.D a b l

    let bltii g a i l = branch_imm g Op.Lt Vtype.I a i l
    let bltui g a i l = branch_imm g Op.Lt Vtype.U a i l
    let bltli g a i l = branch_imm g Op.Lt Vtype.L a i l
    let bltuli g a i l = branch_imm g Op.Lt Vtype.UL a i l
    let bltpi g a i l = branch_imm g Op.Lt Vtype.P a i l
    let bleii g a i l = branch_imm g Op.Le Vtype.I a i l
    let bleui g a i l = branch_imm g Op.Le Vtype.U a i l
    let bleli g a i l = branch_imm g Op.Le Vtype.L a i l
    let bleuli g a i l = branch_imm g Op.Le Vtype.UL a i l
    let blepi g a i l = branch_imm g Op.Le Vtype.P a i l
    let bgtii g a i l = branch_imm g Op.Gt Vtype.I a i l
    let bgtui g a i l = branch_imm g Op.Gt Vtype.U a i l
    let bgtli g a i l = branch_imm g Op.Gt Vtype.L a i l
    let bgtuli g a i l = branch_imm g Op.Gt Vtype.UL a i l
    let bgtpi g a i l = branch_imm g Op.Gt Vtype.P a i l
    let bgeii g a i l = branch_imm g Op.Ge Vtype.I a i l
    let bgeui g a i l = branch_imm g Op.Ge Vtype.U a i l
    let bgeli g a i l = branch_imm g Op.Ge Vtype.L a i l
    let bgeuli g a i l = branch_imm g Op.Ge Vtype.UL a i l
    let bgepi g a i l = branch_imm g Op.Ge Vtype.P a i l
    let beqii g a i l = branch_imm g Op.Eq Vtype.I a i l
    let beqni g a i l = branch_imm g Op.Eq Vtype.U a i l
    let beqli g a i l = branch_imm g Op.Eq Vtype.L a i l
    let bequli g a i l = branch_imm g Op.Eq Vtype.UL a i l
    let beqpi g a i l = branch_imm g Op.Eq Vtype.P a i l
    let bneii g a i l = branch_imm g Op.Ne Vtype.I a i l
    let bneui g a i l = branch_imm g Op.Ne Vtype.U a i l
    let bneli g a i l = branch_imm g Op.Ne Vtype.L a i l
    let bneuli g a i l = branch_imm g Op.Ne Vtype.UL a i l
    let bnepi g a i l = branch_imm g Op.Ne Vtype.P a i l

    (* returns *)
    let retv g = ret g Vtype.V None
    let reti g r = ret g Vtype.I (Some r)
    let retu g r = ret g Vtype.U (Some r)
    let retl g r = ret g Vtype.L (Some r)
    let retul g r = ret g Vtype.UL (Some r)
    let retp g r = ret g Vtype.P (Some r)
    let retf g r = ret g Vtype.F (Some r)
    let retd g r = ret g Vtype.D (Some r)

    (* jumps: to label, register, absolute address *)
    let jv g l = jump g (Gen.Jlabel l)
    let jr g r = jump g (Gen.Jreg r)
    let jpi g a = jump g (Gen.Jaddr a)
    let jalv g l = jal g (Gen.Jlabel l)
    let jalr g r = jal g (Gen.Jreg r)
    let jalpi g a = jal g (Gen.Jaddr a)
  end
end

(* ------------------------------------------------------------------ *)
(* Composable peephole stage                                           *)

(* [Make_peephole (T)] is a [Target.S] that wraps a raw port with a
   sliding-window peephole pass, so any instantiation becomes
   [Make_gen (C) (Make_peephole (Port))] with zero client changes.

   The window ({!Peepwin}) is pure metadata about the last few emitted
   instructions: every emitter still writes straight into the code
   buffer, and a flush just forgets the metadata — no word moves, no
   allocation — so the paper's O(labels + jumps) space bound is
   untouched.  Four rewrite classes:

   - redundant moves: [mov r,r] and moves made redundant by a tracked
     copy fact are skipped before encoding;
   - immediate fusion: [set rt,k ; op rd,rs,rt] with [rd = rt] (the
     constant dies) retires the set and re-emits as op-immediate when
     the port encodes it in one instruction (or strength reduction
     applies);
   - strength reduction: mul/div/mod by constant powers of two become
     shifts/masks, small mul constants become shift-add pairs — on
     ports whose mul/div go through multi-word synthesis or helper
     calls this removes whole sequences;
   - delay-slot filling (MIPS/SPARC): the last independent single-word
     instruction is moved into the branch delay slot in place of the
     port's nop, with the branch relocation site and provenance spans
     shifted to the post-surgery indices.

   Safety protocol: the window flushes at every label bind
   ([bind_label]), before external buffer surgery ([sync]), and resets
   whenever the staleness check at each emitter entry sees that the
   buffer tail no longer matches the top record (any bypass emission —
   extension instructions, a port's internal truncate — is therefore
   automatically safe, just unoptimized). *)
module Make_peephole (T : Target.S) : Target.S = struct
  let desc = T.desc
  let scratch_packed = Reg.to_int T.desc.Machdesc.scratch

  (* The port's delay-slot nop encoding, derived once by emitting a nop
     into a throwaway generator.  Used to recognize "branch word +
     slot nop" tails without knowing the port's encodings. *)
  let slot_nop_word =
    if T.desc.Machdesc.branch_delay_slots = 1 then begin
      let g = Gen.create T.desc in
      T.nop g;
      Codebuf.get g.Gen.buf 0
    end
    else 0

  (* Staleness check: run at every wrapped emitter entry.  If anything
     appended to or truncated the buffer without going through this
     stage, the record no longer ends at the buffer length and the
     metadata is dropped.  (In-place patches without a length change
     only happen in [apply_reloc], reached via [bind_label]/[finish],
     both of which reset the window first.) *)
  let[@inline] check_sync g =
    let w = g.Gen.peep in
    if w.Peepwin.ko <> 0 && w.Peepwin.end_ <> Codebuf.length g.Gen.buf then
      Peepwin.reset w

  (* Record the instruction just emitted at [start] when it is a single
     word; multi-word sequences are unrecordable and flush instead. *)
  let[@inline] finish1 g ~start ~kind ~def ~u1 ~u2 ~opk =
    let w = g.Gen.peep in
    let len = Codebuf.length g.Gen.buf in
    if len - start = 1 then Peepwin.push w ~start ~end_:len ~kind ~def ~u1 ~u2 ~opk
    else Peepwin.flush w

  let[@inline] do_arith g op t rd rs1 rs2 =
    let w = g.Gen.peep in
    Peepwin.on_def w (Reg.to_int rd);
    let start = Codebuf.length g.Gen.buf in
    T.arith g op t rd rs1 rs2;
    finish1 g ~start ~kind:Peepwin.k_arith ~def:(Reg.to_int rd)
      ~u1:(Reg.to_int rs1) ~u2:(Reg.to_int rs2) ~opk:(Opk.arith op)

  let[@inline] do_arith_imm g op t rd rs1 imm =
    let w = g.Gen.peep in
    Peepwin.on_def w (Reg.to_int rd);
    let start = Codebuf.length g.Gen.buf in
    T.arith_imm g op t rd rs1 imm;
    finish1 g ~start ~kind:Peepwin.k_arith_imm ~def:(Reg.to_int rd)
      ~u1:(Reg.to_int rs1) ~u2:(-1) ~opk:(Opk.arith_imm op)

  let[@inline] do_unary g op t rd rs =
    let w = g.Gen.peep in
    Peepwin.on_def w (Reg.to_int rd);
    let start = Codebuf.length g.Gen.buf in
    T.unary g op t rd rs;
    finish1 g ~start
      ~kind:(if op = Op.Mov then Peepwin.k_mov else Peepwin.k_unary)
      ~def:(Reg.to_int rd) ~u1:(Reg.to_int rs) ~u2:(-1) ~opk:(Opk.unary op)

  let do_set g t rd v =
    let w = g.Gen.peep in
    Peepwin.on_def w (Reg.to_int rd);
    let start = Codebuf.length g.Gen.buf in
    T.set g t rd v;
    let nw = Codebuf.length g.Gen.buf - start in
    let iv = Int64.to_int v in
    (* record only when the value round-trips through int (the fusion
       and window imm fields are native ints) *)
    if nw >= 1 && Int64.equal (Int64.of_int iv) v then begin
      Peepwin.push w ~start ~end_:(start + nw) ~kind:Peepwin.k_set
        ~def:(Reg.to_int rd) ~u1:(-1) ~u2:(-1) ~opk:Opk.set;
      w.Peepwin.imm <- iv
    end
    else Peepwin.flush w

  (* Redundant-move elimination: [mov r,r] and moves whose source and
     destination are already known equal are skipped entirely — no
     words, no counting (the destination's value is unchanged, so the
     callee-save masks stay correct without a [note_write]). *)
  let mov_core g t rd rs =
    let w = g.Gen.peep in
    let prd = Reg.to_int rd and prs = Reg.to_int rs in
    if prd = prs || Peepwin.have_fact w prd prs then
      w.Peepwin.moves_killed <- w.Peepwin.moves_killed + 1
    else begin
      do_unary g Op.Mov t rd rs;
      Peepwin.set_fact w prd prs
    end

  (* --- strength reduction -------------------------------------------- *)

  let is_pow2 c = c > 0 && c land (c - 1) = 0

  let log2 c =
    let rec go c k = if c <= 1 then k else go (c lsr 1) (k + 1) in
    go c 0

  let unsigned_ty (t : Vtype.t) = match t with Vtype.U | Vtype.UL -> true | _ -> false

  (* Can [op rd, rs, #imm] be rewritten into a cheaper shape?  Used both
     as the [arith_imm] rewrite dispatch and as the fusion
     profitability test (fusing into a reducible form is a win even
     when the port has no single-instruction immediate encoding). *)
  let mul_shift_ok t k = Op.binop_imm_ok Op.Lsh t && T.binop_imm_fits Op.Lsh k

  let reducible (op : Op.binop) (t : Vtype.t) c =
    match op with
    | Op.Mul ->
      (not (Vtype.is_float t))
      && (c = 0 || c = 1
         || (c = -1 && t <> Vtype.P)
         || (is_pow2 c && mul_shift_ok t (log2 c))
         || (c > 2
            && (not (T.binop_imm_fits Op.Mul c))
            && ((is_pow2 (c - 1) && mul_shift_ok t (log2 (c - 1)))
               || (is_pow2 (c + 1) && mul_shift_ok t (log2 (c + 1))))))
    | Op.Div ->
      unsigned_ty t
      && (c = 1
         || (is_pow2 c && Op.binop_imm_ok Op.Rsh t && T.binop_imm_fits Op.Rsh (log2 c)))
    | Op.Mod ->
      unsigned_ty t && is_pow2 c
      && Op.binop_imm_ok Op.And t
      && T.binop_imm_fits Op.And (c - 1)
    | _ -> false

  (* Strength-reducing [op rd, rs1, #imm] dispatch for the three ops
     that can reduce; everything else goes straight to [do_arith_imm]
     from [emit_arith_imm] below without even calling [reducible]. *)
  let emit_arith_imm_red g op t rd rs1 imm =
    let w = g.Gen.peep in
    if not (reducible op t imm) then do_arith_imm g op t rd rs1 imm
    else begin
      w.Peepwin.strength <- w.Peepwin.strength + 1;
      match op with
      | Op.Mul ->
        if imm = 0 then do_set g t rd 0L
        else if imm = 1 then mov_core g t rd rs1
        else if imm = -1 then do_unary g Op.Neg t rd rs1
        else if is_pow2 imm then do_arith_imm g Op.Lsh t rd rs1 (log2 imm)
        else begin
          (* c = 2^k +/- 1: shift into the assembler temporary, then
             add/sub the original operand (scratch is dead between
             client instructions; rd = rs1 is safe — rs1 is read by
             the shift before rd is written) *)
          let sc = T.desc.Machdesc.scratch in
          if is_pow2 (imm - 1) && mul_shift_ok t (log2 (imm - 1)) then begin
            do_arith_imm g Op.Lsh t sc rs1 (log2 (imm - 1));
            do_arith g Op.Add t rd sc rs1
          end
          else begin
            do_arith_imm g Op.Lsh t sc rs1 (log2 (imm + 1));
            do_arith g Op.Sub t rd sc rs1
          end
        end
      | Op.Div ->
        if imm = 1 then mov_core g t rd rs1
        else do_arith_imm g Op.Rsh t rd rs1 (log2 imm)
      | Op.Mod -> do_arith_imm g Op.And t rd rs1 (imm - 1)
      | _ -> assert false
    end

  let[@inline] emit_arith_imm g op t rd rs1 imm =
    match op with
    | Op.Mul | Op.Div | Op.Mod -> emit_arith_imm_red g op t rd rs1 imm
    | _ -> do_arith_imm g op t rd rs1 imm

  (* --- immediate fusion ---------------------------------------------- *)

  let commutative (op : Op.binop) =
    match op with
    | Op.Add | Op.Mul | Op.And | Op.Or | Op.Xor -> true
    | Op.Sub | Op.Div | Op.Mod | Op.Lsh | Op.Rsh -> false

  (* [set rt,k ; op rd,rs,rt] with [rd = rt]: the constant register
     dies here, so retire the set (truncate its words, un-count it,
     drop its provenance span) and emit op-immediate instead.  Only
     when the immediate form is a single instruction on this port, or
     strength reduction applies — fusing into a scratch-synthesized
     constant would just re-materialize the set. *)
  let try_fuse_set g op t rd rs1 rs2 =
    let w = g.Gen.peep in
    if not (Op.binop_imm_ok op t) then false
    else begin
      let rt = Peepwin.def w in
      let k = w.Peepwin.imm in
      let prd = Reg.to_int rd and p1 = Reg.to_int rs1 and p2 = Reg.to_int rs2 in
      let profitable = T.binop_imm_fits op k || reducible op t k in
      let src =
        if p2 = rt && p1 <> rt then Some rs1
        else if p1 = rt && p2 <> rt && commutative op then Some rs2
        else None
      in
      match src with
      | Some rs when prd = rt && profitable ->
        Codebuf.truncate g.Gen.buf w.Peepwin.start;
        Gen.uncount_insn g (Peepwin.opk w);
        Gen.prov_drop_from g ~start:w.Peepwin.start;
        Peepwin.pop w;
        w.Peepwin.fusions <- w.Peepwin.fusions + 1;
        emit_arith_imm g op t rd rs k;
        true
      | _ -> false
    end

  (* --- delay-slot filling -------------------------------------------- *)

  (* The port just emitted a branch sequence spanning [p0 .. len-1]: a
     compare prelude of [len-2-p0] words, the relocated branch word at
     [len-2], and the slot nop at [len-1].  If the top window record is
     an independent single-word instruction immediately before [p0],
     move it into the slot: shift the branch words down one, place the
     candidate last, drop the nop, and re-point the relocation site and
     the two provenance spans at the post-surgery indices.

     Independence: the candidate must not define a branch source (the
     compare now reads its inputs before the candidate runs) and must
     not touch the assembler temporary (the compare prelude may write
     it).  [max_body] bounds the prelude so only synthesis paths whose
     prelude writes at most the assembler temporary qualify. *)
  let try_fill g ~p0 ~r0 ~max_body ~src1 ~src2 ~opk =
    if T.desc.Machdesc.branch_delay_slots = 1 then begin
      let w = g.Gen.peep in
      if Peepwin.have w then begin
        let s = w.Peepwin.start in
        let len = Codebuf.length g.Gen.buf in
        let d = Peepwin.def w in
        if
          w.Peepwin.end_ = p0
          && s + 1 = p0
          && Gen.reloc_count g = r0 + 1
          && g.Gen.relocs.((g.Gen.nrelocs - 1) * 3) = len - 2
          && Codebuf.get g.Gen.buf (len - 1) = slot_nop_word
          && len - 2 - p0 <= max_body
          && d <> scratch_packed
          && Peepwin.u1 w <> scratch_packed
          && Peepwin.u2 w <> scratch_packed
          && (d = -1 || (d <> src1 && d <> src2))
        then begin
          let cand = Codebuf.get g.Gen.buf s in
          for j = p0 to len - 2 do
            Codebuf.set g.Gen.buf (j - 1) (Codebuf.get g.Gen.buf j)
          done;
          Codebuf.set g.Gen.buf (len - 2) cand;
          Codebuf.truncate g.Gen.buf (len - 1);
          Gen.shift_reloc_sites g ~from:p0 ~by:(-1);
          Gen.prov_drop_from g ~start:s;
          Gen.prov_append g ~start:s ~slot:opk;
          Gen.prov_append g ~start:(len - 2) ~slot:(Peepwin.opk w);
          w.Peepwin.slot_fills <- w.Peepwin.slot_fills + 1
        end
      end
    end

  (* --- the Target.S surface ------------------------------------------ *)

  let lambda g tys =
    let r = T.lambda g tys in
    Peepwin.reset g.Gen.peep;
    r

  let ret g t r =
    check_sync g;
    T.ret g t r;
    Peepwin.reset g.Gen.peep

  let finish g =
    Peepwin.reset g.Gen.peep;
    T.finish g

  (* cheap common-path test inline; the rewrite body out of line *)
  let[@inline] try_fuse g op t rd rs1 rs2 =
    let w = g.Gen.peep in
    (* single compare: ko's kind bits name a live k_set record *)
    w.Peepwin.ko lsr 16 = Peepwin.k_set + 1 && try_fuse_set g op t rd rs1 rs2

  let arith g op t rd rs1 rs2 =
    check_sync g;
    if not (try_fuse g op t rd rs1 rs2) then do_arith g op t rd rs1 rs2

  let arith_imm g op t rd rs1 imm =
    check_sync g;
    emit_arith_imm g op t rd rs1 imm

  let unary g op t rd rs =
    check_sync g;
    match op with
    | Op.Mov -> mov_core g t rd rs
    | _ -> do_unary g op t rd rs

  let set g t rd v =
    check_sync g;
    do_set g t rd v

  let setf g t rd v =
    check_sync g;
    Peepwin.on_def g.Gen.peep (Reg.to_int rd);
    T.setf g t rd v;
    Peepwin.flush g.Gen.peep

  let cvt g ~from ~to_ rd rs =
    check_sync g;
    Peepwin.on_def g.Gen.peep (Reg.to_int rd);
    T.cvt g ~from ~to_ rd rs;
    (* conversions may bind internal labels and record relocations *)
    Peepwin.reset g.Gen.peep

  (* Loads are never window candidates (the load-delay hazard would
     make them unsafe to move into a delay slot), so just flush. *)
  let load_imm g t rd base off =
    check_sync g;
    Peepwin.on_def g.Gen.peep (Reg.to_int rd);
    T.load_imm g t rd base off;
    Peepwin.flush g.Gen.peep

  let load_reg g t rd base idx =
    check_sync g;
    Peepwin.on_def g.Gen.peep (Reg.to_int rd);
    T.load_reg g t rd base idx;
    Peepwin.flush g.Gen.peep

  let store_imm g t rv base off =
    check_sync g;
    let start = Codebuf.length g.Gen.buf in
    T.store_imm g t rv base off;
    finish1 g ~start ~kind:Peepwin.k_store ~def:(-1) ~u1:(Reg.to_int rv)
      ~u2:(Reg.to_int base) ~opk:Opk.st

  (* register-offset stores have three source registers — more than the
     window records — so they are not candidates *)
  let store_reg g t rv base idx =
    check_sync g;
    T.store_reg g t rv base idx;
    Peepwin.flush g.Gen.peep

  let jump g tgt =
    check_sync g;
    let p0 = Codebuf.length g.Gen.buf in
    let r0 = Gen.reloc_count g in
    T.jump g tgt;
    try_fill g ~p0 ~r0 ~max_body:0 ~src1:(-2) ~src2:(-2) ~opk:Opk.jmp;
    Peepwin.flush g.Gen.peep

  let jal g tgt =
    check_sync g;
    T.jal g tgt;
    (* a call clobbers caller-saved registers: drop the copy fact too *)
    Peepwin.reset g.Gen.peep

  let branch g c t rs1 rs2 lab =
    check_sync g;
    let p0 = Codebuf.length g.Gen.buf in
    let r0 = Gen.reloc_count g in
    T.branch g c t rs1 rs2 lab;
    try_fill g ~p0 ~r0 ~max_body:1 ~src1:(Reg.to_int rs1) ~src2:(Reg.to_int rs2)
      ~opk:(Opk.branch c);
    (* the copy fact survives: the fall-through path is unchanged and
       the taken path lands on a label bind, which resets *)
    Peepwin.flush g.Gen.peep

  let branch_imm g c t rs1 imm lab =
    check_sync g;
    let p0 = Codebuf.length g.Gen.buf in
    let r0 = Gen.reloc_count g in
    T.branch_imm g c t rs1 imm lab;
    try_fill g ~p0 ~r0 ~max_body:1 ~src1:(Reg.to_int rs1) ~src2:(-2)
      ~opk:(Opk.branch_imm c);
    Peepwin.flush g.Gen.peep

  let nop g =
    check_sync g;
    T.nop g;
    Peepwin.flush g.Gen.peep

  (* Window must be empty before a label bind: the bound position is
     about to become a branch target, and no rewrite may move words a
     label already points at. *)
  let bind_label g l =
    Peepwin.reset g.Gen.peep;
    Gen.bind_label g l

  (* External code is about to rewrite the buffer tail (the portable
     delay-slot scheduler): forget everything. *)
  let sync g = Peepwin.reset g.Gen.peep
  let binop_imm_fits = T.binop_imm_fits

  let push_arg g t r =
    check_sync g;
    T.push_arg g t r;
    Peepwin.flush g.Gen.peep

  let do_call g tgt =
    check_sync g;
    T.do_call g tgt;
    Peepwin.reset g.Gen.peep

  let retval g t r =
    check_sync g;
    Peepwin.on_def g.Gen.peep (Reg.to_int r);
    T.retval g t r;
    Peepwin.flush g.Gen.peep

  let apply_reloc = T.apply_reloc
  let disasm = T.disasm

  (* Extension instructions bypass the window by construction; the
     staleness check at the next wrapped entry drops stale metadata. *)
  let extra_insns = T.extra_insns
  let extra_imm_insns = T.extra_imm_insns
end

(* The default, checked instantiation (the paper's debugging mode) and
   the production instantiation with operand validation compiled out.
   Both produce bit-for-bit identical code. *)
module Make (T : Target.S) = Make_gen (Checked) (T)
module Make_unchecked (T : Target.S) = Make_gen (Unchecked) (T)
