(* PowerPC (32-bit) simulator.

   Big-endian core, no delay slots.  Integer registers hold
   sign-extended 32-bit values in OCaml ints; FP registers hold 64-bit
   IEEE bit patterns (fctiwz leaves an integer word in an FP register,
   as on hardware).  CR0's lt/gt/eq bits, LR and CTR are modeled; other
   CR fields, XER and the record forms are not needed by the VCODE
   port. *)

open Vmachine
module A = Ppc_asm

let halt_addr = 0x10000000

exception Machine_error of string

type t = {
  mem : Mem.t;
  icache : Cache.t;
  dcache : Cache.t;
  pdc : A.t Decode_cache.t; (* host-side predecode; no cycle effect *)
  predecode : bool;
  bc : block Block_cache.t; (* superblock translation cache; no cycle effect *)
  blocks : bool;
  rc : region Region_cache.t; (* tier-3 region cache; no cycle effect *)
  regions : bool;
  probe : Sim_probe.t;      (* shared telemetry probe; never touches timing *)
  tr : Trace.t;             (* execution trace; the disabled sink is scratch *)
  cfg : Mconfig.t;
  regs : int array;    (* 32, sign-extended 32-bit *)
  fregs : int64 array; (* 32, raw bit patterns *)
  mutable lr : int;
  mutable ctr : int;
  mutable cr_lt : bool;
  mutable cr_gt : bool;
  mutable cr_eq : bool;
  mutable pc : int;
  mutable nextpc : int; (* next-pc scratch for [step]; avoids a per-step ref *)
  mutable blk_i : int; (* index of the block instruction in flight; abort-fixup scratch *)
  mutable cycles : int;
  mutable insns : int;
  mutable stack_top : int;
}

(* A compiled straight-line run: one closure per instruction, ending at
   the first control transfer (compiled in; no delay slots on PPC) or
   the [Block_cache.max_insns] cap. *)
and block = {
  entry : int;          (* code address of the first instruction *)
  n : int;              (* instruction count, terminator included *)
  run : unit -> unit;   (* the whole straight-line run fused into one closure:
                           per-instruction icache probes, [blk_i] updates and
                           the final pc/nextpc/insns commit are baked in at
                           compile time *)
  has_term : bool;      (* ends in a control transfer (vs. capped fallthrough) *)
}

(* A tier-3 region (see the MIPS twin for the full commentary): a hot
   block plus its dominant direct-chained successors fused into one
   closure per pass, interior branches specialized to their dominant
   direction with a [Region_cache.Side_exit] guard, and a probe-free
   fast pass for self-looping traces whose icache lines don't
   conflict.  No delay slots here; the branch scratch is [m.nextpc]. *)
and region = {
  r_entry : int;
  r_n : int;                   (* instructions retired per full pass *)
  r_spans : (int * int) array; (* constituent-block (addr, bytes) *)
  r_run : unit -> unit;        (* one pass, icache probes included *)
  r_fast : unit -> unit;       (* one pass, probes elided *)
  r_addrs : int array;         (* region insn index -> code address *)
}

let create ?(predecode = true) ?(blocks = true) ?(regions = false)
    ?(telemetry = Telemetry.disabled) ?(trace = Trace.disabled) (cfg : Mconfig.t) =
  let mem = Mem.create ~big_endian:true ~size:cfg.mem_bytes () in
  let pdc = Decode_cache.create ~tel:telemetry ~trace ~name:"ppc.pdc" ~mem_bytes:cfg.mem_bytes () in
  let bc = Block_cache.create ~tel:telemetry ~trace ~name:"ppc.bc" ~mem_bytes:cfg.mem_bytes
      ~len_bytes:(fun b -> 4 * b.n) () in
  let rc = Region_cache.create ~tel:telemetry ~name:"ppc.rc" ~mem_bytes:cfg.mem_bytes
      ~spans:(fun r -> r.r_spans) () in
  ignore (Mem.add_write_watcher mem (Decode_cache.invalidate pdc) : Mem.watcher);
  ignore (Mem.add_write_watcher mem (Block_cache.invalidate bc) : Mem.watcher);
  (* A dropped region must abort a running pass even when the
     overwritten constituent block is no longer bc-resident (so the
     Block_cache watcher above dropped nothing): raise bc's dirty flag
     unconditionally and let the shared store closures raise Retired. *)
  if regions then
    ignore
      (Mem.add_write_watcher mem (fun addr len ->
           if Region_cache.invalidate rc addr len then Block_cache.mark_dirty bc)
        : Mem.watcher);
  {
    mem;
    pdc;
    predecode;
    bc;
    blocks;
    rc;
    regions;
    probe = Sim_probe.create ~trace telemetry ~port:"ppc" ~predecode ~blocks ~regions;
    tr = trace;
    icache = Cache.create ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.imiss_penalty;
    dcache = Cache.create ~size_bytes:cfg.dcache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.dmiss_penalty;
    cfg;
    regs = Array.make 32 0;
    fregs = Array.make 32 0L;
    lr = 0;
    ctr = 0;
    cr_lt = false;
    cr_gt = false;
    cr_eq = false;
    pc = 0;
    nextpc = 0;
    blk_i = 0;
    cycles = 0;
    insns = 0;
    stack_top = cfg.mem_bytes - 256;
  }

(* branchless sign-extension from bit 31 (OCaml ints are 63-bit, so the
   shift pair drops bits 32+ and replicates bit 31 upward) *)
let[@inline] sext32 v = (v lsl 31) asr 31

let u32 v = v land 0xFFFFFFFF

(* register numbers come out of [Ppc_asm.decode] masked to 5 bits *)
let[@inline] get m r = Array.unsafe_get m.regs r
let[@inline] set m r v = Array.unsafe_set m.regs r (sext32 v)

(* RA = 0 means literal zero in D-form address/operand computation *)
let[@inline] get0 m r = if r = 0 then 0 else Array.unsafe_get m.regs r

let fval m f = Int64.float_of_bits m.fregs.(f)
let set_fval m f v = m.fregs.(f) <- Int64.bits_of_float v
let single v = Int32.float_of_bits (Int32.bits_of_float v)

let[@inline] daccess m addr =
  let p = Cache.access m.dcache addr in
  if p <> 0 then m.cycles <- m.cycles + p
(* write-through: always 0 penalty, but the hit/miss stats must tick *)
let[@inline] waccess m addr = ignore (Cache.write_access m.dcache addr : int)

let set_cr_signed m a b =
  m.cr_lt <- a < b;
  m.cr_gt <- a > b;
  m.cr_eq <- a = b

let set_cr_unsigned m a b =
  let a = u32 a and b = u32 b in
  m.cr_lt <- a < b;
  m.cr_gt <- a > b;
  m.cr_eq <- a = b

let rlwinm_mask mb me =
  let mask = ref 0 in
  let i = ref mb in
  let stop = ref false in
  while not !stop do
    mask := !mask lor (1 lsl (31 - !i));
    if !i = me then stop := true else i := (!i + 1) land 31
  done;
  !mask

let rotl32 v sh = u32 ((u32 v lsl sh) lor (u32 v lsr (32 - sh land 31)))

(* Decode the word at [pc], consulting the predecode cache first.  The
   miss path preserves the uncached fault behaviour exactly. *)
let fetch m pc =
  match Decode_cache.find m.pdc pc with
  | Some i -> i
  | None ->
    let w = Mem.read_u32 m.mem pc in
    let insn =
      try A.decode w with A.Bad_insn _ ->
        raise (Machine_error (Printf.sprintf "illegal instruction 0x%08x at 0x%x" w pc))
    in
    if m.predecode then Decode_cache.set m.pdc pc insn;
    insn

(* The caller is responsible for the icache timing access on [m.pc]
   (see [run_go]/[step]): doing it in the small run loop rather than in
   this large function keeps its register pressure out of every arm. *)
let step_inner m pc =
  m.insns <- m.insns + 1;
  let insn = fetch m pc in
  m.nextpc <- pc + 4;
  (match insn with
  | A.Addi (rt, ra, si) -> set m rt (get0 m ra + si)
  | A.Addis (rt, ra, si) -> set m rt (get0 m ra + (si * 65536))
  | A.Mulli (rt, ra, si) ->
    m.cycles <- m.cycles + 4;
    set m rt (get m ra * si)
  | A.Cmpi (ra, si) -> set_cr_signed m (get m ra) si
  | A.Cmpli (ra, ui) -> set_cr_unsigned m (get m ra) ui
  | A.Ori (ra, rs, ui) -> set m ra (get m rs lor ui)
  | A.Oris (ra, rs, ui) -> set m ra (get m rs lor (ui lsl 16))
  | A.Xori (ra, rs, ui) -> set m ra (get m rs lxor ui)
  | A.Andi (ra, rs, ui) ->
    let v = get m rs land ui in
    set m ra v;
    set_cr_signed m (sext32 v) 0
  | A.Add (rt, ra, rb) -> set m rt (get m ra + get m rb)
  | A.Subf (rt, ra, rb) -> set m rt (get m rb - get m ra)
  | A.Mullw (rt, ra, rb) ->
    m.cycles <- m.cycles + 4;
    set m rt (get m ra * get m rb)
  | A.Divw (rt, ra, rb) ->
    m.cycles <- m.cycles + 19;
    let a = get m ra and b = get m rb in
    if b = 0 then set m rt 0 else set m rt (Int.div a b)
  | A.Divwu (rt, ra, rb) ->
    m.cycles <- m.cycles + 19;
    let a = u32 (get m ra) and b = u32 (get m rb) in
    if b = 0 then set m rt 0 else set m rt (a / b)
  | A.Neg (rt, ra) -> set m rt (-get m ra)
  | A.And (ra, rs, rb) -> set m ra (get m rs land get m rb)
  | A.Or (ra, rs, rb) -> set m ra (get m rs lor get m rb)
  | A.Xor (ra, rs, rb) -> set m ra (get m rs lxor get m rb)
  | A.Nor (ra, rs, rb) -> set m ra (lnot (get m rs lor get m rb))
  | A.Slw (ra, rs, rb) ->
    let sh = get m rb land 63 in
    set m ra (if sh > 31 then 0 else get m rs lsl sh)
  | A.Srw (ra, rs, rb) ->
    let sh = get m rb land 63 in
    set m ra (if sh > 31 then 0 else u32 (get m rs) lsr sh)
  | A.Sraw (ra, rs, rb) ->
    let sh = get m rb land 63 in
    set m ra (get m rs asr min sh 31)
  | A.Srawi (ra, rs, sh) -> set m ra (get m rs asr sh)
  | A.Cntlzw (ra, rs) ->
    let v = u32 (get m rs) in
    let rec go n bit = if bit < 0 || v land (1 lsl bit) <> 0 then n else go (n + 1) (bit - 1) in
    set m ra (if v = 0 then 32 else go 0 31)
  | A.Cmp (ra, rb) -> set_cr_signed m (get m ra) (get m rb)
  | A.Cmpl (ra, rb) -> set_cr_unsigned m (get m ra) (get m rb)
  | A.Rlwinm (ra, rs, sh, mb, me) ->
    set m ra (rotl32 (get m rs) sh land rlwinm_mask mb me)
  | A.Lbz (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    set m rt (Mem.read_u8 m.mem a)
  | A.Lhz (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    set m rt (Mem.read_u16 m.mem a)
  | A.Lha (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    let v = Mem.read_u16 m.mem a in
    set m rt (if v land 0x8000 <> 0 then v - 0x10000 else v)
  | A.Lwz (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    set m rt (Mem.read_u32 m.mem a)
  | A.Stb (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    waccess m a;
    Mem.write_u8 m.mem a (get m rt)
  | A.Sth (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    waccess m a;
    Mem.write_u16 m.mem a (get m rt)
  | A.Stw (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    waccess m a;
    Mem.write_u32 m.mem a (u32 (get m rt))
  | A.Lfs (t, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    set_fval m t (Int32.float_of_bits (Int32.of_int (Mem.read_u32 m.mem a)))
  | A.Lfd (t, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    m.fregs.(t) <- Mem.read_u64 m.mem a
  | A.Stfs (t, ra, d) ->
    let a = u32 (get0 m ra) + d in
    waccess m a;
    Mem.write_u32 m.mem a (Int32.to_int (Int32.bits_of_float (fval m t)) land 0xFFFFFFFF)
  | A.Stfd (t, ra, d) ->
    let a = u32 (get0 m ra) + d in
    waccess m a;
    Mem.write_u64 m.mem a m.fregs.(t)
  | A.B li -> m.nextpc <- pc + (4 * li)
  | A.Bl li ->
    m.lr <- pc + 4;
    m.nextpc <- pc + (4 * li)
  | A.Bc (bo, bi, bd) ->
    let bit = match bi with 0 -> m.cr_lt | 1 -> m.cr_gt | 2 -> m.cr_eq | _ -> false in
    let taken =
      match bo with
      | 12 -> bit
      | 4 -> not bit
      | 20 -> true
      | _ -> raise (Machine_error (Printf.sprintf "unsupported BO %d at 0x%x" bo pc))
    in
    if taken then m.nextpc <- pc + (4 * bd)
  | A.Blr -> m.nextpc <- u32 m.lr
  | A.Bctr -> m.nextpc <- u32 m.ctr
  | A.Bctrl ->
    m.lr <- pc + 4;
    m.nextpc <- u32 m.ctr
  | A.Mflr rt -> set m rt m.lr
  | A.Mtlr rs -> m.lr <- u32 (get m rs)
  | A.Mtctr rs -> m.ctr <- u32 (get m rs)
  | A.Fadd (t, a, b) -> m.cycles <- m.cycles + 2; set_fval m t (fval m a +. fval m b)
  | A.Fsub (t, a, b) -> m.cycles <- m.cycles + 2; set_fval m t (fval m a -. fval m b)
  | A.Fmul (t, a, c) -> m.cycles <- m.cycles + 3; set_fval m t (fval m a *. fval m c)
  | A.Fdiv (t, a, b) -> m.cycles <- m.cycles + 17; set_fval m t (fval m a /. fval m b)
  | A.Fadds (t, a, b) -> m.cycles <- m.cycles + 2; set_fval m t (single (fval m a +. fval m b))
  | A.Fsubs (t, a, b) -> m.cycles <- m.cycles + 2; set_fval m t (single (fval m a -. fval m b))
  | A.Fmuls (t, a, c) -> m.cycles <- m.cycles + 3; set_fval m t (single (fval m a *. fval m c))
  | A.Fdivs (t, a, b) -> m.cycles <- m.cycles + 17; set_fval m t (single (fval m a /. fval m b))
  | A.Fneg (t, b) -> set_fval m t (-.fval m b)
  | A.Fmr (t, b) -> m.fregs.(t) <- m.fregs.(b)
  | A.Frsp (t, b) -> set_fval m t (single (fval m b))
  | A.Fctiwz (t, b) ->
    let v = Int64.of_float (Float.trunc (fval m b)) in
    m.fregs.(t) <- Int64.logand v 0xFFFFFFFFL
  | A.Fcmpu (a, b) ->
    let x = fval m a and y = fval m b in
    m.cr_lt <- x < y;
    m.cr_gt <- x > y;
    m.cr_eq <- x = y);
  m.pc <- m.nextpc

(* ------------------------------------------------------------------ *)
(* Superblock translation (see {!Vmachine.Block_cache}): compile a
   straight-line decoded run into one closure per instruction, executed
   by [exec_chain] without per-instruction dispatch.  Each closure
   replicates its [step_inner] arm exactly — same arithmetic, same
   memory-access order, same cycle surcharges — so a block retires with
   the same architectural state and timing as the interpreter.  PPC has
   no delay slots: a block is body instructions plus (optionally) the
   control transfer itself, whose closure leaves the target in
   [m.nextpc] for the block commit.  A [Bc] with an unsupported BO
   field compiles to a closure raising the interpreter's exact
   machine error. *)

(* Compiled action for one *body* (non-control) instruction; [None]
   for the control transfers compiled via [term_of].  Store closures
   test the block cache's dirty flag after writing and abort with
   [Block_cache.Retired]. *)
let act_of m (insn : A.t) : (unit -> unit) option =
  match insn with
  | A.Addi (rt, ra, si) -> Some (fun () -> set m rt (get0 m ra + si))
  | A.Addis (rt, ra, si) ->
    let v = si * 65536 in
    Some (fun () -> set m rt (get0 m ra + v))
  | A.Mulli (rt, ra, si) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 4;
        set m rt (get m ra * si))
  | A.Cmpi (ra, si) -> Some (fun () -> set_cr_signed m (get m ra) si)
  | A.Cmpli (ra, ui) -> Some (fun () -> set_cr_unsigned m (get m ra) ui)
  | A.Ori (ra, rs, ui) -> Some (fun () -> set m ra (get m rs lor ui))
  | A.Oris (ra, rs, ui) ->
    let v = ui lsl 16 in
    Some (fun () -> set m ra (get m rs lor v))
  | A.Xori (ra, rs, ui) -> Some (fun () -> set m ra (get m rs lxor ui))
  | A.Andi (ra, rs, ui) ->
    Some
      (fun () ->
        let v = get m rs land ui in
        set m ra v;
        set_cr_signed m (sext32 v) 0)
  | A.Add (rt, ra, rb) -> Some (fun () -> set m rt (get m ra + get m rb))
  | A.Subf (rt, ra, rb) -> Some (fun () -> set m rt (get m rb - get m ra))
  | A.Mullw (rt, ra, rb) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 4;
        set m rt (get m ra * get m rb))
  | A.Divw (rt, ra, rb) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 19;
        let a = get m ra and b = get m rb in
        if b = 0 then set m rt 0 else set m rt (Int.div a b))
  | A.Divwu (rt, ra, rb) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 19;
        let a = u32 (get m ra) and b = u32 (get m rb) in
        if b = 0 then set m rt 0 else set m rt (a / b))
  | A.Neg (rt, ra) -> Some (fun () -> set m rt (-get m ra))
  | A.And (ra, rs, rb) -> Some (fun () -> set m ra (get m rs land get m rb))
  | A.Or (ra, rs, rb) -> Some (fun () -> set m ra (get m rs lor get m rb))
  | A.Xor (ra, rs, rb) -> Some (fun () -> set m ra (get m rs lxor get m rb))
  | A.Nor (ra, rs, rb) -> Some (fun () -> set m ra (lnot (get m rs lor get m rb)))
  | A.Slw (ra, rs, rb) ->
    Some
      (fun () ->
        let sh = get m rb land 63 in
        set m ra (if sh > 31 then 0 else get m rs lsl sh))
  | A.Srw (ra, rs, rb) ->
    Some
      (fun () ->
        let sh = get m rb land 63 in
        set m ra (if sh > 31 then 0 else u32 (get m rs) lsr sh))
  | A.Sraw (ra, rs, rb) ->
    Some
      (fun () ->
        let sh = get m rb land 63 in
        set m ra (get m rs asr min sh 31))
  | A.Srawi (ra, rs, sh) -> Some (fun () -> set m ra (get m rs asr sh))
  | A.Cntlzw (ra, rs) ->
    Some
      (fun () ->
        let v = u32 (get m rs) in
        let rec go n bit =
          if bit < 0 || v land (1 lsl bit) <> 0 then n else go (n + 1) (bit - 1)
        in
        set m ra (if v = 0 then 32 else go 0 31))
  | A.Cmp (ra, rb) -> Some (fun () -> set_cr_signed m (get m ra) (get m rb))
  | A.Cmpl (ra, rb) -> Some (fun () -> set_cr_unsigned m (get m ra) (get m rb))
  | A.Rlwinm (ra, rs, sh, mb, me) ->
    let mask = rlwinm_mask mb me in
    Some (fun () -> set m ra (rotl32 (get m rs) sh land mask))
  | A.Lbz (rt, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        daccess m a;
        set m rt (Mem.read_u8 m.mem a))
  | A.Lhz (rt, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        daccess m a;
        set m rt (Mem.read_u16 m.mem a))
  | A.Lha (rt, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        daccess m a;
        let v = Mem.read_u16 m.mem a in
        set m rt (if v land 0x8000 <> 0 then v - 0x10000 else v))
  | A.Lwz (rt, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        daccess m a;
        set m rt (Mem.read_u32 m.mem a))
  | A.Stb (rt, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        waccess m a;
        Mem.write_u8 m.mem a (get m rt);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | A.Sth (rt, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        waccess m a;
        Mem.write_u16 m.mem a (get m rt);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | A.Stw (rt, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        waccess m a;
        Mem.write_u32 m.mem a (u32 (get m rt));
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | A.Lfs (t, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        daccess m a;
        set_fval m t (Int32.float_of_bits (Int32.of_int (Mem.read_u32 m.mem a))))
  | A.Lfd (t, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        daccess m a;
        m.fregs.(t) <- Mem.read_u64 m.mem a)
  | A.Stfs (t, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        waccess m a;
        Mem.write_u32 m.mem a (Int32.to_int (Int32.bits_of_float (fval m t)) land 0xFFFFFFFF);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | A.Stfd (t, ra, d) ->
    Some
      (fun () ->
        let a = u32 (get0 m ra) + d in
        waccess m a;
        Mem.write_u64 m.mem a m.fregs.(t);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | A.Mflr rt -> Some (fun () -> set m rt m.lr)
  | A.Mtlr rs -> Some (fun () -> m.lr <- u32 (get m rs))
  | A.Mtctr rs -> Some (fun () -> m.ctr <- u32 (get m rs))
  | A.Fadd (t, a, b) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 2;
        set_fval m t (fval m a +. fval m b))
  | A.Fsub (t, a, b) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 2;
        set_fval m t (fval m a -. fval m b))
  | A.Fmul (t, a, c) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 3;
        set_fval m t (fval m a *. fval m c))
  | A.Fdiv (t, a, b) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 17;
        set_fval m t (fval m a /. fval m b))
  | A.Fadds (t, a, b) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 2;
        set_fval m t (single (fval m a +. fval m b)))
  | A.Fsubs (t, a, b) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 2;
        set_fval m t (single (fval m a -. fval m b)))
  | A.Fmuls (t, a, c) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 3;
        set_fval m t (single (fval m a *. fval m c)))
  | A.Fdivs (t, a, b) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 17;
        set_fval m t (single (fval m a /. fval m b)))
  | A.Fneg (t, b) -> Some (fun () -> set_fval m t (-.fval m b))
  | A.Fmr (t, b) -> Some (fun () -> m.fregs.(t) <- m.fregs.(b))
  | A.Frsp (t, b) -> Some (fun () -> set_fval m t (single (fval m b)))
  | A.Fctiwz (t, b) ->
    Some
      (fun () ->
        let v = Int64.of_float (Float.trunc (fval m b)) in
        m.fregs.(t) <- Int64.logand v 0xFFFFFFFFL)
  | A.Fcmpu (a, b) ->
    Some
      (fun () ->
        let x = fval m a and y = fval m b in
        m.cr_lt <- x < y;
        m.cr_gt <- x > y;
        m.cr_eq <- x = y)
  | A.B _ | A.Bl _ | A.Bc _ | A.Blr | A.Bctr | A.Bctrl -> None

(* Compiled closure for a block *terminator* at address [pc]: leaves
   the control-transfer target in [m.nextpc] (fallthrough [pc + 4] for
   an untaken branch) — exactly the interpreter's nextpc discipline;
   the block commit moves nextpc into pc. *)
let term_of m pc (insn : A.t) : (unit -> unit) option =
  let ft = pc + 4 in
  match insn with
  | A.B li ->
    let tk = pc + (4 * li) in
    Some (fun () -> m.nextpc <- tk)
  | A.Bl li ->
    let tk = pc + (4 * li) in
    Some
      (fun () ->
        m.lr <- pc + 4;
        m.nextpc <- tk)
  | A.Bc (bo, bi, bd) -> (
    let tk = pc + (4 * bd) in
    let bit () = match bi with 0 -> m.cr_lt | 1 -> m.cr_gt | 2 -> m.cr_eq | _ -> false in
    match bo with
    | 12 -> Some (fun () -> m.nextpc <- (if bit () then tk else ft))
    | 4 -> Some (fun () -> m.nextpc <- (if not (bit ()) then tk else ft))
    | 20 -> Some (fun () -> m.nextpc <- tk)
    | _ ->
      Some
        (fun () -> raise (Machine_error (Printf.sprintf "unsupported BO %d at 0x%x" bo pc))))
  | A.Blr -> Some (fun () -> m.nextpc <- u32 m.lr)
  | A.Bctr -> Some (fun () -> m.nextpc <- u32 m.ctr)
  | A.Bctrl ->
    Some
      (fun () ->
        m.lr <- pc + 4;
        m.nextpc <- u32 m.ctr)
  | _ -> None

(* instructions allowed before the terminator within the
   [Block_cache.max_insns] cap *)
let max_body = Block_cache.max_insns - 1

(* Only closures for these instructions can raise: a memory fault from
   a load/store, or [Block_cache.Retired] from a store that invalidated
   a resident block.  Everything else [act_of] compiles is pure OCaml
   arithmetic that cannot raise (the division arms are zero-guarded),
   so the per-instruction [m.blk_i] bookkeeping is baked in at compile
   time for can-raise instructions alone and elided everywhere else.
   The terminator is always classified can-raise: the unsupported-BO
   trap raises from inside its closure. *)
let act_raises (insn : A.t) : bool =
  match insn with
  | A.Lbz _ | A.Lhz _ | A.Lha _ | A.Lwz _ | A.Stb _ | A.Sth _ | A.Stw _
  | A.Lfs _ | A.Lfd _ | A.Stfs _ | A.Stfd _ -> true
  | _ -> false

(* Fuse a list of action closures into one, sequencing by direct calls
   in chunks of four: one chunk-closure entry per four instructions
   instead of a per-instruction array load and loop-counter update.
   Exceptions propagate out of the fused closure unchanged. *)
let rec seq (cs : (unit -> unit) list) : unit -> unit =
  match cs with
  | [] -> fun () -> ()
  | [ a ] -> a
  | [ a; b ] -> fun () -> a (); b ()
  | [ a; b; c ] -> fun () -> a (); b (); c ()
  | [ a; b; c; d ] -> fun () -> a (); b (); c (); d ()
  | a :: b :: c :: d :: rest ->
    let r = seq rest in
    fun () -> a (); b (); c (); d (); r ()

(* Scan the straight-line run entered at [entry]: body instructions up
   to and including the first control transfer, a non-compilable word
   (illegal, unmapped — left for the interpreter to trap on), or the
   length cap.  Returns the per-instruction (can-raise, action) list
   and whether it ends in a terminator; [None] if not even one
   instruction compiles.  The terminator is classified can-raise (the
   unsupported-BO trap raises from inside its closure).  Shared by the
   superblock and region compilers. *)
let scan_run m entry =
  let fetch_opt pc =
    match fetch m pc with
    | i -> Some i
    | exception (Machine_error _ | Mem.Fault _) -> None
  in
  let body = ref [] and nbody = ref 0 in
  let fin = ref None in
  let stop = ref false in
  let pc = ref entry in
  while (not !stop) && !nbody < max_body do
    match fetch_opt !pc with
    | None -> stop := true
    | Some insn -> (
      match act_of m insn with
      | Some a ->
        body := (act_raises insn, a) :: !body;
        incr nbody;
        pc := !pc + 4
      | None ->
        stop := true;
        fin := term_of m !pc insn)
  done;
  let tail, has_term = match !fin with Some t -> ([ (true, t) ], true) | None -> ([], false) in
  match List.rev_append !body tail with
  | [] -> None
  | all -> Some (all, has_term)

(* Compile the straight-line run entered at [entry] into a superblock.

   Timing is baked into the closures: the instruction that starts a new
   icache line carries the registerized probe (a later same-line fetch
   is a guaranteed hit — a block spans at most 256 consecutive bytes,
   far below the icache size, so it cannot evict its own lines, and a
   guaranteed hit is a no-op under bulk hit reconciliation).  Capturing
   the tag array here is safe because [Cache.flush] clears it in
   place. *)
let compile_block m entry =
  let tags, shift, mask = Cache.probe m.icache in
  match scan_run m entry with
  | None -> None
  | Some (all, has_term) ->
    let n = List.length all in
    let wrap i (raises, act) =
      let addr = entry + (4 * i) in
      let line = addr lsr shift in
      let boundary = i = 0 || line <> (addr - 4) lsr shift in
      if boundary then begin
        let idx = line land mask in
        if raises then
          fun () ->
            m.blk_i <- i;
            if Array.unsafe_get tags idx <> line then begin
              let p = Cache.access_uncounted m.icache addr in
              if p <> 0 then m.cycles <- m.cycles + p
            end;
            act ()
        else
          fun () ->
            if Array.unsafe_get tags idx <> line then begin
              let p = Cache.access_uncounted m.icache addr in
              if p <> 0 then m.cycles <- m.cycles + p
            end;
            act ()
      end
      else if raises then
        fun () ->
          m.blk_i <- i;
          act ()
      else act
    in
    (* traced runs re-bind [wrap] so each closure records its issue
       before acting (issue order = the interpreter's retire stream);
       untraced compilation keeps the exact closures above *)
    let wrap =
      if not (Trace.is_enabled m.tr) then wrap
      else
        fun i ra ->
          let f = wrap i ra in
          let addr = entry + (4 * i) in
          fun () ->
            Trace.retire m.tr addr;
            f ()
    in
    (* the commit is one more cannot-raise action fused onto the end:
       if anything earlier raises, it never runs, and the fixup
       handlers in [exec_chain] account the partial run instead *)
    let commit =
      if has_term then
        fun () ->
          m.insns <- m.insns + n;
          m.pc <- m.nextpc
      else begin
        let ft = entry + (4 * n) in
        fun () ->
          m.insns <- m.insns + n;
          m.nextpc <- ft;
          m.pc <- ft
      end
    in
    Some { entry; n; run = seq (List.mapi wrap all @ [ commit ]); has_term }

(* Execute [b] (precondition: [b.n <= fuel]), then chain directly into
   the next resident block while fuel lasts.  Returns the remaining
   fuel; the three exits (clean commit, [Retired] store-abort, fault)
   leave exactly the state the interpreter would — see the MIPS twin of
   this function for the case analysis (simpler here: no delay slots,
   so the post-instruction pc is always the straight-line successor for
   aborts; the unsupported-BO trap raises before assigning nextpc, like
   any body fault). *)
let rec exec_chain m (b : block) fuel =
  Trace.mark m.tr Trace.Block_enter b.entry;
  if Sim_probe.enabled m.probe then begin
    Sim_probe.block_exec m.probe ~entry:b.entry;
    Block_cache.note_exec m.bc b.entry
  end;
  Block_cache.begin_block m.bc;
  match b.run () with
  | () ->
    let fuel = fuel - b.n in
    if m.pc = halt_addr then fuel
    else if m.pc = b.entry && b.n <= fuel then
      (* self-loop fast path: a clean exit means no resident block was
         invalidated, so [b] is certainly still cached for [entry] *)
      exec_chain m b fuel
    else (
      match Block_cache.find m.bc m.pc with
      | Some nb when nb.n <= fuel -> exec_chain m nb fuel
      | _ -> fuel)
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:b.entry ~i;
    let a = b.entry + (4 * i) in
    m.nextpc <- a + 4;
    m.pc <- a + 4;
    fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = b.entry + (4 * i) in
    m.pc <- a;
    m.nextpc <- a + 4;
    raise e

(* ------------------------------------------------------------------ *)
(* Tier-3 regions: the MIPS twin carries the full commentary; here the
   branch scratch is [m.nextpc] (terminators write it for both arms, so
   the guard compares it against the trace's next entry).  PPC
   terminators are can-raise — the unsupported-BO trap raises before
   assigning nextpc, so the generic fault fixup covers them. *)

let compile_region m entry =
  let tags, shift, mask = Cache.probe m.icache in
  let rec collect pc first_len acc nblocks =
    match scan_run m pc with
    | None -> List.rev acc
    | Some (all, has_term) ->
      let n = List.length all in
      let acc = (pc, all, has_term, n) :: acc in
      let nblocks = nblocks + 1 in
      let succ =
        if has_term then Region_cache.dominant_succ m.rc pc
        else Some (pc + (4 * n))
      in
      (match succ with
      | Some s when s land 3 = 0 && s > 0 ->
        if s = entry then begin
          let fl = match first_len with None -> nblocks | Some f -> f in
          if
            nblocks + fl <= Region_cache.max_blocks
            && nblocks < Region_cache.max_unroll * fl
          then collect s (Some fl) acc nblocks
          else List.rev acc
        end
        else if nblocks < Region_cache.max_blocks then collect s first_len acc nblocks
        else List.rev acc
      | _ -> List.rev acc)
  in
  match collect entry None [] 0 with
  | [] | [ _ ] -> None (* a single block gains nothing over tier 2 *)
  | blks ->
    let blks = Array.of_list blks in
    let nb = Array.length blks in
    let r_n = Array.fold_left (fun a (_, _, _, n) -> a + n) 0 blks in
    let spans = Array.map (fun (p, _, _, n) -> (p, 4 * n)) blks in
    let addrs = Array.make r_n 0 in
    let traced = Trace.is_enabled m.tr in
    (* Unconditional direct branches (b, bl, bc with BO=20) pin nextpc
       statically: a guard matching the trace successor can never fire
       and is omitted (see the MIPS twin for the rationale). *)
    let static_jump_target p n =
      let tpc = p + (4 * (n - 1)) in
      match fetch m tpc with
      | A.B li | A.Bl li -> Some (tpc + (4 * li))
      | A.Bc (20, _, bd) -> Some (tpc + (4 * bd))
      | _ -> None
      | exception (Machine_error _ | Mem.Fault _) -> None
    in
    let probed = ref [] and fastc = ref [] in
    let push_insn i addr raises act boundary =
      let line = addr lsr shift in
      let idx = line land mask in
      let pr =
        if boundary then
          if raises then
            fun () ->
              m.blk_i <- i;
              if Array.unsafe_get tags idx <> line then begin
                let p = Cache.access_uncounted m.icache addr in
                if p <> 0 then m.cycles <- m.cycles + p
              end;
              act ()
          else
            fun () ->
              if Array.unsafe_get tags idx <> line then begin
                let p = Cache.access_uncounted m.icache addr in
                if p <> 0 then m.cycles <- m.cycles + p
              end;
              act ()
        else if raises then
          fun () ->
            m.blk_i <- i;
            act ()
        else act
      in
      let fa =
        if raises then
          fun () ->
            m.blk_i <- i;
            act ()
        else act
      in
      let pr, fa =
        if not traced then (pr, fa)
        else
          ( (fun () -> Trace.retire m.tr addr; pr ()),
            fun () -> Trace.retire m.tr addr; fa () )
      in
      probed := pr :: !probed;
      fastc := fa :: !fastc
    in
    let k = ref 0 in
    let prev_line = ref min_int in
    Array.iteri
      (fun bi (p, all, has_term, n) ->
        List.iteri
          (fun j (raises, act) ->
            let i = !k in
            let addr = p + (4 * j) in
            addrs.(i) <- addr;
            let line = addr lsr shift in
            push_insn i addr raises act (line <> !prev_line);
            prev_line := line;
            incr k)
          all;
        if bi < nb - 1 && has_term then begin
          let expected = (fun (p, _, _, _) -> p) blks.(bi + 1) in
          match static_jump_target p n with
          | Some t when t = expected -> () (* guard provably never fires *)
          | _ ->
            let kk = !k in
            let g () =
              if m.nextpc <> expected then raise (Region_cache.Side_exit kk)
            in
            probed := g :: !probed;
            fastc := g :: !fastc
        end)
      blks;
    let commit =
      let p_last, _, last_term, n_last = blks.(nb - 1) in
      if last_term then
        fun () ->
          m.insns <- m.insns + r_n;
          m.pc <- m.nextpc
      else begin
        let ft = p_last + (4 * n_last) in
        fun () ->
          m.insns <- m.insns + r_n;
          m.nextpc <- ft;
          m.pc <- ft
      end
    in
    let r_run = seq (List.rev (commit :: !probed)) in
    (* fast-pass tail: deferred commit via [Loop_exit] (see the MIPS
       twin for the full commentary) *)
    let fast_tail =
      let _, _, last_term, _ = blks.(nb - 1) in
      if last_term then
        (fun () ->
          m.insns <- m.insns + r_n;
          if m.nextpc <> entry then raise Region_cache.Loop_exit)
      else commit
    in
    let lines =
      List.sort_uniq compare (Array.to_list (Array.map (fun a -> a lsr shift) addrs))
    in
    let fast_ok =
      List.length (List.sort_uniq compare (List.map (fun l -> l land mask) lines))
      = List.length lines
    in
    let r_fast = if fast_ok then seq (List.rev (fast_tail :: !fastc)) else r_run in
    Some { r_entry = entry; r_n; r_spans = spans; r_run; r_fast; r_addrs = addrs }

(* latency-instrumented entry points: the stopwatch brackets the whole
   scan/trace-follow + closure compile + cache insert, feeding the
   bc.compile_ns / rc.promote_ns distributions (no clock read when the
   sink is disabled) *)
let compile_block_timed m entry =
  let t0 = Block_cache.compile_start m.bc in
  let r = compile_block m entry in
  Block_cache.compile_done m.bc t0;
  r

let promote m entry =
  let t0 = Region_cache.promote_start m.rc in
  (match compile_region m entry with
  | Some r -> Region_cache.set m.rc entry ~insns:r.r_n r
  | None -> Region_cache.mark_unpromotable m.rc entry);
  Region_cache.promote_done m.rc t0

let exec_region m (r : region) fuel0 =
  Trace.mark m.tr Trace.Block_enter r.r_entry;
  if Sim_probe.enabled m.probe then Sim_probe.region_exec m.probe ~entry:r.r_entry;
  Block_cache.begin_block m.bc;
  let fuel = ref fuel0 in
  match
    r.r_run ();
    fuel := !fuel - r.r_n;
    let entry = r.r_entry and rn = r.r_n and fast = r.r_fast in
    while m.pc = entry && rn <= !fuel do
      fast ();
      fuel := !fuel - rn
    done
  with
  | () -> !fuel
  | exception Region_cache.Loop_exit ->
    (* the raising fast pass ran to completion and credited itself;
       perform its deferred commit *)
    m.pc <- m.nextpc;
    !fuel - r.r_n
  | exception Region_cache.Side_exit k ->
    m.insns <- m.insns + k;
    Sim_probe.side_exit m.probe ~entry:r.r_entry ~i:k;
    m.pc <- m.nextpc;
    !fuel - k
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:r.r_entry ~i;
    let a = r.r_addrs.(i) in
    m.nextpc <- a + 4;
    m.pc <- a + 4;
    !fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = r.r_addrs.(i) in
    m.pc <- a;
    m.nextpc <- a + 4;
    raise e

(* [exec_chain] for regions mode: identical block chaining plus the
   tier-3 hooks — per-dispatch hotness counting (promoting on the
   threshold crossing), successor-edge profiling after each clean
   commit, and chaining into a resident region when one exists at the
   next pc. *)
let rec exec_chain_r m (b : block) fuel =
  Trace.mark m.tr Trace.Block_enter b.entry;
  if Sim_probe.enabled m.probe then begin
    Sim_probe.block_exec m.probe ~entry:b.entry;
    Block_cache.note_exec m.bc b.entry
  end;
  if Region_cache.note_dispatch m.rc b.entry then promote m b.entry;
  Block_cache.begin_block m.bc;
  match b.run () with
  | () ->
    let fuel = fuel - b.n in
    if m.pc = halt_addr then fuel
    else begin
      Region_cache.note_succ m.rc b.entry m.pc;
      match Region_cache.find m.rc m.pc with
      | Some r when r.r_n <= fuel -> exec_region m r fuel
      | _ ->
        if m.pc = b.entry && b.n <= fuel then exec_chain_r m b fuel
        else (
          match Block_cache.find m.bc m.pc with
          | Some nb when nb.n <= fuel -> exec_chain_r m nb fuel
          | _ -> fuel)
    end
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:b.entry ~i;
    let a = b.entry + (4 * i) in
    m.nextpc <- a + 4;
    m.pc <- a + 4;
    fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = b.entry + (4 * i) in
    m.pc <- a;
    m.nextpc <- a + 4;
    raise e

let default_fuel = 200_000_000

(* Tight tail-recursive loop: the fuel check is a register countdown
   rather than a per-step ref increment/compare. *)
(* single-step with exact cycle accounting (the public interface) *)
let step m =
  let mi0 = Cache.misses m.icache in
  (let p = Cache.access_uncounted m.icache m.pc in
   if p <> 0 then m.cycles <- m.cycles + p);
  Trace.retire m.tr m.pc;
  step_inner m m.pc;
  m.cycles <- m.cycles + 1;
  Cache.add_hits m.icache (1 - (Cache.misses m.icache - mi0))

(* [step_inner] defers the 1-cycle-per-instruction component of the
   accounting to its caller; [run] adds it in bulk at exit from the
   instruction-count delta, so the hot loop carries one counter update
   less per step.  Totals are exact whenever [run] returns or raises. *)
(* The icache tag probe is inlined here with its geometry held in
   parameters (registers), falling back to the full model only on a
   miss; [run] reconciles the hit counter at exit from the retired-
   instruction delta, since a fetch loop performs exactly one icache
   access per retired instruction. *)
let rec run_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    let line = pc lsr shift in
    if Array.unsafe_get tags (line land mask) <> line then
      (let p = Cache.access_uncounted m.icache pc in
       if p <> 0 then m.cycles <- m.cycles + p);
    Trace.retire m.tr pc;
    step_inner m pc;
    run_go m tags shift mask (fuel - 1)
  end

(* one interpreted step inside the block-dispatch loop (cold path:
   block-cache miss on an uncompilable word, or a block too long for
   the remaining fuel) *)
let step_one m tags shift mask pc =
  let line = pc lsr shift in
  if Array.unsafe_get tags (line land mask) <> line then
    (let p = Cache.access_uncounted m.icache pc in
     if p <> 0 then m.cycles <- m.cycles + p);
  Trace.retire m.tr pc;
  step_inner m pc

(* Block-dispatching twin of [run_go]: execute resident compiled blocks
   (chaining block-to-block inside [exec_chain]), compile on first
   touch, and fall back to single-stepping where no block applies.
   Fault points, retirement counts and cycle accounting are identical
   to [run_go] by construction. *)
let rec run_blocks_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    match Block_cache.find m.bc pc with
    | Some b ->
      if b.n <= fuel then begin
        let fuel = exec_chain m b fuel in
        Sim_probe.chain_flush m.probe;
        run_blocks_go m tags shift mask fuel
      end
      else begin
        step_one m tags shift mask pc;
        run_blocks_go m tags shift mask (fuel - 1)
      end
    | None -> (
      match compile_block_timed m pc with
      | Some b ->
        Block_cache.set m.bc pc b;
        run_blocks_go m tags shift mask fuel
      | None ->
        step_one m tags shift mask pc;
        run_blocks_go m tags shift mask (fuel - 1))
  end

(* Region-dispatch run loop: [run_blocks_go] with a region probe ahead
   of the block probe, and chaining through [exec_chain_r] so hotness
   and successor profiles accumulate.  Fuel discipline is unchanged —
   a region pass only runs when it fits whole, and when it does not,
   dispatch falls through to the identical block/interpreter ladder. *)
let rec run_regions_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    match Region_cache.find m.rc pc with
    | Some r when r.r_n <= fuel ->
      let fuel = exec_region m r fuel in
      Sim_probe.chain_flush m.probe;
      run_regions_go m tags shift mask fuel
    | _ -> (
      match Block_cache.find m.bc pc with
      | Some b ->
        if b.n <= fuel then begin
          let fuel = exec_chain_r m b fuel in
          Sim_probe.chain_flush m.probe;
          run_regions_go m tags shift mask fuel
        end
        else begin
          step_one m tags shift mask pc;
          run_regions_go m tags shift mask (fuel - 1)
        end
      | None -> (
        match compile_block_timed m pc with
        | Some b ->
          Block_cache.set m.bc pc b;
          run_regions_go m tags shift mask fuel
        | None ->
          step_one m tags shift mask pc;
          run_regions_go m tags shift mask (fuel - 1)))
  end

let run ?(fuel = default_fuel) m =
  let i0 = m.insns in
  let mi0 = Cache.misses m.icache in
  let t0 = Sim_probe.run_start m.probe in
  let finish () =
    let retired = m.insns - i0 in
    m.cycles <- m.cycles + retired;
    Cache.add_hits m.icache (retired - (Cache.misses m.icache - mi0));
    Sim_probe.chain_flush m.probe;
    Sim_probe.retired m.probe retired;
    Sim_probe.run_done m.probe t0
  in
  let tags, shift, mask = Cache.probe m.icache in
  let go =
    if m.regions then run_regions_go
    else if m.blocks then run_blocks_go
    else run_go
  in
  (try go m tags shift mask fuel
   with e ->
     finish ();
     Sim_probe.fault m.probe ~pc:m.pc;
     raise e);
  finish ()

(* ------------------------------------------------------------------ *)
(* Harness: args in r3-r10 / f1-f8 by class; further args on the stack
   at sp+8, 4 bytes per word slot (doubles 8-aligned pairs).           *)

type arg = Int of int | Single of float | Double of float

let arg_base = 8

let place_args m ~sp args =
  let islot = ref 0 and fslot = ref 0 and stack = ref 0 in
  List.iter
    (fun a ->
      match a with
      | Int v ->
        if !islot < 8 then begin
          set m (3 + !islot) v;
          incr islot
        end
        else begin
          Mem.write_u32 m.mem (sp + arg_base + (4 * !stack)) (u32 v);
          incr stack
        end
      | Single v | Double v ->
        let v = match a with Single v -> single v | _ -> v in
        if !fslot < 8 then begin
          set_fval m (1 + !fslot) v;
          incr fslot
        end
        else begin
          if !stack land 1 = 1 then incr stack;
          Mem.write_u64 m.mem (sp + arg_base + (4 * !stack)) (Int64.bits_of_float v);
          stack := !stack + 2
        end)
    args

let call ?fuel m ~entry args =
  let sp = m.stack_top land lnot 7 in
  set m 1 sp;
  m.lr <- halt_addr;
  place_args m ~sp args;
  m.pc <- entry;
  run ?fuel m

let ret_int m = m.regs.(3)
let ret_double m = fval m 1
let ret_single m = fval m 1

let reset_stats m =
  m.cycles <- 0;
  m.insns <- 0;
  Cache.reset_stats m.icache;
  Cache.reset_stats m.dcache

(* Models v_end's icache invalidation: drop both the timing caches and
   every predecoded instruction.  (The predecode drop is belt-and-braces
   — the write watcher already keeps it coherent — and costs nothing on
   the simulated clock.) *)
let flush_caches m =
  Cache.flush m.icache;
  Cache.flush m.dcache;
  Decode_cache.clear m.pdc;
  Block_cache.clear m.bc;
  Region_cache.clear m.rc
