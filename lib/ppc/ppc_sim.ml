(* PowerPC (32-bit) simulator.

   Big-endian core, no delay slots.  Integer registers hold
   sign-extended 32-bit values in OCaml ints; FP registers hold 64-bit
   IEEE bit patterns (fctiwz leaves an integer word in an FP register,
   as on hardware).  CR0's lt/gt/eq bits, LR and CTR are modeled; other
   CR fields, XER and the record forms are not needed by the VCODE
   port. *)

open Vmachine
module A = Ppc_asm

let halt_addr = 0x10000000

exception Machine_error of string

type t = {
  mem : Mem.t;
  icache : Cache.t;
  dcache : Cache.t;
  pdc : A.t Decode_cache.t; (* host-side predecode; no cycle effect *)
  predecode : bool;
  cfg : Mconfig.t;
  regs : int array;    (* 32, sign-extended 32-bit *)
  fregs : int64 array; (* 32, raw bit patterns *)
  mutable lr : int;
  mutable ctr : int;
  mutable cr_lt : bool;
  mutable cr_gt : bool;
  mutable cr_eq : bool;
  mutable pc : int;
  mutable nextpc : int; (* next-pc scratch for [step]; avoids a per-step ref *)
  mutable cycles : int;
  mutable insns : int;
  mutable stack_top : int;
}

let create ?(predecode = true) (cfg : Mconfig.t) =
  let mem = Mem.create ~big_endian:true ~size:cfg.mem_bytes () in
  let pdc = Decode_cache.create ~mem_bytes:cfg.mem_bytes in
  Mem.set_write_watcher mem (Decode_cache.invalidate pdc);
  {
    mem;
    pdc;
    predecode;
    icache = Cache.create ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.imiss_penalty;
    dcache = Cache.create ~size_bytes:cfg.dcache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.dmiss_penalty;
    cfg;
    regs = Array.make 32 0;
    fregs = Array.make 32 0L;
    lr = 0;
    ctr = 0;
    cr_lt = false;
    cr_gt = false;
    cr_eq = false;
    pc = 0;
    nextpc = 0;
    cycles = 0;
    insns = 0;
    stack_top = cfg.mem_bytes - 256;
  }

(* branchless sign-extension from bit 31 (OCaml ints are 63-bit, so the
   shift pair drops bits 32+ and replicates bit 31 upward) *)
let[@inline] sext32 v = (v lsl 31) asr 31

let u32 v = v land 0xFFFFFFFF

(* register numbers come out of [Ppc_asm.decode] masked to 5 bits *)
let[@inline] get m r = Array.unsafe_get m.regs r
let[@inline] set m r v = Array.unsafe_set m.regs r (sext32 v)

(* RA = 0 means literal zero in D-form address/operand computation *)
let[@inline] get0 m r = if r = 0 then 0 else Array.unsafe_get m.regs r

let fval m f = Int64.float_of_bits m.fregs.(f)
let set_fval m f v = m.fregs.(f) <- Int64.bits_of_float v
let single v = Int32.float_of_bits (Int32.bits_of_float v)

let[@inline] daccess m addr =
  let p = Cache.access m.dcache addr in
  if p <> 0 then m.cycles <- m.cycles + p
(* write-through: always 0 penalty, but the hit/miss stats must tick *)
let[@inline] waccess m addr = ignore (Cache.write_access m.dcache addr : int)

let set_cr_signed m a b =
  m.cr_lt <- a < b;
  m.cr_gt <- a > b;
  m.cr_eq <- a = b

let set_cr_unsigned m a b =
  let a = u32 a and b = u32 b in
  m.cr_lt <- a < b;
  m.cr_gt <- a > b;
  m.cr_eq <- a = b

let rlwinm_mask mb me =
  let mask = ref 0 in
  let i = ref mb in
  let stop = ref false in
  while not !stop do
    mask := !mask lor (1 lsl (31 - !i));
    if !i = me then stop := true else i := (!i + 1) land 31
  done;
  !mask

let rotl32 v sh = u32 ((u32 v lsl sh) lor (u32 v lsr (32 - sh land 31)))

(* Decode the word at [pc], consulting the predecode cache first.  The
   miss path preserves the uncached fault behaviour exactly. *)
let fetch m pc =
  match Decode_cache.find m.pdc pc with
  | Some i -> i
  | None ->
    let w = Mem.read_u32 m.mem pc in
    let insn =
      try A.decode w with A.Bad_insn _ ->
        raise (Machine_error (Printf.sprintf "illegal instruction 0x%08x at 0x%x" w pc))
    in
    if m.predecode then Decode_cache.set m.pdc pc insn;
    insn

(* The caller is responsible for the icache timing access on [m.pc]
   (see [run_go]/[step]): doing it in the small run loop rather than in
   this large function keeps its register pressure out of every arm. *)
let step_inner m pc =
  m.insns <- m.insns + 1;
  let insn = fetch m pc in
  m.nextpc <- pc + 4;
  (match insn with
  | A.Addi (rt, ra, si) -> set m rt (get0 m ra + si)
  | A.Addis (rt, ra, si) -> set m rt (get0 m ra + (si * 65536))
  | A.Mulli (rt, ra, si) ->
    m.cycles <- m.cycles + 4;
    set m rt (get m ra * si)
  | A.Cmpi (ra, si) -> set_cr_signed m (get m ra) si
  | A.Cmpli (ra, ui) -> set_cr_unsigned m (get m ra) ui
  | A.Ori (ra, rs, ui) -> set m ra (get m rs lor ui)
  | A.Oris (ra, rs, ui) -> set m ra (get m rs lor (ui lsl 16))
  | A.Xori (ra, rs, ui) -> set m ra (get m rs lxor ui)
  | A.Andi (ra, rs, ui) ->
    let v = get m rs land ui in
    set m ra v;
    set_cr_signed m (sext32 v) 0
  | A.Add (rt, ra, rb) -> set m rt (get m ra + get m rb)
  | A.Subf (rt, ra, rb) -> set m rt (get m rb - get m ra)
  | A.Mullw (rt, ra, rb) ->
    m.cycles <- m.cycles + 4;
    set m rt (get m ra * get m rb)
  | A.Divw (rt, ra, rb) ->
    m.cycles <- m.cycles + 19;
    let a = get m ra and b = get m rb in
    if b = 0 then set m rt 0 else set m rt (Int.div a b)
  | A.Divwu (rt, ra, rb) ->
    m.cycles <- m.cycles + 19;
    let a = u32 (get m ra) and b = u32 (get m rb) in
    if b = 0 then set m rt 0 else set m rt (a / b)
  | A.Neg (rt, ra) -> set m rt (-get m ra)
  | A.And (ra, rs, rb) -> set m ra (get m rs land get m rb)
  | A.Or (ra, rs, rb) -> set m ra (get m rs lor get m rb)
  | A.Xor (ra, rs, rb) -> set m ra (get m rs lxor get m rb)
  | A.Nor (ra, rs, rb) -> set m ra (lnot (get m rs lor get m rb))
  | A.Slw (ra, rs, rb) ->
    let sh = get m rb land 63 in
    set m ra (if sh > 31 then 0 else get m rs lsl sh)
  | A.Srw (ra, rs, rb) ->
    let sh = get m rb land 63 in
    set m ra (if sh > 31 then 0 else u32 (get m rs) lsr sh)
  | A.Sraw (ra, rs, rb) ->
    let sh = get m rb land 63 in
    set m ra (get m rs asr min sh 31)
  | A.Srawi (ra, rs, sh) -> set m ra (get m rs asr sh)
  | A.Cntlzw (ra, rs) ->
    let v = u32 (get m rs) in
    let rec go n bit = if bit < 0 || v land (1 lsl bit) <> 0 then n else go (n + 1) (bit - 1) in
    set m ra (if v = 0 then 32 else go 0 31)
  | A.Cmp (ra, rb) -> set_cr_signed m (get m ra) (get m rb)
  | A.Cmpl (ra, rb) -> set_cr_unsigned m (get m ra) (get m rb)
  | A.Rlwinm (ra, rs, sh, mb, me) ->
    set m ra (rotl32 (get m rs) sh land rlwinm_mask mb me)
  | A.Lbz (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    set m rt (Mem.read_u8 m.mem a)
  | A.Lhz (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    set m rt (Mem.read_u16 m.mem a)
  | A.Lha (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    let v = Mem.read_u16 m.mem a in
    set m rt (if v land 0x8000 <> 0 then v - 0x10000 else v)
  | A.Lwz (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    set m rt (Mem.read_u32 m.mem a)
  | A.Stb (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    waccess m a;
    Mem.write_u8 m.mem a (get m rt)
  | A.Sth (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    waccess m a;
    Mem.write_u16 m.mem a (get m rt)
  | A.Stw (rt, ra, d) ->
    let a = u32 (get0 m ra) + d in
    waccess m a;
    Mem.write_u32 m.mem a (u32 (get m rt))
  | A.Lfs (t, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    set_fval m t (Int32.float_of_bits (Int32.of_int (Mem.read_u32 m.mem a)))
  | A.Lfd (t, ra, d) ->
    let a = u32 (get0 m ra) + d in
    daccess m a;
    m.fregs.(t) <- Mem.read_u64 m.mem a
  | A.Stfs (t, ra, d) ->
    let a = u32 (get0 m ra) + d in
    waccess m a;
    Mem.write_u32 m.mem a (Int32.to_int (Int32.bits_of_float (fval m t)) land 0xFFFFFFFF)
  | A.Stfd (t, ra, d) ->
    let a = u32 (get0 m ra) + d in
    waccess m a;
    Mem.write_u64 m.mem a m.fregs.(t)
  | A.B li -> m.nextpc <- pc + (4 * li)
  | A.Bl li ->
    m.lr <- pc + 4;
    m.nextpc <- pc + (4 * li)
  | A.Bc (bo, bi, bd) ->
    let bit = match bi with 0 -> m.cr_lt | 1 -> m.cr_gt | 2 -> m.cr_eq | _ -> false in
    let taken =
      match bo with
      | 12 -> bit
      | 4 -> not bit
      | 20 -> true
      | _ -> raise (Machine_error (Printf.sprintf "unsupported BO %d at 0x%x" bo pc))
    in
    if taken then m.nextpc <- pc + (4 * bd)
  | A.Blr -> m.nextpc <- u32 m.lr
  | A.Bctr -> m.nextpc <- u32 m.ctr
  | A.Bctrl ->
    m.lr <- pc + 4;
    m.nextpc <- u32 m.ctr
  | A.Mflr rt -> set m rt m.lr
  | A.Mtlr rs -> m.lr <- u32 (get m rs)
  | A.Mtctr rs -> m.ctr <- u32 (get m rs)
  | A.Fadd (t, a, b) -> m.cycles <- m.cycles + 2; set_fval m t (fval m a +. fval m b)
  | A.Fsub (t, a, b) -> m.cycles <- m.cycles + 2; set_fval m t (fval m a -. fval m b)
  | A.Fmul (t, a, c) -> m.cycles <- m.cycles + 3; set_fval m t (fval m a *. fval m c)
  | A.Fdiv (t, a, b) -> m.cycles <- m.cycles + 17; set_fval m t (fval m a /. fval m b)
  | A.Fadds (t, a, b) -> m.cycles <- m.cycles + 2; set_fval m t (single (fval m a +. fval m b))
  | A.Fsubs (t, a, b) -> m.cycles <- m.cycles + 2; set_fval m t (single (fval m a -. fval m b))
  | A.Fmuls (t, a, c) -> m.cycles <- m.cycles + 3; set_fval m t (single (fval m a *. fval m c))
  | A.Fdivs (t, a, b) -> m.cycles <- m.cycles + 17; set_fval m t (single (fval m a /. fval m b))
  | A.Fneg (t, b) -> set_fval m t (-.fval m b)
  | A.Fmr (t, b) -> m.fregs.(t) <- m.fregs.(b)
  | A.Frsp (t, b) -> set_fval m t (single (fval m b))
  | A.Fctiwz (t, b) ->
    let v = Int64.of_float (Float.trunc (fval m b)) in
    m.fregs.(t) <- Int64.logand v 0xFFFFFFFFL
  | A.Fcmpu (a, b) ->
    let x = fval m a and y = fval m b in
    m.cr_lt <- x < y;
    m.cr_gt <- x > y;
    m.cr_eq <- x = y);
  m.pc <- m.nextpc

let default_fuel = 200_000_000

(* Tight tail-recursive loop: the fuel check is a register countdown
   rather than a per-step ref increment/compare. *)
(* single-step with exact cycle accounting (the public interface) *)
let step m =
  let mi0 = Cache.misses m.icache in
  (let p = Cache.access_uncounted m.icache m.pc in
   if p <> 0 then m.cycles <- m.cycles + p);
  step_inner m m.pc;
  m.cycles <- m.cycles + 1;
  Cache.add_hits m.icache (1 - (Cache.misses m.icache - mi0))

(* [step_inner] defers the 1-cycle-per-instruction component of the
   accounting to its caller; [run] adds it in bulk at exit from the
   instruction-count delta, so the hot loop carries one counter update
   less per step.  Totals are exact whenever [run] returns or raises. *)
(* The icache tag probe is inlined here with its geometry held in
   parameters (registers), falling back to the full model only on a
   miss; [run] reconciles the hit counter at exit from the retired-
   instruction delta, since a fetch loop performs exactly one icache
   access per retired instruction. *)
let rec run_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    let line = pc lsr shift in
    if Array.unsafe_get tags (line land mask) <> line then
      (let p = Cache.access_uncounted m.icache pc in
       if p <> 0 then m.cycles <- m.cycles + p);
    step_inner m pc;
    run_go m tags shift mask (fuel - 1)
  end

let run ?(fuel = default_fuel) m =
  let i0 = m.insns in
  let mi0 = Cache.misses m.icache in
  let finish () =
    let retired = m.insns - i0 in
    m.cycles <- m.cycles + retired;
    Cache.add_hits m.icache (retired - (Cache.misses m.icache - mi0))
  in
  let tags, shift, mask = Cache.probe m.icache in
  (try run_go m tags shift mask fuel
   with e ->
     finish ();
     raise e);
  finish ()

(* ------------------------------------------------------------------ *)
(* Harness: args in r3-r10 / f1-f8 by class; further args on the stack
   at sp+8, 4 bytes per word slot (doubles 8-aligned pairs).           *)

type arg = Int of int | Single of float | Double of float

let arg_base = 8

let place_args m ~sp args =
  let islot = ref 0 and fslot = ref 0 and stack = ref 0 in
  List.iter
    (fun a ->
      match a with
      | Int v ->
        if !islot < 8 then begin
          set m (3 + !islot) v;
          incr islot
        end
        else begin
          Mem.write_u32 m.mem (sp + arg_base + (4 * !stack)) (u32 v);
          incr stack
        end
      | Single v | Double v ->
        let v = match a with Single v -> single v | _ -> v in
        if !fslot < 8 then begin
          set_fval m (1 + !fslot) v;
          incr fslot
        end
        else begin
          if !stack land 1 = 1 then incr stack;
          Mem.write_u64 m.mem (sp + arg_base + (4 * !stack)) (Int64.bits_of_float v);
          stack := !stack + 2
        end)
    args

let call ?fuel m ~entry args =
  let sp = m.stack_top land lnot 7 in
  set m 1 sp;
  m.lr <- halt_addr;
  place_args m ~sp args;
  m.pc <- entry;
  run ?fuel m

let ret_int m = m.regs.(3)
let ret_double m = fval m 1
let ret_single m = fval m 1

let reset_stats m =
  m.cycles <- 0;
  m.insns <- 0;
  Cache.reset_stats m.icache;
  Cache.reset_stats m.dcache

(* Models v_end's icache invalidation: drop both the timing caches and
   every predecoded instruction.  (The predecode drop is belt-and-braces
   — the write watcher already keeps it coherent — and costs nothing on
   the simulated clock.) *)
let flush_caches m =
  Cache.flush m.icache;
  Cache.flush m.dcache;
  Decode_cache.clear m.pdc
