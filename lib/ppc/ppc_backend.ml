(* The VCODE PowerPC (32-bit) port.

   The fourth port, written after the fact to exercise the paper's
   retargeting story end-to-end: implement {!Vcodebase.Target.S}, let
   the generated cross-target regression tests shake out the mapping.

   Notable mappings:
   - immediate shifts are rlwinm forms; variable shifts mask the amount
     to 31 first (slw/srw interpret six bits, VCODE's semantics use
     five);
   - logical-not is the classic cntlzw >> 5;
   - mod is divw/mullw/subf (no remainder instruction);
   - int<->float conversions use the PowerPC magic-number technique
     (0x4330...-based), since there is no direct transfer path;
   - following the paper ("the register allocator makes unused argument
     registers available"), r4-r10 are in the temp pool; the
     argument-shuffle in do_call therefore solves a general parallel
     move problem rather than assuming conflict-free sources.

   Frame layout (grows down):
     sp+0  .. sp+7     linkage (back chain, reserved)
     sp+8  .. sp+47    outgoing stack arguments (10 word slots)
     sp+48 .. sp+55    int<->float transfer scratch
     sp+56             saved LR
     sp+60 .. sp+239   register save area (ints, then doubles)
     sp+240 ..         locals

   Scratch registers: r12 (primary), r11 (secondary), f13 (float). *)

open Vcodebase
module A = Ppc_asm

let reserve_words = 48
let outarg_base = 8
let xfer = 48
let save_base = 56
let locals_base = 240
let max_stack_slots = 10

let k_branch = 0 (* 14-bit conditional displacement *)
let k_jump = 1   (* 24-bit unconditional displacement *)
let k_call = 2   (* 24-bit bl displacement *)
let k_retj = 3   (* b to epilogue, elided to blr for frameless leaves *)

let sp = 1
let scratch = 12
let scratch2 = 11
let fscratch = 13

let rnum = Reg.idx

let e g i = ignore (Codebuf.emit g.Gen.buf (A.encode i))

let desc : Machdesc.t =
  let r n = Reg.R n and f n = Reg.F n in
  {
    Machdesc.name = "ppc";
    word_bits = 32;
    big_endian = true;
    branch_delay_slots = 0;
    load_delay = 1;
    nregs = 32;
    nfregs = 32;
    temps = [| r 10; r 9; r 8; r 7; r 6; r 5; r 4 |];
    vars = [| r 14; r 15; r 16; r 17; r 18; r 19; r 20; r 21; r 22; r 23; r 24; r 25 |];
    ftemps = [| f 0; f 9; f 10; f 11; f 12 |];
    fvars = [| f 14; f 15; f 16; f 17; f 18; f 19; f 20; f 21 |];
    callee_mask =
      (1 lsl 14) lor (1 lsl 15) lor (1 lsl 16) lor (1 lsl 17) lor (1 lsl 18)
      lor (1 lsl 19) lor (1 lsl 20) lor (1 lsl 21) lor (1 lsl 22) lor (1 lsl 23)
      lor (1 lsl 24) lor (1 lsl 25);
    fcallee_mask =
      (1 lsl 14) lor (1 lsl 15) lor (1 lsl 16) lor (1 lsl 17) lor (1 lsl 18)
      lor (1 lsl 19) lor (1 lsl 20) lor (1 lsl 21);
    arg_regs = [| r 3; r 4; r 5; r 6; r 7; r 8; r 9; r 10 |];
    farg_regs = [| f 1; f 2; f 3; f 4; f 5; f 6; f 7; f 8 |];
    ret_reg = r 3;
    fret_reg = f 1;
    sp = r 1;
    locals_base;
    scratch = r 12;
    reg_name = (fun reg ->
      match reg with Reg.R n -> A.reg_name n | Reg.F n -> A.freg_name n);
  }

let fits16s v = v >= -32768 && v <= 32767
let fits16u v = v >= 0 && v <= 65535
let fits32 v = v >= -0x80000000 && v <= 0xFFFFFFFF

let load_const g rd v =
  if not (fits32 v) then
    Verror.fail (Verror.Range (Printf.sprintf "PowerPC immediate %d" v));
  if fits16s v then e g (A.Addi (rd, 0, v))
  else begin
    let v32 = v land 0xFFFFFFFF in
    let hi = (v32 lsr 16) land 0xFFFF and lo = v32 land 0xFFFF in
    e g (A.Addis (rd, 0, hi));
    if lo <> 0 then e g (A.Ori (rd, rd, lo))
  end

(* %hi/%lo split with carry adjustment for signed 16-bit displacements *)
let hi_lo addr =
  let lo = addr land 0xFFFF in
  let lo_s = if lo >= 0x8000 then lo - 0x10000 else lo in
  let hi = ((addr - lo_s) lsr 16) land 0xFFFF in
  (hi, lo)

(* ------------------------------------------------------------------ *)
(* ALU                                                                 *)

let signed_ty (t : Vtype.t) = Vtype.is_signed t

let emit_mod g signed d a b =
  e g (if signed then A.Divw (scratch, a, b) else A.Divwu (scratch, a, b));
  e g (A.Mullw (scratch, scratch, b));
  e g (A.Subf (d, scratch, a))

let arith_core g (op : Op.binop) (t : Vtype.t) rd rs1 rs2 =
  if Vtype.is_float t then begin
    let dbl = t <> Vtype.F in
    let d = rnum rd and a = rnum rs1 and b = rnum rs2 in
    match op with
    | Op.Add -> e g (if dbl then A.Fadd (d, a, b) else A.Fadds (d, a, b))
    | Op.Sub -> e g (if dbl then A.Fsub (d, a, b) else A.Fsubs (d, a, b))
    | Op.Mul -> e g (if dbl then A.Fmul (d, a, b) else A.Fmuls (d, a, b))
    | Op.Div -> e g (if dbl then A.Fdiv (d, a, b) else A.Fdivs (d, a, b))
    | Op.Mod | Op.And | Op.Or | Op.Xor | Op.Lsh | Op.Rsh ->
      Verror.fail (Verror.Bad_type "float bit operation")
  end
  else
    let d = rnum rd and a = rnum rs1 and b = rnum rs2 in
    let masked_shift mk =
      (* VCODE shifts use five bits of the amount; slw/srw use six *)
      e g (A.Andi (scratch, b, 31));
      e g (mk scratch)
    in
    match op with
    | Op.Add -> e g (A.Add (d, a, b))
    | Op.Sub -> e g (A.Subf (d, b, a))
    | Op.Mul -> e g (A.Mullw (d, a, b))
    | Op.Div -> e g (if signed_ty t then A.Divw (d, a, b) else A.Divwu (d, a, b))
    | Op.Mod -> emit_mod g (signed_ty t) d a b
    | Op.And -> e g (A.And (d, a, b))
    | Op.Or -> e g (A.Or (d, a, b))
    | Op.Xor -> e g (A.Xor (d, a, b))
    | Op.Lsh -> masked_shift (fun sh -> A.Slw (d, a, sh))
    | Op.Rsh ->
      if signed_ty t then masked_shift (fun sh -> A.Sraw (d, a, sh))
      else masked_shift (fun sh -> A.Srw (d, a, sh))

let arith g op t rd rs1 rs2 =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.arith op);
  arith_core g op t rd rs1 rs2

let arith_imm g (op : Op.binop) (t : Vtype.t) rd rs1 imm =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.arith_imm op);
  let d = rnum rd and a = rnum rs1 in
  let via_reg () =
    load_const g scratch2 imm;
    arith_core g op t rd rs1 (Reg.R scratch2)
  in
  match op with
  | Op.Add -> if fits16s imm then e g (A.Addi (d, a, imm)) else via_reg ()
  | Op.Sub -> if fits16s (-imm) then e g (A.Addi (d, a, -imm)) else via_reg ()
  | Op.And -> if fits16u imm then e g (A.Andi (d, a, imm)) else via_reg ()
  | Op.Or -> if fits16u imm then e g (A.Ori (d, a, imm)) else via_reg ()
  | Op.Xor -> if fits16u imm then e g (A.Xori (d, a, imm)) else via_reg ()
  | Op.Lsh ->
    let sh = imm land 31 in
    if sh = 0 then e g (A.Or (d, a, a)) else e g (A.Rlwinm (d, a, sh, 0, 31 - sh))
  | Op.Rsh ->
    let sh = imm land 31 in
    if signed_ty t then e g (A.Srawi (d, a, sh))
    else if sh = 0 then e g (A.Or (d, a, a))
    else e g (A.Rlwinm (d, a, 32 - sh, sh, 31))
  | Op.Mul -> if fits16s imm then e g (A.Mulli (d, a, imm)) else via_reg ()
  | Op.Div | Op.Mod -> via_reg ()

let unary g (op : Op.unop) (t : Vtype.t) rd rs =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.unary op);
  if Vtype.is_float t then begin
    let d = rnum rd and s = rnum rs in
    match op with
    | Op.Mov -> e g (A.Fmr (d, s))
    | Op.Neg -> e g (A.Fneg (d, s))
    | Op.Com | Op.Not -> Verror.fail (Verror.Bad_type "float bit operation")
  end
  else
    let d = rnum rd and s = rnum rs in
    match op with
    | Op.Com -> e g (A.Nor (d, s, s))
    | Op.Not ->
      (* the classic PowerPC sequence: cntlzw; >> 5 *)
      e g (A.Cntlzw (d, s));
      e g (A.Rlwinm (d, d, 32 - 5, 5, 31))
    | Op.Mov -> e g (A.Or (d, s, s))
    | Op.Neg -> e g (A.Neg (d, s))

let set g (_t : Vtype.t) rd imm64 =
  Gen.note_write g rd;
  Gen.count_insn g Opk.set;
  if Int64.compare imm64 (-0x80000000L) < 0 || Int64.compare imm64 0xFFFFFFFFL > 0 then
    Verror.fail (Verror.Range (Int64.to_string imm64));
  load_const g (rnum rd) (Int64.to_int imm64)

let setf_core g (t : Vtype.t) rd v =
  let dbl = match t with Vtype.D -> true | _ -> false in
  let site = Codebuf.length g.Gen.buf in
  e g (A.Addis (scratch, 0, 0));
  e g (if dbl then A.Lfd (rnum rd, scratch, 0) else A.Lfs (rnum rd, scratch, 0));
  let bits = if dbl then Int64.bits_of_float v else Int64.of_int32 (Int32.bits_of_float v) in
  Gen.add_fimm g ~site ~bits ~dbl

let setf g t rd v =
  Gen.note_write g rd;
  Gen.count_insn g Opk.setf;
  setf_core g t rd v

(* ------------------------------------------------------------------ *)
(* Branches                                                            *)

let emit_branch_to g ~bo ~bi lab =
  let site = Codebuf.length g.Gen.buf in
  e g (A.Bc (bo, bi, 0));
  Gen.add_reloc g ~site ~lab ~kind:k_branch

(* BO/BI for each condition after a cmp: bit 0 = lt, 1 = gt, 2 = eq *)
let cond_bo_bi = function
  | Op.Lt -> (12, 0)
  | Op.Gt -> (12, 1)
  | Op.Eq -> (12, 2)
  | Op.Ge -> (4, 0)
  | Op.Le -> (4, 1)
  | Op.Ne -> (4, 2)

let unsigned_cmp (t : Vtype.t) =
  match t with Vtype.U | Vtype.UL | Vtype.P | Vtype.UC | Vtype.US -> true | _ -> false

let branch g (c : Op.cond) (t : Vtype.t) rs1 rs2 lab =
  if Vtype.is_float t then begin
    e g (A.Fcmpu (rnum rs1, rnum rs2));
    let bo, bi = cond_bo_bi c in
    emit_branch_to g ~bo ~bi lab
  end
  else begin
    e g
      (if unsigned_cmp t then A.Cmpl (rnum rs1, rnum rs2)
       else A.Cmp (rnum rs1, rnum rs2));
    let bo, bi = cond_bo_bi c in
    emit_branch_to g ~bo ~bi lab
  end

let branch_imm g (c : Op.cond) (t : Vtype.t) rs1 imm lab =
  if Vtype.is_float t then Verror.fail (Verror.Bad_type "float immediate branch");
  let u = unsigned_cmp t in
  if (not u) && fits16s imm then e g (A.Cmpi (rnum rs1, imm))
  else if u && fits16u imm then e g (A.Cmpli (rnum rs1, imm))
  else begin
    load_const g scratch2 imm;
    e g (if u then A.Cmpl (rnum rs1, scratch2) else A.Cmp (rnum rs1, scratch2))
  end;
  let bo, bi = cond_bo_bi c in
  emit_branch_to g ~bo ~bi lab

(* ------------------------------------------------------------------ *)
(* Conversions: the PowerPC magic-number technique                     *)

let magic_signed = Int64.float_of_bits 0x4330000080000000L
let magic_unsigned = Int64.float_of_bits 0x4330000000000000L

let cvt g ~(from : Vtype.t) ~(to_ : Vtype.t) rd rs =
  Gen.note_write g rd;
  Gen.count_insn g Opk.cvt;
  if (not (Vtype.is_float from)) && not (Vtype.is_float to_) then
    e g (A.Or (rnum rd, rnum rs, rnum rs))
  else
    match (from, to_) with
    | (Vtype.I | Vtype.L), (Vtype.F | Vtype.D) ->
      (* build 0x43300000:(x ^ 0x80000000) in memory, subtract magic *)
      e g (A.Addis (scratch, 0, 0x4330));
      e g (A.Stw (scratch, sp, xfer));
      e g (A.Addis (scratch2, rnum rs, 0x8000)); (* adds 2^31 mod 2^32 = bit flip *)
      e g (A.Stw (scratch2, sp, xfer + 4));
      e g (A.Lfd (rnum rd, sp, xfer));
      setf_core g Vtype.D (Reg.F fscratch) magic_signed;
      e g (A.Fsub (rnum rd, rnum rd, fscratch));
      if to_ = Vtype.F then e g (A.Frsp (rnum rd, rnum rd))
    | (Vtype.U | Vtype.UL), Vtype.D ->
      e g (A.Addis (scratch, 0, 0x4330));
      e g (A.Stw (scratch, sp, xfer));
      e g (A.Stw (rnum rs, sp, xfer + 4));
      e g (A.Lfd (rnum rd, sp, xfer));
      setf_core g Vtype.D (Reg.F fscratch) magic_unsigned;
      e g (A.Fsub (rnum rd, rnum rd, fscratch))
    | (Vtype.F | Vtype.D), (Vtype.I | Vtype.L) ->
      e g (A.Fctiwz (fscratch, rnum rs));
      e g (A.Stfd (fscratch, sp, xfer));
      (* big-endian: the integer word is the low word, at +4 *)
      e g (A.Lwz (rnum rd, sp, xfer + 4))
    | Vtype.F, Vtype.D -> e g (A.Fmr (rnum rd, rnum rs))
    | Vtype.D, Vtype.F -> e g (A.Frsp (rnum rd, rnum rs))
    | _ ->
      Verror.fail
        (Verror.Bad_type
           (Printf.sprintf "cv%s2%s" (Vtype.to_string from) (Vtype.to_string to_)))

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)

(* Emit the access given a base register number and an in-range 16-bit
   displacement. *)
let emit_load g (t : Vtype.t) rd b o =
  match t with
  | Vtype.C ->
    e g (A.Lbz (rnum rd, b, o));
    (* sign-extend the byte: rotate it to the top, arithmetic shift *)
    e g (A.Rlwinm (rnum rd, rnum rd, 24, 0, 31));
    e g (A.Srawi (rnum rd, rnum rd, 24))
  | Vtype.UC -> e g (A.Lbz (rnum rd, b, o))
  | Vtype.S -> e g (A.Lha (rnum rd, b, o))
  | Vtype.US -> e g (A.Lhz (rnum rd, b, o))
  | Vtype.I | Vtype.U | Vtype.L | Vtype.UL | Vtype.P -> e g (A.Lwz (rnum rd, b, o))
  | Vtype.F -> e g (A.Lfs (rnum rd, b, o))
  | Vtype.D -> e g (A.Lfd (rnum rd, b, o))
  | Vtype.V -> Verror.fail (Verror.Bad_type "ld.v")

let emit_store g (t : Vtype.t) rv b o =
  match t with
  | Vtype.C | Vtype.UC -> e g (A.Stb (rnum rv, b, o))
  | Vtype.S | Vtype.US -> e g (A.Sth (rnum rv, b, o))
  | Vtype.I | Vtype.U | Vtype.L | Vtype.UL | Vtype.P -> e g (A.Stw (rnum rv, b, o))
  | Vtype.F -> e g (A.Stfs (rnum rv, b, o))
  | Vtype.D -> e g (A.Stfd (rnum rv, b, o))
  | Vtype.V -> Verror.fail (Verror.Bad_type "st.v")

let load_imm g (t : Vtype.t) rd base off =
  Gen.note_write g rd;
  Gen.count_insn g Opk.ld;
  if fits16s off then emit_load g t rd (rnum base) off
  else begin
    load_const g scratch off;
    e g (A.Add (scratch, scratch, rnum base));
    emit_load g t rd scratch 0
  end

let load_reg g (t : Vtype.t) rd base idx =
  Gen.note_write g rd;
  Gen.count_insn g Opk.ld;
  e g (A.Add (scratch, rnum base, rnum idx));
  emit_load g t rd scratch 0

let store_imm g (t : Vtype.t) rv base off =
  Gen.count_insn g Opk.st;
  if fits16s off then emit_store g t rv (rnum base) off
  else begin
    load_const g scratch off;
    e g (A.Add (scratch, scratch, rnum base));
    emit_store g t rv scratch 0
  end

let store_reg g (t : Vtype.t) rv base idx =
  Gen.count_insn g Opk.st;
  e g (A.Add (scratch, rnum base, rnum idx));
  emit_store g t rv scratch 0

(* ------------------------------------------------------------------ *)
(* Control                                                             *)

let jump g (t : Gen.jtarget) =
  match t with
  | Gen.Jlabel lab ->
    let site = Codebuf.length g.Gen.buf in
    e g (A.B 0);
    Gen.add_reloc g ~site ~lab ~kind:k_jump
  | Gen.Jaddr a ->
    load_const g scratch a;
    e g (A.Mtctr scratch);
    e g A.Bctr
  | Gen.Jreg r ->
    e g (A.Mtctr (rnum r));
    e g A.Bctr

let jal g (t : Gen.jtarget) =
  match t with
  | Gen.Jlabel lab ->
    let site = Codebuf.length g.Gen.buf in
    e g (A.Bl 0);
    Gen.add_reloc g ~site ~lab ~kind:k_call
  | Gen.Jaddr a ->
    let here = g.Gen.base + (4 * Codebuf.length g.Gen.buf) in
    e g (A.Bl ((a - here) asr 2))
  | Gen.Jreg r ->
    e g (A.Mtctr (rnum r));
    e g A.Bctrl

let nop g = ignore (Codebuf.emit g.Gen.buf A.nop_word)

(* ------------------------------------------------------------------ *)
(* Calling convention                                                  *)

type arg_loc = In_ireg of int | In_freg of int | On_stack of int (* stack idx *)

(* identical slot logic to Ppc_sim.place_args *)
let assign_slots (tys : Vtype.t array) : (Vtype.t * arg_loc) array =
  let islot = ref 0 and fslot = ref 0 and stack = ref 0 in
  Array.map
    (fun (t : Vtype.t) ->
      if Vtype.is_float t then
        if !fslot < 8 then begin
          let l = In_freg (1 + !fslot) in
          incr fslot;
          (t, l)
        end
        else begin
          if !stack land 1 = 1 then incr stack;
          let l = On_stack !stack in
          stack := !stack + 2;
          (t, l)
        end
      else if !islot < 8 then begin
        let l = In_ireg (3 + !islot) in
        incr islot;
        (t, l)
      end
      else begin
        let l = On_stack !stack in
        incr stack;
        (t, l)
      end)
    tys

let lambda g (tys : Vtype.t array) : Reg.t array =
  g.Gen.prologue_at <- Codebuf.reserve g.Gen.buf ~n:reserve_words ~fill:A.nop_word;
  g.Gen.prologue_words <- reserve_words;
  g.Gen.epilogue_lab <- Gen.genlabel g;
  let locs = assign_slots tys in
  Array.map
    (fun ((t : Vtype.t), loc) ->
      match loc with
      | In_ireg n ->
        let r = Reg.R n in
        Gen.mark_in_use g r;
        r
      | In_freg n ->
        let r = Reg.F n in
        Gen.mark_in_use g r;
        r
      | On_stack s ->
        let float = Vtype.is_float t in
        let r =
          match Gen.getreg g ~cls:`Var ~float with
          | Some r -> r
          | None -> (
            match Gen.getreg g ~cls:`Temp ~float with
            | Some r -> r
            | None -> Verror.fail (Verror.Registers_exhausted "incoming arguments"))
        in
        Gen.note_write g r;
        Gen.add_arg_load g ~slot:s r t;
        r)
    locs

let frame_size g =
  if
    g.Gen.made_call || g.Gen.locals_bytes > 0 || g.Gen.used_callee <> 0
    || g.Gen.used_fcallee <> 0
  then locals_base + ((g.Gen.locals_bytes + 7) land lnot 7)
  else 0

let ret g (t : Vtype.t) (r : Reg.t option) =
  (match (t, r) with
  | Vtype.V, _ | _, None -> ()
  | (Vtype.F | Vtype.D), Some r -> if rnum r <> 1 then e g (A.Fmr (1, rnum r))
  | _, Some r -> if rnum r <> 3 then e g (A.Or (3, rnum r, rnum r)));
  let site = Codebuf.length g.Gen.buf in
  e g (A.B 0);
  Gen.add_reloc g ~site ~lab:g.Gen.epilogue_lab ~kind:k_retj

let push_arg g (t : Vtype.t) (r : Reg.t) = Gen.push_call_arg g t r

(* Argument moves are a parallel-move problem on this target (the temp
   pool overlaps the argument registers); cycles break through r12. *)
let parallel_moves g (moves : (int * int) list) =
  Gen.parallel_moves ~scratch
    ~emit_mov:(fun d s -> if d <> s then e g (A.Or (d, s, s)))
    moves

let do_call g (target : Gen.jtarget) =
  let n = Gen.call_arg_count g in
  let tys = Array.init n (Gen.call_arg_ty g) in
  let locs = assign_slots tys in
  let nstack =
    Array.fold_left
      (fun acc (_, loc) -> match loc with On_stack s -> max acc (s + 2) | _ -> acc)
      0 locs
  in
  if nstack > max_stack_slots then
    Verror.fail (Verror.Unsupported "more than 10 outgoing stack slots");
  (* stack stores first *)
  Array.iteri
    (fun i ((t : Vtype.t), loc) ->
      let src = Gen.call_arg_reg g i in
      match loc with
      | On_stack s -> (
        let off = outarg_base + (4 * s) in
        match t with
        | Vtype.F -> e g (A.Stfs (rnum src, sp, off))
        | Vtype.D -> e g (A.Stfd (rnum src, sp, off))
        | _ -> e g (A.Stw (rnum src, sp, off)))
      | In_ireg _ | In_freg _ -> ())
    locs;
  (* register moves: floats are conflict-free (sources are never f1-f8
     unless already in place); integers go through the resolver *)
  Array.iteri
    (fun i (_, loc) ->
      let src = Gen.call_arg_reg g i in
      match loc with
      | In_freg n -> if rnum src <> n then e g (A.Fmr (n, rnum src))
      | In_ireg _ | On_stack _ -> ())
    locs;
  let imoves = ref [] in
  Array.iteri
    (fun i (_, loc) ->
      let src = Gen.call_arg_reg g i in
      match loc with
      | In_ireg n -> imoves := (n, rnum src) :: !imoves
      | In_freg _ | On_stack _ -> ())
    locs;
  parallel_moves g (List.rev !imoves);
  Gen.clear_call_args g;
  jal g target

let retval g (t : Vtype.t) (r : Reg.t) =
  match t with
  | Vtype.V -> ()
  | Vtype.F | Vtype.D -> if rnum r <> 1 then e g (A.Fmr (rnum r, 1))
  | _ -> if rnum r <> 3 then e g (A.Or (rnum r, 3, 3))

(* ------------------------------------------------------------------ *)
(* Finalization                                                        *)

let save_layout g =
  Gen.save_layout g ~first_off:(save_base + 4) ~int_bytes:4 ~limit:locals_base

let finish g =
  let frame = frame_size g in
  let saves = save_layout g in
  (* epilogue *)
  Gen.bind_label g g.Gen.epilogue_lab;
  if g.Gen.made_call then begin
    e g (A.Lwz (scratch, sp, save_base));
    e g (A.Mtlr scratch)
  end;
  List.iter
    (function
      | `Int (n, off) -> e g (A.Lwz (n, sp, off))
      | `Fp (n, off) -> e g (A.Lfd (n, sp, off)))
    saves;
  if frame <> 0 then e g (A.Addi (sp, sp, frame));
  e g A.Blr;
  (* constant pool *)
  Gen.place_fimms g ~big_endian:true ~patch:(fun ~site ~addr ->
      let hi, lo = hi_lo addr in
      Codebuf.set g.Gen.buf site (A.encode (A.Addis (scratch, 0, hi)));
      let old = Codebuf.get g.Gen.buf (site + 1) in
      Codebuf.set g.Gen.buf (site + 1) ((old land 0xFFFF0000) lor (lo land 0xFFFF)));
  (* prologue *)
  let prologue = ref [] in
  let add i = prologue := i :: !prologue in
  if frame <> 0 then add (A.Addi (sp, sp, -frame));
  if g.Gen.made_call then begin
    add (A.Mflr scratch);
    add (A.Stw (scratch, sp, save_base))
  end;
  List.iter
    (function
      | `Int (n, off) -> add (A.Stw (n, sp, off))
      | `Fp (n, off) -> add (A.Stfd (n, sp, off)))
    saves;
  Gen.iter_arg_loads g (fun ~slot r (t : Vtype.t) ->
      let off = frame + outarg_base + (4 * slot) in
      match t with
      | Vtype.F -> add (A.Lfs (rnum r, sp, off))
      | Vtype.D -> add (A.Lfd (rnum r, sp, off))
      | _ -> add (A.Lwz (rnum r, sp, off)));
  let pro = List.rev !prologue in
  let k = List.length pro in
  if k > reserve_words then Verror.fail (Verror.Unsupported "prologue overflow");
  let start = g.Gen.prologue_at + g.Gen.prologue_words - k in
  List.iteri (fun i insn -> Codebuf.set g.Gen.buf (start + i) (A.encode insn)) pro;
  g.Gen.entry_index <- start;
  (* relocations *)
  let trivial = frame = 0 in
  Gen.resolve_relocs g ~apply:(fun ~kind ~site ~dest ->
      let disp = dest - site in
      if kind = k_branch then begin
        if disp < -8192 || disp > 8191 then
          Verror.fail (Verror.Range "conditional branch displacement");
        let old = Codebuf.get g.Gen.buf site in
        Codebuf.set g.Gen.buf site ((old land lnot 0xFFFC) lor ((disp land 0x3FFF) lsl 2))
      end
      else if kind = k_jump || kind = k_call then begin
        if disp < -0x800000 || disp > 0x7FFFFF then
          Verror.fail (Verror.Range "branch displacement");
        let old = Codebuf.get g.Gen.buf site in
        Codebuf.set g.Gen.buf site ((old land lnot 0x3FFFFFC) lor ((disp land 0xFFFFFF) lsl 2))
      end
      else if kind = k_retj then begin
        if trivial then Codebuf.set g.Gen.buf site (A.encode A.Blr)
        else begin
          let old = Codebuf.get g.Gen.buf site in
          Codebuf.set g.Gen.buf site ((old land lnot 0x3FFFFFC) lor ((disp land 0xFFFFFF) lsl 2))
        end
      end
      else Verror.failf "unknown reloc kind %d" kind)

let apply_reloc _g ~kind:_ ~site:_ ~dest:_ = ()

(* Peephole interposition hooks: the raw port binds labels directly and
   needs no window barrier (PPC has no delay slots). *)
let bind_label g l = Gen.bind_label g l
let sync _g = ()

(* Mirror of [arith_imm]'s single-instruction fast paths: addi/mulli are
   signed-16, the logical immediates unsigned-16, sub negates into addi,
   and shift counts always encode. *)
let binop_imm_fits (op : Op.binop) imm =
  match op with
  | Op.Add | Op.Mul -> fits16s imm
  | Op.Sub -> fits16s (-imm)
  | Op.And | Op.Or | Op.Xor -> fits16u imm
  | Op.Lsh | Op.Rsh -> true
  | Op.Div | Op.Mod -> false

let disasm ~word ~addr = A.disasm ~addr word

let extra_insns =
  [
    ("cntlzw", fun g (rs : Reg.t array) -> e g (A.Cntlzw (rnum rs.(0), rnum rs.(1))));
    ("frsp", fun g rs -> e g (A.Frsp (rnum rs.(0), rnum rs.(1))));
    ("mulli3", fun g rs -> e g (A.Mulli (rnum rs.(0), rnum rs.(1), 3)));
  ]

let extra_imm_insns =
  [
    ("addi", fun g (rs : Reg.t array) imm -> e g (A.Addi (rnum rs.(0), rnum rs.(1), imm)));
    ("ori", fun g rs imm -> e g (A.Ori (rnum rs.(0), rnum rs.(1), imm)));
  ]
