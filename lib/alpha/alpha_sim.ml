(* Alpha simulator.

   64-bit little-endian core, no delay slots.  Integer registers hold
   Int64 values ($31 pinned to zero); FP registers hold raw 64-bit
   T-format bit patterns ($f31 pinned to +0.0), which models the real
   machine: S-format loads expand to T-format in the register, and
   cvttq leaves an *integer* bit pattern in an FP register.

   The division millicode (see {!Alpha_runtime}) is installed at its
   fixed address by [create]. *)

open Vmachine
module A = Alpha_asm

let halt_addr = 0x10000000

exception Machine_error of string

type t = {
  mem : Mem.t;
  icache : Cache.t;
  dcache : Cache.t;
  pdc : A.t Decode_cache.t; (* host-side predecode; no cycle effect *)
  predecode : bool;
  cfg : Mconfig.t;
  regs : int64 array;
  fregs : int64 array; (* bit patterns *)
  mutable pc : int;
  mutable nextpc : int; (* next-pc scratch for [step]; avoids a per-step ref *)
  mutable cycles : int;
  mutable insns : int;
  mutable stack_top : int;
}

let create ?(predecode = true) (cfg : Mconfig.t) =
  let mem = Mem.create ~big_endian:false ~size:cfg.mem_bytes () in
  Alpha_runtime.install mem;
  let pdc = Decode_cache.create ~mem_bytes:cfg.mem_bytes in
  Mem.set_write_watcher mem (Decode_cache.invalidate pdc);
  {
    mem;
    pdc;
    predecode;
    icache = Cache.create ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.imiss_penalty;
    dcache = Cache.create ~size_bytes:cfg.dcache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.dmiss_penalty;
    cfg;
    regs = Array.make 32 0L;
    fregs = Array.make 32 0L;
    pc = 0;
    nextpc = 0;
    cycles = 0;
    insns = 0;
    stack_top = cfg.mem_bytes - 512;
  }

(* register numbers come out of [Alpha_asm.decode] masked to 5 bits *)
let[@inline] get_reg m r = if r = 31 then 0L else Array.unsafe_get m.regs r
let[@inline] set_reg m r v = if r <> 31 then Array.unsafe_set m.regs r v

let get_f m f = if f = 31 then 0L else m.fregs.(f)
let set_f m f v = if f <> 31 then m.fregs.(f) <- v

let fval m f = Int64.float_of_bits (get_f m f)
let set_fval m f v = set_f m f (Int64.bits_of_float v)

(* round a double result to single precision (S-format ops) *)
let single v = Int32.float_of_bits (Int32.bits_of_float v)

let sext32_64 (v : int64) : int64 =
  Int64.shift_right (Int64.shift_left v 32) 32

let lit_val m = function A.R r -> get_reg m r | A.L v -> Int64.of_int v

let addr_of (v : int64) = Int64.to_int (Int64.logand v 0x7FFFFFFFL)

let[@inline] daccess m addr =
  let p = Cache.access m.dcache addr in
  if p <> 0 then m.cycles <- m.cycles + p
(* write-through: always 0 penalty, but the hit/miss stats must tick *)
let[@inline] waccess m addr = ignore (Cache.write_access m.dcache addr : int)

let bool64 b = if b then 1L else 0L

(* Decode the word at [pc], consulting the predecode cache first.  The
   miss path preserves the uncached fault behaviour exactly. *)
let fetch m pc =
  match Decode_cache.find m.pdc pc with
  | Some i -> i
  | None ->
    let w = Mem.read_u32 m.mem pc in
    let insn =
      try A.decode w with A.Bad_insn _ ->
        raise (Machine_error (Printf.sprintf "illegal instruction 0x%08x at 0x%x" w pc))
    in
    if m.predecode then Decode_cache.set m.pdc pc insn;
    insn

let[@inline] branch m pc d taken = if taken then m.nextpc <- pc + 4 + (4 * d)

(* The caller is responsible for the icache timing access on [m.pc]
   (see [run_go]/[step]): doing it in the small run loop rather than in
   this large function keeps its register pressure out of every arm. *)
let step_inner m pc =
  m.insns <- m.insns + 1;
  let insn = fetch m pc in
  m.nextpc <- pc + 4;
  (match insn with
  | A.Lda (ra, rb, d) -> set_reg m ra (Int64.add (get_reg m rb) (Int64.of_int d))
  | A.Ldah (ra, rb, d) ->
    set_reg m ra (Int64.add (get_reg m rb) (Int64.of_int (d * 65536)))
  | A.Ldl (ra, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    daccess m a;
    set_reg m ra (Int64.of_int (Int32.to_int (Int32.of_int (Mem.read_u32 m.mem a))))
  | A.Ldq (ra, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    daccess m a;
    set_reg m ra (Mem.read_u64 m.mem a)
  | A.Ldq_u (ra, rb, d) ->
    let a = (addr_of (get_reg m rb) + d) land lnot 7 in
    daccess m a;
    set_reg m ra (Mem.read_u64 m.mem a)
  | A.Stl (ra, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    waccess m a;
    Mem.write_u32 m.mem a (Int64.to_int (Int64.logand (get_reg m ra) 0xFFFFFFFFL))
  | A.Stq (ra, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    waccess m a;
    Mem.write_u64 m.mem a (get_reg m ra)
  | A.Stq_u (ra, rb, d) ->
    let a = (addr_of (get_reg m rb) + d) land lnot 7 in
    waccess m a;
    Mem.write_u64 m.mem a (get_reg m ra)
  | A.Lds (fa, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    daccess m a;
    let bits32 = Mem.read_u32 m.mem a in
    set_fval m fa (Int32.float_of_bits (Int32.of_int bits32))
  | A.Ldt (fa, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    daccess m a;
    set_f m fa (Mem.read_u64 m.mem a)
  | A.Sts (fa, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    waccess m a;
    Mem.write_u32 m.mem a
      (Int32.to_int (Int32.bits_of_float (fval m fa)) land 0xFFFFFFFF)
  | A.Stt (fa, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    waccess m a;
    Mem.write_u64 m.mem a (get_f m fa)
  | A.Br (ra, d) ->
    set_reg m ra (Int64.of_int (pc + 4));
    m.nextpc <- pc + 4 + (4 * d)
  | A.Bsr (ra, d) ->
    set_reg m ra (Int64.of_int (pc + 4));
    m.nextpc <- pc + 4 + (4 * d)
  | A.Beq (ra, d) -> branch m pc d (get_reg m ra = 0L)
  | A.Bne (ra, d) -> branch m pc d (get_reg m ra <> 0L)
  | A.Blt (ra, d) -> branch m pc d (Int64.compare (get_reg m ra) 0L < 0)
  | A.Ble (ra, d) -> branch m pc d (Int64.compare (get_reg m ra) 0L <= 0)
  | A.Bgt (ra, d) -> branch m pc d (Int64.compare (get_reg m ra) 0L > 0)
  | A.Bge (ra, d) -> branch m pc d (Int64.compare (get_reg m ra) 0L >= 0)
  | A.Fbeq (fa, d) -> branch m pc d (fval m fa = 0.0)
  | A.Fbne (fa, d) -> branch m pc d (fval m fa <> 0.0)
  | A.Jmp (ra, rb) | A.Jsr (ra, rb) | A.Retj (ra, rb) ->
    let t = addr_of (get_reg m rb) land lnot 3 in
    set_reg m ra (Int64.of_int (pc + 4));
    m.nextpc <- t
  | A.Intop (o, ra, rb, rc) -> (
    let x = get_reg m ra and y = lit_val m rb in
    let shamt = Int64.to_int (Int64.logand y 63L) in
    match o with
    | A.Addq -> set_reg m rc (Int64.add x y)
    | A.Subq -> set_reg m rc (Int64.sub x y)
    | A.Addl -> set_reg m rc (sext32_64 (Int64.add x y))
    | A.Subl -> set_reg m rc (sext32_64 (Int64.sub x y))
    | A.Mull ->
      m.cycles <- m.cycles + 7;
      set_reg m rc (sext32_64 (Int64.mul x y))
    | A.Mulq ->
      m.cycles <- m.cycles + 11;
      set_reg m rc (Int64.mul x y)
    | A.Umulh ->
      m.cycles <- m.cycles + 11;
      (* high 64 bits of the unsigned 128-bit product *)
      let lo_mask = 0xFFFFFFFFL in
      let xl = Int64.logand x lo_mask and xh = Int64.shift_right_logical x 32 in
      let yl = Int64.logand y lo_mask and yh = Int64.shift_right_logical y 32 in
      let ll = Int64.mul xl yl in
      let lh = Int64.mul xl yh in
      let hl = Int64.mul xh yl in
      let hh = Int64.mul xh yh in
      let s1 = Int64.add lh hl in
      let c1 = if Int64.unsigned_compare s1 lh < 0 then 0x100000000L else 0L in
      let s2 = Int64.add s1 (Int64.shift_right_logical ll 32) in
      let c2 = if Int64.unsigned_compare s2 s1 < 0 then 0x100000000L else 0L in
      set_reg m rc
        (Int64.add hh
           (Int64.add (Int64.shift_right_logical s2 32) (Int64.add c1 c2)))
    | A.Cmpeq -> set_reg m rc (bool64 (Int64.equal x y))
    | A.Cmplt -> set_reg m rc (bool64 (Int64.compare x y < 0))
    | A.Cmple -> set_reg m rc (bool64 (Int64.compare x y <= 0))
    | A.Cmpult -> set_reg m rc (bool64 (Int64.unsigned_compare x y < 0))
    | A.Cmpule -> set_reg m rc (bool64 (Int64.unsigned_compare x y <= 0))
    | A.And -> set_reg m rc (Int64.logand x y)
    | A.Bic -> set_reg m rc (Int64.logand x (Int64.lognot y))
    | A.Bis -> set_reg m rc (Int64.logor x y)
    | A.Ornot -> set_reg m rc (Int64.logor x (Int64.lognot y))
    | A.Xor -> set_reg m rc (Int64.logxor x y)
    | A.Eqv -> set_reg m rc (Int64.lognot (Int64.logxor x y))
    | A.Cmoveq -> if x = 0L then set_reg m rc y
    | A.Cmovne -> if x <> 0L then set_reg m rc y
    | A.Cmovlt -> if Int64.compare x 0L < 0 then set_reg m rc y
    | A.Cmovge -> if Int64.compare x 0L >= 0 then set_reg m rc y
    | A.Sll -> set_reg m rc (Int64.shift_left x shamt)
    | A.Srl -> set_reg m rc (Int64.shift_right_logical x shamt)
    | A.Sra -> set_reg m rc (Int64.shift_right x shamt)
    | A.Extbl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.logand (Int64.shift_right_logical x sh) 0xFFL)
    | A.Extwl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.logand (Int64.shift_right_logical x sh) 0xFFFFL)
    | A.Insbl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.shift_left (Int64.logand x 0xFFL) sh)
    | A.Inswl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.shift_left (Int64.logand x 0xFFFFL) sh)
    | A.Mskbl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.logand x (Int64.lognot (Int64.shift_left 0xFFL sh)))
    | A.Mskwl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.logand x (Int64.lognot (Int64.shift_left 0xFFFFL sh))))
  | A.Fpop (o, fa, fb, fc) -> (
    let a () = fval m fa and b () = fval m fb in
    match o with
    | A.Adds -> m.cycles <- m.cycles + 3; set_fval m fc (single (a () +. b ()))
    | A.Addt -> m.cycles <- m.cycles + 3; set_fval m fc (a () +. b ())
    | A.Subs -> m.cycles <- m.cycles + 3; set_fval m fc (single (a () -. b ()))
    | A.Subt -> m.cycles <- m.cycles + 3; set_fval m fc (a () -. b ())
    | A.Muls -> m.cycles <- m.cycles + 3; set_fval m fc (single (a () *. b ()))
    | A.Mult -> m.cycles <- m.cycles + 3; set_fval m fc (a () *. b ())
    | A.Divs -> m.cycles <- m.cycles + 15; set_fval m fc (single (a () /. b ()))
    | A.Divt -> m.cycles <- m.cycles + 22; set_fval m fc (a () /. b ())
    | A.Cmpteq -> set_fval m fc (if a () = b () then 2.0 else 0.0)
    | A.Cmptlt -> set_fval m fc (if a () < b () then 2.0 else 0.0)
    | A.Cmptle -> set_fval m fc (if a () <= b () then 2.0 else 0.0)
    | A.Cvtqs ->
      (* quadword integer (bits of fb) to single *)
      set_fval m fc (single (Int64.to_float (get_f m fb)))
    | A.Cvtqt -> set_fval m fc (Int64.to_float (get_f m fb))
    | A.Cvttq -> set_f m fc (Int64.of_float (Float.trunc (b ())))
    | A.Cvtts -> set_fval m fc (single (b ()))
    | A.Cpys ->
      (* copy sign of fa, rest of fb; cpys f,f,f is fmov *)
      let sa = Int64.logand (get_f m fa) Int64.min_int in
      let rest = Int64.logand (get_f m fb) Int64.max_int in
      set_f m fc (Int64.logor sa rest)
    | A.Cpysn ->
      let sa = Int64.logand (Int64.lognot (get_f m fa)) Int64.min_int in
      let rest = Int64.logand (get_f m fb) Int64.max_int in
      set_f m fc (Int64.logor sa rest)
    | A.Sqrts -> m.cycles <- m.cycles + 15; set_fval m fc (single (sqrt (b ())))
    | A.Sqrtt -> m.cycles <- m.cycles + 30; set_fval m fc (sqrt (b ()))));
  m.pc <- m.nextpc

let default_fuel = 200_000_000

(* Tight tail-recursive loop: the fuel check is a register countdown
   rather than a per-step ref increment/compare. *)
(* single-step with exact cycle accounting (the public interface) *)
let step m =
  let mi0 = Cache.misses m.icache in
  (let p = Cache.access_uncounted m.icache m.pc in
   if p <> 0 then m.cycles <- m.cycles + p);
  step_inner m m.pc;
  m.cycles <- m.cycles + 1;
  Cache.add_hits m.icache (1 - (Cache.misses m.icache - mi0))

(* [step_inner] defers the 1-cycle-per-instruction component of the
   accounting to its caller; [run] adds it in bulk at exit from the
   instruction-count delta, so the hot loop carries one counter update
   less per step.  Totals are exact whenever [run] returns or raises. *)
(* The icache tag probe is inlined here with its geometry held in
   parameters (registers), falling back to the full model only on a
   miss; [run] reconciles the hit counter at exit from the retired-
   instruction delta, since a fetch loop performs exactly one icache
   access per retired instruction. *)
let rec run_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    let line = pc lsr shift in
    if Array.unsafe_get tags (line land mask) <> line then
      (let p = Cache.access_uncounted m.icache pc in
       if p <> 0 then m.cycles <- m.cycles + p);
    step_inner m pc;
    run_go m tags shift mask (fuel - 1)
  end

let run ?(fuel = default_fuel) m =
  let i0 = m.insns in
  let mi0 = Cache.misses m.icache in
  let finish () =
    let retired = m.insns - i0 in
    m.cycles <- m.cycles + retired;
    Cache.add_hits m.icache (retired - (Cache.misses m.icache - mi0))
  in
  let tags, shift, mask = Cache.probe m.icache in
  (try run_go m tags shift mask fuel
   with e ->
     finish ();
     raise e);
  finish ()

(* ------------------------------------------------------------------ *)
(* Harness: args in $16-$21 / $f16-$f21 by slot; further args on the
   stack at sp+0, 8 bytes per slot.                                    *)

type arg = Int of int | Int64 of int64 | Double of float | Single of float

let place_args m ~sp args =
  let slot = ref 0 in
  List.iter
    (fun a ->
      let s = !slot in
      incr slot;
      match a with
      | Int v ->
        if s < 6 then set_reg m (16 + s) (Int64.of_int v)
        else Mem.write_u64 m.mem (sp + (8 * (s - 6))) (Int64.of_int v)
      | Int64 v ->
        if s < 6 then set_reg m (16 + s) v else Mem.write_u64 m.mem (sp + (8 * (s - 6))) v
      | Double v ->
        if s < 6 then set_fval m (16 + s) v
        else Mem.write_u64 m.mem (sp + (8 * (s - 6))) (Int64.bits_of_float v)
      | Single v ->
        if s < 6 then set_fval m (16 + s) v
        else
          Mem.write_u64 m.mem
            (sp + (8 * (s - 6)))
            (Int64.bits_of_float (Int32.float_of_bits (Int32.bits_of_float v))))
    args

let call ?fuel m ~entry args =
  let sp = m.stack_top land lnot 15 in
  set_reg m 30 (Int64.of_int sp);
  set_reg m 26 (Int64.of_int halt_addr);
  place_args m ~sp args;
  m.pc <- entry;
  run ?fuel m

let ret_int64 m = m.regs.(0)
let ret_int m = Int64.to_int m.regs.(0)
let ret_double m = fval m 0
let ret_single m = fval m 0

let reset_stats m =
  m.cycles <- 0;
  m.insns <- 0;
  Cache.reset_stats m.icache;
  Cache.reset_stats m.dcache

(* Models v_end's icache invalidation: drop both the timing caches and
   every predecoded instruction.  (The predecode drop is belt-and-braces
   — the write watcher already keeps it coherent — and costs nothing on
   the simulated clock.) *)
let flush_caches m =
  Cache.flush m.icache;
  Cache.flush m.dcache;
  Decode_cache.clear m.pdc
