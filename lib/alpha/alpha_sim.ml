(* Alpha simulator.

   64-bit little-endian core, no delay slots.  Integer registers hold
   Int64 values ($31 pinned to zero); FP registers hold raw 64-bit
   T-format bit patterns ($f31 pinned to +0.0), which models the real
   machine: S-format loads expand to T-format in the register, and
   cvttq leaves an *integer* bit pattern in an FP register.

   The division millicode (see {!Alpha_runtime}) is installed at its
   fixed address by [create]. *)

open Vmachine
module A = Alpha_asm

let halt_addr = 0x10000000

exception Machine_error of string

type t = {
  mem : Mem.t;
  icache : Cache.t;
  dcache : Cache.t;
  pdc : A.t Decode_cache.t; (* host-side predecode; no cycle effect *)
  predecode : bool;
  bc : block Block_cache.t; (* superblock translation cache; no cycle effect *)
  blocks : bool;
  rc : region Region_cache.t; (* tier-3 region cache; no cycle effect *)
  regions : bool;
  probe : Sim_probe.t;      (* shared telemetry probe; never touches timing *)
  tr : Trace.t;             (* execution trace; the disabled sink is scratch *)
  cfg : Mconfig.t;
  regs : int64 array;
  fregs : int64 array; (* bit patterns *)
  mutable pc : int;
  mutable nextpc : int; (* next-pc scratch for [step]; avoids a per-step ref *)
  mutable blk_i : int; (* index of the block instruction in flight; abort-fixup scratch *)
  mutable cycles : int;
  mutable insns : int;
  mutable stack_top : int;
}

(* A compiled straight-line run: one closure per instruction, ending at
   the first control transfer (compiled in; no delay slots on Alpha) or
   the [Block_cache.max_insns] cap. *)
and block = {
  entry : int;          (* code address of the first instruction *)
  n : int;              (* instruction count, terminator included *)
  run : unit -> unit;   (* the whole straight-line run fused into one closure:
                           per-instruction icache probes, [blk_i] updates and
                           the final pc/nextpc/insns commit are baked in at
                           compile time *)
  has_term : bool;      (* ends in a control transfer (vs. capped fallthrough) *)
}

(* A tier-3 region (see the MIPS twin for the full commentary): a hot
   block plus its dominant direct-chained successors fused into one
   closure per pass, interior branches specialized to their dominant
   direction with a [Region_cache.Side_exit] guard, and a probe-free
   fast pass for self-looping traces whose icache lines don't
   conflict.  Simpler than the delay-slot ports: Alpha terminators
   never raise, so the abort/fault fixups never involve a branch. *)
and region = {
  r_entry : int;
  r_n : int;                   (* instructions retired per full pass *)
  r_spans : (int * int) array; (* constituent-block (addr, bytes) *)
  r_run : unit -> unit;        (* one pass, icache probes included *)
  r_fast : unit -> unit;       (* one pass, probes elided *)
  r_addrs : int array;         (* region insn index -> code address *)
}

let create ?(predecode = true) ?(blocks = true) ?(regions = false)
    ?(telemetry = Telemetry.disabled) ?(trace = Trace.disabled) (cfg : Mconfig.t) =
  let mem = Mem.create ~big_endian:false ~size:cfg.mem_bytes () in
  Alpha_runtime.install mem;
  let pdc = Decode_cache.create ~tel:telemetry ~trace ~name:"alpha.pdc" ~mem_bytes:cfg.mem_bytes () in
  let bc = Block_cache.create ~tel:telemetry ~trace ~name:"alpha.bc" ~mem_bytes:cfg.mem_bytes
      ~len_bytes:(fun b -> 4 * b.n) () in
  let rc = Region_cache.create ~tel:telemetry ~name:"alpha.rc" ~mem_bytes:cfg.mem_bytes
      ~spans:(fun r -> r.r_spans) () in
  ignore (Mem.add_write_watcher mem (Decode_cache.invalidate pdc) : Mem.watcher);
  ignore (Mem.add_write_watcher mem (Block_cache.invalidate bc) : Mem.watcher);
  (* A dropped region must abort a running pass even when the
     overwritten constituent block is no longer bc-resident (so the
     Block_cache watcher above dropped nothing): raise bc's dirty flag
     unconditionally and let the shared store closures raise Retired. *)
  if regions then
    ignore
      (Mem.add_write_watcher mem (fun addr len ->
           if Region_cache.invalidate rc addr len then Block_cache.mark_dirty bc)
        : Mem.watcher);
  {
    mem;
    pdc;
    predecode;
    bc;
    blocks;
    rc;
    regions;
    probe = Sim_probe.create ~trace telemetry ~port:"alpha" ~predecode ~blocks ~regions;
    tr = trace;
    icache = Cache.create ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.imiss_penalty;
    dcache = Cache.create ~size_bytes:cfg.dcache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.dmiss_penalty;
    cfg;
    regs = Array.make 32 0L;
    fregs = Array.make 32 0L;
    pc = 0;
    nextpc = 0;
    blk_i = 0;
    cycles = 0;
    insns = 0;
    stack_top = cfg.mem_bytes - 512;
  }

(* register numbers come out of [Alpha_asm.decode] masked to 5 bits *)
let[@inline] get_reg m r = if r = 31 then 0L else Array.unsafe_get m.regs r
let[@inline] set_reg m r v = if r <> 31 then Array.unsafe_set m.regs r v

let get_f m f = if f = 31 then 0L else m.fregs.(f)
let set_f m f v = if f <> 31 then m.fregs.(f) <- v

let fval m f = Int64.float_of_bits (get_f m f)
let set_fval m f v = set_f m f (Int64.bits_of_float v)

(* round a double result to single precision (S-format ops) *)
let single v = Int32.float_of_bits (Int32.bits_of_float v)

let sext32_64 (v : int64) : int64 =
  Int64.shift_right (Int64.shift_left v 32) 32

let lit_val m = function A.R r -> get_reg m r | A.L v -> Int64.of_int v

let addr_of (v : int64) = Int64.to_int (Int64.logand v 0x7FFFFFFFL)

let[@inline] daccess m addr =
  let p = Cache.access m.dcache addr in
  if p <> 0 then m.cycles <- m.cycles + p
(* write-through: always 0 penalty, but the hit/miss stats must tick *)
let[@inline] waccess m addr = ignore (Cache.write_access m.dcache addr : int)

let bool64 b = if b then 1L else 0L

(* Decode the word at [pc], consulting the predecode cache first.  The
   miss path preserves the uncached fault behaviour exactly. *)
let fetch m pc =
  match Decode_cache.find m.pdc pc with
  | Some i -> i
  | None ->
    let w = Mem.read_u32 m.mem pc in
    let insn =
      try A.decode w with A.Bad_insn _ ->
        raise (Machine_error (Printf.sprintf "illegal instruction 0x%08x at 0x%x" w pc))
    in
    if m.predecode then Decode_cache.set m.pdc pc insn;
    insn

let[@inline] branch m pc d taken = if taken then m.nextpc <- pc + 4 + (4 * d)

(* The caller is responsible for the icache timing access on [m.pc]
   (see [run_go]/[step]): doing it in the small run loop rather than in
   this large function keeps its register pressure out of every arm. *)
let step_inner m pc =
  m.insns <- m.insns + 1;
  let insn = fetch m pc in
  m.nextpc <- pc + 4;
  (match insn with
  | A.Lda (ra, rb, d) -> set_reg m ra (Int64.add (get_reg m rb) (Int64.of_int d))
  | A.Ldah (ra, rb, d) ->
    set_reg m ra (Int64.add (get_reg m rb) (Int64.of_int (d * 65536)))
  | A.Ldl (ra, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    daccess m a;
    set_reg m ra (Int64.of_int (Int32.to_int (Int32.of_int (Mem.read_u32 m.mem a))))
  | A.Ldq (ra, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    daccess m a;
    set_reg m ra (Mem.read_u64 m.mem a)
  | A.Ldq_u (ra, rb, d) ->
    let a = (addr_of (get_reg m rb) + d) land lnot 7 in
    daccess m a;
    set_reg m ra (Mem.read_u64 m.mem a)
  | A.Stl (ra, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    waccess m a;
    Mem.write_u32 m.mem a (Int64.to_int (Int64.logand (get_reg m ra) 0xFFFFFFFFL))
  | A.Stq (ra, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    waccess m a;
    Mem.write_u64 m.mem a (get_reg m ra)
  | A.Stq_u (ra, rb, d) ->
    let a = (addr_of (get_reg m rb) + d) land lnot 7 in
    waccess m a;
    Mem.write_u64 m.mem a (get_reg m ra)
  | A.Lds (fa, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    daccess m a;
    let bits32 = Mem.read_u32 m.mem a in
    set_fval m fa (Int32.float_of_bits (Int32.of_int bits32))
  | A.Ldt (fa, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    daccess m a;
    set_f m fa (Mem.read_u64 m.mem a)
  | A.Sts (fa, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    waccess m a;
    Mem.write_u32 m.mem a
      (Int32.to_int (Int32.bits_of_float (fval m fa)) land 0xFFFFFFFF)
  | A.Stt (fa, rb, d) ->
    let a = addr_of (get_reg m rb) + d in
    waccess m a;
    Mem.write_u64 m.mem a (get_f m fa)
  | A.Br (ra, d) ->
    set_reg m ra (Int64.of_int (pc + 4));
    m.nextpc <- pc + 4 + (4 * d)
  | A.Bsr (ra, d) ->
    set_reg m ra (Int64.of_int (pc + 4));
    m.nextpc <- pc + 4 + (4 * d)
  | A.Beq (ra, d) -> branch m pc d (get_reg m ra = 0L)
  | A.Bne (ra, d) -> branch m pc d (get_reg m ra <> 0L)
  | A.Blt (ra, d) -> branch m pc d (Int64.compare (get_reg m ra) 0L < 0)
  | A.Ble (ra, d) -> branch m pc d (Int64.compare (get_reg m ra) 0L <= 0)
  | A.Bgt (ra, d) -> branch m pc d (Int64.compare (get_reg m ra) 0L > 0)
  | A.Bge (ra, d) -> branch m pc d (Int64.compare (get_reg m ra) 0L >= 0)
  | A.Fbeq (fa, d) -> branch m pc d (fval m fa = 0.0)
  | A.Fbne (fa, d) -> branch m pc d (fval m fa <> 0.0)
  | A.Jmp (ra, rb) | A.Jsr (ra, rb) | A.Retj (ra, rb) ->
    let t = addr_of (get_reg m rb) land lnot 3 in
    set_reg m ra (Int64.of_int (pc + 4));
    m.nextpc <- t
  | A.Intop (o, ra, rb, rc) -> (
    let x = get_reg m ra and y = lit_val m rb in
    let shamt = Int64.to_int (Int64.logand y 63L) in
    match o with
    | A.Addq -> set_reg m rc (Int64.add x y)
    | A.Subq -> set_reg m rc (Int64.sub x y)
    | A.Addl -> set_reg m rc (sext32_64 (Int64.add x y))
    | A.Subl -> set_reg m rc (sext32_64 (Int64.sub x y))
    | A.Mull ->
      m.cycles <- m.cycles + 7;
      set_reg m rc (sext32_64 (Int64.mul x y))
    | A.Mulq ->
      m.cycles <- m.cycles + 11;
      set_reg m rc (Int64.mul x y)
    | A.Umulh ->
      m.cycles <- m.cycles + 11;
      (* high 64 bits of the unsigned 128-bit product *)
      let lo_mask = 0xFFFFFFFFL in
      let xl = Int64.logand x lo_mask and xh = Int64.shift_right_logical x 32 in
      let yl = Int64.logand y lo_mask and yh = Int64.shift_right_logical y 32 in
      let ll = Int64.mul xl yl in
      let lh = Int64.mul xl yh in
      let hl = Int64.mul xh yl in
      let hh = Int64.mul xh yh in
      let s1 = Int64.add lh hl in
      let c1 = if Int64.unsigned_compare s1 lh < 0 then 0x100000000L else 0L in
      let s2 = Int64.add s1 (Int64.shift_right_logical ll 32) in
      let c2 = if Int64.unsigned_compare s2 s1 < 0 then 0x100000000L else 0L in
      set_reg m rc
        (Int64.add hh
           (Int64.add (Int64.shift_right_logical s2 32) (Int64.add c1 c2)))
    | A.Cmpeq -> set_reg m rc (bool64 (Int64.equal x y))
    | A.Cmplt -> set_reg m rc (bool64 (Int64.compare x y < 0))
    | A.Cmple -> set_reg m rc (bool64 (Int64.compare x y <= 0))
    | A.Cmpult -> set_reg m rc (bool64 (Int64.unsigned_compare x y < 0))
    | A.Cmpule -> set_reg m rc (bool64 (Int64.unsigned_compare x y <= 0))
    | A.And -> set_reg m rc (Int64.logand x y)
    | A.Bic -> set_reg m rc (Int64.logand x (Int64.lognot y))
    | A.Bis -> set_reg m rc (Int64.logor x y)
    | A.Ornot -> set_reg m rc (Int64.logor x (Int64.lognot y))
    | A.Xor -> set_reg m rc (Int64.logxor x y)
    | A.Eqv -> set_reg m rc (Int64.lognot (Int64.logxor x y))
    | A.Cmoveq -> if x = 0L then set_reg m rc y
    | A.Cmovne -> if x <> 0L then set_reg m rc y
    | A.Cmovlt -> if Int64.compare x 0L < 0 then set_reg m rc y
    | A.Cmovge -> if Int64.compare x 0L >= 0 then set_reg m rc y
    | A.Sll -> set_reg m rc (Int64.shift_left x shamt)
    | A.Srl -> set_reg m rc (Int64.shift_right_logical x shamt)
    | A.Sra -> set_reg m rc (Int64.shift_right x shamt)
    | A.Extbl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.logand (Int64.shift_right_logical x sh) 0xFFL)
    | A.Extwl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.logand (Int64.shift_right_logical x sh) 0xFFFFL)
    | A.Insbl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.shift_left (Int64.logand x 0xFFL) sh)
    | A.Inswl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.shift_left (Int64.logand x 0xFFFFL) sh)
    | A.Mskbl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.logand x (Int64.lognot (Int64.shift_left 0xFFL sh)))
    | A.Mskwl ->
      let sh = 8 * (Int64.to_int (Int64.logand y 7L)) in
      set_reg m rc (Int64.logand x (Int64.lognot (Int64.shift_left 0xFFFFL sh))))
  | A.Fpop (o, fa, fb, fc) -> (
    let a () = fval m fa and b () = fval m fb in
    match o with
    | A.Adds -> m.cycles <- m.cycles + 3; set_fval m fc (single (a () +. b ()))
    | A.Addt -> m.cycles <- m.cycles + 3; set_fval m fc (a () +. b ())
    | A.Subs -> m.cycles <- m.cycles + 3; set_fval m fc (single (a () -. b ()))
    | A.Subt -> m.cycles <- m.cycles + 3; set_fval m fc (a () -. b ())
    | A.Muls -> m.cycles <- m.cycles + 3; set_fval m fc (single (a () *. b ()))
    | A.Mult -> m.cycles <- m.cycles + 3; set_fval m fc (a () *. b ())
    | A.Divs -> m.cycles <- m.cycles + 15; set_fval m fc (single (a () /. b ()))
    | A.Divt -> m.cycles <- m.cycles + 22; set_fval m fc (a () /. b ())
    | A.Cmpteq -> set_fval m fc (if a () = b () then 2.0 else 0.0)
    | A.Cmptlt -> set_fval m fc (if a () < b () then 2.0 else 0.0)
    | A.Cmptle -> set_fval m fc (if a () <= b () then 2.0 else 0.0)
    | A.Cvtqs ->
      (* quadword integer (bits of fb) to single *)
      set_fval m fc (single (Int64.to_float (get_f m fb)))
    | A.Cvtqt -> set_fval m fc (Int64.to_float (get_f m fb))
    | A.Cvttq -> set_f m fc (Int64.of_float (Float.trunc (b ())))
    | A.Cvtts -> set_fval m fc (single (b ()))
    | A.Cpys ->
      (* copy sign of fa, rest of fb; cpys f,f,f is fmov *)
      let sa = Int64.logand (get_f m fa) Int64.min_int in
      let rest = Int64.logand (get_f m fb) Int64.max_int in
      set_f m fc (Int64.logor sa rest)
    | A.Cpysn ->
      let sa = Int64.logand (Int64.lognot (get_f m fa)) Int64.min_int in
      let rest = Int64.logand (get_f m fb) Int64.max_int in
      set_f m fc (Int64.logor sa rest)
    | A.Sqrts -> m.cycles <- m.cycles + 15; set_fval m fc (single (sqrt (b ())))
    | A.Sqrtt -> m.cycles <- m.cycles + 30; set_fval m fc (sqrt (b ()))));
  m.pc <- m.nextpc

(* ------------------------------------------------------------------ *)
(* Superblock translation (see {!Vmachine.Block_cache}): compile a
   straight-line decoded run into one closure per instruction, executed
   by [exec_chain] without per-instruction dispatch.  Each closure
   replicates its [step_inner] arm exactly — same arithmetic, same
   memory-access order, same cycle surcharges — so a block retires with
   the same architectural state and timing as the interpreter.  Alpha
   has no delay slots: a block is body instructions plus (optionally)
   the control transfer itself, whose closure leaves the target in
   [m.nextpc] for the block commit. *)

(* Compiled action for one *body* (non-control) instruction; [None]
   for the control transfers compiled via [term_of].  Store closures
   test the block cache's dirty flag after writing and abort with
   [Block_cache.Retired]. *)
let act_of m (insn : A.t) : (unit -> unit) option =
  match insn with
  | A.Lda (ra, rb, d) ->
    Some (fun () -> set_reg m ra (Int64.add (get_reg m rb) (Int64.of_int d)))
  | A.Ldah (ra, rb, d) ->
    let dd = d * 65536 in
    Some (fun () -> set_reg m ra (Int64.add (get_reg m rb) (Int64.of_int dd)))
  | A.Ldl (ra, rb, d) ->
    Some
      (fun () ->
        let a = addr_of (get_reg m rb) + d in
        daccess m a;
        set_reg m ra (Int64.of_int (Int32.to_int (Int32.of_int (Mem.read_u32 m.mem a)))))
  | A.Ldq (ra, rb, d) ->
    Some
      (fun () ->
        let a = addr_of (get_reg m rb) + d in
        daccess m a;
        set_reg m ra (Mem.read_u64 m.mem a))
  | A.Ldq_u (ra, rb, d) ->
    Some
      (fun () ->
        let a = (addr_of (get_reg m rb) + d) land lnot 7 in
        daccess m a;
        set_reg m ra (Mem.read_u64 m.mem a))
  | A.Stl (ra, rb, d) ->
    Some
      (fun () ->
        let a = addr_of (get_reg m rb) + d in
        waccess m a;
        Mem.write_u32 m.mem a (Int64.to_int (Int64.logand (get_reg m ra) 0xFFFFFFFFL));
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | A.Stq (ra, rb, d) ->
    Some
      (fun () ->
        let a = addr_of (get_reg m rb) + d in
        waccess m a;
        Mem.write_u64 m.mem a (get_reg m ra);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | A.Stq_u (ra, rb, d) ->
    Some
      (fun () ->
        let a = (addr_of (get_reg m rb) + d) land lnot 7 in
        waccess m a;
        Mem.write_u64 m.mem a (get_reg m ra);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | A.Lds (fa, rb, d) ->
    Some
      (fun () ->
        let a = addr_of (get_reg m rb) + d in
        daccess m a;
        let bits32 = Mem.read_u32 m.mem a in
        set_fval m fa (Int32.float_of_bits (Int32.of_int bits32)))
  | A.Ldt (fa, rb, d) ->
    Some
      (fun () ->
        let a = addr_of (get_reg m rb) + d in
        daccess m a;
        set_f m fa (Mem.read_u64 m.mem a))
  | A.Sts (fa, rb, d) ->
    Some
      (fun () ->
        let a = addr_of (get_reg m rb) + d in
        waccess m a;
        Mem.write_u32 m.mem a (Int32.to_int (Int32.bits_of_float (fval m fa)) land 0xFFFFFFFF);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | A.Stt (fa, rb, d) ->
    Some
      (fun () ->
        let a = addr_of (get_reg m rb) + d in
        waccess m a;
        Mem.write_u64 m.mem a (get_f m fa);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | A.Intop (o, ra, rb, rc) ->
    Some
      (match o with
      | A.Addq -> fun () -> set_reg m rc (Int64.add (get_reg m ra) (lit_val m rb))
      | A.Subq -> fun () -> set_reg m rc (Int64.sub (get_reg m ra) (lit_val m rb))
      | A.Addl -> fun () -> set_reg m rc (sext32_64 (Int64.add (get_reg m ra) (lit_val m rb)))
      | A.Subl -> fun () -> set_reg m rc (sext32_64 (Int64.sub (get_reg m ra) (lit_val m rb)))
      | A.Mull ->
        fun () ->
          m.cycles <- m.cycles + 7;
          set_reg m rc (sext32_64 (Int64.mul (get_reg m ra) (lit_val m rb)))
      | A.Mulq ->
        fun () ->
          m.cycles <- m.cycles + 11;
          set_reg m rc (Int64.mul (get_reg m ra) (lit_val m rb))
      | A.Umulh ->
        fun () ->
          m.cycles <- m.cycles + 11;
          let x = get_reg m ra and y = lit_val m rb in
          let lo_mask = 0xFFFFFFFFL in
          let xl = Int64.logand x lo_mask and xh = Int64.shift_right_logical x 32 in
          let yl = Int64.logand y lo_mask and yh = Int64.shift_right_logical y 32 in
          let ll = Int64.mul xl yl in
          let lh = Int64.mul xl yh in
          let hl = Int64.mul xh yl in
          let hh = Int64.mul xh yh in
          let s1 = Int64.add lh hl in
          let c1 = if Int64.unsigned_compare s1 lh < 0 then 0x100000000L else 0L in
          let s2 = Int64.add s1 (Int64.shift_right_logical ll 32) in
          let c2 = if Int64.unsigned_compare s2 s1 < 0 then 0x100000000L else 0L in
          set_reg m rc
            (Int64.add hh (Int64.add (Int64.shift_right_logical s2 32) (Int64.add c1 c2)))
      | A.Cmpeq -> fun () -> set_reg m rc (bool64 (Int64.equal (get_reg m ra) (lit_val m rb)))
      | A.Cmplt ->
        fun () -> set_reg m rc (bool64 (Int64.compare (get_reg m ra) (lit_val m rb) < 0))
      | A.Cmple ->
        fun () -> set_reg m rc (bool64 (Int64.compare (get_reg m ra) (lit_val m rb) <= 0))
      | A.Cmpult ->
        fun () -> set_reg m rc (bool64 (Int64.unsigned_compare (get_reg m ra) (lit_val m rb) < 0))
      | A.Cmpule ->
        fun () ->
          set_reg m rc (bool64 (Int64.unsigned_compare (get_reg m ra) (lit_val m rb) <= 0))
      | A.And -> fun () -> set_reg m rc (Int64.logand (get_reg m ra) (lit_val m rb))
      | A.Bic -> fun () -> set_reg m rc (Int64.logand (get_reg m ra) (Int64.lognot (lit_val m rb)))
      | A.Bis -> fun () -> set_reg m rc (Int64.logor (get_reg m ra) (lit_val m rb))
      | A.Ornot ->
        fun () -> set_reg m rc (Int64.logor (get_reg m ra) (Int64.lognot (lit_val m rb)))
      | A.Xor -> fun () -> set_reg m rc (Int64.logxor (get_reg m ra) (lit_val m rb))
      | A.Eqv -> fun () -> set_reg m rc (Int64.lognot (Int64.logxor (get_reg m ra) (lit_val m rb)))
      | A.Cmoveq -> fun () -> if get_reg m ra = 0L then set_reg m rc (lit_val m rb)
      | A.Cmovne -> fun () -> if get_reg m ra <> 0L then set_reg m rc (lit_val m rb)
      | A.Cmovlt -> fun () -> if Int64.compare (get_reg m ra) 0L < 0 then set_reg m rc (lit_val m rb)
      | A.Cmovge ->
        fun () -> if Int64.compare (get_reg m ra) 0L >= 0 then set_reg m rc (lit_val m rb)
      | A.Sll ->
        fun () ->
          let shamt = Int64.to_int (Int64.logand (lit_val m rb) 63L) in
          set_reg m rc (Int64.shift_left (get_reg m ra) shamt)
      | A.Srl ->
        fun () ->
          let shamt = Int64.to_int (Int64.logand (lit_val m rb) 63L) in
          set_reg m rc (Int64.shift_right_logical (get_reg m ra) shamt)
      | A.Sra ->
        fun () ->
          let shamt = Int64.to_int (Int64.logand (lit_val m rb) 63L) in
          set_reg m rc (Int64.shift_right (get_reg m ra) shamt)
      | A.Extbl ->
        fun () ->
          let sh = 8 * Int64.to_int (Int64.logand (lit_val m rb) 7L) in
          set_reg m rc (Int64.logand (Int64.shift_right_logical (get_reg m ra) sh) 0xFFL)
      | A.Extwl ->
        fun () ->
          let sh = 8 * Int64.to_int (Int64.logand (lit_val m rb) 7L) in
          set_reg m rc (Int64.logand (Int64.shift_right_logical (get_reg m ra) sh) 0xFFFFL)
      | A.Insbl ->
        fun () ->
          let sh = 8 * Int64.to_int (Int64.logand (lit_val m rb) 7L) in
          set_reg m rc (Int64.shift_left (Int64.logand (get_reg m ra) 0xFFL) sh)
      | A.Inswl ->
        fun () ->
          let sh = 8 * Int64.to_int (Int64.logand (lit_val m rb) 7L) in
          set_reg m rc (Int64.shift_left (Int64.logand (get_reg m ra) 0xFFFFL) sh)
      | A.Mskbl ->
        fun () ->
          let sh = 8 * Int64.to_int (Int64.logand (lit_val m rb) 7L) in
          set_reg m rc (Int64.logand (get_reg m ra) (Int64.lognot (Int64.shift_left 0xFFL sh)))
      | A.Mskwl ->
        fun () ->
          let sh = 8 * Int64.to_int (Int64.logand (lit_val m rb) 7L) in
          set_reg m rc (Int64.logand (get_reg m ra) (Int64.lognot (Int64.shift_left 0xFFFFL sh))))
  | A.Fpop (o, fa, fb, fc) ->
    Some
      (match o with
      | A.Adds ->
        fun () ->
          m.cycles <- m.cycles + 3;
          set_fval m fc (single (fval m fa +. fval m fb))
      | A.Addt ->
        fun () ->
          m.cycles <- m.cycles + 3;
          set_fval m fc (fval m fa +. fval m fb)
      | A.Subs ->
        fun () ->
          m.cycles <- m.cycles + 3;
          set_fval m fc (single (fval m fa -. fval m fb))
      | A.Subt ->
        fun () ->
          m.cycles <- m.cycles + 3;
          set_fval m fc (fval m fa -. fval m fb)
      | A.Muls ->
        fun () ->
          m.cycles <- m.cycles + 3;
          set_fval m fc (single (fval m fa *. fval m fb))
      | A.Mult ->
        fun () ->
          m.cycles <- m.cycles + 3;
          set_fval m fc (fval m fa *. fval m fb)
      | A.Divs ->
        fun () ->
          m.cycles <- m.cycles + 15;
          set_fval m fc (single (fval m fa /. fval m fb))
      | A.Divt ->
        fun () ->
          m.cycles <- m.cycles + 22;
          set_fval m fc (fval m fa /. fval m fb)
      | A.Cmpteq -> fun () -> set_fval m fc (if fval m fa = fval m fb then 2.0 else 0.0)
      | A.Cmptlt -> fun () -> set_fval m fc (if fval m fa < fval m fb then 2.0 else 0.0)
      | A.Cmptle -> fun () -> set_fval m fc (if fval m fa <= fval m fb then 2.0 else 0.0)
      | A.Cvtqs -> fun () -> set_fval m fc (single (Int64.to_float (get_f m fb)))
      | A.Cvtqt -> fun () -> set_fval m fc (Int64.to_float (get_f m fb))
      | A.Cvttq -> fun () -> set_f m fc (Int64.of_float (Float.trunc (fval m fb)))
      | A.Cvtts -> fun () -> set_fval m fc (single (fval m fb))
      | A.Cpys ->
        fun () ->
          let sa = Int64.logand (get_f m fa) Int64.min_int in
          let rest = Int64.logand (get_f m fb) Int64.max_int in
          set_f m fc (Int64.logor sa rest)
      | A.Cpysn ->
        fun () ->
          let sa = Int64.logand (Int64.lognot (get_f m fa)) Int64.min_int in
          let rest = Int64.logand (get_f m fb) Int64.max_int in
          set_f m fc (Int64.logor sa rest)
      | A.Sqrts ->
        fun () ->
          m.cycles <- m.cycles + 15;
          set_fval m fc (single (sqrt (fval m fb)))
      | A.Sqrtt ->
        fun () ->
          m.cycles <- m.cycles + 30;
          set_fval m fc (sqrt (fval m fb)))
  | A.Br _ | A.Bsr _ | A.Beq _ | A.Bne _ | A.Blt _ | A.Ble _ | A.Bgt _ | A.Bge _ | A.Fbeq _
  | A.Fbne _ | A.Jmp _ | A.Jsr _ | A.Retj _ ->
    None

(* Compiled closure for a block *terminator* at address [pc]: leaves
   the control-transfer target in [m.nextpc] (fallthrough [pc + 4] for
   an untaken branch) — exactly the interpreter's nextpc discipline;
   the block commit moves nextpc into pc. *)
let term_of m pc (insn : A.t) : (unit -> unit) option =
  let ft = pc + 4 in
  match insn with
  | A.Br (ra, d) | A.Bsr (ra, d) ->
    let tk = pc + 4 + (4 * d) in
    Some
      (fun () ->
        set_reg m ra (Int64.of_int ft);
        m.nextpc <- tk)
  | A.Beq (ra, d) ->
    let tk = pc + 4 + (4 * d) in
    Some (fun () -> m.nextpc <- (if get_reg m ra = 0L then tk else ft))
  | A.Bne (ra, d) ->
    let tk = pc + 4 + (4 * d) in
    Some (fun () -> m.nextpc <- (if get_reg m ra <> 0L then tk else ft))
  | A.Blt (ra, d) ->
    let tk = pc + 4 + (4 * d) in
    Some (fun () -> m.nextpc <- (if Int64.compare (get_reg m ra) 0L < 0 then tk else ft))
  | A.Ble (ra, d) ->
    let tk = pc + 4 + (4 * d) in
    Some (fun () -> m.nextpc <- (if Int64.compare (get_reg m ra) 0L <= 0 then tk else ft))
  | A.Bgt (ra, d) ->
    let tk = pc + 4 + (4 * d) in
    Some (fun () -> m.nextpc <- (if Int64.compare (get_reg m ra) 0L > 0 then tk else ft))
  | A.Bge (ra, d) ->
    let tk = pc + 4 + (4 * d) in
    Some (fun () -> m.nextpc <- (if Int64.compare (get_reg m ra) 0L >= 0 then tk else ft))
  | A.Fbeq (fa, d) ->
    let tk = pc + 4 + (4 * d) in
    Some (fun () -> m.nextpc <- (if fval m fa = 0.0 then tk else ft))
  | A.Fbne (fa, d) ->
    let tk = pc + 4 + (4 * d) in
    Some (fun () -> m.nextpc <- (if fval m fa <> 0.0 then tk else ft))
  | A.Jmp (ra, rb) | A.Jsr (ra, rb) | A.Retj (ra, rb) ->
    Some
      (fun () ->
        let t = addr_of (get_reg m rb) land lnot 3 in
        set_reg m ra (Int64.of_int ft);
        m.nextpc <- t)
  | _ -> None

(* instructions allowed before the terminator within the
   [Block_cache.max_insns] cap *)
let max_body = Block_cache.max_insns - 1

(* Only closures for these instructions can raise: a memory fault from
   a load/store, or [Block_cache.Retired] from a store that invalidated
   a resident block ([Lda]/[Ldah] are pure address arithmetic).
   Everything else [act_of] compiles is pure OCaml arithmetic that
   cannot raise, and Alpha terminators only write [m.nextpc], so the
   per-instruction [m.blk_i] bookkeeping is baked in at compile time
   for can-raise instructions alone and elided everywhere else. *)
let act_raises (insn : A.t) : bool =
  match insn with
  | A.Ldl _ | A.Ldq _ | A.Stl _ | A.Stq _ | A.Lds _ | A.Ldt _ | A.Sts _ | A.Stt _ -> true
  | _ -> false

(* Fuse a list of action closures into one, sequencing by direct calls
   in chunks of four: one chunk-closure entry per four instructions
   instead of a per-instruction array load and loop-counter update.
   Exceptions propagate out of the fused closure unchanged. *)
let rec seq (cs : (unit -> unit) list) : unit -> unit =
  match cs with
  | [] -> fun () -> ()
  | [ a ] -> a
  | [ a; b ] -> fun () -> a (); b ()
  | [ a; b; c ] -> fun () -> a (); b (); c ()
  | [ a; b; c; d ] -> fun () -> a (); b (); c (); d ()
  | a :: b :: c :: d :: rest ->
    let r = seq rest in
    fun () -> a (); b (); c (); d (); r ()

(* Scan the straight-line run entered at [entry]: body instructions up
   to and including the first control transfer, a non-compilable word
   (illegal, unmapped — left for the interpreter to trap on), or the
   length cap.  Returns the per-instruction (can-raise, action) list
   and whether it ends in a terminator; [None] if not even one
   instruction compiles.  Shared by the superblock and region
   compilers. *)
let scan_run m entry =
  let fetch_opt pc =
    match fetch m pc with
    | i -> Some i
    | exception (Machine_error _ | Mem.Fault _) -> None
  in
  let body = ref [] and nbody = ref 0 in
  let fin = ref None in
  let stop = ref false in
  let pc = ref entry in
  while (not !stop) && !nbody < max_body do
    match fetch_opt !pc with
    | None -> stop := true
    | Some insn -> (
      match act_of m insn with
      | Some a ->
        body := (act_raises insn, a) :: !body;
        incr nbody;
        pc := !pc + 4
      | None ->
        stop := true;
        fin := term_of m !pc insn)
  done;
  let tail, has_term = match !fin with Some t -> ([ (false, t) ], true) | None -> ([], false) in
  match List.rev_append !body tail with
  | [] -> None
  | all -> Some (all, has_term)

(* Compile the straight-line run entered at [entry] into a superblock.

   Timing is baked into the closures: the instruction that starts a new
   icache line carries the registerized probe (a later same-line fetch
   is a guaranteed hit — a block spans at most 256 consecutive bytes,
   far below the icache size, so it cannot evict its own lines, and a
   guaranteed hit is a no-op under bulk hit reconciliation).  Capturing
   the tag array here is safe because [Cache.flush] clears it in
   place. *)
let compile_block m entry =
  let tags, shift, mask = Cache.probe m.icache in
  match scan_run m entry with
  | None -> None
  | Some (all, has_term) ->
    let n = List.length all in
    let wrap i (raises, act) =
      let addr = entry + (4 * i) in
      let line = addr lsr shift in
      let boundary = i = 0 || line <> (addr - 4) lsr shift in
      if boundary then begin
        let idx = line land mask in
        if raises then
          fun () ->
            m.blk_i <- i;
            if Array.unsafe_get tags idx <> line then begin
              let p = Cache.access_uncounted m.icache addr in
              if p <> 0 then m.cycles <- m.cycles + p
            end;
            act ()
        else
          fun () ->
            if Array.unsafe_get tags idx <> line then begin
              let p = Cache.access_uncounted m.icache addr in
              if p <> 0 then m.cycles <- m.cycles + p
            end;
            act ()
      end
      else if raises then
        fun () ->
          m.blk_i <- i;
          act ()
      else act
    in
    (* traced runs re-bind [wrap] so each closure records its issue
       before acting (issue order = the interpreter's retire stream);
       untraced compilation keeps the exact closures above *)
    let wrap =
      if not (Trace.is_enabled m.tr) then wrap
      else
        fun i ra ->
          let f = wrap i ra in
          let addr = entry + (4 * i) in
          fun () ->
            Trace.retire m.tr addr;
            f ()
    in
    (* the commit is one more cannot-raise action fused onto the end:
       if anything earlier raises, it never runs, and the fixup
       handlers in [exec_chain] account the partial run instead *)
    let commit =
      if has_term then
        fun () ->
          m.insns <- m.insns + n;
          m.pc <- m.nextpc
      else begin
        let ft = entry + (4 * n) in
        fun () ->
          m.insns <- m.insns + n;
          m.nextpc <- ft;
          m.pc <- ft
      end
    in
    Some { entry; n; run = seq (List.mapi wrap all @ [ commit ]); has_term }

(* Execute [b] (precondition: [b.n <= fuel]), then chain directly into
   the next resident block while fuel lasts.  Returns the remaining
   fuel; the three exits (clean commit, [Retired] store-abort, fault)
   leave exactly the state the interpreter would — see the MIPS twin of
   this function for the case analysis (simpler here: no delay slots,
   so the post-instruction pc is always the straight-line successor for
   aborts, and terminators never fault or abort). *)
let rec exec_chain m (b : block) fuel =
  Trace.mark m.tr Trace.Block_enter b.entry;
  if Sim_probe.enabled m.probe then begin
    Sim_probe.block_exec m.probe ~entry:b.entry;
    Block_cache.note_exec m.bc b.entry
  end;
  Block_cache.begin_block m.bc;
  match b.run () with
  | () ->
    let fuel = fuel - b.n in
    if m.pc = halt_addr then fuel
    else if m.pc = b.entry && b.n <= fuel then
      (* self-loop fast path: a clean exit means no resident block was
         invalidated, so [b] is certainly still cached for [entry] *)
      exec_chain m b fuel
    else (
      match Block_cache.find m.bc m.pc with
      | Some nb when nb.n <= fuel -> exec_chain m nb fuel
      | _ -> fuel)
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:b.entry ~i;
    let a = b.entry + (4 * i) in
    m.nextpc <- a + 4;
    m.pc <- a + 4;
    fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = b.entry + (4 * i) in
    m.pc <- a;
    m.nextpc <- a + 4;
    raise e

(* ------------------------------------------------------------------ *)
(* Tier-3 regions: the MIPS twin carries the full commentary; here the
   branch scratch is [m.nextpc] (terminators write it for both arms, so
   the guard compares it against the trace's next entry) and the
   abort/fault fixups never involve a terminator — Alpha terminators
   cannot raise. *)

let compile_region m entry =
  let tags, shift, mask = Cache.probe m.icache in
  let rec collect pc first_len acc nblocks =
    match scan_run m pc with
    | None -> List.rev acc
    | Some (all, has_term) ->
      let n = List.length all in
      let acc = (pc, all, has_term, n) :: acc in
      let nblocks = nblocks + 1 in
      let succ =
        if has_term then Region_cache.dominant_succ m.rc pc
        else Some (pc + (4 * n))
      in
      (match succ with
      | Some s when s land 3 = 0 && s > 0 ->
        if s = entry then begin
          let fl = match first_len with None -> nblocks | Some f -> f in
          if
            nblocks + fl <= Region_cache.max_blocks
            && nblocks < Region_cache.max_unroll * fl
          then collect s (Some fl) acc nblocks
          else List.rev acc
        end
        else if nblocks < Region_cache.max_blocks then collect s first_len acc nblocks
        else List.rev acc
      | _ -> List.rev acc)
  in
  match collect entry None [] 0 with
  | [] | [ _ ] -> None (* a single block gains nothing over tier 2 *)
  | blks ->
    let blks = Array.of_list blks in
    let nb = Array.length blks in
    let r_n = Array.fold_left (fun a (_, _, _, n) -> a + n) 0 blks in
    let spans = Array.map (fun (p, _, _, n) -> (p, 4 * n)) blks in
    let addrs = Array.make r_n 0 in
    let traced = Trace.is_enabled m.tr in
    (* Unconditional direct branches (br, bsr) pin nextpc statically:
       a guard matching the trace successor can never fire and is
       omitted (see the MIPS twin for the rationale). *)
    let static_jump_target p n =
      let tpc = p + (4 * (n - 1)) in
      match fetch m tpc with
      | A.Br (_, d) | A.Bsr (_, d) -> Some (tpc + 4 + (4 * d))
      | _ -> None
      | exception (Machine_error _ | Mem.Fault _) -> None
    in
    let probed = ref [] and fastc = ref [] in
    let push_insn i addr raises act boundary =
      let line = addr lsr shift in
      let idx = line land mask in
      let pr =
        if boundary then
          if raises then
            fun () ->
              m.blk_i <- i;
              if Array.unsafe_get tags idx <> line then begin
                let p = Cache.access_uncounted m.icache addr in
                if p <> 0 then m.cycles <- m.cycles + p
              end;
              act ()
          else
            fun () ->
              if Array.unsafe_get tags idx <> line then begin
                let p = Cache.access_uncounted m.icache addr in
                if p <> 0 then m.cycles <- m.cycles + p
              end;
              act ()
        else if raises then
          fun () ->
            m.blk_i <- i;
            act ()
        else act
      in
      let fa =
        if raises then
          fun () ->
            m.blk_i <- i;
            act ()
        else act
      in
      let pr, fa =
        if not traced then (pr, fa)
        else
          ( (fun () -> Trace.retire m.tr addr; pr ()),
            fun () -> Trace.retire m.tr addr; fa () )
      in
      probed := pr :: !probed;
      fastc := fa :: !fastc
    in
    let k = ref 0 in
    let prev_line = ref min_int in
    Array.iteri
      (fun bi (p, all, has_term, n) ->
        List.iteri
          (fun j (raises, act) ->
            let i = !k in
            let addr = p + (4 * j) in
            addrs.(i) <- addr;
            let line = addr lsr shift in
            push_insn i addr raises act (line <> !prev_line);
            prev_line := line;
            incr k)
          all;
        if bi < nb - 1 && has_term then begin
          let expected = (fun (p, _, _, _) -> p) blks.(bi + 1) in
          match static_jump_target p n with
          | Some t when t = expected -> () (* guard provably never fires *)
          | _ ->
            let kk = !k in
            let g () =
              if m.nextpc <> expected then raise (Region_cache.Side_exit kk)
            in
            probed := g :: !probed;
            fastc := g :: !fastc
        end)
      blks;
    let commit =
      let p_last, _, last_term, n_last = blks.(nb - 1) in
      if last_term then
        fun () ->
          m.insns <- m.insns + r_n;
          m.pc <- m.nextpc
      else begin
        let ft = p_last + (4 * n_last) in
        fun () ->
          m.insns <- m.insns + r_n;
          m.nextpc <- ft;
          m.pc <- ft
      end
    in
    let r_run = seq (List.rev (commit :: !probed)) in
    (* fast-pass tail: deferred commit via [Loop_exit] (see the MIPS
       twin for the full commentary) *)
    let fast_tail =
      let _, _, last_term, _ = blks.(nb - 1) in
      if last_term then
        (fun () ->
          m.insns <- m.insns + r_n;
          if m.nextpc <> entry then raise Region_cache.Loop_exit)
      else commit
    in
    let lines =
      List.sort_uniq compare (Array.to_list (Array.map (fun a -> a lsr shift) addrs))
    in
    let fast_ok =
      List.length (List.sort_uniq compare (List.map (fun l -> l land mask) lines))
      = List.length lines
    in
    let r_fast = if fast_ok then seq (List.rev (fast_tail :: !fastc)) else r_run in
    Some { r_entry = entry; r_n; r_spans = spans; r_run; r_fast; r_addrs = addrs }

(* latency-instrumented entry points: the stopwatch brackets the whole
   scan/trace-follow + closure compile + cache insert, feeding the
   bc.compile_ns / rc.promote_ns distributions (no clock read when the
   sink is disabled) *)
let compile_block_timed m entry =
  let t0 = Block_cache.compile_start m.bc in
  let r = compile_block m entry in
  Block_cache.compile_done m.bc t0;
  r

let promote m entry =
  let t0 = Region_cache.promote_start m.rc in
  (match compile_region m entry with
  | Some r -> Region_cache.set m.rc entry ~insns:r.r_n r
  | None -> Region_cache.mark_unpromotable m.rc entry);
  Region_cache.promote_done m.rc t0

let exec_region m (r : region) fuel0 =
  Trace.mark m.tr Trace.Block_enter r.r_entry;
  if Sim_probe.enabled m.probe then Sim_probe.region_exec m.probe ~entry:r.r_entry;
  Block_cache.begin_block m.bc;
  let fuel = ref fuel0 in
  match
    r.r_run ();
    fuel := !fuel - r.r_n;
    let entry = r.r_entry and rn = r.r_n and fast = r.r_fast in
    while m.pc = entry && rn <= !fuel do
      fast ();
      fuel := !fuel - rn
    done
  with
  | () -> !fuel
  | exception Region_cache.Loop_exit ->
    (* the raising fast pass ran to completion and credited itself;
       perform its deferred commit *)
    m.pc <- m.nextpc;
    !fuel - r.r_n
  | exception Region_cache.Side_exit k ->
    m.insns <- m.insns + k;
    Sim_probe.side_exit m.probe ~entry:r.r_entry ~i:k;
    m.pc <- m.nextpc;
    !fuel - k
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:r.r_entry ~i;
    let a = r.r_addrs.(i) in
    m.nextpc <- a + 4;
    m.pc <- a + 4;
    !fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = r.r_addrs.(i) in
    m.pc <- a;
    m.nextpc <- a + 4;
    raise e

(* [exec_chain] for regions mode: identical block chaining plus the
   tier-3 hooks — per-dispatch hotness counting (promoting on the
   threshold crossing), successor-edge profiling after each clean
   commit, and chaining into a resident region when one exists at the
   next pc. *)
let rec exec_chain_r m (b : block) fuel =
  Trace.mark m.tr Trace.Block_enter b.entry;
  if Sim_probe.enabled m.probe then begin
    Sim_probe.block_exec m.probe ~entry:b.entry;
    Block_cache.note_exec m.bc b.entry
  end;
  if Region_cache.note_dispatch m.rc b.entry then promote m b.entry;
  Block_cache.begin_block m.bc;
  match b.run () with
  | () ->
    let fuel = fuel - b.n in
    if m.pc = halt_addr then fuel
    else begin
      Region_cache.note_succ m.rc b.entry m.pc;
      match Region_cache.find m.rc m.pc with
      | Some r when r.r_n <= fuel -> exec_region m r fuel
      | _ ->
        if m.pc = b.entry && b.n <= fuel then exec_chain_r m b fuel
        else (
          match Block_cache.find m.bc m.pc with
          | Some nb when nb.n <= fuel -> exec_chain_r m nb fuel
          | _ -> fuel)
    end
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:b.entry ~i;
    let a = b.entry + (4 * i) in
    m.nextpc <- a + 4;
    m.pc <- a + 4;
    fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = b.entry + (4 * i) in
    m.pc <- a;
    m.nextpc <- a + 4;
    raise e

let default_fuel = 200_000_000

(* Tight tail-recursive loop: the fuel check is a register countdown
   rather than a per-step ref increment/compare. *)
(* single-step with exact cycle accounting (the public interface) *)
let step m =
  let mi0 = Cache.misses m.icache in
  (let p = Cache.access_uncounted m.icache m.pc in
   if p <> 0 then m.cycles <- m.cycles + p);
  Trace.retire m.tr m.pc;
  step_inner m m.pc;
  m.cycles <- m.cycles + 1;
  Cache.add_hits m.icache (1 - (Cache.misses m.icache - mi0))

(* [step_inner] defers the 1-cycle-per-instruction component of the
   accounting to its caller; [run] adds it in bulk at exit from the
   instruction-count delta, so the hot loop carries one counter update
   less per step.  Totals are exact whenever [run] returns or raises. *)
(* The icache tag probe is inlined here with its geometry held in
   parameters (registers), falling back to the full model only on a
   miss; [run] reconciles the hit counter at exit from the retired-
   instruction delta, since a fetch loop performs exactly one icache
   access per retired instruction. *)
let rec run_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    let line = pc lsr shift in
    if Array.unsafe_get tags (line land mask) <> line then
      (let p = Cache.access_uncounted m.icache pc in
       if p <> 0 then m.cycles <- m.cycles + p);
    Trace.retire m.tr pc;
    step_inner m pc;
    run_go m tags shift mask (fuel - 1)
  end

(* one interpreted instruction inside the block-dispatch loop: the
   registerized icache probe of [run_go], then [step_inner] *)
let[@inline] step_one m tags shift mask =
  let pc = m.pc in
  let line = pc lsr shift in
  if Array.unsafe_get tags (line land mask) <> line then
    (let p = Cache.access_uncounted m.icache pc in
     if p <> 0 then m.cycles <- m.cycles + p);
  Trace.retire m.tr pc;
  step_inner m pc

(* Block-dispatch run loop: resident block -> [exec_chain]; no block
   yet -> compile, cache, retry; uncompilable entry / insufficient fuel
   for a whole block -> one interpreted instruction.  (No delay slots,
   so any pc is a valid block entry.) *)
let rec run_blocks_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    match Block_cache.find m.bc pc with
    | Some b when b.n <= fuel ->
      let fuel = exec_chain m b fuel in
      Sim_probe.chain_flush m.probe;
      run_blocks_go m tags shift mask fuel
    | Some _ ->
      step_one m tags shift mask;
      run_blocks_go m tags shift mask (fuel - 1)
    | None -> (
      match compile_block_timed m pc with
      | Some b ->
        Block_cache.set m.bc pc b;
        run_blocks_go m tags shift mask fuel
      | None ->
        step_one m tags shift mask;
        run_blocks_go m tags shift mask (fuel - 1))
  end

(* Region-dispatch run loop: [run_blocks_go] with a region probe ahead
   of the block probe, and chaining through [exec_chain_r] so hotness
   and successor profiles accumulate.  Fuel discipline is unchanged —
   a region pass only runs when it fits whole, and when it does not,
   dispatch falls through to the identical block/interpreter ladder. *)
let rec run_regions_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    match Region_cache.find m.rc pc with
    | Some r when r.r_n <= fuel ->
      let fuel = exec_region m r fuel in
      Sim_probe.chain_flush m.probe;
      run_regions_go m tags shift mask fuel
    | _ -> (
      match Block_cache.find m.bc pc with
      | Some b when b.n <= fuel ->
        let fuel = exec_chain_r m b fuel in
        Sim_probe.chain_flush m.probe;
        run_regions_go m tags shift mask fuel
      | Some _ ->
        step_one m tags shift mask;
        run_regions_go m tags shift mask (fuel - 1)
      | None -> (
        match compile_block_timed m pc with
        | Some b ->
          Block_cache.set m.bc pc b;
          run_regions_go m tags shift mask fuel
        | None ->
          step_one m tags shift mask;
          run_regions_go m tags shift mask (fuel - 1)))
  end

let run ?(fuel = default_fuel) m =
  let i0 = m.insns in
  let mi0 = Cache.misses m.icache in
  let t0 = Sim_probe.run_start m.probe in
  let finish () =
    let retired = m.insns - i0 in
    m.cycles <- m.cycles + retired;
    Cache.add_hits m.icache (retired - (Cache.misses m.icache - mi0));
    Sim_probe.chain_flush m.probe;
    Sim_probe.retired m.probe retired;
    Sim_probe.run_done m.probe t0
  in
  let tags, shift, mask = Cache.probe m.icache in
  (try
     if m.regions then run_regions_go m tags shift mask fuel
     else if m.blocks then run_blocks_go m tags shift mask fuel
     else run_go m tags shift mask fuel
   with e ->
     finish ();
     Sim_probe.fault m.probe ~pc:m.pc;
     raise e);
  finish ()

(* ------------------------------------------------------------------ *)
(* Harness: args in $16-$21 / $f16-$f21 by slot; further args on the
   stack at sp+0, 8 bytes per slot.                                    *)

type arg = Int of int | Int64 of int64 | Double of float | Single of float

let place_args m ~sp args =
  let slot = ref 0 in
  List.iter
    (fun a ->
      let s = !slot in
      incr slot;
      match a with
      | Int v ->
        if s < 6 then set_reg m (16 + s) (Int64.of_int v)
        else Mem.write_u64 m.mem (sp + (8 * (s - 6))) (Int64.of_int v)
      | Int64 v ->
        if s < 6 then set_reg m (16 + s) v else Mem.write_u64 m.mem (sp + (8 * (s - 6))) v
      | Double v ->
        if s < 6 then set_fval m (16 + s) v
        else Mem.write_u64 m.mem (sp + (8 * (s - 6))) (Int64.bits_of_float v)
      | Single v ->
        if s < 6 then set_fval m (16 + s) v
        else
          Mem.write_u64 m.mem
            (sp + (8 * (s - 6)))
            (Int64.bits_of_float (Int32.float_of_bits (Int32.bits_of_float v))))
    args

let call ?fuel m ~entry args =
  let sp = m.stack_top land lnot 15 in
  set_reg m 30 (Int64.of_int sp);
  set_reg m 26 (Int64.of_int halt_addr);
  place_args m ~sp args;
  m.pc <- entry;
  run ?fuel m

let ret_int64 m = m.regs.(0)
let ret_int m = Int64.to_int m.regs.(0)
let ret_double m = fval m 0
let ret_single m = fval m 0

let reset_stats m =
  m.cycles <- 0;
  m.insns <- 0;
  Cache.reset_stats m.icache;
  Cache.reset_stats m.dcache

(* Models v_end's icache invalidation: drop both the timing caches and
   every predecoded instruction.  (The predecode drop is belt-and-braces
   — the write watcher already keeps it coherent — and costs nothing on
   the simulated clock.) *)
let flush_caches m =
  Cache.flush m.icache;
  Cache.flush m.dcache;
  Decode_cache.clear m.pdc;
  Block_cache.clear m.bc;
  Region_cache.clear m.rc
