(* The VCODE Alpha port.

   64-bit target, no delay slots.  The interesting parts relative to the
   MIPS port, all discussed in the paper:

   - No byte/halfword memory operations (pre-BWX): loads and stores of
     c/uc/s/us types are synthesized from ldq_u / ext / ins / msk / stq_u
     sequences (section 6.2 quotes eleven instructions worst case for an
     unsigned byte store; ours are comparable once out-of-range offsets
     are included).
   - No integer divide: v_div / v_mod compile to calls to the
     {!Alpha_runtime} millicode, which obeys the special
     "preserves everything" convention of section 5.2 so that even leaf
     procedures may use it; sign fixups use cmov so no branches are
     needed.
   - 32-bit (i/u) values are kept sign-extended in 64-bit registers, the
     Alpha convention; addl/subl/mull re-normalize, and unsigned 32-bit
     shifts/divides zero-extend explicitly.

   Register plan: $28 is the assembler scratch; $24/$25/$27 are the
   millicode argument/result registers and double as synthesis scratch;
   $29 (gp) and $15 (fp) are reserved.  Temps: $1-$8, $22, $23; vars:
   $9-$14.

   Frame layout (16-aligned, grows down):
     sp+0   .. sp+47    outgoing stack arguments (slots 6..11)
     sp+48              saved $ra
     sp+56  .. sp+255   register save area (ints then doubles)
     sp+256 ..          locals
   The int<->float transfer scratch is the 8 bytes below sp, safe in our
   closed world (nothing asynchronous touches the stack). *)

open Vcodebase
module A = Alpha_asm

let reserve_words = 40
let ra_slot = 48
let save_base = 56
let locals_base = 256
let max_arg_slots = 12
let xfer = -8 (* int<->float transfer scratch, below sp *)

let k_branch = 0 (* 21-bit branch displacement *)
let k_retj = 1   (* return jump: Br to epilogue, or rewritten to ret *)

let zero = 31
let sp = 30
let gp = 29
let at = 28
let ra = 26
let mr_a = 24  (* millicode dividend / remainder result *)
let mr_b = 25  (* millicode divisor / scratch *)
let mr_q = 27  (* millicode quotient / scratch *)
let fscratch = 1

let _ = gp

let rnum = Reg.idx

let e g i = ignore (Codebuf.emit g.Gen.buf (A.encode i))

let desc : Machdesc.t =
  let r n = Reg.R n and f n = Reg.F n in
  {
    Machdesc.name = "alpha";
    word_bits = 64;
    big_endian = false;
    branch_delay_slots = 0;
    load_delay = 2;
    nregs = 32;
    nfregs = 32;
    temps = [| r 1; r 2; r 3; r 4; r 5; r 6; r 7; r 8; r 22; r 23 |];
    vars = [| r 9; r 10; r 11; r 12; r 13; r 14 |];
    ftemps = [| f 10; f 11; f 12; f 13; f 14; f 15; f 22; f 23; f 24; f 25; f 26; f 27 |];
    fvars = [| f 2; f 3; f 4; f 5; f 6; f 7; f 8; f 9 |];
    callee_mask =
      (1 lsl 9) lor (1 lsl 10) lor (1 lsl 11) lor (1 lsl 12) lor (1 lsl 13) lor (1 lsl 14);
    fcallee_mask =
      (1 lsl 2) lor (1 lsl 3) lor (1 lsl 4) lor (1 lsl 5) lor (1 lsl 6) lor (1 lsl 7)
      lor (1 lsl 8) lor (1 lsl 9);
    arg_regs = [| r 16; r 17; r 18; r 19; r 20; r 21 |];
    farg_regs = [| f 16; f 17; f 18; f 19; f 20; f 21 |];
    ret_reg = r 0;
    fret_reg = f 0;
    sp = r 30;
    locals_base;
    scratch = r 28;
    reg_name = (fun reg ->
      match reg with Reg.R n -> A.reg_name n | Reg.F n -> A.freg_name n);
  }

let fits16 v = v >= -32768 && v <= 32767
let fits_lit v = v >= 0 && v <= 255

let sext16 v = ((v land 0xFFFF) lxor 0x8000) - 0x8000

(* Load a 64-bit constant: lda/ldah pairs around an optional sll #32,
   at most five instructions.  Works by the standard gas decomposition;
   all arithmetic is modulo 2^64 so Int64 wraparound is harmless. *)
let emit_const g rd (v : int64) =
  let l0 = sext16 (Int64.to_int (Int64.logand v 0xFFFFL)) in
  let v1 = Int64.shift_right (Int64.sub v (Int64.of_int l0)) 16 in
  let h0 = sext16 (Int64.to_int (Int64.logand v1 0xFFFFL)) in
  let v2 = Int64.shift_right (Int64.sub v1 (Int64.of_int h0)) 16 in
  if Int64.equal v2 0L then begin
    e g (A.Lda (rd, zero, l0));
    if h0 <> 0 then e g (A.Ldah (rd, rd, h0))
  end
  else begin
    let l1 = sext16 (Int64.to_int (Int64.logand v2 0xFFFFL)) in
    let v3 = Int64.shift_right (Int64.sub v2 (Int64.of_int l1)) 16 in
    let h1 = sext16 (Int64.to_int (Int64.logand v3 0xFFFFL)) in
    e g (A.Lda (rd, zero, l1));
    if h1 <> 0 then e g (A.Ldah (rd, rd, h1));
    e g (A.Intop (A.Sll, rd, A.L 32, rd));
    if h0 <> 0 then e g (A.Ldah (rd, rd, h0));
    if l0 <> 0 then e g (A.Lda (rd, rd, l0))
  end

let is_32 (t : Vtype.t) = match t with Vtype.I | Vtype.U -> true | _ -> false
let signed_ty (t : Vtype.t) = Vtype.is_signed t

(* re-normalize a 32-bit result to the sign-extended convention *)
let sext32_reg g r = e g (A.Intop (A.Addl, r, A.L 0, r))

(* zero-extend a (sign-extended) 32-bit value into a scratch *)
let zext32_into g dst src =
  e g (A.Intop (A.Sll, src, A.L 32, dst));
  e g (A.Intop (A.Srl, dst, A.L 32, dst))

(* ------------------------------------------------------------------ *)
(* Division via millicode                                              *)

(* unsigned divide/remainder: set up $24/$25, call, fetch result *)
let emit_udivmod g (t : Vtype.t) rd rs1 rs2 ~want_rem =
  let a = rnum rs1 and b = rnum rs2 in
  if t = Vtype.U then begin
    zext32_into g mr_a a;
    zext32_into g mr_b b
  end
  else begin
    e g (A.Intop (A.Bis, a, A.R a, mr_a));
    e g (A.Intop (A.Bis, b, A.R b, mr_b))
  end;
  e g (A.Lda (mr_q, zero, Alpha_runtime.divmodqu_addr));
  e g (A.Jsr (at, mr_q));
  let src = if want_rem then mr_a else mr_q in
  e g (A.Intop (A.Bis, src, A.R src, rnum rd));
  if is_32 t then sext32_reg g (rnum rd)

(* signed divide/remainder with cmov sign fixups (no branches).

   Alias hazard: the divisor may already live in $25 (the millicode
   divisor register) when it was materialized by arith_imm's via_reg
   path.  The sequence therefore (a) reads the divisor's sign before
   overwriting anything, stashing the quotient sign below sp (the
   millicode borrows sp-8..-24, we use sp-32), and (b) computes |b|
   without reading b after a write to $25. *)
let emit_sdivmod g (t : Vtype.t) rd rs1 rs2 ~want_rem =
  let a = rnum rs1 and b = rnum rs2 in
  if not want_rem then begin
    (* quotient sign = sign(a) xor sign(b), saved across the call *)
    e g (A.Intop (A.Xor, a, A.R b, at));
    e g (A.Stq (at, sp, -32))
  end;
  (* $24 = |a| (a is a client register, never a millicode register) *)
  e g (A.Intop (A.Subq, zero, A.R a, mr_a));
  e g (A.Intop (A.Cmovge, a, A.R a, mr_a));
  (* $25 = |b|, alias-safe when b = $25 *)
  e g (A.Intop (A.Subq, zero, A.R b, at));
  if b <> mr_b then e g (A.Intop (A.Bis, b, A.R b, mr_b));
  e g (A.Intop (A.Cmovlt, mr_b, A.R at, mr_b));
  e g (A.Lda (mr_q, zero, Alpha_runtime.divmodqu_addr));
  e g (A.Jsr (at, mr_q));
  if want_rem then begin
    (* remainder sign follows the dividend, still intact in [a] *)
    e g (A.Intop (A.Subq, zero, A.R mr_a, mr_b));
    e g (A.Intop (A.Cmovlt, a, A.R mr_b, mr_a));
    e g (A.Intop (A.Bis, mr_a, A.R mr_a, rnum rd))
  end
  else begin
    e g (A.Ldq (at, sp, -32));
    e g (A.Intop (A.Subq, zero, A.R mr_q, mr_b));
    e g (A.Intop (A.Cmovlt, at, A.R mr_b, mr_q));
    e g (A.Intop (A.Bis, mr_q, A.R mr_q, rnum rd))
  end;
  if is_32 t then sext32_reg g (rnum rd)

(* ------------------------------------------------------------------ *)
(* ALU                                                                 *)

let arith_core g (op : Op.binop) (t : Vtype.t) rd rs1 rs2 =
  if Vtype.is_float t then begin
    let dbl = t <> Vtype.F in
    let d = rnum rd and a = rnum rs1 and b = rnum rs2 in
    let o =
      match op with
      | Op.Add -> if dbl then A.Addt else A.Adds
      | Op.Sub -> if dbl then A.Subt else A.Subs
      | Op.Mul -> if dbl then A.Mult else A.Muls
      | Op.Div -> if dbl then A.Divt else A.Divs
      | Op.Mod | Op.And | Op.Or | Op.Xor | Op.Lsh | Op.Rsh ->
        Verror.fail (Verror.Bad_type "float bit operation")
    in
    e g (A.Fpop (o, a, b, d))
  end
  else
    let d = rnum rd and a = rnum rs1 and b = A.R (rnum rs2) in
    match op with
    | Op.Add -> e g (A.Intop ((if is_32 t then A.Addl else A.Addq), a, b, d))
    | Op.Sub -> e g (A.Intop ((if is_32 t then A.Subl else A.Subq), a, b, d))
    | Op.Mul -> e g (A.Intop ((if is_32 t then A.Mull else A.Mulq), a, b, d))
    | Op.Div ->
      if signed_ty t then emit_sdivmod g t rd rs1 rs2 ~want_rem:false
      else emit_udivmod g t rd rs1 rs2 ~want_rem:false
    | Op.Mod ->
      if signed_ty t then emit_sdivmod g t rd rs1 rs2 ~want_rem:true
      else emit_udivmod g t rd rs1 rs2 ~want_rem:true
    | Op.And -> e g (A.Intop (A.And, a, b, d))
    | Op.Or -> e g (A.Intop (A.Bis, a, b, d))
    | Op.Xor -> e g (A.Intop (A.Xor, a, b, d))
    | Op.Lsh ->
      if is_32 t then begin
        (* 32-bit shifts take the amount modulo 32, unlike the 64-bit
           sll which uses six bits *)
        (match b with A.R br -> e g (A.Intop (A.And, br, A.L 31, at)) | A.L _ -> ());
        e g (A.Intop (A.Sll, a, A.R at, d));
        sext32_reg g d
      end
      else e g (A.Intop (A.Sll, a, b, d))
    | Op.Rsh ->
      if is_32 t then begin
        (match b with A.R br -> e g (A.Intop (A.And, br, A.L 31, at)) | A.L _ -> ());
        if signed_ty t then e g (A.Intop (A.Sra, a, A.R at, d))
        else begin
          (* zero-extend the 32-bit value before the logical shift *)
          zext32_into g mr_b a;
          e g (A.Intop (A.Srl, mr_b, A.R at, d))
        end;
        sext32_reg g d
      end
      else if signed_ty t then e g (A.Intop (A.Sra, a, b, d))
      else e g (A.Intop (A.Srl, a, b, d))

let arith g op t rd rs1 rs2 =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.arith op);
  arith_core g op t rd rs1 rs2

let arith_imm g (op : Op.binop) (t : Vtype.t) rd rs1 imm =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.arith_imm op);
  let d = rnum rd and a = rnum rs1 in
  let small = imm >= 0 && imm <= 255 in
  let lit = A.L (imm land 0xFF) in
  let via_reg () =
    emit_const g mr_b (Int64.of_int imm);
    arith_core g op t rd rs1 (Reg.R mr_b)
  in
  match op with
  | Op.Add when small -> e g (A.Intop ((if is_32 t then A.Addl else A.Addq), a, lit, d))
  | Op.Add when (not (is_32 t)) && imm >= -32768 && imm <= 32767 ->
    e g (A.Lda (d, a, imm))
  | Op.Sub when small -> e g (A.Intop ((if is_32 t then A.Subl else A.Subq), a, lit, d))
  | Op.And when small -> e g (A.Intop (A.And, a, lit, d))
  | Op.Or when small -> e g (A.Intop (A.Bis, a, lit, d))
  | Op.Xor when small -> e g (A.Intop (A.Xor, a, lit, d))
  | Op.Lsh | Op.Rsh ->
    let w = if is_32 t then 31 else 63 in
    let sh = imm land w in
    (match op with
    | Op.Lsh ->
      e g (A.Intop (A.Sll, a, A.L sh, d));
      if is_32 t then sext32_reg g d
    | Op.Rsh ->
      if signed_ty t then e g (A.Intop (A.Sra, a, A.L sh, d))
      else if t = Vtype.U then begin
        zext32_into g at a;
        e g (A.Intop (A.Srl, at, A.L sh, d));
        sext32_reg g d
      end
      else e g (A.Intop (A.Srl, a, A.L sh, d))
    | _ -> assert false)
  | Op.Mul when small -> e g (A.Intop ((if is_32 t then A.Mull else A.Mulq), a, lit, d))
  | Op.Add | Op.Sub | Op.Mul | Op.Div | Op.Mod | Op.And | Op.Or | Op.Xor -> via_reg ()

let unary g (op : Op.unop) (t : Vtype.t) rd rs =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.unary op);
  if Vtype.is_float t then begin
    let d = rnum rd and s = rnum rs in
    match op with
    | Op.Mov -> e g (A.Fpop (A.Cpys, s, s, d))
    | Op.Neg -> e g (A.Fpop (A.Cpysn, s, s, d))
    | Op.Com | Op.Not -> Verror.fail (Verror.Bad_type "float bit operation")
  end
  else
    let d = rnum rd and s = rnum rs in
    match op with
    | Op.Com ->
      e g (A.Intop (A.Ornot, zero, A.R s, d));
      if is_32 t then sext32_reg g d
    | Op.Not -> e g (A.Intop (A.Cmpeq, s, A.L 0, d))
    | Op.Mov -> e g (A.Intop (A.Bis, s, A.R s, d))
    | Op.Neg -> e g (A.Intop ((if is_32 t then A.Subl else A.Subq), zero, A.R s, d))

let set g (t : Vtype.t) rd imm64 =
  Gen.note_write g rd;
  Gen.count_insn g Opk.set;
  let v = if is_32 t then Int64.shift_right (Int64.shift_left imm64 32) 32 else imm64 in
  emit_const g (rnum rd) v

let setf g (t : Vtype.t) rd v =
  Gen.note_write g rd;
  Gen.count_insn g Opk.setf;
  let dbl = match t with Vtype.D -> true | _ -> false in
  let site = Codebuf.length g.Gen.buf in
  e g (A.Ldah (at, zero, 0));
  e g (if dbl then A.Ldt (rnum rd, at, 0) else A.Lds (rnum rd, at, 0));
  let bits = if dbl then Int64.bits_of_float v else Int64.of_int32 (Int32.bits_of_float v) in
  Gen.add_fimm g ~site ~bits ~dbl

(* ------------------------------------------------------------------ *)
(* Branches                                                            *)

let emit_branch_to g ~(mk : int -> A.t) lab =
  let site = Codebuf.length g.Gen.buf in
  e g (mk 0);
  Gen.add_reloc g ~site ~lab ~kind:k_branch

let branch g (c : Op.cond) (t : Vtype.t) rs1 rs2 lab =
  if Vtype.is_float t then begin
    let a = rnum rs1 and b = rnum rs2 in
    let cmp, on_true =
      match c with
      | Op.Lt -> (A.Fpop (A.Cmptlt, a, b, fscratch), true)
      | Op.Le -> (A.Fpop (A.Cmptle, a, b, fscratch), true)
      | Op.Gt -> (A.Fpop (A.Cmptlt, b, a, fscratch), true)
      | Op.Ge -> (A.Fpop (A.Cmptle, b, a, fscratch), true)
      | Op.Eq -> (A.Fpop (A.Cmpteq, a, b, fscratch), true)
      | Op.Ne -> (A.Fpop (A.Cmpteq, a, b, fscratch), false)
    in
    e g cmp;
    emit_branch_to g
      ~mk:(fun d -> if on_true then A.Fbne (fscratch, d) else A.Fbeq (fscratch, d))
      lab
  end
  else begin
    let a = rnum rs1 and b = A.R (rnum rs2) in
    let unsigned =
      match t with Vtype.U | Vtype.UL | Vtype.P -> true | _ -> false
    in
    let cmp, on_true =
      match (c, unsigned) with
      | Op.Lt, false -> (A.Intop (A.Cmplt, a, b, at), true)
      | Op.Le, false -> (A.Intop (A.Cmple, a, b, at), true)
      | Op.Gt, false -> (A.Intop (A.Cmple, a, b, at), false)
      | Op.Ge, false -> (A.Intop (A.Cmplt, a, b, at), false)
      | Op.Lt, true -> (A.Intop (A.Cmpult, a, b, at), true)
      | Op.Le, true -> (A.Intop (A.Cmpule, a, b, at), true)
      | Op.Gt, true -> (A.Intop (A.Cmpule, a, b, at), false)
      | Op.Ge, true -> (A.Intop (A.Cmpult, a, b, at), false)
      | Op.Eq, _ -> (A.Intop (A.Cmpeq, a, b, at), true)
      | Op.Ne, _ -> (A.Intop (A.Cmpeq, a, b, at), false)
    in
    e g cmp;
    emit_branch_to g ~mk:(fun d -> if on_true then A.Bne (at, d) else A.Beq (at, d)) lab
  end

let branch_imm g (c : Op.cond) (t : Vtype.t) rs1 imm lab =
  if Vtype.is_float t then Verror.fail (Verror.Bad_type "float immediate branch");
  let a = rnum rs1 in
  let signed = signed_ty t in
  if imm = 0 && signed then
    let mk =
      match c with
      | Op.Lt -> fun d -> A.Blt (a, d)
      | Op.Le -> fun d -> A.Ble (a, d)
      | Op.Gt -> fun d -> A.Bgt (a, d)
      | Op.Ge -> fun d -> A.Bge (a, d)
      | Op.Eq -> fun d -> A.Beq (a, d)
      | Op.Ne -> fun d -> A.Bne (a, d)
    in
    emit_branch_to g ~mk lab
  else if imm >= 0 && imm <= 255 then begin
    let lit = A.L imm in
    let unsigned = not signed in
    let cmp, on_true =
      match (c, unsigned) with
      | Op.Lt, false -> (A.Intop (A.Cmplt, a, lit, at), true)
      | Op.Le, false -> (A.Intop (A.Cmple, a, lit, at), true)
      | Op.Gt, false -> (A.Intop (A.Cmple, a, lit, at), false)
      | Op.Ge, false -> (A.Intop (A.Cmplt, a, lit, at), false)
      | Op.Lt, true -> (A.Intop (A.Cmpult, a, lit, at), true)
      | Op.Le, true -> (A.Intop (A.Cmpule, a, lit, at), true)
      | Op.Gt, true -> (A.Intop (A.Cmpule, a, lit, at), false)
      | Op.Ge, true -> (A.Intop (A.Cmpult, a, lit, at), false)
      | Op.Eq, _ -> (A.Intop (A.Cmpeq, a, lit, at), true)
      | Op.Ne, _ -> (A.Intop (A.Cmpeq, a, lit, at), false)
    in
    e g cmp;
    emit_branch_to g ~mk:(fun d -> if on_true then A.Bne (at, d) else A.Beq (at, d)) lab
  end
  else begin
    emit_const g mr_b (Int64.of_int imm);
    branch g c t rs1 (Reg.R mr_b) lab
  end

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)

let cvt g ~(from : Vtype.t) ~(to_ : Vtype.t) rd rs =
  Gen.note_write g rd;
  Gen.count_insn g Opk.cvt;
  if (not (Vtype.is_float from)) && not (Vtype.is_float to_) then begin
    (* word-class conversions: adjust the 32/64-bit representation *)
    let d = rnum rd and s = rnum rs in
    match (from, to_) with
    | Vtype.U, (Vtype.L | Vtype.UL | Vtype.P) -> zext32_into g d s
    | (Vtype.L | Vtype.UL | Vtype.P), (Vtype.I | Vtype.U) ->
      e g (A.Intop (A.Addl, s, A.L 0, d))
    | _ -> e g (A.Intop (A.Bis, s, A.R s, d))
  end
  else
    match (from, to_) with
    | (Vtype.I | Vtype.L), (Vtype.F | Vtype.D) ->
      e g (A.Stq (rnum rs, sp, xfer));
      e g (A.Ldt (fscratch, sp, xfer));
      e g (A.Fpop ((if to_ = Vtype.F then A.Cvtqs else A.Cvtqt), zero, fscratch, rnum rd))
    | (Vtype.U | Vtype.UL), Vtype.D ->
      (if from = Vtype.U then begin
         zext32_into g at (rnum rs);
         e g (A.Stq (at, sp, xfer))
       end
       else e g (A.Stq (rnum rs, sp, xfer)));
      e g (A.Ldt (fscratch, sp, xfer));
      e g (A.Fpop (A.Cvtqt, zero, fscratch, rnum rd))
    | (Vtype.F | Vtype.D), (Vtype.I | Vtype.L) ->
      e g (A.Fpop (A.Cvttq, zero, rnum rs, fscratch));
      e g (A.Stt (fscratch, sp, xfer));
      e g (A.Ldq (rnum rd, sp, xfer));
      if to_ = Vtype.I then sext32_reg g (rnum rd)
    | Vtype.F, Vtype.D -> e g (A.Fpop (A.Cpys, rnum rs, rnum rs, rnum rd))
    | Vtype.D, Vtype.F -> e g (A.Fpop (A.Cvtts, zero, rnum rs, rnum rd))
    | _ ->
      Verror.fail
        (Verror.Bad_type
           (Printf.sprintf "cv%s2%s" (Vtype.to_string from) (Vtype.to_string to_)))

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)

(* Put the effective address into a register when the offset is not
   encodable; returns (base reg, disp). *)
let mem_addr g base (off : Gen.offset) : int * int =
  match off with
  | Gen.Oimm i when fits16 i -> (rnum base, i)
  | Gen.Oimm i ->
    emit_const g at (Int64.of_int i);
    e g (A.Intop (A.Addq, at, A.R (rnum base), at));
    (at, 0)
  | Gen.Oreg r ->
    e g (A.Intop (A.Addq, rnum base, A.R (rnum r), at));
    (at, 0)

(* address into $at precisely (byte synthesis needs the low bits) *)
let addr_into_at g base (off : Gen.offset) =
  match off with
  | Gen.Oimm i when fits16 i -> e g (A.Lda (at, rnum base, i))
  | Gen.Oimm i ->
    emit_const g at (Int64.of_int i);
    e g (A.Intop (A.Addq, at, A.R (rnum base), at))
  | Gen.Oreg r -> e g (A.Intop (A.Addq, rnum base, A.R (rnum r), at))

let load_off g (t : Vtype.t) rd base off =
  match t with
  | Vtype.I | Vtype.U ->
    let b, o = mem_addr g base off in
    e g (A.Ldl (rnum rd, b, o))
  | Vtype.L | Vtype.UL | Vtype.P ->
    let b, o = mem_addr g base off in
    e g (A.Ldq (rnum rd, b, o))
  | Vtype.F ->
    let b, o = mem_addr g base off in
    e g (A.Lds (rnum rd, b, o))
  | Vtype.D ->
    let b, o = mem_addr g base off in
    e g (A.Ldt (rnum rd, b, o))
  | Vtype.UC ->
    (* paper section 6.2: synthesized byte load *)
    addr_into_at g base off;
    e g (A.Ldq_u (mr_q, at, 0));
    e g (A.Intop (A.Extbl, mr_q, A.R at, rnum rd))
  | Vtype.C ->
    addr_into_at g base off;
    e g (A.Ldq_u (mr_q, at, 0));
    e g (A.Intop (A.Extbl, mr_q, A.R at, rnum rd));
    e g (A.Intop (A.Sll, rnum rd, A.L 56, rnum rd));
    e g (A.Intop (A.Sra, rnum rd, A.L 56, rnum rd))
  | Vtype.US ->
    addr_into_at g base off;
    e g (A.Ldq_u (mr_q, at, 0));
    e g (A.Intop (A.Extwl, mr_q, A.R at, rnum rd))
  | Vtype.S ->
    addr_into_at g base off;
    e g (A.Ldq_u (mr_q, at, 0));
    e g (A.Intop (A.Extwl, mr_q, A.R at, rnum rd));
    e g (A.Intop (A.Sll, rnum rd, A.L 48, rnum rd));
    e g (A.Intop (A.Sra, rnum rd, A.L 48, rnum rd))
  | Vtype.V -> Verror.fail (Verror.Bad_type "ld.v")

let store_off g (t : Vtype.t) rv base off =
  match t with
  | Vtype.I | Vtype.U ->
    let b, o = mem_addr g base off in
    e g (A.Stl (rnum rv, b, o))
  | Vtype.L | Vtype.UL | Vtype.P ->
    let b, o = mem_addr g base off in
    e g (A.Stq (rnum rv, b, o))
  | Vtype.F ->
    let b, o = mem_addr g base off in
    e g (A.Sts (rnum rv, b, o))
  | Vtype.D ->
    let b, o = mem_addr g base off in
    e g (A.Stt (rnum rv, b, o))
  | Vtype.C | Vtype.UC ->
    (* the eleven-instruction worst case of section 6.2 *)
    addr_into_at g base off;
    e g (A.Ldq_u (mr_q, at, 0));
    e g (A.Intop (A.Insbl, rnum rv, A.R at, mr_b));
    e g (A.Intop (A.Mskbl, mr_q, A.R at, mr_q));
    e g (A.Intop (A.Bis, mr_q, A.R mr_b, mr_q));
    e g (A.Stq_u (mr_q, at, 0))
  | Vtype.S | Vtype.US ->
    addr_into_at g base off;
    e g (A.Ldq_u (mr_q, at, 0));
    e g (A.Intop (A.Inswl, rnum rv, A.R at, mr_b));
    e g (A.Intop (A.Mskwl, mr_q, A.R at, mr_q));
    e g (A.Intop (A.Bis, mr_q, A.R mr_b, mr_q));
    e g (A.Stq_u (mr_q, at, 0))
  | Vtype.V -> Verror.fail (Verror.Bad_type "st.v")

(* The Target.S imm/reg-specialized memory entry points.  The sub-word
   synthesis above keeps the offset-dispatch form internally; the split
   matters for ports on the allocation-free fast path (MIPS). *)
let load_imm g t rd base off = Gen.note_write g rd; Gen.count_insn g Opk.ld; load_off g t rd base (Gen.Oimm off)
let load_reg g t rd base idx = Gen.note_write g rd; Gen.count_insn g Opk.ld; load_off g t rd base (Gen.Oreg idx)
let store_imm g t rv base off = Gen.count_insn g Opk.st; store_off g t rv base (Gen.Oimm off)
let store_reg g t rv base idx = Gen.count_insn g Opk.st; store_off g t rv base (Gen.Oreg idx)

(* ------------------------------------------------------------------ *)
(* Control                                                             *)

let jump g (t : Gen.jtarget) =
  match t with
  | Gen.Jlabel lab ->
    let site = Codebuf.length g.Gen.buf in
    e g (A.Br (zero, 0));
    Gen.add_reloc g ~site ~lab ~kind:k_branch
  | Gen.Jaddr a ->
    emit_const g at (Int64.of_int a);
    e g (A.Jmp (zero, at))
  | Gen.Jreg r -> e g (A.Jmp (zero, rnum r))

let jal g (t : Gen.jtarget) =
  match t with
  | Gen.Jlabel lab ->
    let site = Codebuf.length g.Gen.buf in
    e g (A.Bsr (ra, 0));
    Gen.add_reloc g ~site ~lab ~kind:k_branch
  | Gen.Jaddr a ->
    emit_const g mr_q (Int64.of_int a);
    e g (A.Jsr (ra, mr_q))
  | Gen.Jreg r -> e g (A.Jsr (ra, rnum r))

let nop g = ignore (Codebuf.emit g.Gen.buf A.nop_word)

(* ------------------------------------------------------------------ *)
(* Calling convention                                                  *)

type arg_loc = In_ireg of int | In_freg of int | On_stack of int

let assign_slots (tys : Vtype.t array) : (Vtype.t * arg_loc) array =
  Array.mapi
    (fun s (t : Vtype.t) ->
      if s < 6 then
        if Vtype.is_float t then (t, In_freg (16 + s)) else (t, In_ireg (16 + s))
      else (t, On_stack (s - 6)))
    tys

let lambda g (tys : Vtype.t array) : Reg.t array =
  g.Gen.prologue_at <- Codebuf.reserve g.Gen.buf ~n:reserve_words ~fill:A.nop_word;
  g.Gen.prologue_words <- reserve_words;
  g.Gen.epilogue_lab <- Gen.genlabel g;
  let locs = assign_slots tys in
  Array.map
    (fun ((t : Vtype.t), loc) ->
      match loc with
      | In_ireg n ->
        let r = Reg.R n in
        Gen.mark_in_use g r;
        r
      | In_freg n ->
        let r = Reg.F n in
        Gen.mark_in_use g r;
        r
      | On_stack s ->
        let float = Vtype.is_float t in
        let r =
          match Gen.getreg g ~cls:`Var ~float with
          | Some r -> r
          | None -> (
            match Gen.getreg g ~cls:`Temp ~float with
            | Some r -> r
            | None -> Verror.fail (Verror.Registers_exhausted "incoming arguments"))
        in
        Gen.note_write g r;
        Gen.add_arg_load g ~slot:s r t;
        r)
    locs

let frame_size g =
  if
    g.Gen.made_call || g.Gen.locals_bytes > 0 || g.Gen.used_callee <> 0
    || g.Gen.used_fcallee <> 0
  then (locals_base + g.Gen.locals_bytes + 15) land lnot 15
  else 0

let ret g (t : Vtype.t) (r : Reg.t option) =
  (match (t, r) with
  | Vtype.V, _ | _, None -> ()
  | (Vtype.F | Vtype.D), Some r ->
    if rnum r <> 0 then e g (A.Fpop (A.Cpys, rnum r, rnum r, 0))
  | _, Some r -> if rnum r <> 0 then e g (A.Intop (A.Bis, rnum r, A.R (rnum r), 0)));
  let site = Codebuf.length g.Gen.buf in
  e g (A.Br (zero, 0));
  Gen.add_reloc g ~site ~lab:g.Gen.epilogue_lab ~kind:k_retj

let save_layout g = Gen.save_layout g ~first_off:save_base ~int_bytes:8 ~limit:locals_base

let push_arg g (t : Vtype.t) (r : Reg.t) = Gen.push_call_arg g t r

let do_call g (target : Gen.jtarget) =
  let n = Gen.call_arg_count g in
  let tys = Array.init n (Gen.call_arg_ty g) in
  let locs = assign_slots tys in
  if n > max_arg_slots then
    Verror.fail (Verror.Unsupported "more than 12 outgoing argument slots");
  Array.iteri
    (fun i ((t : Vtype.t), loc) ->
      let src = Gen.call_arg_reg g i in
      match loc with
      | On_stack s -> (
        match t with
        | Vtype.F -> e g (A.Sts (rnum src, sp, 8 * s))
        | Vtype.D -> e g (A.Stt (rnum src, sp, 8 * s))
        | _ -> e g (A.Stq (rnum src, sp, 8 * s)))
      | In_ireg _ | In_freg _ -> ())
    locs;
  Array.iteri
    (fun i (_, loc) ->
      let src = Gen.call_arg_reg g i in
      match loc with
      | In_ireg n -> if rnum src <> n then e g (A.Intop (A.Bis, rnum src, A.R (rnum src), n))
      | In_freg n -> if rnum src <> n then e g (A.Fpop (A.Cpys, rnum src, rnum src, n))
      | On_stack _ -> ())
    locs;
  Gen.clear_call_args g;
  jal g target

let retval g (t : Vtype.t) (r : Reg.t) =
  match t with
  | Vtype.V -> ()
  | Vtype.F | Vtype.D -> if rnum r <> 0 then e g (A.Fpop (A.Cpys, 0, 0, rnum r))
  | _ -> if rnum r <> 0 then e g (A.Intop (A.Bis, 0, A.R 0, rnum r))

(* ------------------------------------------------------------------ *)
(* Finalization                                                        *)

let hi_lo addr =
  let lo = addr land 0xFFFF in
  let lo_s = if lo >= 0x8000 then lo - 0x10000 else lo in
  let hi = ((addr - lo_s) asr 16) land 0xFFFF in
  (hi, lo)

let finish g =
  let frame = frame_size g in
  let saves = save_layout g in
  (* epilogue *)
  Gen.bind_label g g.Gen.epilogue_lab;
  if g.Gen.made_call then e g (A.Ldq (ra, sp, ra_slot));
  List.iter
    (function
      | `Int (n, off) -> e g (A.Ldq (n, sp, off))
      | `Fp (n, off) -> e g (A.Ldt (n, sp, off)))
    saves;
  if frame <> 0 then e g (A.Lda (sp, sp, frame));
  e g (A.Retj (zero, ra));
  (* constant pool *)
  Gen.place_fimms g ~big_endian:false ~patch:(fun ~site ~addr ->
      let hi, lo = hi_lo addr in
      Codebuf.set g.Gen.buf site (A.encode (A.Ldah (at, zero, hi)));
      let old = Codebuf.get g.Gen.buf (site + 1) in
      Codebuf.set g.Gen.buf (site + 1) ((old land 0xFFFF0000) lor (lo land 0xFFFF)));
  (* prologue *)
  let prologue = ref [] in
  let add i = prologue := i :: !prologue in
  if frame <> 0 then add (A.Lda (sp, sp, -frame));
  if g.Gen.made_call then add (A.Stq (ra, sp, ra_slot));
  List.iter
    (function
      | `Int (n, off) -> add (A.Stq (n, sp, off))
      | `Fp (n, off) -> add (A.Stt (n, sp, off)))
    saves;
  Gen.iter_arg_loads g (fun ~slot r (t : Vtype.t) ->
      let off = frame + (8 * slot) in
      match t with
      | Vtype.F -> add (A.Lds (rnum r, sp, off))
      | Vtype.D -> add (A.Ldt (rnum r, sp, off))
      | Vtype.I | Vtype.U -> add (A.Ldl (rnum r, sp, off))
      | _ -> add (A.Ldq (rnum r, sp, off)));
  let pro = List.rev !prologue in
  let k = List.length pro in
  if k > reserve_words then Verror.fail (Verror.Unsupported "prologue overflow");
  let start = g.Gen.prologue_at + g.Gen.prologue_words - k in
  List.iteri (fun i insn -> Codebuf.set g.Gen.buf (start + i) (A.encode insn)) pro;
  g.Gen.entry_index <- start;
  (* relocations *)
  let trivial = frame = 0 in
  Gen.resolve_relocs g ~apply:(fun ~kind ~site ~dest ->
      let disp = dest - (site + 1) in
      if kind = k_branch then begin
        if disp < -0x100000 || disp > 0xFFFFF then
          Verror.fail (Verror.Range "branch displacement");
        let old = Codebuf.get g.Gen.buf site in
        Codebuf.set g.Gen.buf site ((old land lnot 0x1FFFFF) lor (disp land 0x1FFFFF))
      end
      else if kind = k_retj then begin
        if trivial then Codebuf.set g.Gen.buf site (A.encode (A.Retj (zero, ra)))
        else begin
          let old = Codebuf.get g.Gen.buf site in
          Codebuf.set g.Gen.buf site ((old land lnot 0x1FFFFF) lor (disp land 0x1FFFFF))
        end
      end
      else Verror.failf "unknown reloc kind %d" kind)

let apply_reloc _g ~kind:_ ~site:_ ~dest:_ = ()

(* Peephole interposition hooks: the raw port binds labels directly and
   needs no window barrier (Alpha also has no delay slots). *)
let bind_label g l = Gen.bind_label g l
let sync _g = ()

(* Mirror of [arith_imm]'s single-instruction fast paths: operate-format
   instructions take an 8-bit zero-extended literal; shift counts are
   masked by the hardware. *)
let binop_imm_fits (op : Op.binop) imm =
  match op with
  | Op.Add | Op.Sub | Op.And | Op.Or | Op.Xor | Op.Mul -> fits_lit imm
  | Op.Lsh | Op.Rsh -> true
  | Op.Div | Op.Mod -> false

let disasm ~word ~addr = A.disasm ~addr word

let extra_insns =
  [
    ("sqrtt", fun g (rs : Reg.t array) -> e g (A.Fpop (A.Sqrtt, zero, rnum rs.(1), rnum rs.(0))));
    ("sqrts", fun g rs -> e g (A.Fpop (A.Sqrts, zero, rnum rs.(1), rnum rs.(0))));
    ("umulh", fun g rs -> e g (A.Intop (A.Umulh, rnum rs.(1), A.R (rnum rs.(2)), rnum rs.(0))));
    ("cmoveq", fun g rs -> e g (A.Intop (A.Cmoveq, rnum rs.(1), A.R (rnum rs.(2)), rnum rs.(0))));
  ]

let extra_imm_insns =
  [
    ("lda", fun g (rs : Reg.t array) imm -> e g (A.Lda (rnum rs.(0), rnum rs.(1), imm)));
    ("addq_lit", fun g rs imm -> e g (A.Intop (A.Addq, rnum rs.(1), A.L (imm land 0xFF), rnum rs.(0))));
  ]
