(** Opcode-kind slots for per-opcode emission statistics.

    A small dense index space over the Table 2 instruction vocabulary,
    at the granularity clients see (binops split register/immediate,
    branches split by condition, memory collapsed to ld/st).  {!Gen}
    keeps one preallocated counter per slot; ports pass the slot to
    [Gen.count_insn] at each public emitter entry. *)

(** total number of slots; valid slots are [0 .. slots - 1] *)
val slots : int

val arith : Op.binop -> int
val arith_imm : Op.binop -> int
val unary : Op.unop -> int
val branch : Op.cond -> int
val branch_imm : Op.cond -> int

val set : int
val setf : int
val cvt : int
val ld : int
val st : int
val jmp : int
val jal : int
val ret : int
val nop : int
val call : int
val retval : int

(** extension instructions registered through [Vcode.Ext] *)
val ext : int

(** the reporting name of a slot, e.g. ["add"], ["addi"], ["blt"];
    @raise Invalid_argument on an out-of-range slot *)
val name : int -> string
