(* Per-function dynamic code generation state.

   This record is everything VCODE keeps while generating a function.
   True to the paper, memory use during generation is proportional to the
   number of labels and unresolved jumps plus the emitted code itself —
   there is no per-instruction intermediate structure (compare the DCG
   baseline in lib/dcg, which builds IR trees).

   The target-independent machinery here covers: label creation and
   binding, relocation recording, the register allocator, per-function
   register-class overrides (section 5.3 "violating abstractions"),
   callee-saved usage tracking for prologue backpatching, local-variable
   offsets and the pending floating-point immediate pool (section 5.2). *)

(* A memory-operand offset: VCODE loads/stores take base + (immediate or
   register) offsets. *)
type offset = Oimm of int | Oreg of Reg.t

(* A jump target: VCODE jumps go to labels, registers, or absolute
   addresses (paper Table 2: "jump to immediate, register, or label"). *)
type jtarget = Jlabel of int | Jreg of Reg.t | Jaddr of int

(* Section 5.3: clients may dynamically reclassify any physical register
   for the duration of one generated function. *)
type cls_override = Odefault | Ocallee | Ocaller | Ounavail

(* The four side tables that used to be OCaml lists are growable
   int-packed arrays: recording a relocation, FP immediate, incoming
   argument reload or outgoing call argument costs zero GC words in the
   steady state (the table doubles amortized-rarely, and an empty table
   is the shared [[||]]).  Packed strides:

     relocs     3  site, label id, target-interpreted kind
     fimms      4  load site, low 32 bits, high 32 bits, is_double
     arg_loads  3  arg slot, Reg.to_int, Vtype.to_int
     call_args  2  Vtype.to_int, Reg.to_int                            *)

type t = {
  desc : Machdesc.t;
  buf : Codebuf.t;
  base : int;  (* simulated load address of buf word 0 *)
  mutable labels : int array;  (* label id -> code index, -1 if unbound *)
  mutable nlabels : int;
  mutable relocs : int array;  (* packed, stride 3 *)
  mutable nrelocs : int;
  mutable resolved_relocs : int; (* relocs consumed by [resolve_relocs]; the
                                    first [resolved_relocs] triples of [relocs]
                                    keep their bound sites for post-hoc reading *)
  mutable leaf : bool;
  mutable in_function : bool;
  mutable finished : bool;
  mutable locals_bytes : int;
  mutable used_callee : int;   (* bitmask: callee-saved int regs written *)
  mutable used_fcallee : int;
  mutable made_call : bool;
  mutable max_call_args : int;
  mutable prologue_at : int;    (* index of the reserved prologue area *)
  mutable prologue_words : int; (* its size in words *)
  mutable entry_index : int;    (* set by finish: index of first live insn *)
  mutable epilogue_lab : int;
  mutable ret_type : Vtype.t;
  mutable fimms : int array;    (* packed, stride 4 *)
  mutable nfimms : int;
  mutable arg_loads : int array;  (* packed, stride 3 *)
  mutable narg_loads : int;
  mutable call_args : int array;  (* packed, stride 2; push_arg order *)
  mutable ncall_args : int;
  mutable int_in_use : int;  (* allocator bitmask over the int file *)
  mutable flt_in_use : int;
  overrides : cls_override array;
  foverrides : cls_override array;
  mutable eff_callee_mask : int;  (* callee_mask folded with overrides *)
  mutable eff_fcallee_mask : int;
  mutable insn_count : int;  (* VCODE-level instructions emitted *)
  op_counts : int array;     (* per-{!Opk} slot emission counts; their sum
                                is [insn_count] by construction *)
  prov_on : bool;            (* record emit-site provenance *)
  mutable prov : int array;  (* packed, stride 2: start word index (at
                                emitter entry, i.e. before the words),
                                Opk slot; slot -1 closes the table *)
  mutable nprov : int;
  mutable tstate : int;      (* target-private scratch (e.g. SPARC leaf) *)
  peep : Peepwin.t;          (* peephole window metadata (Vcode.Make_peephole);
                                fixed-size, allocated once here so wrapped and
                                unwrapped ports share one Gen.t shape *)
}

let empty_table : int array = [||]

(* Grow a packed table so at least [needed] more slots fit after the
   [used] occupied ones.  Out of line: the amortized-cold path. *)
let grow_table a used needed =
  let cap = max 24 (max (2 * Array.length a) (used + needed)) in
  let b = Array.make cap 0 in
  Array.blit a 0 b 0 used;
  b

(* Emit-site provenance is opt-in per process (the profiling/trace
   tools flip it before generating their workloads) so the default
   codegen fast path keeps [count_insn] at two int stores and a
   predicted-untaken branch.  A per-[create] flag rather than a
   mutable field: the recorded table is only meaningful when every
   site of the function was recorded. *)
let provenance_default = ref false
let set_provenance_default b = provenance_default := b

let create ?(base = 0) ?provenance ?capacity ?buf (desc : Machdesc.t) =
  (* [buf] lets a compile queue hand in a recycled slab buffer (reset
     here, so callers can't accidentally append to a previous tenant);
     the [capacity] hint only applies to a freshly allocated buffer *)
  let buf =
    match buf with
    | Some b ->
      Codebuf.reset b;
      b
    | None -> Codebuf.create ?capacity ()
  in
  {
    desc;
    buf;
    base;
    labels = Array.make 16 (-1);
    nlabels = 0;
    relocs = empty_table;
    nrelocs = 0;
    resolved_relocs = 0;
    leaf = false;
    in_function = false;
    finished = false;
    locals_bytes = 0;
    used_callee = 0;
    used_fcallee = 0;
    made_call = false;
    max_call_args = 0;
    prologue_at = 0;
    prologue_words = 0;
    entry_index = 0;
    epilogue_lab = -1;
    ret_type = Vtype.V;
    fimms = empty_table;
    nfimms = 0;
    arg_loads = empty_table;
    narg_loads = 0;
    call_args = empty_table;
    ncall_args = 0;
    int_in_use = 0;
    flt_in_use = 0;
    overrides = Array.make desc.Machdesc.nregs Odefault;
    foverrides = Array.make desc.Machdesc.nfregs Odefault;
    eff_callee_mask = desc.Machdesc.callee_mask;
    eff_fcallee_mask = desc.Machdesc.fcallee_mask;
    insn_count = 0;
    op_counts = Array.make Opk.slots 0;
    prov_on = (match provenance with Some b -> b | None -> !provenance_default);
    prov = empty_table;
    nprov = 0;
    tstate = 0;
    peep = Peepwin.create ();
  }

let[@inline] check_open g =
  if g.finished then Verror.fail Verror.Already_finished

(* ------------------------------------------------------------------ *)
(* Labels and relocations                                              *)

let genlabel g =
  let l = g.nlabels in
  if l = Array.length g.labels then begin
    let a = Array.make (2 * l) (-1) in
    Array.blit g.labels 0 a 0 l;
    g.labels <- a
  end;
  g.labels.(l) <- -1;
  g.nlabels <- l + 1;
  l

let bind_label g l =
  check_open g;
  if l < 0 || l >= g.nlabels then Verror.failf "bind_label: bad label %d" l;
  g.labels.(l) <- Codebuf.length g.buf

let label_defined g l = l >= 0 && l < g.nlabels && g.labels.(l) >= 0

let[@inline] add_reloc g ~site ~lab ~kind =
  let i = 3 * g.nrelocs in
  if i + 3 > Array.length g.relocs then g.relocs <- grow_table g.relocs i 3;
  let a = g.relocs in
  Array.unsafe_set a i site;
  Array.unsafe_set a (i + 1) lab;
  Array.unsafe_set a (i + 2) kind;
  g.nrelocs <- g.nrelocs + 1

(* Drop the most recently recorded relocation.  Used by ports that
   truncate the buffer and re-emit a span (e.g. SPARC rewriting its
   epilogue branch). *)
let pop_reloc g =
  if g.nrelocs = 0 then Verror.failf "pop_reloc: no pending relocations";
  g.nrelocs <- g.nrelocs - 1

let reloc_count g = g.nrelocs
let total_relocs g = max g.nrelocs g.resolved_relocs

(* Resolve every recorded relocation through the target's patcher. *)
let resolve_relocs g ~(apply : kind:int -> site:int -> dest:int -> unit) =
  let a = g.relocs in
  for r = 0 to g.nrelocs - 1 do
    let site = a.(3 * r) and lab = a.((3 * r) + 1) and kind = a.((3 * r) + 2) in
    let dest = g.labels.(lab) in
    if dest < 0 then Verror.fail (Verror.Unresolved_label lab);
    apply ~kind ~site ~dest
  done;
  g.resolved_relocs <- g.resolved_relocs + g.nrelocs;
  g.nrelocs <- 0

(* ------------------------------------------------------------------ *)
(* Register allocation (paper section 3: priority-ordered pools; the
   allocator returns [None] on exhaustion and clients fall back to the
   stack).                                                             *)

let file_in_use g (r : Reg.t) =
  match r with
  | Reg.R n -> g.int_in_use land (1 lsl n) <> 0
  | Reg.F n -> g.flt_in_use land (1 lsl n) <> 0

let mark_in_use g (r : Reg.t) =
  match r with
  | Reg.R n -> g.int_in_use <- g.int_in_use lor (1 lsl n)
  | Reg.F n -> g.flt_in_use <- g.flt_in_use lor (1 lsl n)

let mark_free g (r : Reg.t) =
  match r with
  | Reg.R n -> g.int_in_use <- g.int_in_use land lnot (1 lsl n)
  | Reg.F n -> g.flt_in_use <- g.flt_in_use land lnot (1 lsl n)

let override_of g (r : Reg.t) =
  match r with Reg.R n -> g.overrides.(n) | Reg.F n -> g.foverrides.(n)

(* Fold the target's callee mask with the per-register overrides into
   one bitmask so [note_write] is a branch-free mask-and-or. *)
let recompute_eff_masks g =
  let d = g.desc in
  let fold base overrides =
    let m = ref base in
    Array.iteri
      (fun n c ->
        match c with
        | Ocallee -> m := !m lor (1 lsl n)
        | Ocaller -> m := !m land lnot (1 lsl n)
        | Odefault | Ounavail -> ())
      overrides;
    !m
  in
  g.eff_callee_mask <- fold d.Machdesc.callee_mask g.overrides;
  g.eff_fcallee_mask <- fold d.Machdesc.fcallee_mask g.foverrides

let set_reg_class g (r : Reg.t) (c : cls_override) =
  (match r with
  | Reg.R n -> g.overrides.(n) <- c
  | Reg.F n -> g.foverrides.(n) <- c);
  recompute_eff_masks g

let pool_of g ~(cls : [ `Temp | `Var ]) ~(float : bool) =
  let d = g.desc in
  match (cls, float) with
  | `Temp, false -> d.Machdesc.temps
  | `Var, false -> d.Machdesc.vars
  | `Temp, true -> d.Machdesc.ftemps
  | `Var, true -> d.Machdesc.fvars

let getreg g ~cls ~float =
  check_open g;
  let pool = pool_of g ~cls ~float in
  let n = Array.length pool in
  let rec scan i =
    if i >= n then None
    else
      let r = pool.(i) in
      if file_in_use g r || override_of g r = Ounavail then scan (i + 1)
      else begin
        mark_in_use g r;
        Some r
      end
  in
  scan 0

let putreg g r = mark_free g r

(* ------------------------------------------------------------------ *)
(* Callee-saved bookkeeping                                            *)

(* Record that [r] was written; used at [finish] to decide which
   registers the patched prologue must save.  A register counts as
   callee-saved if the target says so, or if the client forced it with a
   class override (the interrupt-handler scenario of section 5.3). *)
let[@inline] note_write g (r : Reg.t) =
  (* branch-free: the effective masks already fold in the §5.3 class
     overrides (see [recompute_eff_masks]) *)
  match r with
  | Reg.R n -> g.used_callee <- g.used_callee lor (g.eff_callee_mask land (1 lsl n))
  | Reg.F n ->
    g.used_fcallee <- g.used_fcallee lor (g.eff_fcallee_mask land (1 lsl n))

(* One VCODE-level instruction emitted.  Ports call this at each public
   emitter entry; multi-instruction expansions (immediate fallbacks,
   call sequences) go through internal *_core helpers so each API-level
   instruction counts exactly once. *)
(* [k] is the instruction's {!Opk} slot; the per-opcode table is
   preallocated at [create], so both updates are plain int stores.  [k]
   comes from the fixed call sites in the ports (never user data), so
   the unsafe index is justified. *)
(* Provenance recording, out of line: every counting site runs before
   its emitter writes any word, so [Codebuf.length] here is the
   instruction's start index — spans are recovered by pairing each
   start with the next record's. *)
let[@inline never] prov_record g k =
  if 2 * g.nprov >= Array.length g.prov then g.prov <- grow_table g.prov (2 * g.nprov) 2;
  let o = 2 * g.nprov in
  g.prov.(o) <- Codebuf.length g.buf;
  g.prov.(o + 1) <- k;
  g.nprov <- g.nprov + 1

let[@inline] count_insn g k =
  g.insn_count <- g.insn_count + 1;
  Array.unsafe_set g.op_counts k (Array.unsafe_get g.op_counts k + 1);
  if g.prov_on then prov_record g k

(* Retire a previously counted instruction: the peephole stage calls
   this when it rewrites the buffer tail and an already-counted
   instruction (e.g. a dead set-immediate fused into an op-immediate)
   is removed.  The counters stay equal to what the final buffer
   actually contains. *)
let uncount_insn g k =
  g.insn_count <- g.insn_count - 1;
  Array.unsafe_set g.op_counts k (Array.unsafe_get g.op_counts k - 1)

let op_count g k =
  if k < 0 || k >= Opk.slots then Verror.failf "op_count: bad opcode slot %d" k;
  g.op_counts.(k)

(* ------------------------------------------------------------------ *)
(* Peephole fixups: keep the provenance table and the pending
   relocation sites consistent when the window stage rewrites the
   buffer tail.  All three are bounded by the window size (a handful
   of table entries at the very end), so they cost O(window) — the
   space and time bounds of generation are untouched.                  *)

(* Drop provenance records whose start index is >= [start] — the spans
   covering a retired tail about to be truncated or re-emitted. *)
let prov_drop_from g ~start =
  if g.prov_on then begin
    let i = ref g.nprov in
    while !i > 0 && g.prov.((2 * (!i - 1))) >= start do decr i done;
    g.nprov <- !i
  end

(* Re-record a span with an explicit start index (the peephole stage
   knows where the rewritten instruction landed, which is not the
   current buffer end). *)
let prov_append g ~start ~slot =
  if g.prov_on then begin
    if 2 * g.nprov >= Array.length g.prov then
      g.prov <- grow_table g.prov (2 * g.nprov) 2;
    let o = 2 * g.nprov in
    g.prov.(o) <- start;
    g.prov.(o + 1) <- slot;
    g.nprov <- g.nprov + 1
  end

(* Shift every pending relocation site at or beyond [from] by [by]
   words: when the peephole stage removes a word (a filled delay-slot
   nop), patch sites recorded downstream of the removal move with the
   code.  Labels need no fixup — they bind to buffer indices when the
   client binds them, which is always after any rewrite of the words
   they follow (the window flushes at every bind). *)
let shift_reloc_sites g ~from ~by =
  let a = g.relocs in
  for r = 0 to g.nrelocs - 1 do
    let i = 3 * r in
    if a.(i) >= from then a.(i) <- a.(i) + by
  done

(* Visit each bound relocation's (site, destination) pair — meaningful
   after [resolve_relocs] has run (v_end), when every label is bound.
   Unbound labels are skipped so the iterator is safe mid-generation. *)
let iter_reloc_spans g f =
  let a = g.relocs in
  for r = 0 to max g.nrelocs g.resolved_relocs - 1 do
    let site = a.(3 * r) and lab = a.((3 * r) + 1) in
    let dest = g.labels.(lab) in
    if dest >= 0 then f ~site ~dest
  done

let count_bits m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* ------------------------------------------------------------------ *)
(* Locals                                                              *)

(* Allocate [bytes] of stack space with [align]; returns a byte offset
   interpreted by the target relative to its frame layout.  Per section
   5.2, locals sit above a fixed maximal register-save area so their
   offsets are known immediately. *)
let alloc_local g ~bytes ~align =
  check_open g;
  let a = max 1 align in
  let off = (g.locals_bytes + a - 1) / a * a in
  g.locals_bytes <- off + bytes;
  off

(* ------------------------------------------------------------------ *)
(* Pending floating-point immediates, incoming-argument reloads and
   outgoing call arguments (packed tables)                             *)

(* Record an FP constant load at [site]; the constant itself is placed
   after the code by [place_fimms]. *)
let add_fimm g ~site ~(bits : int64) ~dbl =
  let i = 4 * g.nfimms in
  if i + 4 > Array.length g.fimms then g.fimms <- grow_table g.fimms i 4;
  let a = g.fimms in
  Array.unsafe_set a i site;
  Array.unsafe_set a (i + 1) (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  Array.unsafe_set a (i + 2)
    (Int64.to_int (Int64.logand (Int64.shift_right_logical bits 32) 0xFFFFFFFFL));
  Array.unsafe_set a (i + 3) (if dbl then 1 else 0);
  g.nfimms <- g.nfimms + 1

let fimm_count g = g.nfimms

(* Record a stack-passed incoming argument whose reload into [r] must be
   emitted in the patched prologue. *)
let add_arg_load g ~slot (r : Reg.t) (ty : Vtype.t) =
  let i = 3 * g.narg_loads in
  if i + 3 > Array.length g.arg_loads then g.arg_loads <- grow_table g.arg_loads i 3;
  let a = g.arg_loads in
  Array.unsafe_set a i slot;
  Array.unsafe_set a (i + 1) (Reg.to_int r);
  Array.unsafe_set a (i + 2) (Vtype.to_int ty);
  g.narg_loads <- g.narg_loads + 1

(* Visit the recorded argument reloads in the order they were added. *)
let iter_arg_loads g f =
  for j = 0 to g.narg_loads - 1 do
    let i = 3 * j in
    f ~slot:g.arg_loads.(i) (Reg.of_int g.arg_loads.(i + 1))
      (Vtype.of_int g.arg_loads.(i + 2))
  done

let[@inline] push_call_arg g (ty : Vtype.t) (r : Reg.t) =
  let i = 2 * g.ncall_args in
  if i + 2 > Array.length g.call_args then g.call_args <- grow_table g.call_args i 2;
  let a = g.call_args in
  Array.unsafe_set a i (Vtype.to_int ty);
  Array.unsafe_set a (i + 1) (Reg.to_int r);
  g.ncall_args <- g.ncall_args + 1

let call_arg_count g = g.ncall_args
let call_arg_ty g i = Vtype.of_int g.call_args.(2 * i)
let call_arg_reg g i = Reg.of_int g.call_args.((2 * i) + 1)
let clear_call_args g = g.ncall_args <- 0

(* ------------------------------------------------------------------ *)
(* Shared finalization helpers used by the target ports                *)

(* Place the pending floating-point immediates after the code (paper
   section 5.2: constants live at the end of the function's instruction
   stream so they are reclaimed with it), honoring [big_endian] word
   order, and call [patch] with each load site and its constant's
   address. *)
let place_fimms g ~big_endian ~(patch : site:int -> addr:int -> unit) =
  if g.nfimms > 0 then begin
    if (g.base + (4 * Codebuf.length g.buf)) land 7 <> 0 then
      ignore (Codebuf.emit g.buf 0);
    for j = 0 to g.nfimms - 1 do
      let i = 4 * j in
      let site = g.fimms.(i) in
      let lo32 = g.fimms.(i + 1) and hi32 = g.fimms.(i + 2) in
      let dbl = g.fimms.(i + 3) <> 0 in
      let daddr = g.base + (4 * Codebuf.length g.buf) in
      if dbl then
        if big_endian then begin
          ignore (Codebuf.emit g.buf hi32);
          ignore (Codebuf.emit g.buf lo32)
        end
        else begin
          ignore (Codebuf.emit g.buf lo32);
          ignore (Codebuf.emit g.buf hi32)
        end
      else begin
        ignore (Codebuf.emit g.buf lo32);
        ignore (Codebuf.emit g.buf 0)
      end;
      patch ~site ~addr:daddr
    done;
    g.nfimms <- 0
  end

(* Resolve a set of parallel register moves (integer file), breaking
   cycles through [scratch].  Needed by ports whose temp pools overlap
   the argument registers (SPARC, PowerPC), where do_call's argument
   shuffle is a genuine parallel-move problem. *)
let parallel_moves ~(emit_mov : int -> int -> unit) ~scratch (moves : (int * int) list) =
  let pending = ref (List.filter (fun (d, s) -> d <> s) moves) in
  while !pending <> [] do
    let blocked (d, _) = List.exists (fun (_, s) -> s = d) !pending in
    match List.partition (fun mv -> not (blocked mv)) !pending with
    | ready, rest when ready <> [] ->
      List.iter (fun (d, s) -> emit_mov d s) ready;
      pending := rest
    | _, (d, s) :: rest ->
      emit_mov scratch d;
      pending :=
        (d, s) :: List.map (fun (d', s') -> if s' = d then (d', scratch) else (d', s')) rest
    | _, [] -> ()
  done

(* The canonical register-save-area layout used by ports with explicit
   callee saving (MIPS, Alpha, PowerPC): integer registers first (at
   [int_bytes] strides from [first_off]), then doubles at the next
   8-aligned offset.  Covers client-forced callee-saved registers, not
   just the architectural set.  Fails when the area would overflow
   [limit]. *)
let save_layout g ~first_off ~int_bytes ~limit =
  let slots = ref [] in
  let off = ref first_off in
  for n = 0 to 31 do
    if g.used_callee land (1 lsl n) <> 0 then begin
      slots := `Int (n, !off) :: !slots;
      off := !off + int_bytes
    end
  done;
  off := (!off + 7) land lnot 7;
  for n = 0 to 31 do
    if g.used_fcallee land (1 lsl n) <> 0 then begin
      slots := `Fp (n, !off) :: !slots;
      off := !off + 8
    end
  done;
  if !off > limit then Verror.fail (Verror.Unsupported "register save area overflow");
  List.rev !slots

(* ------------------------------------------------------------------ *)
(* Space accounting for the in-place-generation experiment             *)

let table_words a = if Array.length a = 0 then 0 else Array.length a + 1

let live_words g =
  Codebuf.heap_words g.buf
  + Array.length g.labels + 3
  + table_words g.relocs + table_words g.fimms
  + table_words g.arg_loads + table_words g.call_args
  + table_words g.prov

let code_addr g idx = g.base + (4 * idx)
let here g = Codebuf.length g.buf

(* ------------------------------------------------------------------ *)
(* Emit-site provenance (cold readers)                                 *)

let provenance_on g = g.prov_on

(* The closing sentinel: everything emitted after it (the epilogue and
   the FP-immediate pool placed by the target's [finish]) belongs to no
   client emitter.  Called by Vcode's [end_gen] just before the target
   finalizer runs; idempotent. *)
let prov_sentinel = -1

let close_provenance g =
  if
    g.prov_on
    && (g.nprov = 0 || g.prov.((2 * g.nprov) - 1) <> prov_sentinel)
  then prov_record g prov_sentinel

let prov_count g = g.nprov

(* Visit the recorded spans in emission order: [slot] is the {!Opk}
   slot ([-1] for the closing epilogue/data sentinel), [first]/[last]
   the covered word-index range (last exclusive; the next record's
   start, or the buffer end for the final one).  Words below the first
   span are the reserved prologue area. *)
let iter_prov_spans g f =
  for i = 0 to g.nprov - 1 do
    let first = g.prov.(2 * i) and slot = g.prov.((2 * i) + 1) in
    let last = if i + 1 < g.nprov then g.prov.(2 * (i + 1)) else Codebuf.length g.buf in
    f ~ordinal:i ~slot ~first ~last
  done

(* The span covering word index [idx] — binary search over the sorted
   start column.  [None] for indices before the first span (the
   prologue) or with no provenance recorded. *)
let prov_find g idx =
  if g.nprov = 0 || idx < g.prov.(0) then None
  else begin
    let lo = ref 0 and hi = ref (g.nprov - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if g.prov.(2 * mid) <= idx then lo := mid else hi := mid - 1
    done;
    let i = !lo in
    Some (i, g.prov.((2 * i) + 1), g.prov.(2 * i))
  end

(* The label whose binding most closely precedes word index [idx]
   (ties go to the first label bound there), with the word offset from
   it — "which branch target does this instruction belong to". *)
let enclosing_label g idx =
  let best = ref (-1) and best_at = ref (-1) in
  for l = 0 to g.nlabels - 1 do
    let at = g.labels.(l) in
    if at >= 0 && at <= idx && at > !best_at then begin
      best := l;
      best_at := at
    end
  done;
  if !best < 0 then None else Some (!best, idx - !best_at)

(* Symbolize the instruction covering word index [idx]:
   "addii#12@L3+2" = the 12th emitted VCODE op, an addii, two words
   past the binding of label 3.  Reserved areas name themselves. *)
let prov_symbol g idx =
  if idx < 0 || idx >= Codebuf.length g.buf then None
  else
    match prov_find g idx with
    | None -> if g.nprov > 0 then Some "prologue" else None
    | Some (ordinal, slot, _first) ->
      if slot = prov_sentinel then Some "epilogue"
      else begin
        let base = Printf.sprintf "%s#%d" (Opk.name slot) ordinal in
        match enclosing_label g idx with
        | None -> Some base
        | Some (l, off) ->
          Some
            (if off = 0 then Printf.sprintf "%s@L%d" base l
             else Printf.sprintf "%s@L%d+%d" base l off)
      end
