(* Physical registers.

   VCODE registers are physical machine registers handed to the client by
   the register allocator (or named directly via the hard-coded T0/S0
   scheme of section 5.3).  A register is an index into either the integer
   or the floating-point register file of the target. *)

type t =
  | R of int  (** integer register file *)
  | F of int  (** floating-point register file *)

let[@inline] idx = function R n -> n | F n -> n
let[@inline] is_float = function F _ -> true | R _ -> false

(* A register packed into one non-negative int (low bit: register file).
   Used by Gen's int-packed side tables so recording a register during
   emission allocates nothing. *)
let[@inline] to_int = function R n -> n lsl 1 | F n -> (n lsl 1) lor 1
let[@inline] of_int i = if i land 1 = 0 then R (i lsr 1) else F (i lsr 1)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b

let to_string = function
  | R n -> Printf.sprintf "r%d" n
  | F n -> Printf.sprintf "f%d" n

let pp fmt r = Fmt.string fmt (to_string r)

(* Sanity helpers used by the core API wrappers. *)
let expect_int ctx r =
  match r with
  | R n -> n
  | F _ -> Verror.fail (Verror.Bad_operand (ctx ^ ": expected integer register"))

let expect_float ctx r =
  match r with
  | F n -> n
  | R _ -> Verror.fail (Verror.Bad_operand (ctx ^ ": expected float register"))

(* The register class expected for operands of a given vtype. *)
let[@inline] matches_type (t : Vtype.t) (r : t) =
  if Vtype.is_float t then is_float r else not (is_float r)
