(* VCODE operand types (paper Table 1).

   Each VCODE instruction is a base operation composed with one of these
   types; the names mirror the ANSI C types they map to.  As in the paper,
   the sub-word types [C]/[UC]/[S]/[US] only appear in memory operations:
   register-to-register arithmetic is performed at word width. *)

type t =
  | V   (** void — only valid as a return type *)
  | C   (** signed char, 1 byte *)
  | UC  (** unsigned char, 1 byte *)
  | S   (** signed short, 2 bytes *)
  | US  (** unsigned short, 2 bytes *)
  | I   (** int, 4 bytes *)
  | U   (** unsigned int, 4 bytes *)
  | L   (** long, word sized *)
  | UL  (** unsigned long, word sized *)
  | P   (** pointer, word sized *)
  | F   (** float, 4 bytes *)
  | D   (** double, 8 bytes *)

let all = [ V; C; UC; S; US; I; U; L; UL; P; F; D ]

(* Table 1 ordinal, for packing a type into Gen's int side tables. *)
let to_int = function
  | V -> 0 | C -> 1 | UC -> 2 | S -> 3 | US -> 4 | I -> 5
  | U -> 6 | L -> 7 | UL -> 8 | P -> 9 | F -> 10 | D -> 11

let of_int = function
  | 0 -> V | 1 -> C | 2 -> UC | 3 -> S | 4 -> US | 5 -> I
  | 6 -> U | 7 -> L | 8 -> UL | 9 -> P | 10 -> F | 11 -> D
  | n -> Verror.fail (Verror.Bad_type (Printf.sprintf "Vtype.of_int: %d" n))

let to_string = function
  | V -> "v" | C -> "c" | UC -> "uc" | S -> "s" | US -> "us"
  | I -> "i" | U -> "u" | L -> "l" | UL -> "ul" | P -> "p"
  | F -> "f" | D -> "d"

let c_equivalent = function
  | V -> "void" | C -> "signed char" | UC -> "unsigned char"
  | S -> "signed short" | US -> "unsigned short"
  | I -> "int" | U -> "unsigned" | L -> "long" | UL -> "unsigned long"
  | P -> "void *" | F -> "float" | D -> "double"

let pp fmt t = Fmt.string fmt (to_string t)

let[@inline] is_float = function F | D -> true | _ -> false

let is_signed = function
  | C | S | I | L | F | D -> true
  | UC | US | U | UL | P | V -> false

(* Size in bytes given the machine word size in bytes (4 or 8). *)
let size ~word_bytes = function
  | V -> 0
  | C | UC -> 1
  | S | US -> 2
  | I | U | F -> 4
  | D -> 8
  | L | UL | P -> word_bytes

(* Natural alignment equals size on every target we support. *)
let align ~word_bytes t = match t with V -> 1 | t -> size ~word_bytes t

(* Types legal as register-to-register ALU operands (Table 2 footnote:
   sub-word types are memory-only). *)
let word_class = function
  | I | U | L | UL | P -> true
  | F | D -> false
  | V | C | UC | S | US -> false

(* Parse a [v_lambda] parameter type string such as "%i%p%d" or "%ul%uc".
   The leading '%' of each item is required, exactly as in the paper's
   examples.  Raises [Verror.Error] on malformed strings. *)
let parse_signature (s : string) : t list =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else if s.[i] <> '%' then
      Verror.fail (Verror.Bad_type (Printf.sprintf "type string %S: expected '%%' at %d" s i))
    else
      let two c1 c2 = i + 2 < n && s.[i + 1] = c1 && s.[i + 2] = c2 in
      if two 'u' 'c' then go (i + 3) (UC :: acc)
      else if two 'u' 's' then go (i + 3) (US :: acc)
      else if two 'u' 'l' then go (i + 3) (UL :: acc)
      else if i + 1 < n then
        let t =
          match s.[i + 1] with
          | 'v' -> V | 'c' -> C | 's' -> S | 'i' -> I | 'u' -> U
          | 'l' -> L | 'p' -> P | 'f' -> F | 'd' -> D
          | ch ->
            Verror.fail
              (Verror.Bad_type (Printf.sprintf "type string %S: unknown type '%c'" s ch))
        in
        go (i + 2) (t :: acc)
      else Verror.fail (Verror.Bad_type (Printf.sprintf "type string %S: dangling '%%'" s))
  in
  go 0 []

let equal (a : t) (b : t) = a = b
