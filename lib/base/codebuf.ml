(* The code buffer: a growable array of 32-bit instruction words.

   This is the "in-place" part of VCODE: every emit call appends one
   encoded machine instruction directly; there is no per-instruction
   structure anywhere else in the system.  All three supported targets
   (MIPS-I, SPARC-V8, Alpha) have fixed 32-bit instruction words, so the
   buffer is word-oriented.  Words are stored as OCaml ints in
   [0, 2^32).

   [emit] is the hottest function in the generator: every backend
   encoder funnels through it once per machine instruction.  It is kept
   to a straight-line store — one capacity test, an unsafe write (the
   capacity test just established the index is in range), a length
   bump — and marked [@inline] so the optimizer can flatten it into the
   backend emit helpers. *)

type t = {
  mutable words : int array;
  mutable len : int;
  mutable growths : int;  (* doubling copies taken; a capacity-hint gauge *)
}

let create ?(capacity = 256) () =
  { words = Array.make (max 16 capacity) 0; len = 0; growths = 0 }

let length t = t.len
let growths t = t.growths

(* Forget the contents but keep the backing array: the word array is
   not shrunk or zeroed (every slot below [len] is overwritten before
   it can be read again, because [emit]/[reserve] are the only ways to
   extend [len]).  [growths] restarts from 0 so the capacity-hint gauge
   reflects the buffer's current tenant, not its whole history — the
   server's slab arena resets a scratch buffer once per compiled
   filter, and a batch that never grows should report 0. *)
let reset t =
  t.len <- 0;
  t.growths <- 0

let grow t =
  let w = Array.make (2 * Array.length t.words) 0 in
  Array.blit t.words 0 w 0 t.len;
  t.words <- w;
  t.growths <- t.growths + 1

(* Append one instruction word; returns its index. *)
let[@inline] emit t w =
  let i = t.len in
  if i = Array.length t.words then grow t;
  Array.unsafe_set t.words i (w land 0xFFFFFFFF);
  t.len <- i + 1;
  i

(* Reserve [n] words (filled with [fill], typically a nop encoding) and
   return the index of the first.  Used for prologue reservation. *)
let reserve t ~n ~fill =
  let first = t.len in
  for _ = 1 to n do ignore (emit t fill) done;
  first

let get t i =
  if i < 0 || i >= t.len then
    Verror.fail (Verror.Bad_operand (Printf.sprintf "Codebuf.get: index %d outside [0,%d)" i t.len));
  Array.unsafe_get t.words i

(* Backpatch a previously emitted word. *)
let set t i w =
  if i < 0 || i >= t.len then
    Verror.fail (Verror.Bad_operand (Printf.sprintf "Codebuf.set: index %d outside [0,%d)" i t.len));
  Array.unsafe_set t.words i (w land 0xFFFFFFFF)

(* Drop words emitted after index [len]; used by the delay-slot scheduler
   to lift an instruction into a branch's slot. *)
let truncate t len =
  if len < 0 || len > t.len then
    Verror.fail (Verror.Bad_operand (Printf.sprintf "Codebuf.truncate: length %d outside [0,%d]" len t.len));
  t.len <- len

let to_array t = Array.sub t.words 0 t.len

(* Serialize into bytes with the target's endianness, e.g. for loading
   into simulated memory.  [dst] must have at least [4 * length t] bytes
   available at [pos]. *)
let blit_to_bytes t ~big_endian dst pos =
  for i = 0 to t.len - 1 do
    let w = t.words.(i) in
    let b0 = w land 0xff and b1 = (w lsr 8) land 0xff in
    let b2 = (w lsr 16) land 0xff and b3 = (w lsr 24) land 0xff in
    let o = pos + (4 * i) in
    if big_endian then begin
      Bytes.unsafe_set dst o (Char.unsafe_chr b3);
      Bytes.unsafe_set dst (o + 1) (Char.unsafe_chr b2);
      Bytes.unsafe_set dst (o + 2) (Char.unsafe_chr b1);
      Bytes.unsafe_set dst (o + 3) (Char.unsafe_chr b0)
    end else begin
      Bytes.unsafe_set dst o (Char.unsafe_chr b0);
      Bytes.unsafe_set dst (o + 1) (Char.unsafe_chr b1);
      Bytes.unsafe_set dst (o + 2) (Char.unsafe_chr b2);
      Bytes.unsafe_set dst (o + 3) (Char.unsafe_chr b3)
    end
  done

(* Approximate live heap words consumed by the buffer itself; used by the
   space experiment (section 5 of the paper: in-place generation needs
   only the emitted code plus labels/relocations). *)
let heap_words t = Array.length t.words + 3
