(** Physical registers.

    VCODE registers are physical machine registers handed to the client
    by the register allocator, or named directly via the hard-coded
    T0/S0 scheme of section 5.3.  A register is an index into either
    the integer or the floating-point file of the target. *)

type t =
  | R of int  (** integer register file *)
  | F of int  (** floating-point register file *)

val idx : t -> int
val is_float : t -> bool

(** pack a register into one non-negative int (low bit selects the
    file); [of_int] inverts [to_int].  Used by [Gen]'s int-packed side
    tables so recording a register during emission allocates nothing. *)
val to_int : t -> int

val of_int : int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** @raise Verror.Error when the register is not in the integer file *)
val expect_int : string -> t -> int

(** @raise Verror.Error when the register is not in the float file *)
val expect_float : string -> t -> int

(** does the register's file match the vtype's class? *)
val matches_type : Vtype.t -> t -> bool
