(* Opcode-kind slots for per-opcode emission statistics.

   Every public VCODE emitter maps to one slot in a small dense index
   space, so {!Gen} can keep per-opcode emission counts in a single
   preallocated [int array] — one unsafe increment per emitted
   instruction, zero GC words, no hashing.  The space is the Table 2
   instruction vocabulary at the granularity clients see: binops split
   register/immediate, branches split by condition, memory collapsed to
   ld/st (the immediate- and register-offset forms emit the same VCODE
   instruction).

   The slot assignment is a stable ABI within one build only; reporting
   always goes through [name]. *)

let n_binops = 10
let n_unops = 4
let n_conds = 6

let binop_index : Op.binop -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Mod -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Lsh -> 8 | Rsh -> 9

let unop_index : Op.unop -> int = function
  | Com -> 0 | Not -> 1 | Mov -> 2 | Neg -> 3

let cond_index : Op.cond -> int = function
  | Lt -> 0 | Le -> 1 | Gt -> 2 | Ge -> 3 | Eq -> 4 | Ne -> 5

(* Fixed slot layout.  Keep [slots] in sync when adding families. *)
let arith_base = 0
let arith_imm_base = arith_base + n_binops
let unary_base = arith_imm_base + n_binops
let set = unary_base + n_unops
let setf = set + 1
let cvt = setf + 1
let ld = cvt + 1
let st = ld + 1
let jmp = st + 1
let jal = jmp + 1
let branch_base = jal + 1
let branch_imm_base = branch_base + n_conds
let ret = branch_imm_base + n_conds
let nop = ret + 1
let call = nop + 1
let retval = call + 1
let ext = retval + 1
let slots = ext + 1

let[@inline] arith op = arith_base + binop_index op
let[@inline] arith_imm op = arith_imm_base + binop_index op
let[@inline] unary op = unary_base + unop_index op
let[@inline] branch c = branch_base + cond_index c
let[@inline] branch_imm c = branch_imm_base + cond_index c

let binop_of_index i =
  List.nth Op.all_binops i

let unop_of_index i = List.nth Op.all_unops i
let cond_of_index i = List.nth Op.all_conds i

let name k =
  if k < arith_imm_base then Op.binop_to_string (binop_of_index (k - arith_base))
  else if k < unary_base then Op.binop_to_string (binop_of_index (k - arith_imm_base)) ^ "i"
  else if k < set then Op.unop_to_string (unop_of_index (k - unary_base))
  else if k = set then "set"
  else if k = setf then "setf"
  else if k = cvt then "cvt"
  else if k = ld then "ld"
  else if k = st then "st"
  else if k = jmp then "jmp"
  else if k = jal then "jal"
  else if k < branch_imm_base then Op.cond_to_string (cond_of_index (k - branch_base))
  else if k < ret then Op.cond_to_string (cond_of_index (k - branch_imm_base)) ^ "i"
  else if k = ret then "ret"
  else if k = nop then "nop"
  else if k = call then "call"
  else if k = retval then "retval"
  else if k = ext then "ext"
  else invalid_arg (Printf.sprintf "Opk.name: bad slot %d" k)
