(* Sliding peephole window: per-generator metadata about the tail of
   the code buffer.

   The window never buffers instruction words — every emitter writes
   straight into the Codebuf exactly as before — it only *remembers* the
   most recent emitted VCODE instruction (buffer span, def/use
   registers, immediate) so a peephole stage ({!Vcode.Make_peephole})
   can rewrite the buffer tail in place: retire a dead set-immediate,
   lift an independent instruction into a branch delay slot, skip a
   redundant move before it is ever encoded.  Because a "flush" is just
   forgetting metadata (no word moves, no allocation), the paper's
   O(labels + jumps) space bound is untouched: the window is four
   mutable int fields allocated once per {!Gen.t}.

   Depth is one record: every rewrite the stage performs (fusion into
   the previous set, lifting the previous instruction into a delay
   slot) only ever consults the most recent instruction, so a deeper
   window would be pure bookkeeping overhead on the emit fast path.
   For the same reason the record is stored packed — recording runs on
   every wrapped emission, consuming runs only when a rewrite is about
   to fire, so the unpack cost sits on the rare path.

   The window is advisory: any code that appends to or truncates the
   buffer without telling the window (extension instructions, the
   delay-slot scheduler's surgery) merely desynchronizes it, and the
   stage detects that — the record's span no longer ends at the buffer
   length — and drops the metadata rather than miscompiling.  (Length
   alone suffices: in-place patching without a length change only
   happens in [apply_reloc], which the stage only reaches at label
   binds and [finish], and both reset the window first.) *)

(* Record kinds.  Only instruction shapes the peephole stage can reason
   about are pushed; everything else flushes the window. *)
let k_arith = 0      (* reg-reg binop, single word *)
let k_arith_imm = 1  (* reg-imm binop, single word *)
let k_mov = 2        (* register move *)
let k_unary = 3      (* com/neg/not *)
let k_set = 4        (* set-immediate (any width; value round-trips int) *)
let k_store = 5      (* single-word store: no def, two uses *)

type t = {
  (* [(kind + 1) lsl 16 lor opk]; 0 = no record.  The +1 keeps a
     k_arith record (kind 0, opk possibly 0) distinct from "empty". *)
  mutable ko : int;
  mutable start : int;  (* buffer word index of the record's first word *)
  mutable end_ : int;   (* buffer length just after the record *)
  (* [(def+1) lor (u1+1) lsl 10 lor (u2+1) lsl 20], packed Reg.to_int
     values (machine registers only — the stage sits below Make_gen's
     virtual-register mapping), -1 = none. *)
  mutable regs : int;
  mutable imm : int;    (* k_set / k_arith_imm payload *)
  (* One copy fact: registers [eq_a] and [eq_b] hold the same value
     (established by a retired mov, killed when either is redefined or
     at any control join).  -1 = no fact. *)
  mutable eq_a : int;
  mutable eq_b : int;
  (* Rewrite statistics, surfaced through bench/vprof/Telemetry. *)
  mutable moves_killed : int;
  mutable fusions : int;
  mutable slot_fills : int;
  mutable strength : int;
}

let create () =
  {
    ko = 0;
    start = 0;
    end_ = 0;
    regs = 0;
    imm = 0;
    eq_a = -1;
    eq_b = -1;
    moves_killed = 0;
    fusions = 0;
    slot_fills = 0;
    strength = 0;
  }

(* Forget the window record but keep the copy fact: used at points
   where words become untouchable (a branch was emitted) but values are
   unchanged on the fall-through path. *)
let[@inline] flush w = w.ko <- 0

let[@inline] kill_fact w =
  w.eq_a <- -1;
  w.eq_b <- -1

(* Forget everything: label binds (join points), calls, desyncs. *)
let[@inline] reset w =
  w.ko <- 0;
  kill_fact w

(* [r] (packed) is about to be redefined: kill a copy fact involving it. *)
let[@inline] on_def w r = if r = w.eq_a || r = w.eq_b then kill_fact w

let[@inline] have_fact w a b =
  (w.eq_a = a && w.eq_b = b) || (w.eq_a = b && w.eq_b = a)

let[@inline] set_fact w a b =
  w.eq_a <- a;
  w.eq_b <- b

(* Record accessors (consume path). *)
let[@inline] have w = w.ko <> 0
let[@inline] kind w = (w.ko lsr 16) - 1
let[@inline] opk w = w.ko land 0xffff
let[@inline] def w = (w.regs land 0x3ff) - 1
let[@inline] u1 w = ((w.regs lsr 10) land 0x3ff) - 1
let[@inline] u2 w = ((w.regs lsr 20) land 0x3ff) - 1

let[@inline] push w ~start ~end_ ~kind ~def ~u1 ~u2 ~opk =
  w.start <- start;
  w.end_ <- end_;
  w.regs <- (def + 1) lor ((u1 + 1) lsl 10) lor ((u2 + 1) lsl 20);
  w.ko <- ((kind + 1) lsl 16) lor opk

let[@inline] pop w = w.ko <- 0
