(** The code buffer: a growable array of 32-bit instruction words.

    This is the concrete object behind VCODE's in-place code
    generation: every emit call appends one encoded machine
    instruction; no other per-instruction state exists anywhere in the
    system.  All supported targets use fixed 32-bit instruction
    words. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int

(** number of capacity-doubling copies taken so far — 0 means the
    [create] capacity hint was sufficient *)
val growths : t -> int

(** [reset t] zeroes the length and the {!growths} baseline but keeps
    the backing capacity, so the buffer can be reused for the next
    function without reallocating.  Previously emitted words become
    unreachable ({!get}/{!set}/{!truncate} are checked against the new
    length).  This is what lets a compile queue recycle one slab
    buffer across thousands of small functions instead of allocating a
    heap buffer per function. *)
val reset : t -> unit

(** append one instruction word (interpreted modulo 2^32); returns the
    word's index for later backpatching.  The hot path of the whole
    generator: one capacity test and a straight-line store. *)
val emit : t -> int -> int

(** reserve [n] words filled with [fill] (typically the target's nop);
    returns the index of the first.  Used for the prologue area of
    section 5.2. *)
val reserve : t -> n:int -> fill:int -> int

(** @raise Verror.Error on an out-of-range index (like every other
    misuse condition in the library) *)
val get : t -> int -> int

(** backpatch a previously emitted word;
    @raise Verror.Error on an out-of-range index *)
val set : t -> int -> int -> unit

(** drop words emitted after index [len]; used by the delay-slot
    scheduler to lift an instruction into a branch's slot.
    @raise Verror.Error on an out-of-range length *)
val truncate : t -> int -> unit

val to_array : t -> int array

(** serialize into [dst] at [pos] with the target's endianness (e.g.
    for loading into simulated memory) *)
val blit_to_bytes : t -> big_endian:bool -> Bytes.t -> int -> unit

(** approximate live heap words consumed by the buffer, for the space
    experiment *)
val heap_words : t -> int
