(* The retargeting interface (paper section 3.3).

   A port of VCODE supplies one module of this signature.  Each emit hook
   appends encoded machine instructions for one VCODE core instruction
   directly to [g.buf] — in place, no intermediate representation.  The
   hooks may use [g.desc.scratch] (the reserved assembler temporary) to
   synthesize operations the hardware lacks, e.g. out-of-range immediates
   or Alpha byte stores.

   The paper reports that a complete mapping specification runs 40-100
   lines per machine; our equivalents are the mapping tables inside each
   [<target>_backend.ml]. *)

module type S = sig
  val desc : Machdesc.t

  (* --- function lifecycle ------------------------------------------- *)

  (* Begin a function: given parameter types, reserve the prologue area
     in the instruction stream (section 5.2), mark argument registers
     in-use, emit any stack-argument reloads, and return the registers
     that hold the incoming parameters. *)
  val lambda : Gen.t -> Vtype.t array -> Reg.t array

  (* Move the (optional) return value to the convention's return register
     and transfer control to the shared epilogue (or return inline when
     the target knows it is safe). *)
  val ret : Gen.t -> Vtype.t -> Reg.t option -> unit

  (* End a function: bind the epilogue, write the real prologue into the
     reserved area (saving exactly the callee-saved registers recorded in
     [g.used_callee]/[g.used_fcallee]), place pending floating-point
     immediates, resolve relocations, and set [g.entry_index]. *)
  val finish : Gen.t -> unit

  (* --- core instruction set ----------------------------------------- *)

  val arith : Gen.t -> Op.binop -> Vtype.t -> Reg.t -> Reg.t -> Reg.t -> unit
  val arith_imm : Gen.t -> Op.binop -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val unary : Gen.t -> Op.unop -> Vtype.t -> Reg.t -> Reg.t -> unit
  val set : Gen.t -> Vtype.t -> Reg.t -> int64 -> unit
  val setf : Gen.t -> Vtype.t -> Reg.t -> float -> unit
  val cvt : Gen.t -> from:Vtype.t -> to_:Vtype.t -> Reg.t -> Reg.t -> unit
  (* Loads and stores come in immediate-offset and register-offset forms
     (rather than one entry point taking a [Gen.offset]) so the dominant
     immediate case passes its offset as an unboxed int — no variant
     block is allocated per memory instruction.  [Vcode] provides the
     offset-dispatching convenience wrapper on top. *)
  val load_imm : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val load_reg : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> Reg.t -> unit
  val store_imm : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val store_reg : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> Reg.t -> unit
  val jump : Gen.t -> Gen.jtarget -> unit
  val jal : Gen.t -> Gen.jtarget -> unit
  val branch : Gen.t -> Op.cond -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val branch_imm : Gen.t -> Op.cond -> Vtype.t -> Reg.t -> int -> int -> unit
  val nop : Gen.t -> unit

  (* --- peephole interposition hooks ---------------------------------- *)

  (* Bind a label at the current buffer position.  Raw ports delegate to
     [Gen.bind_label]; a peephole stage flushes its window first so no
     later rewrite can move words a bound label already points at.
     [Vcode.Make_gen] routes every client label bind through here. *)
  val bind_label : Gen.t -> int -> unit

  (* Barrier: the caller is about to read or rewrite buffer words behind
     the target's back (e.g. the portable delay-slot scheduler's
     truncate-and-patch surgery).  Raw ports no-op; a peephole stage
     flushes its window. *)
  val sync : Gen.t -> unit

  (* Whether the port's [arith_imm] encodes [op] with immediate [imm] in
     its single-instruction fast path (no scratch-register constant
     synthesis).  Conservative "false" is always sound — the peephole
     stage uses this purely as a profitability test for fusing
     set-immediate + op into op-immediate. *)
  val binop_imm_fits : Op.binop -> int -> bool

  (* --- calls --------------------------------------------------------- *)

  (* Dynamically constructed calls: arguments are pushed one at a time
     (the paper's marshaling use case) and [do_call] places them per the
     convention and emits the call. *)
  val push_arg : Gen.t -> Vtype.t -> Reg.t -> unit
  val do_call : Gen.t -> Gen.jtarget -> unit

  (* Fetch the return value of the last call into [reg]. *)
  val retval : Gen.t -> Vtype.t -> Reg.t -> unit

  (* --- relocation and disassembly ------------------------------------ *)

  val apply_reloc : Gen.t -> kind:int -> site:int -> dest:int -> unit

  (* One-line disassembly of an instruction word at [addr]; used by the
     dump facility and the visa tool. *)
  val disasm : word:int -> addr:int -> string

  (* Extra raw machine instructions exported to the extension spec
     language (section 5.4), e.g. ("fsqrts", emitter). *)
  val extra_insns : (string * (Gen.t -> Reg.t array -> unit)) list

  (* Immediate-form machine instructions for the spec language's
     optional [mach-imm_insn] position. *)
  val extra_imm_insns : (string * (Gen.t -> Reg.t array -> int -> unit)) list
end
