(** VCODE operand types (paper Table 1).

    Every VCODE instruction is a base operation composed with one of
    these types, named after the ANSI C types they map to.  Sub-word
    types ([C], [UC], [S], [US]) appear only in memory operations;
    register arithmetic is performed at word width. *)

type t =
  | V   (** void — only valid as a return type *)
  | C   (** signed char, 1 byte *)
  | UC  (** unsigned char, 1 byte *)
  | S   (** signed short, 2 bytes *)
  | US  (** unsigned short, 2 bytes *)
  | I   (** int, 4 bytes *)
  | U   (** unsigned int, 4 bytes *)
  | L   (** long, word sized *)
  | UL  (** unsigned long, word sized *)
  | P   (** pointer, word sized *)
  | F   (** float, 4 bytes *)
  | D   (** double, 8 bytes *)

(** all twelve types, in Table 1 order *)
val all : t list

(** Table 1 ordinal, for packing a type into [Gen]'s int side tables;
    [of_int] inverts it.
    @raise Verror.Error when the int is not a valid ordinal *)
val to_int : t -> int

val of_int : int -> t

val to_string : t -> string

(** the C equivalent from Table 1, e.g. [P] is ["void *"] *)
val c_equivalent : t -> string

val pp : Format.formatter -> t -> unit
val is_float : t -> bool
val is_signed : t -> bool

(** size in bytes on a machine with [word_bytes]-byte words (4 or 8) *)
val size : word_bytes:int -> t -> int

(** natural alignment; equals [size] on all supported targets *)
val align : word_bytes:int -> t -> int

(** true for types legal as register-to-register ALU operands *)
val word_class : t -> bool

(** Parse a [v_lambda] parameter type string such as ["%i%p%d"] or
    ["%ul%uc"] (the paper's notation).
    @raise Verror.Error on malformed strings. *)
val parse_signature : string -> t list

val equal : t -> t -> bool
