(** Per-function dynamic code generation state.

    This record is everything VCODE keeps while generating a function.
    True to the paper, memory use during generation is proportional to
    the number of labels and unresolved jumps plus the emitted code
    itself — there is no per-instruction intermediate structure
    (contrast the DCG baseline in lib/dcg).

    The record is exposed because target ports (implementations of
    {!Target.S}) read and mutate its fields during emission and
    finalization; ordinary clients go through [Vcode.Make]. *)

(** a memory-operand offset: base + (immediate or register) *)
type offset = Oimm of int | Oreg of Reg.t

(** a jump target: label, register, or absolute address (Table 2) *)
type jtarget = Jlabel of int | Jreg of Reg.t | Jaddr of int

(** section 5.3: clients may dynamically reclassify any physical
    register for the duration of one generated function *)
type cls_override = Odefault | Ocallee | Ocaller | Ounavail

(** The four side tables (relocations, pending FP constants, incoming
    argument reloads, outgoing call arguments) are growable int-packed
    arrays rather than lists: recording an entry allocates zero GC words
    in the steady state.  Ports access them only through the accessors
    below ([add_reloc], [add_fimm], [add_arg_load], [push_call_arg],
    ...); the packing strides are private to [Gen]. *)
type t = {
  desc : Machdesc.t;
  buf : Codebuf.t;
  base : int;  (** simulated load address of buf word 0 *)
  mutable labels : int array;  (** label id -> code index, -1 if unbound *)
  mutable nlabels : int;
  mutable relocs : int array;  (** packed, stride 3: site, lab, kind *)
  mutable nrelocs : int;
  mutable resolved_relocs : int; (* relocs already consumed by resolve_relocs *)
  mutable leaf : bool;
  mutable in_function : bool;
  mutable finished : bool;
  mutable locals_bytes : int;
  mutable used_callee : int;  (** bitmask: callee-saved int regs written *)
  mutable used_fcallee : int;
  mutable made_call : bool;
  mutable max_call_args : int;
  mutable prologue_at : int;    (** index of the reserved prologue area *)
  mutable prologue_words : int;
  mutable entry_index : int;    (** set by finish: first live instruction *)
  mutable epilogue_lab : int;
  mutable ret_type : Vtype.t;
  mutable fimms : int array;
      (** packed, stride 4: load site, lo32, hi32, is_double (§5.2) *)
  mutable nfimms : int;
  mutable arg_loads : int array;
      (** packed, stride 3: arg slot, [Reg.to_int], [Vtype.to_int] —
          stack-passed incoming arguments to reload in the patched
          prologue *)
  mutable narg_loads : int;
  mutable call_args : int array;
      (** packed, stride 2: [Vtype.to_int], [Reg.to_int]; push order *)
  mutable ncall_args : int;
  mutable int_in_use : int;  (** allocator bitmask over the int file *)
  mutable flt_in_use : int;
  overrides : cls_override array;
  foverrides : cls_override array;
  mutable eff_callee_mask : int;
      (** [callee_mask] folded with the class overrides; kept current by
          [set_reg_class] so [note_write] is a branch-free mask-and-or *)
  mutable eff_fcallee_mask : int;
  mutable insn_count : int;  (** VCODE-level instructions emitted *)
  op_counts : int array;
      (** per-{!Opk}-slot emission counts; their sum is [insn_count] by
          construction — every counting site passes its slot *)
  prov_on : bool;  (** record emit-site provenance (see {!iter_prov_spans}) *)
  mutable prov : int array;
      (** packed, stride 2: start word index, {!Opk} slot (-1 closes) *)
  mutable nprov : int;
  mutable tstate : int;      (** target-private scratch *)
  peep : Peepwin.t;
      (** peephole window metadata, driven by [Vcode.Make_peephole];
          inert (and allocation-free) for unwrapped ports *)
}

(** [capacity] is an instruction-count hint forwarded to
    {!Codebuf.create}: pass the expected code size to avoid doubling
    copies (large functions) or a needlessly big buffer (small DPF-style
    filters).  [provenance] turns the emit-site side table on for this
    function (default: {!set_provenance_default}'s process-wide flag,
    initially off).  [buf] supplies a recycled code buffer instead of
    allocating one — it is {!Codebuf.reset} here and then owned by this
    generator until v_end; a batched compile queue passes the same slab
    buffer for every function so N small compiles allocate zero buffers
    ([capacity] is ignored in that case). *)
val create :
  ?base:int -> ?provenance:bool -> ?capacity:int -> ?buf:Codebuf.t -> Machdesc.t -> t

(** flip the process-wide default for [create]'s [provenance] — the
    profiling/trace tools set it before generating their workloads so
    code produced behind [Vcode.lambda] gets symbolized without every
    signature threading the flag *)
val set_provenance_default : bool -> unit

(** @raise Verror.Error if v_end already ran *)
val check_open : t -> unit

(** {2 Labels and relocations} *)

val genlabel : t -> int
val bind_label : t -> int -> unit
val label_defined : t -> int -> bool
val add_reloc : t -> site:int -> lab:int -> kind:int -> unit

(** drop the most recently recorded relocation (ports that truncate the
    buffer and re-emit a span);
    @raise Verror.Error when none are pending *)
val pop_reloc : t -> unit

val reloc_count : t -> int

(** pending plus already-resolved relocations — the total the
    generator ever recorded, still meaningful after [resolve_relocs] *)
val total_relocs : t -> int

(** resolve every recorded relocation through the target's patcher;
    @raise Verror.Error on undefined labels *)
val resolve_relocs : t -> apply:(kind:int -> site:int -> dest:int -> unit) -> unit

(** {2 FP immediates, argument reloads and call arguments} *)

(** record an FP constant load at [site]; the constant is placed after
    the code by {!place_fimms} *)
val add_fimm : t -> site:int -> bits:int64 -> dbl:bool -> unit

val fimm_count : t -> int

(** record a stack-passed incoming argument whose reload must be emitted
    in the patched prologue *)
val add_arg_load : t -> slot:int -> Reg.t -> Vtype.t -> unit

(** visit the recorded argument reloads in the order they were added *)
val iter_arg_loads : t -> (slot:int -> Reg.t -> Vtype.t -> unit) -> unit

(** record one outgoing call argument (push order) *)
val push_call_arg : t -> Vtype.t -> Reg.t -> unit

val call_arg_count : t -> int

(** the i-th pushed argument's type / register, 0-based in push order *)
val call_arg_ty : t -> int -> Vtype.t

val call_arg_reg : t -> int -> Reg.t
val clear_call_args : t -> unit

(** {2 Register allocation (section 3: priority-ordered pools)} *)

val file_in_use : t -> Reg.t -> bool
val mark_in_use : t -> Reg.t -> unit
val mark_free : t -> Reg.t -> unit
val override_of : t -> Reg.t -> cls_override
val set_reg_class : t -> Reg.t -> cls_override -> unit

(** [None] on exhaustion: clients fall back to the stack *)
val getreg : t -> cls:[ `Temp | `Var ] -> float:bool -> Reg.t option

val putreg : t -> Reg.t -> unit

(** {2 Callee-saved bookkeeping} *)

(** record a register write for prologue backpatching; honours the
    section-5.3 class overrides *)
val note_write : t -> Reg.t -> unit

(** count one VCODE-level instruction under its {!Opk} slot; ports call
    this once per public emitter entry.  Both the total and the
    per-opcode table are plain int-array stores. *)
val count_insn : t -> int -> unit

(** retire a previously counted instruction (peephole rewrites that
    remove an already-counted instruction from the buffer tail) *)
val uncount_insn : t -> int -> unit

(** the emission count recorded for one {!Opk} slot;
    @raise Verror.Error on an out-of-range slot *)
val op_count : t -> int -> int

(** {2 Peephole tail-rewrite fixups}

    Used by [Vcode.Make_peephole] when it rewrites the last few emitted
    words in place; each is bounded by the window size. *)

(** drop provenance spans starting at or beyond [start] *)
val prov_drop_from : t -> start:int -> unit

(** re-record a provenance span at an explicit start index *)
val prov_append : t -> start:int -> slot:int -> unit

(** shift pending relocation sites at or beyond [from] by [by] words
    (word removal moves downstream patch sites with the code) *)
val shift_reloc_sites : t -> from:int -> by:int -> unit

(** visit each relocation's (code-index site, code-index destination)
    pair; relocations whose label is still unbound are skipped.  After
    v_end every label is bound, so this enumerates exactly the
    backpatches taken — telemetry derives its backpatch-distance
    distribution from it. *)
val iter_reloc_spans : t -> (site:int -> dest:int -> unit) -> unit

val count_bits : int -> int

(** {2 Locals} *)

(** allocate stack space; returns a byte offset into the locals area
    (whose sp-relative base is target-specific, see
    {!Machdesc.t.locals_base}) *)
val alloc_local : t -> bytes:int -> align:int -> int

(** {2 Shared finalization helpers for target ports} *)

(** place pending FP constants after the code and patch each load site
    (section 5.2) *)
val place_fimms : t -> big_endian:bool -> patch:(site:int -> addr:int -> unit) -> unit

(** resolve parallel register moves, breaking cycles through [scratch];
    used by ports whose temp pools overlap the argument registers *)
val parallel_moves :
  emit_mov:(int -> int -> unit) -> scratch:int -> (int * int) list -> unit

(** the canonical register-save-area layout (ints from [first_off] at
    [int_bytes] strides, then 8-aligned doubles);
    @raise Verror.Error when the area would exceed [limit] *)
val save_layout :
  t ->
  first_off:int ->
  int_bytes:int ->
  limit:int ->
  [ `Int of int * int | `Fp of int * int ] list

(** {2 Space accounting for the in-place-generation experiment} *)

val live_words : t -> int
val code_addr : t -> int -> int
val here : t -> int

(** {2 Emit-site provenance}

    When enabled (see {!create}), every {!count_insn} site also records
    its start word index, giving a side table mapping each emitted code
    word back to the client-level [v_*] call that produced it.  The
    table is harvested post-[v_end] like [Telemetry.note_gen]; with
    provenance off, {!count_insn} costs one predicted-untaken branch
    more than the PR 3 two-store fast path and records nothing. *)

val provenance_on : t -> bool

(** record the closing sentinel: words emitted after this point (the
    epilogue, the FP-immediate pool) belong to no client emitter.
    Called by [Vcode]'s [end_gen] before the target finalizer runs;
    idempotent, no-op with provenance off. *)
val close_provenance : t -> unit

(** recorded sites, sentinel included *)
val prov_count : t -> int

(** visit the recorded spans in emission order: [slot] is the {!Opk}
    slot (-1 for the closing sentinel), [ordinal] the emission index,
    [first]/[last] the covered word-index range (last exclusive).
    Words below the first span are the reserved prologue area. *)
val iter_prov_spans :
  t -> (ordinal:int -> slot:int -> first:int -> last:int -> unit) -> unit

(** the span covering word index [idx] as [(ordinal, slot, first)];
    [None] in the prologue or with no provenance recorded *)
val prov_find : t -> int -> (int * int * int) option

(** the label bound closest at or before word index [idx] and the word
    offset from it; [None] when no label precedes [idx] *)
val enclosing_label : t -> int -> (int * int) option

(** symbolize the instruction covering word index [idx], e.g.
    ["addii#12@L3+2"] — the 12th emitted VCODE op, two words past
    label 3 — or ["prologue"]/["epilogue"] for the reserved areas.
    [None] when out of range or provenance was off. *)
val prov_symbol : t -> int -> string option
