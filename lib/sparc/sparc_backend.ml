(* The VCODE SPARC-V8 port.

   Calling convention: every generated function opens its own register
   window (save %sp, -frame, %sp — backpatched when the final frame size
   is known) and returns with ret/restore.  Because windows preserve the
   caller's locals and ins automatically, the "callee-saved" VAR class
   maps to %l0-%l7 with zero prologue cost — the SPARC port has no
   register save area at all, which is exactly why the paper's SPARC
   retarget was quick.

   Argument passing (the VCODE convention on this target): the first six
   word-class arguments travel in %o0-%o5 (seen as %i0-%i5 by the
   callee); floats, doubles and further words go on the stack above the
   92-byte window/home area.  Doubles occupy 8-aligned slot pairs.

   Frame layout (grows down):
     sp+0   .. sp+63    window save area (owned by the window traps)
     sp+64  .. sp+67    hidden parameter word (ABI)
     sp+68  .. sp+91    home slots for %o0-%o5
     sp+92  .. sp+115   outgoing stack arguments (slots 6..11)
     sp+104 .. sp+111   int<->float transfer scratch (reused; see note)
     sp+120 ..          locals

   Note: sp+104..111 doubles as the FP transfer scratch used by
   conversions (SPARC has no direct int<->float register moves).  It
   overlaps outgoing-argument slots 9-10, which is safe because argument
   stores happen atomically inside do_call, never interleaved with a
   conversion.

   Scratch registers: %g1 (primary, like the MIPS $at) and %g5
   (secondary, for mod and compare synthesis); %f30/f31 is the FP
   scratch pair.  None are allocatable. *)

open Vcodebase
module A = Sparc_asm

let reserve_words = 16
let arg_bias = 92
let fp_xfer = 104
let locals_base = 120
let max_arg_slots = 12

let k_branch = 0 (* 22-bit Bicc/FBfcc displacement *)
let k_call = 1   (* 30-bit call displacement *)

let g0 = 0
let g1 = 1 (* scratch *)
let g5 = 5 (* scratch2 *)
let o7 = 15
let sp = 14
let fp = 30
let i0 = 24
let i7 = 31
let fscratch = 30

let rnum = Reg.idx

let e g i = ignore (Codebuf.emit g.Gen.buf (A.encode i))

let desc : Machdesc.t =
  let r n = Reg.R n and f n = Reg.F n in
  {
    Machdesc.name = "sparc";
    word_bits = 32;
    big_endian = true;
    branch_delay_slots = 1;
    load_delay = 1;
    nregs = 32;
    nfregs = 32;
    temps = [| r 2; r 3; r 4; r 8; r 9; r 10; r 11; r 12; r 13 |];
    vars = [| r 16; r 17; r 18; r 19; r 20; r 21; r 22; r 23 |];
    ftemps = [| f 2; f 4; f 6; f 8; f 10; f 12; f 14; f 16; f 18; f 20; f 22; f 24; f 26; f 28 |];
    fvars = [||]; (* V8 has no callee-saved FP registers *)
    callee_mask = 0; (* windows preserve %l/%i automatically *)
    fcallee_mask = 0;
    arg_regs = [| r 24; r 25; r 26; r 27; r 28; r 29 |];
    farg_regs = [||];
    ret_reg = r 24; (* %i0, becomes the caller's %o0 after restore *)
    fret_reg = f 0;
    sp = r 14;
    locals_base;
    scratch = r 1;
    reg_name = (fun reg ->
      match reg with Reg.R n -> A.reg_name n | Reg.F n -> A.freg_name n);
  }

let fits13 v = A.simm13_ok v

let fits32 v = v >= -0x80000000 && v <= 0xFFFFFFFF

let load_const g rd v =
  if not (fits32 v) then Verror.fail (Verror.Range (Printf.sprintf "SPARC immediate %d" v));
  if fits13 v then e g (A.Alu (A.Or, rd, g0, A.Imm v))
  else begin
    let v32 = v land 0xFFFFFFFF in
    e g (A.Sethi (rd, v32 lsr 10));
    if v32 land 0x3FF <> 0 then e g (A.Alu (A.Or, rd, rd, A.Imm (v32 land 0x3FF)))
  end

(* ------------------------------------------------------------------ *)
(* ALU                                                                 *)

let signed_ty (t : Vtype.t) = Vtype.is_signed t

let fneg_d g d s =
  (* no fnegd on V8: negate the sign in the even (MS) word *)
  e g (A.Fpop (A.Fnegs, d, 0, s));
  if d <> s then e g (A.Fpop (A.Fmovs, d + 1, 0, s + 1))

let fmov_d g d s =
  if d <> s then begin
    e g (A.Fpop (A.Fmovs, d, 0, s));
    e g (A.Fpop (A.Fmovs, d + 1, 0, s + 1))
  end

(* signed division: Y must hold the sign extension of the dividend *)
let emit_sdiv g rd a b_ri =
  e g (A.Alu (A.Sra, g1, a, A.Imm 31));
  e g (A.Wry (g1, A.Imm 0));
  e g (A.Alu (A.Sdiv, rd, a, b_ri))

let emit_udiv g rd a b_ri =
  e g (A.Wry (g0, A.Imm 0));
  e g (A.Alu (A.Udiv, rd, a, b_ri))

let arith_core g (op : Op.binop) (t : Vtype.t) rd rs1 rs2 =
  if Vtype.is_float t then begin
    let dbl = t <> Vtype.F in
    let d = rnum rd and a = rnum rs1 and b = rnum rs2 in
    let p =
      match (op, dbl) with
      | Op.Add, false -> A.Fadds
      | Op.Add, true -> A.Faddd
      | Op.Sub, false -> A.Fsubs
      | Op.Sub, true -> A.Fsubd
      | Op.Mul, false -> A.Fmuls
      | Op.Mul, true -> A.Fmuld
      | Op.Div, false -> A.Fdivs
      | Op.Div, true -> A.Fdivd
      | (Op.Mod | Op.And | Op.Or | Op.Xor | Op.Lsh | Op.Rsh), _ ->
        Verror.fail (Verror.Bad_type "float bit operation")
    in
    e g (A.Fpop (p, d, a, b))
  end
  else
    let d = rnum rd and a = rnum rs1 and b = A.R (rnum rs2) in
    match op with
    | Op.Add -> e g (A.Alu (A.Add, d, a, b))
    | Op.Sub -> e g (A.Alu (A.Sub, d, a, b))
    | Op.Mul -> e g (A.Alu (A.Smul, d, a, b))
    | Op.Div -> if signed_ty t then emit_sdiv g d a b else emit_udiv g d a b
    | Op.Mod ->
      (* q = a / b (into %g1, reusing the sign scratch); rd = a - q*b *)
      if signed_ty t then emit_sdiv g g1 a b else emit_udiv g g1 a b;
      e g (A.Alu (A.Smul, g1, g1, b));
      e g (A.Alu (A.Sub, d, a, A.R g1))
    | Op.And -> e g (A.Alu (A.And, d, a, b))
    | Op.Or -> e g (A.Alu (A.Or, d, a, b))
    | Op.Xor -> e g (A.Alu (A.Xor, d, a, b))
    | Op.Lsh -> e g (A.Alu (A.Sll, d, a, b))
    | Op.Rsh -> e g (A.Alu ((if signed_ty t then A.Sra else A.Srl), d, a, b))

let arith g op t rd rs1 rs2 =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.arith op);
  arith_core g op t rd rs1 rs2

let arith_imm g (op : Op.binop) (t : Vtype.t) rd rs1 imm =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.arith_imm op);
  let d = rnum rd and a = rnum rs1 in
  let via_reg () =
    (* division synthesis uses %g1 internally, so wide divisor
       immediates go through %g5 instead *)
    let s = match op with Op.Div | Op.Mod -> g5 | _ -> g1 in
    load_const g s imm;
    arith_core g op t rd rs1 (Reg.R s)
  in
  match op with
  | Op.Add -> if fits13 imm then e g (A.Alu (A.Add, d, a, A.Imm imm)) else via_reg ()
  | Op.Sub -> if fits13 imm then e g (A.Alu (A.Sub, d, a, A.Imm imm)) else via_reg ()
  | Op.And -> if fits13 imm then e g (A.Alu (A.And, d, a, A.Imm imm)) else via_reg ()
  | Op.Or -> if fits13 imm then e g (A.Alu (A.Or, d, a, A.Imm imm)) else via_reg ()
  | Op.Xor -> if fits13 imm then e g (A.Alu (A.Xor, d, a, A.Imm imm)) else via_reg ()
  | Op.Lsh -> e g (A.Alu (A.Sll, d, a, A.Imm (imm land 31)))
  | Op.Rsh ->
    e g (A.Alu ((if signed_ty t then A.Sra else A.Srl), d, a, A.Imm (imm land 31)))
  | Op.Mul when fits13 imm -> e g (A.Alu (A.Smul, d, a, A.Imm imm))
  | Op.Mul | Op.Div | Op.Mod -> via_reg ()

let unary g (op : Op.unop) (t : Vtype.t) rd rs =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.unary op);
  if Vtype.is_float t then begin
    let dbl = t <> Vtype.F in
    let d = rnum rd and s = rnum rs in
    match op with
    | Op.Mov -> if dbl then fmov_d g d s else e g (A.Fpop (A.Fmovs, d, 0, s))
    | Op.Neg -> if dbl then fneg_d g d s else e g (A.Fpop (A.Fnegs, d, 0, s))
    | Op.Com | Op.Not -> Verror.fail (Verror.Bad_type "float bit operation")
  end
  else
    let d = rnum rd and s = rnum rs in
    match op with
    | Op.Com -> e g (A.Alu (A.Xnor, d, s, A.R g0))
    | Op.Not ->
      (* rd <- (rs == 0): carry = (0 <u rs) = rs != 0, then invert *)
      e g (A.Alu (A.Subcc, g0, g0, A.R s));
      e g (A.Alu (A.Addx, d, g0, A.Imm 0));
      e g (A.Alu (A.Xor, d, d, A.Imm 1))
    | Op.Mov -> e g (A.Alu (A.Or, d, g0, A.R s))
    | Op.Neg -> e g (A.Alu (A.Sub, d, g0, A.R s))

let set g (_t : Vtype.t) rd imm64 =
  Gen.note_write g rd;
  Gen.count_insn g Opk.set;
  if Int64.compare imm64 (-0x80000000L) < 0 || Int64.compare imm64 0xFFFFFFFFL > 0 then
    Verror.fail (Verror.Range (Int64.to_string imm64));
  load_const g (rnum rd) (Int64.to_int imm64)

let setf_core g (t : Vtype.t) rd v =
  let dbl = match t with Vtype.D -> true | _ -> false in
  let site = Codebuf.length g.Gen.buf in
  e g (A.Sethi (g1, 0));
  e g (if dbl then A.Lddf (rnum rd, g1, A.Imm 0) else A.Ldf (rnum rd, g1, A.Imm 0));
  let bits =
    if dbl then Int64.bits_of_float v else Int64.of_int32 (Int32.bits_of_float v)
  in
  Gen.add_fimm g ~site ~bits ~dbl

let setf g t rd v =
  Gen.note_write g rd;
  Gen.count_insn g Opk.setf;
  setf_core g t rd v

(* ------------------------------------------------------------------ *)
(* Branches                                                            *)

(* The single emission point for every control transfer that carries a
   relocation and a delay slot: the branch word (displacement patched
   at finish) followed by its slot nop.  One helper means the peephole
   stage ([Vcode.Make_peephole]) has exactly one shape to rewrite when
   filling the slot: the patch site is always the word before the nop. *)
let emit_branch_with_slot ?(kind = k_branch) g ~(mk : int -> A.t) lab =
  let site = Codebuf.length g.Gen.buf in
  e g (mk 0);
  Gen.add_reloc g ~site ~lab ~kind;
  e g A.Nop

let unsigned_cmp (t : Vtype.t) =
  match t with Vtype.U | Vtype.UL | Vtype.P | Vtype.UC | Vtype.US -> true | _ -> false

let icond_for (c : Op.cond) ~unsigned =
  match (c, unsigned) with
  | Op.Lt, false -> A.BL
  | Op.Le, false -> A.BLE
  | Op.Gt, false -> A.BG
  | Op.Ge, false -> A.BGE
  | Op.Lt, true -> A.BCS
  | Op.Le, true -> A.BLEU
  | Op.Gt, true -> A.BGU
  | Op.Ge, true -> A.BCC
  | Op.Eq, _ -> A.BE
  | Op.Ne, _ -> A.BNE

let branch g (c : Op.cond) (t : Vtype.t) rs1 rs2 lab =
  if Vtype.is_float t then begin
    let a = rnum rs1 and b = rnum rs2 in
    e g (if t = Vtype.F then A.Fcmps (a, b) else A.Fcmpd (a, b));
    e g A.Nop; (* fcmp -> fbcc needs one intervening instruction on V8 *)
    let fc =
      match c with
      | Op.Lt -> A.FBL
      | Op.Le -> A.FBLE
      | Op.Gt -> A.FBG
      | Op.Ge -> A.FBGE
      | Op.Eq -> A.FBE
      | Op.Ne -> A.FBNE
    in
    emit_branch_with_slot g ~mk:(fun d -> A.Fbfcc (fc, d)) lab
  end
  else begin
    e g (A.Alu (A.Subcc, g0, rnum rs1, A.R (rnum rs2)));
    emit_branch_with_slot g ~mk:(fun d -> A.Bicc (icond_for c ~unsigned:(unsigned_cmp t), d)) lab
  end

let branch_imm g (c : Op.cond) (t : Vtype.t) rs1 imm lab =
  if Vtype.is_float t then Verror.fail (Verror.Bad_type "float immediate branch");
  if fits13 imm then e g (A.Alu (A.Subcc, g0, rnum rs1, A.Imm imm))
  else begin
    load_const g g1 imm;
    e g (A.Alu (A.Subcc, g0, rnum rs1, A.R g1))
  end;
  emit_branch_with_slot g ~mk:(fun d -> A.Bicc (icond_for c ~unsigned:(unsigned_cmp t), d)) lab

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)

let cvt g ~(from : Vtype.t) ~(to_ : Vtype.t) rd rs =
  Gen.note_write g rd;
  Gen.count_insn g Opk.cvt;
  if (not (Vtype.is_float from)) && not (Vtype.is_float to_) then
    e g (A.Alu (A.Or, rnum rd, g0, A.R (rnum rs)))
  else
    match (from, to_) with
    | (Vtype.I | Vtype.L), (Vtype.F | Vtype.D) ->
      (* int -> float goes through memory on V8 *)
      e g (A.St (rnum rs, sp, A.Imm fp_xfer));
      e g (A.Ldf (fscratch, sp, A.Imm fp_xfer));
      e g
        (A.Fpop ((if to_ = Vtype.F then A.Fitos else A.Fitod), rnum rd, 0, fscratch))
    | (Vtype.U | Vtype.UL), Vtype.D ->
      e g (A.St (rnum rs, sp, A.Imm fp_xfer));
      e g (A.Ldf (fscratch, sp, A.Imm fp_xfer));
      e g (A.Fpop (A.Fitod, rnum rd, 0, fscratch));
      let skip = Gen.genlabel g in
      e g (A.Alu (A.Subcc, g0, rnum rs, A.Imm 0));
      let site = Codebuf.length g.Gen.buf in
      e g (A.Bicc (A.BGE, 0));
      Gen.add_reloc g ~site ~lab:skip ~kind:k_branch;
      e g A.Nop;
      setf_core g Vtype.D (Reg.F fscratch) 4294967296.0;
      e g (A.Fpop (A.Faddd, rnum rd, rnum rd, fscratch));
      Gen.bind_label g skip
    | (Vtype.F | Vtype.D), (Vtype.I | Vtype.L) ->
      e g
        (A.Fpop ((if from = Vtype.F then A.Fstoi else A.Fdtoi), fscratch, 0, rnum rs));
      e g (A.Stf (fscratch, sp, A.Imm fp_xfer));
      e g (A.Ld (rnum rd, sp, A.Imm fp_xfer))
    | Vtype.F, Vtype.D -> e g (A.Fpop (A.Fstod, rnum rd, 0, rnum rs))
    | Vtype.D, Vtype.F -> e g (A.Fpop (A.Fdtos, rnum rd, 0, rnum rs))
    | _ ->
      Verror.fail
        (Verror.Bad_type
           (Printf.sprintf "cv%s2%s" (Vtype.to_string from) (Vtype.to_string to_)))

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)

(* Emit the access given the base register number and a ready operand. *)
let emit_load g (t : Vtype.t) rd b (ri : A.ri) =
  match t with
  | Vtype.C -> e g (A.Ldsb (rnum rd, b, ri))
  | Vtype.UC -> e g (A.Ldub (rnum rd, b, ri))
  | Vtype.S -> e g (A.Ldsh (rnum rd, b, ri))
  | Vtype.US -> e g (A.Lduh (rnum rd, b, ri))
  | Vtype.I | Vtype.U | Vtype.L | Vtype.UL | Vtype.P -> e g (A.Ld (rnum rd, b, ri))
  | Vtype.F -> e g (A.Ldf (rnum rd, b, ri))
  | Vtype.D -> e g (A.Lddf (rnum rd, b, ri))
  | Vtype.V -> Verror.fail (Verror.Bad_type "ld.v")

let emit_store g (t : Vtype.t) rv b (ri : A.ri) =
  match t with
  | Vtype.C | Vtype.UC -> e g (A.Stb (rnum rv, b, ri))
  | Vtype.S | Vtype.US -> e g (A.Sth (rnum rv, b, ri))
  | Vtype.I | Vtype.U | Vtype.L | Vtype.UL | Vtype.P -> e g (A.St (rnum rv, b, ri))
  | Vtype.F -> e g (A.Stf (rnum rv, b, ri))
  | Vtype.D -> e g (A.Stdf (rnum rv, b, ri))
  | Vtype.V -> Verror.fail (Verror.Bad_type "st.v")

let load_imm g (t : Vtype.t) rd base off =
  Gen.note_write g rd;
  Gen.count_insn g Opk.ld;
  if fits13 off then emit_load g t rd (rnum base) (A.Imm off)
  else begin
    load_const g g1 off;
    emit_load g t rd (rnum base) (A.R g1)
  end

let load_reg g (t : Vtype.t) rd base idx = Gen.note_write g rd; Gen.count_insn g Opk.ld; emit_load g t rd (rnum base) (A.R (rnum idx))

let store_imm g (t : Vtype.t) rv base off =
  Gen.count_insn g Opk.st;
  if fits13 off then emit_store g t rv (rnum base) (A.Imm off)
  else begin
    load_const g g1 off;
    emit_store g t rv (rnum base) (A.R g1)
  end

let store_reg g (t : Vtype.t) rv base idx =
  Gen.count_insn g Opk.st;
  emit_store g t rv (rnum base) (A.R (rnum idx))

(* ------------------------------------------------------------------ *)
(* Control                                                             *)

let jump g (t : Gen.jtarget) =
  match t with
  | Gen.Jlabel lab -> emit_branch_with_slot g ~mk:(fun d -> A.Bicc (A.BA, d)) lab
  | Gen.Jaddr a ->
    load_const g g1 a;
    e g (A.Jmpl (g0, g1, A.Imm 0));
    e g A.Nop
  | Gen.Jreg r ->
    e g (A.Jmpl (g0, rnum r, A.Imm 0));
    e g A.Nop

let jal g (t : Gen.jtarget) =
  match t with
  | Gen.Jlabel lab -> emit_branch_with_slot ~kind:k_call g ~mk:(fun d -> A.Call d) lab
  | Gen.Jaddr a ->
    (* call is pc-relative and the site address is known now *)
    let here = g.Gen.base + (4 * Codebuf.length g.Gen.buf) in
    e g (A.Call ((a - here) asr 2));
    e g A.Nop
  | Gen.Jreg r ->
    e g (A.Jmpl (o7, rnum r, A.Imm 0));
    e g A.Nop

let nop g = e g A.Nop

(* ------------------------------------------------------------------ *)
(* Calling convention                                                  *)

type arg_loc = In_reg of int (* callee-view register *) | On_stack of int

let assign_slots ~callee (tys : Vtype.t array) : (Vtype.t * arg_loc) array =
  let reg_base = if callee then i0 else 8 (* %o0 *) in
  let slot = ref 0 in
  Array.map
    (fun (t : Vtype.t) ->
      match t with
      | Vtype.F ->
        let s = !slot in
        incr slot;
        (t, On_stack s)
      | Vtype.D ->
        if (!slot + (arg_bias / 4)) land 1 = 1 then incr slot;
        let s = !slot in
        slot := s + 2;
        (t, On_stack s)
      | _ ->
        let s = !slot in
        incr slot;
        (t, if s < 6 then In_reg (reg_base + s) else On_stack s))
    tys

let lambda g (tys : Vtype.t array) : Reg.t array =
  g.Gen.prologue_at <- Codebuf.reserve g.Gen.buf ~n:reserve_words ~fill:(A.encode A.Nop);
  g.Gen.prologue_words <- reserve_words;
  g.Gen.epilogue_lab <- Gen.genlabel g;
  let locs = assign_slots ~callee:true tys in
  Array.map
    (fun ((t : Vtype.t), loc) ->
      match loc with
      | In_reg n ->
        let r = Reg.R n in
        Gen.mark_in_use g r;
        r
      | On_stack s ->
        let float = Vtype.is_float t in
        let r =
          match Gen.getreg g ~cls:(if float then `Temp else `Var) ~float with
          | Some r -> r
          | None -> (
            match Gen.getreg g ~cls:`Temp ~float with
            | Some r -> r
            | None -> Verror.fail (Verror.Registers_exhausted "incoming arguments"))
        in
        Gen.add_arg_load g ~slot:s r t;
        r)
    locs

let frame_size g = (locals_base + g.Gen.locals_bytes + 7) land lnot 7

let ret g (t : Vtype.t) (r : Reg.t option) =
  let site = Codebuf.length g.Gen.buf in
  e g (A.Bicc (A.BA, 0));
  Gen.add_reloc g ~site ~lab:g.Gen.epilogue_lab ~kind:k_branch;
  (* delay slot carries the return-value move *)
  match (t, r) with
  | Vtype.V, _ | _, None -> e g A.Nop
  | Vtype.F, Some r ->
    if rnum r <> 0 then e g (A.Fpop (A.Fmovs, 0, 0, rnum r)) else e g A.Nop
  | Vtype.D, Some r ->
    (* two instructions needed: do the move before the jump instead *)
    if rnum r <> 0 then begin
      Codebuf.truncate g.Gen.buf site;
      Gen.pop_reloc g;
      fmov_d g 0 (rnum r);
      let site = Codebuf.length g.Gen.buf in
      e g (A.Bicc (A.BA, 0));
      Gen.add_reloc g ~site ~lab:g.Gen.epilogue_lab ~kind:k_branch;
      e g A.Nop
    end
    else e g A.Nop
  | _, Some r ->
    if rnum r <> i0 then e g (A.Alu (A.Or, i0, g0, A.R (rnum r))) else e g A.Nop

let push_arg g (t : Vtype.t) (r : Reg.t) = Gen.push_call_arg g t r

let do_call g (target : Gen.jtarget) =
  let n = Gen.call_arg_count g in
  let tys = Array.init n (Gen.call_arg_ty g) in
  let locs = assign_slots ~callee:false tys in
  let nslots =
    Array.fold_left
      (fun acc (_, loc) -> match loc with On_stack s -> max acc (s + 2) | _ -> acc)
      0 locs
  in
  if nslots > max_arg_slots then
    Verror.fail (Verror.Unsupported "more than 12 outgoing argument slots");
  g.Gen.max_call_args <- max g.Gen.max_call_args nslots;
  Array.iteri
    (fun i ((t : Vtype.t), loc) ->
      let src = Gen.call_arg_reg g i in
      match loc with
      | On_stack s -> (
        let off = arg_bias + (4 * s) in
        match t with
        | Vtype.F -> e g (A.Stf (rnum src, sp, A.Imm off))
        | Vtype.D -> e g (A.Stdf (rnum src, sp, A.Imm off))
        | _ -> e g (A.St (rnum src, sp, A.Imm off)))
      | In_reg _ -> ())
    locs;
  (* register moves: the temp pool includes %o0-%o5, so argument
     sources may themselves be argument registers — solve the parallel
     move problem, breaking cycles through %g1 *)
  let imoves = ref [] in
  Array.iteri
    (fun i (_, loc) ->
      let src = Gen.call_arg_reg g i in
      match loc with
      | In_reg n -> imoves := (n, rnum src) :: !imoves
      | On_stack _ -> ())
    locs;
  Gen.parallel_moves ~scratch:g1
    ~emit_mov:(fun d s -> if d <> s then e g (A.Alu (A.Or, d, g0, A.R s)))
    (List.rev !imoves);
  Gen.clear_call_args g;
  jal g target

let retval g (t : Vtype.t) (r : Reg.t) =
  match t with
  | Vtype.V -> ()
  | Vtype.F -> if rnum r <> 0 then e g (A.Fpop (A.Fmovs, rnum r, 0, 0))
  | Vtype.D -> fmov_d g (rnum r) 0
  | _ -> if rnum r <> 8 then e g (A.Alu (A.Or, rnum r, g0, A.R 8))

(* ------------------------------------------------------------------ *)
(* Finalization                                                        *)

let finish g =
  let frame = frame_size g in
  (* epilogue: ret; restore *)
  Gen.bind_label g g.Gen.epilogue_lab;
  e g (A.Jmpl (g0, i7, A.Imm 8));
  e g (A.Restore (g0, g0, A.R g0));
  (* floating-point constant pool: patch sethi %hi / ld [%g1 + lo] *)
  Gen.place_fimms g ~big_endian:true ~patch:(fun ~site ~addr ->
      Codebuf.set g.Gen.buf site (A.encode (A.Sethi (g1, addr lsr 10)));
      let old = Codebuf.get g.Gen.buf (site + 1) in
      Codebuf.set g.Gen.buf (site + 1)
        ((old land lnot 0x1FFF) lor (1 lsl 13) lor (addr land 0x3FF)));
  (* prologue: save + incoming stack-argument reloads *)
  let prologue = ref [ A.Save (sp, sp, A.Imm (-frame)) ] in
  let add i = prologue := i :: !prologue in
  Gen.iter_arg_loads g (fun ~slot r (t : Vtype.t) ->
      let off = arg_bias + (4 * slot) in
      match t with
      | Vtype.F -> add (A.Ldf (rnum r, fp, A.Imm off))
      | Vtype.D -> add (A.Lddf (rnum r, fp, A.Imm off))
      | _ -> add (A.Ld (rnum r, fp, A.Imm off)));
  let pro = List.rev !prologue in
  let k = List.length pro in
  if k > reserve_words then Verror.fail (Verror.Unsupported "prologue overflow");
  let start = g.Gen.prologue_at + g.Gen.prologue_words - k in
  List.iteri (fun i insn -> Codebuf.set g.Gen.buf (start + i) (A.encode insn)) pro;
  g.Gen.entry_index <- start;
  (* relocations *)
  Gen.resolve_relocs g ~apply:(fun ~kind ~site ~dest ->
      let disp = dest - site in
      if kind = k_branch then begin
        if disp < -0x200000 || disp > 0x1FFFFF then
          Verror.fail (Verror.Range "branch displacement");
        let old = Codebuf.get g.Gen.buf site in
        Codebuf.set g.Gen.buf site ((old land lnot 0x3FFFFF) lor (disp land 0x3FFFFF))
      end
      else if kind = k_call then begin
        let old = Codebuf.get g.Gen.buf site in
        Codebuf.set g.Gen.buf site ((old land 0xC0000000) lor (disp land 0x3FFFFFFF))
      end
      else Verror.failf "unknown reloc kind %d" kind)

let apply_reloc _g ~kind:_ ~site:_ ~dest:_ = ()

(* Peephole interposition hooks: the raw port binds labels directly and
   needs no window barrier. *)
let bind_label g l = Gen.bind_label g l
let sync _g = ()

(* Mirror of [arith_imm]'s single-instruction fast paths: most ALU ops
   take a simm13 operand; shifts always encode (the count is masked). *)
let binop_imm_fits (op : Op.binop) imm =
  match op with
  | Op.Add | Op.Sub | Op.And | Op.Or | Op.Xor | Op.Mul -> fits13 imm
  | Op.Lsh | Op.Rsh -> true
  | Op.Div | Op.Mod -> false

let disasm ~word ~addr = A.disasm ~addr word

let extra_insns =
  [
    ("fsqrts", fun g (rs : Reg.t array) -> e g (A.Fpop (A.Fsqrts, rnum rs.(0), 0, rnum rs.(1))));
    ("fsqrtd", fun g rs -> e g (A.Fpop (A.Fsqrtd, rnum rs.(0), 0, rnum rs.(1))));
    ("fabss", fun g rs -> e g (A.Fpop (A.Fabss, rnum rs.(0), 0, rnum rs.(1))));
    ("rdy", fun g rs -> e g (A.Rdy (rnum rs.(0))));
  ]

let extra_imm_insns =
  [
    ("addi", fun g (rs : Reg.t array) imm -> e g (A.Alu (A.Add, rnum rs.(0), rnum rs.(1), A.Imm imm)));
    ("ori", fun g rs imm -> e g (A.Alu (A.Or, rnum rs.(0), rnum rs.(1), A.Imm imm)));
  ]
