(* SPARC-V8 simulator.

   Big-endian core with register windows (NWINDOWS = 8), one branch
   delay slot, integer condition codes, the Y register for the 64-bit
   multiply/divide results, and paired FP registers (doubles in
   even/odd pairs, most-significant word in the even register).

   Window model: window [w] owns 16 registers (8 locals + 8 ins); the
   outs of window [w] are the ins of window [w-1] (save decrements the
   current window pointer).  Overflow/underflow traps are not modeled —
   call depth beyond NWINDOWS-1 is a machine error, which the VCODE
   experiments never approach (the paper's SPARC port runs under the
   same restriction in practice since trap handling lives in the OS). *)

open Vmachine

let halt_addr = 0x10000000
let nwindows = 8

exception Machine_error of string

type t = {
  mem : Mem.t;
  icache : Cache.t;
  dcache : Cache.t;
  pdc : Sparc_asm.t Decode_cache.t; (* host-side predecode; no cycle effect *)
  predecode : bool;
  bc : block Block_cache.t; (* superblock translation cache; no cycle effect *)
  blocks : bool;
  rc : region Region_cache.t; (* tier-3 region cache; no cycle effect *)
  regions : bool;
  probe : Sim_probe.t;      (* shared telemetry probe; never touches timing *)
  tr : Trace.t;             (* execution trace; the disabled sink is scratch *)
  cfg : Mconfig.t;
  globals : int array;              (* g0-g7; g0 pinned to 0 *)
  wins : int array;                 (* nwindows * 16: locals + ins *)
  mutable cwp : int;
  mutable depth : int;              (* save depth, for overflow checking *)
  fregs : int array;                (* 32 x 32-bit patterns *)
  mutable y : int;
  mutable icc_n : bool;
  mutable icc_z : bool;
  mutable icc_v : bool;
  mutable icc_c : bool;
  mutable fcc : int;                (* 0 =, 1 <, 2 > *)
  mutable pc : int;
  mutable npc : int;
  mutable btarget : int; (* branch-target scratch for [step]; avoids a per-step ref *)
  mutable blk_i : int; (* index of the block instruction in flight; abort-fixup scratch *)
  mutable cycles : int;
  mutable insns : int;
  mutable stack_top : int;
}

(* A compiled straight-line run: one closure per instruction, ending at
   the first control transfer (compiled in, together with its delay
   slot) or the [Block_cache.max_insns] cap. *)
and block = {
  entry : int;          (* code address of the first instruction *)
  n : int;              (* instruction count, terminator + delay slot included *)
  run : unit -> unit;   (* the whole straight-line run fused into one closure:
                           per-instruction icache probes, [blk_i] updates and
                           the final pc/npc/insns commit are baked in at
                           compile time *)
  has_delay : bool;     (* ends in branch + delay slot (vs. capped fallthrough) *)
}

(* A tier-3 region (see the MIPS twin for the full commentary): a hot
   block plus its dominant direct-chained successors fused into one
   closure per pass, interior branches specialized to their dominant
   direction with a [Region_cache.Side_exit] guard, and a probe-free
   fast pass for self-looping traces whose icache lines don't
   conflict. *)
and region = {
  r_entry : int;
  r_n : int;                   (* instructions retired per full pass *)
  r_spans : (int * int) array; (* constituent-block (addr, bytes) *)
  r_run : unit -> unit;        (* one pass, icache probes included *)
  r_fast : unit -> unit;       (* one pass, probes elided *)
  r_addrs : int array;         (* region insn index -> code address *)
  r_delay : bool array;        (* index is its block's delay slot *)
}

let create ?(predecode = true) ?(blocks = true) ?(regions = false)
    ?(telemetry = Telemetry.disabled) ?(trace = Trace.disabled) (cfg : Mconfig.t) =
  let mem = Mem.create ~big_endian:true ~size:cfg.mem_bytes () in
  let pdc = Decode_cache.create ~tel:telemetry ~trace ~name:"sparc.pdc" ~mem_bytes:cfg.mem_bytes () in
  let bc = Block_cache.create ~tel:telemetry ~trace ~name:"sparc.bc" ~mem_bytes:cfg.mem_bytes
      ~len_bytes:(fun b -> 4 * b.n) () in
  let rc = Region_cache.create ~tel:telemetry ~name:"sparc.rc" ~mem_bytes:cfg.mem_bytes
      ~spans:(fun r -> r.r_spans) () in
  ignore (Mem.add_write_watcher mem (Decode_cache.invalidate pdc) : Mem.watcher);
  ignore (Mem.add_write_watcher mem (Block_cache.invalidate bc) : Mem.watcher);
  (* A dropped region must abort a running pass even when the
     overwritten constituent block is no longer bc-resident (so the
     Block_cache watcher above dropped nothing): raise bc's dirty flag
     unconditionally and let the shared store closures raise Retired. *)
  if regions then
    ignore
      (Mem.add_write_watcher mem (fun addr len ->
           if Region_cache.invalidate rc addr len then Block_cache.mark_dirty bc)
        : Mem.watcher);
  {
    mem;
    pdc;
    predecode;
    bc;
    blocks;
    rc;
    regions;
    probe = Sim_probe.create ~trace telemetry ~port:"sparc" ~predecode ~blocks ~regions;
    tr = trace;
    icache = Cache.create ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.imiss_penalty;
    dcache = Cache.create ~size_bytes:cfg.dcache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.dmiss_penalty;
    cfg;
    globals = Array.make 8 0;
    wins = Array.make (nwindows * 16) 0;
    cwp = 0;
    depth = 0;
    blk_i = 0;
    fregs = Array.make 32 0;
    y = 0;
    icc_n = false;
    icc_z = false;
    icc_v = false;
    icc_c = false;
    fcc = 0;
    pc = 0;
    npc = 4;
    btarget = 0;
    cycles = 0;
    insns = 0;
    stack_top = cfg.mem_bytes - 256;
  }

(* branchless sign-extension from bit 31 (OCaml ints are 63-bit, so the
   shift pair drops bits 32+ and replicates bit 31 upward) *)
let[@inline] sext32 v = (v lsl 31) asr 31

let u32 v = v land 0xFFFFFFFF

(* window-relative register access: outs of window w live as ins of
   window (w-1) mod nwindows *)
let win_slot m r =
  if r < 16 then (* outs *) ((m.cwp - 1 + nwindows) mod nwindows * 16) + 8 + (r - 8)
  else if r < 24 then (m.cwp * 16) + (r - 16) (* locals *)
  else (m.cwp * 16) + 8 + (r - 24) (* ins *)

let get_reg m r =
  if r = 0 then 0
  else if r < 8 then m.globals.(r)
  else m.wins.(win_slot m r)

let set_reg m r v =
  if r = 0 then ()
  else if r < 8 then m.globals.(r) <- sext32 v
  else m.wins.(win_slot m r) <- sext32 v

(* doubles: even register holds the most-significant word *)
let get_double m f =
  let hi = m.fregs.(f) land 0xFFFFFFFF and lo = m.fregs.(f + 1) land 0xFFFFFFFF in
  Int64.float_of_bits
    (Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))

let set_double m f v =
  let bits = Int64.bits_of_float v in
  m.fregs.(f + 1) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
  m.fregs.(f) <- Int64.to_int (Int64.logand (Int64.shift_right_logical bits 32) 0xFFFFFFFFL)

let get_single m f = Int32.float_of_bits (Int32.of_int m.fregs.(f))
let set_single m f v = m.fregs.(f) <- Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF

let ri_val m = function Sparc_asm.R r -> get_reg m r | Sparc_asm.Imm v -> v

let[@inline] daccess m addr =
  let p = Cache.access m.dcache addr in
  if p <> 0 then m.cycles <- m.cycles + p
(* write-through: always 0 penalty, but the hit/miss stats must tick *)
let[@inline] waccess m addr = ignore (Cache.write_access m.dcache addr : int)

let set_icc_sub m a b r =
  m.icc_z <- u32 r = 0;
  m.icc_n <- r land 0x80000000 <> 0;
  m.icc_v <- (a lxor b) land (a lxor r) land 0x80000000 <> 0;
  m.icc_c <- u32 a < u32 b

(* Decode the word at [pc], consulting the predecode cache first.  The
   miss path preserves the uncached fault behaviour exactly. *)
let fetch m pc =
  match Decode_cache.find m.pdc pc with
  | Some i -> i
  | None ->
    let w = Mem.read_u32 m.mem pc in
    let insn =
      try Sparc_asm.decode w with Sparc_asm.Bad_insn _ ->
        raise (Machine_error (Printf.sprintf "illegal instruction 0x%08x at 0x%x" w pc))
    in
    if m.predecode then Decode_cache.set m.pdc pc insn;
    insn

let[@inline] branch m pc disp taken = if taken then m.btarget <- pc + (4 * disp)

(* The caller is responsible for the icache timing access on [m.pc]
   (see [run_go]/[step]): doing it in the small run loop rather than in
   this large function keeps its register pressure out of every arm. *)
let step_inner m pc =
  m.insns <- m.insns + 1;
  let insn = fetch m pc in
  let next = m.npc in
  m.btarget <- m.npc + 4;
  (match insn with
  | Sparc_asm.Nop -> ()
  | Sparc_asm.Sethi (rd, imm22) -> set_reg m rd (imm22 lsl 10)
  | Sparc_asm.Alu (a, rd, rs1, ri) -> (
    let x = get_reg m rs1 and y = ri_val m ri in
    match a with
    | Sparc_asm.Add -> set_reg m rd (x + y)
    | Sparc_asm.Sub -> set_reg m rd (x - y)
    | Sparc_asm.And -> set_reg m rd (x land y)
    | Sparc_asm.Or -> set_reg m rd (x lor y)
    | Sparc_asm.Xor -> set_reg m rd (x lxor y)
    | Sparc_asm.Andn -> set_reg m rd (x land lnot y)
    | Sparc_asm.Orn -> set_reg m rd (x lor lnot y)
    | Sparc_asm.Xnor -> set_reg m rd (lnot (x lxor y))
    | Sparc_asm.Addx -> set_reg m rd (x + y + if m.icc_c then 1 else 0)
    | Sparc_asm.Sll -> set_reg m rd (x lsl (y land 31))
    | Sparc_asm.Srl -> set_reg m rd (u32 x lsr (y land 31))
    | Sparc_asm.Sra -> set_reg m rd (x asr (y land 31))
    | Sparc_asm.Umul ->
      m.cycles <- m.cycles + 18;
      let p = Int64.mul (Int64.of_int (u32 x)) (Int64.of_int (u32 y)) in
      m.y <- Int64.to_int (Int64.shift_right_logical p 32) land 0xFFFFFFFF;
      set_reg m rd (Int64.to_int (Int64.logand p 0xFFFFFFFFL))
    | Sparc_asm.Smul ->
      m.cycles <- m.cycles + 18;
      let p = Int64.mul (Int64.of_int x) (Int64.of_int y) in
      m.y <- Int64.to_int (Int64.shift_right_logical p 32) land 0xFFFFFFFF;
      set_reg m rd (Int64.to_int (Int64.logand p 0xFFFFFFFFL))
    | Sparc_asm.Udiv ->
      m.cycles <- m.cycles + 36;
      let dividend =
        Int64.logor
          (Int64.shift_left (Int64.of_int (u32 m.y)) 32)
          (Int64.of_int (u32 x))
      in
      let dv = u32 y in
      if dv = 0 then set_reg m rd 0
      else set_reg m rd (Int64.to_int (Int64.div dividend (Int64.of_int dv)))
    | Sparc_asm.Sdiv ->
      m.cycles <- m.cycles + 36;
      let dividend =
        Int64.logor
          (Int64.shift_left (Int64.of_int (u32 m.y)) 32)
          (Int64.of_int (u32 x))
      in
      if y = 0 then set_reg m rd 0
      else set_reg m rd (Int64.to_int (Int64.div dividend (Int64.of_int y)))
    | Sparc_asm.Addcc ->
      let r = x + y in
      m.icc_z <- u32 r = 0;
      m.icc_n <- r land 0x80000000 <> 0;
      m.icc_v <- lnot (x lxor y) land (x lxor r) land 0x80000000 <> 0;
      m.icc_c <- u32 r < u32 x;
      set_reg m rd r
    | Sparc_asm.Subcc ->
      let r = x - y in
      set_icc_sub m x y r;
      set_reg m rd r)
  | Sparc_asm.Bicc (c, disp) ->
    let t =
      let open Sparc_asm in
      match c with
      | BA -> true
      | BN -> false
      | BNE -> not m.icc_z
      | BE -> m.icc_z
      | BG -> not (m.icc_z || m.icc_n <> m.icc_v)
      | BLE -> m.icc_z || m.icc_n <> m.icc_v
      | BGE -> m.icc_n = m.icc_v
      | BL -> m.icc_n <> m.icc_v
      | BGU -> (not m.icc_c) && not m.icc_z
      | BLEU -> m.icc_c || m.icc_z
      | BCC -> not m.icc_c
      | BCS -> m.icc_c
      | BPOS -> not m.icc_n
      | BNEG -> m.icc_n
    in
    branch m pc disp t
  | Sparc_asm.Fbfcc (c, disp) ->
    let t =
      let open Sparc_asm in
      match c with
      | FBE -> m.fcc = 0
      | FBNE -> m.fcc <> 0
      | FBL -> m.fcc = 1
      | FBG -> m.fcc = 2
      | FBLE -> m.fcc = 0 || m.fcc = 1
      | FBGE -> m.fcc = 0 || m.fcc = 2
    in
    branch m pc disp t
  | Sparc_asm.Call disp ->
    set_reg m 15 pc;
    m.btarget <- pc + (4 * disp)
  | Sparc_asm.Jmpl (rd, rs1, ri) ->
    set_reg m rd pc;
    m.btarget <- u32 (get_reg m rs1 + ri_val m ri)
  | Sparc_asm.Save (rd, rs1, ri) ->
    if m.depth >= nwindows - 2 then raise (Machine_error "register window overflow");
    let v = get_reg m rs1 + ri_val m ri in
    m.cwp <- (m.cwp - 1 + nwindows) mod nwindows;
    m.depth <- m.depth + 1;
    set_reg m rd v
  | Sparc_asm.Restore (rd, rs1, ri) ->
    if m.depth <= 0 then raise (Machine_error "register window underflow");
    let v = get_reg m rs1 + ri_val m ri in
    m.cwp <- (m.cwp + 1) mod nwindows;
    m.depth <- m.depth - 1;
    set_reg m rd v
  | Sparc_asm.Rdy rd -> set_reg m rd m.y
  | Sparc_asm.Wry (rs1, ri) -> m.y <- u32 (get_reg m rs1 lxor ri_val m ri)
  | Sparc_asm.Ld (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    daccess m a;
    set_reg m rd (Mem.read_u32 m.mem a)
  | Sparc_asm.Ldsb (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    daccess m a;
    let v = Mem.read_u8 m.mem a in
    set_reg m rd (if v land 0x80 <> 0 then v - 0x100 else v)
  | Sparc_asm.Ldub (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    daccess m a;
    set_reg m rd (Mem.read_u8 m.mem a)
  | Sparc_asm.Ldsh (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    daccess m a;
    let v = Mem.read_u16 m.mem a in
    set_reg m rd (if v land 0x8000 <> 0 then v - 0x10000 else v)
  | Sparc_asm.Lduh (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    daccess m a;
    set_reg m rd (Mem.read_u16 m.mem a)
  | Sparc_asm.St (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    waccess m a;
    Mem.write_u32 m.mem a (u32 (get_reg m rd))
  | Sparc_asm.Stb (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    waccess m a;
    Mem.write_u8 m.mem a (get_reg m rd)
  | Sparc_asm.Sth (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    waccess m a;
    Mem.write_u16 m.mem a (get_reg m rd)
  | Sparc_asm.Ldf (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    daccess m a;
    m.fregs.(rd) <- Mem.read_u32 m.mem a
  | Sparc_asm.Lddf (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    daccess m a;
    m.fregs.(rd) <- Mem.read_u32 m.mem a;
    m.fregs.(rd + 1) <- Mem.read_u32 m.mem (a + 4)
  | Sparc_asm.Stf (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    waccess m a;
    Mem.write_u32 m.mem a m.fregs.(rd)
  | Sparc_asm.Stdf (rd, rs1, ri) ->
    let a = u32 (get_reg m rs1 + ri_val m ri) in
    waccess m a;
    Mem.write_u32 m.mem a m.fregs.(rd);
    Mem.write_u32 m.mem (a + 4) m.fregs.(rd + 1)
  | Sparc_asm.Fpop (p, rd, rs1, rs2) -> (
    let open Sparc_asm in
    match p with
    | Fadds -> m.cycles <- m.cycles + 1; set_single m rd (get_single m rs1 +. get_single m rs2)
    | Faddd -> m.cycles <- m.cycles + 1; set_double m rd (get_double m rs1 +. get_double m rs2)
    | Fsubs -> m.cycles <- m.cycles + 1; set_single m rd (get_single m rs1 -. get_single m rs2)
    | Fsubd -> m.cycles <- m.cycles + 1; set_double m rd (get_double m rs1 -. get_double m rs2)
    | Fmuls -> m.cycles <- m.cycles + 3; set_single m rd (get_single m rs1 *. get_single m rs2)
    | Fmuld -> m.cycles <- m.cycles + 4; set_double m rd (get_double m rs1 *. get_double m rs2)
    | Fdivs -> m.cycles <- m.cycles + 12; set_single m rd (get_single m rs1 /. get_single m rs2)
    | Fdivd -> m.cycles <- m.cycles + 18; set_double m rd (get_double m rs1 /. get_double m rs2)
    | Fmovs -> m.fregs.(rd) <- m.fregs.(rs2)
    | Fnegs -> set_single m rd (-.get_single m rs2)
    | Fabss -> set_single m rd (abs_float (get_single m rs2))
    | Fsqrts -> m.cycles <- m.cycles + 13; set_single m rd (sqrt (get_single m rs2))
    | Fsqrtd -> m.cycles <- m.cycles + 25; set_double m rd (sqrt (get_double m rs2))
    | Fitos -> set_single m rd (float_of_int (sext32 m.fregs.(rs2)))
    | Fitod -> set_double m rd (float_of_int (sext32 m.fregs.(rs2)))
    | Fstoi -> m.fregs.(rd) <- u32 (int_of_float (Float.trunc (get_single m rs2)))
    | Fdtoi -> m.fregs.(rd) <- u32 (int_of_float (Float.trunc (get_double m rs2)))
    | Fstod -> set_double m rd (get_single m rs2)
    | Fdtos -> set_single m rd (get_double m rs2))
  | Sparc_asm.Fcmps (rs1, rs2) ->
    let a = get_single m rs1 and b = get_single m rs2 in
    m.fcc <- (if a = b then 0 else if a < b then 1 else 2)
  | Sparc_asm.Fcmpd (rs1, rs2) ->
    let a = get_double m rs1 and b = get_double m rs2 in
    m.fcc <- (if a = b then 0 else if a < b then 1 else 2));
  m.pc <- next;
  m.npc <- m.btarget

(* ------------------------------------------------------------------ *)
(* Superblock translation (see {!Vmachine.Block_cache}): compile a
   straight-line decoded run into one closure per instruction, executed
   by [exec_chain] without per-instruction dispatch.  Each closure
   replicates its [step_inner] arm exactly — same arithmetic, same
   memory-access and window-shift order, same cycle surcharges — so a
   block retires with the same architectural state and timing as the
   interpreter.  Save/Restore stay block *body* instructions: their
   window overflow/underflow checks raise before touching state, which
   the fault fixup of [exec_chain] handles like any other trap. *)

(* Compiled action for one *body* (non-control) instruction; [None]
   when the instruction terminates a block (Bicc/Fbfcc/Call/Jmpl,
   compiled via [term_of]).  Store closures test the block cache's
   dirty flag after writing and abort with [Block_cache.Retired]. *)
let act_of m (insn : Sparc_asm.t) : (unit -> unit) option =
  match insn with
  | Sparc_asm.Nop -> Some (fun () -> ())
  | Sparc_asm.Sethi (rd, imm22) -> Some (fun () -> set_reg m rd (imm22 lsl 10))
  | Sparc_asm.Alu (a, rd, rs1, ri) ->
    Some
      (match a with
      | Sparc_asm.Add -> fun () -> set_reg m rd (get_reg m rs1 + ri_val m ri)
      | Sparc_asm.Sub -> fun () -> set_reg m rd (get_reg m rs1 - ri_val m ri)
      | Sparc_asm.And -> fun () -> set_reg m rd (get_reg m rs1 land ri_val m ri)
      | Sparc_asm.Or -> fun () -> set_reg m rd (get_reg m rs1 lor ri_val m ri)
      | Sparc_asm.Xor -> fun () -> set_reg m rd (get_reg m rs1 lxor ri_val m ri)
      | Sparc_asm.Andn -> fun () -> set_reg m rd (get_reg m rs1 land lnot (ri_val m ri))
      | Sparc_asm.Orn -> fun () -> set_reg m rd (get_reg m rs1 lor lnot (ri_val m ri))
      | Sparc_asm.Xnor -> fun () -> set_reg m rd (lnot (get_reg m rs1 lxor ri_val m ri))
      | Sparc_asm.Addx ->
        fun () -> set_reg m rd (get_reg m rs1 + ri_val m ri + if m.icc_c then 1 else 0)
      | Sparc_asm.Sll -> fun () -> set_reg m rd (get_reg m rs1 lsl (ri_val m ri land 31))
      | Sparc_asm.Srl -> fun () -> set_reg m rd (u32 (get_reg m rs1) lsr (ri_val m ri land 31))
      | Sparc_asm.Sra -> fun () -> set_reg m rd (get_reg m rs1 asr (ri_val m ri land 31))
      | Sparc_asm.Umul ->
        fun () ->
          m.cycles <- m.cycles + 18;
          let x = get_reg m rs1 and y = ri_val m ri in
          let p = Int64.mul (Int64.of_int (u32 x)) (Int64.of_int (u32 y)) in
          m.y <- Int64.to_int (Int64.shift_right_logical p 32) land 0xFFFFFFFF;
          set_reg m rd (Int64.to_int (Int64.logand p 0xFFFFFFFFL))
      | Sparc_asm.Smul ->
        fun () ->
          m.cycles <- m.cycles + 18;
          let x = get_reg m rs1 and y = ri_val m ri in
          let p = Int64.mul (Int64.of_int x) (Int64.of_int y) in
          m.y <- Int64.to_int (Int64.shift_right_logical p 32) land 0xFFFFFFFF;
          set_reg m rd (Int64.to_int (Int64.logand p 0xFFFFFFFFL))
      | Sparc_asm.Udiv ->
        fun () ->
          m.cycles <- m.cycles + 36;
          let x = get_reg m rs1 and y = ri_val m ri in
          let dividend =
            Int64.logor
              (Int64.shift_left (Int64.of_int (u32 m.y)) 32)
              (Int64.of_int (u32 x))
          in
          let dv = u32 y in
          if dv = 0 then set_reg m rd 0
          else set_reg m rd (Int64.to_int (Int64.div dividend (Int64.of_int dv)))
      | Sparc_asm.Sdiv ->
        fun () ->
          m.cycles <- m.cycles + 36;
          let x = get_reg m rs1 and y = ri_val m ri in
          let dividend =
            Int64.logor
              (Int64.shift_left (Int64.of_int (u32 m.y)) 32)
              (Int64.of_int (u32 x))
          in
          if y = 0 then set_reg m rd 0
          else set_reg m rd (Int64.to_int (Int64.div dividend (Int64.of_int y)))
      | Sparc_asm.Addcc ->
        fun () ->
          let x = get_reg m rs1 and y = ri_val m ri in
          let r = x + y in
          m.icc_z <- u32 r = 0;
          m.icc_n <- r land 0x80000000 <> 0;
          m.icc_v <- lnot (x lxor y) land (x lxor r) land 0x80000000 <> 0;
          m.icc_c <- u32 r < u32 x;
          set_reg m rd r
      | Sparc_asm.Subcc ->
        fun () ->
          let x = get_reg m rs1 and y = ri_val m ri in
          let r = x - y in
          set_icc_sub m x y r;
          set_reg m rd r)
  | Sparc_asm.Save (rd, rs1, ri) ->
    Some
      (fun () ->
        if m.depth >= nwindows - 2 then raise (Machine_error "register window overflow");
        let v = get_reg m rs1 + ri_val m ri in
        m.cwp <- (m.cwp - 1 + nwindows) mod nwindows;
        m.depth <- m.depth + 1;
        set_reg m rd v)
  | Sparc_asm.Restore (rd, rs1, ri) ->
    Some
      (fun () ->
        if m.depth <= 0 then raise (Machine_error "register window underflow");
        let v = get_reg m rs1 + ri_val m ri in
        m.cwp <- (m.cwp + 1) mod nwindows;
        m.depth <- m.depth - 1;
        set_reg m rd v)
  | Sparc_asm.Rdy rd -> Some (fun () -> set_reg m rd m.y)
  | Sparc_asm.Wry (rs1, ri) -> Some (fun () -> m.y <- u32 (get_reg m rs1 lxor ri_val m ri))
  | Sparc_asm.Ld (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        daccess m a;
        set_reg m rd (Mem.read_u32 m.mem a))
  | Sparc_asm.Ldsb (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        daccess m a;
        let v = Mem.read_u8 m.mem a in
        set_reg m rd (if v land 0x80 <> 0 then v - 0x100 else v))
  | Sparc_asm.Ldub (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        daccess m a;
        set_reg m rd (Mem.read_u8 m.mem a))
  | Sparc_asm.Ldsh (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        daccess m a;
        let v = Mem.read_u16 m.mem a in
        set_reg m rd (if v land 0x8000 <> 0 then v - 0x10000 else v))
  | Sparc_asm.Lduh (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        daccess m a;
        set_reg m rd (Mem.read_u16 m.mem a))
  | Sparc_asm.St (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        waccess m a;
        Mem.write_u32 m.mem a (u32 (get_reg m rd));
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | Sparc_asm.Stb (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        waccess m a;
        Mem.write_u8 m.mem a (get_reg m rd);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | Sparc_asm.Sth (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        waccess m a;
        Mem.write_u16 m.mem a (get_reg m rd);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | Sparc_asm.Ldf (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        daccess m a;
        m.fregs.(rd) <- Mem.read_u32 m.mem a)
  | Sparc_asm.Lddf (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        daccess m a;
        m.fregs.(rd) <- Mem.read_u32 m.mem a;
        m.fregs.(rd + 1) <- Mem.read_u32 m.mem (a + 4))
  | Sparc_asm.Stf (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        waccess m a;
        Mem.write_u32 m.mem a m.fregs.(rd);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | Sparc_asm.Stdf (rd, rs1, ri) ->
    Some
      (fun () ->
        let a = u32 (get_reg m rs1 + ri_val m ri) in
        waccess m a;
        Mem.write_u32 m.mem a m.fregs.(rd);
        Mem.write_u32 m.mem (a + 4) m.fregs.(rd + 1);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | Sparc_asm.Fpop (p, rd, rs1, rs2) ->
    Some
      (let open Sparc_asm in
       match p with
       | Fadds ->
         fun () ->
           m.cycles <- m.cycles + 1;
           set_single m rd (get_single m rs1 +. get_single m rs2)
       | Faddd ->
         fun () ->
           m.cycles <- m.cycles + 1;
           set_double m rd (get_double m rs1 +. get_double m rs2)
       | Fsubs ->
         fun () ->
           m.cycles <- m.cycles + 1;
           set_single m rd (get_single m rs1 -. get_single m rs2)
       | Fsubd ->
         fun () ->
           m.cycles <- m.cycles + 1;
           set_double m rd (get_double m rs1 -. get_double m rs2)
       | Fmuls ->
         fun () ->
           m.cycles <- m.cycles + 3;
           set_single m rd (get_single m rs1 *. get_single m rs2)
       | Fmuld ->
         fun () ->
           m.cycles <- m.cycles + 4;
           set_double m rd (get_double m rs1 *. get_double m rs2)
       | Fdivs ->
         fun () ->
           m.cycles <- m.cycles + 12;
           set_single m rd (get_single m rs1 /. get_single m rs2)
       | Fdivd ->
         fun () ->
           m.cycles <- m.cycles + 18;
           set_double m rd (get_double m rs1 /. get_double m rs2)
       | Fmovs -> fun () -> m.fregs.(rd) <- m.fregs.(rs2)
       | Fnegs -> fun () -> set_single m rd (-.get_single m rs2)
       | Fabss -> fun () -> set_single m rd (abs_float (get_single m rs2))
       | Fsqrts ->
         fun () ->
           m.cycles <- m.cycles + 13;
           set_single m rd (sqrt (get_single m rs2))
       | Fsqrtd ->
         fun () ->
           m.cycles <- m.cycles + 25;
           set_double m rd (sqrt (get_double m rs2))
       | Fitos -> fun () -> set_single m rd (float_of_int (sext32 m.fregs.(rs2)))
       | Fitod -> fun () -> set_double m rd (float_of_int (sext32 m.fregs.(rs2)))
       | Fstoi -> fun () -> m.fregs.(rd) <- u32 (int_of_float (Float.trunc (get_single m rs2)))
       | Fdtoi -> fun () -> m.fregs.(rd) <- u32 (int_of_float (Float.trunc (get_double m rs2)))
       | Fstod -> fun () -> set_double m rd (get_single m rs2)
       | Fdtos -> fun () -> set_single m rd (get_double m rs2))
  | Sparc_asm.Fcmps (rs1, rs2) ->
    Some
      (fun () ->
        let a = get_single m rs1 and b = get_single m rs2 in
        m.fcc <- (if a = b then 0 else if a < b then 1 else 2))
  | Sparc_asm.Fcmpd (rs1, rs2) ->
    Some
      (fun () ->
        let a = get_double m rs1 and b = get_double m rs2 in
        m.fcc <- (if a = b then 0 else if a < b then 1 else 2))
  | Sparc_asm.Bicc _ | Sparc_asm.Fbfcc _ | Sparc_asm.Call _ | Sparc_asm.Jmpl _ -> None

(* Compiled closure for a block *terminator* at address [pc]: leaves
   the control-transfer target in [m.btarget] (fallthrough [pc + 8] for
   an untaken branch) — exactly the interpreter's btarget discipline.
   The delay-slot action runs next and the block commit moves btarget
   into pc. *)
let term_of m pc (insn : Sparc_asm.t) : (unit -> unit) option =
  let ft = pc + 8 in
  match insn with
  | Sparc_asm.Bicc (c, disp) ->
    let tk = pc + (4 * disp) in
    Some
      (let open Sparc_asm in
       match c with
       | BA -> fun () -> m.btarget <- tk
       | BN -> fun () -> m.btarget <- ft
       | BNE -> fun () -> m.btarget <- (if not m.icc_z then tk else ft)
       | BE -> fun () -> m.btarget <- (if m.icc_z then tk else ft)
       | BG -> fun () -> m.btarget <- (if not (m.icc_z || m.icc_n <> m.icc_v) then tk else ft)
       | BLE -> fun () -> m.btarget <- (if m.icc_z || m.icc_n <> m.icc_v then tk else ft)
       | BGE -> fun () -> m.btarget <- (if m.icc_n = m.icc_v then tk else ft)
       | BL -> fun () -> m.btarget <- (if m.icc_n <> m.icc_v then tk else ft)
       | BGU -> fun () -> m.btarget <- (if (not m.icc_c) && not m.icc_z then tk else ft)
       | BLEU -> fun () -> m.btarget <- (if m.icc_c || m.icc_z then tk else ft)
       | BCC -> fun () -> m.btarget <- (if not m.icc_c then tk else ft)
       | BCS -> fun () -> m.btarget <- (if m.icc_c then tk else ft)
       | BPOS -> fun () -> m.btarget <- (if not m.icc_n then tk else ft)
       | BNEG -> fun () -> m.btarget <- (if m.icc_n then tk else ft))
  | Sparc_asm.Fbfcc (c, disp) ->
    let tk = pc + (4 * disp) in
    Some
      (let open Sparc_asm in
       match c with
       | FBE -> fun () -> m.btarget <- (if m.fcc = 0 then tk else ft)
       | FBNE -> fun () -> m.btarget <- (if m.fcc <> 0 then tk else ft)
       | FBL -> fun () -> m.btarget <- (if m.fcc = 1 then tk else ft)
       | FBG -> fun () -> m.btarget <- (if m.fcc = 2 then tk else ft)
       | FBLE -> fun () -> m.btarget <- (if m.fcc = 0 || m.fcc = 1 then tk else ft)
       | FBGE -> fun () -> m.btarget <- (if m.fcc = 0 || m.fcc = 2 then tk else ft))
  | Sparc_asm.Call disp ->
    let tk = pc + (4 * disp) in
    Some
      (fun () ->
        set_reg m 15 pc;
        m.btarget <- tk)
  | Sparc_asm.Jmpl (rd, rs1, ri) ->
    Some
      (fun () ->
        set_reg m rd pc;
        m.btarget <- u32 (get_reg m rs1 + ri_val m ri))
  | _ -> None

(* instructions allowed before the terminator + delay-slot pair within
   the [Block_cache.max_insns] cap *)
let max_body = Block_cache.max_insns - 2

(* Only closures for these instructions can raise: a memory fault from
   a load/store, a window spill/fill from Save/Restore, or
   [Block_cache.Retired] from a store that invalidated a resident
   block.  Everything else [act_of] compiles is pure OCaml arithmetic
   that cannot raise (the division arms are zero-guarded), and SPARC
   terminators only write [m.btarget], so the per-instruction
   [m.blk_i] bookkeeping is baked in at compile time for can-raise
   instructions alone and elided everywhere else. *)
let act_raises (insn : Sparc_asm.t) : bool =
  match insn with
  | Sparc_asm.Save _ | Sparc_asm.Restore _
  | Sparc_asm.Ld _ | Sparc_asm.Ldsb _ | Sparc_asm.Ldub _ | Sparc_asm.Ldsh _ | Sparc_asm.Lduh _
  | Sparc_asm.St _ | Sparc_asm.Stb _ | Sparc_asm.Sth _
  | Sparc_asm.Ldf _ | Sparc_asm.Lddf _ | Sparc_asm.Stf _ | Sparc_asm.Stdf _ -> true
  | _ -> false

(* Fuse a list of action closures into one, sequencing by direct calls
   in chunks of four: one chunk-closure entry per four instructions
   instead of a per-instruction array load and loop-counter update.
   Exceptions propagate out of the fused closure unchanged. *)
let rec seq (cs : (unit -> unit) list) : unit -> unit =
  match cs with
  | [] -> fun () -> ()
  | [ a ] -> a
  | [ a; b ] -> fun () -> a (); b ()
  | [ a; b; c ] -> fun () -> a (); b (); c ()
  | [ a; b; c; d ] -> fun () -> a (); b (); c (); d ()
  | a :: b :: c :: d :: rest ->
    let r = seq rest in
    fun () -> a (); b (); c (); d (); r ()

(* Scan the straight-line run entered at [entry]: body instructions up
   to the first control transfer (collected together with its delay
   slot), a non-compilable instruction (an illegal word, unmapped
   memory — left for the interpreter to trap on), or the length cap.
   Returns the per-instruction (can-raise, action) list and whether it
   ends in a terminator + delay-slot pair; [None] if not even one
   instruction compiles.  Shared by the superblock and region
   compilers. *)
let scan_run m entry =
  let fetch_opt pc =
    match fetch m pc with
    | i -> Some i
    | exception (Machine_error _ | Mem.Fault _) -> None
  in
  let body = ref [] and nbody = ref 0 in
  let fin = ref None in
  let stop = ref false in
  let pc = ref entry in
  while (not !stop) && !nbody < max_body do
    match fetch_opt !pc with
    | None -> stop := true
    | Some insn -> (
      match act_of m insn with
      | Some a ->
        body := (act_raises insn, a) :: !body;
        incr nbody;
        pc := !pc + 4
      | None -> (
        stop := true;
        match term_of m !pc insn with
        | None -> ()
        | Some t -> (
          (* the delay slot must itself be a plain body instruction *)
          match fetch_opt (!pc + 4) with
          | None -> ()
          | Some d -> (
            match act_of m d with
            | None -> ()
            | Some da -> fin := Some (t, act_raises d, da)))))
  done;
  let tail, has_delay =
    match !fin with
    | Some (t, dr, da) -> ([ (false, t); (dr, da) ], true)
    | None -> ([], false)
  in
  match List.rev_append !body tail with
  | [] -> None
  | all -> Some (all, has_delay)

(* Compile the straight-line run entered at [entry] into a superblock.

   Timing is baked into the closures: the instruction that starts a new
   icache line carries the registerized probe (a later same-line fetch
   is a guaranteed hit — a block spans at most 256 consecutive bytes,
   far below the icache size, so it cannot evict its own lines, and a
   guaranteed hit is a no-op under bulk hit reconciliation).  Capturing
   the tag array here is safe because [Cache.flush] clears it in
   place. *)
let compile_block m entry =
  let tags, shift, mask = Cache.probe m.icache in
  match scan_run m entry with
  | None -> None
  | Some (all, has_delay) ->
    let n = List.length all in
    let wrap i (raises, act) =
      let addr = entry + (4 * i) in
      let line = addr lsr shift in
      let boundary = i = 0 || line <> (addr - 4) lsr shift in
      if boundary then begin
        let idx = line land mask in
        if raises then
          fun () ->
            m.blk_i <- i;
            if Array.unsafe_get tags idx <> line then begin
              let p = Cache.access_uncounted m.icache addr in
              if p <> 0 then m.cycles <- m.cycles + p
            end;
            act ()
        else
          fun () ->
            if Array.unsafe_get tags idx <> line then begin
              let p = Cache.access_uncounted m.icache addr in
              if p <> 0 then m.cycles <- m.cycles + p
            end;
            act ()
      end
      else if raises then
        fun () ->
          m.blk_i <- i;
          act ()
      else act
    in
    (* traced runs re-bind [wrap] so each closure records its issue
       before acting (issue order = the interpreter's retire stream);
       untraced compilation keeps the exact closures above *)
    let wrap =
      if not (Trace.is_enabled m.tr) then wrap
      else
        fun i ra ->
          let f = wrap i ra in
          let addr = entry + (4 * i) in
          fun () ->
            Trace.retire m.tr addr;
            f ()
    in
    (* the commit is one more cannot-raise action fused onto the end:
       if anything earlier raises, it never runs, and the fixup
       handlers in [exec_chain] account the partial run instead *)
    let commit =
      if has_delay then
        fun () ->
          m.insns <- m.insns + n;
          let t = m.btarget in
          m.pc <- t;
          m.npc <- t + 4
      else begin
        let ft = entry + (4 * n) in
        fun () ->
          m.insns <- m.insns + n;
          m.pc <- ft;
          m.npc <- ft + 4
      end
    in
    Some { entry; n; run = seq (List.mapi wrap all @ [ commit ]); has_delay }

(* Execute [b] (preconditions: [b.n <= fuel], [m.npc = b.entry + 4]),
   then chain directly into the next resident block while fuel lasts.
   Returns the remaining fuel; the three exits (clean commit, [Retired]
   store-abort, fault) leave exactly the state the interpreter would —
   see the MIPS twin of this function for the case analysis. *)
let rec exec_chain m (b : block) fuel =
  Trace.mark m.tr Trace.Block_enter b.entry;
  if Sim_probe.enabled m.probe then begin
    Sim_probe.block_exec m.probe ~entry:b.entry;
    Block_cache.note_exec m.bc b.entry
  end;
  Block_cache.begin_block m.bc;
  match b.run () with
  | () ->
    let fuel = fuel - b.n in
    if m.pc = halt_addr then fuel
    else if m.pc = b.entry && b.n <= fuel then
      (* self-loop fast path: a clean exit means no resident block was
         invalidated, so [b] is certainly still cached for [entry] *)
      exec_chain m b fuel
    else (
      match Block_cache.find m.bc m.pc with
      | Some nb when nb.n <= fuel -> exec_chain m nb fuel
      | _ -> fuel)
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:b.entry ~i;
    if b.has_delay && i = b.n - 1 then begin
      let t = m.btarget in
      m.pc <- t;
      m.npc <- t + 4
    end
    else begin
      let a = b.entry + (4 * i) in
      m.pc <- a + 4;
      m.npc <- a + 8
    end;
    fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = b.entry + (4 * i) in
    m.pc <- a;
    m.npc <- (if b.has_delay && i = b.n - 1 then m.btarget else a + 4);
    raise e

(* ------------------------------------------------------------------ *)
(* Tier-3 regions: identical machinery to the MIPS twin (SPARC shares
   the delay-slot/branch-scratch block shape), with the shared
   commentary living there and in {!Vmachine.Region_cache}. *)

let compile_region m entry =
  let tags, shift, mask = Cache.probe m.icache in
  let rec collect pc first_len acc nblocks =
    match scan_run m pc with
    | None -> List.rev acc
    | Some (all, has_delay) ->
      let n = List.length all in
      let acc = (pc, all, has_delay, n) :: acc in
      let nblocks = nblocks + 1 in
      let succ =
        if has_delay then Region_cache.dominant_succ m.rc pc
        else Some (pc + (4 * n))
      in
      (match succ with
      | Some s when s land 3 = 0 && s > 0 ->
        if s = entry then begin
          let fl = match first_len with None -> nblocks | Some f -> f in
          if
            nblocks + fl <= Region_cache.max_blocks
            && nblocks < Region_cache.max_unroll * fl
          then collect s (Some fl) acc nblocks
          else List.rev acc
        end
        else if nblocks < Region_cache.max_blocks then collect s first_len acc nblocks
        else List.rev acc
      | _ -> List.rev acc)
  in
  match collect entry None [] 0 with
  | [] | [ _ ] -> None (* a single block gains nothing over tier 2 *)
  | blks ->
    let blks = Array.of_list blks in
    let nb = Array.length blks in
    let r_n = Array.fold_left (fun a (_, _, _, n) -> a + n) 0 blks in
    let spans = Array.map (fun (p, _, _, n) -> (p, 4 * n)) blks in
    let addrs = Array.make r_n 0 in
    let delay = Array.make r_n false in
    let traced = Trace.is_enabled m.tr in
    (* Unconditional direct transfers (ba, call) pin btarget
       statically: a guard matching the trace successor can never
       fire and is omitted (see the MIPS twin for the rationale). *)
    let static_jump_target p n =
      let tpc = p + (4 * (n - 2)) in
      match fetch m tpc with
      | Sparc_asm.Bicc (Sparc_asm.BA, disp) | Sparc_asm.Call disp ->
        Some (tpc + (4 * disp))
      | _ -> None
      | exception (Machine_error _ | Mem.Fault _) -> None
    in
    (* [elide] drops delay-slot nops from the fast pass — they retire
       nothing architectural and the fast pass neither probes nor
       traces nor counts per-insn (see the MIPS twin). *)
    let probed = ref [] and fastc = ref [] in
    let push_insn i addr raises act boundary elide =
      let line = addr lsr shift in
      let idx = line land mask in
      let pr =
        if boundary then
          if raises then
            fun () ->
              m.blk_i <- i;
              if Array.unsafe_get tags idx <> line then begin
                let p = Cache.access_uncounted m.icache addr in
                if p <> 0 then m.cycles <- m.cycles + p
              end;
              act ()
          else
            fun () ->
              if Array.unsafe_get tags idx <> line then begin
                let p = Cache.access_uncounted m.icache addr in
                if p <> 0 then m.cycles <- m.cycles + p
              end;
              act ()
        else if raises then
          fun () ->
            m.blk_i <- i;
            act ()
        else act
      in
      let fa =
        if raises then
          fun () ->
            m.blk_i <- i;
            act ()
        else act
      in
      let pr, fa =
        if not traced then (pr, fa)
        else
          ( (fun () -> Trace.retire m.tr addr; pr ()),
            fun () -> Trace.retire m.tr addr; fa () )
      in
      probed := pr :: !probed;
      if not elide then fastc := fa :: !fastc
    in
    let k = ref 0 in
    let prev_line = ref min_int in
    Array.iteri
      (fun bi (p, all, has_delay, n) ->
        List.iteri
          (fun j (raises, act) ->
            let i = !k in
            let addr = p + (4 * j) in
            addrs.(i) <- addr;
            if has_delay && j = n - 1 then delay.(i) <- true;
            let line = addr lsr shift in
            let elide =
              (not traced) && (not raises)
              && (match fetch m addr with
                 | Sparc_asm.Nop -> true
                 | _ -> false
                 | exception (Machine_error _ | Mem.Fault _) -> false)
            in
            push_insn i addr raises act (line <> !prev_line) elide;
            prev_line := line;
            incr k)
          all;
        if bi < nb - 1 && has_delay then begin
          let expected = (fun (p, _, _, _) -> p) blks.(bi + 1) in
          match static_jump_target p n with
          | Some t when t = expected -> () (* guard provably never fires *)
          | _ ->
            let kk = !k in
            let g () =
              if m.btarget <> expected then raise (Region_cache.Side_exit kk)
            in
            probed := g :: !probed;
            fastc := g :: !fastc
        end)
      blks;
    let commit =
      let p_last, _, last_delay, n_last = blks.(nb - 1) in
      if last_delay then
        fun () ->
          m.insns <- m.insns + r_n;
          let t = m.btarget in
          m.pc <- t;
          m.npc <- t + 4
      else begin
        let ft = p_last + (4 * n_last) in
        fun () ->
          m.insns <- m.insns + r_n;
          m.pc <- ft;
          m.npc <- ft + 4
      end
    in
    let r_run = seq (List.rev (commit :: !probed)) in
    (* fast-pass tail: deferred commit via [Loop_exit] (see the MIPS
       twin for the full commentary) *)
    let fast_tail =
      let _, _, last_delay, _ = blks.(nb - 1) in
      if last_delay then
        (fun () ->
          m.insns <- m.insns + r_n;
          if m.btarget <> entry then raise Region_cache.Loop_exit)
      else commit
    in
    let lines =
      List.sort_uniq compare (Array.to_list (Array.map (fun a -> a lsr shift) addrs))
    in
    let fast_ok =
      List.length (List.sort_uniq compare (List.map (fun l -> l land mask) lines))
      = List.length lines
    in
    let r_fast = if fast_ok then seq (List.rev (fast_tail :: !fastc)) else r_run in
    Some { r_entry = entry; r_n; r_spans = spans; r_run; r_fast; r_addrs = addrs;
           r_delay = delay }

(* latency-instrumented entry points: the stopwatch brackets the whole
   scan/trace-follow + closure compile + cache insert, feeding the
   bc.compile_ns / rc.promote_ns distributions (no clock read when the
   sink is disabled) *)
let compile_block_timed m entry =
  let t0 = Block_cache.compile_start m.bc in
  let r = compile_block m entry in
  Block_cache.compile_done m.bc t0;
  r

let promote m entry =
  let t0 = Region_cache.promote_start m.rc in
  (match compile_region m entry with
  | Some r -> Region_cache.set m.rc entry ~insns:r.r_n r
  | None -> Region_cache.mark_unpromotable m.rc entry);
  Region_cache.promote_done m.rc t0

let exec_region m (r : region) fuel0 =
  Trace.mark m.tr Trace.Block_enter r.r_entry;
  if Sim_probe.enabled m.probe then Sim_probe.region_exec m.probe ~entry:r.r_entry;
  Block_cache.begin_block m.bc;
  let fuel = ref fuel0 in
  match
    r.r_run ();
    fuel := !fuel - r.r_n;
    let entry = r.r_entry and rn = r.r_n and fast = r.r_fast in
    while m.pc = entry && rn <= !fuel do
      fast ();
      fuel := !fuel - rn
    done
  with
  | () -> !fuel
  | exception Region_cache.Loop_exit ->
    (* the raising fast pass ran to completion and credited itself;
       perform its deferred commit *)
    let t = m.btarget in
    m.pc <- t;
    m.npc <- t + 4;
    !fuel - r.r_n
  | exception Region_cache.Side_exit k ->
    m.insns <- m.insns + k;
    Sim_probe.side_exit m.probe ~entry:r.r_entry ~i:k;
    let t = m.btarget in
    m.pc <- t;
    m.npc <- t + 4;
    !fuel - k
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:r.r_entry ~i;
    if r.r_delay.(i) then begin
      let t = m.btarget in
      m.pc <- t;
      m.npc <- t + 4
    end
    else begin
      let a = r.r_addrs.(i) in
      m.pc <- a + 4;
      m.npc <- a + 8
    end;
    !fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = r.r_addrs.(i) in
    m.pc <- a;
    m.npc <- (if r.r_delay.(i) then m.btarget else a + 4);
    raise e

(* [exec_chain] for regions mode: identical block chaining plus the
   tier-3 hooks — per-dispatch hotness counting (promoting on the
   threshold crossing), successor-edge profiling after each clean
   commit, and chaining into a resident region when one exists at the
   next pc. *)
let rec exec_chain_r m (b : block) fuel =
  Trace.mark m.tr Trace.Block_enter b.entry;
  if Sim_probe.enabled m.probe then begin
    Sim_probe.block_exec m.probe ~entry:b.entry;
    Block_cache.note_exec m.bc b.entry
  end;
  if Region_cache.note_dispatch m.rc b.entry then promote m b.entry;
  Block_cache.begin_block m.bc;
  match b.run () with
  | () ->
    let fuel = fuel - b.n in
    if m.pc = halt_addr then fuel
    else begin
      Region_cache.note_succ m.rc b.entry m.pc;
      match Region_cache.find m.rc m.pc with
      | Some r when r.r_n <= fuel -> exec_region m r fuel
      | _ ->
        if m.pc = b.entry && b.n <= fuel then exec_chain_r m b fuel
        else (
          match Block_cache.find m.bc m.pc with
          | Some nb when nb.n <= fuel -> exec_chain_r m nb fuel
          | _ -> fuel)
    end
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:b.entry ~i;
    if b.has_delay && i = b.n - 1 then begin
      let t = m.btarget in
      m.pc <- t;
      m.npc <- t + 4
    end
    else begin
      let a = b.entry + (4 * i) in
      m.pc <- a + 4;
      m.npc <- a + 8
    end;
    fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = b.entry + (4 * i) in
    m.pc <- a;
    m.npc <- (if b.has_delay && i = b.n - 1 then m.btarget else a + 4);
    raise e

let default_fuel = 200_000_000

(* Tight tail-recursive loop: the fuel check is a register countdown
   rather than a per-step ref increment/compare. *)
(* single-step with exact cycle accounting (the public interface) *)
let step m =
  let mi0 = Cache.misses m.icache in
  (let p = Cache.access_uncounted m.icache m.pc in
   if p <> 0 then m.cycles <- m.cycles + p);
  Trace.retire m.tr m.pc;
  step_inner m m.pc;
  m.cycles <- m.cycles + 1;
  Cache.add_hits m.icache (1 - (Cache.misses m.icache - mi0))

(* [step_inner] defers the 1-cycle-per-instruction component of the
   accounting to its caller; [run] adds it in bulk at exit from the
   instruction-count delta, so the hot loop carries one counter update
   less per step.  Totals are exact whenever [run] returns or raises. *)
(* The icache tag probe is inlined here with its geometry held in
   parameters (registers), falling back to the full model only on a
   miss; [run] reconciles the hit counter at exit from the retired-
   instruction delta, since a fetch loop performs exactly one icache
   access per retired instruction. *)
let rec run_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    let line = pc lsr shift in
    if Array.unsafe_get tags (line land mask) <> line then
      (let p = Cache.access_uncounted m.icache pc in
       if p <> 0 then m.cycles <- m.cycles + p);
    Trace.retire m.tr pc;
    step_inner m pc;
    run_go m tags shift mask (fuel - 1)
  end

(* one interpreted instruction inside the block-dispatch loop: the
   registerized icache probe of [run_go], then [step_inner] *)
let[@inline] step_one m tags shift mask =
  let pc = m.pc in
  let line = pc lsr shift in
  if Array.unsafe_get tags (line land mask) <> line then
    (let p = Cache.access_uncounted m.icache pc in
     if p <> 0 then m.cycles <- m.cycles + p);
  Trace.retire m.tr pc;
  step_inner m pc

(* Block-dispatch run loop: resident block -> [exec_chain]; no block
   yet -> compile, cache, retry; uncompilable entry / insufficient fuel
   for a whole block / delay-slot entry (npc off the straight line,
   e.g. after a public [step]) -> one interpreted instruction. *)
let rec run_blocks_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    if m.npc = pc + 4 then (
      match Block_cache.find m.bc pc with
      | Some b when b.n <= fuel ->
        let fuel = exec_chain m b fuel in
        Sim_probe.chain_flush m.probe;
        run_blocks_go m tags shift mask fuel
      | Some _ ->
        step_one m tags shift mask;
        run_blocks_go m tags shift mask (fuel - 1)
      | None -> (
        match compile_block_timed m pc with
        | Some b ->
          Block_cache.set m.bc pc b;
          run_blocks_go m tags shift mask fuel
        | None ->
          step_one m tags shift mask;
          run_blocks_go m tags shift mask (fuel - 1)))
    else begin
      step_one m tags shift mask;
      run_blocks_go m tags shift mask (fuel - 1)
    end
  end

(* Region-dispatch run loop: [run_blocks_go] with a region probe ahead
   of the block probe, and chaining through [exec_chain_r] so hotness
   and successor profiles accumulate.  Fuel discipline is unchanged —
   a region pass only runs when it fits whole, and when it does not,
   dispatch falls through to the identical block/interpreter ladder. *)
let rec run_regions_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    if m.npc = pc + 4 then (
      match Region_cache.find m.rc pc with
      | Some r when r.r_n <= fuel ->
        let fuel = exec_region m r fuel in
        Sim_probe.chain_flush m.probe;
        run_regions_go m tags shift mask fuel
      | _ -> (
        match Block_cache.find m.bc pc with
        | Some b when b.n <= fuel ->
          let fuel = exec_chain_r m b fuel in
          Sim_probe.chain_flush m.probe;
          run_regions_go m tags shift mask fuel
        | Some _ ->
          step_one m tags shift mask;
          run_regions_go m tags shift mask (fuel - 1)
        | None -> (
          match compile_block_timed m pc with
          | Some b ->
            Block_cache.set m.bc pc b;
            run_regions_go m tags shift mask fuel
          | None ->
            step_one m tags shift mask;
            run_regions_go m tags shift mask (fuel - 1))))
    else begin
      step_one m tags shift mask;
      run_regions_go m tags shift mask (fuel - 1)
    end
  end

let run ?(fuel = default_fuel) m =
  let i0 = m.insns in
  let mi0 = Cache.misses m.icache in
  let t0 = Sim_probe.run_start m.probe in
  let finish () =
    let retired = m.insns - i0 in
    m.cycles <- m.cycles + retired;
    Cache.add_hits m.icache (retired - (Cache.misses m.icache - mi0));
    Sim_probe.chain_flush m.probe;
    Sim_probe.retired m.probe retired;
    Sim_probe.run_done m.probe t0
  in
  let tags, shift, mask = Cache.probe m.icache in
  (try
     if m.regions then run_regions_go m tags shift mask fuel
     else if m.blocks then run_blocks_go m tags shift mask fuel
     else run_go m tags shift mask fuel
   with e ->
     finish ();
     Sim_probe.fault m.probe ~pc:m.pc;
     raise e);
  finish ()

(* ------------------------------------------------------------------ *)
(* Harness: the VCODE SPARC convention — first six word-class args in
   %o0-%o5, floats/doubles and further args on the stack at sp+92;
   doubles take an 8-aligned pair of slots.                            *)

type arg = Int of int | Single of float | Double of float

let arg_bias = 92 (* window save (64) + hidden (4) + o0-o5 home (24) *)

let place_args m ~sp args =
  let slot = ref 0 in
  List.iter
    (fun a ->
      match a with
      | Int v ->
        let s = !slot in
        if s < 6 then set_reg m (8 + s) v
        else Mem.write_u32 m.mem (sp + arg_bias + (4 * s)) (u32 v);
        incr slot
      | Single v ->
        let s = !slot in
        Mem.write_u32 m.mem (sp + arg_bias + (4 * s))
          (Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF);
        incr slot
      | Double v ->
        if (!slot + (arg_bias / 4)) land 1 = 1 then incr slot;
        let s = !slot in
        Mem.write_u64 m.mem (sp + arg_bias + (4 * s)) (Int64.bits_of_float v);
        slot := s + 2)
    args

let call ?fuel m ~entry args =
  let sp = m.stack_top land lnot 7 in
  set_reg m 14 sp; (* %sp = %o6 *)
  set_reg m 15 (halt_addr - 8); (* %o7: ret = jmpl %i7+8 *)
  place_args m ~sp args;
  m.pc <- entry;
  m.npc <- entry + 4;
  run ?fuel m

let ret_int m = get_reg m 8 (* %o0 after the callee's restore *)
let ret_single m = get_single m 0
let ret_double m = get_double m 0

let reset_stats m =
  m.cycles <- 0;
  m.insns <- 0;
  Cache.reset_stats m.icache;
  Cache.reset_stats m.dcache

(* Models v_end's icache invalidation: drop both the timing caches and
   every predecoded instruction.  (The predecode drop is belt-and-braces
   — the write watcher already keeps it coherent — and costs nothing on
   the simulated clock.) *)
let flush_caches m =
  Cache.flush m.icache;
  Cache.flush m.dcache;
  Decode_cache.clear m.pdc;
  Block_cache.clear m.bc;
  Region_cache.clear m.rc
