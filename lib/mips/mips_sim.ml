(* MIPS-I simulator.

   Executes the binary code emitted by the VCODE MIPS port.  This is the
   execution substrate that replaces the paper's DECstation hardware: a
   little-endian R2000/R3000-style core with one branch delay slot, one
   load delay cycle, HI/LO multiply/divide results, 32 single-precision
   FP registers paired for doubles, and direct-mapped I/D caches with
   configurable miss penalties (see {!Vmachine.Mconfig}).

   Register values are OCaml ints holding sign-extended 32-bit values;
   every write goes through [sext32] so the invariant is maintained.
   Cycle accounting: 1 cycle per issued instruction, plus cache miss
   penalties, plus multi-cycle costs for mult/div and FP ops (rough R3000
   latencies). *)

open Vmachine

let halt_addr = 0x10000000 (* outside simulated memory: return-to-host *)

exception Machine_error of string

type t = {
  mem : Mem.t;
  icache : Cache.t;
  dcache : Cache.t;
  pdc : Mips_asm.t Decode_cache.t; (* host-side predecode; no cycle effect *)
  predecode : bool;
  bc : block Block_cache.t; (* superblock translation cache; no cycle effect *)
  blocks : bool;
  rc : region Region_cache.t; (* tier-3 region cache; no cycle effect *)
  regions : bool;
  probe : Sim_probe.t;      (* shared telemetry probe; never touches timing *)
  tr : Trace.t;             (* execution trace; the disabled sink is scratch *)
  cfg : Mconfig.t;
  regs : int array;   (* 32, sign-extended 32-bit *)
  fregs : int array;  (* 32, raw 32-bit patterns; doubles use even pairs *)
  mutable hi : int;
  mutable lo : int;
  mutable fcc : bool;
  mutable pc : int;
  mutable npc : int;
  mutable btarget : int; (* branch-target scratch for [step]; avoids a per-step ref *)
  mutable blk_i : int; (* index of the block instruction in flight; abort-fixup scratch *)
  mutable cycles : int;
  mutable insns : int;
  mutable stack_top : int;
}

(* A compiled straight-line run: one closure per instruction, ending at
   the first control transfer (compiled in, together with its delay
   slot) or the [Block_cache.max_insns] cap. *)
and block = {
  entry : int;          (* code address of the first instruction *)
  n : int;              (* instruction count, terminator + delay slot included *)
  run : unit -> unit;   (* the whole straight-line run fused into one closure:
                           per-instruction icache probes, [blk_i] updates and
                           the final pc/npc/insns commit are baked in at
                           compile time *)
  has_delay : bool;     (* ends in branch + delay slot (vs. capped fallthrough) *)
}

(* A tier-3 region: a hot block plus its dominant direct-chained
   successors fused into one closure per pass, with interior branches
   specialized to their dominant direction (a mismatch raises
   [Region_cache.Side_exit]) and the final block committing pc/npc
   generically.  [r_fast] is the probe-free pass used after the first
   ([r_run]) pass of a self-looping region has installed every icache
   line; it equals [r_run] when two region lines conflict in the
   direct-mapped icache. *)
and region = {
  r_entry : int;
  r_n : int;                   (* instructions retired per full pass *)
  r_spans : (int * int) array; (* constituent-block (addr, bytes) *)
  r_run : unit -> unit;        (* one pass, icache probes included *)
  r_fast : unit -> unit;       (* one pass, probes elided *)
  r_addrs : int array;         (* region insn index -> code address *)
  r_delay : bool array;        (* index is its block's delay slot *)
}

let create ?(predecode = true) ?(blocks = true) ?(regions = false)
    ?(telemetry = Telemetry.disabled) ?(trace = Trace.disabled) (cfg : Mconfig.t) =
  let mem = Mem.create ~big_endian:false ~size:cfg.mem_bytes () in
  let pdc =
    Decode_cache.create ~tel:telemetry ~trace ~name:"mips.pdc" ~mem_bytes:cfg.mem_bytes ()
  in
  let bc = Block_cache.create ~tel:telemetry ~trace ~name:"mips.bc" ~mem_bytes:cfg.mem_bytes
      ~len_bytes:(fun b -> 4 * b.n) () in
  let rc = Region_cache.create ~tel:telemetry ~name:"mips.rc" ~mem_bytes:cfg.mem_bytes
      ~spans:(fun r -> r.r_spans) () in
  ignore (Mem.add_write_watcher mem (Decode_cache.invalidate pdc) : Mem.watcher);
  ignore (Mem.add_write_watcher mem (Block_cache.invalidate bc) : Mem.watcher);
  (* A dropped region must abort a running pass even when the
     overwritten constituent block is no longer bc-resident (so the
     Block_cache watcher above dropped nothing): raise bc's dirty flag
     unconditionally and let the shared store closures raise Retired. *)
  if regions then
    ignore
      (Mem.add_write_watcher mem (fun addr len ->
           if Region_cache.invalidate rc addr len then Block_cache.mark_dirty bc)
        : Mem.watcher);
  {
    mem;
    pdc;
    predecode;
    bc;
    blocks;
    rc;
    regions;
    probe = Sim_probe.create ~trace telemetry ~port:"mips" ~predecode ~blocks ~regions;
    tr = trace;
    icache = Cache.create ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.imiss_penalty;
    dcache = Cache.create ~size_bytes:cfg.dcache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.dmiss_penalty;
    cfg;
    regs = Array.make 32 0;
    fregs = Array.make 32 0;
    hi = 0;
    lo = 0;
    fcc = false;
    pc = 0;
    npc = 4;
    btarget = 0;
    blk_i = 0;
    cycles = 0;
    insns = 0;
    stack_top = cfg.mem_bytes - 256;
  }

(* branchless sign-extension from bit 31 (OCaml ints are 63-bit, so the
   shift pair drops bits 32+ and replicates bit 31 upward) *)
let[@inline] sext32 v = (v lsl 31) asr 31

let u32 v = v land 0xFFFFFFFF

(* register numbers come out of [Mips_asm.decode] masked to 5 bits, so
   the array bounds check is dead weight on the per-step path *)
let[@inline] set_reg m r v = if r <> 0 then Array.unsafe_set m.regs r (sext32 v)
let[@inline] rget m n = Array.unsafe_get m.regs n

(* Doubles live in even/odd pairs, low word in the even register
   (little-endian pairing). *)
let get_double m f =
  let lo = m.fregs.(f) land 0xFFFFFFFF and hi = m.fregs.(f + 1) land 0xFFFFFFFF in
  Int64.float_of_bits
    (Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))

let set_double m f v =
  let bits = Int64.bits_of_float v in
  m.fregs.(f) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
  m.fregs.(f + 1) <- Int64.to_int (Int64.logand (Int64.shift_right_logical bits 32) 0xFFFFFFFFL)

let get_single m f = Int32.float_of_bits (Int32.of_int m.fregs.(f))
let set_single m f v = m.fregs.(f) <- Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF

let get_fmt m fmt f =
  match fmt with
  | Mips_asm.FS -> get_single m f
  | Mips_asm.FD -> get_double m f
  | Mips_asm.FW -> float_of_int (sext32 m.fregs.(f))

let set_fmt m fmt f v =
  match fmt with
  | Mips_asm.FS -> set_single m f v
  | Mips_asm.FD -> set_double m f v
  | Mips_asm.FW -> m.fregs.(f) <- u32 (int_of_float v)

let[@inline] daccess m addr =
  let p = Cache.access m.dcache addr in
  if p <> 0 then m.cycles <- m.cycles + p
(* write-through: always 0 penalty, but the hit/miss stats must tick *)
let[@inline] waccess m addr = ignore (Cache.write_access m.dcache addr : int)

(* Decode the word at [pc], consulting the predecode cache first.  The
   miss path preserves the uncached fault behaviour exactly (Mem.Fault
   on a wild or misaligned pc, Machine_error on an illegal word). *)
let fetch m pc =
  match Decode_cache.find m.pdc pc with
  | Some i -> i
  | None ->
    let w = Mem.read_u32 m.mem pc in
    let insn = try Mips_asm.decode w with Mips_asm.Bad_insn _ ->
      raise (Machine_error (Printf.sprintf "illegal instruction 0x%08x at 0x%x" w pc))
    in
    if m.predecode then Decode_cache.set m.pdc pc insn;
    insn

let[@inline] branch m pc off taken =
  if taken then m.btarget <- pc + 4 + (4 * off)

(* Execute one instruction.  Returns unit; updates pc/npc.
   The caller is responsible for the icache timing access on [m.pc]
   (see [run_go]/[step]): doing it in the small run loop rather than in
   this large function keeps its register pressure out of every arm. *)
let step_inner m pc =
  m.insns <- m.insns + 1;
  let insn = fetch m pc in
  let next = m.npc in
  m.btarget <- next + 4;
  (match insn with
  | Nop -> ()
  | Sll (rd, rt, sh) -> set_reg m rd (rget m rt lsl sh)
  | Srl (rd, rt, sh) -> set_reg m rd (u32 (rget m rt) lsr sh)
  | Sra (rd, rt, sh) -> set_reg m rd (rget m rt asr sh)
  | Sllv (rd, rt, rs) -> set_reg m rd (rget m rt lsl (rget m rs land 31))
  | Srlv (rd, rt, rs) -> set_reg m rd (u32 (rget m rt) lsr (rget m rs land 31))
  | Srav (rd, rt, rs) -> set_reg m rd (rget m rt asr (rget m rs land 31))
  | Jr rs -> m.btarget <- u32 (rget m rs)
  | Jalr (rd, rs) ->
    set_reg m rd (pc + 8);
    m.btarget <- u32 (rget m rs)
  | Mfhi rd -> set_reg m rd m.hi
  | Mflo rd -> set_reg m rd m.lo
  | Mult (rs, rt) ->
    m.cycles <- m.cycles + 11;
    let p = Int64.mul (Int64.of_int (rget m rs)) (Int64.of_int (rget m rt)) in
    m.lo <- sext32 (Int64.to_int (Int64.logand p 0xFFFFFFFFL));
    m.hi <- sext32 (Int64.to_int (Int64.logand (Int64.shift_right_logical p 32) 0xFFFFFFFFL))
  | Multu (rs, rt) ->
    m.cycles <- m.cycles + 11;
    let p = Int64.mul (Int64.of_int (u32 (rget m rs))) (Int64.of_int (u32 (rget m rt))) in
    m.lo <- sext32 (Int64.to_int (Int64.logand p 0xFFFFFFFFL));
    m.hi <- sext32 (Int64.to_int (Int64.logand (Int64.shift_right_logical p 32) 0xFFFFFFFFL))
  | Div (rs, rt) ->
    m.cycles <- m.cycles + 34;
    let a = rget m rs and b = rget m rt in
    if b = 0 then begin m.lo <- 0; m.hi <- 0 end
    else begin
      (* C-style truncating division *)
      let q = if (a < 0) <> (b < 0) then -(abs a / abs b) else abs a / abs b in
      let rm = a - (q * b) in
      m.lo <- sext32 q;
      m.hi <- sext32 rm
    end
  | Divu (rs, rt) ->
    m.cycles <- m.cycles + 34;
    let a = u32 (rget m rs) and b = u32 (rget m rt) in
    if b = 0 then begin m.lo <- 0; m.hi <- 0 end
    else begin
      m.lo <- sext32 (a / b);
      m.hi <- sext32 (a mod b)
    end
  | Addu (rd, rs, rt) -> set_reg m rd (rget m rs + rget m rt)
  | Subu (rd, rs, rt) -> set_reg m rd (rget m rs - rget m rt)
  | And (rd, rs, rt) -> set_reg m rd (rget m rs land rget m rt)
  | Or (rd, rs, rt) -> set_reg m rd (rget m rs lor rget m rt)
  | Xor (rd, rs, rt) -> set_reg m rd (rget m rs lxor rget m rt)
  | Nor (rd, rs, rt) -> set_reg m rd (lnot (rget m rs lor rget m rt))
  | Slt (rd, rs, rt) -> set_reg m rd (if rget m rs < rget m rt then 1 else 0)
  | Sltu (rd, rs, rt) -> set_reg m rd (if u32 (rget m rs) < u32 (rget m rt) then 1 else 0)
  | Addiu (rt, rs, i) -> set_reg m rt (rget m rs + i)
  | Slti (rt, rs, i) -> set_reg m rt (if rget m rs < i then 1 else 0)
  | Sltiu (rt, rs, i) -> set_reg m rt (if u32 (rget m rs) < u32 (sext32 i) then 1 else 0)
  | Andi (rt, rs, i) -> set_reg m rt (rget m rs land i)
  | Ori (rt, rs, i) -> set_reg m rt (rget m rs lor i)
  | Xori (rt, rs, i) -> set_reg m rt (rget m rs lxor i)
  | Lui (rt, i) -> set_reg m rt (i lsl 16)
  | J t -> m.btarget <- (u32 (pc + 4) land 0xF0000000) lor (t * 4)
  | Jal t ->
    set_reg m 31 (pc + 8);
    m.btarget <- (u32 (pc + 4) land 0xF0000000) lor (t * 4)
  | Beq (rs, rt, off) -> branch m pc off (rget m rs = rget m rt)
  | Bne (rs, rt, off) -> branch m pc off (rget m rs <> rget m rt)
  | Blez (rs, off) -> branch m pc off (rget m rs <= 0)
  | Bgtz (rs, off) -> branch m pc off (rget m rs > 0)
  | Bltz (rs, off) -> branch m pc off (rget m rs < 0)
  | Bgez (rs, off) -> branch m pc off (rget m rs >= 0)
  | Lb (rt, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    let v = Mem.read_u8 m.mem a in
    set_reg m rt (if v land 0x80 <> 0 then v - 0x100 else v)
  | Lbu (rt, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    set_reg m rt (Mem.read_u8 m.mem a)
  | Lh (rt, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    let v = Mem.read_u16 m.mem a in
    set_reg m rt (if v land 0x8000 <> 0 then v - 0x10000 else v)
  | Lhu (rt, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    set_reg m rt (Mem.read_u16 m.mem a)
  | Lw (rt, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    set_reg m rt (Mem.read_u32 m.mem a)
  | Sb (rt, b, o) ->
    let a = u32 (rget m b) + o in
    waccess m a;
    Mem.write_u8 m.mem a (rget m rt)
  | Sh (rt, b, o) ->
    let a = u32 (rget m b) + o in
    waccess m a;
    Mem.write_u16 m.mem a (rget m rt)
  | Sw (rt, b, o) ->
    let a = u32 (rget m b) + o in
    waccess m a;
    Mem.write_u32 m.mem a (u32 (rget m rt))
  | Lwc1 (ft, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    m.fregs.(ft) <- Mem.read_u32 m.mem a
  | Swc1 (ft, b, o) ->
    let a = u32 (rget m b) + o in
    waccess m a;
    Mem.write_u32 m.mem a m.fregs.(ft)
  | Ldc1 (ft, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    m.fregs.(ft) <- Mem.read_u32 m.mem a;
    m.fregs.(ft + 1) <- Mem.read_u32 m.mem (a + 4)
  | Sdc1 (ft, b, o) ->
    let a = u32 (rget m b) + o in
    waccess m a;
    Mem.write_u32 m.mem a m.fregs.(ft);
    Mem.write_u32 m.mem (a + 4) m.fregs.(ft + 1)
  | Mtc1 (rt, fs) -> m.fregs.(fs) <- u32 (rget m rt)
  | Mfc1 (rt, fs) -> set_reg m rt m.fregs.(fs)
  | Fadd (fmt, fd, fs, ft) ->
    m.cycles <- m.cycles + 1;
    set_fmt m fmt fd (get_fmt m fmt fs +. get_fmt m fmt ft)
  | Fsub (fmt, fd, fs, ft) ->
    m.cycles <- m.cycles + 1;
    set_fmt m fmt fd (get_fmt m fmt fs -. get_fmt m fmt ft)
  | Fmul (fmt, fd, fs, ft) ->
    m.cycles <- m.cycles + (match fmt with FS -> 3 | _ -> 4);
    set_fmt m fmt fd (get_fmt m fmt fs *. get_fmt m fmt ft)
  | Fdiv (fmt, fd, fs, ft) ->
    m.cycles <- m.cycles + (match fmt with FS -> 11 | _ -> 18);
    set_fmt m fmt fd (get_fmt m fmt fs /. get_fmt m fmt ft)
  | Fsqrt (fmt, fd, fs) ->
    m.cycles <- m.cycles + (match fmt with FS -> 13 | _ -> 25);
    set_fmt m fmt fd (sqrt (get_fmt m fmt fs))
  | Fabs (fmt, fd, fs) -> set_fmt m fmt fd (abs_float (get_fmt m fmt fs))
  | Fmov (fmt, fd, fs) -> (
    match fmt with
    | FS | FW -> m.fregs.(fd) <- m.fregs.(fs)
    | FD ->
      m.fregs.(fd) <- m.fregs.(fs);
      m.fregs.(fd + 1) <- m.fregs.(fs + 1))
  | Fneg (fmt, fd, fs) -> set_fmt m fmt fd (-.get_fmt m fmt fs)
  | Truncw (fmt, fd, fs) ->
    let v = get_fmt m fmt fs in
    m.fregs.(fd) <- u32 (int_of_float (Float.trunc v))
  | Cvt (to_, from, fd, fs) ->
    let v = get_fmt m from fs in
    set_fmt m to_ fd v
  | Fcmp (c, fmt, fs, ft) ->
    let a = get_fmt m fmt fs and b = get_fmt m fmt ft in
    m.fcc <- (match c with CEq -> a = b | CLt -> a < b | CLe -> a <= b)
  | Bc1t off -> branch m pc off m.fcc
  | Bc1f off -> branch m pc off (not m.fcc)
  | Break code -> raise (Machine_error (Printf.sprintf "break %d at 0x%x" code pc)));
  m.pc <- next;
  m.npc <- m.btarget

(* ------------------------------------------------------------------ *)
(* Superblock translation (see {!Vmachine.Block_cache}): compile a
   straight-line decoded run into one closure per instruction, executed
   by [exec_chain] without per-instruction dispatch.  Each closure
   replicates its [step_inner] arm exactly — same arithmetic, same
   memory-access order, same cycle surcharges — so a block retires with
   the same architectural state and timing as the interpreter.  pc/npc
   are not maintained per instruction; the straight-line values are
   reconstructed on the (rare) abort paths from [blk_i]. *)

(* Compiled action for one *body* (non-control) instruction; [None]
   when the instruction terminates a block (branches/jumps compile via
   [term_of]; Break never compiles, so the interpreter raises on it).
   Store closures test the block cache's dirty flag after writing: a
   store that invalidated a resident block — possibly the very one
   running — aborts the rest of the run with [Block_cache.Retired]. *)
let act_of m (insn : Mips_asm.t) : (unit -> unit) option =
  match insn with
  | Nop -> Some (fun () -> ())
  | Sll (rd, rt, sh) -> Some (fun () -> set_reg m rd (rget m rt lsl sh))
  | Srl (rd, rt, sh) -> Some (fun () -> set_reg m rd (u32 (rget m rt) lsr sh))
  | Sra (rd, rt, sh) -> Some (fun () -> set_reg m rd (rget m rt asr sh))
  | Sllv (rd, rt, rs) -> Some (fun () -> set_reg m rd (rget m rt lsl (rget m rs land 31)))
  | Srlv (rd, rt, rs) -> Some (fun () -> set_reg m rd (u32 (rget m rt) lsr (rget m rs land 31)))
  | Srav (rd, rt, rs) -> Some (fun () -> set_reg m rd (rget m rt asr (rget m rs land 31)))
  | Mfhi rd -> Some (fun () -> set_reg m rd m.hi)
  | Mflo rd -> Some (fun () -> set_reg m rd m.lo)
  | Mult (rs, rt) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 11;
        let p = Int64.mul (Int64.of_int (rget m rs)) (Int64.of_int (rget m rt)) in
        m.lo <- sext32 (Int64.to_int (Int64.logand p 0xFFFFFFFFL));
        m.hi <- sext32 (Int64.to_int (Int64.logand (Int64.shift_right_logical p 32) 0xFFFFFFFFL)))
  | Multu (rs, rt) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 11;
        let p = Int64.mul (Int64.of_int (u32 (rget m rs))) (Int64.of_int (u32 (rget m rt))) in
        m.lo <- sext32 (Int64.to_int (Int64.logand p 0xFFFFFFFFL));
        m.hi <- sext32 (Int64.to_int (Int64.logand (Int64.shift_right_logical p 32) 0xFFFFFFFFL)))
  | Div (rs, rt) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 34;
        let a = rget m rs and b = rget m rt in
        if b = 0 then begin m.lo <- 0; m.hi <- 0 end
        else begin
          let q = if (a < 0) <> (b < 0) then -(abs a / abs b) else abs a / abs b in
          let rm = a - (q * b) in
          m.lo <- sext32 q;
          m.hi <- sext32 rm
        end)
  | Divu (rs, rt) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 34;
        let a = u32 (rget m rs) and b = u32 (rget m rt) in
        if b = 0 then begin m.lo <- 0; m.hi <- 0 end
        else begin
          m.lo <- sext32 (a / b);
          m.hi <- sext32 (a mod b)
        end)
  | Addu (rd, rs, rt) -> Some (fun () -> set_reg m rd (rget m rs + rget m rt))
  | Subu (rd, rs, rt) -> Some (fun () -> set_reg m rd (rget m rs - rget m rt))
  | And (rd, rs, rt) -> Some (fun () -> set_reg m rd (rget m rs land rget m rt))
  | Or (rd, rs, rt) -> Some (fun () -> set_reg m rd (rget m rs lor rget m rt))
  | Xor (rd, rs, rt) -> Some (fun () -> set_reg m rd (rget m rs lxor rget m rt))
  | Nor (rd, rs, rt) -> Some (fun () -> set_reg m rd (lnot (rget m rs lor rget m rt)))
  | Slt (rd, rs, rt) -> Some (fun () -> set_reg m rd (if rget m rs < rget m rt then 1 else 0))
  | Sltu (rd, rs, rt) ->
    Some (fun () -> set_reg m rd (if u32 (rget m rs) < u32 (rget m rt) then 1 else 0))
  | Addiu (rt, rs, i) -> Some (fun () -> set_reg m rt (rget m rs + i))
  | Slti (rt, rs, i) -> Some (fun () -> set_reg m rt (if rget m rs < i then 1 else 0))
  | Sltiu (rt, rs, i) ->
    Some (fun () -> set_reg m rt (if u32 (rget m rs) < u32 (sext32 i) then 1 else 0))
  | Andi (rt, rs, i) -> Some (fun () -> set_reg m rt (rget m rs land i))
  | Ori (rt, rs, i) -> Some (fun () -> set_reg m rt (rget m rs lor i))
  | Xori (rt, rs, i) -> Some (fun () -> set_reg m rt (rget m rs lxor i))
  | Lui (rt, i) -> Some (fun () -> set_reg m rt (i lsl 16))
  | Lb (rt, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        daccess m a;
        let v = Mem.read_u8 m.mem a in
        set_reg m rt (if v land 0x80 <> 0 then v - 0x100 else v))
  | Lbu (rt, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        daccess m a;
        set_reg m rt (Mem.read_u8 m.mem a))
  | Lh (rt, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        daccess m a;
        let v = Mem.read_u16 m.mem a in
        set_reg m rt (if v land 0x8000 <> 0 then v - 0x10000 else v))
  | Lhu (rt, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        daccess m a;
        set_reg m rt (Mem.read_u16 m.mem a))
  | Lw (rt, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        daccess m a;
        set_reg m rt (Mem.read_u32 m.mem a))
  | Sb (rt, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        waccess m a;
        Mem.write_u8 m.mem a (rget m rt);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | Sh (rt, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        waccess m a;
        Mem.write_u16 m.mem a (rget m rt);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | Sw (rt, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        waccess m a;
        Mem.write_u32 m.mem a (u32 (rget m rt));
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | Lwc1 (ft, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        daccess m a;
        m.fregs.(ft) <- Mem.read_u32 m.mem a)
  | Swc1 (ft, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        waccess m a;
        Mem.write_u32 m.mem a m.fregs.(ft);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | Ldc1 (ft, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        daccess m a;
        m.fregs.(ft) <- Mem.read_u32 m.mem a;
        m.fregs.(ft + 1) <- Mem.read_u32 m.mem (a + 4))
  | Sdc1 (ft, b, o) ->
    Some
      (fun () ->
        let a = u32 (rget m b) + o in
        waccess m a;
        Mem.write_u32 m.mem a m.fregs.(ft);
        Mem.write_u32 m.mem (a + 4) m.fregs.(ft + 1);
        if Block_cache.dirty m.bc then raise Block_cache.Retired)
  | Mtc1 (rt, fs) -> Some (fun () -> m.fregs.(fs) <- u32 (rget m rt))
  | Mfc1 (rt, fs) -> Some (fun () -> set_reg m rt m.fregs.(fs))
  | Fadd (fmt, fd, fs, ft) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 1;
        set_fmt m fmt fd (get_fmt m fmt fs +. get_fmt m fmt ft))
  | Fsub (fmt, fd, fs, ft) ->
    Some
      (fun () ->
        m.cycles <- m.cycles + 1;
        set_fmt m fmt fd (get_fmt m fmt fs -. get_fmt m fmt ft))
  | Fmul (fmt, fd, fs, ft) ->
    let c = match fmt with Mips_asm.FS -> 3 | _ -> 4 in
    Some
      (fun () ->
        m.cycles <- m.cycles + c;
        set_fmt m fmt fd (get_fmt m fmt fs *. get_fmt m fmt ft))
  | Fdiv (fmt, fd, fs, ft) ->
    let c = match fmt with Mips_asm.FS -> 11 | _ -> 18 in
    Some
      (fun () ->
        m.cycles <- m.cycles + c;
        set_fmt m fmt fd (get_fmt m fmt fs /. get_fmt m fmt ft))
  | Fsqrt (fmt, fd, fs) ->
    let c = match fmt with Mips_asm.FS -> 13 | _ -> 25 in
    Some
      (fun () ->
        m.cycles <- m.cycles + c;
        set_fmt m fmt fd (sqrt (get_fmt m fmt fs)))
  | Fabs (fmt, fd, fs) -> Some (fun () -> set_fmt m fmt fd (abs_float (get_fmt m fmt fs)))
  | Fmov (fmt, fd, fs) -> (
    match fmt with
    | FS | FW -> Some (fun () -> m.fregs.(fd) <- m.fregs.(fs))
    | FD ->
      Some
        (fun () ->
          m.fregs.(fd) <- m.fregs.(fs);
          m.fregs.(fd + 1) <- m.fregs.(fs + 1)))
  | Fneg (fmt, fd, fs) -> Some (fun () -> set_fmt m fmt fd (-.get_fmt m fmt fs))
  | Truncw (fmt, fd, fs) ->
    Some
      (fun () ->
        let v = get_fmt m fmt fs in
        m.fregs.(fd) <- u32 (int_of_float (Float.trunc v)))
  | Cvt (to_, from, fd, fs) -> Some (fun () -> set_fmt m to_ fd (get_fmt m from fs))
  | Fcmp (c, fmt, fs, ft) ->
    Some
      (match c with
      | CEq -> fun () -> m.fcc <- get_fmt m fmt fs = get_fmt m fmt ft
      | CLt -> fun () -> m.fcc <- get_fmt m fmt fs < get_fmt m fmt ft
      | CLe -> fun () -> m.fcc <- get_fmt m fmt fs <= get_fmt m fmt ft)
  | Jr _ | Jalr _ | J _ | Jal _ | Beq _ | Bne _ | Blez _ | Bgtz _ | Bltz _ | Bgez _
  | Bc1t _ | Bc1f _ | Break _ ->
    None

(* Compiled closure for a block *terminator* at address [pc]: leaves
   the control-transfer target in [m.btarget] (fallthrough [pc + 8] for
   an untaken branch) — exactly the interpreter's btarget discipline.
   The delay-slot action runs next and the block commit moves
   btarget into pc. *)
let term_of m pc (insn : Mips_asm.t) : (unit -> unit) option =
  let ft = pc + 8 in
  match insn with
  | Jr rs -> Some (fun () -> m.btarget <- u32 (rget m rs))
  | Jalr (rd, rs) ->
    Some
      (fun () ->
        set_reg m rd (pc + 8);
        m.btarget <- u32 (rget m rs))
  | J t ->
    let tgt = (u32 (pc + 4) land 0xF0000000) lor (t * 4) in
    Some (fun () -> m.btarget <- tgt)
  | Jal t ->
    let tgt = (u32 (pc + 4) land 0xF0000000) lor (t * 4) in
    Some
      (fun () ->
        set_reg m 31 (pc + 8);
        m.btarget <- tgt)
  | Beq (rs, rt, off) ->
    let tk = pc + 4 + (4 * off) in
    Some (fun () -> m.btarget <- (if rget m rs = rget m rt then tk else ft))
  | Bne (rs, rt, off) ->
    let tk = pc + 4 + (4 * off) in
    Some (fun () -> m.btarget <- (if rget m rs <> rget m rt then tk else ft))
  | Blez (rs, off) ->
    let tk = pc + 4 + (4 * off) in
    Some (fun () -> m.btarget <- (if rget m rs <= 0 then tk else ft))
  | Bgtz (rs, off) ->
    let tk = pc + 4 + (4 * off) in
    Some (fun () -> m.btarget <- (if rget m rs > 0 then tk else ft))
  | Bltz (rs, off) ->
    let tk = pc + 4 + (4 * off) in
    Some (fun () -> m.btarget <- (if rget m rs < 0 then tk else ft))
  | Bgez (rs, off) ->
    let tk = pc + 4 + (4 * off) in
    Some (fun () -> m.btarget <- (if rget m rs >= 0 then tk else ft))
  | Bc1t off ->
    let tk = pc + 4 + (4 * off) in
    Some (fun () -> m.btarget <- (if m.fcc then tk else ft))
  | Bc1f off ->
    let tk = pc + 4 + (4 * off) in
    Some (fun () -> m.btarget <- (if not m.fcc then tk else ft))
  | _ -> None

(* instructions allowed before the terminator + delay-slot pair within
   the [Block_cache.max_insns] cap *)
let max_body = Block_cache.max_insns - 2

(* Only closures for these instructions can raise: a memory fault from
   a load/store, or [Block_cache.Retired] from a store that invalidated
   a resident block.  Everything else [act_of] compiles is pure OCaml
   arithmetic that cannot raise (the division arms are zero-guarded),
   and MIPS terminators only write [m.btarget], so the per-instruction
   [m.blk_i] bookkeeping is baked in at compile time for can-raise
   instructions alone and elided everywhere else. *)
let act_raises (insn : Mips_asm.t) : bool =
  match insn with
  | Lb _ | Lbu _ | Lh _ | Lhu _ | Lw _ | Sb _ | Sh _ | Sw _
  | Lwc1 _ | Swc1 _ | Ldc1 _ | Sdc1 _ -> true
  | _ -> false

(* Fuse a list of action closures into one, sequencing by direct calls
   in chunks of four: one chunk-closure entry per four instructions
   instead of a per-instruction array load and loop-counter update.
   Exceptions propagate out of the fused closure unchanged. *)
let rec seq (cs : (unit -> unit) list) : unit -> unit =
  match cs with
  | [] -> fun () -> ()
  | [ a ] -> a
  | [ a; b ] -> fun () -> a (); b ()
  | [ a; b; c ] -> fun () -> a (); b (); c ()
  | [ a; b; c; d ] -> fun () -> a (); b (); c (); d ()
  | a :: b :: c :: d :: rest ->
    let r = seq rest in
    fun () -> a (); b (); c (); d (); r ()

(* Scan the straight-line run entered at [entry]: body instructions up
   to the first control transfer (collected together with its delay
   slot), a non-compilable instruction (Break, an illegal word,
   unmapped memory — left for the interpreter to trap on), or the
   length cap.  Returns the per-instruction (can-raise, action) list
   and whether it ends in a terminator + delay-slot pair; [None] if
   not even one instruction compiles.  Shared by the superblock and
   region compilers. *)
let scan_run m entry =
  let fetch_opt pc =
    match fetch m pc with
    | i -> Some i
    | exception (Machine_error _ | Mem.Fault _) -> None
  in
  let body = ref [] and nbody = ref 0 in
  let fin = ref None in
  let stop = ref false in
  let pc = ref entry in
  while (not !stop) && !nbody < max_body do
    match fetch_opt !pc with
    | None -> stop := true
    | Some insn -> (
      match act_of m insn with
      | Some a ->
        body := (act_raises insn, a) :: !body;
        incr nbody;
        pc := !pc + 4
      | None -> (
        stop := true;
        match term_of m !pc insn with
        | None -> () (* Break: end the block just before it *)
        | Some t -> (
          (* the delay slot must itself be a plain body instruction *)
          match fetch_opt (!pc + 4) with
          | None -> ()
          | Some d -> (
            match act_of m d with
            | None -> ()
            | Some da -> fin := Some (t, act_raises d, da)))))
  done;
  let tail, has_delay =
    match !fin with
    | Some (t, dr, da) -> ([ (false, t); (dr, da) ], true)
    | None -> ([], false)
  in
  match List.rev_append !body tail with
  | [] -> None
  | all -> Some (all, has_delay)

(* Compile the straight-line run entered at [entry] into a superblock.

   Timing is baked into the closures: the instruction that starts a new
   icache line carries the registerized probe (a later same-line fetch
   is a guaranteed hit — a block spans at most 256 consecutive bytes,
   far below the icache size, so it cannot evict its own lines, and a
   guaranteed hit is a no-op under bulk hit reconciliation).  Capturing
   the tag array here is safe because [Cache.flush] clears it in
   place. *)
let compile_block m entry =
  let tags, shift, mask = Cache.probe m.icache in
  match scan_run m entry with
  | None -> None
  | Some (all, has_delay) ->
    let n = List.length all in
    let wrap i (raises, act) =
      let addr = entry + (4 * i) in
      let line = addr lsr shift in
      let boundary = i = 0 || line <> (addr - 4) lsr shift in
      if boundary then begin
        let idx = line land mask in
        if raises then
          fun () ->
            m.blk_i <- i;
            if Array.unsafe_get tags idx <> line then begin
              let p = Cache.access_uncounted m.icache addr in
              if p <> 0 then m.cycles <- m.cycles + p
            end;
            act ()
        else
          fun () ->
            if Array.unsafe_get tags idx <> line then begin
              let p = Cache.access_uncounted m.icache addr in
              if p <> 0 then m.cycles <- m.cycles + p
            end;
            act ()
      end
      else if raises then
        fun () ->
          m.blk_i <- i;
          act ()
      else act
    in
    (* Traced runs re-bind [wrap] so every per-insn closure records its
       issue before acting — issue order matches the interpreter's
       retire stream exactly, including a faulting instruction being the
       last record.  Untraced compilation takes the [if] arm above
       untouched, so its closures are the exact same values as before
       tracing existed (bit-identical behaviour, zero overhead). *)
    let wrap =
      if not (Trace.is_enabled m.tr) then wrap
      else
        fun i ra ->
          let f = wrap i ra in
          let addr = entry + (4 * i) in
          fun () ->
            Trace.retire m.tr addr;
            f ()
    in
    (* the commit is one more cannot-raise action fused onto the end:
       if anything earlier raises, it never runs, and the fixup
       handlers in [exec_chain] account the partial run instead *)
    let commit =
      if has_delay then
        fun () ->
          m.insns <- m.insns + n;
          let t = m.btarget in
          m.pc <- t;
          m.npc <- t + 4
      else begin
        let ft = entry + (4 * n) in
        fun () ->
          m.insns <- m.insns + n;
          m.pc <- ft;
          m.npc <- ft + 4
      end
    in
    Some { entry; n; run = seq (List.mapi wrap all @ [ commit ]); has_delay }

(* Execute [b] (preconditions: [b.n <= fuel], [m.npc = b.entry + 4]),
   then chain directly into the next resident block while fuel lasts.
   Returns the remaining fuel.  The three exits leave exactly the state
   the interpreter would:
   - clean commit: pc/npc move past the block (branch target or capped
     fallthrough), [insns] advances by the whole run;
   - [Retired] (a store invalidated a resident block): the aborting
     instruction has retired, pc/npc name its successor, and control
     returns to the dispatch loop without chaining;
   - a fault: the faulting instruction counts as issued (the
     interpreter increments [insns] before executing), pc names it and
     npc its successor — just as [run_go] would leave them. *)
let rec exec_chain m (b : block) fuel =
  Trace.mark m.tr Trace.Block_enter b.entry;
  if Sim_probe.enabled m.probe then begin
    Sim_probe.block_exec m.probe ~entry:b.entry;
    Block_cache.note_exec m.bc b.entry
  end;
  Block_cache.begin_block m.bc;
  match b.run () with
  | () ->
    let fuel = fuel - b.n in
    if m.pc = halt_addr then fuel
    else if m.pc = b.entry && b.n <= fuel then
      (* self-loop fast path: a clean exit means no resident block was
         invalidated, so [b] is certainly still cached for [entry] *)
      exec_chain m b fuel
    else (
      match Block_cache.find m.bc m.pc with
      | Some nb when nb.n <= fuel -> exec_chain m nb fuel
      | _ -> fuel)
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:b.entry ~i;
    if b.has_delay && i = b.n - 1 then begin
      let t = m.btarget in
      m.pc <- t;
      m.npc <- t + 4
    end
    else begin
      let a = b.entry + (4 * i) in
      m.pc <- a + 4;
      m.npc <- a + 8
    end;
    fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = b.entry + (4 * i) in
    m.pc <- a;
    m.npc <- (if b.has_delay && i = b.n - 1 then m.btarget else a + 4);
    raise e

(* ------------------------------------------------------------------ *)
(* Tier-3 regions (see {!Vmachine.Region_cache}): follow the dominant
   chain of straight-line runs from a hot entry and fuse the whole
   trace into one closure per pass.  Interior branch-terminated blocks
   are specialized to their profiled direction: after the terminator
   and its delay slot retire, a guard compares the branch scratch
   against the trace's next block and raises [Side_exit] with the
   pass-relative retired count on a mismatch.  The final block commits
   pc/npc generically (so a self-looping trace naturally re-enters the
   pass loop, and any other exit falls back to block dispatch).  The
   closures are the same [act_of]/[term_of] values the superblock
   compiler uses, so architectural state, memory order, cycle
   surcharges and the dirty/[Retired] abort protocol are shared with
   tier 2 by construction. *)

let compile_region m entry =
  let tags, shift, mask = Cache.probe m.icache in
  (* Follow dominant successors: a branch-terminated block extends
     through its profiled edge, a capped block through its static
     fallthrough.  A closed loop (back to [entry]) is *unrolled*:
     further copies of the loop body are appended while whole copies
     fit under the block cap, so a short hot loop amortizes the
     per-pass commit and self-loop check over several iterations (the
     unrolled backedges are specialized like any interior branch, and
     for an unconditional jump the guard is omitted entirely).  Stop
     on an unprofiled edge, an unscannable run, or the cap. *)
  let rec collect pc first_len acc nblocks =
    match scan_run m pc with
    | None -> List.rev acc
    | Some (all, has_delay) ->
      let n = List.length all in
      let acc = (pc, all, has_delay, n) :: acc in
      let nblocks = nblocks + 1 in
      let succ =
        if has_delay then Region_cache.dominant_succ m.rc pc
        else Some (pc + (4 * n))
      in
      (match succ with
      | Some s when s land 3 = 0 && s > 0 ->
        if s = entry then begin
          let fl = match first_len with None -> nblocks | Some f -> f in
          if
            nblocks + fl <= Region_cache.max_blocks
            && nblocks < Region_cache.max_unroll * fl
          then collect s (Some fl) acc nblocks
          else List.rev acc
        end
        else if nblocks < Region_cache.max_blocks then collect s first_len acc nblocks
        else List.rev acc
      | _ -> List.rev acc)
  in
  match collect entry None [] 0 with
  | [] | [ _ ] -> None (* a single block gains nothing over tier 2 *)
  | blks ->
    let blks = Array.of_list blks in
    let nb = Array.length blks in
    let r_n = Array.fold_left (fun a (_, _, _, n) -> a + n) 0 blks in
    let spans = Array.map (fun (p, _, _, n) -> (p, 4 * n)) blks in
    let addrs = Array.make r_n 0 in
    let delay = Array.make r_n false in
    let traced = Trace.is_enabled m.tr in
    (* An unconditional direct jump pins the next pc statically: when
       it matches the trace successor the guard can never fire and is
       omitted, so jump-chained code pays nothing between fused
       blocks.  The decode reads current memory, and any later store
       to that word invalidates the containing block span (and with it
       the region). *)
    let static_jump_target p n =
      let tpc = p + (4 * (n - 2)) in
      match fetch m tpc with
      | J t | Jal t -> Some ((u32 (tpc + 4) land 0xF0000000) lor (t * 4))
      | _ -> None
      | exception (Machine_error _ | Mem.Fault _) -> None
    in
    (* two closure lists built in step: the probed first pass and the
       probe-free fast pass; [blk_i]/trace wrapping is identical.
       [elide] drops the instruction from the fast pass entirely:
       delay-slot nops retire nothing architectural, and the fast pass
       neither probes nor traces nor counts per-insn, so the closure
       call is pure overhead — on jump-chained code a third of the
       trace.  Positions ([blk_i], side-exit payloads) are assigned at
       build time, so eliding a closure shifts no index. *)
    let probed = ref [] and fastc = ref [] in
    let push_insn i addr raises act boundary elide =
      let line = addr lsr shift in
      let idx = line land mask in
      let pr =
        if boundary then
          if raises then
            fun () ->
              m.blk_i <- i;
              if Array.unsafe_get tags idx <> line then begin
                let p = Cache.access_uncounted m.icache addr in
                if p <> 0 then m.cycles <- m.cycles + p
              end;
              act ()
          else
            fun () ->
              if Array.unsafe_get tags idx <> line then begin
                let p = Cache.access_uncounted m.icache addr in
                if p <> 0 then m.cycles <- m.cycles + p
              end;
              act ()
        else if raises then
          fun () ->
            m.blk_i <- i;
            act ()
        else act
      in
      let fa =
        if raises then
          fun () ->
            m.blk_i <- i;
            act ()
        else act
      in
      let pr, fa =
        if not traced then (pr, fa)
        else
          ( (fun () -> Trace.retire m.tr addr; pr ()),
            fun () -> Trace.retire m.tr addr; fa () )
      in
      probed := pr :: !probed;
      if not elide then fastc := fa :: !fastc
    in
    let k = ref 0 in
    let prev_line = ref min_int in
    Array.iteri
      (fun bi (p, all, has_delay, n) ->
        List.iteri
          (fun j (raises, act) ->
            let i = !k in
            let addr = p + (4 * j) in
            addrs.(i) <- addr;
            if has_delay && j = n - 1 then delay.(i) <- true;
            let line = addr lsr shift in
            let elide =
              (not traced) && (not raises)
              && (match fetch m addr with
                 | Nop -> true
                 | _ -> false
                 | exception (Machine_error _ | Mem.Fault _) -> false)
            in
            push_insn i addr raises act (line <> !prev_line) elide;
            prev_line := line;
            incr k)
          all;
        if bi < nb - 1 && has_delay then begin
          (* branch-direction specialization: the pass continues into
             the profiled successor; anything else side-exits with the
             instructions retired so far (this block included) *)
          let expected = (fun (p, _, _, _) -> p) blks.(bi + 1) in
          match static_jump_target p n with
          | Some t when t = expected -> () (* guard provably never fires *)
          | _ ->
            let kk = !k in
            let g () =
              if m.btarget <> expected then raise (Region_cache.Side_exit kk)
            in
            probed := g :: !probed;
            fastc := g :: !fastc
        end)
      blks;
    let commit =
      let p_last, _, last_delay, n_last = blks.(nb - 1) in
      if last_delay then
        fun () ->
          m.insns <- m.insns + r_n;
          let t = m.btarget in
          m.pc <- t;
          m.npc <- t + 4
      else begin
        let ft = p_last + (4 * n_last) in
        fun () ->
          m.insns <- m.insns + r_n;
          m.pc <- ft;
          m.npc <- ft + 4
      end
    in
    let r_run = seq (List.rev (commit :: !probed)) in
    (* The fast pass defers even the pc/npc commit: while the trace
       self-loops, pc stays at the entry (the probed pass committed it
       there and nothing inside a pass writes it), so the tail only
       credits the pass and checks the backedge, raising [Loop_exit]
       for [exec_region] to commit the exit target once the self-loop
       finally breaks.  A capped final block has a static fallthrough,
       so it keeps the generic commit (the driver's pc check ends the
       loop). *)
    let fast_tail =
      let _, _, last_delay, _ = blks.(nb - 1) in
      if last_delay then
        (fun () ->
          m.insns <- m.insns + r_n;
          if m.btarget <> entry then raise Region_cache.Loop_exit)
      else commit
    in
    (* The probe-free pass is only sound when no two distinct region
       lines collide in the direct-mapped icache: then a completed
       probed pass leaves every line resident and later passes are
       guaranteed hits (no-ops under bulk hit reconciliation).  The
       dcache is separate and nothing else runs between passes. *)
    let lines =
      List.sort_uniq compare (Array.to_list (Array.map (fun a -> a lsr shift) addrs))
    in
    let fast_ok =
      List.length (List.sort_uniq compare (List.map (fun l -> l land mask) lines))
      = List.length lines
    in
    let r_fast = if fast_ok then seq (List.rev (fast_tail :: !fastc)) else r_run in
    Some { r_entry = entry; r_n; r_spans = spans; r_run; r_fast; r_addrs = addrs;
           r_delay = delay }

(* latency-instrumented entry points: the stopwatch brackets the whole
   scan/trace-follow + closure compile + cache insert, feeding the
   bc.compile_ns / rc.promote_ns distributions (no clock read when the
   sink is disabled) *)
let compile_block_timed m entry =
  let t0 = Block_cache.compile_start m.bc in
  let r = compile_block m entry in
  Block_cache.compile_done m.bc t0;
  r

let promote m entry =
  let t0 = Region_cache.promote_start m.rc in
  (match compile_region m entry with
  | Some r -> Region_cache.set m.rc entry ~insns:r.r_n r
  | None -> Region_cache.mark_unpromotable m.rc entry);
  Region_cache.promote_done m.rc t0

(* Execute region [r] (preconditions: [r.r_n <= fuel], [m.npc =
   r.r_entry + 4]): a probed first pass, then probe-free passes while
   the trace self-loops and fuel lasts.  Exits mirror [exec_chain]
   exactly, with [r_addrs]/[r_delay] standing in for the straight-line
   address arithmetic; the extra exit is [Side_exit k], which credits
   the [k] instructions the pass retired and resumes generic dispatch
   at the branch scratch. *)
let exec_region m (r : region) fuel0 =
  Trace.mark m.tr Trace.Block_enter r.r_entry;
  if Sim_probe.enabled m.probe then Sim_probe.region_exec m.probe ~entry:r.r_entry;
  Block_cache.begin_block m.bc;
  let fuel = ref fuel0 in
  match
    r.r_run ();
    fuel := !fuel - r.r_n;
    let entry = r.r_entry and rn = r.r_n and fast = r.r_fast in
    while m.pc = entry && rn <= !fuel do
      fast ();
      fuel := !fuel - rn
    done
  with
  | () -> !fuel
  | exception Region_cache.Loop_exit ->
    (* the raising fast pass ran to completion and credited itself;
       perform its deferred commit *)
    let t = m.btarget in
    m.pc <- t;
    m.npc <- t + 4;
    !fuel - r.r_n
  | exception Region_cache.Side_exit k ->
    m.insns <- m.insns + k;
    Sim_probe.side_exit m.probe ~entry:r.r_entry ~i:k;
    let t = m.btarget in
    m.pc <- t;
    m.npc <- t + 4;
    !fuel - k
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:r.r_entry ~i;
    if r.r_delay.(i) then begin
      let t = m.btarget in
      m.pc <- t;
      m.npc <- t + 4
    end
    else begin
      let a = r.r_addrs.(i) in
      m.pc <- a + 4;
      m.npc <- a + 8
    end;
    !fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = r.r_addrs.(i) in
    m.pc <- a;
    m.npc <- (if r.r_delay.(i) then m.btarget else a + 4);
    raise e

(* [exec_chain] for regions mode: identical block chaining plus the
   tier-3 hooks — per-dispatch hotness counting (promoting on the
   threshold crossing), successor-edge profiling after each clean
   commit, and chaining into a resident region when one exists at the
   next pc. *)
let rec exec_chain_r m (b : block) fuel =
  Trace.mark m.tr Trace.Block_enter b.entry;
  if Sim_probe.enabled m.probe then begin
    Sim_probe.block_exec m.probe ~entry:b.entry;
    Block_cache.note_exec m.bc b.entry
  end;
  if Region_cache.note_dispatch m.rc b.entry then promote m b.entry;
  Block_cache.begin_block m.bc;
  match b.run () with
  | () ->
    let fuel = fuel - b.n in
    if m.pc = halt_addr then fuel
    else begin
      Region_cache.note_succ m.rc b.entry m.pc;
      match Region_cache.find m.rc m.pc with
      | Some r when r.r_n <= fuel -> exec_region m r fuel
      | _ ->
        if m.pc = b.entry && b.n <= fuel then exec_chain_r m b fuel
        else (
          match Block_cache.find m.bc m.pc with
          | Some nb when nb.n <= fuel -> exec_chain_r m nb fuel
          | _ -> fuel)
    end
  | exception Block_cache.Retired ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    Sim_probe.abort m.probe ~entry:b.entry ~i;
    if b.has_delay && i = b.n - 1 then begin
      let t = m.btarget in
      m.pc <- t;
      m.npc <- t + 4
    end
    else begin
      let a = b.entry + (4 * i) in
      m.pc <- a + 4;
      m.npc <- a + 8
    end;
    fuel - (i + 1)
  | exception e ->
    let i = m.blk_i in
    m.insns <- m.insns + i + 1;
    let a = b.entry + (4 * i) in
    m.pc <- a;
    m.npc <- (if b.has_delay && i = b.n - 1 then m.btarget else a + 4);
    raise e

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)

let default_fuel = 200_000_000

(* Run from [m.pc] until control reaches [halt_addr]. *)
(* Tight tail-recursive loop: the fuel check is a register countdown
   rather than a per-step ref increment/compare. *)
(* single-step with exact cycle accounting (the public interface) *)
let step m =
  let mi0 = Cache.misses m.icache in
  (let p = Cache.access_uncounted m.icache m.pc in
   if p <> 0 then m.cycles <- m.cycles + p);
  Trace.retire m.tr m.pc;
  step_inner m m.pc;
  m.cycles <- m.cycles + 1;
  Cache.add_hits m.icache (1 - (Cache.misses m.icache - mi0))

(* [step_inner] defers the 1-cycle-per-instruction component of the
   accounting to its caller; [run] adds it in bulk at exit from the
   instruction-count delta, so the hot loop carries one counter update
   less per step.  Totals are exact whenever [run] returns or raises. *)
let rec run_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    let line = pc lsr shift in
    if Array.unsafe_get tags (line land mask) <> line then
      (let p = Cache.access_uncounted m.icache pc in
       if p <> 0 then m.cycles <- m.cycles + p);
    Trace.retire m.tr pc;
    step_inner m pc;
    run_go m tags shift mask (fuel - 1)
  end

(* one interpreted instruction inside the block-dispatch loop: the
   registerized icache probe of [run_go], then [step_inner] *)
let[@inline] step_one m tags shift mask =
  let pc = m.pc in
  let line = pc lsr shift in
  if Array.unsafe_get tags (line land mask) <> line then
    (let p = Cache.access_uncounted m.icache pc in
     if p <> 0 then m.cycles <- m.cycles + p);
  Trace.retire m.tr pc;
  step_inner m pc

(* Block-dispatch run loop: resident block -> [exec_chain]; no block
   yet -> compile, cache, retry; uncompilable entry / insufficient fuel
   for a whole block / delay-slot entry (npc off the straight line,
   e.g. after a public [step]) -> one interpreted instruction.  Fuel
   discipline is identical to [run_go]: a block only runs when it fits
   whole, so the out-of-fuel point falls on the same instruction. *)
let rec run_blocks_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    if m.npc = pc + 4 then (
      match Block_cache.find m.bc pc with
      | Some b when b.n <= fuel ->
        let fuel = exec_chain m b fuel in
        Sim_probe.chain_flush m.probe;
        run_blocks_go m tags shift mask fuel
      | Some _ ->
        step_one m tags shift mask;
        run_blocks_go m tags shift mask (fuel - 1)
      | None -> (
        match compile_block_timed m pc with
        | Some b ->
          Block_cache.set m.bc pc b;
          run_blocks_go m tags shift mask fuel
        | None ->
          step_one m tags shift mask;
          run_blocks_go m tags shift mask (fuel - 1)))
    else begin
      step_one m tags shift mask;
      run_blocks_go m tags shift mask (fuel - 1)
    end
  end

(* Region-dispatch run loop: [run_blocks_go] with a region probe ahead
   of the block probe, and chaining through [exec_chain_r] so hotness
   and successor profiles accumulate.  Fuel discipline is unchanged —
   a region pass only runs when it fits whole, and when it does not,
   dispatch falls through to the identical block/interpreter ladder. *)
let rec run_regions_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    if m.npc = pc + 4 then (
      match Region_cache.find m.rc pc with
      | Some r when r.r_n <= fuel ->
        let fuel = exec_region m r fuel in
        Sim_probe.chain_flush m.probe;
        run_regions_go m tags shift mask fuel
      | _ -> (
        match Block_cache.find m.bc pc with
        | Some b when b.n <= fuel ->
          let fuel = exec_chain_r m b fuel in
          Sim_probe.chain_flush m.probe;
          run_regions_go m tags shift mask fuel
        | Some _ ->
          step_one m tags shift mask;
          run_regions_go m tags shift mask (fuel - 1)
        | None -> (
          match compile_block_timed m pc with
          | Some b ->
            Block_cache.set m.bc pc b;
            run_regions_go m tags shift mask fuel
          | None ->
            step_one m tags shift mask;
            run_regions_go m tags shift mask (fuel - 1))))
    else begin
      step_one m tags shift mask;
      run_regions_go m tags shift mask (fuel - 1)
    end
  end

let run ?(fuel = default_fuel) m =
  let i0 = m.insns in
  let mi0 = Cache.misses m.icache in
  let t0 = Sim_probe.run_start m.probe in
  let finish () =
    let retired = m.insns - i0 in
    m.cycles <- m.cycles + retired;
    Cache.add_hits m.icache (retired - (Cache.misses m.icache - mi0));
    Sim_probe.chain_flush m.probe;
    Sim_probe.retired m.probe retired;
    Sim_probe.run_done m.probe t0
  in
  let tags, shift, mask = Cache.probe m.icache in
  (try
     if m.regions then run_regions_go m tags shift mask fuel
     else if m.blocks then run_blocks_go m tags shift mask fuel
     else run_go m tags shift mask fuel
   with e ->
     finish ();
     Sim_probe.fault m.probe ~pc:m.pc;
     raise e);
  finish ()

(* The simplified O32-like argument convention shared with the backend:
   each argument consumes one slot (doubles two, even-aligned); the first
   four slots of integer-class args go in $a0..$a3; the first two FP args
   go in $f12/$f14 (if their slot < 4); everything else is on the stack
   at [16 + 4*slot] above the entry $sp. *)
type arg = Int of int | Single of float | Double of float

(* allocation-free: plain recursion over the list with slot/fargs as
   accumulators, so a hot caller (the throughput bench) pays no per-call
   ref cells or iteration closure *)
let rec place_rest m sp args slot fargs =
  match args with
  | [] -> ()
  | Int v :: rest ->
    if slot < 4 then set_reg m (4 + slot) v
    else Mem.write_u32 m.mem (sp + 16 + (4 * slot)) (u32 v);
    place_rest m sp rest (slot + 1) fargs
  | Single v :: rest ->
    if fargs < 2 && slot < 4 then set_single m (12 + (2 * fargs)) v
    else
      Mem.write_u32 m.mem
        (sp + 16 + (4 * slot))
        (Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF);
    place_rest m sp rest (slot + 1) (fargs + 1)
  | Double v :: rest ->
    let slot = slot + (slot land 1) in
    if fargs < 2 && slot < 4 then set_double m (12 + (2 * fargs)) v
    else Mem.write_u64 m.mem (sp + 16 + (4 * slot)) (Int64.bits_of_float v);
    place_rest m sp rest (slot + 2) (fargs + 1)

let place_args m ~sp args = place_rest m sp args 0 0

(* Call the generated function at [entry] with [args]; returns after the
   function executes its epilogue (jr $ra to the halt address). *)
let call ?fuel m ~entry args =
  let sp = m.stack_top land lnot 7 in
  m.regs.(Mips_asm.sp) <- sp;
  m.regs.(Mips_asm.ra) <- halt_addr;
  place_args m ~sp args;
  m.pc <- entry;
  m.npc <- entry + 4;
  run ?fuel m

let ret_int m = m.regs.(Mips_asm.v0)
let ret_single m = get_single m 0
let ret_double m = get_double m 0

let reset_stats m =
  m.cycles <- 0;
  m.insns <- 0;
  Cache.reset_stats m.icache;
  Cache.reset_stats m.dcache

(* Models v_end's icache invalidation: drop both the timing caches and
   every predecoded instruction.  (The predecode drop is belt-and-braces
   — the write watcher already keeps it coherent — and costs nothing on
   the simulated clock.) *)
let flush_caches m =
  Cache.flush m.icache;
  Cache.flush m.dcache;
  Decode_cache.clear m.pdc;
  Block_cache.clear m.bc;
  Region_cache.clear m.rc

let flush_dcache m = Cache.flush m.dcache
