(* MIPS-I simulator.

   Executes the binary code emitted by the VCODE MIPS port.  This is the
   execution substrate that replaces the paper's DECstation hardware: a
   little-endian R2000/R3000-style core with one branch delay slot, one
   load delay cycle, HI/LO multiply/divide results, 32 single-precision
   FP registers paired for doubles, and direct-mapped I/D caches with
   configurable miss penalties (see {!Vmachine.Mconfig}).

   Register values are OCaml ints holding sign-extended 32-bit values;
   every write goes through [sext32] so the invariant is maintained.
   Cycle accounting: 1 cycle per issued instruction, plus cache miss
   penalties, plus multi-cycle costs for mult/div and FP ops (rough R3000
   latencies). *)

open Vmachine

let halt_addr = 0x10000000 (* outside simulated memory: return-to-host *)

exception Machine_error of string

type t = {
  mem : Mem.t;
  icache : Cache.t;
  dcache : Cache.t;
  pdc : Mips_asm.t Decode_cache.t; (* host-side predecode; no cycle effect *)
  predecode : bool;
  cfg : Mconfig.t;
  regs : int array;   (* 32, sign-extended 32-bit *)
  fregs : int array;  (* 32, raw 32-bit patterns; doubles use even pairs *)
  mutable hi : int;
  mutable lo : int;
  mutable fcc : bool;
  mutable pc : int;
  mutable npc : int;
  mutable btarget : int; (* branch-target scratch for [step]; avoids a per-step ref *)
  mutable cycles : int;
  mutable insns : int;
  mutable stack_top : int;
}

let create ?(predecode = true) (cfg : Mconfig.t) =
  let mem = Mem.create ~big_endian:false ~size:cfg.mem_bytes () in
  let pdc = Decode_cache.create ~mem_bytes:cfg.mem_bytes in
  Mem.set_write_watcher mem (Decode_cache.invalidate pdc);
  {
    mem;
    pdc;
    predecode;
    icache = Cache.create ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.imiss_penalty;
    dcache = Cache.create ~size_bytes:cfg.dcache_bytes ~line_bytes:cfg.line_bytes
               ~miss_penalty:cfg.dmiss_penalty;
    cfg;
    regs = Array.make 32 0;
    fregs = Array.make 32 0;
    hi = 0;
    lo = 0;
    fcc = false;
    pc = 0;
    npc = 4;
    btarget = 0;
    cycles = 0;
    insns = 0;
    stack_top = cfg.mem_bytes - 256;
  }

(* branchless sign-extension from bit 31 (OCaml ints are 63-bit, so the
   shift pair drops bits 32+ and replicates bit 31 upward) *)
let[@inline] sext32 v = (v lsl 31) asr 31

let u32 v = v land 0xFFFFFFFF

(* register numbers come out of [Mips_asm.decode] masked to 5 bits, so
   the array bounds check is dead weight on the per-step path *)
let[@inline] set_reg m r v = if r <> 0 then Array.unsafe_set m.regs r (sext32 v)
let[@inline] rget m n = Array.unsafe_get m.regs n

(* Doubles live in even/odd pairs, low word in the even register
   (little-endian pairing). *)
let get_double m f =
  let lo = m.fregs.(f) land 0xFFFFFFFF and hi = m.fregs.(f + 1) land 0xFFFFFFFF in
  Int64.float_of_bits
    (Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))

let set_double m f v =
  let bits = Int64.bits_of_float v in
  m.fregs.(f) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
  m.fregs.(f + 1) <- Int64.to_int (Int64.logand (Int64.shift_right_logical bits 32) 0xFFFFFFFFL)

let get_single m f = Int32.float_of_bits (Int32.of_int m.fregs.(f))
let set_single m f v = m.fregs.(f) <- Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF

let get_fmt m fmt f =
  match fmt with
  | Mips_asm.FS -> get_single m f
  | Mips_asm.FD -> get_double m f
  | Mips_asm.FW -> float_of_int (sext32 m.fregs.(f))

let set_fmt m fmt f v =
  match fmt with
  | Mips_asm.FS -> set_single m f v
  | Mips_asm.FD -> set_double m f v
  | Mips_asm.FW -> m.fregs.(f) <- u32 (int_of_float v)

let[@inline] daccess m addr =
  let p = Cache.access m.dcache addr in
  if p <> 0 then m.cycles <- m.cycles + p
(* write-through: always 0 penalty, but the hit/miss stats must tick *)
let[@inline] waccess m addr = ignore (Cache.write_access m.dcache addr : int)

(* Decode the word at [pc], consulting the predecode cache first.  The
   miss path preserves the uncached fault behaviour exactly (Mem.Fault
   on a wild or misaligned pc, Machine_error on an illegal word). *)
let fetch m pc =
  match Decode_cache.find m.pdc pc with
  | Some i -> i
  | None ->
    let w = Mem.read_u32 m.mem pc in
    let insn = try Mips_asm.decode w with Mips_asm.Bad_insn _ ->
      raise (Machine_error (Printf.sprintf "illegal instruction 0x%08x at 0x%x" w pc))
    in
    if m.predecode then Decode_cache.set m.pdc pc insn;
    insn

let[@inline] branch m pc off taken =
  if taken then m.btarget <- pc + 4 + (4 * off)

(* Execute one instruction.  Returns unit; updates pc/npc.
   The caller is responsible for the icache timing access on [m.pc]
   (see [run_go]/[step]): doing it in the small run loop rather than in
   this large function keeps its register pressure out of every arm. *)
let step_inner m pc =
  m.insns <- m.insns + 1;
  let insn = fetch m pc in
  let next = m.npc in
  m.btarget <- next + 4;
  (match insn with
  | Nop -> ()
  | Sll (rd, rt, sh) -> set_reg m rd (rget m rt lsl sh)
  | Srl (rd, rt, sh) -> set_reg m rd (u32 (rget m rt) lsr sh)
  | Sra (rd, rt, sh) -> set_reg m rd (rget m rt asr sh)
  | Sllv (rd, rt, rs) -> set_reg m rd (rget m rt lsl (rget m rs land 31))
  | Srlv (rd, rt, rs) -> set_reg m rd (u32 (rget m rt) lsr (rget m rs land 31))
  | Srav (rd, rt, rs) -> set_reg m rd (rget m rt asr (rget m rs land 31))
  | Jr rs -> m.btarget <- u32 (rget m rs)
  | Jalr (rd, rs) ->
    set_reg m rd (pc + 8);
    m.btarget <- u32 (rget m rs)
  | Mfhi rd -> set_reg m rd m.hi
  | Mflo rd -> set_reg m rd m.lo
  | Mult (rs, rt) ->
    m.cycles <- m.cycles + 11;
    let p = Int64.mul (Int64.of_int (rget m rs)) (Int64.of_int (rget m rt)) in
    m.lo <- sext32 (Int64.to_int (Int64.logand p 0xFFFFFFFFL));
    m.hi <- sext32 (Int64.to_int (Int64.logand (Int64.shift_right_logical p 32) 0xFFFFFFFFL))
  | Multu (rs, rt) ->
    m.cycles <- m.cycles + 11;
    let p = Int64.mul (Int64.of_int (u32 (rget m rs))) (Int64.of_int (u32 (rget m rt))) in
    m.lo <- sext32 (Int64.to_int (Int64.logand p 0xFFFFFFFFL));
    m.hi <- sext32 (Int64.to_int (Int64.logand (Int64.shift_right_logical p 32) 0xFFFFFFFFL))
  | Div (rs, rt) ->
    m.cycles <- m.cycles + 34;
    let a = rget m rs and b = rget m rt in
    if b = 0 then begin m.lo <- 0; m.hi <- 0 end
    else begin
      (* C-style truncating division *)
      let q = if (a < 0) <> (b < 0) then -(abs a / abs b) else abs a / abs b in
      let rm = a - (q * b) in
      m.lo <- sext32 q;
      m.hi <- sext32 rm
    end
  | Divu (rs, rt) ->
    m.cycles <- m.cycles + 34;
    let a = u32 (rget m rs) and b = u32 (rget m rt) in
    if b = 0 then begin m.lo <- 0; m.hi <- 0 end
    else begin
      m.lo <- sext32 (a / b);
      m.hi <- sext32 (a mod b)
    end
  | Addu (rd, rs, rt) -> set_reg m rd (rget m rs + rget m rt)
  | Subu (rd, rs, rt) -> set_reg m rd (rget m rs - rget m rt)
  | And (rd, rs, rt) -> set_reg m rd (rget m rs land rget m rt)
  | Or (rd, rs, rt) -> set_reg m rd (rget m rs lor rget m rt)
  | Xor (rd, rs, rt) -> set_reg m rd (rget m rs lxor rget m rt)
  | Nor (rd, rs, rt) -> set_reg m rd (lnot (rget m rs lor rget m rt))
  | Slt (rd, rs, rt) -> set_reg m rd (if rget m rs < rget m rt then 1 else 0)
  | Sltu (rd, rs, rt) -> set_reg m rd (if u32 (rget m rs) < u32 (rget m rt) then 1 else 0)
  | Addiu (rt, rs, i) -> set_reg m rt (rget m rs + i)
  | Slti (rt, rs, i) -> set_reg m rt (if rget m rs < i then 1 else 0)
  | Sltiu (rt, rs, i) -> set_reg m rt (if u32 (rget m rs) < u32 (sext32 i) then 1 else 0)
  | Andi (rt, rs, i) -> set_reg m rt (rget m rs land i)
  | Ori (rt, rs, i) -> set_reg m rt (rget m rs lor i)
  | Xori (rt, rs, i) -> set_reg m rt (rget m rs lxor i)
  | Lui (rt, i) -> set_reg m rt (i lsl 16)
  | J t -> m.btarget <- (u32 (pc + 4) land 0xF0000000) lor (t * 4)
  | Jal t ->
    set_reg m 31 (pc + 8);
    m.btarget <- (u32 (pc + 4) land 0xF0000000) lor (t * 4)
  | Beq (rs, rt, off) -> branch m pc off (rget m rs = rget m rt)
  | Bne (rs, rt, off) -> branch m pc off (rget m rs <> rget m rt)
  | Blez (rs, off) -> branch m pc off (rget m rs <= 0)
  | Bgtz (rs, off) -> branch m pc off (rget m rs > 0)
  | Bltz (rs, off) -> branch m pc off (rget m rs < 0)
  | Bgez (rs, off) -> branch m pc off (rget m rs >= 0)
  | Lb (rt, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    let v = Mem.read_u8 m.mem a in
    set_reg m rt (if v land 0x80 <> 0 then v - 0x100 else v)
  | Lbu (rt, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    set_reg m rt (Mem.read_u8 m.mem a)
  | Lh (rt, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    let v = Mem.read_u16 m.mem a in
    set_reg m rt (if v land 0x8000 <> 0 then v - 0x10000 else v)
  | Lhu (rt, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    set_reg m rt (Mem.read_u16 m.mem a)
  | Lw (rt, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    set_reg m rt (Mem.read_u32 m.mem a)
  | Sb (rt, b, o) ->
    let a = u32 (rget m b) + o in
    waccess m a;
    Mem.write_u8 m.mem a (rget m rt)
  | Sh (rt, b, o) ->
    let a = u32 (rget m b) + o in
    waccess m a;
    Mem.write_u16 m.mem a (rget m rt)
  | Sw (rt, b, o) ->
    let a = u32 (rget m b) + o in
    waccess m a;
    Mem.write_u32 m.mem a (u32 (rget m rt))
  | Lwc1 (ft, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    m.fregs.(ft) <- Mem.read_u32 m.mem a
  | Swc1 (ft, b, o) ->
    let a = u32 (rget m b) + o in
    waccess m a;
    Mem.write_u32 m.mem a m.fregs.(ft)
  | Ldc1 (ft, b, o) ->
    let a = u32 (rget m b) + o in
    daccess m a;
    m.fregs.(ft) <- Mem.read_u32 m.mem a;
    m.fregs.(ft + 1) <- Mem.read_u32 m.mem (a + 4)
  | Sdc1 (ft, b, o) ->
    let a = u32 (rget m b) + o in
    waccess m a;
    Mem.write_u32 m.mem a m.fregs.(ft);
    Mem.write_u32 m.mem (a + 4) m.fregs.(ft + 1)
  | Mtc1 (rt, fs) -> m.fregs.(fs) <- u32 (rget m rt)
  | Mfc1 (rt, fs) -> set_reg m rt m.fregs.(fs)
  | Fadd (fmt, fd, fs, ft) ->
    m.cycles <- m.cycles + 1;
    set_fmt m fmt fd (get_fmt m fmt fs +. get_fmt m fmt ft)
  | Fsub (fmt, fd, fs, ft) ->
    m.cycles <- m.cycles + 1;
    set_fmt m fmt fd (get_fmt m fmt fs -. get_fmt m fmt ft)
  | Fmul (fmt, fd, fs, ft) ->
    m.cycles <- m.cycles + (match fmt with FS -> 3 | _ -> 4);
    set_fmt m fmt fd (get_fmt m fmt fs *. get_fmt m fmt ft)
  | Fdiv (fmt, fd, fs, ft) ->
    m.cycles <- m.cycles + (match fmt with FS -> 11 | _ -> 18);
    set_fmt m fmt fd (get_fmt m fmt fs /. get_fmt m fmt ft)
  | Fsqrt (fmt, fd, fs) ->
    m.cycles <- m.cycles + (match fmt with FS -> 13 | _ -> 25);
    set_fmt m fmt fd (sqrt (get_fmt m fmt fs))
  | Fabs (fmt, fd, fs) -> set_fmt m fmt fd (abs_float (get_fmt m fmt fs))
  | Fmov (fmt, fd, fs) -> (
    match fmt with
    | FS | FW -> m.fregs.(fd) <- m.fregs.(fs)
    | FD ->
      m.fregs.(fd) <- m.fregs.(fs);
      m.fregs.(fd + 1) <- m.fregs.(fs + 1))
  | Fneg (fmt, fd, fs) -> set_fmt m fmt fd (-.get_fmt m fmt fs)
  | Truncw (fmt, fd, fs) ->
    let v = get_fmt m fmt fs in
    m.fregs.(fd) <- u32 (int_of_float (Float.trunc v))
  | Cvt (to_, from, fd, fs) ->
    let v = get_fmt m from fs in
    set_fmt m to_ fd v
  | Fcmp (c, fmt, fs, ft) ->
    let a = get_fmt m fmt fs and b = get_fmt m fmt ft in
    m.fcc <- (match c with CEq -> a = b | CLt -> a < b | CLe -> a <= b)
  | Bc1t off -> branch m pc off m.fcc
  | Bc1f off -> branch m pc off (not m.fcc)
  | Break code -> raise (Machine_error (Printf.sprintf "break %d at 0x%x" code pc)));
  m.pc <- next;
  m.npc <- m.btarget

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)

let default_fuel = 200_000_000

(* Run from [m.pc] until control reaches [halt_addr]. *)
(* Tight tail-recursive loop: the fuel check is a register countdown
   rather than a per-step ref increment/compare. *)
(* single-step with exact cycle accounting (the public interface) *)
let step m =
  let mi0 = Cache.misses m.icache in
  (let p = Cache.access_uncounted m.icache m.pc in
   if p <> 0 then m.cycles <- m.cycles + p);
  step_inner m m.pc;
  m.cycles <- m.cycles + 1;
  Cache.add_hits m.icache (1 - (Cache.misses m.icache - mi0))

(* [step_inner] defers the 1-cycle-per-instruction component of the
   accounting to its caller; [run] adds it in bulk at exit from the
   instruction-count delta, so the hot loop carries one counter update
   less per step.  Totals are exact whenever [run] returns or raises. *)
let rec run_go m tags shift mask fuel =
  let pc = m.pc in
  if pc <> halt_addr then begin
    if fuel = 0 then raise (Machine_error "out of fuel (infinite loop?)");
    let line = pc lsr shift in
    if Array.unsafe_get tags (line land mask) <> line then
      (let p = Cache.access_uncounted m.icache pc in
       if p <> 0 then m.cycles <- m.cycles + p);
    step_inner m pc;
    run_go m tags shift mask (fuel - 1)
  end

let run ?(fuel = default_fuel) m =
  let i0 = m.insns in
  let mi0 = Cache.misses m.icache in
  let finish () =
    let retired = m.insns - i0 in
    m.cycles <- m.cycles + retired;
    Cache.add_hits m.icache (retired - (Cache.misses m.icache - mi0))
  in
  let tags, shift, mask = Cache.probe m.icache in
  (try run_go m tags shift mask fuel
   with e ->
     finish ();
     raise e);
  finish ()

(* The simplified O32-like argument convention shared with the backend:
   each argument consumes one slot (doubles two, even-aligned); the first
   four slots of integer-class args go in $a0..$a3; the first two FP args
   go in $f12/$f14 (if their slot < 4); everything else is on the stack
   at [16 + 4*slot] above the entry $sp. *)
type arg = Int of int | Single of float | Double of float

(* allocation-free: plain recursion over the list with slot/fargs as
   accumulators, so a hot caller (the throughput bench) pays no per-call
   ref cells or iteration closure *)
let rec place_rest m sp args slot fargs =
  match args with
  | [] -> ()
  | Int v :: rest ->
    if slot < 4 then set_reg m (4 + slot) v
    else Mem.write_u32 m.mem (sp + 16 + (4 * slot)) (u32 v);
    place_rest m sp rest (slot + 1) fargs
  | Single v :: rest ->
    if fargs < 2 && slot < 4 then set_single m (12 + (2 * fargs)) v
    else
      Mem.write_u32 m.mem
        (sp + 16 + (4 * slot))
        (Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF);
    place_rest m sp rest (slot + 1) (fargs + 1)
  | Double v :: rest ->
    let slot = slot + (slot land 1) in
    if fargs < 2 && slot < 4 then set_double m (12 + (2 * fargs)) v
    else Mem.write_u64 m.mem (sp + 16 + (4 * slot)) (Int64.bits_of_float v);
    place_rest m sp rest (slot + 2) (fargs + 1)

let place_args m ~sp args = place_rest m sp args 0 0

(* Call the generated function at [entry] with [args]; returns after the
   function executes its epilogue (jr $ra to the halt address). *)
let call ?fuel m ~entry args =
  let sp = m.stack_top land lnot 7 in
  m.regs.(Mips_asm.sp) <- sp;
  m.regs.(Mips_asm.ra) <- halt_addr;
  place_args m ~sp args;
  m.pc <- entry;
  m.npc <- entry + 4;
  run ?fuel m

let ret_int m = m.regs.(Mips_asm.v0)
let ret_single m = get_single m 0
let ret_double m = get_double m 0

let reset_stats m =
  m.cycles <- 0;
  m.insns <- 0;
  Cache.reset_stats m.icache;
  Cache.reset_stats m.dcache

(* Models v_end's icache invalidation: drop both the timing caches and
   every predecoded instruction.  (The predecode drop is belt-and-braces
   — the write watcher already keeps it coherent — and costs nothing on
   the simulated clock.) *)
let flush_caches m =
  Cache.flush m.icache;
  Cache.flush m.dcache;
  Decode_cache.clear m.pdc

let flush_dcache m = Cache.flush m.dcache
