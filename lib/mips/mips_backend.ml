(* The VCODE MIPS port (paper section 3.3).

   Maps the VCODE core instruction set onto MIPS-I encodings, implements
   the calling convention and activation-record management, and performs
   the in-place prologue/epilogue backpatching of section 5.2:

   - [lambda] reserves a fixed-size prologue area in the instruction
     stream (32 words: enough to save $ra, all nine callee-saved integer
     registers, six callee-saved doubles, adjust $sp and reload up to
     twelve stack-passed arguments).
   - The frame has a fixed layout so every offset is known at emission
     time: [sp+0,64) outgoing-argument area, [sp+64,160) register-save
     area, locals from sp+160 up.  The space-for-time tradeoff is the
     paper's own (it wastes at most the save area per active frame).
   - [finish] writes the real prologue into the *end* of the reserved
     area and returns the entry index just before it, saving exactly the
     registers recorded in [g.used_callee]/[g.used_fcallee].
   - Return jumps carry a special relocation: if the function turns out
     to need no frame, the backpatcher rewrites [j epilogue] into
     [jr $ra] — the paper's "eliminate this jump" optimization.

   Scratch registers: $at (the classic assembler temporary) and $v1 for
   synthesized sequences; $f18 is the FP scratch.  None are allocatable. *)

open Vcodebase
module A = Mips_asm

let reserve_words = 48
let outarg_base = 16       (* first stack-arg slot offset *)
let save_base = 64         (* register save area: $ra + any forced-callee set *)
let locals_base = 240
let max_arg_slots = 12

(* reloc kinds *)
let k_branch = 0
let k_jump = 1
let k_call = 2
let k_retj = 3

let scratch = 1  (* $at *)
let scratch2 = 3 (* $v1 *)
let fscratch = 18

let rnum = Reg.idx

let e g i = ignore (Codebuf.emit g.Gen.buf (A.encode i))

(* fast path: emit a pre-encoded word (no allocation) *)
let ew g w = ignore (Codebuf.emit g.Gen.buf w)

let desc : Machdesc.t =
  let r n = Reg.R n and f n = Reg.F n in
  {
    Machdesc.name = "mips";
    word_bits = 32;
    big_endian = false;
    branch_delay_slots = 1;
    load_delay = 1;
    nregs = 32;
    nfregs = 32;
    temps = [| r 8; r 9; r 10; r 11; r 12; r 13; r 14; r 15; r 24; r 25 |];
    vars = [| r 16; r 17; r 18; r 19; r 20; r 21; r 22; r 23; r 30 |];
    ftemps = [| f 4; f 6; f 8; f 10; f 16 |];
    fvars = [| f 20; f 22; f 24; f 26; f 28; f 30 |];
    callee_mask =
      (1 lsl 16) lor (1 lsl 17) lor (1 lsl 18) lor (1 lsl 19) lor (1 lsl 20)
      lor (1 lsl 21) lor (1 lsl 22) lor (1 lsl 23) lor (1 lsl 30);
    fcallee_mask =
      (1 lsl 20) lor (1 lsl 22) lor (1 lsl 24) lor (1 lsl 26) lor (1 lsl 28) lor (1 lsl 30);
    arg_regs = [| r 4; r 5; r 6; r 7 |];
    farg_regs = [| f 12; f 14 |];
    ret_reg = r 2;
    fret_reg = f 0;
    sp = r 29;
    locals_base;
    scratch = r 1;
    reg_name = (fun reg ->
      match reg with Reg.R n -> A.reg_name n | Reg.F n -> A.freg_name n);
  }

let fits16s v = v >= -32768 && v <= 32767
let fits16u v = v >= 0 && v <= 65535
let fits32 v = v >= -0x80000000 && v <= 0xFFFFFFFF

(* Load a 32-bit constant into [rd]; 1-2 instructions. *)
let load_const g rd v =
  if not (fits32 v) then
    Verror.fail (Verror.Range (Printf.sprintf "MIPS immediate %d" v));
  let v32 = v land 0xFFFFFFFF in
  let sv = if v32 land 0x80000000 <> 0 then v32 - 0x100000000 else v32 in
  if fits16s sv then ew g (A.W.addiu rd 0 sv)
  else begin
    let hi = (v32 lsr 16) land 0xFFFF and lo = v32 land 0xFFFF in
    ew g (A.W.lui rd hi);
    if lo <> 0 then ew g (A.W.ori rd rd lo)
  end

(* %hi/%lo split with carry adjustment for lo's sign extension. *)
let hi_lo addr =
  let lo = addr land 0xFFFF in
  let lo_s = if lo >= 0x8000 then lo - 0x10000 else lo in
  let hi = ((addr - lo_s) lsr 16) land 0xFFFF in
  (hi, lo)

(* ------------------------------------------------------------------ *)
(* ALU                                                                 *)

let signed_ty (t : Vtype.t) = Vtype.is_signed t

let arith_core g (op : Op.binop) (t : Vtype.t) rd rs1 rs2 =
  if Vtype.is_float t then begin
    let fmt = match t with Vtype.F -> A.FS | _ -> A.FD in
    let d = rnum rd and a = rnum rs1 and b = rnum rs2 in
    match op with
    | Op.Add -> e g (A.Fadd (fmt, d, a, b))
    | Op.Sub -> e g (A.Fsub (fmt, d, a, b))
    | Op.Mul -> e g (A.Fmul (fmt, d, a, b))
    | Op.Div -> e g (A.Fdiv (fmt, d, a, b))
    | Op.Mod | Op.And | Op.Or | Op.Xor | Op.Lsh | Op.Rsh ->
      Verror.fail (Verror.Bad_type "float bit operation")
  end
  else
    let d = rnum rd and a = rnum rs1 and b = rnum rs2 in
    match op with
    | Op.Add -> ew g (A.W.addu d a b)
    | Op.Sub -> ew g (A.W.subu d a b)
    | Op.Mul ->
      ew g (A.W.mult a b);
      ew g (A.W.mflo d)
    | Op.Div ->
      ew g (if signed_ty t then A.W.div a b else A.W.divu a b);
      ew g (A.W.mflo d)
    | Op.Mod ->
      ew g (if signed_ty t then A.W.div a b else A.W.divu a b);
      ew g (A.W.mfhi d)
    | Op.And -> ew g (A.W.and_ d a b)
    | Op.Or -> ew g (A.W.or_ d a b)
    | Op.Xor -> ew g (A.W.xor d a b)
    | Op.Lsh -> ew g (A.W.sllv d a b)
    | Op.Rsh -> ew g (if signed_ty t then A.W.srav d a b else A.W.srlv d a b)

let arith g op t rd rs1 rs2 =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.arith op);
  arith_core g op t rd rs1 rs2

let arith_imm g (op : Op.binop) (t : Vtype.t) rd rs1 imm =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.arith_imm op);
  let d = rnum rd and a = rnum rs1 in
  let via_reg () =
    load_const g scratch imm;
    arith_core g op t rd rs1 (Reg.R scratch)
  in
  match op with
  | Op.Add -> if fits16s imm then ew g (A.W.addiu d a imm) else via_reg ()
  | Op.Sub -> if fits16s (-imm) then ew g (A.W.addiu d a (-imm)) else via_reg ()
  | Op.And -> if fits16u imm then ew g (A.W.andi d a imm) else via_reg ()
  | Op.Or -> if fits16u imm then ew g (A.W.ori d a imm) else via_reg ()
  | Op.Xor -> if fits16u imm then ew g (A.W.xori d a imm) else via_reg ()
  | Op.Lsh -> ew g (A.W.sll d a imm)
  | Op.Rsh -> ew g (if signed_ty t then A.W.sra d a imm else A.W.srl d a imm)
  | Op.Mul | Op.Div | Op.Mod -> via_reg ()

let unary_core g (op : Op.unop) (t : Vtype.t) rd rs =
  if Vtype.is_float t then begin
    let fmt = match t with Vtype.F -> A.FS | _ -> A.FD in
    let d = rnum rd and s = rnum rs in
    match op with
    | Op.Mov -> e g (A.Fmov (fmt, d, s))
    | Op.Neg -> e g (A.Fneg (fmt, d, s))
    | Op.Com | Op.Not -> Verror.fail (Verror.Bad_type "float bit operation")
  end
  else
    let d = rnum rd and s = rnum rs in
    match op with
    | Op.Com -> ew g (A.W.nor d s 0)
    | Op.Not -> ew g (A.W.sltiu d s 1)
    | Op.Mov -> ew g (A.W.or_ d s 0)
    | Op.Neg -> ew g (A.W.subu d 0 s)

let unary g op t rd rs =
  Gen.note_write g rd;
  Gen.count_insn g (Opk.unary op);
  unary_core g op t rd rs

let set g (_t : Vtype.t) rd imm64 =
  Gen.note_write g rd;
  Gen.count_insn g Opk.set;
  if Int64.compare imm64 (-0x80000000L) < 0 || Int64.compare imm64 0xFFFFFFFFL > 0 then
    Verror.fail (Verror.Range (Int64.to_string imm64));
  load_const g (rnum rd) (Int64.to_int imm64)

(* FP immediates: emit a two-word load (lui $at, 0 ; l?c1 f, 0($at)) and
   record it; [finish] places the constant after the code and patches the
   pair (paper section 5.2: constants at the end of the function's
   instruction stream so they are reclaimed with it). *)
let setf_core g (t : Vtype.t) rd v =
  let dbl = match t with Vtype.D -> true | _ -> false in
  let site = Codebuf.length g.Gen.buf in
  e g (A.Lui (scratch, 0));
  e g (if dbl then A.Ldc1 (rnum rd, scratch, 0) else A.Lwc1 (rnum rd, scratch, 0));
  let bits = if dbl then Int64.bits_of_float v
    else Int64.of_int32 (Int32.bits_of_float v) in
  Gen.add_fimm g ~site ~bits ~dbl

let setf g t rd v =
  Gen.note_write g rd;
  Gen.count_insn g Opk.setf;
  setf_core g t rd v

(* ------------------------------------------------------------------ *)
(* Branches                                                            *)

(* The single emission point for every control transfer that carries a
   relocation and a delay slot: the branch word (offset patched at
   finish) followed by its slot nop.  Keeping one helper gives the
   peephole stage ([Vcode.Make_peephole]) exactly one shape to rewrite
   when it lifts an independent instruction into the slot: the patch
   site is always the word before the nop. *)
let emit_branch_with_slot ?(kind = k_branch) g w lab =
  let site = Codebuf.length g.Gen.buf in
  ew g w;
  Gen.add_reloc g ~site ~lab ~kind;
  ew g A.W.nop (* delay slot *)

let unsigned_cmp (t : Vtype.t) =
  match t with Vtype.U | Vtype.UL | Vtype.P | Vtype.UC | Vtype.US -> true | _ -> false

let branch g (c : Op.cond) (t : Vtype.t) rs1 rs2 lab =
  if Vtype.is_float t then begin
    let fmt = match t with Vtype.F -> A.FS | _ -> A.FD in
    let a = rnum rs1 and b = rnum rs2 in
    let cmp, on_true =
      match c with
      | Op.Lt -> (A.Fcmp (A.CLt, fmt, a, b), true)
      | Op.Le -> (A.Fcmp (A.CLe, fmt, a, b), true)
      | Op.Gt -> (A.Fcmp (A.CLt, fmt, b, a), true)
      | Op.Ge -> (A.Fcmp (A.CLe, fmt, b, a), true)
      | Op.Eq -> (A.Fcmp (A.CEq, fmt, a, b), true)
      | Op.Ne -> (A.Fcmp (A.CEq, fmt, a, b), false)
    in
    e g cmp;
    emit_branch_with_slot g (A.encode (if on_true then A.Bc1t 0 else A.Bc1f 0)) lab
  end
  else begin
    let a = rnum rs1 and b = rnum rs2 in
    let u = unsigned_cmp t in
    let slt x y = if u then A.W.sltu scratch x y else A.W.slt scratch x y in
    match c with
    | Op.Eq -> emit_branch_with_slot g (A.W.beq a b 0) lab
    | Op.Ne -> emit_branch_with_slot g (A.W.bne a b 0) lab
    | Op.Lt ->
      ew g (slt a b);
      emit_branch_with_slot g (A.W.bne scratch 0 0) lab
    | Op.Ge ->
      ew g (slt a b);
      emit_branch_with_slot g (A.W.beq scratch 0 0) lab
    | Op.Gt ->
      ew g (slt b a);
      emit_branch_with_slot g (A.W.bne scratch 0 0) lab
    | Op.Le ->
      ew g (slt b a);
      emit_branch_with_slot g (A.W.beq scratch 0 0) lab
  end

let branch_imm g (c : Op.cond) (t : Vtype.t) rs1 imm lab =
  if Vtype.is_float t then
    Verror.fail (Verror.Bad_type "float immediate branch")
  else
    let a = rnum rs1 in
    let u = unsigned_cmp t in
    match c with
    | Op.Eq when imm = 0 -> emit_branch_with_slot g (A.W.beq a 0 0) lab
    | Op.Ne when imm = 0 -> emit_branch_with_slot g (A.W.bne a 0 0) lab
    | Op.Lt when (not u) && imm = 0 -> emit_branch_with_slot g (A.encode (A.Bltz (a, 0))) lab
    | Op.Ge when (not u) && imm = 0 -> emit_branch_with_slot g (A.encode (A.Bgez (a, 0))) lab
    | Op.Gt when (not u) && imm = 0 -> emit_branch_with_slot g (A.encode (A.Bgtz (a, 0))) lab
    | Op.Le when (not u) && imm = 0 -> emit_branch_with_slot g (A.encode (A.Blez (a, 0))) lab
    | Op.Lt when fits16s imm ->
      ew g (if u then A.W.sltiu scratch a imm else A.W.slti scratch a imm);
      emit_branch_with_slot g (A.W.bne scratch 0 0) lab
    | Op.Ge when fits16s imm ->
      ew g (if u then A.W.sltiu scratch a imm else A.W.slti scratch a imm);
      emit_branch_with_slot g (A.W.beq scratch 0 0) lab
    | Op.Eq | Op.Ne | Op.Lt | Op.Le | Op.Gt | Op.Ge ->
      (* general case: materialize the immediate in $at and use $v1 for
         the comparison result where one is needed *)
      load_const g scratch2 imm;
      let b = scratch2 in
      let slt x y = if u then A.W.sltu scratch x y else A.W.slt scratch x y in
      (match c with
      | Op.Eq -> emit_branch_with_slot g (A.W.beq a b 0) lab
      | Op.Ne -> emit_branch_with_slot g (A.W.bne a b 0) lab
      | Op.Lt ->
        ew g (slt a b);
        emit_branch_with_slot g (A.W.bne scratch 0 0) lab
      | Op.Ge ->
        ew g (slt a b);
        emit_branch_with_slot g (A.W.beq scratch 0 0) lab
      | Op.Gt ->
        ew g (slt b a);
        emit_branch_with_slot g (A.W.bne scratch 0 0) lab
      | Op.Le ->
        ew g (slt b a);
        emit_branch_with_slot g (A.W.beq scratch 0 0) lab)

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)

let cvt g ~(from : Vtype.t) ~(to_ : Vtype.t) rd rs =
  Gen.note_write g rd;
  Gen.count_insn g Opk.cvt;
  if (not (Vtype.is_float from)) && not (Vtype.is_float to_) then
    (* all word-class types share a representation on a 32-bit machine *)
    e g (A.Or (rnum rd, rnum rs, 0))
  else
    match (from, to_) with
    | (Vtype.I | Vtype.L), Vtype.F ->
      e g (A.Mtc1 (rnum rs, fscratch));
      e g (A.Cvt (A.FS, A.FW, rnum rd, fscratch))
    | (Vtype.I | Vtype.L), Vtype.D ->
      e g (A.Mtc1 (rnum rs, fscratch));
      e g (A.Cvt (A.FD, A.FW, rnum rd, fscratch))
    | (Vtype.U | Vtype.UL), Vtype.D ->
      (* unsigned convert: signed convert then add 2^32 if the sign bit
         was set *)
      e g (A.Mtc1 (rnum rs, fscratch));
      e g (A.Cvt (A.FD, A.FW, rnum rd, fscratch));
      let skip = Gen.genlabel g in
      let site = Codebuf.length g.Gen.buf in
      e g (A.Bgez (rnum rs, 0));
      Gen.add_reloc g ~site ~lab:skip ~kind:k_branch;
      e g A.Nop;
      setf_core g Vtype.D (Reg.F fscratch) 4294967296.0;
      e g (A.Fadd (A.FD, rnum rd, rnum rd, fscratch));
      Gen.bind_label g skip
    | Vtype.F, (Vtype.I | Vtype.L) ->
      e g (A.Truncw (A.FS, fscratch, rnum rs));
      e g (A.Mfc1 (rnum rd, fscratch))
    | Vtype.D, (Vtype.I | Vtype.L) ->
      e g (A.Truncw (A.FD, fscratch, rnum rs));
      e g (A.Mfc1 (rnum rd, fscratch))
    | Vtype.F, Vtype.D -> e g (A.Cvt (A.FD, A.FS, rnum rd, rnum rs))
    | Vtype.D, Vtype.F -> e g (A.Cvt (A.FS, A.FD, rnum rd, rnum rs))
    | _ ->
      Verror.fail
        (Verror.Bad_type
           (Printf.sprintf "cv%s2%s" (Vtype.to_string from) (Vtype.to_string to_)))

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)

(* Emit the access given a base register number and an in-range 16-bit
   offset.  The immediate-offset entry points below keep the dominant
   fits-in-16-bits case a straight encode with no allocation. *)
let[@inline] emit_load g (t : Vtype.t) rd b o =
  match t with
  | Vtype.C -> ew g (A.W.lb (rnum rd) b o)
  | Vtype.UC -> ew g (A.W.lbu (rnum rd) b o)
  | Vtype.S -> ew g (A.W.lh (rnum rd) b o)
  | Vtype.US -> ew g (A.W.lhu (rnum rd) b o)
  | Vtype.I | Vtype.U | Vtype.L | Vtype.UL | Vtype.P -> ew g (A.W.lw (rnum rd) b o)
  | Vtype.F -> e g (A.Lwc1 (rnum rd, b, o))
  | Vtype.D -> e g (A.Ldc1 (rnum rd, b, o))
  | Vtype.V -> Verror.fail (Verror.Bad_type "ld.v")

let[@inline] emit_store g (t : Vtype.t) rv b o =
  match t with
  | Vtype.C | Vtype.UC -> ew g (A.W.sb (rnum rv) b o)
  | Vtype.S | Vtype.US -> ew g (A.W.sh (rnum rv) b o)
  | Vtype.I | Vtype.U | Vtype.L | Vtype.UL | Vtype.P -> ew g (A.W.sw (rnum rv) b o)
  | Vtype.F -> e g (A.Swc1 (rnum rv, b, o))
  | Vtype.D -> e g (A.Sdc1 (rnum rv, b, o))
  | Vtype.V -> Verror.fail (Verror.Bad_type "st.v")

let load_imm g (t : Vtype.t) rd base off =
  Gen.note_write g rd;
  Gen.count_insn g Opk.ld;
  if fits16s off then emit_load g t rd (rnum base) off
  else begin
    load_const g scratch off;
    ew g (A.W.addu scratch scratch (rnum base));
    emit_load g t rd scratch 0
  end

let load_reg g (t : Vtype.t) rd base idx =
  Gen.note_write g rd;
  Gen.count_insn g Opk.ld;
  ew g (A.W.addu scratch (rnum base) (rnum idx));
  emit_load g t rd scratch 0

let store_imm_core g (t : Vtype.t) rv base off =
  if fits16s off then emit_store g t rv (rnum base) off
  else begin
    load_const g scratch off;
    ew g (A.W.addu scratch scratch (rnum base));
    emit_store g t rv scratch 0
  end

let store_imm g t rv base off =
  Gen.count_insn g Opk.st;
  store_imm_core g t rv base off

let store_reg g (t : Vtype.t) rv base idx =
  Gen.count_insn g Opk.st;
  ew g (A.W.addu scratch (rnum base) (rnum idx));
  emit_store g t rv scratch 0

(* ------------------------------------------------------------------ *)
(* Control                                                             *)

let jump g (t : Gen.jtarget) =
  match t with
  | Gen.Jlabel lab -> emit_branch_with_slot ~kind:k_jump g (A.encode (A.J 0)) lab
  | Gen.Jaddr a ->
    e g (A.J (a lsr 2));
    e g A.Nop
  | Gen.Jreg r ->
    e g (A.Jr (rnum r));
    e g A.Nop

let jal g (t : Gen.jtarget) =
  match t with
  | Gen.Jlabel lab -> emit_branch_with_slot ~kind:k_call g (A.encode (A.Jal 0)) lab
  | Gen.Jaddr a ->
    e g (A.Jal (a lsr 2));
    e g A.Nop
  | Gen.Jreg r ->
    e g (A.Jalr (31, rnum r));
    e g A.Nop

let nop g = e g A.Nop

(* ------------------------------------------------------------------ *)
(* Calling convention                                                  *)

(* Argument slot assignment shared with Mips_sim.place_args. *)
type arg_loc = In_ireg of int | In_freg of int | On_stack of int (* slot *)

let assign_slots (tys : Vtype.t array) : (Vtype.t * arg_loc) array =
  let slot = ref 0 and fargs = ref 0 in
  Array.map
    (fun t ->
      match t with
      | Vtype.F ->
        let s = !slot in
        let loc = if !fargs < 2 && s < 4 then In_freg (12 + (2 * !fargs)) else On_stack s in
        incr fargs;
        incr slot;
        (t, loc)
      | Vtype.D ->
        if !slot land 1 = 1 then incr slot;
        let s = !slot in
        let loc = if !fargs < 2 && s < 4 then In_freg (12 + (2 * !fargs)) else On_stack s in
        incr fargs;
        slot := s + 2;
        (t, loc)
      | _ ->
        let s = !slot in
        let loc = if s < 4 then In_ireg (4 + s) else On_stack s in
        incr slot;
        (t, loc))
    tys

let lambda g (tys : Vtype.t array) : Reg.t array =
  g.Gen.prologue_at <- Codebuf.reserve g.Gen.buf ~n:reserve_words ~fill:(A.encode A.Nop);
  g.Gen.prologue_words <- reserve_words;
  g.Gen.epilogue_lab <- Gen.genlabel g;
  let locs = assign_slots tys in
  Array.map
    (fun (t, loc) ->
      match loc with
      | In_ireg n ->
        let r = Reg.R n in
        Gen.mark_in_use g r;
        r
      | In_freg n ->
        let r = Reg.F n in
        Gen.mark_in_use g r;
        r
      | On_stack s ->
        let float = Vtype.is_float t in
        let r =
          match Gen.getreg g ~cls:`Var ~float with
          | Some r -> r
          | None -> (
            match Gen.getreg g ~cls:`Temp ~float with
            | Some r -> r
            | None -> Verror.fail (Verror.Registers_exhausted "incoming arguments"))
        in
        Gen.note_write g r;
        Gen.add_arg_load g ~slot:s r t;
        r)
    locs

let frame_size g =
  if
    g.Gen.made_call || g.Gen.locals_bytes > 0 || g.Gen.used_callee <> 0
    || g.Gen.used_fcallee <> 0
  then locals_base + ((g.Gen.locals_bytes + 7) land lnot 7)
  else 0

let ret g (t : Vtype.t) (r : Reg.t option) =
  (* The return-value move rides in the jump's delay slot, exactly as in
     the paper's Figure 1 output (j ra ; move v0, a0). *)
  let site = Codebuf.length g.Gen.buf in
  e g (A.J 0);
  Gen.add_reloc g ~site ~lab:g.Gen.epilogue_lab ~kind:k_retj;
  match (t, r) with
  | Vtype.V, _ | _, None -> e g A.Nop
  | (Vtype.F as t), Some r | (Vtype.D as t), Some r ->
    if rnum r <> 0 then unary_core g Op.Mov t (Reg.F 0) r else e g A.Nop
  | t, Some r -> if rnum r <> 2 then unary_core g Op.Mov t (Reg.R 2) r else e g A.Nop

(* Save-slot assignment: slot 0 (save_base) is $ra; integer registers
   follow, then doubles (shared layout logic in {!Gen.save_layout}). *)
let save_layout g =
  Gen.save_layout g ~first_off:(save_base + 4) ~int_bytes:4 ~limit:locals_base

let push_arg g (t : Vtype.t) (r : Reg.t) = Gen.push_call_arg g t r

let do_call g (target : Gen.jtarget) =
  let n = Gen.call_arg_count g in
  let tys = Array.init n (Gen.call_arg_ty g) in
  let locs = assign_slots tys in
  let nslots =
    Array.fold_left
      (fun acc (_, loc) -> match loc with On_stack s -> max acc (s + 2) | _ -> acc)
      0 locs
  in
  if nslots > max_arg_slots then
    Verror.fail (Verror.Unsupported "more than 12 outgoing argument slots");
  g.Gen.max_call_args <- max g.Gen.max_call_args nslots;
  (* stack args first, then register moves *)
  Array.iteri
    (fun i (t, loc) ->
      let src = Gen.call_arg_reg g i in
      match loc with
      | On_stack s -> store_imm_core g t src (Reg.R 29) (outarg_base + (4 * s))
      | In_ireg _ | In_freg _ -> ())
    locs;
  Array.iteri
    (fun i (t, loc) ->
      let src = Gen.call_arg_reg g i in
      match loc with
      | In_ireg n -> if rnum src <> n then unary_core g Op.Mov t (Reg.R n) src
      | In_freg n -> if rnum src <> n then unary_core g Op.Mov t (Reg.F n) src
      | On_stack _ -> ())
    locs;
  Gen.clear_call_args g;
  jal g target

let retval g (t : Vtype.t) (r : Reg.t) =
  match t with
  | Vtype.V -> ()
  | Vtype.F | Vtype.D ->
    Gen.note_write g r;
    if rnum r <> 0 then unary_core g Op.Mov t r (Reg.F 0)
  | _ ->
    Gen.note_write g r;
    if rnum r <> 2 then unary_core g Op.Mov t r (Reg.R 2)

(* ------------------------------------------------------------------ *)
(* Function finalization (section 5.2 backpatching)                    *)

let finish g =
  let frame = frame_size g in
  let saves = save_layout g in
  (* epilogue *)
  Gen.bind_label g g.Gen.epilogue_lab;
  if g.Gen.made_call then e g (A.Lw (31, 29, save_base));
  List.iter
    (function
      | `Int (n, off) -> e g (A.Lw (n, 29, off))
      | `Fp (n, off) -> e g (A.Ldc1 (n, 29, off)))
    saves;
  if frame <> 0 then e g (A.Addiu (29, 29, frame));
  e g (A.Jr 31);
  e g A.Nop;
  (* floating-point immediate pool *)
  Gen.place_fimms g ~big_endian:false ~patch:(fun ~site ~addr ->
      let hi, lo = hi_lo addr in
      Codebuf.set g.Gen.buf site (A.encode (A.Lui (scratch, hi)));
      let old = Codebuf.get g.Gen.buf (site + 1) in
      Codebuf.set g.Gen.buf (site + 1) ((old land 0xFFFF0000) lor (lo land 0xFFFF)));
  (* prologue: written into the tail of the reserved area *)
  let prologue = ref [] in
  let add i = prologue := i :: !prologue in
  if frame <> 0 then add (A.Addiu (29, 29, -frame));
  if g.Gen.made_call then add (A.Sw (31, 29, save_base));
  List.iter
    (function
      | `Int (n, off) -> add (A.Sw (n, 29, off))
      | `Fp (n, off) -> add (A.Sdc1 (n, 29, off)))
    saves;
  Gen.iter_arg_loads g (fun ~slot r t ->
      let off = frame + outarg_base + (4 * slot) in
      match t with
      | Vtype.F -> add (A.Lwc1 (rnum r, 29, off))
      | Vtype.D -> add (A.Ldc1 (rnum r, 29, off))
      | _ -> add (A.Lw (rnum r, 29, off)));
  let pro = List.rev !prologue in
  let k = List.length pro in
  if k > reserve_words then Verror.fail (Verror.Unsupported "prologue overflow");
  let start = g.Gen.prologue_at + g.Gen.prologue_words - k in
  List.iteri (fun i insn -> Codebuf.set g.Gen.buf (start + i) (A.encode insn)) pro;
  g.Gen.entry_index <- start;
  (* relocations *)
  let trivial = frame = 0 in
  Gen.resolve_relocs g ~apply:(fun ~kind ~site ~dest ->
      if kind = k_branch then begin
        let off = dest - (site + 1) in
        if off < -32768 || off > 32767 then
          Verror.fail (Verror.Range "branch displacement");
        let old = Codebuf.get g.Gen.buf site in
        Codebuf.set g.Gen.buf site ((old land 0xFFFF0000) lor (off land 0xFFFF))
      end
      else begin
        let addr = g.Gen.base + (4 * dest) in
        if kind = k_jump then Codebuf.set g.Gen.buf site (A.encode (A.J (addr lsr 2)))
        else if kind = k_call then Codebuf.set g.Gen.buf site (A.encode (A.Jal (addr lsr 2)))
        else if kind = k_retj then begin
          (* the paper's epilogue-jump elimination: a frameless function
             returns directly *)
          if trivial then Codebuf.set g.Gen.buf site (A.encode (A.Jr 31))
          else Codebuf.set g.Gen.buf site (A.encode (A.J (addr lsr 2)))
        end
        else Verror.failf "unknown reloc kind %d" kind
      end)

let apply_reloc _g ~kind:_ ~site:_ ~dest:_ =
  (* resolution happens inside [finish] where frame context is known *)
  ()

(* Peephole interposition hooks: the raw port binds labels directly and
   needs no window barrier. *)
let bind_label g l = Gen.bind_label g l
let sync _g = ()

(* Mirror of [arith_imm]'s single-instruction fast paths. *)
let binop_imm_fits (op : Op.binop) imm =
  match op with
  | Op.Add -> fits16s imm
  | Op.Sub -> fits16s (-imm)
  | Op.And | Op.Or | Op.Xor -> fits16u imm
  | Op.Lsh | Op.Rsh -> imm >= 0 && imm <= 31
  | Op.Mul | Op.Div | Op.Mod -> false

let disasm ~word ~addr = A.disasm ~addr word

(* Extra machine instructions exported to the extension spec language
   (section 5.4): the paper's running example is MIPS fsqrt. *)
let extra_insns =
  [
    ("fsqrts", fun g (rs : Reg.t array) -> e g (A.Fsqrt (A.FS, rnum rs.(0), rnum rs.(1))));
    ("fsqrtd", fun g rs -> e g (A.Fsqrt (A.FD, rnum rs.(0), rnum rs.(1))));
    ("fabss", fun g rs -> e g (A.Fabs (A.FS, rnum rs.(0), rnum rs.(1))));
    ("fabsd", fun g rs -> e g (A.Fabs (A.FD, rnum rs.(0), rnum rs.(1))));
    ("mfhi", fun g rs -> e g (A.Mfhi (rnum rs.(0))));
    ("mflo", fun g rs -> e g (A.Mflo (rnum rs.(0))));
    ("addu", fun g rs -> ew g (A.W.addu (rnum rs.(0)) (rnum rs.(1)) (rnum rs.(2))));
    ("subu", fun g rs -> ew g (A.W.subu (rnum rs.(0)) (rnum rs.(1)) (rnum rs.(2))));
  ]

let extra_imm_insns =
  [
    ("addiu", fun g (rs : Reg.t array) imm -> e g (A.Addiu (rnum rs.(0), rnum rs.(1), imm)));
    ("ori", fun g rs imm -> e g (A.Ori (rnum rs.(0), rnum rs.(1), imm)));
    ("sll", fun g rs imm -> e g (A.Sll (rnum rs.(0), rnum rs.(1), imm land 31)));
  ]
