(** A bytecode virtual machine with a VCODE JIT.

    The paper's first motivating use of dynamic code generation
    (section 1): "interpreters that compile frequently used code to
    machine code and then execute it directly".  This library packages
    the substrate for that experiment: a small stack-machine bytecode
    with a symbolic assembler, a reference interpreter, the same
    interpreter in the tcc C subset (so the "interpreted" side of a
    comparison is itself compiled code on the same simulated CPU), and
    [Jit]: a one-pass bytecode-to-VCODE translator portable over every
    VCODE target. *)

(** {2 Bytecode} *)

type bop = PUSH | LOAD | STORE | ADD | SUB | MUL | LT | JZ | JMP | RET

val opcode : bop -> int
val op_name : bop -> string

(** one instruction per element: (operation, operand); the operand is 0
    for operations that take none *)
type program = (bop * int) array

val pp_program : Format.formatter -> program -> unit

(** symbolic assembler input: jumps name labels instead of absolute
    indices *)
type 'l sinsn =
  | Push of int
  | Load of int
  | Store of int
  | Add
  | Sub
  | Mul
  | Lt
  | Jz of 'l
  | Jmp of 'l
  | Ret
  | Label of 'l

(** labels occupy no space in the assembled program;
    @raise Invalid_argument on a jump to an undefined label *)
val assemble : 'l sinsn list -> program

(** serialize as (opcode, operand) 32-bit word pairs — the in-memory
    format the tcc interpreter consumes *)
val image : program -> int array

(** {2 Reference semantics} *)

(** raised by {!reference} on stack over/underflow, runaway programs and
    falling off the end, and by {!Jit.translate} when the bytecode
    exceeds [max_stack] *)
exception Vm_error of string

(** sign-extend from 32 bits (the VM's wrapping arithmetic) *)
val sext32 : int -> int

(** interpret with 32-bit wrapping arithmetic; [fuel] bounds runaway
    programs (default 1_000_000 steps) *)
val reference : ?fuel:int -> program -> int -> int

(** {2 The interpreter in the tcc C subset} *)

val interpreter_source : string
val interpreter_function : string

(** {2 The JIT} *)

module Jit (T : Vcodebase.Target.S) : sig
  (** Translate a program to machine code.  The operand stack is
      mapped to registers at translation time (the classic technique);
      [max_stack] bounds the depth the program may use and
      [max_locals] the locals it may address.  Assumes — like any
      single-pass JIT of this design — that stack depth is consistent
      at join points.
      @raise Vm_error when the bytecode exceeds [max_stack] *)
  val translate : ?base:int -> ?max_stack:int -> ?max_locals:int -> program -> Vcode.code
end
