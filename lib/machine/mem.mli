(** Byte-addressable simulated memory.

    One flat region starting at address 0, in either endianness (the
    substrate serves the little-endian MIPS/Alpha simulators and the
    big-endian SPARC simulator).  Scalar accessors require natural
    alignment and raise {!Fault} otherwise — the discipline the RISC
    targets enforce in hardware. *)

exception Fault of string

type t

val create : ?big_endian:bool -> size:int -> unit -> t
val size : t -> int
val big_endian : t -> bool

(** handle naming one registered write watcher, for later removal *)
type watcher

(** [set_write_watcher t f] registers [f] to be called as [f addr len]
    after every mutation of the memory — scalar stores, the bulk
    helpers, and {!install_code}.  The simulators hang
    {!Decode_cache.invalidate} here so predecoded instructions can
    never be executed stale.  Registering replaces {e all} previously
    registered watchers; use {!add_write_watcher} to compose. *)
val set_write_watcher : t -> (int -> int -> unit) -> unit

(** [add_write_watcher t f] registers [f] {e in addition to} any
    already-registered watchers and returns a handle for
    {!remove_write_watcher}; on a store, watchers run in registration
    order.  The simulators register {!Decode_cache.invalidate} and
    {!Block_cache.invalidate} this way.  Per-store dispatch cost is
    O(live watchers) — zero watchers hit a shared no-op, a single
    watcher is called bare (no wrapper closure), and k > 1 share one
    array walk — never O(registrations ever made), so install/evict
    churn that adds and removes watchers leaves the store path flat. *)
val add_write_watcher : t -> (int -> int -> unit) -> watcher

(** [remove_write_watcher t w] unregisters the watcher named by [w];
    idempotent — removing a handle twice (or one superseded by
    {!set_write_watcher}) is a no-op *)
val remove_write_watcher : t -> watcher -> unit

(** live registered watchers (tests pin the store-path cost model) *)
val watcher_count : t -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit
val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit

(** bulk helpers for workload setup; bounds-checked against the true
    operation length but not alignment-checked.  Zero-length operations
    are no-ops, valid for any [addr] in [\[0, size]]; negative lengths
    raise {!Fault}. *)

val blit_string : t -> addr:int -> string -> unit
val blit_bytes : t -> addr:int -> Bytes.t -> unit
val read_string : t -> addr:int -> len:int -> string
val fill : t -> addr:int -> len:int -> char -> unit

(** load a code buffer at [addr], honoring this memory's endianness *)
val install_code : t -> addr:int -> Vcodebase.Codebuf.t -> unit
