(** Structured telemetry for the codegen ladder and the simulators.

    A sink of named monotonic counters, value distributions
    (count/sum/min/max plus fixed log2 buckets) and a bounded
    structured event ring.  All storage is allocated up front: the
    hot-path operations ([bump], [add], [observe], [event]) are plain
    int-array stores with no allocation.

    The compile-out path is the {!disabled} sink: registering on it
    returns a scratch id and every store lands in a one-slot scratch
    array, so instrumentation sites stay branch-free no-ops.
    Telemetry never touches the simulated clock or the timing
    {!Cache} statistics — cycle counts and cache stats are
    bit-identical whether the sink is enabled, disabled, or absent. *)

type t

(** a registered counter id; valid only against the sink that issued it *)
type counter

(** a registered distribution id; valid only against the sink that issued it *)
type dist

(** structured event kinds recorded in the ring *)
type kind =
  | Block_compile      (** a superblock was compiled: (entry, insns) *)
  | Block_evict        (** a compile replaced a resident block: (entry, insns) *)
  | Block_chain        (** direct block-to-block chain: (entry, run length) *)
  | Block_abort        (** a running block aborted via [Retired]: (entry, insn index) *)
  | Cache_invalidate   (** a store dropped predecode/translation state: (addr, len) *)
  | Smc_retire         (** a store retired resident translations: (addr, len) *)
  | Trap               (** a fault escaped a run loop: (pc, 0) *)
  | Region_promote     (** a hot superblock was recompiled as a region: (entry, insns) *)
  | Region_side_exit   (** a specialized region took its side exit: (entry, insn index) *)

val create : unit -> t

(** the shared no-op sink *)
val disabled : t

val is_enabled : t -> bool

(** {2 Registration (cold; idempotent per name)} *)

val counter : t -> string -> counter
val dist : t -> string -> dist

(** {2 Hot path — plain int-array stores, no allocation} *)

val bump : t -> counter -> unit
val add : t -> counter -> int -> unit
val observe : t -> dist -> int -> unit
val event : t -> kind -> a:int -> b:int -> unit

(** {2 Latency timers}

    A stopwatch over host wall-clock nanoseconds feeding an ordinary
    {!dist}.  Unlike the store-based hot path above, timers gate on
    the enabled flag {e before} touching the clock: the clock read
    allocates a boxed float, so the disabled path must skip it
    entirely.  Disabled timers are two predicted branches, zero
    allocation, and leave nothing observable (pinned by
    test_telemetry_overhead). *)

(** host wall clock in nanoseconds ([Unix.gettimeofday]-based:
    microsecond granularity, may step under NTP — deltas are clamped
    at [timer_stop]) *)
val now_ns : unit -> int

(** start a stopwatch: the current time on an enabled sink, [0] on the
    disabled sink (no clock read) *)
val timer_start : t -> int

(** [timer_stop t d t0] observes the elapsed nanoseconds since
    [timer_start] into [d]; a no-op on the disabled sink *)
val timer_stop : t -> dist -> int -> unit

(** {2 Reading the sink (cold)} *)

val value : t -> counter -> int

(** counter value by registered name *)
val find : t -> string -> int option

type dist_stats = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;  (** 0 when [count = 0] *)
  buckets : int array;  (** log2 buckets: index [i] counts values in [2^i, 2^(i+1)) *)
}

val dist_stats : t -> dist -> dist_stats

(** [quantile t d q] estimates the [q]-quantile (q in [0,1], clamped)
    of a distribution from its log2 buckets: the rank [q*(count-1)] is
    located in the cumulative bucket counts and linearly interpolated
    across that bucket's value span, then clamped to the exact
    recorded [min]/[max] — so empty distributions report 0,
    single-value distributions report that value at every q, and no
    estimate ever leaves the observed range. *)
val quantile : t -> dist -> float -> int

(** the same estimator over an already-extracted {!dist_stats} (used
    by readers like vprof/vstat that have only the stats record) *)
val quantile_of_stats : dist_stats -> float -> int

val iter_counters : t -> (string -> int -> unit) -> unit
val iter_dists : t -> (string -> dist_stats -> unit) -> unit

(** retained events, oldest first (the ring keeps the newest 512) *)
val events : t -> (kind * int * int) list

(** total events ever recorded, including overwritten ones *)
val events_seen : t -> int

val kind_name : kind -> string

(** zero every counter, distribution and the event ring *)
val reset : t -> unit

(** fold one generator's emission statistics into the sink after
    v_end: per-opcode counts ([<prefix>.emit.<op>]), instruction and
    code-word totals, capacity growths, peephole rewrite counters
    ([<prefix>.peep.moves_killed/fusions/slot_fills/strength], nonzero
    only for [Vcode.Make_peephole]-wrapped ports), and the
    backpatch-distance distribution ([<prefix>.backpatch_words],
    |dest - site| in instruction words).  [prefix] defaults to
    ["gen"]. *)
val note_gen : t -> ?prefix:string -> Vcodebase.Gen.t -> unit
