(* A direct-mapped cache model with per-miss cycle penalties.

   Table 4 of the paper depends on cache behaviour (messages measured
   warm and after a flush on DECstation 3100/5000 machines with
   direct-mapped caches), so the simulators route every instruction fetch
   and data access through one of these.  Only hit/miss status and cycle
   accounting are modeled; data always comes from {!Mem}, i.e. the cache
   is a timing model, which is sufficient because the simulated machines
   have no incoherent writers.

   [access]/[write_access] sit on the simulators' per-instruction path,
   so line/index extraction is shift-and-mask; [create] requires
   power-of-two geometry to keep it that way. *)

type t = {
  line_bytes : int;
  lines : int;
  line_shift : int;        (* log2 line_bytes *)
  idx_mask : int;          (* lines - 1 *)
  tags : int array;        (* -1 = invalid *)
  miss_penalty : int;
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let create ~size_bytes ~line_bytes ~miss_penalty =
  if (not (is_pow2 line_bytes)) || not (is_pow2 size_bytes) then
    invalid_arg "Cache.create: geometry must be a power of two";
  if size_bytes mod line_bytes <> 0 then invalid_arg "Cache.create";
  let lines = size_bytes / line_bytes in
  {
    line_bytes;
    lines;
    line_shift = log2 line_bytes;
    idx_mask = lines - 1;
    tags = Array.make lines (-1);
    miss_penalty;
    hits = 0;
    misses = 0;
  }

let size_bytes t = t.lines * t.line_bytes

(* Read access to [addr]; allocates the line, returns the cycle penalty
   (0 on hit). *)
(* Instruction-fetch variant: identical tag/penalty behaviour, but the
   hit counter is NOT incremented here.  A simulator run loop performs
   exactly one such access per retired instruction, so it reconciles in
   bulk at exit: hits += retired - (misses now - misses at entry).  This
   keeps a read-modify-write of a shared counter off the per-instruction
   path while [stats] stays exact at every observation point. *)
let[@inline] access_uncounted t addr =
  let line = addr lsr t.line_shift in
  let idx = line land t.idx_mask in
  if Array.unsafe_get t.tags idx = line then 0
  else begin
    t.misses <- t.misses + 1;
    Array.unsafe_set t.tags idx line;
    t.miss_penalty
  end

let misses t = t.misses
let probe t = (t.tags, t.line_shift, t.idx_mask)
let add_hits t n = t.hits <- t.hits + n

let[@inline] access t addr =
  let line = addr lsr t.line_shift in
  let idx = line land t.idx_mask in
  if Array.unsafe_get t.tags idx = line then begin
    t.hits <- t.hits + 1;
    0
  end
  else begin
    t.misses <- t.misses + 1;
    Array.unsafe_set t.tags idx line;
    t.miss_penalty
  end

(* Write access: the DECstation caches are write-through with no write
   allocation, so a store updates a resident line but never fills one,
   and the write buffer absorbs the memory write (no stall modelled).
   This is load-bearing for Table 4: data written by a copy pass is NOT
   cache-resident for a later checksum pass. *)
let[@inline] write_access t addr =
  let line = addr lsr t.line_shift in
  let idx = line land t.idx_mask in
  if Array.unsafe_get t.tags idx = line then t.hits <- t.hits + 1
  else t.misses <- t.misses + 1;
  0

(* Invalidate everything: models both an explicit flush (the uncached
   rows of Table 4) and the icache invalidation VCODE's v_end performs
   after writing instructions (section 3.2 step 4). *)
let flush t = Array.fill t.tags 0 t.lines (-1)

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let stats t = (t.hits, t.misses)
