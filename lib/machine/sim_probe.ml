(* The shared simulator probe: one instrumentation surface used by all
   four CPU simulators, so the ports cannot drift in what or how they
   report.  A probe is created once per simulator instance against a
   {!Telemetry} sink with the port's name and engine mode; every
   counter and distribution id is registered up front, so the calls the
   simulators make are branch-free stores (or, on the per-block path,
   one [enabled] test around a handful of stores).

   Counter names:
     <port>.retired.<mode>   instructions retired (bulk, at run exit)
     <port>.faults           Machine_error / Mem.Fault escapes
     <port>.smc_retires      blocks aborted mid-run by the Retired protocol
     <port>.block_execs      compiled-block executions (chains included)
     <port>.block_chains     direct block-to-block transitions
     <port>.region_execs     compiled-region dispatches (tier 3)
     <port>.region_side_exits  specialized-trace side exits taken
   Distributions:
     <port>.chain_len        blocks executed per dispatch-loop entry
     <port>.run_ns           host wall-clock nanoseconds per run call *)

type t = {
  tel : Telemetry.t;
  tr : Trace.t; (* fault/abort markers; the disabled sink is scratch *)
  enabled : bool;
  retired : Telemetry.counter;
  faults : Telemetry.counter;
  smc_retires : Telemetry.counter;
  block_execs : Telemetry.counter;
  block_chains : Telemetry.counter;
  region_execs : Telemetry.counter;
  region_side_exits : Telemetry.counter;
  chain_len : Telemetry.dist;
  run_ns : Telemetry.dist;
  mutable run_len : int; (* blocks executed since the last dispatch *)
}

let mode_name ~predecode ~blocks ~regions =
  if regions then "regions"
  else if blocks then "blocks"
  else if predecode then "predecode"
  else "off"

let create ?(trace = Trace.disabled) tel ~port ~predecode ~blocks ~regions =
  {
    tel;
    tr = trace;
    enabled = Telemetry.is_enabled tel;
    retired =
      Telemetry.counter tel
        (port ^ ".retired." ^ mode_name ~predecode ~blocks ~regions);
    faults = Telemetry.counter tel (port ^ ".faults");
    smc_retires = Telemetry.counter tel (port ^ ".smc_retires");
    block_execs = Telemetry.counter tel (port ^ ".block_execs");
    block_chains = Telemetry.counter tel (port ^ ".block_chains");
    region_execs = Telemetry.counter tel (port ^ ".region_execs");
    region_side_exits = Telemetry.counter tel (port ^ ".region_side_exits");
    chain_len = Telemetry.dist tel (port ^ ".chain_len");
    run_ns = Telemetry.dist tel (port ^ ".run_ns");
    run_len = 0;
  }

let enabled p = p.enabled

(* per-run latency: [run_start] at run entry, [run_done] in the run's
   exit path (normal and exceptional), observing the host-time delta
   into <port>.run_ns.  Timers gate on the enabled flag inside
   Telemetry, so the disabled path never reads the clock. *)
let[@inline] run_start p = Telemetry.timer_start p.tel
let[@inline] run_done p t0 = Telemetry.timer_stop p.tel p.run_ns t0

(* bulk, at run exit (normal or exceptional): the retired-instruction
   delta the simulator just reconciled into its cycle count *)
let retired p n = Telemetry.add p.tel p.retired n

(* a fault escaped the run loop *)
let fault p ~pc =
  Telemetry.bump p.tel p.faults;
  Telemetry.event p.tel Telemetry.Trap ~a:pc ~b:0;
  Trace.mark p.tr Trace.Fault pc

(* a running block aborted via the dirty/Retired protocol after
   retiring instruction [i] of the block at [entry]; every port's
   instructions are 4 bytes, so the aborting pc is [entry + 4*i] *)
let abort p ~entry ~i =
  Telemetry.bump p.tel p.smc_retires;
  Telemetry.event p.tel Telemetry.Block_abort ~a:entry ~b:i;
  Trace.mark p.tr Trace.Smc_abort (entry + (4 * i))

(* one compiled-block execution ([exec_chain] entry, self-loops
   included); only called when [enabled] *)
let block_exec p ~entry =
  Telemetry.bump p.tel p.block_execs;
  p.run_len <- p.run_len + 1;
  if p.run_len > 1 then begin
    Telemetry.bump p.tel p.block_chains;
    Telemetry.event p.tel Telemetry.Block_chain ~a:entry ~b:p.run_len
  end

(* one compiled-region dispatch (tier 3); counts toward the chained-run
   length like a block execution; only called when [enabled] *)
let region_exec p ~entry =
  Telemetry.bump p.tel p.region_execs;
  p.run_len <- p.run_len + 1;
  if p.run_len > 1 then begin
    Telemetry.bump p.tel p.block_chains;
    Telemetry.event p.tel Telemetry.Block_chain ~a:entry ~b:p.run_len
  end

(* a specialized region took its side exit after retiring instruction
   [i] of the region at [entry] *)
let side_exit p ~entry ~i =
  Telemetry.bump p.tel p.region_side_exits;
  Telemetry.event p.tel Telemetry.Region_side_exit ~a:entry ~b:i

(* close the current chained run (next dispatch-loop iteration or run
   exit): record its length *)
let chain_flush p =
  if p.run_len > 0 then begin
    Telemetry.observe p.tel p.chain_len p.run_len;
    p.run_len <- 0
  end
