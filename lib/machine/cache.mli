(** A direct-mapped cache timing model with per-miss cycle penalties.

    The simulators route every instruction fetch and data access
    through one of these.  Only hit/miss status and cycle accounting
    are modeled; data always comes from {!Mem}.

    Writes are write-through with {e no write allocation} — a store
    updates a resident line but never fills one — matching the
    DECstation 3100/5000 caches.  This detail is load-bearing for the
    paper's Table 4: data written by a copy pass is not cache-resident
    for a later checksum pass. *)

type t

val create : size_bytes:int -> line_bytes:int -> miss_penalty:int -> t
val size_bytes : t -> int

(** read access: allocates the line; returns the cycle penalty (0 on a
    hit, [miss_penalty] on a miss) *)
val access : t -> int -> int

(** [access_uncounted] is {!access} minus the hit-counter update: tag
    check, line fill and penalty are identical, but hits are NOT
    recorded.  For callers that perform a statically known number of
    accesses (an instruction-fetch loop does exactly one per retired
    instruction) and reconcile in bulk afterwards:
    [add_hits t (accesses - (misses t - misses_at_entry))].  Keeps a
    shared-counter read-modify-write off the per-instruction hot path
    while [stats] stays exact at every observation point. *)
val access_uncounted : t -> int -> int

(** current miss count (same value as [snd (stats t)]) *)
val misses : t -> int

(** [(tags, line_shift, idx_mask)] — the hit-test state, for a fetch
    loop that wants the tag probe in registers: a hit is
    [tags.((addr lsr line_shift) land idx_mask) = addr lsr line_shift].
    On a mismatch the caller must fall back to [access]/
    [access_uncounted] so fills and miss counts happen in the model.
    [tags] aliases the live cache (never replaced, mutated by fills). *)
val probe : t -> int array * int * int

(** bulk hit-counter credit; see [access_uncounted] *)
val add_hits : t -> int -> unit

(** write access: write-through, no allocation, no stall (the write
    buffer absorbs it); returns 0 *)
val write_access : t -> int -> int

(** invalidate everything — both the explicit flush of Table 4's
    uncached rows and the icache invalidation of v_end *)
val flush : t -> unit

val reset_stats : t -> unit

(** [(hits, misses)] since the last [reset_stats] *)
val stats : t -> int * int
