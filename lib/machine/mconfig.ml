(* Machine configurations for the evaluation.

   The paper measures on a DECstation 3100 (MIPS R2000 @ 16.7MHz, 64KB
   I + 64KB D direct-mapped, ~6-cycle miss) and a DECstation 5000/200
   (R3000 @ 25MHz, 64KB+64KB, ~15-cycle miss to slower-relative memory).
   The exact penalties do not matter for reproducing Table 3/4 shape;
   what matters is that the 5000 is faster per cycle while a miss costs
   relatively more, which these configurations capture. *)

type t = {
  name : string;
  clock_mhz : float;
  icache_bytes : int;
  dcache_bytes : int;
  line_bytes : int;
  imiss_penalty : int;
  dmiss_penalty : int;
  mem_bytes : int;
}

let dec3100 = {
  name = "DEC3100";
  clock_mhz = 16.67;
  icache_bytes = 64 * 1024;
  dcache_bytes = 64 * 1024;
  line_bytes = 16;
  imiss_penalty = 6;
  dmiss_penalty = 6;
  mem_bytes = 4 * 1024 * 1024;
}

let dec5000 = {
  name = "DEC5000";
  clock_mhz = 25.0;
  icache_bytes = 64 * 1024;
  dcache_bytes = 64 * 1024;
  line_bytes = 16;
  imiss_penalty = 15;
  dmiss_penalty = 15;
  mem_bytes = 4 * 1024 * 1024;
}

(* A generic modern-ish config used by tests that don't model a paper
   machine: big caches so cycle counts are dominated by instruction
   counts. *)
let test_config = {
  name = "test";
  clock_mhz = 100.0;
  icache_bytes = 256 * 1024;
  dcache_bytes = 256 * 1024;
  line_bytes = 16;
  imiss_penalty = 4;
  dmiss_penalty = 4;
  mem_bytes = 4 * 1024 * 1024;
}

(* The router-service machine: DEC5000 timing with enough memory for a
   10k-filter resident code arena (~5MB of slabs) plus headroom.  The
   translation caches size their tables lazily from the touched
   address range, so the larger ceiling costs nothing until code
   actually lands high. *)
let router = { dec5000 with name = "DEC5000-router"; mem_bytes = 8 * 1024 * 1024 }

let cycles_to_us t cycles = float_of_int cycles /. t.clock_mhz
