(* Structured telemetry for the codegen ladder and the simulators.

   One sink holds three kinds of pre-allocated storage:

   - named monotonic counters: a registry mapping names to dense int
     ids; the value store is a plain [int array], so the hot-path
     operation ([bump]/[add]) is one unsafe load/store pair;

   - value distributions: per-distribution packed stats (count, sum,
     min, max) plus a fixed array of log2 buckets, all in one int
     array at a fixed stride — [observe] is straight-line int
     arithmetic, no allocation;

   - a bounded structured event ring: fixed-capacity, fixed-stride int
     ring recording (kind, a, b) triples; once full, new events
     overwrite the oldest.  [events_seen] keeps the true total.

   The compile-out path is the [disabled] sink: registration on it
   always returns id 0 and its stores are tiny shared scratch arrays,
   so every instrumentation site stays a branch-free store that lands
   in scratch — no conditional, no allocation, and nothing observable.
   Instrumented code can also consult [is_enabled] to skip whole
   instrumentation blocks (the simulators do this on their per-block
   path).

   Telemetry never touches the simulated clock or the timing {!Cache}
   statistics, so cycle counts and cache stats are bit-identical with
   the sink disabled or absent (pinned by test_telemetry_overhead). *)

type counter = int
type dist = int

type kind =
  | Block_compile
  | Block_evict
  | Block_chain
  | Block_abort
  | Cache_invalidate
  | Smc_retire
  | Trap
  | Region_promote
  | Region_side_exit

let kind_to_int = function
  | Block_compile -> 0
  | Block_evict -> 1
  | Block_chain -> 2
  | Block_abort -> 3
  | Cache_invalidate -> 4
  | Smc_retire -> 5
  | Trap -> 6
  | Region_promote -> 7
  | Region_side_exit -> 8

let kind_of_int = function
  | 0 -> Block_compile
  | 1 -> Block_evict
  | 2 -> Block_chain
  | 3 -> Block_abort
  | 4 -> Cache_invalidate
  | 5 -> Smc_retire
  | 7 -> Region_promote
  | 8 -> Region_side_exit
  | _ -> Trap

let kind_name = function
  | Block_compile -> "block_compile"
  | Block_evict -> "block_evict"
  | Block_chain -> "block_chain"
  | Block_abort -> "block_abort"
  | Cache_invalidate -> "cache_invalidate"
  | Smc_retire -> "smc_retire"
  | Trap -> "trap"
  | Region_promote -> "region_promote"
  | Region_side_exit -> "region_side_exit"

(* distribution packing: count, sum, min, max, then [n_buckets] log2
   buckets (bucket i counts values v with floor(log2 (max v 1)) = i;
   v <= 0 lands in bucket 0) *)
let n_buckets = 32
let d_stride = 4 + n_buckets

let ring_entries = 512 (* power of two; stride-3 int triples *)

type t = {
  on : bool;
  mutable cnames : string array;
  mutable cvals : int array;
  mutable ncounters : int;
  mutable dnames : string array;
  mutable dvals : int array;
  mutable ndists : int;
  ring : int array;
  ring_mask : int; (* in entries *)
  mutable seen : int;
}

let create () =
  {
    on = true;
    cnames = Array.make 16 "";
    cvals = Array.make 16 0;
    ncounters = 0;
    dnames = Array.make 4 "";
    dvals = Array.make (4 * d_stride) 0;
    ndists = 0;
    ring = Array.make (3 * ring_entries) 0;
    ring_mask = ring_entries - 1;
    seen = 0;
  }

(* The disabled sink: one scratch slot of each kind.  Registration
   returns id 0, so every store any instrumentation site can issue
   lands inside the scratch — the sites stay branch-free. *)
let disabled =
  {
    on = false;
    cnames = [||];
    cvals = Array.make 1 0;
    ncounters = 0;
    dnames = [||];
    dvals = Array.make d_stride 0;
    ndists = 0;
    ring = Array.make 3 0;
    ring_mask = 0;
    seen = 0;
  }

let is_enabled t = t.on

let init_dist_slot t id =
  let o = id * d_stride in
  t.dvals.(o) <- 0;
  t.dvals.(o + 1) <- 0;
  t.dvals.(o + 2) <- max_int;
  t.dvals.(o + 3) <- min_int;
  Array.fill t.dvals (o + 4) n_buckets 0

(* Registration is cold: linear scan for idempotence (re-registering a
   name returns the existing id, so probes can be re-created against
   one sink), amortized doubling for growth. *)
let counter t name =
  if not t.on then 0
  else begin
    let rec find i = if i >= t.ncounters then -1 else if t.cnames.(i) = name then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then i
    else begin
      if t.ncounters = Array.length t.cvals then begin
        let n = 2 * t.ncounters in
        let cn = Array.make n "" and cv = Array.make n 0 in
        Array.blit t.cnames 0 cn 0 t.ncounters;
        Array.blit t.cvals 0 cv 0 t.ncounters;
        t.cnames <- cn;
        t.cvals <- cv
      end;
      let id = t.ncounters in
      t.cnames.(id) <- name;
      t.cvals.(id) <- 0;
      t.ncounters <- id + 1;
      id
    end
  end

let dist t name =
  if not t.on then 0
  else begin
    let rec find i = if i >= t.ndists then -1 else if t.dnames.(i) = name then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then i
    else begin
      if t.ndists = Array.length t.dnames then begin
        let n = 2 * t.ndists in
        let dn = Array.make n "" and dv = Array.make (n * d_stride) 0 in
        Array.blit t.dnames 0 dn 0 t.ndists;
        Array.blit t.dvals 0 dv 0 (t.ndists * d_stride);
        t.dnames <- dn;
        t.dvals <- dv
      end;
      let id = t.ndists in
      t.dnames.(id) <- name;
      t.ndists <- id + 1;
      init_dist_slot t id;
      id
    end
  end

(* hot path: ids come from [counter]/[dist] against the same sink, so
   they index in range by construction (the disabled sink's scratch is
   id 0) *)
let[@inline] bump t c =
  Array.unsafe_set t.cvals c (Array.unsafe_get t.cvals c + 1)

let[@inline] add t c n =
  Array.unsafe_set t.cvals c (Array.unsafe_get t.cvals c + n)

let[@inline] log2_bucket v =
  if v <= 1 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      incr b
    done;
    if !b >= n_buckets then n_buckets - 1 else !b
  end

let observe t d v =
  let o = d * d_stride in
  let a = t.dvals in
  Array.unsafe_set a o (Array.unsafe_get a o + 1);
  Array.unsafe_set a (o + 1) (Array.unsafe_get a (o + 1) + v);
  if v < Array.unsafe_get a (o + 2) then Array.unsafe_set a (o + 2) v;
  if v > Array.unsafe_get a (o + 3) then Array.unsafe_set a (o + 3) v;
  let b = o + 4 + log2_bucket v in
  Array.unsafe_set a b (Array.unsafe_get a b + 1)

(* ------------------------------------------------------------------ *)
(* Latency timers                                                      *)

(* Host wall-clock in nanoseconds.  [Unix.gettimeofday] is the only
   clock available without adding a dependency; it is microsecond
   granularity and (rarely) steps under NTP, so [timer_stop] clamps
   negative deltas to zero.  The log2 buckets absorb the granularity:
   anything under 1 us lands in the low buckets either way. *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Timers gate on [t.on] BEFORE touching the clock: [gettimeofday]
   returns a boxed float, so a branch-free store discipline would
   allocate on the disabled path.  The disabled timer is two predicted
   branches and no clock read — pinned zero-allocation by
   test_telemetry_overhead. *)
let[@inline] timer_start t = if t.on then now_ns () else 0

let event t k ~a ~b =
  let i = 3 * (t.seen land t.ring_mask) in
  let r = t.ring in
  Array.unsafe_set r i (kind_to_int k);
  Array.unsafe_set r (i + 1) a;
  Array.unsafe_set r (i + 2) b;
  t.seen <- t.seen + 1

let[@inline] timer_stop t d t0 =
  if t.on then begin
    let dt = now_ns () - t0 in
    observe t d (if dt < 0 then 0 else dt)
  end

(* ------------------------------------------------------------------ *)
(* Reading the sink (cold)                                             *)

let value t c = if c < 0 || c >= t.ncounters then 0 else t.cvals.(c)

let find t name =
  let rec go i =
    if i >= t.ncounters then None
    else if t.cnames.(i) = name then Some t.cvals.(i)
    else go (i + 1)
  in
  go 0

type dist_stats = { count : int; sum : int; min : int; max : int; buckets : int array }

let dist_stats t d =
  if d < 0 || d >= t.ndists then { count = 0; sum = 0; min = 0; max = 0; buckets = Array.make n_buckets 0 }
  else begin
    let o = d * d_stride in
    let count = t.dvals.(o) in
    {
      count;
      sum = t.dvals.(o + 1);
      min = (if count = 0 then 0 else t.dvals.(o + 2));
      max = (if count = 0 then 0 else t.dvals.(o + 3));
      buckets = Array.sub t.dvals (o + 4) n_buckets;
    }
  end

(* Quantile estimation over the log2 buckets.  The rank q*(count-1) is
   located in the cumulative bucket counts, then linearly interpolated
   across that bucket's value span ([2^i, 2^(i+1)-1]; bucket 0 spans
   [0,1] because observe sends v <= 1 there).  The estimate is clamped
   to the exact recorded [min, max], so single-value and one-bucket
   distributions report exactly. *)
let quantile_of_stats (s : dist_stats) q =
  if s.count = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let target = q *. float_of_int (s.count - 1) in
    let est = ref s.max and cum = ref 0. and i = ref 0 in
    (try
       while !i < Array.length s.buckets do
         let n = s.buckets.(!i) in
         if n > 0 then begin
           let fn = float_of_int n in
           if target < !cum +. fn then begin
             let frac = (target -. !cum) /. fn in
             let lo = if !i = 0 then 0. else Float.of_int (1 lsl !i) in
             let hi = if !i = 0 then 1. else Float.of_int ((1 lsl (!i + 1)) - 1) in
             est := int_of_float (lo +. (frac *. (hi -. lo)) +. 0.5);
             raise Exit
           end;
           cum := !cum +. fn
         end;
         incr i
       done
     with Exit -> ());
    let v = !est in
    if v < s.min then s.min else if v > s.max then s.max else v
  end

let quantile t d q = quantile_of_stats (dist_stats t d) q

let iter_counters t f =
  for i = 0 to t.ncounters - 1 do
    f t.cnames.(i) t.cvals.(i)
  done

let iter_dists t f =
  for i = 0 to t.ndists - 1 do
    f t.dnames.(i) (dist_stats t i)
  done

let events_seen t = t.seen

let events t =
  let n = min t.seen (t.ring_mask + 1) in
  let first = t.seen - n in
  List.init n (fun j ->
      let i = 3 * ((first + j) land t.ring_mask) in
      (kind_of_int t.ring.(i), t.ring.(i + 1), t.ring.(i + 2)))

let reset t =
  if t.on then begin
    Array.fill t.cvals 0 t.ncounters 0;
    for d = 0 to t.ndists - 1 do
      init_dist_slot t d
    done;
    t.seen <- 0
  end

(* ------------------------------------------------------------------ *)
(* Codegen harvest                                                     *)

(* Fold one generator's emission statistics into the sink: per-opcode
   counts (named [gen.emit.<op>]), the total, capacity growths and the
   backpatch-distance distribution (|dest - site| in instruction
   words, from the resolved relocation table).  Called after v_end —
   harvesting keeps {!Gen} free of any telemetry dependency while its
   hot path stays the PR 3 packed-int-array design. *)
let note_gen t ?(prefix = "gen") (g : Vcodebase.Gen.t) =
  if t.on then begin
    let open Vcodebase in
    for k = 0 to Opk.slots - 1 do
      let n = Gen.op_count g k in
      if n > 0 then add t (counter t (prefix ^ ".emit." ^ Opk.name k)) n
    done;
    add t (counter t (prefix ^ ".insns")) g.Gen.insn_count;
    add t (counter t (prefix ^ ".code_words")) (Codebuf.length g.Gen.buf);
    add t (counter t (prefix ^ ".capacity_growths")) (Codebuf.growths g.Gen.buf);
    add t (counter t (prefix ^ ".relocs")) (Gen.total_relocs g);
    (* peephole rewrite counters: all zero unless the port was wrapped
       in [Vcode.Make_peephole] *)
    let p = g.Gen.peep in
    let peep name v = if v > 0 then add t (counter t (prefix ^ ".peep." ^ name)) v in
    peep "moves_killed" p.Peepwin.moves_killed;
    peep "fusions" p.Peepwin.fusions;
    peep "slot_fills" p.Peepwin.slot_fills;
    peep "strength" p.Peepwin.strength;
    let d = dist t (prefix ^ ".backpatch_words") in
    Gen.iter_reloc_spans g (fun ~site ~dest -> observe t d (abs (dest - site)))
  end
