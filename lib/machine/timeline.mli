(** A gauge-snapshot ring: periodic samples of named int gauges over a
    run, the timeline companion to {!Telemetry}'s whole-run
    aggregates.

    Register int-returning gauge closures up front, then call {!tick}
    once per unit of work (packet, run, ...).  Every [every] ticks the
    timeline snapshots all gauges into a preallocated int ring row
    stamped with the tick ordinal; once full, new rows overwrite the
    oldest ({!samples_seen} keeps the true total, so {!dropped} is
    exact).  Exported as Perfetto [counter] tracks by
    [Chrome_trace.write_timeline] in the harness.

    The {!disabled} timeline never samples: gauges are closures, so
    (unlike Telemetry's branch-free stores) sampling must be gated —
    its trigger threshold is pinned so the compare in [tick] never
    fires, making a disabled tick one increment plus one predicted
    branch with zero allocation and no gauge calls. *)

type t

(** [create ?every ?rows ?max_gauges ()] — sample every [every] ticks
    (default 64) into a ring of [rows] rows (default 1024) holding up
    to [max_gauges] gauges (default 16; fixed row stride, so late
    registration reads as 0 in older rows). *)
val create : ?every:int -> ?rows:int -> ?max_gauges:int -> unit -> t

(** the shared no-op timeline *)
val disabled : t

val is_enabled : t -> bool

(** register (or re-point, per name) a gauge; cold.  Raises
    [Invalid_argument] past [max_gauges] on an enabled timeline; a
    no-op on {!disabled}. *)
val gauge : t -> string -> (unit -> int) -> unit

(** {2 Hot path} *)

(** advance the tick counter, sampling when the period elapses *)
val tick : t -> unit

(** force a snapshot row now, off-period (used to bracket a run with
    exact start/end rows) *)
val sample_now : t -> unit

(** {2 Reading (cold)} *)

val every : t -> int
val ticks : t -> int

(** total snapshots ever taken, including overwritten rows *)
val samples_seen : t -> int

(** rows currently in the ring *)
val retained : t -> int

(** [samples_seen - retained] *)
val dropped : t -> int

(** registered gauge names, in registration (= row column) order *)
val gauge_names : t -> string list

(** retained rows oldest-first; [values] is in {!gauge_names} order *)
val iter : t -> (tick:int -> values:int array -> unit) -> unit

(** zero ticks, samples and the ring (gauges stay registered) *)
val reset : t -> unit
