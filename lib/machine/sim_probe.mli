(** The shared simulator probe: the one instrumentation surface all
    four CPU simulators report through, so the ports cannot drift.
    Registers per-mode retired-instruction and fault counters plus the
    block-execution/chain statistics against a {!Telemetry} sink; the
    calls the simulators make are allocation-free stores. *)

type t

(** [trace] additionally mirrors faults and SMC aborts into a
    {!Trace} ring as [Fault]/[Smc_abort] markers, so the trace streams
    carry the same exceptional events the telemetry ring does;
    defaults to the branch-free disabled sink *)
val create :
  ?trace:Trace.t ->
  Telemetry.t ->
  port:string ->
  predecode:bool ->
  blocks:bool ->
  regions:bool ->
  t

(** whether the underlying sink records anything; simulators use this
    to skip the per-block instrumentation calls entirely *)
val enabled : t -> bool

(** per-run latency stopwatch feeding [<port>.run_ns]: [run_start] at
    run entry, [run_done] on every exit path (the sims call it from
    their shared [finish], so exceptional exits are timed too).  On a
    disabled sink neither touches the clock. *)
val run_start : t -> int

val run_done : t -> int -> unit

(** credit [n] retired instructions to [<port>.retired.<mode>] — bulk,
    at run exit, mirroring the simulators' cycle reconciliation *)
val retired : t -> int -> unit

(** a fault (Machine_error / Mem.Fault) escaped the run loop at [pc]:
    bumps [<port>.faults] and records a [Trap] event *)
val fault : t -> pc:int -> unit

(** a running block aborted via the dirty/[Retired] protocol after
    retiring instruction [i] of the block at [entry]: bumps
    [<port>.smc_retires] and records a [Block_abort] event *)
val abort : t -> entry:int -> i:int -> unit

(** one compiled-block execution (chains and self-loops included);
    call only when [enabled] *)
val block_exec : t -> entry:int -> unit

(** one compiled-region dispatch (tier 3; chains included); call only
    when [enabled] *)
val region_exec : t -> entry:int -> unit

(** a specialized region took its side exit after retiring instruction
    [i] of the region at [entry]: bumps [<port>.region_side_exits] and
    records a [Region_side_exit] event *)
val side_exit : t -> entry:int -> i:int -> unit

(** close the current chained run and record its length in
    [<port>.chain_len]; call at each dispatch-loop re-entry and at run
    exit *)
val chain_flush : t -> unit
