(* Tier-3 region translation cache shared by the four CPU simulators.

   {!Block_cache} stops at superblocks: one compiled closure per
   straight-line run, with a dispatch (cache probe, fuel check, dirty
   reset, commit bookkeeping) between every pair of blocks.  On
   loop-heavy code that per-block dispatch is most of the remaining
   cost.  This module holds the next rung: when a block's dispatch
   count crosses {!hot_threshold}, the simulator recompiles a *region*
   — the hot block plus its dominant direct-chained successors, fused
   into one closure whose self-loop fast path runs back-to-back passes
   with icache-tag probes and cycle/insn reconciliation hoisted to the
   region boundary.

   The cache is target-agnostic like {!Block_cache}: ['r] is the
   simulator's region type, and the only thing invalidation needs is
   the set of (addr, len) byte spans its constituent blocks cover (the
   [spans] accessor, fixed at [create]).  Regions are sparse — only
   hot entries are ever promoted — so invalidation walks the resident
   list instead of a bounded address window.

   Profiling lives here too, because it must be cheap and per-entry:

   - dispatch counts ([note_dispatch]): one array bump per block
     dispatch; answers [true] exactly once, when the count crosses
     {!hot_threshold}, which is the simulator's cue to try promotion.
     A failed promotion is pinned with [mark_unpromotable] so the
     builder does not retry every subsequent dispatch.

   - successor profiling ([note_succ]): per entry, a Boyer–Moore
     majority vote over observed next-block entries plus a
     confirmation counter of samples that matched the surviving
     candidate.  [dominant_succ] answers the candidate only when the
     confirmed hits pin the true frequency at >= 75% of a minimum
     sample, which is what licenses branch-direction specialization:
     the region follows the dominant edge and compiles the other
     direction as a side exit.

   Mid-region self-modification rides the lower tier's dirty/[Retired]
   abort protocol, but regions must raise that flag themselves: a
   region's constituent blocks are usually also resident in the owning
   {!Block_cache} (so a store overlapping a region span drops a block
   there and raises its [dirty] flag), yet that is not an invariant —
   a constituent can be dropped from the block cache and never
   re-dispatched at tier 2 while the region stays resident.
   [invalidate] therefore reports whether it dropped a region, and the
   simulators' regions-mode write watcher raises the block cache's
   [dirty] flag on [true], so the compiled store closures — shared
   between tiers — abort the running pass unconditionally.  Like the
   lower tiers this is purely a host-side accelerator: the timing
   {!Cache} model still sees every fetch, so cycle counts and cache
   statistics are bit-identical across tiers. *)

(* Raised by a region's compiled guard when a specialized branch went
   the non-dominant way: the payload is the number of instructions of
   the current pass that retired before the exit (the guard's own
   terminator and delay slot included).  The simulator credits those,
   takes the side-exit target from its branch scratch, and falls back
   to generic block dispatch. *)
exception Side_exit of int

(* Raised by a self-looping region's *fast-pass* tail when the
   backedge finally leaves the trace.  While the trace self-loops, pc
   provably stays at the region entry (the probed pass committed it
   there and nothing inside a pass writes it), so the fast pass defers
   the whole pc/npc commit: its tail only credits the pass's
   instructions and compares the branch scratch against the entry.
   The handler in the simulator's region driver performs the one
   deferred commit from the branch scratch.  The raising pass ran to
   completion — its instructions are already credited. *)
exception Loop_exit

(* Dispatch count at which a block becomes a promotion candidate. *)
let hot_threshold = 64

(* Cap on constituent blocks per region, loop-body copies included;
   with Block_cache.max_insns this bounds a region pass at a few
   hundred instructions, keeping the whole-pass fuel requirement
   modest. *)
let max_blocks = 8

(* Cap on loop-body copies when a trace closes back on its entry.
   Unrolling amortizes the per-pass commit and self-loop check, but
   only mildly — and a longer pass cycles through more distinct
   closure call targets, which on wide hosts starts losing to the
   indirect-branch predictor well before the block cap is reached
   (measured: 4x-unrolled passes run ~20% *slower* per instruction
   than 1x).  Held at 1 until a host comes along where the trade
   flips; the collector supports any value. *)
let max_unroll = 1

(* Successor-profile sample floor before a dominant edge is trusted. *)
let min_succ_samples = 16

type 'r t = {
  mutable slots : 'r option array; (* index = entry byte address / 4 *)
  limit_words : int;
  spans : 'r -> (int * int) array; (* (addr, code bytes) per block *)
  mutable resident : int list;     (* entry addrs with a region in [slots] *)
  mutable lo : int;                (* byte bounds over all resident spans: *)
  mutable hi : int;                (*   [lo, hi), conservative, never shrunk *)
  mutable hot : int array;         (* per-entry dispatch counts; min_int
                                      pins an entry unpromotable *)
  mutable s_cand : int array;      (* Boyer–Moore successor candidate *)
  mutable s_votes : int array;     (* candidate vote margin *)
  mutable s_hits : int array;      (* samples matching the surviving candidate *)
  mutable s_total : int array;     (* successor samples *)
  mutable pinned : int list;       (* entries pinned by [mark_unpromotable] *)
  mutable promotions : int;
  mutable invalidations : int;
  tel : Telemetry.t;
  c_promotions : Telemetry.counter;
  c_invals : Telemetry.counter;
  d_region_len : Telemetry.dist;
  d_promote_ns : Telemetry.dist;
}

let initial_words = 4096

let create ?(tel = Telemetry.disabled) ?(name = "rc") ~mem_bytes ~spans () =
  let limit_words = (mem_bytes + 3) / 4 in
  let words = min initial_words limit_words in
  {
    slots = Array.make words None;
    limit_words;
    spans;
    resident = [];
    lo = max_int;
    hi = 0;
    hot = Array.make words 0;
    s_cand = Array.make words 0;
    s_votes = Array.make words 0;
    s_hits = Array.make words 0;
    s_total = Array.make words 0;
    pinned = [];
    promotions = 0;
    invalidations = 0;
    tel;
    c_promotions = Telemetry.counter tel (name ^ ".promotions");
    c_invals = Telemetry.counter tel (name ^ ".invalidations");
    d_region_len = Telemetry.dist tel (name ^ ".region_len");
    d_promote_ns = Telemetry.dist tel (name ^ ".promote_ns");
  }

let grow t needed_idx =
  let cur = Array.length t.slots in
  let target = ref (max cur 1) in
  while !target <= needed_idx do
    target := !target * 2
  done;
  let n = min !target t.limit_words in
  if n > cur then begin
    let slots = Array.make n None in
    Array.blit t.slots 0 slots 0 cur;
    t.slots <- slots;
    let grow_ints a =
      let b = Array.make n 0 in
      Array.blit a 0 b 0 cur;
      b
    in
    t.hot <- grow_ints t.hot;
    t.s_cand <- grow_ints t.s_cand;
    t.s_votes <- grow_ints t.s_votes;
    t.s_hits <- grow_ints t.s_hits;
    t.s_total <- grow_ints t.s_total
  end

(* Look up the region promoted at entry [addr].  Same contract as
   {!Block_cache.find}: misaligned, negative and out-of-memory
   addresses miss, and no hit counter is maintained on this path. *)
let[@inline] find t addr =
  let idx = addr lsr 2 in
  if addr land 3 = 0 && idx < Array.length t.slots then Array.unsafe_get t.slots idx
  else None

(* Count one tier-2 dispatch of the block at [addr]; [true] exactly
   when the count crosses {!hot_threshold} — the promotion cue.  The
   count keeps rising past the threshold so a *failed* promotion that
   was not pinned would not re-trigger; pinned entries (min_int) and
   out-of-memory addresses never trigger.  The arrays grow lazily to
   the dispatched address (a block entry is always in-memory code, so
   growth is bounded by [limit_words] like {!set}). *)
let[@inline] note_dispatch t addr =
  let idx = addr lsr 2 in
  if addr land 3 = 0 && idx < t.limit_words then begin
    if idx >= Array.length t.hot then grow t idx;
    let n = Array.unsafe_get t.hot idx + 1 in
    Array.unsafe_set t.hot idx n;
    n = hot_threshold
  end
  else false

(* Pin entry [addr] so [note_dispatch] never answers [true] for it
   again: the region builder found no profitable trace there.  Pinned
   entries are remembered so [invalidate] can unpin one whose code is
   overwritten — a pin describes the *current* code at [addr], and new
   code there deserves a fresh promotion attempt. *)
let mark_unpromotable t addr =
  let idx = addr lsr 2 in
  if addr land 3 = 0 && idx < t.limit_words then begin
    if idx >= Array.length t.hot then grow t idx;
    if t.hot.(idx) <> min_int then t.pinned <- addr :: t.pinned;
    t.hot.(idx) <- min_int
  end

(* Record that the block at [entry] was followed by the block at
   [succ] in a chained run: Boyer–Moore vote plus a confirmation
   counter, so the per-entry state is four ints regardless of how many
   distinct successors appear.  [s_hits] counts samples that matched
   the candidate *while it held the candidacy* (it resets whenever a
   new candidate is installed), so it is a lower bound on the
   candidate's true occurrence count. *)
let[@inline] note_succ t entry succ =
  let idx = entry lsr 2 in
  if entry land 3 = 0 && idx < t.limit_words then begin
    if idx >= Array.length t.s_total then grow t idx;
    let votes = Array.unsafe_get t.s_votes idx in
    if votes = 0 then begin
      Array.unsafe_set t.s_cand idx succ;
      Array.unsafe_set t.s_votes idx 1;
      Array.unsafe_set t.s_hits idx 1
    end
    else if Array.unsafe_get t.s_cand idx = succ then begin
      Array.unsafe_set t.s_votes idx (votes + 1);
      Array.unsafe_set t.s_hits idx (Array.unsafe_get t.s_hits idx + 1)
    end
    else Array.unsafe_set t.s_votes idx (votes - 1);
    Array.unsafe_set t.s_total idx (Array.unsafe_get t.s_total idx + 1)
  end

(* The dominant successor of [entry], if the profile pins one.  The
   Boyer–Moore margin alone only bounds the candidate's frequency f at
   >= 50% (votes <= count), so the trigger uses the confirmation
   counter instead: hits <= count by construction, so requiring
   hits * 4 >= total * 3 certifies f >= 75% without keeping exact
   per-successor counts.  A genuinely dominant edge installs its
   candidate early and accumulates hits at nearly its true rate; noisy
   ~50/50 edges churn the candidacy and never reach the floor. *)
let dominant_succ t entry =
  let idx = entry lsr 2 in
  if entry land 3 <> 0 || idx >= Array.length t.s_total then None
  else begin
    let total = t.s_total.(idx) in
    if total >= min_succ_samples && t.s_hits.(idx) * 4 >= total * 3 then
      Some t.s_cand.(idx)
    else None
  end

(* Record the region promoted at entry [addr] ([insns] = instructions
   retired per full pass, for the length distribution and the
   promotion event). *)
let set t addr ~insns region =
  let idx = addr lsr 2 in
  if idx < t.limit_words then begin
    if idx >= Array.length t.slots then grow t idx;
    if t.slots.(idx) = None then t.resident <- addr :: t.resident;
    t.slots.(idx) <- Some region;
    Array.iter
      (fun (a, len) ->
        if a < t.lo then t.lo <- a;
        if a + len > t.hi then t.hi <- a + len)
      (t.spans region);
    t.promotions <- t.promotions + 1;
    Telemetry.bump t.tel t.c_promotions;
    Telemetry.observe t.tel t.d_region_len insns;
    Telemetry.event t.tel Telemetry.Region_promote ~a:addr ~b:insns
  end

let reset_profile t idx =
  t.hot.(idx) <- 0;
  t.s_cand.(idx) <- 0;
  t.s_votes.(idx) <- 0;
  t.s_hits.(idx) <- 0;
  t.s_total.(idx) <- 0

let drop t entry =
  let idx = entry lsr 2 in
  t.slots.(idx) <- None;
  t.resident <- List.filter (fun e -> e <> entry) t.resident;
  (* the entry may become hot and re-promote once recompiled *)
  reset_profile t idx

(* Drop every region one of whose constituent-block spans overlaps
   [addr, addr+len); [true] iff at least one was dropped — the owning
   simulator's write watcher must then raise its Block_cache's [dirty]
   flag so a running pass aborts via the shared dirty/[Retired]
   protocol even when the overwritten constituent is not itself
   resident in the block cache.  Registered as a {!Mem} write watcher
   next to the Block_cache and Decode_cache watchers; the resident
   list is short (only hot entries are promoted), and [lo, hi) makes
   the common case — a data store nowhere near code — two comparisons.

   The store also unpins any [mark_unpromotable] entry whose code
   window it overlaps: a pin describes the code the builder saw, and a
   failed trace starts with (at most) one block, so the window is the
   block-length cap.  The pin list is almost always empty, making this
   a nil check per store. *)
let invalidate t addr len =
  if len > 0 && t.pinned <> [] then
    t.pinned <-
      List.filter
        (fun e ->
          if addr < e + (4 * Block_cache.max_insns) && addr + len > e then begin
            reset_profile t (e lsr 2);
            false
          end
          else true)
        t.pinned;
  if len > 0 && addr < t.hi && addr + len > t.lo then begin
    let victims =
      List.filter
        (fun entry ->
          match find t entry with
          | None -> false
          | Some r ->
            Array.exists
              (fun (a, slen) -> a < addr + len && a + slen > addr)
              (t.spans r))
        t.resident
    in
    if victims <> [] then begin
      List.iter (fun e -> drop t e) victims;
      t.invalidations <- t.invalidations + 1;
      Telemetry.bump t.tel t.c_invals;
      true
    end
    else false
  end
  else false

(* Drop everything, profiles and pins included — called from the
   simulators' flush_caches next to Block_cache.clear. *)
let clear t =
  List.iter (fun e -> drop t e) t.resident;
  Array.fill t.hot 0 (Array.length t.hot) 0;
  Array.fill t.s_cand 0 (Array.length t.s_cand) 0;
  Array.fill t.s_votes 0 (Array.length t.s_votes) 0;
  Array.fill t.s_hits 0 (Array.length t.s_hits) 0;
  Array.fill t.s_total 0 (Array.length t.s_total) 0;
  t.pinned <- [];
  t.lo <- max_int;
  t.hi <- 0

let resident_count t = List.length t.resident

(* Promotion-latency stopwatch around the simulators' whole
   trace-follow+compile+[set] path, feeding <name>.promote_ns; both
   halves gate on the sink's enabled flag inside Telemetry. *)
let promote_start t = Telemetry.timer_start t.tel
let promote_done t t0 = Telemetry.timer_stop t.tel t.d_promote_ns t0
let stats t = (t.promotions, t.invalidations)

let reset_stats t =
  t.promotions <- 0;
  t.invalidations <- 0
