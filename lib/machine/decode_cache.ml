(* A predecoded-instruction cache shared by the four CPU simulators.

   Every simulator used to re-read the instruction word from {!Mem} and
   re-run its target's [decode] on every simulated cycle, allocating a
   fresh decoded-instruction value each time.  This module memoizes the
   decode by code address: a word-indexed array maps addresses to
   already-decoded instructions, filled lazily on first fetch and
   consulted before [decode] on every later one.  This is the
   translation-cache discipline of real binary-execution engines — the
   decoded form is a pure function of the word in memory, so an entry is
   valid exactly until that word is overwritten.

   Invalidation: the owning simulator registers
   [invalidate] as its memory's write watcher (see
   {!Mem.set_write_watcher}), so stores executed by simulated code,
   host-side [install_code], and the bulk helpers all drop overlapping
   entries.  The [lo, hi) bounds of filled entries make the common case
   — a data store nowhere near code — two comparisons.

   The cache is a pure host-side accelerator: the timing {!Cache} model
   still sees every fetch, so simulated cycle counts and hit/miss stats
   are unchanged.

   The backing array starts small and doubles up to the memory size as
   higher code addresses are predecoded, so short-lived simulators (unit
   tests create thousands) don't pay for a full-memory table. *)

type 'a t = {
  mutable slots : 'a option array; (* index = byte address / 4 *)
  limit_words : int;               (* memory size / 4: growth ceiling *)
  mutable lo : int;                (* byte-address bounds of filled    *)
  mutable hi : int;                (*   entries: [lo, hi), conservative *)
  mutable fills : int;
  mutable invalidations : int;
  tel : Telemetry.t;               (* mirror of the two stats above; the
                                      disabled sink makes the mirroring
                                      stores land in scratch *)
  tr : Trace.t;                    (* Inval markers; disabled -> scratch *)
  c_fills : Telemetry.counter;
  c_invals : Telemetry.counter;
}

let initial_words = 4096 (* covers 16KB of code before the first growth *)

let create ?(tel = Telemetry.disabled) ?(trace = Trace.disabled) ?(name = "pdc")
    ~mem_bytes () =
  let limit_words = (mem_bytes + 3) / 4 in
  {
    slots = Array.make (min initial_words limit_words) None;
    limit_words;
    lo = max_int;
    hi = 0;
    fills = 0;
    invalidations = 0;
    tel;
    tr = trace;
    c_fills = Telemetry.counter tel (name ^ ".fills");
    c_invals = Telemetry.counter tel (name ^ ".invalidations");
  }

(* Look up the decoded instruction at byte address [addr].  [None] means
   the caller must fetch and decode (and should [set] the result).
   Misaligned, negative and out-of-memory addresses miss, so the fetch
   path reproduces the exact {!Mem.Fault} behaviour of an uncached
   simulator.  Deliberately does NOT maintain a hit counter: this runs
   once per simulated instruction, and a shared-counter update here is
   measurable against the very decode cost the cache exists to avoid.
   Engagement is observable from the outside as [fills] staying flat
   while instructions retire (see test/test_decode_cache.ml). *)
let[@inline] find t addr =
  let idx = addr lsr 2 in (* negative addr -> huge idx -> miss *)
  if addr land 3 = 0 && idx < Array.length t.slots then Array.unsafe_get t.slots idx
  else None

let grow t needed_idx =
  let cur = Array.length t.slots in
  let target = ref (max cur 1) in
  while !target <= needed_idx do
    target := !target * 2
  done;
  let n = min !target t.limit_words in
  if n > cur then begin
    let slots = Array.make n None in
    Array.blit t.slots 0 slots 0 cur;
    t.slots <- slots
  end

(* Record the decoded instruction for [addr].  Addresses outside the
   simulated memory are silently not cached (they fault on fetch anyway
   before reaching here). *)
let set t addr insn =
  let idx = addr lsr 2 in
  if idx < t.limit_words then begin
    if idx >= Array.length t.slots then grow t idx;
    t.slots.(idx) <- Some insn;
    if addr < t.lo then t.lo <- addr;
    if addr + 4 > t.hi then t.hi <- addr + 4;
    t.fills <- t.fills + 1;
    Telemetry.bump t.tel t.c_fills
  end

(* Drop every entry whose word overlaps [addr, addr + len).  Cheap when
   the write is outside the predecoded span (the common case for data
   stores): two comparisons. *)
let invalidate t addr len =
  if len > 0 && addr < t.hi && addr + len > t.lo then begin
    t.invalidations <- t.invalidations + 1;
    Telemetry.bump t.tel t.c_invals;
    Telemetry.event t.tel Telemetry.Cache_invalidate ~a:addr ~b:len;
    Trace.mark t.tr Trace.Inval addr;
    let w0 = max (addr lsr 2) (t.lo lsr 2) in
    let w1 = min ((addr + len - 1) lsr 2) ((t.hi - 1) lsr 2) in
    let w1 = min w1 (Array.length t.slots - 1) in
    for w = w0 to w1 do
      t.slots.(w) <- None
    done
  end

(* Drop everything — the predecode analogue of v_end's icache flush. *)
let clear t =
  if t.hi > t.lo then begin
    t.invalidations <- t.invalidations + 1;
    Telemetry.bump t.tel t.c_invals;
    Telemetry.event t.tel Telemetry.Cache_invalidate ~a:t.lo ~b:(t.hi - t.lo);
    let w1 = min ((t.hi - 1) lsr 2) (Array.length t.slots - 1) in
    for w = t.lo lsr 2 to w1 do
      t.slots.(w) <- None
    done
  end;
  t.lo <- max_int;
  t.hi <- 0

let stats t = (t.fills, t.invalidations)

let reset_stats t =
  t.fills <- 0;
  t.invalidations <- 0
