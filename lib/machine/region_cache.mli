(** Tier-3 region translation cache shared by the four CPU simulators.

    Maps a hot superblock entry address to a target-compiled *region*
    — the block plus its dominant direct-chained successors fused into
    one closure — and owns the cheap per-entry profiles (dispatch
    counts, Boyer–Moore successor votes) that drive promotion and
    branch-direction specialization.  ['r] is the owning simulator's
    region type; the cache only needs the (addr, len) byte spans of
    its constituent blocks (the [spans] accessor fixed at {!create})
    to resolve store/region overlap during invalidation.

    Purely a host-side accelerator: the timing {!Cache} model still
    sees every fetch (regions probe the icache at run boundaries and
    reconcile in bulk exactly like superblocks), so simulated cycle
    counts and cache statistics are bit-identical across all tiers. *)

(** Raised by a region's compiled guard when a specialized branch went
    the non-dominant way; the payload is the number of instructions of
    the current pass that retired before the exit.  The simulator
    credits those, takes the target from its branch scratch, and falls
    back to generic block dispatch. *)
exception Side_exit of int

(** raised by a self-looping region's fast-pass tail when the backedge
    leaves the trace: the pass ran to completion and credited its own
    instructions, and the driver performs the one deferred pc commit
    from the branch scratch *)
exception Loop_exit

(** dispatch count at which a block becomes a promotion candidate *)
val hot_threshold : int

(** cap on constituent blocks per region, loop-body copies included *)
val max_blocks : int

(** cap on loop-body copies when a trace closes back on its entry (see
    the implementation comment for why this is currently 1) *)
val max_unroll : int

type 'r t

(** [create ~mem_bytes ~spans ()] — [mem_bytes] bounds the entry
    address space; [spans r] must return the (addr, code bytes) span
    of each constituent block of region [r].  [tel]/[name] mirror
    promotions and invalidations ([<name>.promotions],
    [<name>.invalidations], the [<name>.region_len] distribution and
    [Region_promote] ring events); default is the disabled sink. *)
val create :
  ?tel:Telemetry.t ->
  ?name:string ->
  mem_bytes:int ->
  spans:('r -> (int * int) array) ->
  unit ->
  'r t

(** the region promoted at entry [addr], if resident; misaligned and
    out-of-memory addresses miss *)
val find : 'r t -> int -> 'r option

(** [note_dispatch t addr] counts one tier-2 dispatch of the block at
    [addr]; [true] exactly when the count crosses {!hot_threshold} —
    the cue to attempt promotion *)
val note_dispatch : 'r t -> int -> bool

(** pin entry [addr] so {!note_dispatch} never triggers for it again —
    until a store overlapping the pinned block's code window
    ([addr, addr + 4 * Block_cache.max_insns), via {!invalidate}) or
    {!clear} resets it; new code at a pinned address gets a fresh
    promotion attempt *)
val mark_unpromotable : 'r t -> int -> unit

(** [note_succ t entry succ]: the block at [entry] was followed by the
    block at [succ] in a chained run (Boyer–Moore vote plus a
    confirmation counter for the surviving candidate) *)
val note_succ : 'r t -> int -> int -> unit

(** the dominant successor of [entry] when the confirmation counter
    certifies its frequency at >= 75% of at least a minimum sample *)
val dominant_succ : 'r t -> int -> int option

(** [set t addr ~insns region] records the region promoted at entry
    [addr]; [insns] is the instructions retired per full pass *)
val set : 'r t -> int -> insns:int -> 'r -> unit

(** [invalidate t addr len]: drop every region one of whose
    constituent-block spans overlaps [addr, addr+len), resetting the
    dropped entries' profiles, and unpin any {!mark_unpromotable}
    entry whose code window the store overlaps.  [true] iff a region
    was dropped: the owning simulator's write watcher (registered next
    to the Block_cache and Decode_cache watchers) must then raise its
    Block_cache's dirty flag, so a running region pass aborts via the
    shared dirty/[Retired] protocol even when the overwritten
    constituent block is not itself resident in the block cache. *)
val invalidate : 'r t -> int -> int -> bool

(** drop everything, profiles and pins included *)
val clear : 'r t -> unit

(** resident region count (for vprof and {!Timeline} gauges) *)
val resident_count : 'r t -> int

(** promotion-latency stopwatch feeding [<name>.promote_ns]: the
    simulators bracket their whole trace-follow+compile+[set] path
    with [promote_start]/[promote_done].  Neither touches the clock
    when the sink is disabled. *)
val promote_start : 'r t -> int

val promote_done : 'r t -> int -> unit

(** [(promotions, invalidations)] since the last [reset_stats] *)
val stats : 'r t -> int * int

val reset_stats : 'r t -> unit
