(** A superblock translation cache shared by the four CPU simulators.

    Maps a basic-block entry address to a target-compiled block value
    (a record of closures executing the whole decoded straight-line
    run) so the run loops can retire instructions without
    per-instruction dispatch, chaining block to block on taken
    branches.  ['b] is the owning simulator's block type; the cache
    only needs its byte length (the [len_bytes] accessor fixed at
    {!create}) to resolve store/block overlap during invalidation.

    Purely a host-side accelerator: the timing {!Cache} model still
    sees every fetch (the simulators probe the icache from inside
    compiled blocks), so simulated cycle counts and cache statistics
    are bit-identical with the cache off — see
    test/test_block_cache.ml. *)

(** Raised by a compiled store closure that finds {!dirty} set: the
    store just invalidated a resident block, possibly the executing
    one, so the rest of the run must be abandoned.  The raising
    instruction has fully retired; the simulator fixes up pc/npc for
    the *next* instruction and returns to its dispatch loop. *)
exception Retired

(** block-length cap, in instructions: simulators must not compile
    longer runs, which in turn bounds the invalidation scan window *)
val max_insns : int

type 'b t

(** [create ~mem_bytes ~len_bytes ()] — [mem_bytes] bounds the entry
    address space; [len_bytes b] must return the code bytes covered by
    block [b] (at most [4 * max_insns]).  [tel]/[name] mirror the
    compile/evict/invalidate statistics into a {!Telemetry} sink
    ([<name>.compiles], [<name>.evictions], [<name>.invalidations],
    the [<name>.block_len] distribution and the corresponding ring
    events) and enable the per-entry execution profile behind
    {!note_exec}/{!hot_blocks}; the default is the disabled sink.
    [trace] mirrors invalidations that actually dropped blocks into a
    {!Trace} ring as [Inval] markers. *)
val create :
  ?tel:Telemetry.t ->
  ?trace:Trace.t ->
  ?name:string ->
  mem_bytes:int ->
  len_bytes:('b -> int) ->
  unit ->
  'b t

(** the block compiled for entry address [addr], if resident.
    Misaligned and out-of-memory addresses miss.  No hit counter is
    maintained (hot path); engagement is observable as the compile
    count of {!stats} staying flat while instructions retire. *)
val find : 'b t -> int -> 'b option

(** record the block compiled for entry [addr] *)
val set : 'b t -> int -> 'b -> unit

(** [invalidate t addr len]: drop every resident block whose covered
    code range overlaps [addr, addr+len), setting the {!dirty} flag if
    any was dropped.  Registered by the simulators as a {!Mem} write
    watcher, next to {!Decode_cache.invalidate}. *)
val invalidate : 'b t -> int -> int -> unit

(** drop everything — the block-cache analogue of v_end's icache
    flush; also sets {!dirty} *)
val clear : 'b t -> unit

(** [begin_block] clears the dirty flag; the simulator calls it as it
    enters a compiled block, and its store closures raise {!Retired}
    when {!dirty} turns up set afterwards *)
val begin_block : 'b t -> unit

val dirty : 'b t -> bool

(** raise the dirty flag on behalf of a sibling translation tier —
    the regions-mode write watcher calls this when
    {!Region_cache.invalidate} drops a region, so store closures abort
    the running pass even when the overwritten constituent block is
    not resident here *)
val mark_dirty : 'b t -> unit

(** count one execution of the block entered at [addr] toward the
    per-entry profile.  No-op unless {!create} received an enabled
    [tel]; the simulators guard the call behind their probe's enabled
    flag, so the disabled cost is zero. *)
val note_exec : 'b t -> int -> unit

(** the per-entry execution profile in a stable, documented order:
    execution count descending, entry address ascending on ties —
    (entry address, executions), at most [limit] (default 20) entries.
    The deterministic tie-break matters because this list doubles as
    the region-promotion scan.  Counts are cumulative across
    recompiles and invalidations of the same entry.  Empty unless
    {!create} received an enabled [tel]. *)
val hot_blocks : ?limit:int -> 'b t -> (int * int) list

(** [(compiles, invalidations)] since the last [reset_stats] *)
val stats : 'b t -> int * int

val reset_stats : 'b t -> unit

(** currently resident blocks, O(1) — safe as a {!Timeline} gauge *)
val resident_count : 'b t -> int

(** compile-latency stopwatch feeding [<name>.compile_ns]: the
    simulators bracket their whole scan+compile+[set] path with
    [compile_start]/[compile_done].  Neither touches the clock when
    the sink is disabled. *)
val compile_start : 'b t -> int

val compile_done : 'b t -> int -> unit

(** fault-injection hook for the trace differ: make entry [at] answer
    with the block resident at [from] — a deliberately stale
    translation, so a blocks-mode run diverges from the interpreter at
    [at]'s next dispatch.  [false] when nothing is resident at [from]
    or [at] is misaligned/out of range.  Test/tool use only. *)
val alias : 'b t -> at:int -> from:int -> bool
