(* A gauge-snapshot ring: the "how does state evolve over a run"
   companion to Telemetry's whole-run aggregates.

   A timeline holds a fixed set of named gauges — int-returning
   closures registered up front (registry live count, arena free-list
   depths, resident translations, ...) — and a preallocated int ring
   of snapshot rows.  The driver calls [tick] once per unit of work
   (per packet, per run); every [every] ticks the timeline reads all
   gauges into the next ring row, stamped with the tick ordinal.  Once
   the ring is full, new rows overwrite the oldest; [samples_seen]
   keeps the true total so [dropped] is exact.

   Rows have a fixed stride of [1 + max_gauges] words, so a gauge
   registered after sampling started simply reads as 0 in older rows.

   The disabled timeline follows the Telemetry discipline adapted to
   the fact that gauges are closures (calling them is not free): the
   sampling threshold is pinned to [max_int], so [tick] is one
   increment and one always-false compare — no closure calls, no
   allocation, nothing observable (pinned by
   test_telemetry_overhead). *)

type t = {
  on : bool;
  every : int;
  names : string array; (* length max_gauges; "" = unregistered *)
  sources : (unit -> int) array;
  mutable ngauges : int;
  ring : int array; (* rows * row_words; row = [tick; g0; g1; ...] *)
  rows : int;
  row_words : int;
  mutable ticks : int;
  mutable next_at : int; (* tick count that triggers the next sample *)
  mutable samples : int;
}

let zero_source () = 0

let create ?(every = 64) ?(rows = 1024) ?(max_gauges = 16) () =
  let every = max 1 every and rows = max 1 rows and max_gauges = max 1 max_gauges in
  {
    on = true;
    every;
    names = Array.make max_gauges "";
    sources = Array.make max_gauges zero_source;
    ngauges = 0;
    ring = Array.make (rows * (1 + max_gauges)) 0;
    rows;
    row_words = 1 + max_gauges;
    ticks = 0;
    next_at = every;
    samples = 0;
  }

(* One shared no-op timeline.  [next_at = max_int] means the compare
   in [tick] never fires; the only mutation is the shared tick
   counter, which nothing reads. *)
let disabled =
  {
    on = false;
    every = max_int;
    names = [||];
    sources = [||];
    ngauges = 0;
    ring = Array.make 1 0;
    rows = 1;
    row_words = 1;
    ticks = 0;
    next_at = max_int;
    samples = 0;
  }

let is_enabled t = t.on

(* Registration is cold and idempotent per name (re-registering
   rebinds the source, so a fresh workload can re-point gauges at a
   fresh server against one timeline). *)
let gauge t name source =
  if t.on then begin
    let rec find i = if i >= t.ngauges then -1 else if t.names.(i) = name then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then t.sources.(i) <- source
    else begin
      if t.ngauges >= Array.length t.names then
        invalid_arg "Timeline.gauge: max_gauges exceeded";
      t.names.(t.ngauges) <- name;
      t.sources.(t.ngauges) <- source;
      t.ngauges <- t.ngauges + 1
    end
  end

let sample_now t =
  if t.on then begin
    let base = t.samples mod t.rows * t.row_words in
    Array.unsafe_set t.ring base t.ticks;
    for g = 0 to t.ngauges - 1 do
      Array.unsafe_set t.ring (base + 1 + g) (t.sources.(g) ())
    done;
    t.samples <- t.samples + 1
  end

let[@inline] tick t =
  t.ticks <- t.ticks + 1;
  if t.ticks >= t.next_at then begin
    t.next_at <- t.ticks + t.every;
    sample_now t
  end

(* ------------------------------------------------------------------ *)
(* Reading (cold)                                                      *)

let every t = t.every
let ticks t = t.ticks
let samples_seen t = t.samples
let retained t = min t.samples t.rows
let dropped t = t.samples - retained t
let gauge_names t = Array.to_list (Array.sub t.names 0 t.ngauges)

(* retained rows oldest-first; [values] is a fresh array per call *)
let iter t f =
  let n = retained t in
  let first = t.samples - n in
  for j = 0 to n - 1 do
    let base = (first + j) mod t.rows * t.row_words in
    let tick = t.ring.(base) in
    f ~tick ~values:(Array.sub t.ring (base + 1) t.ngauges)
  done

let reset t =
  if t.on then begin
    t.ticks <- 0;
    t.next_at <- t.every;
    t.samples <- 0;
    Array.fill t.ring 0 (Array.length t.ring) 0
  end
