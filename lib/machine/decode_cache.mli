(** A predecoded-instruction cache shared by the CPU simulators.

    Maps word-aligned code addresses to already-decoded instructions so
    a simulator's hot loop decodes each instruction word once instead of
    on every simulated cycle.  Polymorphic over the per-target decoded
    instruction type.

    Correctness contract: an entry is valid exactly until the underlying
    word changes.  The owning simulator registers {!invalidate} as its
    memory's write watcher ({!Mem.set_write_watcher}), which covers
    simulated stores (self-modifying code), host-side
    {!Mem.install_code} (regenerating code at the same address) and the
    bulk write helpers.  {!clear} is the predecode analogue of v_end's
    icache flush.

    This is purely a host-side accelerator: the timing {!Cache} model
    still sees every fetch, so simulated cycle counts and cache hit/miss
    statistics are bit-identical with and without it. *)

type 'a t

(** [create ~mem_bytes ()] covers the address range [\[0, mem_bytes)].
    The backing store starts small and grows on demand.  [tel]/[name]
    mirror the fill/invalidation statistics into a {!Telemetry} sink as
    [<name>.fills] / [<name>.invalidations] (plus [Cache_invalidate]
    events); the default is the disabled sink, which reduces the
    mirroring to scratch stores.  [trace] mirrors invalidations into a
    {!Trace} ring as [Inval] markers. *)
val create :
  ?tel:Telemetry.t -> ?trace:Trace.t -> ?name:string -> mem_bytes:int -> unit -> 'a t

(** [find t addr] is the cached decoded instruction at byte address
    [addr], or [None] if it must be fetched and decoded (then recorded
    with {!set}).  Misaligned or out-of-range addresses always miss, so
    the fetch path keeps its exact fault behaviour. *)
val find : 'a t -> int -> 'a option

(** [set t addr insn] records the decode of the word at [addr].
    Addresses outside the covered range are ignored. *)
val set : 'a t -> int -> 'a -> unit

(** [invalidate t addr len] drops every entry whose word overlaps
    [\[addr, addr + len)].  O(1) when the range is outside the
    predecoded span — the common case for data stores. *)
val invalidate : 'a t -> int -> int -> unit

(** drop every entry *)
val clear : 'a t -> unit

(** [(fills, invalidations)] since the last {!reset_stats}.  There is
    deliberately no hit counter: [find] runs once per simulated
    instruction and keeps its fast path free of shared-counter updates.
    A cache that is engaged shows [fills] staying flat while retired
    instructions grow. *)
val stats : 'a t -> int * int

val reset_stats : 'a t -> unit
