(* A superblock translation cache shared by the four CPU simulators.

   {!Decode_cache} removed per-cycle decoding but every simulator still
   pays a full dispatch — a match over the decoded instruction type plus
   pc/npc bookkeeping — per simulated instruction.  This module holds
   the next rung of the translation ladder: each entry maps a
   basic-block entry address to a target-compiled value (in practice a
   record of OCaml closures, one per instruction of the straight-line
   run ending at the first branch/jump/trap or a length cap) that the
   simulator executes without per-instruction dispatch, chaining
   directly into the next block on a taken branch.

   The cache itself is target-agnostic: ['b] is the simulator's block
   type, and the only thing this module needs to know about it is its
   byte length ([len_bytes], fixed at [create]) so that invalidation
   can tell which resident blocks a store overlaps.

   Invalidation: the owning simulator registers [invalidate] as a
   memory write watcher alongside {!Decode_cache.invalidate} (see
   {!Mem.add_write_watcher}), so stores executed by simulated code,
   host-side [install_code] and the bulk helpers all drop overlapping
   blocks.  A store at [addr] can only overlap a block whose entry lies
   in [addr - max_bytes + 4, addr + len), so the scan window is bounded
   by the block-length cap; the [lo, hi) span of resident entries makes
   the common case — a data store nowhere near code — two comparisons.

   Self-modification *inside* a running block is handled by the [dirty]
   flag: [invalidate] raises it whenever it drops a block, the
   simulator's compiled store closures test it after every memory
   write, and abort the rest of the block with {!Retired} when set (the
   dispatch loop then resumes interpretively at the next pc).  The
   aborted-block fixup is always taken conservatively — a store that
   dropped only *other* blocks aborts too, which is correct, merely a
   re-dispatch.

   Like the predecode layer, this is a pure host-side accelerator: the
   timing {!Cache} model still sees every fetch (the simulators probe
   the icache from inside compiled blocks), so simulated cycle counts
   and hit/miss statistics are bit-identical with the cache off. *)

(* Raised by a simulator's compiled store closure when [dirty] is set:
   the store it just performed invalidated a resident block, possibly
   the one executing.  The instruction that raised has fully retired. *)
exception Retired

(* Block-length cap, in instructions.  Bounds both the compiled-run
   length (simulators must not compile longer blocks) and, through
   [max_bytes], the invalidation scan window. *)
let max_insns = 64
let max_bytes = 4 * max_insns

type 'b t = {
  mutable slots : 'b option array; (* index = entry byte address / 4 *)
  limit_words : int;               (* memory size / 4: growth ceiling *)
  len_bytes : 'b -> int;           (* code bytes covered by a block *)
  mutable lo : int;                (* byte-address bounds of resident  *)
  mutable hi : int;                (*   entries: [lo, hi), conservative *)
  mutable dirty : bool;            (* a block was dropped since [begin_block] *)
  mutable compiles : int;
  mutable invalidations : int;
  mutable resident : int;          (* Some slots, kept exact so timeline
                                      gauges never scan the array *)
  tel : Telemetry.t;               (* stats mirror + block-length dist +
                                      ring events; disabled -> scratch *)
  tr : Trace.t;                    (* Inval markers; disabled -> scratch *)
  c_compiles : Telemetry.counter;
  c_evicts : Telemetry.counter;
  c_invals : Telemetry.counter;
  d_block_len : Telemetry.dist;
  d_compile_ns : Telemetry.dist;
  mutable execs : int array;       (* per-entry execution profile, same
                                      indexing as [slots]; [||] unless the
                                      sink is enabled *)
}

let initial_words = 4096

let create ?(tel = Telemetry.disabled) ?(trace = Trace.disabled) ?(name = "bc")
    ~mem_bytes ~len_bytes () =
  let limit_words = (mem_bytes + 3) / 4 in
  let words = min initial_words limit_words in
  {
    slots = Array.make words None;
    limit_words;
    len_bytes;
    lo = max_int;
    hi = 0;
    dirty = false;
    compiles = 0;
    invalidations = 0;
    resident = 0;
    tel;
    tr = trace;
    c_compiles = Telemetry.counter tel (name ^ ".compiles");
    c_evicts = Telemetry.counter tel (name ^ ".evictions");
    c_invals = Telemetry.counter tel (name ^ ".invalidations");
    d_block_len = Telemetry.dist tel (name ^ ".block_len");
    d_compile_ns = Telemetry.dist tel (name ^ ".compile_ns");
    execs = (if Telemetry.is_enabled tel then Array.make words 0 else [||]);
  }

(* Look up the block compiled for entry address [addr].  [None] means
   the dispatch loop should try to compile one (and [set] the result).
   Misaligned, negative and out-of-memory addresses miss.  Like
   {!Decode_cache.find}, deliberately maintains no hit counter — this
   runs once per block dispatch on the hot path; engagement is
   observable as [compiles] staying flat while instructions retire. *)
let[@inline] find t addr =
  let idx = addr lsr 2 in (* negative addr -> huge idx -> miss *)
  if addr land 3 = 0 && idx < Array.length t.slots then Array.unsafe_get t.slots idx
  else None

let grow t needed_idx =
  let cur = Array.length t.slots in
  let target = ref (max cur 1) in
  while !target <= needed_idx do
    target := !target * 2
  done;
  let n = min !target t.limit_words in
  if n > cur then begin
    let slots = Array.make n None in
    Array.blit t.slots 0 slots 0 cur;
    t.slots <- slots;
    if t.execs <> [||] then begin
      let execs = Array.make n 0 in
      Array.blit t.execs 0 execs 0 (Array.length t.execs);
      t.execs <- execs
    end
  end

(* Record the block compiled for entry [addr].  Entries outside the
   simulated memory are silently not cached. *)
let set t addr block =
  let idx = addr lsr 2 in
  if idx < t.limit_words then begin
    if idx >= Array.length t.slots then grow t idx;
    let insns = t.len_bytes block / 4 in
    (match t.slots.(idx) with
    | Some _ ->
      Telemetry.bump t.tel t.c_evicts;
      Telemetry.event t.tel Telemetry.Block_evict ~a:addr ~b:insns
    | None -> t.resident <- t.resident + 1);
    t.slots.(idx) <- Some block;
    if addr < t.lo then t.lo <- addr;
    if addr + 4 > t.hi then t.hi <- addr + 4;
    t.compiles <- t.compiles + 1;
    Telemetry.bump t.tel t.c_compiles;
    Telemetry.observe t.tel t.d_block_len insns;
    Telemetry.event t.tel Telemetry.Block_compile ~a:addr ~b:insns
  end

(* Drop every block whose covered code range overlaps [addr, addr+len).
   A block at entry [e] covers [e, e + len_bytes b); only entries in
   [addr - max_bytes + 4, addr + len) can overlap, and the resident
   span [lo, hi) narrows that further.  Sets [dirty] iff a block was
   actually dropped, so compiled store closures can abort a run whose
   remaining instructions may now be stale. *)
let invalidate t addr len =
  if len > 0 && addr < t.hi + max_bytes - 4 && addr + len > t.lo then begin
    let w0 = max ((max 0 (addr - max_bytes + 4)) lsr 2) (t.lo lsr 2) in
    let w1 = min ((addr + len - 1) lsr 2) ((t.hi - 1) lsr 2) in
    let w1 = min w1 (Array.length t.slots - 1) in
    let dropped = ref false in
    for w = w0 to w1 do
      match Array.unsafe_get t.slots w with
      | None -> ()
      | Some b ->
        let entry = w * 4 in
        if entry + t.len_bytes b > addr && entry < addr + len then begin
          t.slots.(w) <- None;
          t.resident <- t.resident - 1;
          dropped := true
        end
    done;
    if !dropped then begin
      t.dirty <- true;
      t.invalidations <- t.invalidations + 1;
      Telemetry.bump t.tel t.c_invals;
      Telemetry.event t.tel Telemetry.Smc_retire ~a:addr ~b:len;
      Trace.mark t.tr Trace.Inval addr
    end
  end

(* Drop everything — the block-cache analogue of v_end's icache flush. *)
let clear t =
  if t.hi > t.lo then begin
    t.invalidations <- t.invalidations + 1;
    Telemetry.bump t.tel t.c_invals;
    Telemetry.event t.tel Telemetry.Cache_invalidate ~a:t.lo ~b:(t.hi - t.lo);
    Trace.mark t.tr Trace.Inval t.lo;
    t.dirty <- true;
    let w1 = min ((t.hi - 1) lsr 2) (Array.length t.slots - 1) in
    for w = t.lo lsr 2 to w1 do
      t.slots.(w) <- None
    done;
    t.resident <- 0
  end;
  t.lo <- max_int;
  t.hi <- 0

(* Executed-block protocol: the simulator clears [dirty] as it enters a
   block; its compiled store closures [raise Retired] when they find it
   set afterwards. *)
let[@inline] begin_block t = t.dirty <- false
let[@inline] dirty t = t.dirty

(* Raise [dirty] on behalf of a sibling translation tier: the
   regions-mode write watcher calls this when a store drops a region
   whose constituent blocks may not all be resident here, so the store
   closures' dirty test aborts the running pass unconditionally. *)
let[@inline] mark_dirty t = t.dirty <- true

(* Per-entry execution profile.  [note_exec] is called once per block
   execution from inside the simulators' chained dispatch, guarded by
   their probe's enabled flag; the length test below also makes it a
   no-op when profiling is off ([execs] is [[||]]). *)
let[@inline] note_exec t addr =
  let idx = addr lsr 2 in
  if idx < Array.length t.execs then
    Array.unsafe_set t.execs idx (Array.unsafe_get t.execs idx + 1)

(* Stable ordering: execution count descending, entry address ascending
   on ties.  The tie-break matters because this list doubles as the
   region-promotion scan — equal-count candidates must be visited in a
   deterministic order or promotion choices (and thus telemetry) would
   depend on Array.iteri accumulation order. *)
let hot_blocks ?(limit = 20) t =
  let acc = ref [] in
  Array.iteri (fun idx n -> if n > 0 then acc := (4 * idx, n) :: !acc) t.execs;
  let sorted =
    List.sort
      (fun (ea, ca) (eb, cb) -> if ca <> cb then compare cb ca else compare ea eb)
      !acc
  in
  List.filteri (fun i _ -> i < limit) sorted

let stats t = (t.compiles, t.invalidations)

let resident_count t = t.resident

(* Compile-latency stopwatch around the simulators' whole
   scan+compile+set path, feeding <name>.compile_ns.  Both halves gate
   on the sink's enabled flag inside Telemetry, so the disabled path
   never reads the clock. *)
let compile_start t = Telemetry.timer_start t.tel
let compile_done t t0 = Telemetry.timer_stop t.tel t.d_compile_ns t0

let reset_stats t =
  t.compiles <- 0;
  t.invalidations <- 0

(* Fault-injection hook for the trace differ (bin/vtrace.ml --inject,
   test/test_trace.ml): make entry [at] answer with the block compiled
   for [from], i.e. a deliberately wrong translation.  The dispatch
   loop then executes [from]'s instructions when control reaches [at]
   — exactly the class of translation-cache corruption the cross-mode
   differ exists to localize.  [false] when no block is resident at
   [from] or [at] is out of range.  The aliased slot is dropped by
   invalidation like any other (it covers [from]'s byte range, so a
   store near [at] may *miss* it — which is the point: a stale
   mapping). *)
let alias t ~at ~from =
  match find t from with
  | None -> false
  | Some b ->
    let idx = at lsr 2 in
    if at land 3 <> 0 || idx >= t.limit_words then false
    else begin
      if idx >= Array.length t.slots then grow t idx;
      if t.slots.(idx) = None then t.resident <- t.resident + 1;
      t.slots.(idx) <- Some b;
      if at < t.lo then t.lo <- at;
      if at + 4 > t.hi then t.hi <- at + 4;
      true
    end
