(** Execution tracing for the four CPU simulators.

    Where {!Telemetry} aggregates (counters, distributions), a trace
    records the exact ordered stream of retired instructions plus
    block-dispatch, fault, SMC-abort and invalidation markers, into a
    preallocated int-array ring.  One record is one int; the hot
    operation ({!retire}) is an unsafe store and a counter increment.

    The {!disabled} sink is a shared one-slot scratch ring: every
    record lands in scratch with no conditional and no allocation, so
    untraced simulators are bit-identical to pre-trace behaviour
    (pinned by test/test_trace.ml).  Tracing never touches the
    simulated clock or the timing {!Cache} statistics.

    When the ring overflows, new records overwrite the oldest; the
    true total is kept, so {!dropped} is exact. *)

type kind =
  | Retire       (** one instruction issued at payload (pc) *)
  | Block_enter  (** compiled-block dispatch at payload (entry address) *)
  | Fault        (** a Machine_error/Mem.Fault escaped at payload (pc) *)
  | Smc_abort    (** dirty/Retired block abort at payload (aborting insn) *)
  | Inval        (** predecode/translation state dropped at payload *)
  | Mark         (** tool-defined checkpoint *)

val kind_name : kind -> string

type t

(** [create ()] — ring capacity is [2^capacity_pow2] records (default
    [2^16], clamped to [2^8 .. 2^24]) *)
val create : ?capacity_pow2:int -> unit -> t

(** the shared branch-free no-op sink *)
val disabled : t

val is_enabled : t -> bool

(** {2 Hot path — plain int-array stores, no allocation}

    Records are emitted in issue order, i.e. *before* the instruction
    executes, so a faulting instruction is the last record of its
    stream in every engine mode.  Payloads are truncated to 48 bits
    (simulated addresses are far smaller). *)

val retire : t -> int -> unit
val mark : t -> kind -> int -> unit

(** {2 Reading the ring (cold)} *)

val capacity : t -> int

(** records ever emitted, overwritten ones included *)
val seen : t -> int

(** records still in the ring (0 on the disabled sink) *)
val retained : t -> int

(** [seen - retained]: exact count of overwritten records *)
val dropped : t -> int

(** forget everything recorded so far (no-op on the disabled sink) *)
val reset : t -> unit

(** retained records, oldest first *)
val records : t -> (kind * int) array

(** the retained [Retire] payloads, oldest first — the differ's input *)
val retired_pcs : t -> int array

(** {2 The differ} *)

type divergence = {
  ordinal : int;  (** 0-based retired-instruction index of the mismatch *)
  a_pc : int;     (** -1 when stream [a] ended before [ordinal] *)
  b_pc : int;     (** -1 when stream [b] ended before [ordinal] *)
}

(** first position where two retired-pc streams disagree; [None] when
    they are identical in content and length.  A strict prefix
    diverges at its end. *)
val first_divergence : int array -> int array -> divergence option

(** {2 Exporters} *)

(** schema version stamped into the Chrome JSON export (written by the
    harness [Chrome_trace.write_trace], which vtrace uses) *)
val json_schema_version : int

(** compact binary format version (see trace.ml for the layout) *)
val binary_version : int

val write_binary : out_channel -> port:string -> mode:string -> workload:string -> t -> unit

(** a parsed binary trace *)
type dump = {
  d_port : string;
  d_mode : string;
  d_workload : string;
  d_seen : int;
  d_dropped : int;
  d_records : (kind * int) array;
}

exception Corrupt of string

(** @raise Corrupt on a malformed or truncated file *)
val read_binary : in_channel -> dump
