(* Byte-addressable simulated memory.

   One flat region starting at address 0; both endiannesses supported so
   the same substrate serves the little-endian DECstation MIPS and Alpha
   simulators and the big-endian SPARC simulator.  All multi-byte
   accessors take naturally aligned addresses; misalignment raises
   [Fault], which the simulators surface as a machine check — the same
   discipline the paper's targets enforce in hardware. *)

exception Fault of string

type watcher = int

type t = {
  data : Bytes.t;
  size : int;
  big_endian : bool;
  mutable on_write : int -> int -> unit;
      (* called as [f addr len] after every mutation of [data]; always
         the composition of the live [watchers], rebuilt on every
         registration change so the store path never grows a closure
         chain proportional to *historical* registrations *)
  mutable watchers : (watcher * (int -> int -> unit)) list;
      (* live watchers, registration order, source of truth for
         [rebuild]; install/evict churn adds and removes here *)
  mutable next_watcher : watcher;
}

let ignore_write _ _ = ()

let create ?(big_endian = false) ~size () =
  {
    data = Bytes.make size '\000';
    size;
    big_endian;
    on_write = ignore_write;
    watchers = [];
    next_watcher = 0;
  }

let size t = t.size
let big_endian t = t.big_endian

(* Rebuild the store-path dispatcher from the live watcher list.  Zero
   watchers dispatch to the shared no-op, exactly one dispatches to the
   bare function (no wrapper closure on the single-watcher fast path),
   and k > 1 pay one array-iterating wrapper — O(live watchers) per
   store, never O(registrations ever made). *)
let rebuild t =
  match t.watchers with
  | [] -> t.on_write <- ignore_write
  | [ (_, f) ] -> t.on_write <- f
  | ws ->
    let fs = Array.of_list (List.map snd ws) in
    let n = Array.length fs in
    t.on_write <-
      (fun addr len ->
        for i = 0 to n - 1 do
          (Array.unsafe_get fs i) addr len
        done)

let fresh_handle t =
  let h = t.next_watcher in
  t.next_watcher <- h + 1;
  h

let set_write_watcher t f =
  t.watchers <- [ (fresh_handle t, f) ];
  t.on_write <- f

let add_write_watcher t f =
  let h = fresh_handle t in
  t.watchers <- t.watchers @ [ (h, f) ];
  rebuild t;
  h

let remove_write_watcher t h =
  let before = t.watchers in
  t.watchers <- List.filter (fun (h', _) -> h' <> h) before;
  if List.length t.watchers <> List.length before then rebuild t

let watcher_count t = List.length t.watchers

(* Fault construction lives out of line so the bounds checks inlined
   into the simulators' load/store path stay a couple of compares. *)
let[@inline never] bounds_fail t addr len what =
  raise
    (Fault
       (Printf.sprintf "%s of %d bytes at 0x%x out of bounds (mem size 0x%x)" what len addr
          t.size))

let[@inline never] misalign_fail addr what =
  raise (Fault (Printf.sprintf "misaligned %s at 0x%x" what addr))

(* bounds check for bulk operations; a zero-length operation is a no-op
   permitted anywhere in [0, size] *)
let check_bounds t addr len what =
  if len < 0 then
    raise (Fault (Printf.sprintf "%s at 0x%x with negative length %d" what addr len));
  if addr < 0 || addr + len > t.size then bounds_fail t addr len what

(* scalar accesses additionally require natural alignment; [len] is a
   compile-time constant at every call site *)
let[@inline] check t addr len what =
  if addr < 0 || addr + len > t.size then bounds_fail t addr len what;
  if len > 1 && addr land (len - 1) <> 0 then misalign_fail addr what

let[@inline] read_u8 t addr =
  check t addr 1 "load8";
  Char.code (Bytes.unsafe_get t.data addr)

let write_u8 t addr v =
  check t addr 1 "store8";
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xff));
  t.on_write addr 1

let[@inline] read_u16 t addr =
  check t addr 2 "load16";
  let b0 = Char.code (Bytes.unsafe_get t.data addr) in
  let b1 = Char.code (Bytes.unsafe_get t.data (addr + 1)) in
  if t.big_endian then (b0 lsl 8) lor b1 else (b1 lsl 8) lor b0

let write_u16 t addr v =
  check t addr 2 "store16";
  let lo = v land 0xff and hi = (v lsr 8) land 0xff in
  if t.big_endian then begin
    Bytes.unsafe_set t.data addr (Char.unsafe_chr hi);
    Bytes.unsafe_set t.data (addr + 1) (Char.unsafe_chr lo)
  end
  else begin
    Bytes.unsafe_set t.data addr (Char.unsafe_chr lo);
    Bytes.unsafe_set t.data (addr + 1) (Char.unsafe_chr hi)
  end;
  t.on_write addr 2

let[@inline] read_u32 t addr =
  check t addr 4 "load32";
  let b i = Char.code (Bytes.unsafe_get t.data (addr + i)) in
  if t.big_endian then (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  else (b 3 lsl 24) lor (b 2 lsl 16) lor (b 1 lsl 8) lor b 0

let write_u32 t addr v =
  check t addr 4 "store32";
  let set i x = Bytes.unsafe_set t.data (addr + i) (Char.unsafe_chr (x land 0xff)) in
  if t.big_endian then begin
    set 0 (v lsr 24); set 1 (v lsr 16); set 2 (v lsr 8); set 3 v
  end
  else begin
    set 0 v; set 1 (v lsr 8); set 2 (v lsr 16); set 3 (v lsr 24)
  end;
  t.on_write addr 4

let read_u64 t addr : int64 =
  check t addr 8 "load64";
  let lo, hi =
    if t.big_endian then (read_u32 t (addr + 4), read_u32 t addr)
    else (read_u32 t addr, read_u32 t (addr + 4))
  in
  Int64.logor (Int64.of_int lo |> Int64.logand 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int hi) 32)

let write_u64 t addr (v : int64) =
  check t addr 8 "store64";
  let lo = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  let hi = Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xFFFFFFFFL) in
  if t.big_endian then begin
    write_u32 t addr hi;
    write_u32 t (addr + 4) lo
  end
  else begin
    write_u32 t addr lo;
    write_u32 t (addr + 4) hi
  end

(* Bulk helpers used by workload setup.  All are bounds-checked against
   the true operation length; zero-length operations are no-ops. *)
let blit_string t ~addr s =
  let len = String.length s in
  check_bounds t addr len "blit_string";
  if len > 0 then begin
    Bytes.blit_string s 0 t.data addr len;
    t.on_write addr len
  end

let blit_bytes t ~addr b =
  let len = Bytes.length b in
  check_bounds t addr len "blit_bytes";
  if len > 0 then begin
    Bytes.blit b 0 t.data addr len;
    t.on_write addr len
  end

let read_string t ~addr ~len =
  check_bounds t addr len "read_string";
  Bytes.sub_string t.data addr len

let fill t ~addr ~len c =
  check_bounds t addr len "fill";
  if len > 0 then begin
    Bytes.fill t.data addr len c;
    t.on_write addr len
  end

(* Load a code buffer at [addr], honoring this memory's endianness. *)
let install_code t ~addr (buf : Vcodebase.Codebuf.t) =
  let len = 4 * Vcodebase.Codebuf.length buf in
  check_bounds t addr len "install_code";
  if addr land 3 <> 0 then raise (Fault (Printf.sprintf "misaligned install_code at 0x%x" addr));
  if len > 0 then begin
    Vcodebase.Codebuf.blit_to_bytes buf ~big_endian:t.big_endian t.data addr;
    t.on_write addr len
  end
