(* Execution tracing for the four CPU simulators.

   {!Telemetry} answers "how many" — aggregate counters and
   distributions; this module answers "what, exactly, in what order":
   a per-simulator stream of retired-instruction and marker records
   captured into a preallocated int-array ring.  The intended use is
   the cross-mode differ (bin/vtrace.ml): run the same workload under
   two engine modes, extract the two retired-pc streams and report the
   first ordinal where they disagree — turning the bit-identity test
   suites' pass/fail into a bisection tool for translation-cache bugs.

   Hot-path discipline (the same as Telemetry's):

   - a record is ONE int: the kind tag in bits 48+, the payload (a
     simulated address — far below 2^48 on every port) in the low 48.
     Retired-instruction records are the overwhelming majority and
     carry kind 0, so [retire] skips even the tag arithmetic: one
     unsafe store plus a counter increment;

   - the {!disabled} sink is a shared 1-slot scratch ring with mask 0,
     so every record any site can emit lands in scratch — the sites
     stay branch-free stores with no allocation, and a simulator
     created without a trace behaves bit-identically (pinned by
     test/test_trace.ml in the style of test_telemetry_overhead.ml);

   - once the ring is full new records overwrite the oldest; [seen]
     keeps the true total, so [dropped] is exact.

   Tracing never touches the simulated clock or the timing {!Cache}
   statistics: a traced and an untraced run retire the same
   instructions in the same cycles. *)

type kind =
  | Retire       (* one instruction issued at [payload] (pc) *)
  | Block_enter  (* compiled-block dispatch at [payload] (entry) *)
  | Fault        (* Machine_error / Mem.Fault escaped at [payload] (pc) *)
  | Smc_abort    (* dirty/Retired block abort; [payload] = aborting insn *)
  | Inval        (* predecode/translation state dropped at [payload] *)
  | Mark         (* tool-defined checkpoint; payload is caller's *)

let kind_to_int = function
  | Retire -> 0
  | Block_enter -> 1
  | Fault -> 2
  | Smc_abort -> 3
  | Inval -> 4
  | Mark -> 5

let kind_of_int = function
  | 0 -> Retire
  | 1 -> Block_enter
  | 2 -> Fault
  | 3 -> Smc_abort
  | 4 -> Inval
  | _ -> Mark

let kind_name = function
  | Retire -> "retire"
  | Block_enter -> "block_enter"
  | Fault -> "fault"
  | Smc_abort -> "smc_abort"
  | Inval -> "inval"
  | Mark -> "mark"

(* record packing: kind in bits 48.., payload in the low 48 *)
let payload_bits = 48
let payload_mask = (1 lsl payload_bits) - 1

type t = {
  on : bool;
  ring : int array;
  mask : int; (* capacity - 1 (power of two); 0 on the disabled sink *)
  mutable seen : int;
}

(* capacity bounds: 2^8 keeps unit tests cheap, 2^24 (128MB of ints)
   is already far past any workload this repo simulates in one call *)
let min_capacity_pow2 = 8
let max_capacity_pow2 = 24
let default_capacity_pow2 = 16

let create ?(capacity_pow2 = default_capacity_pow2) () =
  let p = min max_capacity_pow2 (max min_capacity_pow2 capacity_pow2) in
  { on = true; ring = Array.make (1 lsl p) 0; mask = (1 lsl p) - 1; seen = 0 }

(* the shared no-op sink: mask 0 folds every store into one scratch
   slot, so instrumentation sites need no enabled test *)
let disabled = { on = false; ring = Array.make 1 0; mask = 0; seen = 0 }

let is_enabled t = t.on

(* one instruction issued at [pc] — the hot record.  Emitted *before*
   the instruction executes (issue order), so a faulting instruction is
   the last record of its stream in every engine mode. *)
let[@inline] retire t pc =
  Array.unsafe_set t.ring (t.seen land t.mask) pc;
  t.seen <- t.seen + 1

(* a marker record; also branch-free on the disabled sink *)
let[@inline] mark t k payload =
  Array.unsafe_set t.ring (t.seen land t.mask)
    ((kind_to_int k lsl payload_bits) lor (payload land payload_mask));
  t.seen <- t.seen + 1

(* ------------------------------------------------------------------ *)
(* Reading the ring (cold)                                             *)

let capacity t = t.mask + 1
let seen t = t.seen
let retained t = if t.on then min t.seen (t.mask + 1) else 0
let dropped t = if t.on then max 0 (t.seen - (t.mask + 1)) else 0
let reset t = if t.on then t.seen <- 0

let[@inline] decode w = (kind_of_int (w lsr payload_bits), w land payload_mask)

(* retained records, oldest first *)
let records t =
  let n = retained t in
  let first = t.seen - n in
  Array.init n (fun j -> decode t.ring.((first + j) land t.mask))

(* just the retired-instruction pcs, oldest retained first — the
   differ's input *)
let retired_pcs t =
  let n = retained t in
  let first = t.seen - n in
  let acc = Array.make n 0 in
  let k = ref 0 in
  for j = 0 to n - 1 do
    let w = t.ring.((first + j) land t.mask) in
    if w lsr payload_bits = 0 then begin
      acc.(!k) <- w land payload_mask;
      incr k
    end
  done;
  Array.sub acc 0 !k

(* ------------------------------------------------------------------ *)
(* The differ                                                          *)

type divergence = {
  ordinal : int;  (* 0-based retired-instruction index of the mismatch *)
  a_pc : int;     (* -1: stream [a] ended before [ordinal] *)
  b_pc : int;     (* -1: stream [b] ended before [ordinal] *)
}

(* First position where two retired-pc streams disagree, [None] when
   one is a prefix of the other and lengths match... streams of equal
   content and length are identical; a short stream that is a strict
   prefix of the other diverges at its end (the longer stream kept
   retiring). *)
let first_divergence a b =
  let na = Array.length a and nb = Array.length b in
  let n = min na nb in
  let rec go i =
    if i < n then
      if a.(i) <> b.(i) then Some { ordinal = i; a_pc = a.(i); b_pc = b.(i) } else go (i + 1)
    else if na = nb then None
    else
      Some
        {
          ordinal = n;
          a_pc = (if na > n then a.(n) else -1);
          b_pc = (if nb > n then b.(n) else -1);
        }
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

(* JSON schema version of the Chrome trace_event export; bumped on any
   incompatible change and asserted by bench/json_check.exe
   --require-schema in runtest and CI. *)
let json_schema_version = 1

(* Compact binary format, version 1 (all integers little-endian):
     "VTRC"                     4-byte magic
     u32  version
     u16+bytes                  port   (length-prefixed)
     u16+bytes                  mode
     u16+bytes                  workload
     u64  seen                  records ever emitted
     u64  dropped               seen - retained
     u64  count                 retained records that follow
     count * u64                (kind << 48) | payload, oldest first *)
let binary_version = 1

let put_u16 oc v =
  output_byte oc (v land 0xff);
  output_byte oc ((v lsr 8) land 0xff)

let put_u32 oc v =
  put_u16 oc (v land 0xffff);
  put_u16 oc ((v lsr 16) land 0xffff)

let put_u64 oc v =
  put_u32 oc (v land 0xffffffff);
  put_u32 oc ((v lsr 32) land 0x7fffffff)

let put_str oc s =
  if String.length s > 0xffff then invalid_arg "Trace.write_binary: string too long";
  put_u16 oc (String.length s);
  output_string oc s

let write_binary oc ~port ~mode ~workload t =
  output_string oc "VTRC";
  put_u32 oc binary_version;
  put_str oc port;
  put_str oc mode;
  put_str oc workload;
  put_u64 oc t.seen;
  put_u64 oc (dropped t);
  let n = retained t in
  put_u64 oc n;
  let first = t.seen - n in
  for j = 0 to n - 1 do
    put_u64 oc t.ring.((first + j) land t.mask)
  done

type dump = {
  d_port : string;
  d_mode : string;
  d_workload : string;
  d_seen : int;
  d_dropped : int;
  d_records : (kind * int) array;
}

exception Corrupt of string

let get_byte ic =
  match input_char ic with
  | c -> Char.code c
  | exception End_of_file -> raise (Corrupt "truncated trace file")

let get_u16 ic =
  let a = get_byte ic in
  a lor (get_byte ic lsl 8)

let get_u32 ic =
  let a = get_u16 ic in
  a lor (get_u16 ic lsl 16)

let get_u64 ic =
  let a = get_u32 ic in
  a lor (get_u32 ic lsl 32)

let get_str ic =
  let n = get_u16 ic in
  let b = Bytes.create n in
  (try really_input ic b 0 n with End_of_file -> raise (Corrupt "truncated string"));
  Bytes.to_string b

let read_binary ic =
  let magic = Bytes.create 4 in
  (try really_input ic magic 0 4 with End_of_file -> raise (Corrupt "no magic"));
  if Bytes.to_string magic <> "VTRC" then raise (Corrupt "bad magic (not a VTRC trace)");
  let v = get_u32 ic in
  if v <> binary_version then raise (Corrupt (Printf.sprintf "unsupported version %d" v));
  let d_port = get_str ic in
  let d_mode = get_str ic in
  let d_workload = get_str ic in
  let d_seen = get_u64 ic in
  let d_dropped = get_u64 ic in
  let count = get_u64 ic in
  if count < 0 || count > 1 lsl max_capacity_pow2 then
    raise (Corrupt (Printf.sprintf "implausible record count %d" count));
  let d_records = Array.init count (fun _ -> decode (get_u64 ic)) in
  { d_port; d_mode; d_workload; d_seen; d_dropped; d_records }
