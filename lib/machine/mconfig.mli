(** Machine configurations for the evaluation.

    The paper measures on a DECstation 3100 (MIPS R2000 @ 16.7 MHz) and
    a DECstation 5000/200 (R3000 @ 25 MHz), both with 64KB+64KB
    direct-mapped caches.  The exact penalties do not matter for
    reproducing Table 3/4 shape; what matters is that the 5000 is
    faster per cycle while a miss costs relatively more. *)

type t = {
  name : string;
  clock_mhz : float;
  icache_bytes : int;
  dcache_bytes : int;
  line_bytes : int;
  imiss_penalty : int;
  dmiss_penalty : int;
  mem_bytes : int;
}

val dec3100 : t
val dec5000 : t

(** large caches, used by tests whose cycle counts should be dominated
    by instruction counts *)
val test_config : t

(** DEC5000 timing with 8MB of memory: room for the router workload's
    10k-filter slab arena *)
val router : t

val cycles_to_us : t -> int -> float
