# fib.asm — naive recursive Fibonacci.
#
# The call/return stress case: every node of the call tree is two jal
# sites, a stack frame, and a jr $ra whose delay slot does the frame
# pop — deep dynamic call depth with dense short blocks.
#
# entry:  main, $a0 = n (clamped to 20)
# result: $v0 = fib(n)
main:
        li    $t8, 20
        ble   $a0, $t8, nok
        nop
        move  $a0, $t8
nok:
        move  $t9, $ra            # fib preserves $t9
        jal   fib
        nop
        move  $ra, $t9
        jr    $ra
        nop
fib:
        slti  $t0, $a0, 2
        beq   $t0, $zero, rec
        nop
        move  $v0, $a0            # fib(0) = 0, fib(1) = 1
        jr    $ra
        nop
rec:
        addiu $sp, $sp, -12
        sw    $ra, 0($sp)
        sw    $a0, 4($sp)
        addiu $a0, $a0, -1
        jal   fib
        nop
        sw    $v0, 8($sp)
        lw    $a0, 4($sp)
        addiu $a0, $a0, -2
        jal   fib
        nop
        lw    $t0, 8($sp)
        addu  $v0, $v0, $t0
        lw    $ra, 0($sp)
        jr    $ra
        addiu $sp, $sp, 12        # frame pop rides the delay slot
