# statemach.asm — a branch-dense table-driven state machine.
#
# A 4-state DFA dispatched through a jump table: each step generates a
# symbol, loads table[state*4 + symbol] and jumps to it through jr —
# genuinely irregular control flow with a data-dependent indirect jump
# per iteration, the shape that defeats direct block chaining and that
# the region promoter has to survive rather than speed up.
#
# entry:  main, $a0 = number of input symbols (clamped to 4096)
# result: $v0 = transition signature + final state
main:
        li    $t8, 4096
        ble   $a0, $t8, lok
        nop
        move  $a0, $t8
lok:
        li    $t0, 0              # state
        li    $v0, 0              # signature
        li    $t1, 0              # symbol index
        li    $t2, 0x2f           # generator state
        la    $t6, table
step:
        bge   $t1, $a0, done
        nop
        sll   $t3, $t2, 2         # s = (5s + 7) & 255
        addu  $t3, $t3, $t2
        addiu $t2, $t3, 7
        andi  $t2, $t2, 255
        srl   $t4, $t2, 2
        andi  $t4, $t4, 3         # symbol 0..3
        sll   $t5, $t0, 2         # index = state*4 + symbol
        addu  $t5, $t5, $t4
        sll   $t5, $t5, 2
        addu  $t5, $t5, $t6
        lw    $t5, 0($t5)         # handler address
        jr    $t5
        nop
s0:
        li    $t0, 1
        b     next
        nop
s1:
        li    $t0, 2
        addiu $v0, $v0, 1
        b     next
        nop
s2:
        li    $t0, 3
        xor   $v0, $v0, $t1
        b     next
        nop
s3:
        li    $t0, 0
        addiu $v0, $v0, 3
        b     next
        nop
sacc:
        li    $t0, 0              # accepting transition
        addiu $v0, $v0, 5
        b     next
        nop
next:
        addiu $t1, $t1, 1
        b     step
        nop
done:
        addu  $v0, $v0, $t0       # fold in the final state
        jr    $ra
        nop

        .align 2
table:                            # 4 states x 4 symbols of handlers
        .word s0, s1, s2, s3
        .word s1, s2, s3, sacc
        .word s2, s3, sacc, s0
        .word s3, sacc, s0, s1
