# strsearch.asm — naive substring search over a generated text.
#
# Generates $a0 bytes over a 4-letter alphabet from a small linear
# recurrence (dense repeats, so near-matches are common and the inner
# compare loop's exit point varies), then counts occurrences of the
# pattern "abab" with the quadratic textbook scan.
#
# entry:  main, $a0 = haystack length (clamped to 2048)
# result: $v0 = match count in the low half, echoed in the high half
main:
        li    $t8, 2048
        ble   $a0, $t8, lenok
        nop
        move  $a0, $t8
lenok:
        la    $t0, hay
        li    $t1, 0              # i
        li    $t2, 7              # generator state
gen:
        bge   $t1, $a0, gdone
        nop
        sll   $t3, $t2, 1         # s = (5s + 3) & 63
        sll   $t4, $t2, 2
        addu  $t3, $t3, $t4
        subu  $t3, $t3, $t2
        addiu $t3, $t3, 3
        andi  $t2, $t3, 63
        andi  $t4, $t2, 3
        addiu $t4, $t4, 97        # 'a'..'d'
        addu  $t5, $t0, $t1
        sb    $t4, 0($t5)
        addiu $t1, $t1, 1
        b     gen
        nop
gdone:
        li    $v0, 0              # match count
        li    $t1, 0              # scan position
        la    $t6, pat
search:
        subu  $t3, $a0, $t1       # bytes remaining
        li    $t4, 4              # pattern length
        blt   $t3, $t4, sdone
        nop
        li    $t2, 0              # j over the pattern
cmp:
        bge   $t2, $t4, hit
        nop
        addu  $t5, $t1, $t2
        addu  $t5, $t5, $t0
        lbu   $t3, 0($t5)         # hay[i+j]
        addu  $t5, $t6, $t2
        lbu   $t5, 0($t5)         # pat[j]
        bne   $t3, $t5, miss
        nop
        addiu $t2, $t2, 1
        b     cmp
        nop
hit:
        addiu $v0, $v0, 1
miss:
        addiu $t1, $t1, 1
        b     search
        nop
sdone:
        sll   $t3, $v0, 16
        or    $v0, $v0, $t3
        jr    $ra
        nop

pat:    .asciiz "abab"
        .align 2
hay:    .space 2048
