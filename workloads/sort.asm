# sort.asm — insertion sort over an LCG-filled array, with a built-in
# sortedness oracle.
#
# Fills buf with $a0 pseudo-random 16-bit values (glibc LCG constants),
# insertion-sorts in place, then walks the result checking monotonicity
# while folding a checksum.  A sort bug answers -1, so any engine-mode
# divergence in the data path shows up in the return value as well as
# the retired-instruction stream.
#
# entry:  main, $a0 = element count (clamped to 256)
# result: $v0 = checksum of the sorted array, or -1 if out of order
main:
        li    $t8, 256
        ble   $a0, $t8, szok
        nop
        move  $a0, $t8
szok:
        la    $t0, buf
        li    $t1, 0              # i
        li    $t2, 12345          # LCG state
fill:
        bge   $t1, $a0, fdone
        nop
        li    $t3, 1103515245
        multu $t2, $t3
        mflo  $t2
        addiu $t2, $t2, 12345
        andi  $t3, $t2, 0xffff    # element value
        sll   $t4, $t1, 2
        addu  $t4, $t4, $t0
        sw    $t3, 0($t4)
        addiu $t1, $t1, 1
        b     fill
        nop
fdone:
        li    $t1, 1              # insertion sort: i = 1..n-1
isort:
        bge   $t1, $a0, sdone
        nop
        sll   $t4, $t1, 2
        addu  $t4, $t4, $t0
        lw    $t5, 0($t4)         # key = a[i]
        move  $t2, $t1            # j
inner:
        blez  $t2, place
        nop
        sll   $t6, $t2, 2
        addu  $t6, $t6, $t0
        lw    $t7, -4($t6)        # a[j-1]
        ble   $t7, $t5, place
        nop
        sw    $t7, 0($t6)         # shift right
        addiu $t2, $t2, -1
        b     inner
        nop
place:
        sll   $t6, $t2, 2
        addu  $t6, $t6, $t0
        sw    $t5, 0($t6)         # a[j] = key
        addiu $t1, $t1, 1
        b     isort
        nop
sdone:
        li    $v0, 0              # checksum + oracle walk
        li    $t1, 0
        li    $t7, 0              # previous element
check:
        bge   $t1, $a0, done
        nop
        sll   $t4, $t1, 2
        addu  $t4, $t4, $t0
        lw    $t3, 0($t4)
        bgt   $t7, $t3, bad       # must be nondecreasing
        nop
        move  $t7, $t3
        xor   $v0, $v0, $t3
        addu  $v0, $v0, $t1
        addiu $t1, $t1, 1
        b     check
        nop
bad:
        li    $v0, -1
done:
        jr    $ra
        nop

        .align 2
buf:    .space 1024
