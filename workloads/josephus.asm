# josephus.asm — Josephus survivor positions over a range of ring sizes.
#
# The classic recurrence f(1) = 0, f(i) = (f(i-1) + k) mod i with k = 3,
# evaluated for every ring size n = 1..$a0 and folded into a checksum.
# The mod is a subtract loop (f + k < 2i, so it runs 0..1 times) to keep
# the inner loop branchy rather than relying on the divider.
#
# entry:  main, $a0 = largest ring size (the harness passes --iters)
# result: $v0 = xor/add-folded survivor positions (0-based)
main:
        li    $t9, 3              # k, the elimination step
        li    $v0, 0              # checksum
        li    $t0, 1              # n, current ring size
outer:
        bgt   $t0, $a0, done
        nop
        li    $t1, 0              # f = f(1) = 0
        li    $t2, 2              # i
floop:
        bgt   $t2, $t0, fdone
        nop
        addu  $t1, $t1, $t9       # f += k
modlp:                            # f %= i
        blt   $t1, $t2, mdone
        nop
        subu  $t1, $t1, $t2
        b     modlp
        nop
mdone:
        addiu $t2, $t2, 1
        b     floop
        nop
fdone:
        xor   $v0, $v0, $t1       # fold f(n) into the checksum
        sll   $t3, $t1, 1
        addu  $v0, $v0, $t3
        addiu $t0, $t0, 1
        b     outer
        nop
done:
        jr    $ra
        nop
