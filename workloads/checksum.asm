# checksum.asm — internet-style ones-complement checksum kernel.
#
# Fills a word buffer from an xorshift-flavoured generator, then sums
# it as 16-bit halfwords with end-around carry folding (RFC 1071
# shape) and returns the complemented checksum.  Exercises sub-word
# loads (lhu) and a carry-fold data dependence per iteration.
#
# entry:  main, $a0 = word count (clamped to 1024)
# result: $v0 = 16-bit ones-complement checksum of the buffer
main:
        li    $t8, 1024
        ble   $a0, $t8, lok
        nop
        move  $a0, $t8
lok:
        la    $t0, buf
        li    $t1, 0              # word index
        li    $t2, 0x1234         # generator state
wfill:
        bge   $t1, $a0, wdone
        nop
        sll   $t3, $t2, 5         # xorshift mix
        xor   $t2, $t2, $t3
        srl   $t3, $t2, 7
        xor   $t2, $t2, $t3
        sll   $t3, $t2, 22
        xor   $t2, $t2, $t3
        sll   $t4, $t1, 2
        addu  $t4, $t4, $t0
        sw    $t2, 0($t4)
        addiu $t1, $t1, 1
        b     wfill
        nop
wdone:
        li    $v0, 0              # running sum
        li    $t1, 0              # halfword index
        sll   $t7, $a0, 1         # 2 halves per word
csum:
        bge   $t1, $t7, cdone
        nop
        sll   $t4, $t1, 1
        addu  $t4, $t4, $t0
        lhu   $t3, 0($t4)
        addu  $v0, $v0, $t3
        srl   $t3, $v0, 16        # end-around carry
        andi  $v0, $v0, 0xffff
        addu  $v0, $v0, $t3
        addiu $t1, $t1, 1
        b     csum
        nop
cdone:
        srl   $t3, $v0, 16        # final fold + complement
        andi  $v0, $v0, 0xffff
        addu  $v0, $v0, $t3
        nor   $v0, $v0, $zero
        andi  $v0, $v0, 0xffff
        jr    $ra
        nop

        .align 2
buf:    .space 4096
