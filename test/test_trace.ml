(* Execution-trace pins: ring accounting, the differ, the exporters,
   emit-site provenance, and the zero-overhead discipline.

   Mirrors test_telemetry_overhead.ml for the overhead half: a
   simulator built without a trace (the shared disabled sink) must be
   bit-identical — cycles, retired instructions, icache/dcache stats,
   generated code words — to one built with a live ring, on every
   port in every engine mode, and must allocate no steady-state
   minor-heap words per instruction either way.

   The differ half replays vtrace's --inject-hot session as a unit
   test: prime a blocks-mode simulator, alias the hottest compiled
   entry to the second-hottest block (Block_cache.alias, via
   Workloads.alias_block), and check that [Trace.first_divergence]
   against an off-mode reference stream lands on the exact retired
   ordinal where the aliased entry is first dispatched — with both
   sides symbolizable through the Gen provenance tables. *)

open Vcodebase
module Tel = Vmachine.Telemetry
module Trace = Vmachine.Trace
module W = Workloads

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Ring accounting                                                     *)

(* overflow: [seen] keeps the true total, [dropped] is exact, and the
   retained window is the newest [capacity] records oldest-first *)
let test_overflow_accounting () =
  let t = Trace.create ~capacity_pow2:8 () in
  check Alcotest.int "capacity" 256 (Trace.capacity t);
  for i = 0 to 999 do
    Trace.retire t (4 * i)
  done;
  check Alcotest.int "seen" 1000 (Trace.seen t);
  check Alcotest.int "retained" 256 (Trace.retained t);
  check Alcotest.int "dropped (exact)" 744 (Trace.dropped t);
  let recs = Trace.records t in
  check Alcotest.int "records length" 256 (Array.length recs);
  (* the full tail, oldest-to-newest: records 744..999 in order *)
  Array.iteri
    (fun j (kind, payload) ->
      if kind <> Trace.Retire || payload <> 4 * (744 + j) then
        Alcotest.failf "slot %d: %s 0x%x, expected retire 0x%x" j (Trace.kind_name kind)
          payload
          (4 * (744 + j)))
    recs

let test_underfull_ring () =
  let t = Trace.create ~capacity_pow2:8 () in
  for i = 0 to 9 do
    Trace.retire t (100 + i)
  done;
  check Alcotest.int "seen" 10 (Trace.seen t);
  check Alcotest.int "retained" 10 (Trace.retained t);
  check Alcotest.int "dropped" 0 (Trace.dropped t);
  check
    Alcotest.(array int)
    "pcs in order"
    (Array.init 10 (fun i -> 100 + i))
    (Trace.retired_pcs t)

let test_marks_and_retired_filter () =
  let t = Trace.create ~capacity_pow2:8 () in
  Trace.retire t 0x100;
  Trace.mark t Trace.Block_enter 0x100;
  Trace.retire t 0x104;
  Trace.mark t Trace.Fault 0x104;
  Trace.mark t Trace.Smc_abort 0x108;
  Trace.mark t Trace.Inval 0x200;
  Trace.mark t Trace.Mark 42;
  check Alcotest.int "seen counts marks too" 7 (Trace.seen t);
  check
    Alcotest.(array int)
    "retired_pcs filters non-retire records" [| 0x100; 0x104 |] (Trace.retired_pcs t);
  let kinds = Array.map (fun (k, _) -> Trace.kind_name k) (Trace.records t) in
  check
    Alcotest.(array string)
    "kinds round-trip"
    [| "retire"; "block_enter"; "retire"; "fault"; "smc_abort"; "inval"; "mark" |]
    kinds;
  Trace.reset t;
  check Alcotest.int "reset clears seen" 0 (Trace.seen t);
  check Alcotest.int "reset clears retained" 0 (Trace.retained t)

(* the shared disabled sink: stores land in scratch, readers see an
   empty, disabled trace *)
let test_disabled_sink () =
  let t = Trace.disabled in
  check Alcotest.bool "not enabled" false (Trace.is_enabled t);
  Trace.retire t 0xdead;
  Trace.mark t Trace.Fault 0xbeef;
  check Alcotest.int "retained stays 0" 0 (Trace.retained t);
  check Alcotest.int "dropped stays 0" 0 (Trace.dropped t);
  check Alcotest.int "records empty" 0 (Array.length (Trace.records t));
  check Alcotest.int "retired_pcs empty" 0 (Array.length (Trace.retired_pcs t))

(* ------------------------------------------------------------------ *)
(* first_divergence                                                    *)

let div = Alcotest.(option (triple int int int))

let diverge a b =
  match Trace.first_divergence a b with
  | None -> None
  | Some d -> Some (d.Trace.ordinal, d.Trace.a_pc, d.Trace.b_pc)

let test_first_divergence () =
  check div "identical -> None" None (diverge [| 1; 2; 3 |] [| 1; 2; 3 |]);
  check div "both empty -> None" None (diverge [||] [||]);
  check div "mid mismatch" (Some (1, 2, 9)) (diverge [| 1; 2; 3 |] [| 1; 9; 3 |]);
  check div "first mismatch" (Some (0, 1, 9)) (diverge [| 1 |] [| 9 |]);
  check div "strict prefix: a ended" (Some (2, -1, 3)) (diverge [| 1; 2 |] [| 1; 2; 3 |]);
  check div "strict prefix: b ended" (Some (2, 3, -1)) (diverge [| 1; 2; 3 |] [| 1; 2 |]);
  check div "empty vs nonempty" (Some (0, -1, 7)) (diverge [||] [| 7 |])

(* ------------------------------------------------------------------ *)
(* Binary round-trip                                                   *)

let test_binary_roundtrip () =
  let t = Trace.create ~capacity_pow2:8 () in
  for i = 0 to 299 do
    Trace.retire t (0x10000 + (4 * i));
    if i mod 50 = 0 then Trace.mark t Trace.Block_enter (0x10000 + (4 * i))
  done;
  Trace.mark t Trace.Fault 0x1f0ff;
  let path = Filename.temp_file "vtrace_test" ".vtrc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Trace.write_binary oc ~port:"mips" ~mode:"blocks" ~workload:"alu-loop" t;
      close_out oc;
      let ic = open_in_bin path in
      let d = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Trace.read_binary ic) in
      check Alcotest.string "port" "mips" d.Trace.d_port;
      check Alcotest.string "mode" "blocks" d.Trace.d_mode;
      check Alcotest.string "workload" "alu-loop" d.Trace.d_workload;
      check Alcotest.int "seen" (Trace.seen t) d.Trace.d_seen;
      check Alcotest.int "dropped" (Trace.dropped t) d.Trace.d_dropped;
      let live = Trace.records t in
      check Alcotest.int "record count" (Array.length live) (Array.length d.Trace.d_records);
      Array.iteri
        (fun i (k, p) ->
          let k', p' = d.Trace.d_records.(i) in
          if k <> k' || p <> p' then
            Alcotest.failf "record %d: (%s, 0x%x) read back as (%s, 0x%x)" i
              (Trace.kind_name k) p (Trace.kind_name k') p')
        live)

let test_binary_rejects_garbage () =
  let path = Filename.temp_file "vtrace_test" ".vtrc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOPE definitely not a trace";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match Trace.read_binary ic with
          | _ -> Alcotest.fail "garbage accepted"
          | exception Trace.Corrupt _ -> ()))

(* ------------------------------------------------------------------ *)
(* Emit-site provenance                                                *)

module V = Vcode.Make (Vmips.Mips_backend)

let gen_provenanced () =
  Gen.set_provenance_default true;
  Fun.protect
    ~finally:(fun () -> Gen.set_provenance_default false)
    (fun () ->
      let g, args = V.lambda ~base:0x10000 ~leaf:true "%i" in
      let open V.Names in
      let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
      let i = V.getreg_exn g ~cls:`Temp Vtype.I in
      seti g acc 0;
      seti g i 0;
      let top = V.genlabel g and out = V.genlabel g in
      V.label g top;
      bgei g i args.(0) out;
      addi g acc acc i;
      addii g i i 1;
      jv g top;
      V.label g out;
      reti g acc;
      V.end_gen g)

let test_provenance_symbols () =
  let c = gen_provenanced () in
  let g = c.Vcode.gen in
  check Alcotest.bool "spans recorded" true (Gen.prov_count g > 0);
  (* words below the first client op are the reserved prologue *)
  check Alcotest.(option string) "word 0 is prologue" (Some "prologue") (Gen.prov_symbol g 0);
  (* the entry word is the first emitted op: ordinal 0, no label yet *)
  let entry_word = (c.Vcode.entry_addr - c.Vcode.base) / 4 in
  check Alcotest.(option string) "entry word is op #0" (Some "set#0")
    (Gen.prov_symbol g entry_word);
  (* past the first label binding, symbols carry the @L suffix *)
  let nwords = Codebuf.length g.Gen.buf in
  let labelled = ref 0 in
  for idx = 0 to nwords - 1 do
    match Gen.prov_symbol g idx with
    | Some s when String.length s > 2 ->
      if String.index_opt s '@' <> None then incr labelled
    | _ -> ()
  done;
  check Alcotest.bool "some symbols carry an enclosing label" true (!labelled > 0);
  (* spans tile the buffer in emission order *)
  let prev_last = ref (-1) and count = ref 0 in
  Gen.iter_prov_spans g (fun ~ordinal ~slot:_ ~first ~last ->
      check Alcotest.int "ordinals are dense" !count ordinal;
      incr count;
      if !prev_last >= 0 then check Alcotest.int "spans are contiguous" !prev_last first;
      check Alcotest.bool "span is forward" true (last >= first);
      prev_last := last);
  check Alcotest.int "last span ends at the buffer" nwords !prev_last;
  (* out-of-range indices symbolize to nothing *)
  check Alcotest.(option string) "past the end" None (Gen.prov_symbol g nwords);
  check Alcotest.(option string) "negative" None (Gen.prov_symbol g (-1))

let test_provenance_off_by_default () =
  let g, _ = V.lambda ~base:0x10000 ~leaf:true "%i" in
  let open V.Names in
  let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
  seti g acc 7;
  reti g acc;
  let c = V.end_gen g in
  check Alcotest.int "no spans recorded" 0 (Gen.prov_count c.Vcode.gen);
  check Alcotest.(option string) "no symbols" None (Gen.prov_symbol c.Vcode.gen 0)

(* ------------------------------------------------------------------ *)
(* Bit identity: traced and untraced runs must not differ              *)

(* cycles, insns, icache (hits, misses), dcache (hits, misses) *)
let quad = Alcotest.(pair int (pair int (pair (pair int int) (pair int int))))

type outcome = { stats : int * (int * ((int * int) * (int * int))); code : int array }

module type PORT = sig
  val name : string
  val run_loop : Trace.t option -> predecode:bool -> blocks:bool -> outcome
end

module Make_port
    (T : Target.S)
    (S : sig
      type t

      val create : Trace.t option -> predecode:bool -> blocks:bool -> t
      val mem : t -> Vmachine.Mem.t
      val call_ints : t -> entry:int -> int list -> int
      val stats : t -> int * (int * ((int * int) * (int * int)))
    end) : PORT = struct
  module VP = Vcode.Make (T)

  let name = T.desc.Machdesc.name

  let gen_loop () =
    let g, args = VP.lambda ~base:0x10000 ~leaf:true "%i" in
    let open VP.Names in
    let acc = VP.getreg_exn g ~cls:`Temp Vtype.I in
    let i = VP.getreg_exn g ~cls:`Temp Vtype.I in
    seti g acc 0;
    seti g i 0;
    let top = VP.genlabel g and out = VP.genlabel g in
    VP.label g top;
    bgei g i args.(0) out;
    addi g acc acc i;
    orii g acc acc 3;
    addii g i i 1;
    jv g top;
    VP.label g out;
    reti g acc;
    VP.end_gen g

  let run_loop tr ~predecode ~blocks =
    let m = S.create tr ~predecode ~blocks in
    let c = gen_loop () in
    Vmachine.Mem.install_code (S.mem m) ~addr:c.Vcode.base c.Vcode.gen.Gen.buf;
    let r1 = S.call_ints m ~entry:c.Vcode.entry_addr [ 500 ] in
    let r2 = S.call_ints m ~entry:c.Vcode.entry_addr [ 500 ] in
    check Alcotest.int (name ^ ": loop rerun agrees") r1 r2;
    { stats = S.stats m; code = Codebuf.to_array c.Vcode.gen.Gen.buf }
end

module Mips_port =
  Make_port
    (Vmips.Mips_backend)
    (struct
      module S = Vmips.Mips_sim

      type t = S.t

      let create tr ~predecode ~blocks =
        match tr with
        | None -> S.create ~predecode ~blocks Vmachine.Mconfig.dec5000
        | Some trace -> S.create ~predecode ~blocks ~trace Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let stats (m : t) =
        ( m.S.cycles,
          (m.S.insns, (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache)) )
    end)

module Sparc_port =
  Make_port
    (Vsparc.Sparc_backend)
    (struct
      module S = Vsparc.Sparc_sim

      type t = S.t

      let create tr ~predecode ~blocks =
        match tr with
        | None -> S.create ~predecode ~blocks Vmachine.Mconfig.dec5000
        | Some trace -> S.create ~predecode ~blocks ~trace Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let stats (m : t) =
        ( m.S.cycles,
          (m.S.insns, (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache)) )
    end)

module Alpha_port =
  Make_port
    (Valpha.Alpha_backend)
    (struct
      module S = Valpha.Alpha_sim

      type t = S.t

      let create tr ~predecode ~blocks =
        match tr with
        | None -> S.create ~predecode ~blocks Vmachine.Mconfig.dec5000
        | Some trace -> S.create ~predecode ~blocks ~trace Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let stats (m : t) =
        ( m.S.cycles,
          (m.S.insns, (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache)) )
    end)

module Ppc_port =
  Make_port
    (Vppc.Ppc_backend)
    (struct
      module S = Vppc.Ppc_sim

      type t = S.t

      let create tr ~predecode ~blocks =
        match tr with
        | None -> S.create ~predecode ~blocks Vmachine.Mconfig.dec5000
        | Some trace -> S.create ~predecode ~blocks ~trace Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let stats (m : t) =
        ( m.S.cycles,
          (m.S.insns, (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache)) )
    end)

let modes = [ ("off", (false, false)); ("predecode", (true, false)); ("blocks", (true, true)) ]

let identity_case (module P : PORT) () =
  List.iter
    (fun (label, (predecode, blocks)) ->
      let off = P.run_loop None ~predecode ~blocks in
      let live = P.run_loop (Some (Trace.create ())) ~predecode ~blocks in
      let here = Printf.sprintf "%s/%s: " P.name label in
      check quad (here ^ "cycles/insns/cache stats bit-identical") off.stats live.stats;
      check Alcotest.(array int) (here ^ "generated code words identical") off.code live.code)
    modes

(* the same retired-pc stream must come out of every engine mode *)
let stream_equivalence_case (module P : PORT) () =
  let streams =
    List.map
      (fun (label, (predecode, blocks)) ->
        let tr = Trace.create ~capacity_pow2:16 () in
        ignore (P.run_loop (Some tr) ~predecode ~blocks);
        (label, Trace.retired_pcs tr))
      modes
  in
  match streams with
  | (ref_label, ref_pcs) :: rest ->
    check Alcotest.bool "stream is nonempty" true (Array.length ref_pcs > 1000);
    List.iter
      (fun (label, pcs) ->
        match Trace.first_divergence ref_pcs pcs with
        | None -> ()
        | Some d ->
          Alcotest.failf "%s: %s and %s diverge at retired ordinal %d (0x%x vs 0x%x)" P.name
            ref_label label d.Trace.ordinal d.Trace.a_pc d.Trace.b_pc)
      rest
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Steady-state allocation: zero minor-heap words per instruction,
   whichever sink is installed                                         *)

let allocation_case tr () =
  let module S = Vmips.Mips_sim in
  let m =
    match tr with
    | None -> S.create Vmachine.Mconfig.test_config
    | Some trace -> S.create ~trace Vmachine.Mconfig.test_config
  in
  let code =
    let g, args = V.lambda ~base:0x10000 ~leaf:true "%i" in
    let open V.Names in
    let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
    let i = V.getreg_exn g ~cls:`Temp Vtype.I in
    seti g acc 0;
    seti g i 0;
    let top = V.genlabel g and out = V.genlabel g in
    V.label g top;
    bgei g i args.(0) out;
    addi g acc acc i;
    orii g acc acc 3;
    addii g i i 1;
    jv g top;
    V.label g out;
    reti g acc;
    V.end_gen g
  in
  Vmachine.Mem.install_code m.S.mem ~addr:code.Vcode.base code.Vcode.gen.Gen.buf;
  let entry = code.Vcode.entry_addr in
  S.call m ~entry [ S.Int 2000 ];
  S.call m ~entry [ S.Int 2000 ];
  let insns0 = m.S.insns in
  let w0 = Gc.minor_words () in
  for _ = 1 to 20 do
    S.call m ~entry [ S.Int 2000 ]
  done;
  let allocated = Gc.minor_words () -. w0 in
  let retired = m.S.insns - insns0 in
  check Alcotest.bool "ran a meaningful number of instructions" true (retired > 100_000);
  let per_insn = allocated /. float_of_int retired in
  if per_insn >= 0.01 then
    Alcotest.failf "allocates %.4f minor words per simulated instruction (%.0f for %d)"
      per_insn allocated retired

(* ------------------------------------------------------------------ *)
(* The differ on an injected block-cache divergence                    *)

(* replicate vtrace's two-pass discipline via the shared Workloads
   vocabulary: prime, corrupt (mode B only), reset, measure *)
let traced_pair (module P : W.PORT) ~mode ~inject =
  let predecode, blocks, regions = W.mode_exn ~tool:"test" mode in
  let tel = Tel.create () in
  let tr = Trace.create ~capacity_pow2:16 () in
  let fuel = (1 lsl 16) / 4 in
  let m = P.create ~telemetry:tel ~trace:tr ~predecode ~blocks ~regions () in
  let prep = P.prepare ~tel ~provenance:true ~fuel m ~workload:"alu-loop" ~iters:400 in
  prep.W.run ();
  let injected =
    if not inject then None
    else
      match P.hot_blocks ~limit:2 m with
      | (h1, _) :: (h2, _) :: _ ->
        check Alcotest.bool "alias accepted" true (P.alias_block m ~at:h1 ~from:h2);
        Some (h1, h2)
      | _ -> Alcotest.fail "expected >=2 compiled blocks after priming"
  in
  Trace.reset tr;
  P.reset_stats m;
  (try prep.W.run () with _ -> (* a corrupted run may fault or run out of fuel *) ());
  check Alcotest.int "measured stream fully retained" 0 (Trace.dropped tr);
  (Trace.retired_pcs tr, prep.W.regions, injected)

let test_injected_divergence () =
  let p = W.port_exn ~tool:"test" "mips" in
  let a, regions_a, _ = traced_pair p ~mode:"off" ~inject:false in
  let b, regions_b, injected = traced_pair p ~mode:"blocks" ~inject:true in
  let h1, h2 = match injected with Some x -> x | None -> assert false in
  match Trace.first_divergence a b with
  | None -> Alcotest.fail "injected corruption produced no divergence"
  | Some d ->
    (* the first divergent retired instruction is exactly the first
       dynamic *dispatch* of the aliased entry: the reference retires
       h1's first instruction, the corrupted run retires h2's.  Earlier
       occurrences of h1 in the stream may be interior to a longer
       superblock (entries can overlap block bodies) and those are
       unaffected by the alias, so the expectation is the first ordinal
       where the two streams actually disagree on h1. *)
    check Alcotest.int "reference side retires the aliased entry" h1 d.Trace.a_pc;
    check Alcotest.int "corrupted side retires the stale block" h2 d.Trace.b_pc;
    let expected_ordinal =
      let rec find i = if a.(i) = h1 && b.(i) <> h1 then i else find (i + 1) in
      find 0
    in
    check Alcotest.int "ordinal is the first diverging dispatch of the aliased entry"
      expected_ordinal d.Trace.ordinal;
    check
      Alcotest.(array int)
      "streams agree up to the divergence"
      (Array.sub a 0 d.Trace.ordinal)
      (Array.sub b 0 d.Trace.ordinal);
    (* both sides symbolize back to their emit sites *)
    (match W.symbol_of regions_a d.Trace.a_pc with
    | Some _ -> ()
    | None -> Alcotest.fail "reference pc did not symbolize");
    (match W.symbol_of regions_b d.Trace.b_pc with
    | Some _ -> ()
    | None -> Alcotest.fail "corrupted pc did not symbolize")

(* without injection the same two-pass harness reports no divergence *)
let test_no_false_divergence () =
  let p = W.port_exn ~tool:"test" "mips" in
  let a, _, _ = traced_pair p ~mode:"off" ~inject:false in
  let b, _, _ = traced_pair p ~mode:"blocks" ~inject:false in
  check Alcotest.bool "streams are nonempty" true (Array.length a > 1000);
  match Trace.first_divergence a b with
  | None -> ()
  | Some d ->
    Alcotest.failf "uncorrupted modes diverge at ordinal %d (0x%x vs 0x%x)" d.Trace.ordinal
      d.Trace.a_pc d.Trace.b_pc

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "overflow accounting" `Quick test_overflow_accounting;
          Alcotest.test_case "underfull ring" `Quick test_underfull_ring;
          Alcotest.test_case "marks and retired filter" `Quick test_marks_and_retired_filter;
          Alcotest.test_case "disabled sink" `Quick test_disabled_sink;
        ] );
      ("differ", [ Alcotest.test_case "first_divergence" `Quick test_first_divergence ]);
      ( "binary format",
        [
          Alcotest.test_case "round-trip" `Quick test_binary_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_binary_rejects_garbage;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "symbols" `Quick test_provenance_symbols;
          Alcotest.test_case "off by default" `Quick test_provenance_off_by_default;
        ] );
      ( "bit identity",
        [
          Alcotest.test_case "mips" `Quick (identity_case (module Mips_port));
          Alcotest.test_case "sparc" `Quick (identity_case (module Sparc_port));
          Alcotest.test_case "alpha" `Quick (identity_case (module Alpha_port));
          Alcotest.test_case "ppc" `Quick (identity_case (module Ppc_port));
        ] );
      ( "stream equivalence",
        [
          Alcotest.test_case "mips" `Quick (stream_equivalence_case (module Mips_port));
          Alcotest.test_case "sparc" `Quick (stream_equivalence_case (module Sparc_port));
          Alcotest.test_case "alpha" `Quick (stream_equivalence_case (module Alpha_port));
          Alcotest.test_case "ppc" `Quick (stream_equivalence_case (module Ppc_port));
        ] );
      ( "steady-state allocation",
        [
          Alcotest.test_case "disabled trace" `Quick (allocation_case None);
          Alcotest.test_case "live trace" `Quick
            (allocation_case (Some (Trace.create ~capacity_pow2:16 ())));
        ] );
      ( "injected divergence",
        [
          Alcotest.test_case "exact first divergence" `Quick test_injected_divergence;
          Alcotest.test_case "no false divergence" `Quick test_no_false_divergence;
        ] );
    ]
