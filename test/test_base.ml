(* Unit and property tests for the target-independent VCODE base:
   types, code buffer, generation state, register allocation, and the
   machine substrate (memory, caches). *)

open Vcodebase

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Vtype                                                               *)

let test_signature_parse () =
  check (Alcotest.list Alcotest.string) "simple"
    [ "i" ] (List.map Vtype.to_string (Vtype.parse_signature "%i"));
  check (Alcotest.list Alcotest.string) "multi"
    [ "i"; "p"; "d" ]
    (List.map Vtype.to_string (Vtype.parse_signature "%i%p%d"));
  check (Alcotest.list Alcotest.string) "unsigned multichar"
    [ "uc"; "us"; "ul"; "u" ]
    (List.map Vtype.to_string (Vtype.parse_signature "%uc%us%ul%u"));
  check (Alcotest.list Alcotest.string) "empty" []
    (List.map Vtype.to_string (Vtype.parse_signature ""))

let test_signature_errors () =
  let bad s =
    match Vtype.parse_signature s with
    | _ -> Alcotest.failf "expected failure for %S" s
    | exception Verror.Error (Verror.Bad_type _) -> ()
  in
  bad "i";
  bad "%x";
  bad "%"

let test_sizes () =
  check Alcotest.int "int is 4" 4 (Vtype.size ~word_bytes:4 Vtype.I);
  check Alcotest.int "long follows word (32)" 4 (Vtype.size ~word_bytes:4 Vtype.L);
  check Alcotest.int "long follows word (64)" 8 (Vtype.size ~word_bytes:8 Vtype.L);
  check Alcotest.int "pointer follows word" 8 (Vtype.size ~word_bytes:8 Vtype.P);
  check Alcotest.int "double is 8" 8 (Vtype.size ~word_bytes:4 Vtype.D);
  check Alcotest.int "uchar is 1" 1 (Vtype.size ~word_bytes:4 Vtype.UC);
  check Alcotest.int "void is 0" 0 (Vtype.size ~word_bytes:4 Vtype.V)

let test_type_table () =
  (* Table 1 has twelve types and their C equivalents *)
  check Alcotest.int "12 types" 12 (List.length Vtype.all);
  check Alcotest.string "p is void*" "void *" (Vtype.c_equivalent Vtype.P);
  List.iter
    (fun t -> Alcotest.(check bool) "c_equivalent nonempty" true (Vtype.c_equivalent t <> ""))
    Vtype.all

let test_op_tables () =
  (* Table 2 composition rules *)
  Alcotest.(check bool) "add takes floats" true (List.mem Vtype.F (Op.binop_types Op.Add));
  Alcotest.(check bool) "mod excludes floats" false (List.mem Vtype.F (Op.binop_types Op.Mod));
  Alcotest.(check bool) "lsh excludes pointer" false (List.mem Vtype.P (Op.binop_types Op.Lsh));
  Alcotest.(check bool) "no float immediates" false (Op.binop_imm_ok Op.Add Vtype.D);
  Alcotest.(check bool) "int immediates ok" true (Op.binop_imm_ok Op.Add Vtype.I);
  Alcotest.(check bool) "cvi2d ok" true (Op.conversion_ok ~from:Vtype.I ~to_:Vtype.D);
  Alcotest.(check bool) "cvd2u not listed" false (Op.conversion_ok ~from:Vtype.D ~to_:Vtype.U)

(* ------------------------------------------------------------------ *)
(* Codebuf                                                             *)

let test_codebuf_basic () =
  let b = Codebuf.create () in
  check Alcotest.int "empty" 0 (Codebuf.length b);
  let i0 = Codebuf.emit b 0xDEADBEEF in
  let i1 = Codebuf.emit b 42 in
  check Alcotest.int "index 0" 0 i0;
  check Alcotest.int "index 1" 1 i1;
  check Alcotest.int "get" 0xDEADBEEF (Codebuf.get b 0);
  Codebuf.set b 0 7;
  check Alcotest.int "patched" 7 (Codebuf.get b 0);
  Codebuf.truncate b 1;
  check Alcotest.int "truncated" 1 (Codebuf.length b)

let test_codebuf_growth () =
  let b = Codebuf.create ~capacity:2 () in
  for i = 0 to 999 do ignore (Codebuf.emit b i) done;
  check Alcotest.int "length" 1000 (Codebuf.length b);
  for i = 0 to 999 do assert (Codebuf.get b i = i) done

let test_codebuf_reserve () =
  let b = Codebuf.create () in
  ignore (Codebuf.emit b 1);
  let at = Codebuf.reserve b ~n:5 ~fill:0 in
  check Alcotest.int "reserve index" 1 at;
  check Alcotest.int "reserve length" 6 (Codebuf.length b);
  check Alcotest.int "fill" 0 (Codebuf.get b 3)

let test_codebuf_blit_endianness () =
  let b = Codebuf.create () in
  ignore (Codebuf.emit b 0x11223344);
  let le = Bytes.make 4 '\000' and be = Bytes.make 4 '\000' in
  Codebuf.blit_to_bytes b ~big_endian:false le 0;
  Codebuf.blit_to_bytes b ~big_endian:true be 0;
  check Alcotest.string "little" "\x44\x33\x22\x11" (Bytes.to_string le);
  check Alcotest.string "big" "\x11\x22\x33\x44" (Bytes.to_string be)

(* reset keeps the backing capacity (heap_words flat, no growths on
   re-emission) while making the old contents unreachable *)
let test_codebuf_reset_reuse () =
  let b = Codebuf.create ~capacity:2 () in
  for i = 0 to 999 do
    ignore (Codebuf.emit b i)
  done;
  let grew = Codebuf.growths b in
  check Alcotest.bool "grew past the hint" true (grew > 0);
  let hw = Codebuf.heap_words b in
  Codebuf.reset b;
  check Alcotest.int "reset length" 0 (Codebuf.length b);
  check Alcotest.int "reset growths baseline" 0 (Codebuf.growths b);
  check Alcotest.int "capacity kept (heap_words flat)" hw (Codebuf.heap_words b);
  for i = 0 to 999 do
    ignore (Codebuf.emit b (i * 3))
  done;
  check Alcotest.int "re-emitted" 1000 (Codebuf.length b);
  check Alcotest.int "no growths on reuse" 0 (Codebuf.growths b);
  check Alcotest.int "heap_words still flat" hw (Codebuf.heap_words b);
  check Alcotest.int "fresh contents" 42 (Codebuf.get b 14)

(* old indices are dead after reset: get/set/truncate check against the
   new length *)
let test_codebuf_reset_truncate () =
  let b = Codebuf.create () in
  for i = 0 to 9 do
    ignore (Codebuf.emit b i)
  done;
  Codebuf.truncate b 4;
  check Alcotest.int "truncated" 4 (Codebuf.length b);
  Codebuf.reset b;
  ignore (Codebuf.emit b 7);
  Alcotest.check_raises "get past reset length"
    (Verror.Error (Verror.Bad_operand "Codebuf.get: index 3 outside [0,1)")) (fun () ->
      ignore (Codebuf.get b 3));
  Alcotest.check_raises "truncate past reset length"
    (Verror.Error (Verror.Bad_operand "Codebuf.truncate: length 4 outside [0,1]"))
    (fun () -> Codebuf.truncate b 4)

let prop_codebuf_word_identity =
  QCheck.Test.make ~name:"codebuf stores 32-bit words exactly" ~count:500
    QCheck.(list (int_bound 0xFFFFFFF))
    (fun ws ->
      let b = Codebuf.create () in
      List.iter (fun w -> ignore (Codebuf.emit b w)) ws;
      List.length ws = Codebuf.length b
      && List.for_all2 ( = ) ws (Array.to_list (Codebuf.to_array b)))

(* ------------------------------------------------------------------ *)
(* Gen: labels, relocs, allocator                                      *)

let dummy_desc : Machdesc.t =
  {
    Machdesc.name = "dummy";
    word_bits = 32;
    big_endian = false;
    branch_delay_slots = 0;
    load_delay = 0;
    nregs = 8;
    nfregs = 4;
    temps = [| Reg.R 1; Reg.R 2 |];
    vars = [| Reg.R 3; Reg.R 4; Reg.R 5 |];
    ftemps = [| Reg.F 0 |];
    fvars = [| Reg.F 2 |];
    callee_mask = (1 lsl 3) lor (1 lsl 4) lor (1 lsl 5);
    fcallee_mask = 1 lsl 2;
    arg_regs = [| Reg.R 6 |];
    farg_regs = [||];
    ret_reg = Reg.R 7;
    fret_reg = Reg.F 0;
    sp = Reg.R 0;
    locals_base = 0;
    scratch = Reg.R 0;
    reg_name = Reg.to_string;
  }

let test_labels () =
  let g = Gen.create dummy_desc in
  let l0 = Gen.genlabel g and l1 = Gen.genlabel g in
  check Alcotest.int "fresh ids" 1 l1;
  Alcotest.(check bool) "initially unbound" false (Gen.label_defined g l0);
  ignore (Codebuf.emit g.Gen.buf 0);
  Gen.bind_label g l0;
  Alcotest.(check bool) "bound" true (Gen.label_defined g l0);
  check Alcotest.int "bound position" 1 g.Gen.labels.(l0)

let test_many_labels () =
  let g = Gen.create dummy_desc in
  let ls = List.init 100 (fun _ -> Gen.genlabel g) in
  check Alcotest.int "100 labels" 100 (List.length ls);
  List.iteri (fun i l -> assert (i = l)) ls

let test_reloc_resolution () =
  let g = Gen.create dummy_desc in
  let l = Gen.genlabel g in
  ignore (Codebuf.emit g.Gen.buf 0);
  Gen.add_reloc g ~site:0 ~lab:l ~kind:7;
  ignore (Codebuf.emit g.Gen.buf 0);
  Gen.bind_label g l;
  let seen = ref [] in
  Gen.resolve_relocs g ~apply:(fun ~kind ~site ~dest -> seen := (kind, site, dest) :: !seen);
  check
    Alcotest.(list (triple int int int))
    "resolved" [ (7, 0, 2) ] !seen

let test_unresolved_label () =
  let g = Gen.create dummy_desc in
  let l = Gen.genlabel g in
  Gen.add_reloc g ~site:0 ~lab:l ~kind:0;
  Alcotest.check_raises "unresolved" (Verror.Error (Verror.Unresolved_label l)) (fun () ->
      Gen.resolve_relocs g ~apply:(fun ~kind:_ ~site:_ ~dest:_ -> ()))

let test_regalloc_priority_order () =
  let g = Gen.create dummy_desc in
  check (Alcotest.option Alcotest.string) "first temp" (Some "r1")
    (Option.map Reg.to_string (Gen.getreg g ~cls:`Temp ~float:false));
  check (Alcotest.option Alcotest.string) "second temp" (Some "r2")
    (Option.map Reg.to_string (Gen.getreg g ~cls:`Temp ~float:false));
  check (Alcotest.option Alcotest.string) "exhausted" None
    (Option.map Reg.to_string (Gen.getreg g ~cls:`Temp ~float:false))

let test_regalloc_putreg () =
  let g = Gen.create dummy_desc in
  let r1 = Option.get (Gen.getreg g ~cls:`Temp ~float:false) in
  let _r2 = Option.get (Gen.getreg g ~cls:`Temp ~float:false) in
  Gen.putreg g r1;
  check (Alcotest.option Alcotest.string) "freed register reused" (Some "r1")
    (Option.map Reg.to_string (Gen.getreg g ~cls:`Temp ~float:false))

let test_regalloc_unavailable_override () =
  let g = Gen.create dummy_desc in
  Gen.set_reg_class g (Reg.R 1) Gen.Ounavail;
  check (Alcotest.option Alcotest.string) "skips unavailable" (Some "r2")
    (Option.map Reg.to_string (Gen.getreg g ~cls:`Temp ~float:false))

let test_regalloc_float_pool () =
  let g = Gen.create dummy_desc in
  check (Alcotest.option Alcotest.string) "float temp" (Some "f0")
    (Option.map Reg.to_string (Gen.getreg g ~cls:`Temp ~float:true));
  check (Alcotest.option Alcotest.string) "float var" (Some "f2")
    (Option.map Reg.to_string (Gen.getreg g ~cls:`Var ~float:true))

let test_note_write_masks () =
  let g = Gen.create dummy_desc in
  Gen.note_write g (Reg.R 3);
  Gen.note_write g (Reg.R 1);
  check Alcotest.int "only callee-saved recorded" (1 lsl 3) g.Gen.used_callee;
  Gen.note_write g (Reg.F 2);
  check Alcotest.int "float callee recorded" (1 lsl 2) g.Gen.used_fcallee

let test_note_write_override () =
  let g = Gen.create dummy_desc in
  (* interrupt-handler scenario: force caller-saved r1 to be treated as
     callee-saved *)
  Gen.set_reg_class g (Reg.R 1) Gen.Ocallee;
  Gen.note_write g (Reg.R 1);
  check Alcotest.int "forced callee recorded" (1 lsl 1) g.Gen.used_callee;
  (* and relax a callee-saved register *)
  let g2 = Gen.create dummy_desc in
  Gen.set_reg_class g2 (Reg.R 3) Gen.Ocaller;
  Gen.note_write g2 (Reg.R 3);
  check Alcotest.int "relaxed register not recorded" 0 g2.Gen.used_callee

let test_locals_alignment () =
  let g = Gen.create dummy_desc in
  let o1 = Gen.alloc_local g ~bytes:1 ~align:1 in
  let o2 = Gen.alloc_local g ~bytes:4 ~align:4 in
  let o3 = Gen.alloc_local g ~bytes:8 ~align:8 in
  check Alcotest.int "first at 0" 0 o1;
  check Alcotest.int "word aligned" 4 o2;
  check Alcotest.int "double aligned" 8 o3;
  check Alcotest.int "total" 16 g.Gen.locals_bytes

let prop_locals_aligned =
  QCheck.Test.make ~name:"alloc_local always respects alignment" ~count:300
    QCheck.(list (pair (int_range 1 16) (oneofl [ 1; 2; 4; 8 ])))
    (fun reqs ->
      let g = Gen.create dummy_desc in
      List.for_all
        (fun (bytes, align) -> Gen.alloc_local g ~bytes ~align mod align = 0)
        reqs)

let test_finished_guard () =
  let g = Gen.create dummy_desc in
  g.Gen.finished <- true;
  Alcotest.check_raises "emission after v_end" (Verror.Error Verror.Already_finished)
    (fun () -> Gen.check_open g)

let test_live_words_constant_in_insns () =
  (* the in-place property: generation state (excluding the code itself)
     does not grow with instruction count *)
  let g = Gen.create dummy_desc in
  let overhead g = Gen.live_words g - Codebuf.heap_words g.Gen.buf in
  let before = overhead g in
  for i = 0 to 9999 do ignore (Codebuf.emit g.Gen.buf i) done;
  check Alcotest.int "bookkeeping unchanged after 10k instructions" before (overhead g)

(* ------------------------------------------------------------------ *)
(* Mem and Cache                                                       *)

let test_mem_rw () =
  let m = Vmachine.Mem.create ~size:4096 () in
  Vmachine.Mem.write_u32 m 0 0xCAFEBABE;
  check Alcotest.int "u32" 0xCAFEBABE (Vmachine.Mem.read_u32 m 0);
  check Alcotest.int "byte LE" 0xBE (Vmachine.Mem.read_u8 m 0);
  Vmachine.Mem.write_u16 m 4 0xBEEF;
  check Alcotest.int "u16" 0xBEEF (Vmachine.Mem.read_u16 m 4);
  Vmachine.Mem.write_u64 m 8 0x1122334455667788L;
  check Alcotest.int64 "u64" 0x1122334455667788L (Vmachine.Mem.read_u64 m 8)

let test_mem_big_endian () =
  let m = Vmachine.Mem.create ~big_endian:true ~size:64 () in
  Vmachine.Mem.write_u32 m 0 0x11223344;
  check Alcotest.int "byte BE" 0x11 (Vmachine.Mem.read_u8 m 0);
  check Alcotest.int "u16 BE" 0x1122 (Vmachine.Mem.read_u16 m 0)

let test_mem_faults () =
  let m = Vmachine.Mem.create ~size:64 () in
  (match Vmachine.Mem.read_u32 m 0x1000 with
  | _ -> Alcotest.fail "expected out-of-bounds fault"
  | exception Vmachine.Mem.Fault _ -> ());
  match Vmachine.Mem.read_u32 m 2 with
  | _ -> Alcotest.fail "expected misalignment fault"
  | exception Vmachine.Mem.Fault _ -> ()

let test_mem_bulk_bounds () =
  let m = Vmachine.Mem.create ~size:64 () in
  let expect_fault what f =
    match f () with
    | _ -> Alcotest.fail ("expected Fault: " ^ what)
    | exception Vmachine.Mem.Fault _ -> ()
  in
  (* every bulk writer is bounds-checked and raises Fault, never a raw
     Invalid_argument from Bytes *)
  expect_fault "blit_bytes past end" (fun () ->
      Vmachine.Mem.blit_bytes m ~addr:60 (Bytes.make 8 'x'));
  expect_fault "blit_bytes negative addr" (fun () ->
      Vmachine.Mem.blit_bytes m ~addr:(-4) (Bytes.make 2 'x'));
  expect_fault "fill past end" (fun () -> Vmachine.Mem.fill m ~addr:60 ~len:8 'x');
  expect_fault "fill negative addr" (fun () -> Vmachine.Mem.fill m ~addr:(-1) ~len:2 'x');
  expect_fault "fill negative len" (fun () -> Vmachine.Mem.fill m ~addr:0 ~len:(-2) 'x');
  expect_fault "blit_string past end" (fun () -> Vmachine.Mem.blit_string m ~addr:62 "abcd");
  expect_fault "read_string past end" (fun () ->
      ignore (Vmachine.Mem.read_string m ~addr:62 ~len:4));
  expect_fault "read_string negative len" (fun () ->
      ignore (Vmachine.Mem.read_string m ~addr:0 ~len:(-1)));
  (* zero-length operations are no-ops, valid anywhere in [0, size] *)
  Vmachine.Mem.blit_string m ~addr:64 "";
  Vmachine.Mem.blit_bytes m ~addr:64 Bytes.empty;
  Vmachine.Mem.fill m ~addr:64 ~len:0 'x';
  check Alcotest.string "empty read at size" "" (Vmachine.Mem.read_string m ~addr:64 ~len:0);
  expect_fault "zero-length op past size" (fun () ->
      ignore (Vmachine.Mem.read_string m ~addr:65 ~len:0))

let test_mem_write_watcher () =
  let m = Vmachine.Mem.create ~size:256 () in
  let log = ref [] in
  Vmachine.Mem.set_write_watcher m (fun addr len -> log := (addr, len) :: !log);
  Vmachine.Mem.write_u8 m 1 0xAB;
  Vmachine.Mem.write_u16 m 2 0xCDEF;
  Vmachine.Mem.write_u32 m 4 0xDEADBEEF;
  Vmachine.Mem.write_u64 m 8 1L;
  Vmachine.Mem.blit_bytes m ~addr:32 (Bytes.make 3 'x');
  Vmachine.Mem.fill m ~addr:40 ~len:5 'y';
  Vmachine.Mem.blit_string m ~addr:48 "hi";
  (* zero-length bulk ops must not notify *)
  Vmachine.Mem.blit_string m ~addr:60 "";
  let got = List.rev !log in
  check
    Alcotest.(list (pair int int))
    "watcher sees every mutation"
    [ (1, 1); (2, 2); (4, 4); (8, 4); (12, 4); (32, 3); (40, 5); (48, 2) ]
    got

let prop_mem_u64_roundtrip =
  QCheck.Test.make ~name:"u64 read/write roundtrip both endiannesses" ~count:300
    QCheck.(pair int64 bool)
    (fun (v, be) ->
      let m = Vmachine.Mem.create ~big_endian:be ~size:64 () in
      Vmachine.Mem.write_u64 m 16 v;
      Vmachine.Mem.read_u64 m 16 = v)

let test_cache_behaviour () =
  let c = Vmachine.Cache.create ~size_bytes:64 ~line_bytes:16 ~miss_penalty:10 in
  check Alcotest.int "cold miss" 10 (Vmachine.Cache.access c 0);
  check Alcotest.int "hit same line" 0 (Vmachine.Cache.access c 4);
  check Alcotest.int "hit same line end" 0 (Vmachine.Cache.access c 15);
  check Alcotest.int "next line misses" 10 (Vmachine.Cache.access c 16);
  (* 64-byte direct-mapped: address 64 conflicts with 0 *)
  check Alcotest.int "conflict miss" 10 (Vmachine.Cache.access c 64);
  check Alcotest.int "evicted line misses again" 10 (Vmachine.Cache.access c 0);
  Vmachine.Cache.flush c;
  check Alcotest.int "flush invalidates" 10 (Vmachine.Cache.access c 0);
  let hits, misses = Vmachine.Cache.stats c in
  check Alcotest.int "hits counted" 2 hits;
  check Alcotest.int "misses counted" 5 misses

let () =
  Alcotest.run "vcode-base"
    [
      ( "vtype",
        [
          Alcotest.test_case "signature parse" `Quick test_signature_parse;
          Alcotest.test_case "signature errors" `Quick test_signature_errors;
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "table 1" `Quick test_type_table;
          Alcotest.test_case "table 2 composition" `Quick test_op_tables;
        ] );
      ( "codebuf",
        [
          Alcotest.test_case "basic" `Quick test_codebuf_basic;
          Alcotest.test_case "growth" `Quick test_codebuf_growth;
          Alcotest.test_case "reserve" `Quick test_codebuf_reserve;
          Alcotest.test_case "blit endianness" `Quick test_codebuf_blit_endianness;
          Alcotest.test_case "reset reuse" `Quick test_codebuf_reset_reuse;
          Alcotest.test_case "reset vs truncate" `Quick test_codebuf_reset_truncate;
          qtest prop_codebuf_word_identity;
        ] );
      ( "gen",
        [
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "many labels" `Quick test_many_labels;
          Alcotest.test_case "reloc resolution" `Quick test_reloc_resolution;
          Alcotest.test_case "unresolved label" `Quick test_unresolved_label;
          Alcotest.test_case "allocator priority order" `Quick test_regalloc_priority_order;
          Alcotest.test_case "putreg reuse" `Quick test_regalloc_putreg;
          Alcotest.test_case "unavailable override" `Quick test_regalloc_unavailable_override;
          Alcotest.test_case "float pools" `Quick test_regalloc_float_pool;
          Alcotest.test_case "note_write masks" `Quick test_note_write_masks;
          Alcotest.test_case "note_write override" `Quick test_note_write_override;
          Alcotest.test_case "locals alignment" `Quick test_locals_alignment;
          qtest prop_locals_aligned;
          Alcotest.test_case "finished guard" `Quick test_finished_guard;
          Alcotest.test_case "in-place space property" `Quick test_live_words_constant_in_insns;
        ] );
      ( "machine",
        [
          Alcotest.test_case "mem rw" `Quick test_mem_rw;
          Alcotest.test_case "mem big endian" `Quick test_mem_big_endian;
          Alcotest.test_case "mem faults" `Quick test_mem_faults;
          Alcotest.test_case "mem bulk bounds" `Quick test_mem_bulk_bounds;
          Alcotest.test_case "mem write watcher" `Quick test_mem_write_watcher;
          qtest prop_mem_u64_roundtrip;
          Alcotest.test_case "cache behaviour" `Quick test_cache_behaviour;
        ] );
    ]
