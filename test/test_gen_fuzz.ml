(* Differential fuzzing of the checked/unchecked API split.

   [Vcode.Make] and [Vcode.Make_unchecked] share one emission path and
   differ only in whether operand validation runs, so on well-formed
   input they must produce bit-for-bit identical machine code.  This
   test pins that invariant on every port by replaying random
   well-formed v_* streams through both instantiations and comparing
   the emitted words.  Also here: unit tests for the parallel-move
   resolver used by the call sequences, and the zero-allocation
   steady-state guarantee of unchecked emission. *)

open Vcodebase

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* The common surface of both instantiations, as a first-class module  *)

module type EMITTER = sig
  val lambda :
    ?base:int -> ?leaf:bool -> ?capacity:int -> ?buf:Codebuf.t -> string ->
    Gen.t * Reg.t array
  val end_gen : Gen.t -> Vcode.code
  val getreg_exn : Gen.t -> cls:[ `Temp | `Var ] -> Vtype.t -> Reg.t
  val genlabel : Gen.t -> int
  val label : Gen.t -> int -> unit
  val arith : Gen.t -> Op.binop -> Vtype.t -> Reg.t -> Reg.t -> Reg.t -> unit
  val arith_imm : Gen.t -> Op.binop -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val unary : Gen.t -> Op.unop -> Vtype.t -> Reg.t -> Reg.t -> unit
  val set : Gen.t -> Vtype.t -> Reg.t -> int64 -> unit
  val setf : Gen.t -> Vtype.t -> Reg.t -> float -> unit
  val cvt : Gen.t -> from:Vtype.t -> to_:Vtype.t -> Reg.t -> Reg.t -> unit
  val load_imm : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val load_reg : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> Reg.t -> unit
  val store_imm : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val store_reg : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> Reg.t -> unit
  val branch : Gen.t -> Op.cond -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val branch_imm : Gen.t -> Op.cond -> Vtype.t -> Reg.t -> int -> int -> unit
  val jump : Gen.t -> Gen.jtarget -> unit
  val push_arg : Gen.t -> Vtype.t -> Reg.t -> unit
  val do_call : Gen.t -> Gen.jtarget -> unit
  val retval : Gen.t -> Vtype.t -> Reg.t -> unit
  val ret : Gen.t -> Vtype.t -> Reg.t option -> unit
  val nop : Gen.t -> unit
end

(* ------------------------------------------------------------------ *)
(* A program language wide enough to reach relocations, FP-constant
   pools, call sequences and both memory addressing modes              *)

type finsn =
  | Fbin of Op.binop * int * int * int (* dst, a, b: int slots *)
  | Fbini of Op.binop * int * int * int (* dst, a, imm *)
  | Fun_ of Op.unop * int * int
  | Fset of int * int
  | Fsetd of int * float (* double slot, constant (fimm pool) *)
  | Ffbin of Op.binop * int * int * int (* double slots *)
  | Fcvt of int * int (* double slot <- int slot *)
  | Fldi of int * int (* slot <- [p + imm] *)
  | Fsti of int * int (* [p + imm] <- slot *)
  | Fldr of int * int (* slot <- [p + slot] *)
  | Fstr of int * int (* [p + slot] <- slot *)
  | Fbr of Op.cond * int * int (* branch to the end label (reloc) *)
  | Fbri of Op.cond * int * int
  | Fjump
  | Fcall of int (* push slot + p, call, retval into slot 0 *)
  | Fnop

let nslots = 4
let ndslots = 2

let insn_gen : finsn QCheck.Gen.t =
  let open QCheck.Gen in
  let slot = int_bound (nslots - 1) in
  let dslot = int_bound (ndslots - 1) in
  let binop = oneofl Op.[ Add; Sub; Mul; Div; Mod; And; Or; Xor ] in
  let fop = oneofl Op.[ Add; Sub; Mul; Div ] in
  let cond = oneofl Op.[ Lt; Le; Gt; Ge; Eq; Ne ] in
  let imm = oneof [ int_range (-100) 100; int_range (-100000) 100000; return 0x12345 ] in
  oneof
    [
      (let* op = binop and* d = slot and* a = slot and* b = slot in
       return (Fbin (op, d, a, b)));
      (let* op = oneofl Op.[ Add; Sub; Mul; And; Or; Xor ] and* d = slot and* a = slot
       and* i = imm in
       return (Fbini (op, d, a, i)));
      (let* d = slot and* a = slot and* sh = int_bound 31 in
       return (Fbini (Op.Lsh, d, a, sh)));
      (let* op = oneofl Op.[ Com; Not; Mov; Neg ] and* d = slot and* a = slot in
       return (Fun_ (op, d, a)));
      (let* d = slot and* v = imm in
       return (Fset (d, v)));
      (let* d = dslot and* v = oneofl [ 0.0; 1.5; -2.25; 3.14159; 1e10 ] in
       return (Fsetd (d, v)));
      (let* op = fop and* d = dslot and* a = dslot and* b = dslot in
       return (Ffbin (op, d, a, b)));
      (let* d = dslot and* a = slot in
       return (Fcvt (d, a)));
      (let* d = slot and* w = int_bound 15 in
       return (Fldi (d, 4 * w)));
      (let* s = slot and* w = int_bound 15 in
       return (Fsti (s, 4 * w)));
      (let* d = slot and* x = slot in
       return (Fldr (d, x)));
      (let* s = slot and* x = slot in
       return (Fstr (s, x)));
      (let* c = cond and* a = slot and* b = slot in
       return (Fbr (c, a, b)));
      (let* c = cond and* a = slot and* i = imm in
       return (Fbri (c, a, i)));
      return Fjump;
      (let* a = slot in
       return (Fcall a));
      return Fnop;
    ]

let prog_gen = QCheck.Gen.(list_size (int_range 1 60) insn_gen)

let prog_print prog =
  String.concat "; "
    (List.map
       (function
         | Fbin (op, d, a, b) -> Printf.sprintf "r%d=r%d %s r%d" d a (Op.binop_to_string op) b
         | Fbini (op, d, a, i) -> Printf.sprintf "r%d=r%d %s %d" d a (Op.binop_to_string op) i
         | Fun_ (op, d, a) -> Printf.sprintf "r%d=%s r%d" d (Op.unop_to_string op) a
         | Fset (d, v) -> Printf.sprintf "r%d=%d" d v
         | Fsetd (d, v) -> Printf.sprintf "d%d=%g" d v
         | Ffbin (op, d, a, b) ->
           Printf.sprintf "d%d=d%d %s d%d" d a (Op.binop_to_string op) b
         | Fcvt (d, a) -> Printf.sprintf "d%d=cvt r%d" d a
         | Fldi (d, o) -> Printf.sprintf "r%d=[p+%d]" d o
         | Fsti (s, o) -> Printf.sprintf "[p+%d]=r%d" o s
         | Fldr (d, x) -> Printf.sprintf "r%d=[p+r%d]" d x
         | Fstr (s, x) -> Printf.sprintf "[p+r%d]=r%d" x s
         | Fbr (c, a, b) -> Printf.sprintf "b%s r%d,r%d,end" (Op.cond_to_string c) a b
         | Fbri (c, a, i) -> Printf.sprintf "b%si r%d,%d,end" (Op.cond_to_string c) a i
         | Fjump -> "j end"
         | Fcall a -> Printf.sprintf "call(r%d,p)" a
         | Fnop -> "nop")
       prog)

(* Replay [prog] through one instantiation and return the emitted
   words.  The tiny capacity hint is deliberate: the buffer-growth path
   must produce the same code as a right-sized buffer. *)
let emit_with (module E : EMITTER) (prog : finsn list) : int array =
  let g, args = E.lambda ~base:0x10000 ~capacity:8 "%i%i%p" in
  let p = args.(2) in
  let slots = Array.init nslots (fun _ -> E.getreg_exn g ~cls:`Var Vtype.I) in
  let dslots = Array.init ndslots (fun _ -> E.getreg_exn g ~cls:`Temp Vtype.D) in
  let lend = E.genlabel g in
  E.unary g Op.Mov Vtype.I slots.(0) args.(0);
  E.unary g Op.Mov Vtype.I slots.(1) args.(1);
  List.iter
    (fun i ->
      match i with
      | Fbin (op, d, a, b) -> E.arith g op Vtype.I slots.(d) slots.(a) slots.(b)
      | Fbini (op, d, a, imm) -> E.arith_imm g op Vtype.I slots.(d) slots.(a) imm
      | Fun_ (op, d, a) -> E.unary g op Vtype.I slots.(d) slots.(a)
      | Fset (d, v) -> E.set g Vtype.I slots.(d) (Int64.of_int v)
      | Fsetd (d, v) -> E.setf g Vtype.D dslots.(d) v
      | Ffbin (op, d, a, b) -> E.arith g op Vtype.D dslots.(d) dslots.(a) dslots.(b)
      | Fcvt (d, a) -> E.cvt g ~from:Vtype.I ~to_:Vtype.D dslots.(d) slots.(a)
      | Fldi (d, o) -> E.load_imm g Vtype.I slots.(d) p o
      | Fsti (s, o) -> E.store_imm g Vtype.I slots.(s) p o
      | Fldr (d, x) -> E.load_reg g Vtype.I slots.(d) p slots.(x)
      | Fstr (s, x) -> E.store_reg g Vtype.I slots.(s) p slots.(x)
      | Fbr (c, a, b) -> E.branch g c Vtype.I slots.(a) slots.(b) lend
      | Fbri (c, a, imm) -> E.branch_imm g c Vtype.I slots.(a) imm lend
      | Fjump -> E.jump g (Gen.Jlabel lend)
      | Fcall a ->
        E.push_arg g Vtype.I slots.(a);
        E.push_arg g Vtype.P p;
        E.do_call g (Gen.Jaddr 0x4000);
        E.retval g Vtype.I slots.(0)
      | Fnop -> E.nop g)
    prog;
  E.label g lend;
  E.ret g Vtype.I (Some slots.(0));
  let code = E.end_gen g in
  Codebuf.to_array code.Vcode.gen.Gen.buf

(* ------------------------------------------------------------------ *)
(* Per-port instantiations                                             *)

module Mips_c = Vcode.Make (Vmips.Mips_backend)
module Mips_u = Vcode.Make_unchecked (Vmips.Mips_backend)
module Sparc_c = Vcode.Make (Vsparc.Sparc_backend)
module Sparc_u = Vcode.Make_unchecked (Vsparc.Sparc_backend)
module Alpha_c = Vcode.Make (Valpha.Alpha_backend)
module Alpha_u = Vcode.Make_unchecked (Valpha.Alpha_backend)
module Ppc_c = Vcode.Make (Vppc.Ppc_backend)
module Ppc_u = Vcode.Make_unchecked (Vppc.Ppc_backend)

let ports : (string * (module EMITTER) * (module EMITTER)) list =
  [
    ("mips", (module Mips_c), (module Mips_u));
    ("sparc", (module Sparc_c), (module Sparc_u));
    ("alpha", (module Alpha_c), (module Alpha_u));
    ("ppc", (module Ppc_c), (module Ppc_u));
  ]

let diff_tests =
  List.map
    (fun (name, checked, unchecked) ->
      QCheck.Test.make ~count:300 ~name
        (QCheck.make ~print:prog_print prog_gen)
        (fun prog -> emit_with checked prog = emit_with unchecked prog))
    ports

(* a fixed program hitting every family at least once, with exact
   word-level comparison so a regression names the first differing site *)
let sink_prog =
  [
    Fset (0, 7);
    Fset (1, -42);
    Fbin (Op.Add, 2, 0, 1);
    Fbini (Op.Xor, 3, 2, 0x12345);
    Fbini (Op.Lsh, 0, 0, 3);
    Fun_ (Op.Neg, 1, 2);
    Fsetd (0, 2.5);
    Fsetd (1, -0.125);
    Ffbin (Op.Mul, 0, 0, 1);
    Fcvt (1, 2);
    Fldi (2, 8);
    Fsti (3, 12);
    Fldr (1, 0);
    Fstr (2, 3);
    Fbr (Op.Lt, 0, 1);
    Fbri (Op.Ne, 2, 99);
    Fcall 3;
    Fnop;
    Fjump;
  ]

let test_sink_identical () =
  List.iter
    (fun (name, checked, unchecked) ->
      let a = emit_with checked sink_prog in
      let b = emit_with unchecked sink_prog in
      Alcotest.(check (array int)) (name ^ ": kitchen-sink program") a b)
    ports

(* ------------------------------------------------------------------ *)
(* Parallel-move resolution                                            *)

(* run the resolver against a model register file and compare with the
   parallel-assignment semantics *)
let run_moves ~scratch (moves : (int * int) list) =
  let nregs = 12 in
  let regs = Array.init nregs (fun i -> 100 + i) in
  let initial = Array.copy regs in
  let nmoves = ref 0 in
  Gen.parallel_moves
    ~emit_mov:(fun d s ->
      incr nmoves;
      regs.(d) <- regs.(s))
    ~scratch moves;
  List.iter
    (fun (d, s) ->
      Alcotest.(check int)
        (Printf.sprintf "r%d gets the old value of r%d" d s)
        initial.(s) regs.(d))
    moves;
  (* untouched registers (destinations and scratch aside) survive *)
  let written = scratch :: List.map fst moves in
  Array.iteri
    (fun i v ->
      if not (List.mem i written) then
        Alcotest.(check int) (Printf.sprintf "r%d untouched" i) initial.(i) v)
    regs;
  !nmoves

let test_moves_swap () =
  (* a 2-cycle must break through the scratch register: 3 moves *)
  let n = run_moves ~scratch:9 [ (0, 1); (1, 0) ] in
  Alcotest.(check int) "swap uses exactly 3 moves" 3 n

let test_moves_cycle3 () =
  let n = run_moves ~scratch:9 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check int) "3-cycle uses exactly 4 moves" 4 n

let test_moves_chain () =
  (* an acyclic chain needs no scratch: one move per element *)
  let n = run_moves ~scratch:9 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "chain uses exactly 3 moves" 3 n

let test_moves_self () =
  let n = run_moves ~scratch:9 [ (4, 4); (5, 5) ] in
  Alcotest.(check int) "self-moves are elided" 0 n

let test_moves_mixed () =
  (* a swap plus an independent chain hanging off one of its members *)
  let n = run_moves ~scratch:9 [ (0, 1); (1, 0); (5, 0); (6, 5) ] in
  Alcotest.(check bool) "mixed case resolves" true (n >= 5)

(* ------------------------------------------------------------------ *)
(* Steady-state allocation                                              *)

(* With a sufficient capacity hint, unchecked emission of ALU and
   memory instructions must allocate zero GC words per instruction:
   everything is stored into preallocated int arrays. *)
let test_zero_alloc_steady_state () =
  let g, args = Mips_u.lambda ~base:0x1000 ~leaf:true ~capacity:16384 "%i%i%p" in
  let r0 = args.(0) and r1 = args.(1) and p = args.(2) in
  let emit_block () =
    for _ = 1 to 1000 do
      Mips_u.arith_imm g Op.Add Vtype.I r0 r0 1;
      Mips_u.arith g Op.Add Vtype.I r1 r1 r0;
      Mips_u.load_imm g Vtype.I r1 p 0;
      Mips_u.store_imm g Vtype.I r0 p 4
    done
  in
  let measure f =
    let a = Gc.minor_words () in
    f ();
    Gc.minor_words () -. a
  in
  emit_block () (* warm-up: one-time paths out of the way *);
  (* the measurement itself boxes a float; calibrate it out *)
  let overhead = measure (fun () -> ()) in
  let d = measure emit_block in
  let per_insn = (d -. overhead) /. 4000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "unchecked steady state allocates 0 words/insn (got %.4f)" per_insn)
    true
    (per_insn <= 0.001)

let () =
  Alcotest.run "gen-fuzz"
    [
      ( "checked-vs-unchecked",
        List.map qtest diff_tests
        @ [ Alcotest.test_case "kitchen sink, all ports" `Quick test_sink_identical ] );
      ( "parallel-moves",
        [
          Alcotest.test_case "2-cycle swap" `Quick test_moves_swap;
          Alcotest.test_case "3-cycle" `Quick test_moves_cycle3;
          Alcotest.test_case "acyclic chain" `Quick test_moves_chain;
          Alcotest.test_case "self-moves" `Quick test_moves_self;
          Alcotest.test_case "swap plus chain" `Quick test_moves_mixed;
        ] );
      ( "allocation",
        [ Alcotest.test_case "unchecked steady state" `Quick test_zero_alloc_steady_state ] );
    ]
