(* Differential fuzzing of the checked/unchecked API split.

   [Vcode.Make] and [Vcode.Make_unchecked] share one emission path and
   differ only in whether operand validation runs, so on well-formed
   input they must produce bit-for-bit identical machine code.  This
   test pins that invariant on every port by replaying random
   well-formed v_* streams through both instantiations and comparing
   the emitted words.  Also here: unit tests for the parallel-move
   resolver used by the call sequences, and the zero-allocation
   steady-state guarantee of unchecked emission. *)

open Vcodebase

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* The common surface of both instantiations, as a first-class module  *)

module type EMITTER = sig
  val lambda :
    ?base:int -> ?leaf:bool -> ?capacity:int -> ?buf:Codebuf.t -> string ->
    Gen.t * Reg.t array
  val end_gen : Gen.t -> Vcode.code
  val getreg_exn : Gen.t -> cls:[ `Temp | `Var ] -> Vtype.t -> Reg.t
  val genlabel : Gen.t -> int
  val label : Gen.t -> int -> unit
  val arith : Gen.t -> Op.binop -> Vtype.t -> Reg.t -> Reg.t -> Reg.t -> unit
  val arith_imm : Gen.t -> Op.binop -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val unary : Gen.t -> Op.unop -> Vtype.t -> Reg.t -> Reg.t -> unit
  val set : Gen.t -> Vtype.t -> Reg.t -> int64 -> unit
  val setf : Gen.t -> Vtype.t -> Reg.t -> float -> unit
  val cvt : Gen.t -> from:Vtype.t -> to_:Vtype.t -> Reg.t -> Reg.t -> unit
  val load_imm : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val load_reg : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> Reg.t -> unit
  val store_imm : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val store_reg : Gen.t -> Vtype.t -> Reg.t -> Reg.t -> Reg.t -> unit
  val branch : Gen.t -> Op.cond -> Vtype.t -> Reg.t -> Reg.t -> int -> unit
  val branch_imm : Gen.t -> Op.cond -> Vtype.t -> Reg.t -> int -> int -> unit
  val jump : Gen.t -> Gen.jtarget -> unit
  val push_arg : Gen.t -> Vtype.t -> Reg.t -> unit
  val do_call : Gen.t -> Gen.jtarget -> unit
  val retval : Gen.t -> Vtype.t -> Reg.t -> unit
  val ret : Gen.t -> Vtype.t -> Reg.t option -> unit
  val nop : Gen.t -> unit
end

(* ------------------------------------------------------------------ *)
(* A program language wide enough to reach relocations, FP-constant
   pools, call sequences and both memory addressing modes              *)

type finsn =
  | Fbin of Op.binop * int * int * int (* dst, a, b: int slots *)
  | Fbini of Op.binop * int * int * int (* dst, a, imm *)
  | Fun_ of Op.unop * int * int
  | Fset of int * int
  | Fsetd of int * float (* double slot, constant (fimm pool) *)
  | Ffbin of Op.binop * int * int * int (* double slots *)
  | Fcvt of int * int (* double slot <- int slot *)
  | Fldi of int * int (* slot <- [p + imm] *)
  | Fsti of int * int (* [p + imm] <- slot *)
  | Fldr of int * int (* slot <- [p + slot] *)
  | Fstr of int * int (* [p + slot] <- slot *)
  | Fbr of Op.cond * int * int (* branch to the end label (reloc) *)
  | Fbri of Op.cond * int * int
  | Fjump
  | Fcall of int (* push slot + p, call, retval into slot 0 *)
  | Fnop

let nslots = 4
let ndslots = 2

let insn_gen : finsn QCheck.Gen.t =
  let open QCheck.Gen in
  let slot = int_bound (nslots - 1) in
  let dslot = int_bound (ndslots - 1) in
  let binop = oneofl Op.[ Add; Sub; Mul; Div; Mod; And; Or; Xor ] in
  let fop = oneofl Op.[ Add; Sub; Mul; Div ] in
  let cond = oneofl Op.[ Lt; Le; Gt; Ge; Eq; Ne ] in
  let imm = oneof [ int_range (-100) 100; int_range (-100000) 100000; return 0x12345 ] in
  oneof
    [
      (let* op = binop and* d = slot and* a = slot and* b = slot in
       return (Fbin (op, d, a, b)));
      (let* op = oneofl Op.[ Add; Sub; Mul; And; Or; Xor ] and* d = slot and* a = slot
       and* i = imm in
       return (Fbini (op, d, a, i)));
      (let* d = slot and* a = slot and* sh = int_bound 31 in
       return (Fbini (Op.Lsh, d, a, sh)));
      (let* op = oneofl Op.[ Com; Not; Mov; Neg ] and* d = slot and* a = slot in
       return (Fun_ (op, d, a)));
      (let* d = slot and* v = imm in
       return (Fset (d, v)));
      (let* d = dslot and* v = oneofl [ 0.0; 1.5; -2.25; 3.14159; 1e10 ] in
       return (Fsetd (d, v)));
      (let* op = fop and* d = dslot and* a = dslot and* b = dslot in
       return (Ffbin (op, d, a, b)));
      (let* d = dslot and* a = slot in
       return (Fcvt (d, a)));
      (let* d = slot and* w = int_bound 15 in
       return (Fldi (d, 4 * w)));
      (let* s = slot and* w = int_bound 15 in
       return (Fsti (s, 4 * w)));
      (let* d = slot and* x = slot in
       return (Fldr (d, x)));
      (let* s = slot and* x = slot in
       return (Fstr (s, x)));
      (let* c = cond and* a = slot and* b = slot in
       return (Fbr (c, a, b)));
      (let* c = cond and* a = slot and* i = imm in
       return (Fbri (c, a, i)));
      return Fjump;
      (let* a = slot in
       return (Fcall a));
      return Fnop;
    ]

let prog_gen = QCheck.Gen.(list_size (int_range 1 60) insn_gen)

let prog_print prog =
  String.concat "; "
    (List.map
       (function
         | Fbin (op, d, a, b) -> Printf.sprintf "r%d=r%d %s r%d" d a (Op.binop_to_string op) b
         | Fbini (op, d, a, i) -> Printf.sprintf "r%d=r%d %s %d" d a (Op.binop_to_string op) i
         | Fun_ (op, d, a) -> Printf.sprintf "r%d=%s r%d" d (Op.unop_to_string op) a
         | Fset (d, v) -> Printf.sprintf "r%d=%d" d v
         | Fsetd (d, v) -> Printf.sprintf "d%d=%g" d v
         | Ffbin (op, d, a, b) ->
           Printf.sprintf "d%d=d%d %s d%d" d a (Op.binop_to_string op) b
         | Fcvt (d, a) -> Printf.sprintf "d%d=cvt r%d" d a
         | Fldi (d, o) -> Printf.sprintf "r%d=[p+%d]" d o
         | Fsti (s, o) -> Printf.sprintf "[p+%d]=r%d" o s
         | Fldr (d, x) -> Printf.sprintf "r%d=[p+r%d]" d x
         | Fstr (s, x) -> Printf.sprintf "[p+r%d]=r%d" x s
         | Fbr (c, a, b) -> Printf.sprintf "b%s r%d,r%d,end" (Op.cond_to_string c) a b
         | Fbri (c, a, i) -> Printf.sprintf "b%si r%d,%d,end" (Op.cond_to_string c) a i
         | Fjump -> "j end"
         | Fcall a -> Printf.sprintf "call(r%d,p)" a
         | Fnop -> "nop")
       prog)

(* Replay [prog] through one instantiation and return the emitted
   words.  The tiny capacity hint is deliberate: the buffer-growth path
   must produce the same code as a right-sized buffer. *)
let emit_with (module E : EMITTER) (prog : finsn list) : int array =
  let g, args = E.lambda ~base:0x10000 ~capacity:8 "%i%i%p" in
  let p = args.(2) in
  let slots = Array.init nslots (fun _ -> E.getreg_exn g ~cls:`Var Vtype.I) in
  let dslots = Array.init ndslots (fun _ -> E.getreg_exn g ~cls:`Temp Vtype.D) in
  let lend = E.genlabel g in
  E.unary g Op.Mov Vtype.I slots.(0) args.(0);
  E.unary g Op.Mov Vtype.I slots.(1) args.(1);
  List.iter
    (fun i ->
      match i with
      | Fbin (op, d, a, b) -> E.arith g op Vtype.I slots.(d) slots.(a) slots.(b)
      | Fbini (op, d, a, imm) -> E.arith_imm g op Vtype.I slots.(d) slots.(a) imm
      | Fun_ (op, d, a) -> E.unary g op Vtype.I slots.(d) slots.(a)
      | Fset (d, v) -> E.set g Vtype.I slots.(d) (Int64.of_int v)
      | Fsetd (d, v) -> E.setf g Vtype.D dslots.(d) v
      | Ffbin (op, d, a, b) -> E.arith g op Vtype.D dslots.(d) dslots.(a) dslots.(b)
      | Fcvt (d, a) -> E.cvt g ~from:Vtype.I ~to_:Vtype.D dslots.(d) slots.(a)
      | Fldi (d, o) -> E.load_imm g Vtype.I slots.(d) p o
      | Fsti (s, o) -> E.store_imm g Vtype.I slots.(s) p o
      | Fldr (d, x) -> E.load_reg g Vtype.I slots.(d) p slots.(x)
      | Fstr (s, x) -> E.store_reg g Vtype.I slots.(s) p slots.(x)
      | Fbr (c, a, b) -> E.branch g c Vtype.I slots.(a) slots.(b) lend
      | Fbri (c, a, imm) -> E.branch_imm g c Vtype.I slots.(a) imm lend
      | Fjump -> E.jump g (Gen.Jlabel lend)
      | Fcall a ->
        E.push_arg g Vtype.I slots.(a);
        E.push_arg g Vtype.P p;
        E.do_call g (Gen.Jaddr 0x4000);
        E.retval g Vtype.I slots.(0)
      | Fnop -> E.nop g)
    prog;
  E.label g lend;
  E.ret g Vtype.I (Some slots.(0));
  let code = E.end_gen g in
  Codebuf.to_array code.Vcode.gen.Gen.buf

(* ------------------------------------------------------------------ *)
(* Per-port instantiations                                             *)

module Mips_c = Vcode.Make (Vmips.Mips_backend)
module Mips_u = Vcode.Make_unchecked (Vmips.Mips_backend)
module Sparc_c = Vcode.Make (Vsparc.Sparc_backend)
module Sparc_u = Vcode.Make_unchecked (Vsparc.Sparc_backend)
module Alpha_c = Vcode.Make (Valpha.Alpha_backend)
module Alpha_u = Vcode.Make_unchecked (Valpha.Alpha_backend)
module Ppc_c = Vcode.Make (Vppc.Ppc_backend)
module Ppc_u = Vcode.Make_unchecked (Vppc.Ppc_backend)

(* the same ports wrapped with the peephole stage: the functor composes
   with both instantiations unchanged *)
module Mips_pc = Vcode.Make (Vcode.Make_peephole (Vmips.Mips_backend))
module Mips_pu = Vcode.Make_unchecked (Vcode.Make_peephole (Vmips.Mips_backend))
module Sparc_pc = Vcode.Make (Vcode.Make_peephole (Vsparc.Sparc_backend))
module Sparc_pu = Vcode.Make_unchecked (Vcode.Make_peephole (Vsparc.Sparc_backend))
module Alpha_pc = Vcode.Make (Vcode.Make_peephole (Valpha.Alpha_backend))
module Alpha_pu = Vcode.Make_unchecked (Vcode.Make_peephole (Valpha.Alpha_backend))
module Ppc_pc = Vcode.Make (Vcode.Make_peephole (Vppc.Ppc_backend))
module Ppc_pu = Vcode.Make_unchecked (Vcode.Make_peephole (Vppc.Ppc_backend))

let ports : (string * (module EMITTER) * (module EMITTER)) list =
  [
    ("mips", (module Mips_c), (module Mips_u));
    ("sparc", (module Sparc_c), (module Sparc_u));
    ("alpha", (module Alpha_c), (module Alpha_u));
    ("ppc", (module Ppc_c), (module Ppc_u));
    (* checked vs unchecked must also agree through the peephole stage *)
    ("mips-peep", (module Mips_pc), (module Mips_pu));
    ("sparc-peep", (module Sparc_pc), (module Sparc_pu));
    ("alpha-peep", (module Alpha_pc), (module Alpha_pu));
    ("ppc-peep", (module Ppc_pc), (module Ppc_pu));
  ]

let diff_tests =
  List.map
    (fun (name, checked, unchecked) ->
      QCheck.Test.make ~count:300 ~name
        (QCheck.make ~print:prog_print prog_gen)
        (fun prog -> emit_with checked prog = emit_with unchecked prog))
    ports

(* a fixed program hitting every family at least once, with exact
   word-level comparison so a regression names the first differing site *)
let sink_prog =
  [
    Fset (0, 7);
    Fset (1, -42);
    Fbin (Op.Add, 2, 0, 1);
    Fbini (Op.Xor, 3, 2, 0x12345);
    Fbini (Op.Lsh, 0, 0, 3);
    Fun_ (Op.Neg, 1, 2);
    Fsetd (0, 2.5);
    Fsetd (1, -0.125);
    Ffbin (Op.Mul, 0, 0, 1);
    Fcvt (1, 2);
    Fldi (2, 8);
    Fsti (3, 12);
    Fldr (1, 0);
    Fstr (2, 3);
    Fbr (Op.Lt, 0, 1);
    Fbri (Op.Ne, 2, 99);
    Fcall 3;
    Fnop;
    Fjump;
  ]

let test_sink_identical () =
  List.iter
    (fun (name, checked, unchecked) ->
      let a = emit_with checked sink_prog in
      let b = emit_with unchecked sink_prog in
      Alcotest.(check (array int)) (name ^ ": kitchen-sink program") a b)
    ports

(* ------------------------------------------------------------------ *)
(* Peephole-on/off architectural differential

   The peephole stage may change the emitted words (that is the point)
   but never the architectural effect: random programs with forward
   branches, constant arithmetic and memory traffic must produce the
   same final state through the raw port and the wrapped port on the
   port's simulator.  The generator leans into the rewrite surface:
   redundant moves, set-then-use pairs (fusion), mul/div/mod by small
   constants (strength reduction) and instructions directly before
   branches (delay-slot candidates), with labels bound mid-stream to
   pin the window-flush protocol. *)

type pinsn =
  | Pbin of Op.binop * int * int * int
  | Pbini of Op.binop * int * int * int
  | Pun of Op.unop * int * int
  | Pset of int * int
  | Pld of int * int (* slot <- [p + 4w] *)
  | Pst of int * int (* [p + 4w] <- slot *)
  | Pbr of Op.cond * int * int * int (* skip the next k instructions *)
  | Pbri of Op.cond * int * int * int
  | Pjmp of int (* unconditional skip over k *)

let pmem_words = 8

let pinsn_gen : pinsn QCheck.Gen.t =
  let open QCheck.Gen in
  let slot = int_bound (nslots - 1) in
  let skip = int_bound 3 in
  let cond = oneofl Op.[ Lt; Le; Gt; Ge; Eq; Ne ] in
  oneof
    [
      (let* op = oneofl Op.[ Add; Sub; Mul; And; Or; Xor ] and* d = slot and* a = slot
       and* b = slot in
       return (Pbin (op, d, a, b)));
      (let* op = oneofl Op.[ Add; Sub; And; Or; Xor ]
       and* d = slot and* a = slot
       and* i = oneof [ int_range (-100) 100; return 0x12345 ] in
       return (Pbini (op, d, a, i)));
      (* constant multiplies, divides and remainders: the strength
         reduction surface, including the identities and the 2^k +/- 1
         shift-add forms *)
      (let* d = slot and* a = slot
       and* k = oneofl [ -1; 0; 1; 2; 3; 4; 7; 8; 9; 15; 100; 4096 ] in
       return (Pbini (Op.Mul, d, a, k)));
      (let* d = slot and* a = slot and* k = oneofl [ 1; 2; 4; 7; 16; 100 ] in
       return (Pbini (Op.Div, d, a, k)));
      (let* d = slot and* a = slot and* k = oneofl [ 2; 8; 10; 32 ] in
       return (Pbini (Op.Mod, d, a, k)));
      (let* d = slot and* a = slot and* sh = int_bound 31 in
       return (Pbini (Op.Lsh, d, a, sh)));
      (let* d = slot and* a = slot and* sh = int_bound 31 in
       return (Pbini (Op.Rsh, d, a, sh)));
      (* moves, including guaranteed-redundant ones *)
      (let* op = oneofl Op.[ Com; Not; Mov; Neg ] and* d = slot and* a = slot in
       return (Pun (op, d, a)));
      (let* a = slot in
       return (Pun (Op.Mov, a, a)));
      (let* d = slot and* v = oneof [ int_range (-100) 100; return 0x12345 ] in
       return (Pset (d, v)));
      (let* d = slot and* w = int_bound (pmem_words - 1) in
       return (Pld (d, w)));
      (let* s = slot and* w = int_bound (pmem_words - 1) in
       return (Pst (s, w)));
      (let* c = cond and* a = slot and* b = slot and* k = skip in
       return (Pbr (c, a, b, k)));
      (let* c = cond and* a = slot and* i = int_range (-50) 50 and* k = skip in
       return (Pbri (c, a, i, k)));
      (let* k = skip in
       return (Pjmp k));
    ]

let pprog_gen = QCheck.Gen.(list_size (int_range 1 50) pinsn_gen)

let pprog_print prog =
  String.concat "; "
    (List.map
       (function
         | Pbin (op, d, a, b) ->
           Printf.sprintf "r%d=r%d %s r%d" d a (Op.binop_to_string op) b
         | Pbini (op, d, a, i) ->
           Printf.sprintf "r%d=r%d %s %d" d a (Op.binop_to_string op) i
         | Pun (op, d, a) -> Printf.sprintf "r%d=%s r%d" d (Op.unop_to_string op) a
         | Pset (d, v) -> Printf.sprintf "r%d=%d" d v
         | Pld (d, w) -> Printf.sprintf "r%d=m[%d]" d w
         | Pst (s, w) -> Printf.sprintf "m[%d]=r%d" w s
         | Pbr (c, a, b, k) ->
           Printf.sprintf "%s r%d,r%d,+%d" (Op.cond_to_string c) a b k
         | Pbri (c, a, i, k) ->
           Printf.sprintf "%si r%d,%d,+%d" (Op.cond_to_string c) a i k
         | Pjmp k -> Printf.sprintf "j +%d" k)
       prog)

(* Compile [prog] with the given instantiation.  Branches skip forward
   over the next [k] program instructions via labels bound mid-stream;
   the epilogue folds every slot and memory word into the return value
   so any architectural divergence is observable. *)
let emit_peep_prog (module E : EMITTER) (prog : pinsn list) ~base ~datap : Vcode.code =
  let insns = Array.of_list prog in
  let n = Array.length insns in
  (* forward-branch targets as program indices, then labels *)
  let target i k = min n (i + 1 + k) in
  let labs = Hashtbl.create 8 in
  let lab_for g ti =
    match Hashtbl.find_opt labs ti with
    | Some l -> l
    | None ->
      let l = E.genlabel g in
      Hashtbl.add labs ti l;
      l
  in
  let g, args = E.lambda ~base "%i%i" in
  let slots = Array.init nslots (fun _ -> E.getreg_exn g ~cls:`Var Vtype.I) in
  let p = E.getreg_exn g ~cls:`Var Vtype.P in
  E.set g Vtype.P p (Int64.of_int datap);
  E.unary g Op.Mov Vtype.I slots.(0) args.(0);
  E.unary g Op.Mov Vtype.I slots.(1) args.(1);
  E.set g Vtype.I slots.(2) 3L;
  E.set g Vtype.I slots.(3) (-7L);
  let tz = E.getreg_exn g ~cls:`Temp Vtype.I in
  E.set g Vtype.I tz 0L;
  for w = 0 to pmem_words - 1 do
    E.store_imm g Vtype.I tz p (4 * w)
  done;
  Array.iteri
    (fun i insn ->
      (match Hashtbl.find_opt labs i with Some l -> E.label g l | None -> ());
      match insn with
      | Pbin (op, d, a, b) -> E.arith g op Vtype.I slots.(d) slots.(a) slots.(b)
      | Pbini (op, d, a, imm) -> E.arith_imm g op Vtype.I slots.(d) slots.(a) imm
      | Pun (op, d, a) -> E.unary g op Vtype.I slots.(d) slots.(a)
      | Pset (d, v) -> E.set g Vtype.I slots.(d) (Int64.of_int v)
      | Pld (d, w) -> E.load_imm g Vtype.I slots.(d) p (4 * w)
      | Pst (s, w) -> E.store_imm g Vtype.I slots.(s) p (4 * w)
      | Pbr (c, a, b, k) -> E.branch g c Vtype.I slots.(a) slots.(b) (lab_for g (target i k))
      | Pbri (c, a, imm, k) -> E.branch_imm g c Vtype.I slots.(a) imm (lab_for g (target i k))
      | Pjmp k -> E.jump g (Gen.Jlabel (lab_for g (target i k))))
    insns;
  (match Hashtbl.find_opt labs n with Some l -> E.label g l | None -> ());
  (* fold the full architectural state into the result *)
  for s = 1 to nslots - 1 do
    E.arith g Op.Xor Vtype.I slots.(0) slots.(0) slots.(s)
  done;
  for w = 0 to pmem_words - 1 do
    E.load_imm g Vtype.I tz p (4 * w);
    E.arith g Op.Xor Vtype.I slots.(0) slots.(0) tz;
    E.arith_imm g Op.Mul Vtype.I slots.(0) slots.(0) 3
  done;
  E.ret g Vtype.I (Some slots.(0));
  E.end_gen g

module type SIMRUN = sig
  val exec : Vcode.code -> int -> int -> int
end

module Mips_simrun : SIMRUN = struct
  let exec (c : Vcode.code) a0 a1 =
    let m = Vmips.Mips_sim.create Vmachine.Mconfig.test_config in
    Vmachine.Mem.install_code m.Vmips.Mips_sim.mem ~addr:c.Vcode.base c.Vcode.gen.Gen.buf;
    Vmips.Mips_sim.call m ~entry:c.Vcode.entry_addr
      [ Vmips.Mips_sim.Int a0; Vmips.Mips_sim.Int a1 ];
    Vmips.Mips_sim.ret_int m
end

module Sparc_simrun : SIMRUN = struct
  let exec (c : Vcode.code) a0 a1 =
    let m = Vsparc.Sparc_sim.create Vmachine.Mconfig.test_config in
    Vmachine.Mem.install_code m.Vsparc.Sparc_sim.mem ~addr:c.Vcode.base c.Vcode.gen.Gen.buf;
    Vsparc.Sparc_sim.call m ~entry:c.Vcode.entry_addr
      [ Vsparc.Sparc_sim.Int a0; Vsparc.Sparc_sim.Int a1 ];
    Vsparc.Sparc_sim.ret_int m
end

module Alpha_simrun : SIMRUN = struct
  let exec (c : Vcode.code) a0 a1 =
    let m = Valpha.Alpha_sim.create Vmachine.Mconfig.test_config in
    Vmachine.Mem.install_code m.Valpha.Alpha_sim.mem ~addr:c.Vcode.base c.Vcode.gen.Gen.buf;
    Valpha.Alpha_sim.call m ~entry:c.Vcode.entry_addr
      [ Valpha.Alpha_sim.Int a0; Valpha.Alpha_sim.Int a1 ];
    Valpha.Alpha_sim.ret_int m
end

module Ppc_simrun : SIMRUN = struct
  let exec (c : Vcode.code) a0 a1 =
    let m = Vppc.Ppc_sim.create Vmachine.Mconfig.test_config in
    Vmachine.Mem.install_code m.Vppc.Ppc_sim.mem ~addr:c.Vcode.base c.Vcode.gen.Gen.buf;
    Vppc.Ppc_sim.call m ~entry:c.Vcode.entry_addr
      [ Vppc.Ppc_sim.Int a0; Vppc.Ppc_sim.Int a1 ];
    Vppc.Ppc_sim.ret_int m
end

let peep_ports : (string * (module EMITTER) * (module EMITTER) * (module SIMRUN)) list =
  [
    ("mips", (module Mips_c), (module Mips_pc), (module Mips_simrun));
    ("sparc", (module Sparc_c), (module Sparc_pc), (module Sparc_simrun));
    ("alpha", (module Alpha_c), (module Alpha_pc), (module Alpha_simrun));
    ("ppc", (module Ppc_c), (module Ppc_pc), (module Ppc_simrun));
  ]

let peep_base = 0x10000
let peep_datap = 0x20000

let peep_diff_tests =
  List.map
    (fun (name, raw, peep, (module S : SIMRUN)) ->
      QCheck.Test.make ~count:200 ~name:(name ^ "-peephole-equiv")
        QCheck.(
          make
            ~print:(fun (prog, a0, a1) ->
              Printf.sprintf "a0=%d a1=%d: %s" a0 a1 (pprog_print prog))
            Gen.(
              let* prog = pprog_gen
              and* a0 = int_range (-100) 100
              and* a1 = int_range (-100) 100 in
              return (prog, a0, a1)))
        (fun (prog, a0, a1) ->
          let c_raw = emit_peep_prog raw prog ~base:peep_base ~datap:peep_datap in
          let c_pp = emit_peep_prog peep prog ~base:peep_base ~datap:peep_datap in
          S.exec c_raw a0 a1 = S.exec c_pp a0 a1))
    peep_ports

(* ------------------------------------------------------------------ *)
(* Parallel-move resolution                                            *)

(* run the resolver against a model register file and compare with the
   parallel-assignment semantics *)
let run_moves ~scratch (moves : (int * int) list) =
  let nregs = 12 in
  let regs = Array.init nregs (fun i -> 100 + i) in
  let initial = Array.copy regs in
  let nmoves = ref 0 in
  Gen.parallel_moves
    ~emit_mov:(fun d s ->
      incr nmoves;
      regs.(d) <- regs.(s))
    ~scratch moves;
  List.iter
    (fun (d, s) ->
      Alcotest.(check int)
        (Printf.sprintf "r%d gets the old value of r%d" d s)
        initial.(s) regs.(d))
    moves;
  (* untouched registers (destinations and scratch aside) survive *)
  let written = scratch :: List.map fst moves in
  Array.iteri
    (fun i v ->
      if not (List.mem i written) then
        Alcotest.(check int) (Printf.sprintf "r%d untouched" i) initial.(i) v)
    regs;
  !nmoves

let test_moves_swap () =
  (* a 2-cycle must break through the scratch register: 3 moves *)
  let n = run_moves ~scratch:9 [ (0, 1); (1, 0) ] in
  Alcotest.(check int) "swap uses exactly 3 moves" 3 n

let test_moves_cycle3 () =
  let n = run_moves ~scratch:9 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check int) "3-cycle uses exactly 4 moves" 4 n

let test_moves_chain () =
  (* an acyclic chain needs no scratch: one move per element *)
  let n = run_moves ~scratch:9 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "chain uses exactly 3 moves" 3 n

let test_moves_self () =
  let n = run_moves ~scratch:9 [ (4, 4); (5, 5) ] in
  Alcotest.(check int) "self-moves are elided" 0 n

let test_moves_mixed () =
  (* a swap plus an independent chain hanging off one of its members *)
  let n = run_moves ~scratch:9 [ (0, 1); (1, 0); (5, 0); (6, 5) ] in
  Alcotest.(check bool) "mixed case resolves" true (n >= 5)

(* ------------------------------------------------------------------ *)
(* Steady-state allocation                                              *)

(* With a sufficient capacity hint, unchecked emission of ALU and
   memory instructions must allocate zero GC words per instruction:
   everything is stored into preallocated int arrays. *)
let test_zero_alloc_steady_state () =
  let g, args = Mips_u.lambda ~base:0x1000 ~leaf:true ~capacity:16384 "%i%i%p" in
  let r0 = args.(0) and r1 = args.(1) and p = args.(2) in
  let emit_block () =
    for _ = 1 to 1000 do
      Mips_u.arith_imm g Op.Add Vtype.I r0 r0 1;
      Mips_u.arith g Op.Add Vtype.I r1 r1 r0;
      Mips_u.load_imm g Vtype.I r1 p 0;
      Mips_u.store_imm g Vtype.I r0 p 4
    done
  in
  let measure f =
    let a = Gc.minor_words () in
    f ();
    Gc.minor_words () -. a
  in
  emit_block () (* warm-up: one-time paths out of the way *);
  (* the measurement itself boxes a float; calibrate it out *)
  let overhead = measure (fun () -> ()) in
  let d = measure emit_block in
  let per_insn = (d -. overhead) /. 4000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "unchecked steady state allocates 0 words/insn (got %.4f)" per_insn)
    true
    (per_insn <= 0.001)

let () =
  Alcotest.run "gen-fuzz"
    [
      ( "checked-vs-unchecked",
        List.map qtest diff_tests
        @ [ Alcotest.test_case "kitchen sink, all ports" `Quick test_sink_identical ] );
      ("peephole-on-vs-off", List.map qtest peep_diff_tests);
      ( "parallel-moves",
        [
          Alcotest.test_case "2-cycle swap" `Quick test_moves_swap;
          Alcotest.test_case "3-cycle" `Quick test_moves_cycle3;
          Alcotest.test_case "acyclic chain" `Quick test_moves_chain;
          Alcotest.test_case "self-moves" `Quick test_moves_self;
          Alcotest.test_case "swap plus chain" `Quick test_moves_mixed;
        ] );
      ( "allocation",
        [ Alcotest.test_case "unchecked steady state" `Quick test_zero_alloc_steady_state ] );
    ]
