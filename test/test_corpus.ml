(* Four-mode lockstep over the external .asm corpus.

   Every workloads/*.asm program is assembled once and then executed
   under all four engine modes (off / predecode / blocks / regions).
   The modes must agree bit-for-bit: same return value, same retired
   instruction count, same cycle count, and the same retired-PC trace
   stream with zero ring drops.  Three programs additionally carry an
   OCaml oracle mirroring their arithmetic, pinning the architectural
   result itself and not just cross-mode consistency. *)

module W = Workloads
module P = W.Mips_port
module Trace = Vmachine.Trace
module A = Vmips.Mips_asm

(* per-program iteration counts, sized so the busiest program stays
   well inside the 2^18-record trace ring *)
let iters_for = function
  | "fib" -> 15
  | "josephus" -> 48
  | "sort" -> 64
  | _ -> 128

type outcome = {
  ret : int;
  insns : int;
  cycles : int;
  pcs : int array;
}

let mode_flags mode = List.assoc mode W.modes

let assemble_corpus path =
  match Vasm.assemble_file path with
  | Ok img -> img
  | Error d -> Alcotest.failf "%s: %s" path (Vasm.diag_to_string d)

let run_mode img ~mode ~iters =
  let predecode, blocks, regions = mode_flags mode in
  let trace = Trace.create ~capacity_pow2:18 () in
  let m = P.create ~trace ~predecode ~blocks ~regions () in
  W.load_asm_image (P.mem m) img;
  let ret = P.call_ints m ~entry:img.Vasm.entry [ iters ] in
  if Trace.dropped trace <> 0 then
    Alcotest.failf "mode %s: trace ring dropped %d records; raise capacity" mode
      (Trace.dropped trace);
  { ret; insns = P.insns m; cycles = P.cycles m; pcs = Trace.retired_pcs trace }

let check_lockstep name (reference : outcome) mode (got : outcome) =
  let ck what = Alcotest.(check int) (Printf.sprintf "%s: %s (off vs %s)" name what mode) in
  ck "return value" reference.ret got.ret;
  ck "retired insns" reference.insns got.insns;
  ck "cycles" reference.cycles got.cycles;
  ck "trace length" (Array.length reference.pcs) (Array.length got.pcs);
  match Trace.first_divergence reference.pcs got.pcs with
  | None -> ()
  | Some d ->
    Alcotest.failf "%s: retired streams diverge at index %d (off pc 0x%x, %s pc 0x%x)" name
      d.Trace.ordinal d.Trace.a_pc mode d.Trace.b_pc

let test_program (name, path) () =
  let img = assemble_corpus path in
  let iters = iters_for name in
  let reference = run_mode img ~mode:"off" ~iters in
  if reference.insns <= 0 then Alcotest.failf "%s: retired no instructions" name;
  if Array.length reference.pcs <> reference.insns then
    Alcotest.failf "%s: trace retained %d pcs for %d retired insns" name
      (Array.length reference.pcs) reference.insns;
  List.iter
    (fun (mode, _) ->
      if mode <> "off" then check_lockstep name reference mode (run_mode img ~mode ~iters))
    W.modes

(* ---- architectural oracles for three programs ---- *)

let u32 x = x land 0xFFFFFFFF

let josephus_oracle n_max =
  let v = ref 0 in
  for n = 1 to n_max do
    let f = ref 0 in
    for i = 2 to n do
      f := (!f + 3) mod i
    done;
    v := u32 ((!v lxor !f) + (!f lsl 1))
  done;
  !v

let fib_oracle n =
  let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
  fib (min n 20)

let sort_oracle n =
  let n = min n 256 in
  let a = Array.make n 0 in
  let s = ref 12345 in
  for i = 0 to n - 1 do
    s := u32 ((!s * 1103515245) + 12345);
    a.(i) <- !s land 0xFFFF
  done;
  Array.sort compare a;
  let v = ref 0 in
  for i = 0 to n - 1 do
    v := u32 ((!v lxor a.(i)) + i)
  done;
  !v

let run_off name iters =
  let path =
    match W.corpus_path name with
    | Some p -> p
    | None -> Alcotest.failf "corpus program %s not found" name
  in
  (run_mode (assemble_corpus path) ~mode:"off" ~iters).ret

let test_oracles () =
  Alcotest.(check int) "josephus" (josephus_oracle 48) (u32 (run_off "josephus" 48));
  Alcotest.(check int) "fib" (fib_oracle 15) (u32 (run_off "fib" 15));
  Alcotest.(check int) "sort" (sort_oracle 64) (u32 (run_off "sort" 64))

(* ---- harness plumbing: the asm: workload name path ---- *)

let test_harness_prepare () =
  let m = P.create ~predecode:true ~blocks:true ~regions:true () in
  let prepared = P.prepare m ~workload:"asm:josephus" ~iters:48 in
  prepared.W.run ();
  let first = P.insns m in
  if first <= 0 then Alcotest.fail "asm:josephus retired no instructions via prepare";
  prepared.W.run ();
  Alcotest.(check int) "run closure is re-runnable" (2 * first) (P.insns m)

let test_corpus_enumeration () =
  let programs = W.corpus_programs () in
  if List.length programs < 5 then
    Alcotest.failf "expected at least 5 corpus programs, found %d" (List.length programs);
  List.iter
    (fun want ->
      if not (List.mem_assoc want programs) then Alcotest.failf "missing corpus program %s" want)
    [ "josephus"; "sort"; "strsearch"; "checksum"; "statemach"; "fib" ]

let () =
  let programs = W.corpus_programs () in
  Alcotest.run "corpus"
    [
      ( "corpus",
        [
          Alcotest.test_case "enumeration" `Quick test_corpus_enumeration;
          Alcotest.test_case "oracles" `Quick test_oracles;
          Alcotest.test_case "harness prepare asm:" `Quick test_harness_prepare;
        ] );
      ( "lockstep",
        List.map
          (fun ((name, _) as p) -> Alcotest.test_case name `Quick (test_program p))
          programs );
    ]
