(* Telemetry zero-overhead pin.

   The observability layer must never perturb the simulation it
   observes.  Two properties pin that down:

   - *bit identity*: simulated cycle counts, retired-instruction
     counts and icache/dcache hit/miss statistics are identical
     between a simulator built with the default (disabled) sink and
     one built with a live sink — on every port, in every engine
     mode, on the mixed-ALU loop and on the paper's Table 3 (DPF) and
     Table 4 (ASH) workloads.  The generated code run under each sink
     is also compared word for word (codegen never sees the sink;
     [Telemetry.note_gen] harvests post hoc).

   - *no steady-state allocation*: running more simulated
     instructions allocates no additional minor-heap words per
     instruction, with the sink disabled or live — the
     instrumentation is plain int-array stores.  Checked on the MIPS
     port (int register file; the 64-bit ports' Int64 registers box
     independently of telemetry).

   The latency timers (PR 10) raise the stakes on both: the simulators
   now bracket every run/compile/promote with
   [Telemetry.timer_start]/[timer_stop], so the bit-identity matrix
   below re-pins that the stopwatches never touch simulated state, and
   a dedicated case pins the disabled path of the timers and of
   [Timeline.tick] to *exactly* zero minor words — timer_start gates
   on the sink before reading the clock (the clock read would box a
   float), and a disabled timeline's tick is one increment plus a
   never-true compare. *)

open Vcodebase
module Tel = Vmachine.Telemetry

let check = Alcotest.check

(* cycles, insns, icache (hits, misses), dcache (hits, misses) *)
let quad = Alcotest.(pair int (pair int (pair (pair int int) (pair int int))))

(* each run reports its timing quad plus the words of the code it ran *)
type outcome = { stats : int * (int * ((int * int) * (int * int))); code : int array }

let pkt_addr = 0x80000
let src_addr = 0x300000
let dst_addr = 0x312000
let ash_words = 512

module type PORT = sig
  val name : string
  val run_loop : Tel.t option -> predecode:bool -> blocks:bool -> outcome
  val run_table3 : Tel.t option -> predecode:bool -> blocks:bool -> outcome
  val run_table4 : Tel.t option -> predecode:bool -> blocks:bool -> outcome
end

module Make_port
    (T : Target.S)
    (S : sig
      type t

      val create : Tel.t option -> predecode:bool -> blocks:bool -> t
      val mem : t -> Vmachine.Mem.t
      val call_ints : t -> entry:int -> int list -> int
      val stats : t -> int * (int * ((int * int) * (int * int)))
    end) : PORT = struct
  module V = Vcode.Make (T)
  module DP = Dpf.Make (T)
  module ASH = Ash.Make (T)

  let name = T.desc.Machdesc.name

  let install m (c : Vcode.code) =
    Vmachine.Mem.install_code (S.mem m) ~addr:c.Vcode.base c.Vcode.gen.Gen.buf

  (* same mixed-ALU fixture as the decode/block-cache tests *)
  let gen_loop () =
    let g, args = V.lambda ~base:0x10000 ~leaf:true "%i" in
    let open V.Names in
    let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
    let i = V.getreg_exn g ~cls:`Temp Vtype.I in
    seti g acc 0;
    seti g i 0;
    let top = V.genlabel g and out = V.genlabel g in
    V.label g top;
    bgei g i args.(0) out;
    addi g acc acc i;
    orii g acc acc 3;
    addii g i i 1;
    jv g top;
    V.label g out;
    reti g acc;
    V.end_gen g

  let run_loop tel ~predecode ~blocks =
    let m = S.create tel ~predecode ~blocks in
    let c = gen_loop () in
    install m c;
    let r1 = S.call_ints m ~entry:c.Vcode.entry_addr [ 500 ] in
    let r2 = S.call_ints m ~entry:c.Vcode.entry_addr [ 500 ] in
    check Alcotest.int (name ^ ": loop rerun agrees") r1 r2;
    { stats = S.stats m; code = Codebuf.to_array c.Vcode.gen.Gen.buf }

  let run_table3 tel ~predecode ~blocks =
    let c = DP.compile ~base:0x1000 ~table_base:0x200000 (Dpf.Filter.tcpip_filters 10) in
    let m = S.create tel ~predecode ~blocks in
    install m c.Dpf.code;
    DP.install_tables (S.mem m) c;
    for k = 0 to 119 do
      let port = 1000 + (k mod 10) in
      Dpf.Packet.install (S.mem m) ~addr:pkt_addr (Dpf.Packet.tcp ~dst_port:port ());
      check Alcotest.int (name ^ ": classified") (port - 1000)
        (S.call_ints m ~entry:c.Dpf.entry [ pkt_addr; 40 ])
    done;
    { stats = S.stats m; code = Codebuf.to_array c.Dpf.code.Vcode.gen.Gen.buf }

  let run_table4 tel ~predecode ~blocks =
    let ash = ASH.gen_ash ~base:0x8000 [ Ash.Copy; Ash.Checksum ] in
    let m = S.create tel ~predecode ~blocks in
    install m ash;
    let data = Bytes.init (4 * ash_words) (fun i -> Char.chr ((i * 131) land 0xff)) in
    Vmachine.Mem.blit_bytes (S.mem m) ~addr:src_addr data;
    let r1 = S.call_ints m ~entry:ash.Vcode.entry_addr [ dst_addr; src_addr; ash_words ] in
    let r2 = S.call_ints m ~entry:ash.Vcode.entry_addr [ dst_addr; src_addr; ash_words ] in
    check Alcotest.int (name ^ ": ash rerun agrees") r1 r2;
    { stats = S.stats m; code = Codebuf.to_array ash.Vcode.gen.Gen.buf }
end

module Mips_port =
  Make_port
    (Vmips.Mips_backend)
    (struct
      module S = Vmips.Mips_sim

      type t = S.t

      let create tel ~predecode ~blocks =
        match tel with
        | None -> S.create ~predecode ~blocks Vmachine.Mconfig.dec5000
        | Some telemetry -> S.create ~predecode ~blocks ~telemetry Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let stats (m : t) =
        ( m.S.cycles,
          (m.S.insns, (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache)) )
    end)

module Sparc_port =
  Make_port
    (Vsparc.Sparc_backend)
    (struct
      module S = Vsparc.Sparc_sim

      type t = S.t

      let create tel ~predecode ~blocks =
        match tel with
        | None -> S.create ~predecode ~blocks Vmachine.Mconfig.dec5000
        | Some telemetry -> S.create ~predecode ~blocks ~telemetry Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let stats (m : t) =
        ( m.S.cycles,
          (m.S.insns, (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache)) )
    end)

module Alpha_port =
  Make_port
    (Valpha.Alpha_backend)
    (struct
      module S = Valpha.Alpha_sim

      type t = S.t

      let create tel ~predecode ~blocks =
        match tel with
        | None -> S.create ~predecode ~blocks Vmachine.Mconfig.dec5000
        | Some telemetry -> S.create ~predecode ~blocks ~telemetry Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let stats (m : t) =
        ( m.S.cycles,
          (m.S.insns, (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache)) )
    end)

module Ppc_port =
  Make_port
    (Vppc.Ppc_backend)
    (struct
      module S = Vppc.Ppc_sim

      type t = S.t

      let create tel ~predecode ~blocks =
        match tel with
        | None -> S.create ~predecode ~blocks Vmachine.Mconfig.dec5000
        | Some telemetry -> S.create ~predecode ~blocks ~telemetry Vmachine.Mconfig.dec5000

      let mem (m : t) = m.S.mem

      let call_ints m ~entry vals =
        S.call m ~entry (List.map (fun v -> S.Int v) vals);
        S.ret_int m

      let stats (m : t) =
        ( m.S.cycles,
          (m.S.insns, (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache)) )
    end)

let modes = [ ("off", (false, false)); ("predecode", (true, false)); ("blocks", (true, true)) ]

(* ------------------------------------------------------------------ *)
(* Bit identity: the full workload × port × mode matrix                *)

let identity_case (module P : PORT)
    (wname, (run : Tel.t option -> predecode:bool -> blocks:bool -> outcome)) () =
  List.iter
    (fun (label, (predecode, blocks)) ->
      let off = run None ~predecode ~blocks in
      let live = run (Some (Tel.create ())) ~predecode ~blocks in
      let here = Printf.sprintf "%s/%s/%s: " P.name wname label in
      check quad (here ^ "cycles/insns/cache stats bit-identical") off.stats live.stats;
      check
        Alcotest.(array int)
        (here ^ "generated code words identical") off.code live.code)
    modes

let workloads (module P : PORT) =
  [ ("alu-loop", P.run_loop); ("table3-dpf", P.run_table3); ("table4-ash", P.run_table4) ]

let identity_tests (module P : PORT) =
  List.map
    (fun w ->
      let wname, _ = w in
      Alcotest.test_case (Printf.sprintf "%s %s" P.name wname) `Quick
        (identity_case (module P) w))
    (workloads (module P))

(* ------------------------------------------------------------------ *)
(* Steady-state allocation: zero minor-heap words per simulated
   instruction, whichever sink is installed                            *)

let allocation_case tel () =
  let module S = Vmips.Mips_sim in
  let m =
    match tel with
    | None -> S.create Vmachine.Mconfig.test_config
    | Some telemetry -> S.create ~telemetry Vmachine.Mconfig.test_config
  in
  let code =
    let module V = Vcode.Make (Vmips.Mips_backend) in
    let g, args = V.lambda ~base:0x10000 ~leaf:true "%i" in
    let open V.Names in
    let acc = V.getreg_exn g ~cls:`Temp Vtype.I in
    let i = V.getreg_exn g ~cls:`Temp Vtype.I in
    seti g acc 0;
    seti g i 0;
    let top = V.genlabel g and out = V.genlabel g in
    V.label g top;
    bgei g i args.(0) out;
    addi g acc acc i;
    orii g acc acc 3;
    addii g i i 1;
    jv g top;
    V.label g out;
    reti g acc;
    V.end_gen g
  in
  Vmachine.Mem.install_code m.S.mem ~addr:code.Vcode.base code.Vcode.gen.Gen.buf;
  let entry = code.Vcode.entry_addr in
  (* warm up: block compilation, closure allocation, cache fills *)
  S.call m ~entry [ S.Int 2000 ];
  S.call m ~entry [ S.Int 2000 ];
  let insns0 = m.S.insns in
  let w0 = Gc.minor_words () in
  for _ = 1 to 20 do
    S.call m ~entry [ S.Int 2000 ]
  done;
  let allocated = Gc.minor_words () -. w0 in
  let retired = m.S.insns - insns0 in
  check Alcotest.bool "ran a meaningful number of instructions" true (retired > 100_000);
  let per_insn = allocated /. float_of_int retired in
  if per_insn >= 0.01 then
    Alcotest.failf "allocates %.4f minor words per simulated instruction (%.0f for %d)"
      per_insn allocated retired

(* the disabled stopwatch/timeline fast path: exactly zero minor words
   across 100k timer brackets and timeline ticks — not just "small per
   iteration", literally none *)
let disabled_timer_alloc_case () =
  let tel = Tel.disabled in
  let d = Tel.dist tel "probe.loop_ns" in
  let tl = Vmachine.Timeline.disabled in
  let sink = ref 0 in
  let w0 = Gc.minor_words () in
  for _ = 1 to 100_000 do
    let t0 = Tel.timer_start tel in
    Tel.timer_stop tel d t0;
    Vmachine.Timeline.tick tl;
    sink := !sink + t0
  done;
  let allocated = Gc.minor_words () -. w0 in
  check Alcotest.int "disabled timer_start returns 0" 0 !sink;
  check Alcotest.int "disabled timeline records nothing" 0
    (Vmachine.Timeline.samples_seen tl);
  if allocated <> 0.0 then
    Alcotest.failf "disabled timers/timeline allocated %.0f minor words in 100k iterations"
      allocated

(* a live timer must feed the dist it brackets *)
let live_timer_case () =
  let tel = Tel.create () in
  let d = Tel.dist tel "probe.live_ns" in
  for _ = 1 to 50 do
    let t0 = Tel.timer_start tel in
    Tel.timer_stop tel d t0
  done;
  let st = Tel.dist_stats tel d in
  check Alcotest.int "live timer observed every bracket" 50 st.Tel.count;
  check Alcotest.bool "durations are non-negative" true (st.Tel.min >= 0)

let () =
  Alcotest.run "telemetry-overhead"
    [
      ("bit-identity (mips)", identity_tests (module Mips_port));
      ("bit-identity (sparc)", identity_tests (module Sparc_port));
      ("bit-identity (alpha)", identity_tests (module Alpha_port));
      ("bit-identity (ppc)", identity_tests (module Ppc_port));
      ( "steady-state allocation",
        [
          Alcotest.test_case "disabled sink" `Quick (allocation_case None);
          Alcotest.test_case "live sink" `Quick
            (allocation_case (Some (Tel.create ())));
          Alcotest.test_case "disabled timers and timeline" `Quick
            disabled_timer_alloc_case;
          Alcotest.test_case "live timer feeds its dist" `Quick live_timer_case;
        ] );
    ]
