(* Self-modifying-code fuzz over the superblock and region
   translation layers.

   On every port: a hand-assembled loop executes a long patchable
   straight-line run (longer than Block_cache.max_insns, so it spans
   several compiled blocks, which regions then fuse).  The loop body
   also *stores into its own code*: it reloads one patchable word and
   writes it straight back — architecturally a no-op, but the write
   watcher fires with the translation mid-flight, so on the blocks
   machine every iteration aborts a compiled block via dirty/Retired,
   and on the regions machine the store lands mid-region: the resident
   region is invalidated under its own executing pass and the abort
   fixup has to recover the exact interpreter state.  Each round the
   host additionally rewrites a few of the patchable code words —
   biased toward the block-boundary indices — with random instructions
   from a per-port pool of pure ALU ops on the accumulator, then calls
   the function on blocks-off, blocks-on and regions-on machines in
   lockstep.  The return value (the accumulator, a checksum of the
   whole ALU history, i.e. of every executed instruction) and the full
   statistics bundle (cycles, retired instructions, icache and dcache
   hits/misses) must match exactly: any stale block or region,
   miscounted cycle, or skipped icache probe after an invalidation
   shows up as a divergence.  Seeded PRNG, so failures replay. *)

let check = Alcotest.check

let rounds = 200

(* patchable slots per program: > max_insns so the run spans several
   compiled blocks and patches land on both sides of the seams *)
let n_patch = (3 * Vmachine.Block_cache.max_insns / 2) + 2

(* ret + (cycles, insns, icache, dcache) *)
let result =
  Alcotest.(pair int (pair int (pair int (pair (pair int int) (pair int int)))))

(* slot choice: half uniform, half pinned to the seams (the first and
   last slots, and the indices straddling each max_insns multiple) *)
let boundary_slots =
  let b = Vmachine.Block_cache.max_insns in
  [ 0; 1; n_patch - 2; n_patch - 1; b - 2; b - 1; b; b + 1 ]

let pick_slot rs =
  if Random.State.bool rs then
    List.nth boundary_slots (Random.State.int rs (List.length boundary_slots))
  else Random.State.int rs n_patch

(* the patchable slot the guest program itself stores into each
   iteration: a block seam, so the store lands mid-run — and once the
   trace is hot, mid-region *)
let smc_slot = Vmachine.Block_cache.max_insns

(* Per-port harness: calling [call n] runs the program with loop count
   [n] from a reset-stats state; [patch i w] rewrites patchable slot
   [i] with encoded word [w] (a host write, so it rides the write-
   watcher invalidation path); [invalidations ()] reads the block
   cache's drop counter and [rstats ()] the region cache's cumulative
   (promotions, invalidations). *)
type harness = {
  call : int -> int * (int * (int * ((int * int) * (int * int))));
  patch : int -> int -> unit;
  invalidations : unit -> int;
  rstats : unit -> int * int;
}

let drive name (mk : blocks:bool -> regions:bool -> harness) (pool : Random.State.t -> int) =
  let off = mk ~blocks:false ~regions:false in
  let blk = mk ~blocks:true ~regions:false in
  let reg = mk ~blocks:true ~regions:true in
  let rs = Random.State.make [| 0x5eed; Hashtbl.hash name |] in
  for round = 1 to rounds do
    let npatches = 1 + Random.State.int rs 3 in
    for _ = 1 to npatches do
      let s = pick_slot rs and w = pool rs in
      off.patch s w;
      blk.patch s w;
      reg.patch s w
    done;
    let n = 3 + Random.State.int rs 20 in
    let expect = off.call n in
    check result
      (Printf.sprintf "%s: round %d (n=%d) blocks matches off" name round n)
      expect (blk.call n);
    check result
      (Printf.sprintf "%s: round %d (n=%d) regions matches off" name round n)
      expect (reg.call n)
  done;
  check Alcotest.bool (name ^ ": patches actually dropped compiled blocks") true
    (blk.invalidations () > 0);
  let promotions, region_invals = reg.rstats () in
  check Alcotest.bool (name ^ ": hot traces actually promoted to regions") true
    (promotions > 0);
  check Alcotest.bool (name ^ ": stores actually dropped live regions") true
    (region_invals > 0)

(* ------------------------------------------------------------------ *)
(* MIPS                                                                *)

let test_mips () =
  let module S = Vmips.Mips_sim in
  let module A = Vmips.Mips_asm in
  let base = 0x1000 in
  let p = n_patch in
  (* v0 (r2) = acc, a0 (r4) = loop count, t0/t1 (r8/r9) = self-store
     scratch *)
  let smc_addr = base + (4 * (6 + smc_slot)) in
  let out_idx = 6 + p + 3 in
  let program =
    [ A.Addiu (2, 0, 0); (* 0: acc <- 0           *)
      A.Blez (4, out_idx - 2); (* 1: loop: n <= 0 -> out *)
      A.Nop; (* 2: delay              *)
      A.Addiu (8, 0, smc_addr); (* 3: t0 <- &slot        *)
      A.Lw (9, 8, 0); (* 4: t1 <- [t0]         *)
      A.Sw (9, 8, 0) (* 5: [t0] <- t1 (SMC!)  *) ]
    @ List.init p (fun _ -> A.Addiu (2, 2, 1)) (* 6..p+5: patchable *)
    @ [ A.Addiu (4, 4, -1); (* p+6: n <- n - 1   *)
        A.J ((base / 4) + 1); (* p+7: -> loop      *)
        A.Nop; (* p+8: delay        *)
        A.Jr 31; (* p+9 = out         *)
        A.Nop (* p+10: delay       *) ]
  in
  let pool rs =
    let k = 1 + Random.State.int rs 100 and sh = 1 + Random.State.int rs 7 in
    A.encode
      (match Random.State.int rs 8 with
      | 0 -> A.Addiu (2, 2, k)
      | 1 -> A.Ori (2, 2, k)
      | 2 -> A.Xori (2, 2, k)
      | 3 -> A.Andi (2, 2, k lor 0xF0)
      | 4 -> A.Addu (2, 2, 2)
      | 5 -> A.Sll (2, 2, sh)
      | 6 -> A.Srl (2, 2, sh)
      | _ -> A.Nop)
  in
  let mk ~blocks ~regions =
    let m = S.create ~blocks ~regions Vmachine.Mconfig.test_config in
    List.iteri
      (fun i insn -> Vmachine.Mem.write_u32 m.S.mem (base + (4 * i)) (A.encode insn))
      program;
    {
      call =
        (fun n ->
          S.reset_stats m;
          S.call m ~entry:base [ S.Int n ];
          ( S.ret_int m,
            ( m.S.cycles,
              ( m.S.insns,
                (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache) ) ) ));
      patch = (fun i w -> Vmachine.Mem.write_u32 m.S.mem (base + (4 * (6 + i))) w);
      invalidations = (fun () -> snd (Vmachine.Block_cache.stats m.S.bc));
      rstats = (fun () -> Vmachine.Region_cache.stats m.S.rc);
    }
  in
  drive "mips" mk pool

(* ------------------------------------------------------------------ *)
(* SPARC                                                               *)

let test_sparc () =
  let module S = Vsparc.Sparc_sim in
  let module A = Vsparc.Sparc_asm in
  let base = 0x1000 in
  let p = n_patch in
  (* %g1 (r1) = acc, %o0 (r8) = loop count and return value, %g2/%g3
     (r2/r3) = self-store scratch; leaf routine, no register window *)
  let smc_addr = base + (4 * (8 + smc_slot)) in
  let out_idx = 8 + p + 3 in
  let program =
    [ A.Alu (A.Or, 1, 0, A.Imm 0); (* 0: acc <- 0              *)
      A.Alu (A.Subcc, 0, 8, A.Imm 0); (* 1: loop: icc <- n cmp 0  *)
      A.Bicc (A.BLE, out_idx - 2); (* 2: n <= 0 -> out         *)
      A.Nop; (* 3: delay                 *)
      A.Sethi (2, smc_addr lsr 10); (* 4: %g2 <- hi(&slot)      *)
      A.Alu (A.Or, 2, 2, A.Imm (smc_addr land 0x3FF)); (* 5: .. lo *)
      A.Ld (3, 2, A.Imm 0); (* 6: %g3 <- [%g2]          *)
      A.St (3, 2, A.Imm 0) (* 7: [%g2] <- %g3 (SMC!)   *) ]
    @ List.init p (fun _ -> A.Alu (A.Add, 1, 1, A.Imm 1)) (* 8..p+7: patchable *)
    @ [ A.Alu (A.Sub, 8, 8, A.Imm 1); (* p+8: n <- n - 1     *)
        A.Bicc (A.BA, 1 - (8 + p + 1)); (* p+9: -> loop        *)
        A.Nop; (* p+10: delay         *)
        A.Jmpl (0, 15, A.Imm 8); (* p+11 = out: ret     *)
        A.Alu (A.Add, 8, 1, A.Imm 0) (* p+12: delay: %o0 <- acc *) ]
  in
  let pool rs =
    let k = 1 + Random.State.int rs 100 and sh = 1 + Random.State.int rs 7 in
    A.encode
      (match Random.State.int rs 8 with
      | 0 -> A.Alu (A.Add, 1, 1, A.Imm k)
      | 1 -> A.Alu (A.Or, 1, 1, A.Imm k)
      | 2 -> A.Alu (A.Xor, 1, 1, A.Imm k)
      | 3 -> A.Alu (A.And, 1, 1, A.Imm (k lor 0xF0))
      | 4 -> A.Alu (A.Sll, 1, 1, A.Imm sh)
      | 5 -> A.Alu (A.Srl, 1, 1, A.Imm sh)
      | 6 -> A.Sethi (1, k)
      | _ -> A.Nop)
  in
  let mk ~blocks ~regions =
    let m = S.create ~blocks ~regions Vmachine.Mconfig.test_config in
    List.iteri
      (fun i insn -> Vmachine.Mem.write_u32 m.S.mem (base + (4 * i)) (A.encode insn))
      program;
    {
      call =
        (fun n ->
          S.reset_stats m;
          S.call m ~entry:base [ S.Int n ];
          ( S.ret_int m,
            ( m.S.cycles,
              ( m.S.insns,
                (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache) ) ) ));
      patch = (fun i w -> Vmachine.Mem.write_u32 m.S.mem (base + (4 * (8 + i))) w);
      invalidations = (fun () -> snd (Vmachine.Block_cache.stats m.S.bc));
      rstats = (fun () -> Vmachine.Region_cache.stats m.S.rc);
    }
  in
  drive "sparc" mk pool

(* ------------------------------------------------------------------ *)
(* Alpha                                                               *)

let test_alpha () =
  let module S = Valpha.Alpha_sim in
  let module A = Valpha.Alpha_asm in
  let base = 0x1000 in
  let p = n_patch in
  (* r0 = acc and return value, r16 = loop count, r1 = self-store
     scratch (r31 reads as zero, so the 16-bit displacement alone
     addresses the slot) *)
  let smc_addr = base + (4 * (4 + smc_slot)) in
  let out_idx = 4 + p + 2 in
  let program =
    [ A.Intop (A.Bis, 31, A.L 0, 0); (* 0: acc <- 0            *)
      A.Ble (16, out_idx - 2); (* 1: loop: n <= 0 -> out *)
      A.Ldl (1, 31, smc_addr); (* 2: r1 <- [slot]        *)
      A.Stl (1, 31, smc_addr) (* 3: [slot] <- r1 (SMC!) *) ]
    @ List.init p (fun _ -> A.Intop (A.Addq, 0, A.L 1, 0)) (* 4..p+3: patchable *)
    @ [ A.Intop (A.Subq, 16, A.L 1, 16); (* p+4: n <- n - 1 *)
        A.Br (31, 1 - (p + 6)); (* p+5: -> loop    *)
        A.Retj (31, 26) (* p+6 = out: ret  *) ]
  in
  let pool rs =
    let k = 1 + Random.State.int rs 100 and sh = 1 + Random.State.int rs 7 in
    A.encode
      (match Random.State.int rs 8 with
      | 0 -> A.Intop (A.Addq, 0, A.L k, 0)
      | 1 -> A.Intop (A.Bis, 0, A.L k, 0)
      | 2 -> A.Intop (A.Xor, 0, A.L k, 0)
      | 3 -> A.Intop (A.And, 0, A.L (k lor 0xF0), 0)
      | 4 -> A.Intop (A.Sll, 0, A.L sh, 0)
      | 5 -> A.Intop (A.Srl, 0, A.L sh, 0)
      | 6 -> A.Intop (A.Addl, 0, A.L k, 0)
      | _ -> A.Intop (A.Bis, 31, A.R 31, 31) (* canonical nop *))
  in
  let mk ~blocks ~regions =
    let m = S.create ~blocks ~regions Vmachine.Mconfig.test_config in
    List.iteri
      (fun i insn -> Vmachine.Mem.write_u32 m.S.mem (base + (4 * i)) (A.encode insn))
      program;
    {
      call =
        (fun n ->
          S.reset_stats m;
          S.call m ~entry:base [ S.Int n ];
          ( S.ret_int m land 0xFFFFFFFF,
            ( m.S.cycles,
              ( m.S.insns,
                (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache) ) ) ));
      patch = (fun i w -> Vmachine.Mem.write_u32 m.S.mem (base + (4 * (4 + i))) w);
      invalidations = (fun () -> snd (Vmachine.Block_cache.stats m.S.bc));
      rstats = (fun () -> Vmachine.Region_cache.stats m.S.rc);
    }
  in
  drive "alpha" mk pool

(* ------------------------------------------------------------------ *)
(* PowerPC                                                             *)

let test_ppc () =
  let module S = Vppc.Ppc_sim in
  let module A = Vppc.Ppc_asm in
  let base = 0x1000 in
  let p = n_patch in
  (* r4 = acc, r3 = loop count and return value, r5/r6 = self-store
     scratch *)
  let smc_addr = base + (4 * (6 + smc_slot)) in
  let out_idx = 6 + p + 2 in
  let program =
    [ A.Addi (4, 0, 0); (* 0: acc <- 0            *)
      A.Cmpi (3, 0); (* 1: loop: cr0 <- n cmp 0 *)
      A.Bc (4, 1, out_idx - 2); (* 2: not gt -> out       *)
      A.Addi (5, 0, smc_addr); (* 3: r5 <- &slot         *)
      A.Lwz (6, 5, 0); (* 4: r6 <- [r5]          *)
      A.Stw (6, 5, 0) (* 5: [r5] <- r6 (SMC!)   *) ]
    @ List.init p (fun _ -> A.Addi (4, 4, 1)) (* 6..p+5: patchable *)
    @ [ A.Addi (3, 3, -1); (* p+6: n <- n - 1  *)
        A.B (1 - (6 + p + 1)); (* p+7: -> loop     *)
        A.Or (3, 4, 4); (* p+8 = out: r3 <- acc *)
        A.Blr (* p+9: ret          *) ]
  in
  let pool rs =
    let k = 1 + Random.State.int rs 100 and sh = 1 + Random.State.int rs 7 in
    A.encode
      (match Random.State.int rs 8 with
      | 0 -> A.Addi (4, 4, k)
      | 1 -> A.Ori (4, 4, k)
      | 2 -> A.Xori (4, 4, k)
      | 3 -> A.Add (4, 4, 4)
      | 4 -> A.Srawi (4, 4, sh)
      | 5 -> A.Neg (4, 4)
      | 6 -> A.Rlwinm (4, 4, sh, 0, 31)
      | _ -> A.Ori (4, 4, 0) (* canonical nop *))
  in
  let mk ~blocks ~regions =
    let m = S.create ~blocks ~regions Vmachine.Mconfig.test_config in
    List.iteri
      (fun i insn -> Vmachine.Mem.write_u32 m.S.mem (base + (4 * i)) (A.encode insn))
      program;
    {
      call =
        (fun n ->
          S.reset_stats m;
          S.call m ~entry:base [ S.Int n ];
          ( S.ret_int m,
            ( m.S.cycles,
              ( m.S.insns,
                (Vmachine.Cache.stats m.S.icache, Vmachine.Cache.stats m.S.dcache) ) ) ));
      patch = (fun i w -> Vmachine.Mem.write_u32 m.S.mem (base + (4 * (6 + i))) w);
      invalidations = (fun () -> snd (Vmachine.Block_cache.stats m.S.bc));
      rstats = (fun () -> Vmachine.Region_cache.stats m.S.rc);
    }
  in
  drive "ppc" mk pool

let () =
  Alcotest.run "smc-fuzz"
    [
      ( "lockstep",
        [
          Alcotest.test_case "mips" `Quick test_mips;
          Alcotest.test_case "sparc" `Quick test_sparc;
          Alcotest.test_case "alpha" `Quick test_alpha;
          Alcotest.test_case "ppc" `Quick test_ppc;
        ] );
    ]
